// treebank_search — run a query against a treebank with any of the four
// engines, the way a corpus linguist would.
//
// Usage:
//   treebank_search [--engine lpath|nav|tgrep|cs] [--corpus FILE.mrg]
//                   [--wsj N | --swb N] [--show K] QUERY
//
//   --corpus FILE.mrg   load Penn-bracketed trees from a file
//   --wsj N / --swb N   generate N sentences from the WSJ / SWB profile
//                       (default: --wsj 1000)
//   --engine            which engine evaluates QUERY (default lpath);
//                       the query language follows the engine: LPath for
//                       lpath/nav, TGrep2 patterns for tgrep, CorpusSearch
//                       query files for cs
//   --show K            print the first K matching trees (default 3)
//
// Examples:
//   treebank_search --wsj 2000 '//VP{/VB-->NN}'
//   treebank_search --engine tgrep --wsj 2000 'NN ,, (VB > VP)'
//   treebank_search --engine cs --swb 500 '(S Doms saw)'

#include <cstdio>
#include <cstring>
#include <string>

#include "cs/engine.h"
#include "gen/generator.h"
#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "tgrep/engine.h"
#include "tree/bracket_io.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: treebank_search [--engine lpath|nav|tgrep|cs] "
               "[--corpus FILE | --wsj N | --swb N] [--show K] QUERY\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpath;

  std::string engine_name = "lpath";
  std::string corpus_path;
  std::string profile = "wsj";
  int sentences = 1000;
  int show = 3;
  std::string query;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--engine") {
      const char* v = next();
      if (!v) return Usage();
      engine_name = v;
    } else if (arg == "--corpus") {
      const char* v = next();
      if (!v) return Usage();
      corpus_path = v;
    } else if (arg == "--wsj" || arg == "--swb") {
      const char* v = next();
      if (!v) return Usage();
      profile = arg.substr(2);
      sentences = std::atoi(v);
    } else if (arg == "--show") {
      const char* v = next();
      if (!v) return Usage();
      show = std::atoi(v);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      query = arg;
    }
  }
  if (query.empty()) return Usage();

  // Assemble the corpus.
  Corpus corpus;
  if (!corpus_path.empty()) {
    Status s = LoadBracketFile(corpus_path, &corpus);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", corpus_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("loaded %zu trees from %s\n", corpus.size(),
                corpus_path.c_str());
  } else {
    Result<Corpus> generated = profile == "wsj"
                                   ? gen::GenerateWsj(sentences)
                                   : gen::GenerateSwb(sentences);
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(generated).value();
    std::printf("generated %zu %s-profile sentences (%zu nodes)\n",
                corpus.size(), profile.c_str(), corpus.TotalNodes());
  }

  // Build the requested engine.
  std::unique_ptr<NodeRelation> relation;
  std::unique_ptr<QueryEngine> engine;
  if (engine_name == "lpath") {
    Result<NodeRelation> rel = NodeRelation::Build(corpus);
    if (!rel.ok()) {
      std::fprintf(stderr, "relation build failed: %s\n",
                   rel.status().ToString().c_str());
      return 1;
    }
    relation = std::make_unique<NodeRelation>(std::move(rel).value());
    engine = std::make_unique<LPathEngine>(*relation);
  } else if (engine_name == "nav") {
    engine = std::make_unique<NavigationalEngine>(corpus);
  } else if (engine_name == "tgrep") {
    engine = std::make_unique<tgrep::TGrep2Engine>(corpus);
  } else if (engine_name == "cs") {
    engine = std::make_unique<cs::CorpusSearchEngine>(corpus);
  } else {
    return Usage();
  }

  // Run.
  Result<QueryResult> result = engine->Run(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", engine->name().c_str(),
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu matches\n", engine->name().c_str(), result->count());

  // Show a few matching trees.
  int shown = 0;
  int32_t last_tid = -1;
  for (const Hit& hit : result->hits) {
    if (hit.tid == last_tid) continue;  // one line per tree
    last_tid = hit.tid;
    if (shown++ >= show) break;
    std::string text;
    WriteBracketTree(corpus.tree(hit.tid), corpus.interner(), &text);
    if (text.size() > 160) text = text.substr(0, 157) + "...";
    std::printf("  tree %d node %d: %s\n", hit.tid, hit.id, text.c_str());
  }
  return 0;
}
