// Quickstart: the paper's running example, end to end.
//
// Builds the Figure 1 syntax tree ("I saw the old man with a dog today")
// from Penn-bracketed text, prints its relational representation (the
// Figure 5 table), then runs every Figure 2 query through the LPath engine
// — also showing the SQL each query translates to.
//
//   ./examples/quickstart

#include <cstdio>

#include "lpath/engines.h"
#include "storage/relation.h"
#include "tree/bracket_io.h"

int main() {
  using namespace lpath;

  // 1. Load the Figure 1 tree.
  Corpus corpus;
  Status s = ParseBracketText(
      "(S (NP I)"
      " (VP (V saw)"
      "  (NP (NP (Det the) (Adj old) (N man))"
      "      (PP (Prep with) (NP (Det a) (N dog)))))"
      " (N today))",
      &corpus);
  if (!s.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Label it (Definition 4.1) and build the node relation.
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  if (!rel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", rel.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 5 — relational representation of the Figure 1 tree\n");
  std::printf("%5s %5s %5s %4s %4s  %-6s %s\n", "left", "right", "depth",
              "id", "pid", "name", "value");
  for (Row r = 0; r < rel->row_count(); ++r) {
    const Interner& in = rel->interner();
    std::printf("%5d %5d %5d %4d %4d  %-6s %s\n", rel->left(r), rel->right(r),
                rel->depth(r), rel->id(r), rel->pid(r),
                std::string(in.name(rel->name(r))).c_str(),
                rel->value(r) == kNoSymbol
                    ? ""
                    : std::string(in.name(rel->value(r))).c_str());
  }

  // 3. Run the Figure 2 queries.
  LPathEngine engine(rel.value());
  const char* queries[] = {
      "//S[//_[@lex=saw]]",  // sentences containing "saw"
      "//V==>NP",            // NP = immediate following sibling of a verb
      "//V->NP",             // NP immediately following a verb
      "//VP/V-->N",          // nouns following a verb under a VP
      "//VP{/V-->N}",        // ... within that VP (subtree scoping)
      "//VP{/NP$}",          // rightmost NP child of a VP (edge alignment)
      "//VP{//NP$}",         // rightmost NP descendant of a VP
  };
  std::printf("\nFigure 2 — example linguistic queries\n");
  for (const char* q : queries) {
    Result<QueryResult> result = engine.Run(q);
    if (!result.ok()) {
      std::printf("  %-24s -> error: %s\n", q,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("  %-24s -> nodes {", q);
    for (size_t i = 0; i < result->hits.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", result->hits[i].id);
    }
    std::printf("}  (%zu match%s)\n", result->count(),
                result->count() == 1 ? "" : "es");
  }

  // 4. Show a translation — the SQL the paper's engine would ship.
  Result<std::string> sql = engine.TranslateToSql("//VP{/V-->N}");
  if (sql.ok()) {
    std::printf("\nSQL for //VP{/V-->N}:\n  %s\n", sql->c_str());
  }
  return 0;
}
