// lpath_shell — an interactive LPath console over a multi-corpus database,
// in the spirit of the query tools the paper's linguists used.
//
//   ./examples/lpath_shell [--wsj N | --swb N | --corpus FILE.mrg]
//                          [--wal DIR]
//
// The shell fronts a db::Database: several corpora may be attached at
// once, each served by its own QueryService (plan cache + shard pool);
// queries are routed to the current corpus, and a rebuilt index can be
// hot-swapped in (:reload) without restarting.
//
// Commands:
//   <lpath query>      evaluate (shard-parallel) and print matches
//   .sql <query>       show the SQL translation (what goes to the RDBMS)
//   .plan <query>      show the execution plan IR
//   .engines <query>   run on all engines that can express it and compare
//   .stats             corpus statistics (Figure 6a/6b style)
//   :open NAME FILE    load a bracketed treebank as corpus NAME and use it
//   :save FILE         write the current corpus's relation as a persistent
//                      image (mmap-able; see storage/image.h)
//   :load NAME FILE    mmap a persistent image as corpus NAME and use it —
//                      O(file size), no labeling or sorting
//   :use NAME          switch queries to corpus NAME
//   :corpora           list attached corpora (snapshot ids, sizes, delta)
//   :ingest FILE       append FILE's trees to the current corpus without
//                      downtime: the base index is untouched, the new trees
//                      land in a small delta relation queried alongside it
//   :compact           merge the current corpus's delta into its base and
//                      hot-swap the compacted snapshot in
//   :reload            rebuild the current corpus's index and hot-swap it
//                      (an image-backed corpus re-opens its image)
//   :threads N         rebuild every query service with N threads
//                      (plan caches and stats start fresh)
//   :vectorized on|off switch between the batch and the scalar executor
//                      kernel (on is the default)
//   :cache             plan-cache and latency statistics
//   :wal               durability status: per-corpus write-ahead-log
//                      position and segment count, replayed batches,
//                      checkpoints, and compaction health (--wal DIR
//                      makes every ingest durable: committed to the log
//                      before it is published, replayed on reopen)
//   .help              this text
//   .quit              exit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/str_util.h"
#include "common/timer.h"
#include "db/database.h"
#include "gen/generator.h"
#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "tree/bracket_io.h"
#include "tree/stats.h"

namespace {

using namespace lpath;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  <lpath query>     e.g. //VP{/VB-->NN}\n"
      "  .sql <query>      show the SQL translation\n"
      "  .plan <query>     show the execution-plan IR\n"
      "  .engines <query>  compare the relational and navigational engines\n"
      "  .stats            corpus statistics\n"
      "  :open NAME FILE   load a bracketed treebank as corpus NAME, use it\n"
      "  :save FILE        write the current relation as a persistent image\n"
      "  :load NAME FILE   mmap a persistent image as corpus NAME, use it\n"
      "  :use NAME         switch queries to corpus NAME\n"
      "  :corpora          list attached corpora\n"
      "  :ingest FILE      append FILE's trees live (delta relation)\n"
      "  :compact          merge the delta into the base index\n"
      "  :reload           rebuild the current index and hot-swap it\n"
      "  :threads N        rebuild the query services with N threads\n"
      "                    (plan caches and stats start fresh)\n"
      "  :vectorized on|off  batch (selection-vector) vs scalar kernel\n"
      "  :cache            plan-cache and latency statistics\n"
      "  :wal              durability status (WAL position, checkpoints,\n"
      "                    compaction health; enable with --wal DIR)\n"
      "  .help  .quit\n");
}

void PrintServiceStats(const std::string& name,
                       const service::QueryService& service) {
  const service::ServiceStats st = service.Stats();
  std::printf(
      "service[%s]: %d threads, %llu queries (%llu errors, %llu sharded, "
      "%llu serial, %llu batch-coalesced)\n"
      "plan cache: %zu/%zu plans (%zu spellings, %zu fingerprints), "
      "%llu hits (%llu negative), %llu misses, %llu shared-prepare, "
      "%llu fp-collisions, %llu evictions\n"
      "subplan memo: %llu subtrees shared by %llu plans, %zu memo entries, "
      "%llu collisions\n"
      "latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, max %.3f ms "
      "(%zu samples)\n"
      "executor: %llu candidates, %llu bindings, %llu subqueries, "
      "%llu shard runs, %llu cross-plan memo hits\n"
      "live corpus: %llu ingests, %llu compactions, %llu delta rows "
      "scanned, %llu max sources\n"
      "durability: %llu wal appends (%llu bytes), %llu replayed batches, "
      "%llu checkpoints\n",
      name.c_str(), service.threads(),
      static_cast<unsigned long long>(st.queries),
      static_cast<unsigned long long>(st.errors),
      static_cast<unsigned long long>(st.sharded_queries),
      static_cast<unsigned long long>(st.serial_queries),
      static_cast<unsigned long long>(st.batch_coalesced), st.cache.size,
      st.cache.capacity, st.cache.texts, st.cache.fingerprints,
      static_cast<unsigned long long>(st.cache.hits),
      static_cast<unsigned long long>(st.cache.negative_hits),
      static_cast<unsigned long long>(st.cache.misses),
      static_cast<unsigned long long>(st.cache.shared_prepare_hits),
      static_cast<unsigned long long>(st.cache.fingerprint_collisions),
      static_cast<unsigned long long>(st.cache.evictions),
      static_cast<unsigned long long>(st.subplans.subtrees),
      static_cast<unsigned long long>(st.subplans.cross_plan),
      st.subplans.memo_entries,
      static_cast<unsigned long long>(st.subplans.collisions),
      st.latency.p50_ms, st.latency.p90_ms, st.latency.p99_ms,
      st.latency.max_ms, st.latency.samples,
      static_cast<unsigned long long>(st.exec.candidates),
      static_cast<unsigned long long>(st.exec.bindings),
      static_cast<unsigned long long>(st.exec.subqueries),
      static_cast<unsigned long long>(st.exec.shards),
      static_cast<unsigned long long>(st.exec.subplan_memo_hits),
      static_cast<unsigned long long>(st.ingests),
      static_cast<unsigned long long>(st.compactions),
      static_cast<unsigned long long>(st.exec.delta_rows),
      static_cast<unsigned long long>(st.exec.sources),
      static_cast<unsigned long long>(st.wal_appends),
      static_cast<unsigned long long>(st.wal_bytes),
      static_cast<unsigned long long>(st.replayed_batches),
      static_cast<unsigned long long>(st.checkpoints));
}

/// Per-snapshot comparison engines for .sql/.plan/.engines: rebuilt lazily
/// whenever the current corpus's snapshot changes (swap or :use).
struct EngineView {
  SnapshotPtr snap;
  std::unique_ptr<LPathEngine> lpath;
  std::unique_ptr<NavigationalEngine> nav;

  void Refresh(const SnapshotPtr& current) {
    if (snap != nullptr && current != nullptr && snap == current) return;
    snap = current;
    lpath = std::make_unique<LPathEngine>(snap->relation());
    nav = std::make_unique<NavigationalEngine>(snap->corpus());
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string profile = "wsj";
  std::string corpus_path;
  std::string wal_dir;
  int sentences = 1000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if ((arg == "--wsj" || arg == "--swb") && i + 1 < argc) {
      profile = arg.substr(2);
      sentences = std::atoi(argv[++i]);
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_path = argv[++i];
    } else if (arg == "--wal" && i + 1 < argc) {
      wal_dir = argv[++i];
    }
  }

  db::DatabaseOptions db_opts;
  db_opts.wal_dir = wal_dir;
  db::Database db(db_opts);
  std::string current;
  if (!corpus_path.empty()) {
    current = "main";
    Status s = db.Open(current, corpus_path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", corpus_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  } else {
    current = profile;
    Result<Corpus> generated = profile == "wsj"
                                   ? gen::GenerateWsj(sentences)
                                   : gen::GenerateSwb(sentences);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    Status s = db.OpenCorpus(current, std::move(generated).value());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  EngineView view;
  view.Refresh(db.snapshot(current));
  std::printf(
      "lpath_shell — corpus '%s': %zu trees, %zu nodes, %d query threads. "
      "Type .help for help.\n",
      current.c_str(), static_cast<size_t>(view.snap->relation().tree_count()),
      view.snap->relation().element_count(), db.service(current)->threads());

  std::string line;
  while (std::printf("lpath:%s> ", current.c_str()), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string input(StripWhitespace(line));
    if (input.empty()) continue;
    if (input == ".quit" || input == ".exit" || input == "q") break;
    // One refresh per command: a no-op unless :reload/:open/:use (or a
    // concurrent embedder) changed the current snapshot. Branches that
    // change `current` refresh again after doing so.
    view.Refresh(db.snapshot(current));
    if (input == ".help") {
      PrintHelp();
      continue;
    }
    if (input == ".stats") {
      if (view.snap->image_backed()) {
        std::printf("'%s' is image-backed (%s): %d trees, %zu relation "
                    "rows, %s mapped bytes; bracketed text not stored\n",
                    current.c_str(), view.snap->image_path().c_str(),
                    view.snap->relation().tree_count(),
                    view.snap->relation().row_count(),
                    FormatWithCommas(static_cast<int64_t>(
                        view.snap->relation().MemoryBytes()))
                        .c_str());
        continue;
      }
      CorpusStats stats = ComputeStats(view.snap->corpus());
      std::printf("trees %zu, nodes %zu, words %zu, unique tags %zu, "
                  "max depth %d, bracketed size %s bytes\n",
                  stats.tree_count, stats.node_count, stats.word_count,
                  stats.unique_tags, stats.max_depth,
                  FormatWithCommas(stats.file_size_bytes).c_str());
      for (const auto& [tag, n] : stats.TopTags(10)) {
        std::printf("  %-12s %s\n", tag.c_str(),
                    FormatWithCommas(n).c_str());
      }
      continue;
    }
    if (StartsWith(input, ":open ")) {
      std::istringstream args(input.substr(6));
      std::string name, file;
      args >> name >> file;
      if (name.empty() || file.empty()) {
        std::printf("usage: :open NAME FILE\n");
        continue;
      }
      Status s = db.Open(name, file);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      current = name;
      view.Refresh(db.snapshot(current));
      std::printf("opened '%s': %zu trees, %zu nodes (now current)\n",
                  name.c_str(), view.snap->corpus().size(),
                  view.snap->corpus().TotalNodes());
      continue;
    }
    if (StartsWith(input, ":save ")) {
      const std::string file(StripWhitespace(input.substr(6)));
      if (file.empty()) {
        std::printf("usage: :save FILE\n");
        continue;
      }
      Timer timer;
      Status s = view.snap->Save(file);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      std::printf("saved '%s' as image %s (%.1f ms); :load it in O(file "
                  "size)\n",
                  current.c_str(), file.c_str(),
                  timer.ElapsedSeconds() * 1e3);
      continue;
    }
    if (StartsWith(input, ":load ")) {
      std::istringstream args(input.substr(6));
      std::string name, file;
      args >> name >> file;
      if (name.empty() || file.empty()) {
        std::printf("usage: :load NAME FILE\n");
        continue;
      }
      Timer timer;
      Status s = db.OpenImage(name, file);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      current = name;
      view.Refresh(db.snapshot(current));
      std::printf("mapped '%s': %d trees, %zu relation rows in %.1f ms — "
                  "no labeling, no sorting (now current)\n",
                  name.c_str(), view.snap->relation().tree_count(),
                  view.snap->relation().row_count(),
                  timer.ElapsedSeconds() * 1e3);
      continue;
    }
    if (StartsWith(input, ":use ")) {
      const std::string name(StripWhitespace(input.substr(5)));
      if (!db.Has(name)) {
        std::printf("no corpus '%s' — see :corpora\n", name.c_str());
        continue;
      }
      current = name;
      view.Refresh(db.snapshot(current));
      std::printf("using '%s'\n", name.c_str());
      continue;
    }
    if (input == ":corpora") {
      for (const db::CorpusInfo& info : db.List()) {
        std::printf("  %c %-10s snapshot #%llu  %zu trees (%zu in delta), "
                    "%zu nodes, %s relation bytes, %d threads\n",
                    info.name == current ? '*' : ' ', info.name.c_str(),
                    static_cast<unsigned long long>(info.snapshot_id),
                    info.trees, info.delta_trees, info.nodes,
                    FormatWithCommas(info.relation_bytes).c_str(),
                    info.threads);
      }
      continue;
    }
    if (StartsWith(input, ":ingest ")) {
      const std::string file(StripWhitespace(input.substr(8)));
      if (file.empty()) {
        std::printf("usage: :ingest FILE\n");
        continue;
      }
      Corpus incoming;
      Status s = LoadBracketFile(file, &incoming);
      if (s.ok() && incoming.empty()) {
        s = Status::InvalidArgument("no trees in " + file);
      }
      const size_t added = incoming.size();
      if (s.ok()) s = db.Ingest(current, std::move(incoming));
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      view.Refresh(db.snapshot(current));
      std::printf("ingested %zu trees into '%s' — %d in the delta, base "
                  "index untouched; queries see them now\n",
                  added, current.c_str(), view.snap->delta_tree_count());
      continue;
    }
    if (input == ":compact") {
      Timer timer;
      const int32_t delta = view.snap->delta_tree_count();
      Status s = db.Compact(current);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      view.Refresh(db.snapshot(current));
      if (delta == 0) {
        std::printf("'%s' has no delta — nothing to compact\n",
                    current.c_str());
      } else {
        std::printf("compacted %d delta trees into '%s' (%.1f ms); now "
                    "snapshot #%llu, %d trees single-source\n",
                    delta, current.c_str(), timer.ElapsedSeconds() * 1e3,
                    static_cast<unsigned long long>(view.snap->id()),
                    view.snap->tree_count());
      }
      continue;
    }
    if (input == ":reload") {
      Timer timer;
      Status s = db.Reload(current);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      view.Refresh(db.snapshot(current));
      std::printf("rebuilt and swapped '%s' to snapshot #%llu (%.1f ms); "
                  "in-flight queries kept the old one\n",
                  current.c_str(),
                  static_cast<unsigned long long>(view.snap->id()),
                  timer.ElapsedSeconds() * 1e3);
      continue;
    }
    if (input == ":threads" || StartsWith(input, ":threads ")) {
      const int n = std::atoi(input.substr(8).c_str());
      if (n < 1 || n > 256) {
        std::printf("usage: :threads N (1..256)\n");
        continue;
      }
      db_opts.service.threads = n;
      db.SetServiceOptions(db_opts.service);
      std::printf("query services rebuilt with %d threads\n",
                  db.service(current)->threads());
      continue;
    }
    if (input == ":vectorized" || StartsWith(input, ":vectorized ")) {
      const std::string arg(StripWhitespace(input.substr(11)));
      if (arg != "on" && arg != "off") {
        std::printf("usage: :vectorized on|off (currently %s)\n",
                    db_opts.service.exec.vectorized ? "on" : "off");
        continue;
      }
      db_opts.service.exec.vectorized = arg == "on";
      db.SetServiceOptions(db_opts.service);
      std::printf("query services rebuilt with the %s kernel\n",
                  arg == "on" ? "batch" : "scalar");
      continue;
    }
    if (input == ":cache") {
      PrintServiceStats(current, *db.service(current));
      continue;
    }
    if (input == ":wal") {
      if (db_opts.wal_dir.empty()) {
        std::printf("durability is off — restart with --wal DIR to commit "
                    "every ingest to a write-ahead log before it is "
                    "published (and replay it on reopen)\n");
        continue;
      }
      std::printf("wal dir: %s (fsync per commit)\n",
                  db_opts.wal_dir.c_str());
      for (const db::CorpusInfo& info : db.List()) {
        if (!info.wal) {
          std::printf("  %c %-10s no log\n",
                      info.name == current ? '*' : ' ', info.name.c_str());
          continue;
        }
        std::printf("  %c %-10s lsn %llu, %llu segment%s",
                    info.name == current ? '*' : ' ', info.name.c_str(),
                    static_cast<unsigned long long>(info.wal_last_lsn),
                    static_cast<unsigned long long>(info.wal_segments),
                    info.wal_segments == 1 ? "" : "s");
        if (info.compaction_failures > 0) {
          std::printf(", %llu compaction failure%s%s%s",
                      static_cast<unsigned long long>(
                          info.compaction_failures),
                      info.compaction_failures == 1 ? "" : "s",
                      info.last_compaction_error.empty() ? "" : ": ",
                      info.last_compaction_error.c_str());
        }
        std::printf("\n");
      }
      const service::ServiceStats st = db.service(current)->Stats();
      std::printf("'%s' session: %llu appends (%llu bytes), %llu replayed "
                  "batches, %llu checkpoints\n",
                  current.c_str(),
                  static_cast<unsigned long long>(st.wal_appends),
                  static_cast<unsigned long long>(st.wal_bytes),
                  static_cast<unsigned long long>(st.replayed_batches),
                  static_cast<unsigned long long>(st.checkpoints));
      continue;
    }
    if (StartsWith(input, ".sql ")) {
      Result<std::string> sql = view.lpath->TranslateToSql(input.substr(5));
      std::printf("%s\n", sql.ok() ? sql->c_str()
                                   : sql.status().ToString().c_str());
      continue;
    }
    if (StartsWith(input, ".plan ")) {
      Result<ExecPlan> plan = view.lpath->Translate(input.substr(6));
      std::printf("%s\n", plan.ok() ? plan->DebugString().c_str()
                                    : plan.status().ToString().c_str());
      continue;
    }
    if (StartsWith(input, ".engines ")) {
      if (view.snap->image_backed()) {
        std::printf("engine comparison needs corpus trees; '%s' is "
                    "image-backed (the relational engine is what :load "
                    "serves)\n",
                    current.c_str());
        continue;
      }
      const std::string q = input.substr(9);
      for (const QueryEngine* e : std::initializer_list<const QueryEngine*>{
               view.lpath.get(), view.nav.get()}) {
        Timer timer;
        Result<QueryResult> r = e->Run(q);
        const double secs = timer.ElapsedSeconds();
        if (r.ok()) {
          std::printf("  %-14s %8zu matches   %.3f ms\n", e->name().c_str(),
                      r->count(), secs * 1e3);
        } else {
          std::printf("  %-14s %s\n", e->name().c_str(),
                      r.status().ToString().c_str());
        }
      }
      continue;
    }

    // Resolve the corpus once for printing the matched trees. The shell is
    // single-threaded, so this is the same snapshot Query() runs against;
    // and across :reload swaps the corpus object is shared anyway, so the
    // result tids stay valid for it either way.
    const SnapshotPtr snap = db.snapshot(current);
    Timer timer;
    Result<QueryResult> r = db.Query(current, input);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("%zu matches (%.3f ms)\n", r->count(),
                timer.ElapsedSeconds() * 1e3);
    int shown = 0;
    int32_t last_tid = -1;
    for (const Hit& hit : r->hits) {
      if (hit.tid == last_tid) continue;
      last_tid = hit.tid;
      if (shown >= 3) break;
      // Chain-aware: TreeAt resolves base and delta tids alike, and is
      // null exactly when the tree has no bracketed text to print (the
      // mapped base of an image-backed corpus).
      const Tree* tree = snap->TreeAt(hit.tid);
      if (tree == nullptr) continue;
      ++shown;
      std::string text;
      WriteBracketTree(*tree, snap->interner(), &text);
      if (text.size() > 140) text = text.substr(0, 137) + "...";
      std::printf("  [%d] %s\n", hit.tid, text.c_str());
    }
  }
  return 0;
}
