// lpath_shell — an interactive LPath console over a generated or loaded
// treebank, in the spirit of the query tools the paper's linguists used.
//
//   ./examples/lpath_shell [--wsj N | --swb N | --corpus FILE.mrg]
//
// Commands:
//   <lpath query>      evaluate (shard-parallel) and print matches
//   .sql <query>       show the SQL translation (what goes to the RDBMS)
//   .plan <query>      show the execution plan IR
//   .engines <query>   run on all engines that can express it and compare
//   .stats             corpus statistics (Figure 6a/6b style)
//   :threads N         rebuild the query service with N threads
//                      (plan cache and stats start fresh)
//   :cache             plan-cache and latency statistics
//   .help              this text
//   .quit              exit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/str_util.h"
#include "common/timer.h"
#include "gen/generator.h"
#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "service/query_service.h"
#include "tree/bracket_io.h"
#include "tree/stats.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  <lpath query>     e.g. //VP{/VB-->NN}\n"
      "  .sql <query>      show the SQL translation\n"
      "  .plan <query>     show the execution-plan IR\n"
      "  .engines <query>  compare the relational and navigational engines\n"
      "  .stats            corpus statistics\n"
      "  :threads N        rebuild the query service with N threads\n"
      "                    (plan cache and stats start fresh)\n"
      "  :cache            plan-cache and latency statistics\n"
      "  .help  .quit\n");
}

void PrintServiceStats(const lpath::service::QueryService& service) {
  const lpath::service::ServiceStats st = service.Stats();
  std::printf(
      "service: %d threads, %llu queries (%llu errors)\n"
      "plan cache: %zu/%zu plans, %llu hits, %llu misses, %llu evictions\n"
      "latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f ms, max %.3f ms "
      "(%zu samples)\n"
      "executor: %llu candidates, %llu bindings, %llu subqueries\n",
      service.threads(), static_cast<unsigned long long>(st.queries),
      static_cast<unsigned long long>(st.errors), st.cache.size,
      st.cache.capacity, static_cast<unsigned long long>(st.cache.hits),
      static_cast<unsigned long long>(st.cache.misses),
      static_cast<unsigned long long>(st.cache.evictions), st.latency.p50_ms,
      st.latency.p90_ms, st.latency.p99_ms, st.latency.max_ms,
      st.latency.samples,
      static_cast<unsigned long long>(st.exec.candidates),
      static_cast<unsigned long long>(st.exec.bindings),
      static_cast<unsigned long long>(st.exec.subqueries));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lpath;

  std::string profile = "wsj";
  std::string corpus_path;
  int sentences = 1000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if ((arg == "--wsj" || arg == "--swb") && i + 1 < argc) {
      profile = arg.substr(2);
      sentences = std::atoi(argv[++i]);
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_path = argv[++i];
    }
  }

  Corpus corpus;
  if (!corpus_path.empty()) {
    Status s = LoadBracketFile(corpus_path, &corpus);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", corpus_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  } else {
    Result<Corpus> generated = profile == "wsj"
                                   ? gen::GenerateWsj(sentences)
                                   : gen::GenerateSwb(sentences);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(generated).value();
  }

  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  if (!rel.ok()) {
    std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
    return 1;
  }
  LPathEngine engine(rel.value());
  NavigationalEngine nav(corpus);
  service::QueryServiceOptions svc_opts;
  auto service = std::make_unique<service::QueryService>(rel.value(), svc_opts);

  std::printf(
      "lpath_shell — %zu trees, %zu nodes, %d query threads. "
      "Type .help for help.\n",
      corpus.size(), corpus.TotalNodes(), service->threads());

  std::string line;
  while (std::printf("lpath> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string input(StripWhitespace(line));
    if (input.empty()) continue;
    if (input == ".quit" || input == ".exit" || input == "q") break;
    if (input == ".help") {
      PrintHelp();
      continue;
    }
    if (input == ".stats") {
      CorpusStats stats = ComputeStats(corpus);
      std::printf("trees %zu, nodes %zu, words %zu, unique tags %zu, "
                  "max depth %d, bracketed size %s bytes\n",
                  stats.tree_count, stats.node_count, stats.word_count,
                  stats.unique_tags, stats.max_depth,
                  FormatWithCommas(stats.file_size_bytes).c_str());
      for (const auto& [tag, n] : stats.TopTags(10)) {
        std::printf("  %-12s %s\n", tag.c_str(),
                    FormatWithCommas(n).c_str());
      }
      continue;
    }
    if (input == ":threads" || StartsWith(input, ":threads ")) {
      const int n = std::atoi(input.substr(8).c_str());
      if (n < 1 || n > 256) {
        std::printf("usage: :threads N (1..256)\n");
        continue;
      }
      svc_opts.threads = n;
      service.reset();  // join the old pool before spawning the new one
      service = std::make_unique<service::QueryService>(rel.value(), svc_opts);
      std::printf("query service rebuilt with %d threads\n",
                  service->threads());
      continue;
    }
    if (input == ":cache") {
      PrintServiceStats(*service);
      continue;
    }
    if (StartsWith(input, ".sql ")) {
      Result<std::string> sql = engine.TranslateToSql(input.substr(5));
      std::printf("%s\n", sql.ok() ? sql->c_str()
                                   : sql.status().ToString().c_str());
      continue;
    }
    if (StartsWith(input, ".plan ")) {
      Result<ExecPlan> plan = engine.Translate(input.substr(6));
      std::printf("%s\n", plan.ok() ? plan->DebugString().c_str()
                                    : plan.status().ToString().c_str());
      continue;
    }
    if (StartsWith(input, ".engines ")) {
      const std::string q = input.substr(9);
      for (const QueryEngine* e :
           std::initializer_list<const QueryEngine*>{&engine, &nav}) {
        Timer timer;
        Result<QueryResult> r = e->Run(q);
        const double secs = timer.ElapsedSeconds();
        if (r.ok()) {
          std::printf("  %-14s %8zu matches   %.3f ms\n", e->name().c_str(),
                      r->count(), secs * 1e3);
        } else {
          std::printf("  %-14s %s\n", e->name().c_str(),
                      r.status().ToString().c_str());
        }
      }
      continue;
    }

    Timer timer;
    Result<QueryResult> r = service->Query(input);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("%zu matches (%.3f ms)\n", r->count(),
                timer.ElapsedSeconds() * 1e3);
    int shown = 0;
    int32_t last_tid = -1;
    for (const Hit& hit : r->hits) {
      if (hit.tid == last_tid) continue;
      last_tid = hit.tid;
      if (shown++ >= 3) break;
      std::string text;
      WriteBracketTree(corpus.tree(hit.tid), corpus.interner(), &text);
      if (text.size() > 140) text = text.substr(0, 137) + "...";
      std::printf("  [%d] %s\n", hit.tid, text.c_str());
    }
  }
  return 0;
}
