// lpath_serve — the LPathDB network daemon: a db::Database behind the wire
// protocol (docs/PROTOCOL.md), serving LPath queries over TCP.
//
//   ./examples/lpath_serve [--wsj N | --swb N | --corpus FILE]
//                          [--name NAME] [--host H] [--port P]
//                          [--threads N] [--wal DIR] [--selftest [QUERY]]
//
// By default serves a generated WSJ-profile corpus named "wsj" on an
// ephemeral loopback port (printed on startup, flushed, so scripts can
// `head -1` it). --wal DIR makes ingestion durable exactly as in
// lpath_shell. --selftest starts the server, drives one in-process client
// query through the loopback socket, prints the row count and exits —
// the self-contained smoke test CI runs.
//
// Operations notes (flags, shutdown, monitoring) live in
// docs/OPERATIONS.md.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>

#include "db/database.h"
#include "gen/generator.h"
#include "net/client.h"
#include "net/server.h"

namespace {

using namespace lpath;

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--wsj N | --swb N | --corpus FILE] [--name NAME]\n"
               "          [--host H] [--port P] [--threads N] [--wal DIR]\n"
               "          [--selftest [QUERY]]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int sentences = 200;
  bool swb = false;
  std::string corpus_file;
  std::string name = "wsj";
  std::string wal_dir;
  int threads = 0;
  bool selftest = false;
  std::string selftest_query = "//VP";
  net::NetOptions net_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if ((arg == "--wsj" || arg == "--swb") && i + 1 < argc) {
      sentences = std::atoi(argv[++i]);
      swb = arg == "--swb";
      if (name == "wsj" && swb) name = "swb";
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_file = argv[++i];
      if (name == "wsj") name = "corpus";
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg == "--host" && i + 1 < argc) {
      net_options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      net_options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--wal" && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (arg == "--selftest") {
      selftest = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') selftest_query = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  db::DatabaseOptions db_options;
  db_options.wal_dir = wal_dir;
  if (threads > 0) db_options.service.threads = threads;
  db::Database db(db_options);

  if (!corpus_file.empty()) {
    Status s = db.Open(name, corpus_file);
    if (!s.ok()) {
      std::fprintf(stderr, "open %s: %s\n", corpus_file.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  } else {
    auto generated =
        swb ? gen::GenerateSwb(sentences) : gen::GenerateWsj(sentences);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    Status s = db.OpenCorpus(name, std::move(*generated));
    if (!s.ok()) {
      std::fprintf(stderr, "attach: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  net::NetServer server(&db, net_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("lpath_serve listening on %s:%u (corpus \"%s\")\n",
              net_options.host.c_str(), server.port(), name.c_str());
  std::fflush(stdout);

  if (selftest) {
    net::Client client;
    Status s = client.Connect("127.0.0.1", server.port());
    if (!s.ok()) {
      std::fprintf(stderr, "selftest connect: %s\n", s.ToString().c_str());
      return 1;
    }
    auto result = client.Query(name, selftest_query);
    if (!result.ok()) {
      std::fprintf(stderr, "selftest query: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("selftest: %s -> %zu rows over the wire\n",
                selftest_query.c_str(), result->hits.size());
    client.Close();
    server.Stop();
    return 0;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    // The poll loop does the serving; this thread only waits for a signal.
    struct timespec ts {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down (draining in-flight queries)\n");
  server.Stop();
  return 0;
}
