// lpath_client — a command-line client for lpath_serve, and a live demo of
// the wire protocol (docs/PROTOCOL.md).
//
//   ./examples/lpath_client --connect HOST PORT CORPUS QUERY...
//   ./examples/lpath_client --demo N [QUERY...]
//
// --connect runs each QUERY against CORPUS on a running lpath_serve,
// pipelining them all on one connection, and prints per-query row counts
// plus the first few rows.
//
// --demo needs no daemon: it generates an N-sentence WSJ-profile corpus,
// starts an in-process server on an ephemeral loopback port, and runs the
// queries through a real socket — the round trip CI smokes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "db/database.h"
#include "gen/generator.h"
#include "net/client.h"
#include "net/server.h"

namespace {

using namespace lpath;

int RunQueries(net::Client* client, const std::string& corpus,
               const std::vector<std::string>& queries) {
  std::vector<Result<QueryResult>> results =
      client->Pipeline(corpus, queries);
  int failures = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("%-28s ERROR %s\n", queries[i].c_str(),
                  results[i].status().ToString().c_str());
      ++failures;
      continue;
    }
    const std::vector<Hit>& hits = results[i]->hits;
    std::printf("%-28s %zu rows", queries[i].c_str(), hits.size());
    for (size_t k = 0; k < hits.size() && k < 3; ++k) {
      std::printf("  (%d,%d)", hits[k].tid, hits[k].id);
    }
    std::printf("%s\n", hits.size() > 3 ? " ..." : "");
  }
  return failures;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST PORT CORPUS QUERY...\n"
               "       %s --demo N [QUERY...]\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string mode = argv[1];

  if (mode == "--connect") {
    if (argc < 6) return Usage(argv[0]);
    std::string host = argv[2];
    uint16_t port = static_cast<uint16_t>(std::atoi(argv[3]));
    std::string corpus = argv[4];
    std::vector<std::string> queries(argv + 5, argv + argc);

    net::Client client;
    Status s = client.Connect(host, port);
    if (!s.ok()) {
      std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("connected to %s (max %u in flight)\n",
                client.server_software().c_str(), client.max_inflight());
    int failures = RunQueries(&client, corpus, queries);
    client.Close();
    return failures == 0 ? 0 : 1;
  }

  if (mode == "--demo") {
    if (argc < 3) return Usage(argv[0]);
    int sentences = std::atoi(argv[2]);
    std::vector<std::string> queries(argv + 3, argv + argc);
    if (queries.empty()) {
      queries = {"//VP", "//NP/NN", "//VP{/VB-->NP}", "//S//PP"};
    }

    auto generated = gen::GenerateWsj(sentences);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    db::Database db;
    Status attached = db.OpenCorpus("wsj", std::move(*generated));
    if (!attached.ok()) {
      std::fprintf(stderr, "attach: %s\n", attached.ToString().c_str());
      return 1;
    }
    net::NetServer server(&db);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("demo server on 127.0.0.1:%u, %d sentences\n", server.port(),
                sentences);

    net::Client client;
    Status s = client.Connect("127.0.0.1", server.port());
    if (!s.ok()) {
      std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
      return 1;
    }
    if (!client.Ping().ok()) {
      std::fprintf(stderr, "ping failed\n");
      return 1;
    }
    int failures = RunQueries(&client, "wsj", queries);
    client.Close();
    server.Stop();
    return failures == 0 ? 0 : 1;
  }

  return Usage(argv[0]);
}
