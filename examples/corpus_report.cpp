// corpus_report — generate both evaluation corpora and print their
// characteristics next to the paper's Figure 6(a)/(b), then save them as
// Penn-bracketed files and a TGrep2 binary image (so the other tools can
// reuse them).
//
//   ./examples/corpus_report [sentences] [output-dir]

#include <cstdio>
#include <string>

#include "common/str_util.h"
#include "gen/generator.h"
#include "tgrep/corpus_file.h"
#include "tree/bracket_io.h"
#include "tree/stats.h"

int main(int argc, char** argv) {
  using namespace lpath;

  const int sentences = argc > 1 ? std::atoi(argv[1]) : 2000;
  const std::string outdir = argc > 2 ? argv[2] : "";

  struct Entry {
    const char* name;
    Result<Corpus> corpus;
  };
  Entry corpora[] = {
      {"WSJ", gen::GenerateWsj(sentences)},
      {"SWB", gen::GenerateSwb(sentences)},
  };

  std::printf("Figure 6(a)-style characteristics (%d sentences each):\n\n",
              sentences);
  std::printf("  %-18s", "");
  for (const Entry& e : corpora) std::printf(" | %12s", e.name);
  std::printf("\n");

  CorpusStats stats[2];
  for (int i = 0; i < 2; ++i) {
    if (!corpora[i].corpus.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   corpora[i].corpus.status().ToString().c_str());
      return 1;
    }
    stats[i] = ComputeStats(corpora[i].corpus.value());
  }
  auto row = [&](const char* label, auto getter) {
    std::printf("  %-18s", label);
    for (int i = 0; i < 2; ++i) {
      std::printf(" | %12s", FormatWithCommas(getter(stats[i])).c_str());
    }
    std::printf("\n");
  };
  row("File Size (bytes)", [](const CorpusStats& s) {
    return static_cast<int64_t>(s.file_size_bytes);
  });
  row("Tree Nodes", [](const CorpusStats& s) {
    return static_cast<int64_t>(s.node_count);
  });
  row("Words", [](const CorpusStats& s) {
    return static_cast<int64_t>(s.word_count);
  });
  row("Unique Tags", [](const CorpusStats& s) {
    return static_cast<int64_t>(s.unique_tags);
  });
  row("Maximum Depth",
      [](const CorpusStats& s) { return static_cast<int64_t>(s.max_depth); });

  std::printf("\nTop 10 tags (Figure 6(b)-style):\n");
  for (int i = 0; i < 2; ++i) {
    std::printf("  %s:", corpora[i].name);
    for (const auto& [tag, n] : stats[i].TopTags(10)) {
      std::printf(" %s(%s)", tag.c_str(), FormatWithCommas(n).c_str());
    }
    std::printf("\n");
  }

  if (!outdir.empty()) {
    for (int i = 0; i < 2; ++i) {
      const std::string base =
          outdir + "/" + AsciiToLower(corpora[i].name);
      const std::string mrg = base + ".mrg";
      Status s = SaveBracketFile(corpora[i].corpus.value(), mrg);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      tgrep::TgrepCorpus image =
          tgrep::TgrepCorpus::Build(corpora[i].corpus.value());
      const std::string t2c = base + ".ltg2";
      s = image.Save(t2c);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("\nwrote %s and %s\n", mrg.c_str(), t2c.c_str());
    }
  }
  return 0;
}
