// lpath_pack — offline converter from corpora to persistent relation
// images, the "load the treebank into the RDBMS once" step of the paper's
// workflow. The written image is opened by Database::Open / lpath_shell
// :load / CorpusSnapshot::Open in O(file size), with no labeling and no
// sorting at serve time.
//
//   ./examples/lpath_pack [--wsj N | --swb N | --skewed N | --corpus FILE.mrg]
//                         [--scheme lpath|xpath] [--seed S]
//                         [--encoding raw|auto] OUT.img
//
// Examples:
//   lpath_pack --wsj 4000 wsj.img          # generated WSJ profile corpus
//   lpath_pack --corpus wsj.mrg wsj.img    # bracketed treebank file
//   lpath_pack --corpus wsj.mrg --scheme xpath wsj-xpath.img
//   lpath_pack --wsj 4000 --encoding raw wsj-raw.img  # no column codecs
//
// `--encoding auto` (the default) stores each row column under its
// cheapest codec and prints the per-column compression table.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/str_util.h"
#include "common/timer.h"
#include "gen/generator.h"
#include "storage/snapshot.h"
#include "tree/bracket_io.h"

namespace {

using namespace lpath;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--wsj N | --swb N | --skewed N | --corpus FILE.mrg]\n"
      "          [--scheme lpath|xpath] [--seed S] [--encoding raw|auto] "
      "OUT.img\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile = "wsj";
  std::string corpus_path;
  std::string out_path;
  int sentences = 1000;
  uint64_t seed = 2006;
  RelationOptions options;
  ImageSaveOptions save_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--wsj" || arg == "--swb" || arg == "--skewed") &&
        i + 1 < argc) {
      profile = arg.substr(2);
      sentences = std::atoi(argv[++i]);
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--encoding" && i + 1 < argc) {
      const std::string encoding = argv[++i];
      if (encoding == "raw") {
        save_options.encoding = ImageEncoding::kRaw;
      } else if (encoding == "auto") {
        save_options.encoding = ImageEncoding::kAuto;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--scheme" && i + 1 < argc) {
      const std::string scheme = argv[++i];
      if (scheme == "lpath") {
        options.scheme = LabelScheme::kLPath;
      } else if (scheme == "xpath") {
        options.scheme = LabelScheme::kXPath;
      } else {
        return Usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (out_path.empty()) return Usage(argv[0]);

  // 1. Load or generate the corpus.
  Timer load_timer;
  Corpus corpus;
  if (!corpus_path.empty()) {
    Status s = LoadBracketFile(corpus_path, &corpus);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", corpus_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  } else {
    Result<Corpus> generated =
        profile == "wsj"    ? gen::GenerateWsj(sentences, seed)
        : profile == "swb"  ? gen::GenerateSwb(sentences, seed)
                            : gen::GenerateSkewed(sentences, seed);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(generated).value();
  }
  const double load_s = load_timer.ElapsedSeconds();
  const size_t trees = corpus.size();
  const size_t nodes = corpus.TotalNodes();
  if (trees == 0) {
    std::fprintf(stderr, "no trees to pack (empty corpus)\n");
    return 1;
  }

  // 2. Label + sort + index (the cost the image amortizes away).
  Timer build_timer;
  Result<SnapshotPtr> snapshot =
      CorpusSnapshot::Build(std::move(corpus), options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const double build_s = build_timer.ElapsedSeconds();

  // 3. Serialize.
  Timer save_timer;
  ImageSaveStats save_stats;
  Status s = (*snapshot)->Save(out_path, save_options, &save_stats);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const double save_s = save_timer.ElapsedSeconds();

  std::printf(
      "packed %zu trees (%s nodes, %s relation rows) into %s\n"
      "  load %.1f ms, label+sort+index %.1f ms, write %.1f ms\n",
      trees, FormatWithCommas(static_cast<int64_t>(nodes)).c_str(),
      FormatWithCommas(
          static_cast<int64_t>((*snapshot)->relation().row_count()))
          .c_str(),
      out_path.c_str(), load_s * 1e3, build_s * 1e3, save_s * 1e3);
  std::printf("  column     encoding   raw bytes      stored bytes\n");
  for (const ImageSaveStats::Column& col : save_stats.columns) {
    std::printf("  %-9s  %-8s  %12s  %12s  (%.1f%%)\n", col.name.c_str(),
                ColumnEncodingName(col.encoding),
                FormatWithCommas(static_cast<int64_t>(col.raw_bytes)).c_str(),
                FormatWithCommas(static_cast<int64_t>(col.stored_bytes))
                    .c_str(),
                col.raw_bytes == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(col.stored_bytes) /
                          static_cast<double>(col.raw_bytes));
  }
  std::printf(
      "  image %s bytes (%s raw): %.1f%% of the all-raw size\n"
      "  open it with lpath_shell ':load NAME %s' — no rebuild at serve "
      "time\n",
      FormatWithCommas(static_cast<int64_t>(save_stats.file_bytes)).c_str(),
      FormatWithCommas(static_cast<int64_t>(save_stats.raw_file_bytes))
          .c_str(),
      save_stats.raw_file_bytes == 0
          ? 100.0
          : 100.0 * static_cast<double>(save_stats.file_bytes) /
                static_cast<double>(save_stats.raw_file_bytes),
      out_path.c_str());
  return 0;
}
