// lpath_pack — offline converter from corpora to persistent relation
// images, the "load the treebank into the RDBMS once" step of the paper's
// workflow. The written image is opened by Database::Open / lpath_shell
// :load / CorpusSnapshot::Open in O(file size), with no labeling and no
// sorting at serve time.
//
//   ./examples/lpath_pack [--wsj N | --swb N | --skewed N | --corpus FILE.mrg]
//                         [--scheme lpath|xpath] [--seed S]
//                         [--encoding raw|auto] OUT.img
//   ./examples/lpath_pack --append IMG.img [--wsj N | --corpus FILE.mrg]
//
// Examples:
//   lpath_pack --wsj 4000 wsj.img          # generated WSJ profile corpus
//   lpath_pack --corpus wsj.mrg wsj.img    # bracketed treebank file
//   lpath_pack --corpus wsj.mrg --scheme xpath wsj-xpath.img
//   lpath_pack --wsj 4000 --encoding raw wsj-raw.img  # no column codecs
//   lpath_pack --append wsj.img more.mrg   # offline delta merge into image
//
// `--encoding auto` (the default) stores each row column under its
// cheapest codec and prints the per-column compression table.
//
// `--append IMG` is the offline twin of the shell's :ingest + :compact: it
// opens the existing image in O(file size), appends the input trees as a
// delta (the mapped base is never relabeled or resorted), merges the delta
// into a new image via the compaction path, and rewrites IMG crash-safely
// (tmp + rename). Per-column compression is re-chosen for the merged
// relation and the stats table is printed as for a fresh pack.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/str_util.h"
#include "common/timer.h"
#include "gen/generator.h"
#include "storage/snapshot.h"
#include "tree/bracket_io.h"

namespace {

using namespace lpath;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--wsj N | --swb N | --skewed N | --corpus FILE.mrg]\n"
      "          [--scheme lpath|xpath] [--seed S] [--encoding raw|auto] "
      "OUT.img\n"
      "       %s --append IMG.img [--wsj N | --corpus FILE.mrg]\n",
      argv0, argv0);
  return 2;
}

void PrintSaveStats(const ImageSaveStats& save_stats) {
  std::printf("  column     encoding   raw bytes      stored bytes\n");
  for (const ImageSaveStats::Column& col : save_stats.columns) {
    std::printf("  %-9s  %-8s  %12s  %12s  (%.1f%%)\n", col.name.c_str(),
                ColumnEncodingName(col.encoding),
                FormatWithCommas(static_cast<int64_t>(col.raw_bytes)).c_str(),
                FormatWithCommas(static_cast<int64_t>(col.stored_bytes))
                    .c_str(),
                col.raw_bytes == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(col.stored_bytes) /
                          static_cast<double>(col.raw_bytes));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile = "wsj";
  std::string corpus_path;
  std::string out_path;
  std::string append_image;
  int sentences = 1000;
  uint64_t seed = 2006;
  RelationOptions options;
  ImageSaveOptions save_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--wsj" || arg == "--swb" || arg == "--skewed") &&
        i + 1 < argc) {
      profile = arg.substr(2);
      sentences = std::atoi(argv[++i]);
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_path = argv[++i];
    } else if (arg == "--append" && i + 1 < argc) {
      append_image = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--encoding" && i + 1 < argc) {
      const std::string encoding = argv[++i];
      if (encoding == "raw") {
        save_options.encoding = ImageEncoding::kRaw;
      } else if (encoding == "auto") {
        save_options.encoding = ImageEncoding::kAuto;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--scheme" && i + 1 < argc) {
      const std::string scheme = argv[++i];
      if (scheme == "lpath") {
        options.scheme = LabelScheme::kLPath;
      } else if (scheme == "xpath") {
        options.scheme = LabelScheme::kXPath;
      } else {
        return Usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!append_image.empty()) {
    // In append mode the positional argument is the input treebank (same
    // as --corpus); a generator profile works too, and the image is the
    // output.
    if (corpus_path.empty() && !out_path.empty()) corpus_path = out_path;
    out_path = append_image;
  } else if (out_path.empty()) {
    return Usage(argv[0]);
  }

  // 1. Load or generate the corpus.
  Timer load_timer;
  Corpus corpus;
  if (!corpus_path.empty()) {
    Status s = LoadBracketFile(corpus_path, &corpus);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", corpus_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  } else {
    Result<Corpus> generated =
        profile == "wsj"    ? gen::GenerateWsj(sentences, seed)
        : profile == "swb"  ? gen::GenerateSwb(sentences, seed)
                            : gen::GenerateSkewed(sentences, seed);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(generated).value();
  }
  const double load_s = load_timer.ElapsedSeconds();
  const size_t trees = corpus.size();
  const size_t nodes = corpus.TotalNodes();
  if (trees == 0) {
    std::fprintf(stderr, "no trees to pack (empty corpus)\n");
    return 1;
  }

  if (!append_image.empty()) {
    // Offline delta merge: map the image, append the new trees as a delta
    // (only they are labeled — O(new trees)), fold the chain back into the
    // image via the compaction path.
    Timer open_timer;
    Result<SnapshotPtr> base = CorpusSnapshot::Open(append_image);
    if (!base.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", append_image.c_str(),
                   base.status().ToString().c_str());
      return 1;
    }
    const int32_t base_trees = (*base)->tree_count();
    const double open_s = open_timer.ElapsedSeconds();
    Timer append_timer;
    Result<SnapshotPtr> chained = (*base)->Append(corpus);
    if (!chained.ok()) {
      std::fprintf(stderr, "%s\n", chained.status().ToString().c_str());
      return 1;
    }
    const double append_s = append_timer.ElapsedSeconds();
    Timer merge_timer;
    ImageSaveStats save_stats;
    Result<SnapshotPtr> compacted = (*chained)->Compact(&save_stats);
    if (!compacted.ok()) {
      std::fprintf(stderr, "%s\n", compacted.status().ToString().c_str());
      return 1;
    }
    const double merge_s = merge_timer.ElapsedSeconds();
    std::printf(
        "appended %zu trees (%s nodes) onto %s (%d trees) — now %d trees, "
        "%s relation rows\n"
        "  load %.1f ms, map %.1f ms, label+append %.1f ms, merge+rewrite "
        "%.1f ms\n",
        trees, FormatWithCommas(static_cast<int64_t>(nodes)).c_str(),
        append_image.c_str(), base_trees, (*compacted)->tree_count(),
        FormatWithCommas(
            static_cast<int64_t>((*compacted)->relation().row_count()))
            .c_str(),
        load_s * 1e3, open_s * 1e3, append_s * 1e3, merge_s * 1e3);
    PrintSaveStats(save_stats);
    std::printf(
        "  image %s bytes (%s raw): %.1f%% of the all-raw size\n",
        FormatWithCommas(static_cast<int64_t>(save_stats.file_bytes)).c_str(),
        FormatWithCommas(static_cast<int64_t>(save_stats.raw_file_bytes))
            .c_str(),
        save_stats.raw_file_bytes == 0
            ? 100.0
            : 100.0 * static_cast<double>(save_stats.file_bytes) /
                  static_cast<double>(save_stats.raw_file_bytes));
    return 0;
  }

  // 2. Label + sort + index (the cost the image amortizes away).
  Timer build_timer;
  Result<SnapshotPtr> snapshot =
      CorpusSnapshot::Build(std::move(corpus), options);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const double build_s = build_timer.ElapsedSeconds();

  // 3. Serialize.
  Timer save_timer;
  ImageSaveStats save_stats;
  Status s = (*snapshot)->Save(out_path, save_options, &save_stats);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const double save_s = save_timer.ElapsedSeconds();

  std::printf(
      "packed %zu trees (%s nodes, %s relation rows) into %s\n"
      "  load %.1f ms, label+sort+index %.1f ms, write %.1f ms\n",
      trees, FormatWithCommas(static_cast<int64_t>(nodes)).c_str(),
      FormatWithCommas(
          static_cast<int64_t>((*snapshot)->relation().row_count()))
          .c_str(),
      out_path.c_str(), load_s * 1e3, build_s * 1e3, save_s * 1e3);
  PrintSaveStats(save_stats);
  std::printf(
      "  image %s bytes (%s raw): %.1f%% of the all-raw size\n"
      "  open it with lpath_shell ':load NAME %s' — no rebuild at serve "
      "time\n",
      FormatWithCommas(static_cast<int64_t>(save_stats.file_bytes)).c_str(),
      FormatWithCommas(static_cast<int64_t>(save_stats.raw_file_bytes))
          .c_str(),
      save_stats.raw_file_bytes == 0
          ? 100.0
          : 100.0 * static_cast<double>(save_stats.file_bytes) /
                static_cast<double>(save_stats.raw_file_bytes),
      out_path.c_str());
  return 0;
}
