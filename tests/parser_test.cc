// Tests for the LPath parser: the full 23-query benchmark suite, every
// Figure 2 query, axis spellings, quoting, scoping/alignment syntax, error
// cases, and ToString round-trips.

#include "lpath/parser.h"

#include <gtest/gtest.h>

#include "lpath/ast.h"

namespace lpath {
namespace {

LocationPath MustParse(const std::string& q) {
  Result<LocationPath> r = ParseLPath(q);
  EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
  return r.ok() ? std::move(r).value() : LocationPath{};
}

TEST(ParserTest, SimpleDescendant) {
  LocationPath p = MustParse("//S");
  EXPECT_TRUE(p.absolute);
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[0].test.name, "S");
}

TEST(ParserTest, RootChild) {
  LocationPath p = MustParse("/S/NP");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[1].axis, Axis::kChild);
}

TEST(ParserTest, HorizontalAxes) {
  LocationPath p = MustParse("//V->NP");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, Axis::kImmediateFollowing);

  p = MustParse("//V-->N");
  EXPECT_EQ(p.steps[1].axis, Axis::kFollowing);

  p = MustParse("//V==>NP");
  EXPECT_EQ(p.steps[1].axis, Axis::kFollowingSibling);

  p = MustParse("//V=>NP");
  EXPECT_EQ(p.steps[1].axis, Axis::kImmediateFollowingSibling);

  p = MustParse("//NP<-V");
  EXPECT_EQ(p.steps[1].axis, Axis::kImmediatePreceding);

  p = MustParse("//NP<--V");
  EXPECT_EQ(p.steps[1].axis, Axis::kPreceding);

  p = MustParse("//NP<=V");
  EXPECT_EQ(p.steps[1].axis, Axis::kImmediatePrecedingSibling);

  p = MustParse("//NP<==V");
  EXPECT_EQ(p.steps[1].axis, Axis::kPrecedingSibling);
}

TEST(ParserTest, VerticalAxes) {
  LocationPath p = MustParse("//N\\NP");
  EXPECT_EQ(p.steps[1].axis, Axis::kParent);
  p = MustParse("//N\\\\S");
  EXPECT_EQ(p.steps[1].axis, Axis::kAncestor);
  p = MustParse("//N\\ancestor::S");
  EXPECT_EQ(p.steps[1].axis, Axis::kAncestor);
  p = MustParse("//VP/descendant::N");
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
  p = MustParse("//VP//N");
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
}

TEST(ParserTest, FullAxisNames) {
  LocationPath p = MustParse("//V/following-sibling::NP");
  EXPECT_EQ(p.steps[1].axis, Axis::kFollowingSibling);
  p = MustParse("//V/immediate-following::NP");
  EXPECT_EQ(p.steps[1].axis, Axis::kImmediateFollowing);
  p = MustParse("//V/following-sibling-or-self::NP");
  EXPECT_EQ(p.steps[1].axis, Axis::kFollowingSiblingOrSelf);
  p = MustParse("//V/ancestor-or-self::_");
  EXPECT_EQ(p.steps[1].axis, Axis::kAncestorOrSelf);
  EXPECT_TRUE(p.steps[1].test.is_wildcard());
}

TEST(ParserTest, WildcardAndQuoting) {
  LocationPath p = MustParse("//_");
  EXPECT_TRUE(p.steps[0].test.is_wildcard());
  p = MustParse("//*");
  EXPECT_TRUE(p.steps[0].test.is_wildcard());
  p = MustParse("//'PRP$'");
  EXPECT_EQ(p.steps[0].test.name, "PRP$");
  p = MustParse("//\".\"");
  EXPECT_EQ(p.steps[0].test.name, ".");
  p = MustParse("//-NONE-");
  EXPECT_EQ(p.steps[0].test.name, "-NONE-");
  p = MustParse("//-DFL-");
  EXPECT_EQ(p.steps[0].test.name, "-DFL-");
  p = MustParse("//NP-SBJ");
  EXPECT_EQ(p.steps[0].test.name, "NP-SBJ");
}

TEST(ParserTest, TagVsArrowAmbiguity) {
  // '-' belongs to the tag unless it begins "->" or "-->".
  LocationPath p = MustParse("//ADVP-LOC-CLR");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].test.name, "ADVP-LOC-CLR");

  p = MustParse("//X->Y");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].test.name, "X");
  EXPECT_EQ(p.steps[1].axis, Axis::kImmediateFollowing);

  p = MustParse("//X-->Y");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].test.name, "X");
  EXPECT_EQ(p.steps[1].axis, Axis::kFollowing);
}

TEST(ParserTest, ScopingAndAlignment) {
  LocationPath p = MustParse("//VP{/NP$}");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].opens_scopes, 1);
  EXPECT_TRUE(p.steps[1].right_align);
  EXPECT_FALSE(p.steps[1].left_align);

  p = MustParse("//VP{//^NP}");
  EXPECT_TRUE(p.steps[1].left_align);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
}

TEST(ParserTest, PredicateWithAttrCompare) {
  LocationPath p = MustParse("//S[//_[@lex=saw]]");
  ASSERT_EQ(p.steps.size(), 1u);
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  const PredExpr& e = *p.steps[0].predicates[0];
  ASSERT_EQ(e.kind, PredExpr::Kind::kPath);
  ASSERT_EQ(e.path.steps.size(), 1u);
  const Step& inner = e.path.steps[0];
  EXPECT_TRUE(inner.test.is_wildcard());
  ASSERT_EQ(inner.predicates.size(), 1u);
  const PredExpr& cmp = *inner.predicates[0];
  ASSERT_EQ(cmp.kind, PredExpr::Kind::kCompare);
  EXPECT_EQ(cmp.literal, "saw");
  EXPECT_EQ(cmp.cmp, CmpOp::kEq);
  ASSERT_EQ(cmp.path.steps.size(), 1u);
  EXPECT_EQ(cmp.path.steps[0].axis, Axis::kAttribute);
  EXPECT_EQ(cmp.path.steps[0].test.name, "lex");
}

TEST(ParserTest, PredicateNotAndBoolean) {
  LocationPath p = MustParse("//NP[not(//JJ)]");
  const PredExpr& e = *p.steps[0].predicates[0];
  EXPECT_EQ(e.kind, PredExpr::Kind::kNot);
  EXPECT_EQ(e.lhs->kind, PredExpr::Kind::kPath);

  p = MustParse("//NP[//JJ and not(//DT) or //CD]");
  const PredExpr& b = *p.steps[0].predicates[0];
  EXPECT_EQ(b.kind, PredExpr::Kind::kOr);
  EXPECT_EQ(b.lhs->kind, PredExpr::Kind::kAnd);
}

TEST(ParserTest, PredicateScopedPathWithAlignment) {
  // Q7: //VP[{//^VB->NP->PP$}]
  LocationPath p = MustParse("//VP[{//^VB->NP->PP$}]");
  const PredExpr& e = *p.steps[0].predicates[0];
  ASSERT_EQ(e.kind, PredExpr::Kind::kPath);
  EXPECT_EQ(e.path.leading_scopes, 1);
  ASSERT_EQ(e.path.steps.size(), 3u);
  EXPECT_TRUE(e.path.steps[0].left_align);
  EXPECT_EQ(e.path.steps[0].test.name, "VB");
  EXPECT_EQ(e.path.steps[1].axis, Axis::kImmediateFollowing);
  EXPECT_TRUE(e.path.steps[2].right_align);
}

TEST(ParserTest, PredicatePathStartingWithHorizontalAxis) {
  // Q10: //NP[->PP[//IN[@lex=of]]=>VP]
  LocationPath p = MustParse("//NP[->PP[//IN[@lex=of]]=>VP]");
  const PredExpr& e = *p.steps[0].predicates[0];
  ASSERT_EQ(e.kind, PredExpr::Kind::kPath);
  ASSERT_EQ(e.path.steps.size(), 2u);
  EXPECT_EQ(e.path.steps[0].axis, Axis::kImmediateFollowing);
  EXPECT_EQ(e.path.steps[0].test.name, "PP");
  EXPECT_EQ(e.path.steps[0].predicates.size(), 1u);
  EXPECT_EQ(e.path.steps[1].axis, Axis::kImmediateFollowingSibling);
  EXPECT_EQ(e.path.steps[1].test.name, "VP");
}

TEST(ParserTest, PositionalPredicates) {
  LocationPath p = MustParse("//V/following-sibling::_[position()=1][self::NP]");
  ASSERT_EQ(p.steps.size(), 2u);
  ASSERT_EQ(p.steps[1].predicates.size(), 2u);
  EXPECT_EQ(p.steps[1].predicates[0]->kind, PredExpr::Kind::kPosition);
  EXPECT_EQ(p.steps[1].predicates[0]->number, 1);
  EXPECT_EQ(p.steps[1].predicates[1]->kind, PredExpr::Kind::kPath);

  p = MustParse("//VP/_[last()][self::NP]");
  EXPECT_EQ(p.steps[1].predicates[0]->kind, PredExpr::Kind::kLast);

  p = MustParse("//VP/_[2]");
  EXPECT_EQ(p.steps[1].predicates[0]->kind, PredExpr::Kind::kNumber);
  EXPECT_EQ(p.steps[1].predicates[0]->number, 2);

  p = MustParse("//VP/_[position()=last()]");
  EXPECT_TRUE(p.steps[1].predicates[0]->vs_last);
}

TEST(ParserTest, BareNameInPredicateIsChild) {
  LocationPath p = MustParse("//VP[NP]");
  const PredExpr& e = *p.steps[0].predicates[0];
  ASSERT_EQ(e.kind, PredExpr::Kind::kPath);
  ASSERT_EQ(e.path.steps.size(), 1u);
  EXPECT_EQ(e.path.steps[0].axis, Axis::kChild);
  EXPECT_EQ(e.path.steps[0].test.name, "NP");
}

TEST(ParserTest, ParentStepAbbreviation) {
  LocationPath p = MustParse("//NP/..");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, Axis::kParent);
  EXPECT_TRUE(p.steps[1].test.is_wildcard());
}

TEST(ParserTest, ValueLiteralForms) {
  LocationPath p = MustParse("//_[@lex='saw']");
  EXPECT_EQ(p.steps[0].predicates[0]->literal, "saw");
  p = MustParse("//_[@lex=\"a b\"]");
  EXPECT_EQ(p.steps[0].predicates[0]->literal, "a b");
  p = MustParse("//_[@lex=1929]");
  EXPECT_EQ(p.steps[0].predicates[0]->literal, "1929");
  p = MustParse("//_[@lex!=saw]");
  EXPECT_EQ(p.steps[0].predicates[0]->cmp, CmpOp::kNe);
}

TEST(ParserTest, WhitespaceTolerated) {
  LocationPath p = MustParse("  //VP { / V --> N }  ");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[0].opens_scopes, 1);
  EXPECT_EQ(p.steps[2].axis, Axis::kFollowing);
}

TEST(ParserTest, The23QuerySuiteParses) {
  const char* kQueries[] = {
      "//S[//_[@lex=saw]]",
      "//VB->NP",
      "//VP/VB-->NN",
      "//VP{/VB-->NN}",
      "//VP{/NP$}",
      "//VP{//NP$}",
      "//VP[{//^VB->NP->PP$}]",
      "//S[//NP/ADJP]",
      "//NP[not(//JJ)]",
      "//NP[->PP[//IN[@lex=of]]=>VP]",
      "//S[{//_[@lex=what]->_[@lex=building]}]",
      "//_[@lex=rapprochement]",
      "//_[@lex=1929]",
      "//ADVP-LOC-CLR",
      "//WHPP",
      "//RRC/PP-TMP",
      "//UCP-PRD/ADJP-PRD",
      "//NP/NP/NP/NP/NP",
      "//VP/VP/VP",
      "//PP=>SBAR",
      "//ADVP=>ADJP",
      "//NP=>NP=>NP",
      "//VP=>VP",
  };
  for (const char* q : kQueries) {
    Result<LocationPath> r = ParseLPath(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
  }
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* kQueries[] = {
      "//S[//_[@lex=saw]]",
      "//VB->NP",
      "//VP/VB-->NN",
      "//VP{/VB-->NN}",
      "//VP{/NP$}",
      "//VP{//NP$}",
      "//VP[{//^VB->NP->PP$}]",
      "//NP[not(//JJ)]",
      "//NP[->PP[//IN[@lex=of]]=>VP]",
      "//S[{//_[@lex=what]->_[@lex=building]}]",
      "//NP=>NP=>NP",
      "//V==>NP",
      "//N\\NP",
      "//N\\\\S",
  };
  for (const char* q : kQueries) {
    LocationPath p1 = MustParse(q);
    std::string s1 = ToString(p1);
    LocationPath p2 = MustParse(s1);
    EXPECT_EQ(s1, ToString(p2)) << "original: " << q;
  }
}

TEST(ParserTest, ExpressibilityClassification) {
  // The 11 XPath-expressible queries of Figure 10.
  EXPECT_TRUE(IsXPathExpressible(MustParse("//S[//_[@lex=saw]]")));
  EXPECT_TRUE(IsXPathExpressible(MustParse("//S[//NP/ADJP]")));
  EXPECT_TRUE(IsXPathExpressible(MustParse("//NP[not(//JJ)]")));
  EXPECT_TRUE(IsXPathExpressible(MustParse("//NP/NP/NP/NP/NP")));
  // Immediate axes, scopes and alignment are not XPath-expressible.
  EXPECT_FALSE(IsXPathExpressible(MustParse("//VB->NP")));
  EXPECT_FALSE(IsXPathExpressible(MustParse("//VP{/VB-->NN}")));
  EXPECT_FALSE(IsXPathExpressible(MustParse("//VP{/NP$}")));
  EXPECT_FALSE(IsXPathExpressible(MustParse("//PP=>SBAR")));
  EXPECT_FALSE(IsXPathExpressible(MustParse("//NP[->PP=>VP]")));
}

TEST(ParserTest, PositionalDetection) {
  EXPECT_TRUE(UsesPositionalPredicates(
      MustParse("//V/following-sibling::_[position()=1]")));
  EXPECT_TRUE(UsesPositionalPredicates(MustParse("//VP/_[last()]")));
  EXPECT_TRUE(UsesPositionalPredicates(MustParse("//VP/_[2]")));
  EXPECT_FALSE(UsesPositionalPredicates(MustParse("//VP[//NP]")));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseLPath("").ok());
  EXPECT_FALSE(ParseLPath("NP").ok());            // must be absolute
  EXPECT_FALSE(ParseLPath("//").ok());            // missing node test
  EXPECT_FALSE(ParseLPath("//VP{").ok());         // unclosed scope
  EXPECT_FALSE(ParseLPath("//VP}").ok());         // unopened close... trailing
  EXPECT_FALSE(ParseLPath("//VP{/V}/N").ok());    // step after '}'
  EXPECT_FALSE(ParseLPath("//VP[").ok());         // unclosed predicate
  EXPECT_FALSE(ParseLPath("//VP[]").ok());        // empty predicate
  EXPECT_FALSE(ParseLPath("//@lex/NP").ok());     // attribute mid-path
  EXPECT_FALSE(ParseLPath("//_[NP=saw]").ok());   // compare on element path
  EXPECT_FALSE(ParseLPath("//_[@lex=]").ok());    // missing literal
  EXPECT_FALSE(ParseLPath("//VP extra").ok());    // trailing garbage
  EXPECT_FALSE(ParseLPath("//'unterminated").ok());
}

}  // namespace
}  // namespace lpath
