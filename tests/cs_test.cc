// Tests for the CorpusSearch-style baseline: query parsing, same-instance
// variable semantics, the relation set, and agreement with the LPath engine
// on translated queries.

#include "cs/engine.h"

#include <gtest/gtest.h>

#include "cs/parser.h"
#include "lpath/engines.h"
#include "test_util.h"

namespace lpath {
namespace {

using cs::CorpusSearchEngine;
using cs::CsRel;
using cs::ParseCsQuery;

TEST(CsParserTest, FullQueryFile) {
  Result<cs::CsQuery> q = ParseCsQuery(
      "node: IP*\n"
      "focus: NP=b\n"
      "query: (NP=a iDoms NP=b) AND NOT (NP=a Doms JJ)\n");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->boundary_glob, "IP*");
  EXPECT_EQ(q->focus, "b");
  ASSERT_EQ(q->expr->kind, cs::CsExpr::Kind::kAnd);
  EXPECT_EQ(q->expr->lhs->cond.rel, CsRel::kIDoms);
  EXPECT_EQ(q->expr->rhs->kind, cs::CsExpr::Kind::kNot);
}

TEST(CsParserTest, BareQueryDefaultsToRootBoundary) {
  Result<cs::CsQuery> q = ParseCsQuery("(NP iDoms Det)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->boundary_glob, "$ROOT");
  EXPECT_TRUE(q->focus.empty());
}

TEST(CsParserTest, CommentsAndGroups) {
  Result<cs::CsQuery> q = ParseCsQuery(
      "// find coordinations\n"
      "query: ((NP iDoms Det) OR (NP iDoms Adj)) AND (NP hasSister)\n");
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST(CsParserTest, Errors) {
  EXPECT_FALSE(ParseCsQuery("").ok());
  EXPECT_FALSE(ParseCsQuery("(NP bogusRel VP)").ok());
  EXPECT_FALSE(ParseCsQuery("(NP iDoms)").ok());
  EXPECT_FALSE(ParseCsQuery("(NP iDoms VP").ok());
  EXPECT_FALSE(ParseCsQuery("(NP iDomsNumber x VP)").ok());
}

class CsFigure1Test : public ::testing::Test {
 protected:
  CsFigure1Test()
      : corpus_(testing::BuildFigure1Corpus()), engine_(corpus_) {}

  std::vector<int32_t> Ids(const std::string& query) {
    Result<QueryResult> r = engine_.Run(query);
    EXPECT_TRUE(r.ok()) << query << " -> " << r.status();
    std::vector<int32_t> ids;
    if (r.ok()) {
      for (const Hit& h : r->hits) ids.push_back(h.id);
    }
    return ids;
  }

  Corpus corpus_;
  CorpusSearchEngine engine_;
};

using V = std::vector<int32_t>;

TEST_F(CsFigure1Test, DominanceAndWords) {
  EXPECT_EQ(Ids("(S Doms saw)"), V({1}));
  EXPECT_EQ(Ids("(NP iDoms Det)"), V({6, 12}));
  EXPECT_EQ(Ids("(VP Doms dog)"), V({3}));
  EXPECT_EQ(Ids("focus: Det\nquery: (NP iDoms Det)"), V({7, 13}));
}

TEST_F(CsFigure1Test, PrecedenceRelations) {
  EXPECT_EQ(Ids("focus: NP\nquery: (NP iFollows V)"), V({5, 6}));
  EXPECT_EQ(Ids("focus: N\nquery: (N Follows V)"), V({9, 14, 15}));
  EXPECT_EQ(Ids("(V iPrecedes NP)"), V({4}));
}

TEST_F(CsFigure1Test, SameInstanceSharing) {
  // Q4 shape: N follows V, V child of VP, N inside the same VP.
  EXPECT_EQ(Ids("focus: N\n"
                "query: (N Follows V) AND (VP iDoms V) AND (VP Doms N)"),
            V({9, 14}));
  // Without the scope conjunct: all three.
  EXPECT_EQ(Ids("focus: N\nquery: (N Follows V) AND (VP iDoms V)"),
            V({9, 14, 15}));
}

TEST_F(CsFigure1Test, EdgeAlignmentRelations) {
  EXPECT_EQ(Ids("focus: NP\nquery: (VP iDomsLast NP)"), V({5}));
  EXPECT_EQ(Ids("focus: NP\nquery: (VP domsLast NP)"), V({5, 12}));
  EXPECT_EQ(Ids("focus: V\nquery: (VP domsFirst V)"), V({4}));
  EXPECT_EQ(Ids("focus: Adj\nquery: (NP iDomsNumber 2 Adj)"), V({8}));
  EXPECT_EQ(Ids("(NP iDomsOnly I)"), V({2}));
}

TEST_F(CsFigure1Test, SisterRelations) {
  EXPECT_EQ(Ids("focus: VP\nquery: (NP iSisterPrecedes VP)"), V({3}));
  EXPECT_EQ(Ids("focus: N\nquery: (Det sisterPrecedes N)"), V({9, 14}));
  EXPECT_EQ(Ids("(N hasSister)"), V({9, 14, 15}));
}

TEST_F(CsFigure1Test, BooleanAndNot) {
  EXPECT_EQ(Ids("(NP exists) AND NOT (NP Doms Det)"), V({2}));
  EXPECT_EQ(Ids("((NP iDoms Adj) OR (NP iDoms Prep))"), V({6}));
}

TEST_F(CsFigure1Test, NamedVariablesForSameTagChains) {
  // Q18 shape with three NPs.
  EXPECT_EQ(Ids("focus: NP=c\n"
                "query: (NP=a iDoms NP=b) AND (NP=b iDoms NP=c)"),
            V());
  // Two-level chain exists: NP6 iDoms NP7.
  EXPECT_EQ(Ids("focus: NP=b\nquery: (NP=a iDoms NP=b)"), V({6}));
}

TEST_F(CsFigure1Test, BoundaryRestriction) {
  // Boundary NP: Det must be found within an NP subtree.
  EXPECT_EQ(Ids("node: NP\nfocus: Det\nquery: (Det exists)"), V({7, 13}));
  // Boundary VP: N(today) is outside.
  EXPECT_EQ(Ids("node: VP\nfocus: N\nquery: (N exists)"), V({9, 14}));
}

TEST_F(CsFigure1Test, UnknownFocusIsAnError) {
  Result<QueryResult> r = engine_.Run("focus: z\nquery: (NP iDoms VP)");
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(CsFigure1Test, GlobPatterns) {
  EXPECT_EQ(Ids("focus: N*\nquery: (N* iFollows V)"), V({5, 6}));
  EXPECT_EQ(Ids("(* iDoms rapprochement)"), V());
  EXPECT_EQ(Ids("(* iDoms saw)"), V({4}));
}

// Differential: CS translations agree with the LPath engine.
TEST(CsDifferentialTest, AgreesWithLPathOnTranslations) {
  struct Pair {
    const char* lpath;
    const char* cs;
  };
  const Pair kPairs[] = {
      // Words are leaf nodes in the CorpusSearch view, so (S Doms saw) also
      // matches an S pre-terminal carrying the word itself.
      {"//S[@lex=saw or //_[@lex=saw]]", "(S Doms saw)"},
      {"//V->NP", "focus: NP\nquery: (NP iFollows V)"},
      {"//VP/V-->N", "focus: N\nquery: (N Follows V) AND (VP iDoms V)"},
      {"//VP{/V-->N}",
       "focus: N\nquery: (N Follows V) AND (VP iDoms V) AND (VP Doms N)"},
      {"//VP{/NP$}", "focus: NP\nquery: (VP iDomsLast NP)"},
      {"//VP{//NP$}", "focus: NP\nquery: (VP domsLast NP)"},
      {"//NP[not(//Det)]", "(NP exists) AND NOT (NP Doms Det)"},
      {"//PP=>X", "focus: X\nquery: (PP iSisterPrecedes X)"},
      {"//Det\\NP", "(NP iDoms Det)"},
      {"//S//N", "focus: N\nquery: (S Doms N)"},
  };
  for (uint64_t seed : {9u, 19u}) {
    Corpus corpus = testing::RandomCorpus(seed, /*trees=*/20);
    Result<NodeRelation> rel = NodeRelation::Build(corpus);
    ASSERT_TRUE(rel.ok());
    LPathEngine lpath(rel.value());
    CorpusSearchEngine cs_engine(corpus);
    for (const Pair& pair : kPairs) {
      Result<QueryResult> a = lpath.Run(pair.lpath);
      Result<QueryResult> b = cs_engine.Run(pair.cs);
      ASSERT_TRUE(a.ok()) << pair.lpath << ": " << a.status();
      ASSERT_TRUE(b.ok()) << pair.cs << ": " << b.status();
      EXPECT_EQ(a.value(), b.value())
          << pair.lpath << " vs " << pair.cs << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace lpath
