// Write-ahead log unit battery (storage/wal.h) plus fault-injected
// ImageIO::Save (storage/io_hooks.h). The contracts under test:
//   - *committed means recoverable*: every Append acknowledged before a
//     simulated crash is replayed byte-identically after reopen, in LSN
//     order, across segment rotations and reopens;
//   - *torn tails truncate, corruption rejects*: a file cut at any byte
//     recovers the clean prefix of whole records; a bit flip anywhere
//     yields either that clean prefix or a clean Status::Corruption —
//     never a crash, never garbage records;
//   - *failed appends never commit*: an injected write/fsync failure
//     surfaces as an error and the record is invisible to replay and to
//     recovery, with the log still usable (or explicitly wedged);
//   - *checkpoints drop covered segments without losing the LSN position*,
//     even when they empty the log entirely;
//   - *ImageIO::Save under fault injection* returns a clean Status, never
//     clobbers the pre-existing image, and leaks no temp files.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/image.h"
#include "storage/io_hooks.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "test_util.h"
#include "tree/corpus.h"

namespace lpath {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("lpathdb_wal_") + info->test_suite_name() + "_" +
             info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }

  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

std::unique_ptr<Wal> MustOpenWal(const std::string& dir,
                                 WalOptions options = {}) {
  Result<std::unique_ptr<Wal>> wal = Wal::Open(dir, options);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return std::move(wal).value();
}

uint64_t MustAppend(Wal* wal, std::string_view payload) {
  Result<uint64_t> lsn = wal->Append(payload);
  EXPECT_TRUE(lsn.ok()) << lsn.status().ToString();
  return lsn.ok() ? *lsn : 0;
}

/// Replays everything after `after_lsn` into (lsn, payload) pairs.
std::vector<std::pair<uint64_t, std::string>> ReplayAll(
    const Wal& wal, uint64_t after_lsn = 0) {
  std::vector<std::pair<uint64_t, std::string>> out;
  const Status st =
      wal.Replay(after_lsn, [&](uint64_t lsn, std::string_view payload) {
        out.emplace_back(lsn, std::string(payload));
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".wal") out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> TmpFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().find(".tmp.") != std::string::npos) {
      out.push_back(e.path().string());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Append / replay basics

TEST(Wal, AppendReplayRoundtrip) {
  TempDir dir;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  EXPECT_EQ(wal->last_lsn(), 0u);

  const std::vector<std::string> payloads = {
      "(S (NP a))", std::string("sec\0ond", 7), std::string(1000, 'z')};
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(MustAppend(wal.get(), payloads[i]), i + 1);
  }
  EXPECT_EQ(wal->last_lsn(), 3u);

  const auto replayed = ReplayAll(*wal);
  ASSERT_EQ(replayed.size(), 3u);
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(replayed[i].first, i + 1);
    EXPECT_EQ(replayed[i].second, payloads[i]);
  }
  // after_lsn filters an exact prefix.
  EXPECT_EQ(ReplayAll(*wal, 2).size(), 1u);
  EXPECT_EQ(ReplayAll(*wal, 3).size(), 0u);

  const WalStats stats = wal->stats();
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_EQ(stats.last_lsn, 3u);
  EXPECT_EQ(stats.segments, 1u);
}

TEST(Wal, RejectsEmptyPayload) {
  TempDir dir;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  EXPECT_EQ(wal->Append("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(wal->last_lsn(), 0u);
}

TEST(Wal, ReopenContinuesLsnSequence) {
  TempDir dir;
  {
    std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
    MustAppend(wal.get(), "one");
    MustAppend(wal.get(), "two");
  }
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  EXPECT_EQ(wal->last_lsn(), 2u);
  EXPECT_EQ(wal->stats().recovered_records, 2u);
  EXPECT_EQ(MustAppend(wal.get(), "three"), 3u);
  const auto replayed = ReplayAll(*wal);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[2].second, "three");
}

TEST(Wal, RotatesSegmentsAndReplaysAcrossThem) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 256;  // a few records per segment
  options.sync = false;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"), options);
  std::vector<std::string> payloads;
  for (int i = 0; i < 40; ++i) {
    payloads.push_back("payload-" + std::to_string(i) +
                       std::string(32, 'x'));
    MustAppend(wal.get(), payloads.back());
  }
  EXPECT_GT(wal->stats().segments, 3u);
  EXPECT_EQ(SegmentFiles(dir.File("wal")).size(), wal->stats().segments);

  const auto replayed = ReplayAll(*wal);
  ASSERT_EQ(replayed.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(replayed[i].first, i + 1);
    EXPECT_EQ(replayed[i].second, payloads[i]);
  }

  // And identically after a reopen.
  wal.reset();
  wal = MustOpenWal(dir.File("wal"), options);
  EXPECT_EQ(ReplayAll(*wal).size(), payloads.size());
  EXPECT_EQ(wal->last_lsn(), payloads.size());
}

// ---------------------------------------------------------------------------
// Torn tails and corruption

TEST(Wal, TornTailTruncatedAtEveryCutPoint) {
  // Build a small log, then for every possible cut length reopen a copy
  // truncated to that length: recovery must yield exactly the records
  // wholly inside the cut, and appending afterwards must work.
  TempDir dir;
  WalOptions options;
  options.sync = false;
  const std::vector<std::string> payloads = {"alpha", "bravo-bravo",
                                             "charlie"};
  std::vector<uint64_t> ends;  // file size after each append
  {
    std::unique_ptr<Wal> wal = MustOpenWal(dir.File("ref"), options);
    for (const std::string& p : payloads) {
      MustAppend(wal.get(), p);
      ends.push_back(fs::file_size(SegmentFiles(dir.File("ref"))[0]));
    }
  }
  const std::string full = ReadAllBytes(SegmentFiles(dir.File("ref"))[0]);

  for (size_t cut = 0; cut < full.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::string wal_dir = dir.File("cut");
    fs::remove_all(wal_dir);
    fs::create_directories(wal_dir);
    WriteAllBytes(wal_dir + "/0000000000000001.wal", full.substr(0, cut));

    std::unique_ptr<Wal> wal = MustOpenWal(wal_dir, options);
    size_t want = 0;
    while (want < ends.size() && ends[want] <= cut) ++want;
    const auto replayed = ReplayAll(*wal);
    ASSERT_EQ(replayed.size(), want);
    for (size_t i = 0; i < want; ++i) {
      EXPECT_EQ(replayed[i].second, payloads[i]);
    }
    // A cut at a record boundary (or inside the 32-byte segment header,
    // where the whole file is dropped) tears nothing; any other cut must
    // be accounted as truncation.
    const bool clean_boundary =
        cut < 32 || cut == 32 ||
        std::find(ends.begin(), ends.end(), cut) != ends.end();
    if (!clean_boundary) {
      EXPECT_GT(wal->stats().truncated_bytes, 0u);
    }
    // The recovered log accepts appends at the right LSN.
    EXPECT_EQ(MustAppend(wal.get(), "post-crash"), want + 1);
  }
}

TEST(Wal, BitFlipYieldsCleanPrefixOrCleanError) {
  // Flip each byte of a three-record segment: Open must either succeed
  // with a clean prefix of the original records or fail with a clean
  // Corruption status — never crash, never serve altered payloads.
  TempDir dir;
  WalOptions options;
  options.sync = false;
  const std::vector<std::string> payloads = {"alpha", "bravo-bravo",
                                             "charlie"};
  {
    std::unique_ptr<Wal> wal = MustOpenWal(dir.File("ref"), options);
    for (const std::string& p : payloads) MustAppend(wal.get(), p);
  }
  const std::string full = ReadAllBytes(SegmentFiles(dir.File("ref"))[0]);

  for (size_t pos = 0; pos < full.size(); ++pos) {
    SCOPED_TRACE("flip=" + std::to_string(pos));
    std::string flipped = full;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    const std::string wal_dir = dir.File("flip");
    fs::remove_all(wal_dir);
    fs::create_directories(wal_dir);
    WriteAllBytes(wal_dir + "/0000000000000001.wal", flipped);

    Result<std::unique_ptr<Wal>> wal = Wal::Open(wal_dir, options);
    if (!wal.ok()) {
      EXPECT_EQ(wal.status().code(), StatusCode::kCorruption)
          << wal.status().ToString();
      continue;
    }
    std::vector<std::string> got;
    const Status st = (*wal)->Replay(0, [&](uint64_t, std::string_view p) {
      got.emplace_back(p);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_LE(got.size(), payloads.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], payloads[i]);
    }
  }
}

TEST(Wal, CorruptMiddleSegmentRefusesToOpen) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 128;
  options.sync = false;
  {
    std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"), options);
    for (int i = 0; i < 20; ++i) {
      MustAppend(wal.get(), "record-" + std::to_string(i) +
                                std::string(24, 'y'));
    }
    ASSERT_GT(wal->stats().segments, 2u);
  }
  // Damage a payload byte in the middle of the FIRST segment: damage
  // before the tail cannot be a crash artifact, so the log must refuse
  // to serve rather than drop an acknowledged record.
  const std::vector<std::string> segments = SegmentFiles(dir.File("wal"));
  std::string data = ReadAllBytes(segments.front());
  data[data.size() - 4] = static_cast<char>(data[data.size() - 4] ^ 0x01);
  WriteAllBytes(segments.front(), data);

  Result<std::unique_ptr<Wal>> wal = Wal::Open(dir.File("wal"), options);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Checkpoint / rollback / LSN position

TEST(Wal, CheckpointDropsOnlyCoveredSegments) {
  TempDir dir;
  WalOptions options;
  options.segment_bytes = 128;
  options.sync = false;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"), options);
  for (int i = 0; i < 20; ++i) {
    MustAppend(wal.get(), "record-" + std::to_string(i) +
                              std::string(24, 'y'));
  }
  const uint64_t segments_before = wal->stats().segments;
  ASSERT_GT(segments_before, 2u);

  // Checkpoint to a mid-log LSN: leading fully-covered segments go, the
  // partially covered one stays, and replay past the checkpoint is intact.
  ASSERT_TRUE(wal->Checkpoint(10).ok());
  EXPECT_LT(wal->stats().segments, segments_before);
  const auto replayed = ReplayAll(*wal, 10);
  ASSERT_EQ(replayed.size(), 10u);
  EXPECT_EQ(replayed.front().first, 11u);
  EXPECT_EQ(replayed.back().first, 20u);
  EXPECT_EQ(wal->stats().checkpoints, 1u);
}

TEST(Wal, FullCheckpointPreservesLsnPositionAcrossReopen) {
  TempDir dir;
  {
    std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
    for (int i = 0; i < 5; ++i) MustAppend(wal.get(), "r");
    // Everything covered: the log empties but must not forget where it
    // was — a reused LSN would be silently filtered by replay-after-open.
    ASSERT_TRUE(wal->Checkpoint(5).ok());
    EXPECT_EQ(ReplayAll(*wal).size(), 0u);
    EXPECT_EQ(wal->last_lsn(), 5u);
  }
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  EXPECT_EQ(wal->last_lsn(), 5u);
  EXPECT_EQ(MustAppend(wal.get(), "six"), 6u);
}

TEST(Wal, EnsureNextLsnAboveClosesCheckpointCrashWindow) {
  TempDir dir;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  EXPECT_EQ(wal->last_lsn(), 0u);
  // Simulates an attach whose image is stamped at LSN 7 while the log
  // lost its position (crash between a checkpoint's unlinks and its
  // fresh-segment rotation): appends must resume above the stamp.
  wal->EnsureNextLsnAbove(7);
  EXPECT_EQ(wal->last_lsn(), 7u);
  EXPECT_EQ(MustAppend(wal.get(), "eight"), 8u);
  // No-op when already above.
  wal->EnsureNextLsnAbove(3);
  EXPECT_EQ(wal->last_lsn(), 8u);
}

TEST(Wal, RollbackRemovesExactlyTheLastAppend) {
  TempDir dir;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  MustAppend(wal.get(), "keep");
  const uint64_t lsn = MustAppend(wal.get(), "undo");
  ASSERT_TRUE(wal->Rollback(lsn).ok());
  EXPECT_EQ(wal->last_lsn(), 1u);
  const auto replayed = ReplayAll(*wal);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].second, "keep");
  // The LSN is reused by the next append; only the latest record may be
  // rolled back, and only once.
  EXPECT_FALSE(wal->Rollback(lsn).ok());
  EXPECT_EQ(MustAppend(wal.get(), "redo"), lsn);

  // Still true after a reopen.
  wal.reset();
  wal = MustOpenWal(dir.File("wal"));
  const auto after = ReplayAll(*wal);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].second, "redo");
}

// ---------------------------------------------------------------------------
// Injected failures (transient errors, not crashes)

TEST(Wal, FailedFsyncDoesNotCommit) {
  TempDir dir;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  MustAppend(wal.get(), "good");

  IoHooks hooks;
  hooks.fail_fsync.store(true);
  {
    ScopedIoHooks install(&hooks);
    const Result<uint64_t> lsn = wal->Append("never-acked");
    ASSERT_FALSE(lsn.ok());
  }
  // Transient failure: the record is gone (cut back), the log is not
  // wedged, and the next append commits at the freed LSN.
  EXPECT_EQ(wal->last_lsn(), 1u);
  EXPECT_EQ(MustAppend(wal.get(), "retry"), 2u);
  const auto replayed = ReplayAll(*wal);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].second, "good");
  EXPECT_EQ(replayed[1].second, "retry");

  // And recovery sees the same two records.
  wal.reset();
  wal = MustOpenWal(dir.File("wal"));
  EXPECT_EQ(ReplayAll(*wal).size(), 2u);
}

TEST(Wal, TornWriteCrashRecoversCommittedPrefix) {
  TempDir dir;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  MustAppend(wal.get(), "committed-one");
  MustAppend(wal.get(), "committed-two");

  IoHooks hooks;
  // Enough budget to tear the next record mid-payload: a genuinely short
  // write lands on disk and the simulated process dies.
  hooks.fail_write_after_bytes.store(30);
  {
    ScopedIoHooks install(&hooks);
    ASSERT_FALSE(wal->Append("torn-and-dead-torn-and-dead").ok());
    // The crash latched: everything after fails, including appends.
    ASSERT_FALSE(wal->Append("after-death").ok());
  }
  EXPECT_TRUE(hooks.crashed.load());

  // "Reboot": reopen from disk without hooks. The torn record truncates
  // away; both committed records survive.
  wal.reset();
  wal = MustOpenWal(dir.File("wal"));
  EXPECT_GT(wal->stats().truncated_bytes, 0u);
  const auto replayed = ReplayAll(*wal);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].second, "committed-one");
  EXPECT_EQ(replayed[1].second, "committed-two");
  EXPECT_EQ(MustAppend(wal.get(), "post-reboot"), 3u);
}

TEST(Wal, NamedCrashPointBeforeSyncLeavesUnackedRecordBehind) {
  // A crash after the record bytes land but before the commit fsync: the
  // append fails (never acknowledged), and this simulation keeps the
  // bytes (see io_hooks.h on the page-cache caveat) — recovery may then
  // legitimately surface the unacked record. What recovery must never do
  // is lose an *acked* one.
  TempDir dir;
  std::unique_ptr<Wal> wal = MustOpenWal(dir.File("wal"));
  MustAppend(wal.get(), "acked");

  IoHooks hooks;
  hooks.on_point = [](std::string_view point) {
    return point == std::string_view("wal:append:before_sync");
  };
  {
    ScopedIoHooks install(&hooks);
    ASSERT_FALSE(wal->Append("in-flight").ok());
  }
  wal.reset();
  wal = MustOpenWal(dir.File("wal"));
  const auto replayed = ReplayAll(*wal);
  ASSERT_GE(replayed.size(), 1u);
  ASSERT_LE(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].second, "acked");
  if (replayed.size() == 2) {
    EXPECT_EQ(replayed[1].second, "in-flight");
  }
}

// ---------------------------------------------------------------------------
// Fault-injected ImageIO::Save (satellite: dir-fsync is a real Status,
// temp files never leak, the previous image never tears)

class ImageSaveFault : public ::testing::Test {
 protected:
  void SetUp() override {
    snapshot_ = [] {
      Result<SnapshotPtr> s =
          CorpusSnapshot::Build(testing::RandomCorpus(417, 12));
      EXPECT_TRUE(s.ok()) << s.status().ToString();
      return std::move(s).value();
    }();
    path_ = dir_.File("corpus.img");
    ASSERT_TRUE(snapshot_->Save(path_).ok());
    golden_ = ReadAllBytes(path_);
    ASSERT_FALSE(golden_.empty());
  }

  /// Asserts the failure left the world exactly as it was: same image
  /// bytes, still openable, no temp litter.
  void ExpectIntact() {
    EXPECT_EQ(ReadAllBytes(path_), golden_);
    EXPECT_TRUE(TmpFiles(fs::path(path_).parent_path().string()).empty());
    EXPECT_TRUE(ImageIO::Open(path_).ok());
  }

  TempDir dir_;
  SnapshotPtr snapshot_;
  std::string path_;
  std::string golden_;
};

TEST_F(ImageSaveFault, ShortWriteFailsCleanAndKeepsOldImage) {
  IoHooks hooks;
  hooks.fail_write_after_bytes.store(100);  // tear inside the payload
  {
    ScopedIoHooks install(&hooks);
    const Status st = snapshot_->Save(path_);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
  }
  ExpectIntact();
}

TEST_F(ImageSaveFault, FailedFsyncFailsCleanAndKeepsOldImage) {
  IoHooks hooks;
  hooks.fail_fsync.store(true);
  {
    ScopedIoHooks install(&hooks);
    ASSERT_FALSE(snapshot_->Save(path_).ok());
  }
  ExpectIntact();
}

TEST_F(ImageSaveFault, FailedRenameFailsCleanAndKeepsOldImage) {
  IoHooks hooks;
  hooks.fail_rename.store(true);
  {
    ScopedIoHooks install(&hooks);
    ASSERT_FALSE(snapshot_->Save(path_).ok());
  }
  ExpectIntact();
}

TEST_F(ImageSaveFault, CrashAtEveryOpKeepsOldImageIntact) {
  // Sweep a simulated crash across every I/O boundary Save crosses. At
  // every point the previous image must stay byte-identical (tmp+rename)
  // and no temp file may leak from the error-return path.
  for (int64_t budget = 0;; ++budget) {
    SCOPED_TRACE("fail_after_ops=" + std::to_string(budget));
    IoHooks hooks;
    hooks.fail_after_ops.store(budget);
    Status st;
    {
      ScopedIoHooks install(&hooks);
      st = snapshot_->Save(path_);
    }
    if (st.ok()) {
      EXPECT_FALSE(hooks.crashed.load());
      // Completed without hitting the budget: the sweep covered every op.
      EXPECT_TRUE(ImageIO::Open(path_).ok());
      break;
    }
    // The rename is the publish point: before it the old bytes must be
    // untouched; after it the new image is in place. Either way the file
    // opens clean and no temp litter remains.
    const std::string now = ReadAllBytes(path_);
    EXPECT_TRUE(now == golden_ ||
                st.message().find("fsync-dir") != std::string::npos)
        << "image changed before a non-publish failure";
    EXPECT_TRUE(TmpFiles(fs::path(path_).parent_path().string()).empty());
    EXPECT_TRUE(ImageIO::Open(path_).ok());
    ASSERT_LT(budget, 4096) << "sweep did not terminate";
  }
}

TEST_F(ImageSaveFault, DirFsyncFailureIsARealStatus) {
  // Count the ops of a clean hooked run, then fail exactly the last one —
  // the directory fsync after the rename. Save must report it (the rename
  // may not be durable) even though the renamed image is in place.
  IoHooks count;
  {
    ScopedIoHooks install(&count);
    ASSERT_TRUE(snapshot_->Save(path_).ok());
  }
  const int64_t total = static_cast<int64_t>(count.ops.load());
  ASSERT_GT(total, 0);

  IoHooks hooks;
  hooks.fail_after_ops.store(total - 1);
  Status st;
  {
    ScopedIoHooks install(&hooks);
    st = snapshot_->Save(path_);
  }
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fsync-dir"), std::string::npos)
      << st.ToString();
  // The image itself was renamed into place and is valid.
  EXPECT_TRUE(ImageIO::Open(path_).ok());
  EXPECT_TRUE(TmpFiles(fs::path(path_).parent_path().string()).empty());
}

// ---------------------------------------------------------------------------
// WAL checkpoint stamp in the image header

TEST(ImageWalLsn, RoundTripsThroughSaveAndReadWalLsn) {
  TempDir dir;
  Result<SnapshotPtr> snap =
      CorpusSnapshot::Build(testing::RandomCorpus(11, 6));
  ASSERT_TRUE(snap.ok());
  const std::string path = dir.File("stamped.img");

  ImageSaveOptions options;
  options.wal_lsn = 42;
  ASSERT_TRUE((*snap)->Save(path, options).ok());
  const Result<uint64_t> lsn = ImageIO::ReadWalLsn(path);
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  EXPECT_EQ(*lsn, 42u);

  // The stamped image opens like any other, and the snapshot surfaces
  // the stamp for the replay filter.
  Result<SnapshotPtr> reopened = CorpusSnapshot::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->base_wal_lsn(), 42u);
}

TEST(ImageWalLsn, DefaultsToZeroAndRejectsOverflow) {
  TempDir dir;
  Result<SnapshotPtr> snap =
      CorpusSnapshot::Build(testing::RandomCorpus(12, 4));
  ASSERT_TRUE(snap.ok());
  const std::string path = dir.File("plain.img");
  ASSERT_TRUE((*snap)->Save(path).ok());
  const Result<uint64_t> lsn = ImageIO::ReadWalLsn(path);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 0u);

  ImageSaveOptions options;
  options.wal_lsn = (1ull << 32);  // past the header's stamp field
  const Status st = (*snap)->Save(dir.File("overflow.img"), options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lpath
