// Algebraic laws of the axis set (Table 1 of the paper): every abbreviation
// equals its full-name spelling, every closure axis relates to its
// immediate primitive, every axis matches the set its inverse produces, and
// the Core-XPath equivalences in the table's last column hold. Checked on
// random corpora with both the navigational and relational engines.

#include <gtest/gtest.h>

#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "test_util.h"

namespace lpath {
namespace {

class AxisLawTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    corpus_ = testing::RandomCorpus(GetParam(), /*trees=*/20,
                                    /*max_nodes=*/30);
    Result<NodeRelation> rel = NodeRelation::Build(corpus_);
    ASSERT_TRUE(rel.ok());
    rel_ = std::make_unique<NodeRelation>(std::move(rel).value());
    relational_ = std::make_unique<LPathEngine>(*rel_);
    nav_ = std::make_unique<NavigationalEngine>(corpus_);
  }

  QueryResult Run(const QueryEngine& engine, const std::string& q) {
    Result<QueryResult> r = engine.Run(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  /// Navigational-only equivalence (for queries using position()/last(),
  /// which the relational translation rejects).
  void ExpectNavEquivalent(const std::string& q1, const std::string& q2) {
    EXPECT_EQ(Run(*nav_, q1), Run(*nav_, q2)) << q1 << " vs " << q2;
  }

  /// Both engines agree that q1 and q2 denote the same node set.
  void ExpectEquivalent(const std::string& q1, const std::string& q2) {
    const QueryResult nav1 = Run(*nav_, q1);
    EXPECT_EQ(nav1, Run(*nav_, q2)) << q1 << " vs " << q2;
    EXPECT_EQ(nav1, Run(*relational_, q1)) << q1;
    EXPECT_EQ(nav1, Run(*relational_, q2)) << q2;
  }

  Corpus corpus_;
  std::unique_ptr<NodeRelation> rel_;
  std::unique_ptr<LPathEngine> relational_;
  std::unique_ptr<NavigationalEngine> nav_;
};

TEST_P(AxisLawTest, AbbreviationsEqualFullNames) {
  ExpectEquivalent("//NP/N", "//NP/child::N");
  ExpectEquivalent("//NP//N", "//NP/descendant::N");
  ExpectEquivalent("//N\\NP", "//N/parent::NP");
  ExpectEquivalent("//N\\\\NP", "//N\\ancestor::NP");
  ExpectEquivalent("//N\\\\NP", "//N/ancestor::NP");
  ExpectEquivalent("//V->N", "//V/immediate-following::N");
  ExpectEquivalent("//V-->N", "//V/following::N");
  ExpectEquivalent("//V<-N", "//V/immediate-preceding::N");
  ExpectEquivalent("//V<--N", "//V/preceding::N");
  ExpectEquivalent("//V=>N", "//V/immediate-following-sibling::N");
  ExpectEquivalent("//V==>N", "//V/following-sibling::N");
  ExpectEquivalent("//V<=N", "//V/immediate-preceding-sibling::N");
  ExpectEquivalent("//V<==N", "//V/preceding-sibling::N");
}

TEST_P(AxisLawTest, CoreXPathColumnOfTable1) {
  // Table 1's last column: following == immediate-following's closure, which
  // Core XPath writes as descendant-or-self::/following-sibling::/
  // descendant-or-self:: — the simplest checkable consequences:
  // following(x) ∪ descendants(x) ∪ ancestors(x) ∪ preceding(x) ∪ {x}
  // partitions the tree.
  const QueryResult all = Run(*nav_, "//_");
  QueryResult parts = Run(*nav_, "//V-->_");
  for (const char* q : {"//V<--_", "//V//_", "//V\\ancestor::_", "//V/."}) {
    QueryResult r = Run(*nav_, q);
    parts.hits.insert(parts.hits.end(), r.hits.begin(), r.hits.end());
  }
  parts.Normalize();
  // Only trees containing a V participate.
  QueryResult all_in_v_trees;
  const QueryResult v_nodes = Run(*nav_, "//V");
  for (const Hit& h : all.hits) {
    for (const Hit& v : v_nodes.hits) {
      if (v.tid == h.tid) {
        all_in_v_trees.hits.push_back(h);
        break;
      }
    }
  }
  all_in_v_trees.Normalize();
  EXPECT_EQ(parts, all_in_v_trees);
}

TEST_P(AxisLawTest, ImmediateAxesRefineClosures) {
  // x -> y implies x --> y (and likewise for the other three families):
  // the immediate results are a subset of the closure results.
  struct Pair {
    const char* imm;
    const char* closure;
  };
  const Pair pairs[] = {
      {"//V->_", "//V-->_"},
      {"//V<-_", "//V<--_"},
      {"//NP=>_", "//NP==>_"},
      {"//NP<=_", "//NP<==_"},
  };
  for (const Pair& p : pairs) {
    const QueryResult imm = Run(*nav_, p.imm);
    const QueryResult clo = Run(*nav_, p.closure);
    for (const Hit& h : imm.hits) {
      EXPECT_TRUE(std::binary_search(clo.hits.begin(), clo.hits.end(), h))
          << p.imm << " not within " << p.closure;
    }
  }
}

TEST_P(AxisLawTest, InverseAxesRoundTrip) {
  // y in axis(x) iff x in inverse-axis(y): //A<axis>B == //B<inverse>A with
  // output swapped. Checkable as: the target sets of //_<axis>T equal the
  // sources of //T<inverse>_ ... here verified via counts of node pairs by
  // comparing //A?B with //B (filtered through a predicate).
  ExpectEquivalent("//V->NP", "//NP[<-V]");
  ExpectEquivalent("//V-->NP", "//NP[<--V]");
  ExpectEquivalent("//V=>NP", "//NP[<=V]");
  ExpectEquivalent("//NP/N", "//N[\\NP]");
  ExpectEquivalent("//NP//N", "//N[\\\\NP]");
}

TEST_P(AxisLawTest, OrSelfAxesAddSelf) {
  // following-or-self::X = following::X plus self when self matches X.
  const QueryResult or_self = Run(*nav_, "//V/following-or-self::N");
  const QueryResult plain = Run(*nav_, "//V-->N");
  EXPECT_EQ(or_self, plain);  // V never matches N, so no self added
  const QueryResult vs = Run(*nav_, "//V/following-or-self::V");
  const QueryResult v_following = Run(*nav_, "//V-->V");
  const QueryResult v_all = Run(*nav_, "//V");
  // or-self includes every V (each V is its own "self").
  EXPECT_EQ(vs, v_all);
  for (const Hit& h : v_following.hits) {
    EXPECT_TRUE(std::binary_search(vs.hits.begin(), vs.hits.end(), h));
  }
  // The relational engine agrees on the or-self axes (disjunctive filters).
  EXPECT_EQ(Run(*relational_, "//V/following-or-self::V"), v_all);
}

TEST_P(AxisLawTest, ScopingIsIntersectionWithSubtree) {
  // //VP{//X} == //VP//X restricted to matches inside the same VP — which
  // for descendant steps is the same thing.
  ExpectEquivalent("//VP{//N}", "//VP//N");
  ExpectEquivalent("//VP{/N}", "//VP/N");
  // For horizontal steps scoping genuinely restricts: scoped ⊆ unscoped.
  const QueryResult scoped = Run(*nav_, "//VP{/V-->N}");
  const QueryResult unscoped = Run(*nav_, "//VP/V-->N");
  for (const Hit& h : scoped.hits) {
    EXPECT_TRUE(
        std::binary_search(unscoped.hits.begin(), unscoped.hits.end(), h));
  }
}

TEST_P(AxisLawTest, AlignmentEqualsPositionalFunctions) {
  // Section 2.2.3's equivalences, checked through the navigational engine
  // (which supports the positional functions):
  ExpectNavEquivalent("//VP{/NP$}", "//VP/_[last()][self::NP]");
  ExpectNavEquivalent("//VP{/^NP}", "//VP/_[1][self::NP]");
  ExpectNavEquivalent("//V=>NP",
                      "//V/following-sibling::_[position()=1][self::NP]");
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxisLawTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace lpath
