// Batch-kernel differential tests: the vectorized executor must answer
// exactly like the scalar kernel on every query, over every relation
// backing — the in-memory build, a mapped v1 (all-raw) image, and a mapped
// v2 image with codec-encoded columns scanned via fused decode. Runs with
// batch_min_rows = 0 so every access path takes its batch flavor even on
// tiny per-tree runs. The `concurrency` label puts the shared-mapping
// hammer under TSan (per-run batch scratch must not be shared across
// threads; the v2 decode arena is read concurrently).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "lpath/engines.h"
#include "storage/image.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace lpath {
namespace {

namespace fs = std::filesystem;

sql::ExecOptions BatchEverywhere() {
  sql::ExecOptions exec;
  exec.vectorized = true;
  exec.batch_min_rows = 0;  // no scalar fallback: cover every batch path
  return exec;
}

LPathEngine::Options WithExec(sql::ExecOptions exec) {
  LPathEngine::Options options;
  options.exec = exec;
  return options;
}

/// Built + mapped-v1 + mapped-v2 snapshots over one random corpus, plus
/// the scalar reference engine and a batch engine per backing.
class BatchExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("lpathdb_batch_exec_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    Result<SnapshotPtr> built =
        CorpusSnapshot::Build(testing::RandomCorpus(1234, 60, 40));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    built_ = std::move(built).value();

    const std::string v1_path = (dir_ / "corpus.v1.img").string();
    const std::string v2_path = (dir_ / "corpus.v2.img").string();
    ImageSaveOptions v1_options;
    v1_options.format_version = 1;
    ASSERT_TRUE(built_->Save(v1_path, v1_options).ok());
    ASSERT_TRUE(built_->Save(v2_path).ok());

    Result<SnapshotPtr> v1 = CorpusSnapshot::Open(v1_path);
    ASSERT_TRUE(v1.ok()) << v1.status().ToString();
    mapped_v1_ = std::move(v1).value();
    Result<SnapshotPtr> v2 = CorpusSnapshot::Open(v2_path);
    ASSERT_TRUE(v2.ok()) << v2.status().ToString();
    mapped_v2_ = std::move(v2).value();
    // The fused-decode path needs actually-encoded columns to differ from
    // the arena path; the clustered relation always compresses.
    EXPECT_TRUE(mapped_v2_->relation().any_encoded());
    EXPECT_FALSE(mapped_v1_->relation().any_encoded());
  }

  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  SnapshotPtr built_;
  SnapshotPtr mapped_v1_;
  SnapshotPtr mapped_v2_;
};

TEST_F(BatchExecTest, FuzzDifferentialAcrossBackingsAndKernels) {
  sql::ExecOptions scalar;
  scalar.vectorized = false;
  LPathEngine reference(built_->relation(), WithExec(scalar));

  struct Variant {
    const char* label;
    LPathEngine engine;
  };
  Variant variants[] = {
      {"batch/built", LPathEngine(built_->relation(),
                                  WithExec(BatchEverywhere()))},
      {"batch/mapped-v1", LPathEngine(mapped_v1_->relation(),
                                      WithExec(BatchEverywhere()))},
      {"batch/mapped-v2", LPathEngine(mapped_v2_->relation(),
                                      WithExec(BatchEverywhere()))},
  };

  Rng rng(20060615);
  testing::QueryGen gen(&rng);
  sql::ExecStats reference_stats;
  sql::ExecStats variant_stats[3];
  int non_empty = 0;
  for (int i = 0; i < 150; ++i) {
    const std::string q = gen.Query();
    sql::ExecStats rs;
    Result<QueryResult> expected = reference.RunWithStats(q, &rs);
    reference_stats.Add(rs);
    for (int vi = 0; vi < 3; ++vi) {
      sql::ExecStats vs;
      Result<QueryResult> got = variants[vi].engine.RunWithStats(q, &vs);
      variant_stats[vi].Add(vs);
      ASSERT_EQ(expected.ok(), got.ok())
          << variants[vi].label << ": " << q;
      if (expected.ok()) {
        ASSERT_EQ(expected.value(), got.value())
            << variants[vi].label << ": " << q;
      }
    }
    if (expected.ok() && expected.value().count() > 0) ++non_empty;
  }
  EXPECT_GT(non_empty, 20);  // the differential must not be vacuous

  // The kernels must actually have diverged in mechanism, not just agreed.
  EXPECT_EQ(reference_stats.batches, 0u);
  for (int vi = 0; vi < 3; ++vi) {
    EXPECT_GT(variant_stats[vi].batches, 0u) << variants[vi].label;
    EXPECT_GT(variant_stats[vi].batch_rows, 0u) << variants[vi].label;
    EXPECT_LE(variant_stats[vi].sel_density(), 1.0) << variants[vi].label;
  }
  // Only the v2 backing has compressed payloads to fuse-decode from.
  EXPECT_EQ(variant_stats[0].decoded_blocks, 0u);
  EXPECT_EQ(variant_stats[1].decoded_blocks, 0u);
  EXPECT_GT(variant_stats[2].decoded_blocks, 0u);
}

TEST_F(BatchExecTest, ScanEncodedOffReadsTheDecodedArenaIdentically) {
  sql::ExecOptions arena = BatchEverywhere();
  arena.scan_encoded = false;
  LPathEngine fused(mapped_v2_->relation(), WithExec(BatchEverywhere()));
  LPathEngine unfused(mapped_v2_->relation(), WithExec(arena));

  Rng rng(88);
  testing::QueryGen gen(&rng);
  sql::ExecStats fused_stats;
  sql::ExecStats unfused_stats;
  for (int i = 0; i < 60; ++i) {
    const std::string q = gen.Query();
    sql::ExecStats fused_run, unfused_run;
    Result<QueryResult> a = fused.RunWithStats(q, &fused_run);
    Result<QueryResult> b = unfused.RunWithStats(q, &unfused_run);
    fused_stats.Add(fused_run);
    unfused_stats.Add(unfused_run);
    ASSERT_EQ(a.ok(), b.ok()) << q;
    if (a.ok()) {
      ASSERT_EQ(a.value(), b.value()) << q;
    }
  }
  EXPECT_GT(fused_stats.decoded_blocks, 0u);
  EXPECT_EQ(unfused_stats.decoded_blocks, 0u);
}

TEST_F(BatchExecTest, DefaultThresholdStillAgreesWithScalar) {
  // The production default (batch_min_rows = 64) mixes both kernels within
  // one query; results must be unaffected by where the cutover lands.
  sql::ExecOptions scalar;
  scalar.vectorized = false;
  LPathEngine reference(built_->relation(), WithExec(scalar));
  LPathEngine defaults(built_->relation());  // stock options, vectorized
  Rng rng(5150);
  testing::QueryGen gen(&rng);
  for (int i = 0; i < 60; ++i) {
    const std::string q = gen.Query();
    Result<QueryResult> a = reference.Run(q);
    Result<QueryResult> b = defaults.Run(q);
    ASSERT_EQ(a.ok(), b.ok()) << q;
    if (a.ok()) {
      ASSERT_EQ(a.value(), b.value()) << q;
    }
  }
}

// TSan coverage: many threads run batch queries through one shared engine
// over the mapped v2 snapshot. Batch scratch is per-run (stack-leased from
// a per-Runner pool), and the open-time decode arena plus the compressed
// mapping are immutable shared state — the only writes TSan should see are
// into thread-private buffers.
TEST_F(BatchExecTest, ConcurrentBatchQueriesOverSharedMappedSnapshot) {
  LPathEngine engine(mapped_v2_->relation(), WithExec(BatchEverywhere()));
  const std::vector<std::string> queries = {
      "//NP//_", "//VP[//N]", "//S", "//_[@lex='dog' or @lex='saw']",
      "//NP[not(//V)]"};
  std::vector<QueryResult> expected;
  for (const std::string& q : queries) {
    Result<QueryResult> r = engine.Run(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    expected.push_back(std::move(r).value());
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t qi = static_cast<size_t>(t + round) % queries.size();
        Result<QueryResult> r = engine.Run(queries[qi]);
        if (!r.ok() || !(r.value() == expected[qi])) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace lpath
