// Shared test helpers: the running example of the paper (Figure 1's syntax
// tree for "I saw the old man with a dog today") and a seeded random-tree
// generator for property tests.

#ifndef LPATHDB_TESTS_TEST_UTIL_H_
#define LPATHDB_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tree/corpus.h"
#include "tree/tree.h"

namespace lpath {
namespace testing {

/// Builds the Figure 1 tree. Pre-order node ids (0-based):
///   0:S 1:NP(I) 2:VP 3:V(saw) 4:NP 5:NP 6:Det(the) 7:Adj(old) 8:N(man)
///   9:PP 10:Prep(with) 11:NP 12:Det(a) 13:N(dog) 14:N(today)
inline Tree BuildFigure1Tree(Interner* in) {
  const Symbol lex = in->Intern("@lex");
  Tree t;
  NodeId s = t.AddRoot(in->Intern("S"));
  NodeId np_i = t.AddChild(s, in->Intern("NP"));
  t.AddAttr(np_i, lex, in->Intern("I"));
  NodeId vp = t.AddChild(s, in->Intern("VP"));
  NodeId v = t.AddChild(vp, in->Intern("V"));
  t.AddAttr(v, lex, in->Intern("saw"));
  NodeId np6 = t.AddChild(vp, in->Intern("NP"));
  NodeId np7 = t.AddChild(np6, in->Intern("NP"));
  NodeId det = t.AddChild(np7, in->Intern("Det"));
  t.AddAttr(det, lex, in->Intern("the"));
  NodeId adj = t.AddChild(np7, in->Intern("Adj"));
  t.AddAttr(adj, lex, in->Intern("old"));
  NodeId n_man = t.AddChild(np7, in->Intern("N"));
  t.AddAttr(n_man, lex, in->Intern("man"));
  NodeId pp = t.AddChild(np6, in->Intern("PP"));
  NodeId prep = t.AddChild(pp, in->Intern("Prep"));
  t.AddAttr(prep, lex, in->Intern("with"));
  NodeId np_dog = t.AddChild(pp, in->Intern("NP"));
  NodeId det_a = t.AddChild(np_dog, in->Intern("Det"));
  t.AddAttr(det_a, lex, in->Intern("a"));
  NodeId n_dog = t.AddChild(np_dog, in->Intern("N"));
  t.AddAttr(n_dog, lex, in->Intern("dog"));
  NodeId n_today = t.AddChild(s, in->Intern("N"));
  t.AddAttr(n_today, lex, in->Intern("today"));
  (void)n_today;
  return t;
}

/// Corpus holding just the Figure 1 tree.
inline Corpus BuildFigure1Corpus() {
  Corpus corpus;
  corpus.Add(BuildFigure1Tree(corpus.mutable_interner()));
  return corpus;
}

namespace internal {

inline const char* RandomTag(Rng* rng) {
  static const char* kTags[] = {"S", "NP", "VP", "PP", "N", "V",
                                "Det", "Adj", "X", "Y"};
  return kTags[rng->Below(10)];
}

inline const char* RandomWord(Rng* rng) {
  static const char* kWords[] = {"a", "b", "c", "saw", "dog", "man",
                                 "of", "what", "building"};
  return kWords[rng->Below(9)];
}

/// Document-order recursive growth. Attributes must be added to the most
/// recently created node, which holds exactly when a node is decided to be
/// a leaf immediately after creation.
inline void GrowChildren(Tree* t, NodeId node, Rng* rng, Interner* in,
                         Symbol lex, int depth, int* budget) {
  const double stop = 0.15 + 0.12 * depth;
  if (*budget <= 0 || rng->Chance(stop)) {
    if (rng->Chance(0.8)) t->AddAttr(node, lex, in->Intern(RandomWord(rng)));
    return;
  }
  // 1..4 children; 1 child yields unary chains, which exercise the depth
  // component of the labeling scheme.
  const int kids = 1 + static_cast<int>(rng->Below(4));
  for (int i = 0; i < kids && *budget > 0; ++i) {
    *budget -= 1;
    NodeId child = t->AddChild(node, in->Intern(RandomTag(rng)));
    GrowChildren(t, child, rng, in, lex, depth + 1, budget);
  }
}

}  // namespace internal

/// Random ordered tree over a small tag alphabet; leaves usually get @lex
/// words. Shapes include unary chains, wide nodes and deep spines.
inline Tree RandomTree(Rng* rng, Interner* in, int max_nodes) {
  const Symbol lex = in->Intern("@lex");
  Tree t;
  NodeId root = t.AddRoot(in->Intern(internal::RandomTag(rng)));
  int budget = 1 + static_cast<int>(rng->Below(max_nodes));
  internal::GrowChildren(&t, root, rng, in, lex, 1, &budget);
  return t;
}

/// A corpus of `trees` random trees (deterministic in `seed`).
inline Corpus RandomCorpus(uint64_t seed, int trees, int max_nodes = 40) {
  Corpus corpus;
  Rng rng(seed);
  for (int i = 0; i < trees; ++i) {
    corpus.Add(RandomTree(&rng, corpus.mutable_interner(), max_nodes));
  }
  return corpus;
}

/// Random LPath query generator over the test tag/word alphabet, plus
/// deliberately unknown tags and words — resolving an unknown literal
/// inside an OR/NOT tree once emptied the whole plan, so the generator
/// emits those shapes on purpose. Generates only queries the relational
/// translation supports (no position()/last()). Shared by the fuzz
/// differential, the shard differential and the service tests.
class QueryGen {
 public:
  explicit QueryGen(Rng* rng) : rng_(rng) {}

  std::string Query() {
    std::string q = rng_->Chance(0.9) ? "//" : "/";
    q += NodeTestWithSuffix(/*depth=*/0, /*in_scope=*/false);
    int steps = static_cast<int>(rng_->Below(4));
    bool scope_open = false;
    for (int i = 0; i < steps; ++i) {
      if (!scope_open && rng_->Chance(0.25)) {
        q += "{";
        scope_open = true;
      }
      q += AxisToken();
      q += NodeTestWithSuffix(0, scope_open);
    }
    if (scope_open) q += "}";
    return q;
  }

 private:
  const char* Tag() {
    // "ZZZUNK" is interned by no corpus: unknown-tag plans must stay
    // empty without leaking emptiness into enclosing OR/NOT trees.
    static const char* kTags[] = {"S", "NP", "VP", "PP", "N", "V",
                                  "Det", "Adj", "X", "Y", "ZZZUNK"};
    return kTags[rng_->Chance(0.08) ? 10 : rng_->Below(10)];
  }
  const char* Word() {
    // "zzzunknown" likewise never appears in any corpus.
    static const char* kWords[] = {"a", "b", "c", "saw", "dog",
                                   "man", "of", "what", "building",
                                   "zzzunknown"};
    return kWords[rng_->Chance(0.15) ? 9 : rng_->Below(9)];
  }
  const char* AxisToken() {
    static const char* kAxes[] = {
        "/",  "//",  "\\",  "\\\\", "->", "-->", "<-", "<--",
        "=>", "==>", "<=",  "<==",  "/descendant-or-self::",
        "/ancestor-or-self::", "/following-or-self::",
        "/preceding-or-self::", "/following-sibling-or-self::",
        "/preceding-sibling-or-self::", "/self::",
    };
    return kAxes[rng_->Below(19)];
  }

  std::string NodeTestWithSuffix(int depth, bool in_scope) {
    std::string out;
    if (in_scope && rng_->Chance(0.2)) out += "^";
    out += rng_->Chance(0.25) ? "_" : Tag();
    if (in_scope && rng_->Chance(0.2)) out += "$";
    if (depth < 2 && rng_->Chance(0.35)) {
      out += "[";
      out += Predicate(depth + 1);
      out += "]";
    }
    return out;
  }

  std::string AttrCompare() {
    std::string cmp = "@lex";
    cmp += rng_->Chance(0.8) ? "=" : "!=";
    cmp += Word();
    return cmp;
  }

  std::string Predicate(int depth) {
    const double roll = rng_->NextDouble();
    if (roll < 0.25) return AttrCompare();
    if (roll < 0.37) {  // boolean trees over attribute compares
      const double kind = rng_->NextDouble();
      if (kind < 0.40) return AttrCompare() + " or " + AttrCompare();
      if (kind < 0.60) return AttrCompare() + " and " + AttrCompare();
      if (kind < 0.80) return "not(" + AttrCompare() + ")";
      return "not(" + AttrCompare() + " or " + AttrCompare() + ")";
    }
    if (roll < 0.50 && depth < 2) {  // boolean over paths
      const char* joiner = rng_->Chance(0.5) ? " and " : " or ";
      return PredPath(depth) + joiner + Predicate(depth + 1);
    }
    if (roll < 0.62) {  // negation
      return "not(" + PredPath(depth) + ")";
    }
    return PredPath(depth);
  }

  std::string PredPath(int depth) {
    std::string q;
    bool scope_open = false;
    if (rng_->Chance(0.25)) {
      q += "{";
      scope_open = true;
    }
    const double roll = rng_->NextDouble();
    if (roll < 0.4) {
      q += "//";
    } else if (roll < 0.6) {
      q += AxisToken();
    }
    q += NodeTestWithSuffix(depth + 1, scope_open);
    if (rng_->Chance(0.4)) {
      q += AxisToken();
      q += NodeTestWithSuffix(depth + 1, scope_open);
    }
    if (scope_open) q += "}";
    return q;
  }

  Rng* rng_;
};

}  // namespace testing
}  // namespace lpath

#endif  // LPATHDB_TESTS_TEST_UTIL_H_
