// Shared test helpers: the running example of the paper (Figure 1's syntax
// tree for "I saw the old man with a dog today") and a seeded random-tree
// generator for property tests.

#ifndef LPATHDB_TESTS_TEST_UTIL_H_
#define LPATHDB_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tree/corpus.h"
#include "tree/tree.h"

namespace lpath {
namespace testing {

/// Builds the Figure 1 tree. Pre-order node ids (0-based):
///   0:S 1:NP(I) 2:VP 3:V(saw) 4:NP 5:NP 6:Det(the) 7:Adj(old) 8:N(man)
///   9:PP 10:Prep(with) 11:NP 12:Det(a) 13:N(dog) 14:N(today)
inline Tree BuildFigure1Tree(Interner* in) {
  const Symbol lex = in->Intern("@lex");
  Tree t;
  NodeId s = t.AddRoot(in->Intern("S"));
  NodeId np_i = t.AddChild(s, in->Intern("NP"));
  t.AddAttr(np_i, lex, in->Intern("I"));
  NodeId vp = t.AddChild(s, in->Intern("VP"));
  NodeId v = t.AddChild(vp, in->Intern("V"));
  t.AddAttr(v, lex, in->Intern("saw"));
  NodeId np6 = t.AddChild(vp, in->Intern("NP"));
  NodeId np7 = t.AddChild(np6, in->Intern("NP"));
  NodeId det = t.AddChild(np7, in->Intern("Det"));
  t.AddAttr(det, lex, in->Intern("the"));
  NodeId adj = t.AddChild(np7, in->Intern("Adj"));
  t.AddAttr(adj, lex, in->Intern("old"));
  NodeId n_man = t.AddChild(np7, in->Intern("N"));
  t.AddAttr(n_man, lex, in->Intern("man"));
  NodeId pp = t.AddChild(np6, in->Intern("PP"));
  NodeId prep = t.AddChild(pp, in->Intern("Prep"));
  t.AddAttr(prep, lex, in->Intern("with"));
  NodeId np_dog = t.AddChild(pp, in->Intern("NP"));
  NodeId det_a = t.AddChild(np_dog, in->Intern("Det"));
  t.AddAttr(det_a, lex, in->Intern("a"));
  NodeId n_dog = t.AddChild(np_dog, in->Intern("N"));
  t.AddAttr(n_dog, lex, in->Intern("dog"));
  NodeId n_today = t.AddChild(s, in->Intern("N"));
  t.AddAttr(n_today, lex, in->Intern("today"));
  (void)n_today;
  return t;
}

/// Corpus holding just the Figure 1 tree.
inline Corpus BuildFigure1Corpus() {
  Corpus corpus;
  corpus.Add(BuildFigure1Tree(corpus.mutable_interner()));
  return corpus;
}

namespace internal {

inline const char* RandomTag(Rng* rng) {
  static const char* kTags[] = {"S", "NP", "VP", "PP", "N", "V",
                                "Det", "Adj", "X", "Y"};
  return kTags[rng->Below(10)];
}

inline const char* RandomWord(Rng* rng) {
  static const char* kWords[] = {"a", "b", "c", "saw", "dog", "man",
                                 "of", "what", "building"};
  return kWords[rng->Below(9)];
}

/// Document-order recursive growth. Attributes must be added to the most
/// recently created node, which holds exactly when a node is decided to be
/// a leaf immediately after creation.
inline void GrowChildren(Tree* t, NodeId node, Rng* rng, Interner* in,
                         Symbol lex, int depth, int* budget) {
  const double stop = 0.15 + 0.12 * depth;
  if (*budget <= 0 || rng->Chance(stop)) {
    if (rng->Chance(0.8)) t->AddAttr(node, lex, in->Intern(RandomWord(rng)));
    return;
  }
  // 1..4 children; 1 child yields unary chains, which exercise the depth
  // component of the labeling scheme.
  const int kids = 1 + static_cast<int>(rng->Below(4));
  for (int i = 0; i < kids && *budget > 0; ++i) {
    *budget -= 1;
    NodeId child = t->AddChild(node, in->Intern(RandomTag(rng)));
    GrowChildren(t, child, rng, in, lex, depth + 1, budget);
  }
}

}  // namespace internal

/// Random ordered tree over a small tag alphabet; leaves usually get @lex
/// words. Shapes include unary chains, wide nodes and deep spines.
inline Tree RandomTree(Rng* rng, Interner* in, int max_nodes) {
  const Symbol lex = in->Intern("@lex");
  Tree t;
  NodeId root = t.AddRoot(in->Intern(internal::RandomTag(rng)));
  int budget = 1 + static_cast<int>(rng->Below(max_nodes));
  internal::GrowChildren(&t, root, rng, in, lex, 1, &budget);
  return t;
}

/// A corpus of `trees` random trees (deterministic in `seed`).
inline Corpus RandomCorpus(uint64_t seed, int trees, int max_nodes = 40) {
  Corpus corpus;
  Rng rng(seed);
  for (int i = 0; i < trees; ++i) {
    corpus.Add(RandomTree(&rng, corpus.mutable_interner(), max_nodes));
  }
  return corpus;
}

}  // namespace testing
}  // namespace lpath

#endif  // LPATHDB_TESTS_TEST_UTIL_H_
