// Morsel-driven execution tests, all over the skewed corpus profile (a few
// huge clause-chain trees among many tiny ones — the input that breaks
// tree-count-based work splitting):
//   - the planner's row-balanced carving must bound per-worker work where
//     the old even-by-tid split provably does not;
//   - morsel execution (sync Query and QueryStream) must be result-
//     identical to serial ExecutePrepared — differential over the fuzz
//     query generator;
//   - the shared EXISTS memo must serve repeated executions of a cached
//     plan across morsels (shared_memo_hits observable), and survive
//     concurrent morsels plus snapshot hot swaps without races (this
//     suite runs under ThreadSanitizer in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/generator.h"
#include "lpath/engines.h"
#include "service/query_service.h"
#include "sql/exists_memo.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace lpath {
namespace {

using testing::QueryGen;

/// Row masses of an even-by-tid split into `shards` slices — the old
/// scheduler's partition, kept here as the baseline under test.
std::vector<uint64_t> EvenSplitMasses(const NodeRelation& rel, int shards) {
  std::vector<uint64_t> masses;
  const int64_t trees = rel.tree_count();
  for (int i = 0; i < shards; ++i) {
    const int32_t lo = static_cast<int32_t>(trees * i / shards);
    const int32_t hi = static_cast<int32_t>(trees * (i + 1) / shards);
    masses.push_back(rel.TreeRowsBefore(hi) - rel.TreeRowsBefore(lo));
  }
  return masses;
}

/// Deterministic model of the shared claim cursor: morsels are claimed in
/// order by whichever worker is least loaded (list scheduling) — per-worker
/// totals under dynamic claiming are bounded by this assignment's shape.
std::vector<uint64_t> ListSchedule(const std::vector<TidRange>& morsels,
                                   int workers) {
  std::vector<uint64_t> load(workers, 0);
  for (const TidRange& m : morsels) {
    *std::min_element(load.begin(), load.end()) += m.rows;
  }
  return load;
}

double MaxOverMin(const std::vector<uint64_t>& masses) {
  const auto [mn, mx] = std::minmax_element(masses.begin(), masses.end());
  return static_cast<double>(*mx) /
         static_cast<double>(std::max<uint64_t>(1, *mn));
}

TEST(MorselPlannerTest, CarveBalancesSkewWhereEvenByTidSplitDoesNot) {
  // 128 skewed sentences: a handful of clause-chain giants (~900 rows)
  // among medians of ~15 rows (seed chosen for a stable shape).
  Result<Corpus> corpus = gen::GenerateSkewed(128, /*seed=*/41);
  ASSERT_TRUE(corpus.ok());
  Result<NodeRelation> rel = NodeRelation::Build(std::move(corpus).value());
  ASSERT_TRUE(rel.ok());
  const NodeRelation& r = rel.value();
  const uint64_t total = r.TreeRowsBefore(r.tree_count());
  ASSERT_EQ(total, r.row_count());
  uint64_t max_tree = 0;
  for (int32_t t = 0; t < r.tree_count(); ++t) {
    max_tree = std::max(max_tree, r.TreeRowCount(t));
  }
  ASSERT_GT(max_tree, total / 16)  // the profile really is skewed
      << "skew profile regressed: no dominant tree";

  constexpr int kWorkers = 8;
  const std::vector<TidRange> morsels = r.CarveTidRanges(4 * kWorkers);

  // The carve is a contiguous partition of the tid space covering every row.
  ASSERT_GT(morsels.size(), 1u);
  ASSERT_LE(morsels.size(), static_cast<size_t>(4 * kWorkers));
  int32_t expect_lo = 0;
  uint64_t covered = 0;
  const uint64_t target = (total + 4 * kWorkers - 1) / (4 * kWorkers);
  for (const TidRange& m : morsels) {
    EXPECT_EQ(m.tid_lo, expect_lo);
    EXPECT_LT(m.tid_lo, m.tid_hi);
    EXPECT_EQ(m.rows, r.TreeRowsBefore(m.tid_hi) - r.TreeRowsBefore(m.tid_lo));
    // Balance invariant: a slice stops at the tree that crosses the
    // target, so it can overshoot by at most one (possibly giant) tree.
    EXPECT_LE(m.rows, target + max_tree);
    expect_lo = m.tid_hi;
    covered += m.rows;
  }
  EXPECT_EQ(expect_lo, r.tree_count());
  EXPECT_EQ(covered, total);

  // The point of the rework: per-worker row mass under the claim cursor is
  // bounded, while the old even-by-tid split concentrates the giants.
  const double even_ratio = MaxOverMin(EvenSplitMasses(r, kWorkers));
  const double morsel_ratio = MaxOverMin(ListSchedule(morsels, kWorkers));
  EXPECT_GT(even_ratio, 4.0) << "even split should be provably imbalanced";
  EXPECT_LT(morsel_ratio, 3.0);
  EXPECT_GT(even_ratio, 2.0 * morsel_ratio);
}

TEST(MorselPlannerTest, CarveRespectsMinimumMorselRows) {
  Result<Corpus> corpus = gen::GenerateSkewed(64, /*seed=*/123);
  ASSERT_TRUE(corpus.ok());
  Result<NodeRelation> rel = NodeRelation::Build(std::move(corpus).value());
  ASSERT_TRUE(rel.ok());
  const NodeRelation& r = rel.value();
  const uint64_t total = r.TreeRowsBefore(r.tree_count());

  // A minimum above the whole corpus collapses to one slice.
  EXPECT_EQ(r.CarveTidRanges(16, total + 1).size(), 1u);

  // Otherwise every slice but the last reaches the minimum.
  const std::vector<TidRange> morsels = r.CarveTidRanges(64, /*min_rows=*/100);
  ASSERT_GT(morsels.size(), 1u);
  for (size_t i = 0; i + 1 < morsels.size(); ++i) {
    EXPECT_GE(morsels[i].rows, 100u);
  }
}

TEST(MorselPlannerTest, CarveOfEmptyRelationIsEmpty) {
  Corpus corpus;  // no trees
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel.value().CarveTidRanges(8).empty());
}

class MorselServiceTest : public ::testing::Test {
 protected:
  MorselServiceTest() {
    Result<Corpus> corpus = gen::GenerateSkewed(64, /*seed=*/123);
    EXPECT_TRUE(corpus.ok());
    Result<SnapshotPtr> snap = CorpusSnapshot::Build(std::move(corpus).value());
    EXPECT_TRUE(snap.ok());
    snap_ = std::move(snap).value();
    serial_ = std::make_unique<LPathEngine>(snap_->relation());
  }

  std::unique_ptr<service::QueryService> MakeMorselService(int threads = 4) {
    service::QueryServiceOptions opts;
    opts.threads = threads;
    opts.adaptive_serial_rows = 0;  // always fan out: the point is morsels
    return std::make_unique<service::QueryService>(snap_, opts);
  }

  SnapshotPtr snap_;
  std::unique_ptr<LPathEngine> serial_;
};

TEST_F(MorselServiceTest, MorselQueriesMatchSerialOnSkewedCorpus) {
  auto service = MakeMorselService();
  Rng rng(20260730);
  QueryGen gen(&rng);
  for (int i = 0; i < 150; ++i) {
    const std::string q = gen.Query();
    Result<QueryResult> got = service->Query(q);
    Result<QueryResult> expected = serial_->Run(q);
    ASSERT_TRUE(got.ok()) << q << " -> " << got.status();
    ASSERT_TRUE(expected.ok()) << q << " -> " << expected.status();
    ASSERT_EQ(got.value(), expected.value()) << "query: " << q;
  }
  // The workload really exercised the morsel path: fan-outs recorded more
  // than one morsel per sharded query on average.
  const service::ServiceStats stats = service->Stats();
  EXPECT_GT(stats.sharded_queries, 0u);
  EXPECT_GT(stats.exec.morsels, stats.queries);
}

TEST_F(MorselServiceTest, StreamedMorselBatchesMatchSerialOnSkewedCorpus) {
  auto service = MakeMorselService();
  Rng rng(424242);
  QueryGen gen(&rng);
  for (int i = 0; i < 100; ++i) {
    const std::string q = gen.Query();
    std::vector<std::vector<Hit>> batches;
    Status s = service->QueryStream(q, [&batches](std::span<const Hit> rows) {
      batches.emplace_back(rows.begin(), rows.end());
    });
    ASSERT_TRUE(s.ok()) << q << " -> " << s;

    // Delivery contract unchanged by morsel scheduling: batches internally
    // sorted, disjoint, never empty; union = the serial DISTINCT result.
    std::set<Hit> seen;
    QueryResult streamed;
    for (const std::vector<Hit>& batch : batches) {
      ASSERT_FALSE(batch.empty()) << q;
      ASSERT_TRUE(std::is_sorted(batch.begin(), batch.end())) << q;
      for (const Hit& h : batch) {
        ASSERT_TRUE(seen.insert(h).second) << "duplicate row streamed: " << q;
        streamed.hits.push_back(h);
      }
    }
    streamed.Normalize();
    Result<QueryResult> expected = serial_->Run(q);
    ASSERT_TRUE(expected.ok()) << q;
    ASSERT_EQ(streamed, expected.value()) << "query: " << q;
  }
}

TEST_F(MorselServiceTest, SharedMemoServesLaterExecutionsAcrossMorsels) {
  auto service = MakeMorselService();
  // The OR keeps the path predicate a filter (not unnested), so //N is a
  // correlated EXISTS subplan evaluated per VP binding (non-empty result:
  // most VPs dominate a noun in the skew grammar).
  const std::string q = "//VP[//N or @lex='zzzunknown']";
  Result<QueryResult> first = service->Query(q);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first->count(), 0u);
  const service::ServiceStats after_first = service->Stats();
  ASSERT_GE(after_first.exec.morsels, 2u) << "query did not fan out";

  Result<QueryResult> second = service->Query(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  Result<QueryResult> expected = serial_->Run(q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(first.value(), expected.value());

  // The second execution answered its EXISTS probes from the plan's shared
  // memo instead of re-deriving them morsel-privately.
  const service::ServiceStats stats = service->Stats();
  EXPECT_GT(stats.exec.shared_memo_hits, 0u);
  // And the reuse replaced real subquery work: run two evaluated fewer
  // fresh subqueries than run one.
  EXPECT_LT(stats.exec.subqueries, 2 * after_first.exec.subqueries);
}

TEST(ExistsMemoTest, LookupInsertAndCapacity) {
  sql::ExistsMemo memo(/*max_entries=*/16);  // one entry per stripe
  // Distinct 64-bit keys as subplan identities (callers use node addresses
  // or subtree fingerprints; the memo treats them as opaque).
  const uint64_t a = 0xa11ce, b = 0xb0b;
  EXPECT_FALSE(memo.Lookup(a, 1).has_value());
  memo.Insert(a, 1, true);
  memo.Insert(a, 2, false);
  memo.Insert(b, 1, false);
  ASSERT_TRUE(memo.Lookup(a, 1).has_value());
  EXPECT_TRUE(*memo.Lookup(a, 1));
  EXPECT_FALSE(*memo.Lookup(a, 2));
  EXPECT_FALSE(*memo.Lookup(b, 1));
  EXPECT_FALSE(memo.Lookup(b, 2).has_value());

  // Saturate: inserts beyond the per-stripe share are dropped, lookups
  // keep answering, nothing already stored is evicted.
  for (uint64_t k = 0; k < 1000; ++k) memo.Insert(b, 100 + k, true);
  EXPECT_LE(memo.size(), 1000u + 3u);
  EXPECT_TRUE(*memo.Lookup(a, 1));
}

TEST(MorselMemoHammerTest, ConcurrentMorselsAndHotSwapsStayConsistent) {
  // Clients hammer EXISTS-heavy queries (all morsels of each execution
  // share one striped memo) while a swapper republishes alternating
  // snapshots; every answer must match one of the two snapshots' truths
  // and the memo must never leak stale answers across a swap. TSan runs
  // this in CI.
  Result<Corpus> corpus_a = gen::GenerateSkewed(48, /*seed=*/7);
  Result<Corpus> corpus_b = gen::GenerateSkewed(56, /*seed=*/99);
  ASSERT_TRUE(corpus_a.ok());
  ASSERT_TRUE(corpus_b.ok());
  Result<SnapshotPtr> snap_a = CorpusSnapshot::Build(std::move(corpus_a).value());
  Result<SnapshotPtr> snap_b = CorpusSnapshot::Build(std::move(corpus_b).value());
  ASSERT_TRUE(snap_a.ok());
  ASSERT_TRUE(snap_b.ok());

  const std::vector<std::string> queries = {
      "//VP[//N or @lex='zzzunknown']",
      "//S[not(//X)]",
      "//VP[//N or //Det]",
      "//NP[not(//V[@lex='saw'])]",
  };
  LPathEngine engine_a((*snap_a)->relation());
  LPathEngine engine_b((*snap_b)->relation());
  std::vector<QueryResult> truth_a, truth_b;
  for (const std::string& q : queries) {
    Result<QueryResult> ra = engine_a.Run(q);
    Result<QueryResult> rb = engine_b.Run(q);
    ASSERT_TRUE(ra.ok()) << q;
    ASSERT_TRUE(rb.ok()) << q;
    truth_a.push_back(std::move(ra).value());
    truth_b.push_back(std::move(rb).value());
  }

  service::QueryServiceOptions opts;
  opts.threads = 4;
  opts.adaptive_serial_rows = 0;
  service::QueryService service(*snap_a, opts);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread swapper([&] {
    bool use_b = true;
    for (int i = 0; i < 40; ++i) {
      service.UpdateSnapshot(use_b ? *snap_b : *snap_a);
      use_b = !use_b;
      std::this_thread::yield();
    }
    stop.store(true);
  });

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int round = 0;
      while (!stop.load() || round < 8) {
        const size_t qi = (c + round) % queries.size();
        Result<QueryResult> r = service.Query(queries[qi]);
        if (!r.ok() ||
            !(r.value() == truth_a[qi] || r.value() == truth_b[qi])) {
          failures.fetch_add(1);
        }
        QueryResult streamed;
        Status s = service.QueryStream(
            queries[(qi + 1) % queries.size()],
            [&streamed](std::span<const Hit> rows) {
              streamed.hits.insert(streamed.hits.end(), rows.begin(),
                                   rows.end());
            });
        streamed.Normalize();
        const size_t si = (qi + 1) % queries.size();
        if (!s.ok() ||
            !(streamed == truth_a[si] || streamed == truth_b[si])) {
          failures.fetch_add(1);
        }
        ++round;
      }
    });
  }
  swapper.join();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const service::ServiceStats stats = service.Stats();
  EXPECT_GT(stats.queries, 0u);
  EXPECT_EQ(stats.errors, 0u);
}

}  // namespace
}  // namespace lpath
