// QueryService tests: the serving layer must be a drop-in equivalent of
// the serial LPathEngine (differential over the fuzz corpus/generator with
// a 4-thread pool), the plan cache must hit on normalized respellings and
// evict LRU, and concurrent clients must see consistent results and stats.
// This suite runs under ThreadSanitizer in CI.

#include "service/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lpath/engines.h"
#include "plan/exec_plan.h"
#include "service/plan_cache.h"
#include "sql/fingerprint.h"
#include "service/thread_pool.h"
#include "test_util.h"

namespace lpath {
namespace {

using testing::QueryGen;

TEST(ThreadPoolTest, RunsEveryTask) {
  std::atomic<int> counter{0};
  {
    service::ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Post([&counter] { counter.fetch_add(1); });
    }
    service::ThreadPool inner(2);
    for (int i = 0; i < 100; ++i) {
      inner.Post([&counter] { counter.fetch_add(1); });
    }
    // Destructors drain the queues before joining, so a dropped task shows
    // up as an assertion failure below, not a hang.
  }
  EXPECT_EQ(counter.load(), 1100);
}

TEST(ThreadPoolTest, BulkPostRunsEveryTaskOfEveryBatch) {
  std::atomic<int> counter{0};
  {
    service::ThreadPool pool(3);
    // Mixed batch sizes, including empty (a no-op) and larger than the
    // pool, interleaved with single posts — both enqueue paths share the
    // FIFO and the drain-on-destruction contract.
    for (int round = 0; round < 50; ++round) {
      std::vector<std::function<void()>> batch;
      for (int i = 0; i < round % 7; ++i) {
        batch.push_back([&counter] { counter.fetch_add(1); });
      }
      pool.Post(std::move(batch));
      pool.Post([&counter] { counter.fetch_add(1); });
    }
    pool.Post(std::vector<std::function<void()>>{});
  }
  // 50 rounds of (round % 7) batch tasks + 50 singles.
  int expected = 50;
  for (int round = 0; round < 50; ++round) expected += round % 7;
  EXPECT_EQ(counter.load(), expected);
}

TEST(PlanCacheTest, NormalizeCollapsesWhitespace) {
  EXPECT_EQ(service::NormalizeQueryText("  //NP  [ @lex = 'saw' ]  "),
            "//NP [ @lex = 'saw' ]");
  EXPECT_EQ(service::NormalizeQueryText("//NP\n\t//VP"), "//NP //VP");
  EXPECT_EQ(service::NormalizeQueryText(""), "");
}

TEST(PlanCacheTest, NormalizePreservesQuotedLiterals) {
  // The normalized text is what gets parsed, and LPath literals may
  // contain any character — whitespace inside quotes must survive.
  EXPECT_EQ(service::NormalizeQueryText("//V[ @lex = 'a  b' ]"),
            "//V[ @lex = 'a  b' ]");
  EXPECT_EQ(service::NormalizeQueryText("//V[@lex=\"a\tb\"]  "),
            "//V[@lex=\"a\tb\"]");
  EXPECT_EQ(service::NormalizeQueryText("'  x  '"), "'  x  '");
  // Regression: a run of spaces inside a quoted value must not collapse —
  // 'VB  NN' and 'VB NN' are different literals and different cache keys.
  EXPECT_EQ(service::NormalizeQueryText("//V[@lex='VB  NN']"),
            "//V[@lex='VB  NN']");
  EXPECT_NE(service::NormalizeQueryText("//V[@lex='VB  NN']"),
            service::NormalizeQueryText("//V[@lex='VB NN']"));
}

namespace {

// A structurally distinct plan per tag: one variable whose name column is
// pinned to a tag-specific literal.
ExecPlan TaggedPlan(const std::string& tag) {
  ExecPlan plan;
  plan.num_vars = 1;
  Conjunct c;
  c.lhs = Operand::Column(0, PlanCol::kName);
  c.rhs = Operand::String(tag);
  plan.conjuncts.push_back(std::move(c));
  return plan;
}

service::CachedPlanPtr MakeBundle(uint64_t fp) {
  auto entry = std::make_shared<service::CachedPlan>();
  entry->fingerprint = fp;
  entry->plan = std::make_shared<sql::PreparedPlan>();
  entry->memo = std::make_shared<sql::ExistsMemo>();
  return entry;
}

}  // namespace

TEST(PlanCacheTest, LruEvictsOldestAndCountsStats) {
  service::PlanCache cache(2);
  auto put = [&cache](const std::string& key) {
    ExecPlan rep = TaggedPlan(key);
    const uint64_t fp = sql::PlanFingerprint(rep);
    cache.Put(key, fp, std::move(rep), MakeBundle(fp));
  };
  EXPECT_EQ(cache.Get("a"), nullptr);
  put("a");
  put("b");
  EXPECT_NE(cache.Get("a"), nullptr);  // "a" now most recent
  put("c");                            // evicts "b"
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  const service::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.negative_hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.texts, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(PlanCacheTest, NegativeEntriesShareTheLruAndCountHits) {
  service::PlanCache cache(2);
  cache.PutNegative("bad", Status::InvalidArgument("parse error"));
  service::CachedPlanPtr hit = cache.Get("bad");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->negative());
  EXPECT_TRUE(hit->error.IsInvalidArgument());
  const service::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.negative_hits, 1u);
}

TEST(PlanCacheTest, RespellingsBindToOneEntryByFingerprint) {
  service::PlanCache cache(4);
  ExecPlan rep = TaggedPlan("NP");
  const uint64_t fp = sql::PlanFingerprint(rep);
  service::CachedPlanPtr first =
      cache.Put("//NP", fp, rep.Clone(), MakeBundle(fp));

  // A differently spelled query compiling to the same structure binds to
  // the existing entry without a Put.
  ExecPlan respelled = TaggedPlan("NP");
  service::CachedPlanPtr shared =
      cache.GetByFingerprint("//'NP'", fp, respelled);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared.get(), first.get());
  // And the spelling is now a front-map hit.
  EXPECT_EQ(cache.Get("//'NP'").get(), first.get());

  // A genuinely different plan presented under the same hash is refused.
  ExecPlan other = TaggedPlan("VP");
  EXPECT_EQ(cache.GetByFingerprint("//VP", fp, other), nullptr);

  const service::PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.shared_prepare_hits, 1u);
  EXPECT_EQ(stats.fingerprint_collisions, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.texts, 2u);
  EXPECT_EQ(stats.fingerprints, 1u);
}

TEST(PlanCacheTest, RacingPutAdoptsThePublishedEntry) {
  service::PlanCache cache(4);
  ExecPlan rep = TaggedPlan("NP");
  const uint64_t fp = sql::PlanFingerprint(rep);
  service::CachedPlanPtr winner =
      cache.Put("//NP", fp, rep.Clone(), MakeBundle(fp));
  // Same text raced: the loser's bundle is dropped, the winner returned.
  service::CachedPlanPtr same_text =
      cache.Put("//NP", fp, rep.Clone(), MakeBundle(fp));
  EXPECT_EQ(same_text.get(), winner.get());
  // Different text, structurally equal plan: bound to the same entry.
  service::CachedPlanPtr same_structure =
      cache.Put("//'NP'", fp, rep.Clone(), MakeBundle(fp));
  EXPECT_EQ(same_structure.get(), winner.get());
  EXPECT_EQ(cache.stats().size, 1u);
}

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() {
    Result<SnapshotPtr> snap =
        CorpusSnapshot::Build(testing::RandomCorpus(9001, 20, 28));
    EXPECT_TRUE(snap.ok());
    snap_ = std::move(snap).value();
    serial_ = std::make_unique<LPathEngine>(snap_->relation());
  }

  std::unique_ptr<service::QueryService> MakeService(
      service::QueryServiceOptions opts = {}) {
    return std::make_unique<service::QueryService>(snap_, opts);
  }

  SnapshotPtr snap_;
  std::unique_ptr<LPathEngine> serial_;
};

TEST_F(QueryServiceTest, AgreesWithSerialEngineOnFuzzQueries) {
  service::QueryServiceOptions opts;
  opts.threads = 4;
  opts.adaptive_serial_rows = 0;  // the point here is the sharded path
  auto service = MakeService(opts);
  Rng rng(77);
  QueryGen gen(&rng);
  for (int i = 0; i < 150; ++i) {
    const std::string q = gen.Query();
    Result<QueryResult> got = service->Query(q);
    Result<QueryResult> expected = serial_->Run(q);
    ASSERT_TRUE(got.ok()) << q << " -> " << got.status();
    ASSERT_TRUE(expected.ok()) << q << " -> " << expected.status();
    ASSERT_EQ(got.value(), expected.value()) << "query: " << q;
  }
}

TEST_F(QueryServiceTest, BatchMatchesIndividualQueries) {
  service::QueryServiceOptions opts;
  opts.threads = 4;
  auto service = MakeService(opts);
  Rng rng(1234);
  QueryGen gen(&rng);
  std::vector<std::string> queries;
  for (int i = 0; i < 60; ++i) queries.push_back(gen.Query());
  std::vector<Result<QueryResult>> batch = service->QueryBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryResult> expected = serial_->Run(queries[i]);
    ASSERT_TRUE(batch[i].ok()) << queries[i] << " -> " << batch[i].status();
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(batch[i].value(), expected.value()) << "query: " << queries[i];
  }
}

TEST_F(QueryServiceTest, PlanCacheHitsOnRespellings) {
  // Normalization collapses whitespace runs and trims; it cannot remove
  // whitespace outright (the and/or/not keywords need separators).
  auto service = MakeService();
  ASSERT_TRUE(service->Query("//NP[@lex='dog' or @lex='saw']").ok());
  ASSERT_TRUE(service->Query("//NP[@lex='dog'   or   @lex='saw']").ok());
  ASSERT_TRUE(service->Query("  //NP[@lex='dog' \t or @lex='saw']  ").ok());
  const service::ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, 2u);
  EXPECT_EQ(stats.cache.size, 1u);
}

TEST_F(QueryServiceTest, UnknownWordInsideOrIsServedNotEmptied) {
  // The service must inherit the literal-resolution fix end to end.
  auto service = MakeService();
  Result<QueryResult> with_or =
      service->Query("//_[@lex='dog' or @lex='zzzunknown']");
  Result<QueryResult> plain = service->Query("//_[@lex='dog']");
  ASSERT_TRUE(with_or.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(with_or.value(), plain.value());
}

TEST_F(QueryServiceTest, StatsCountLatencyAndWork) {
  auto service = MakeService();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service->Query("//NP//_").ok());
  }
  const service::ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.queries, 10u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.latency.samples, 10u);
  EXPECT_LE(stats.latency.p50_ms, stats.latency.p90_ms);
  EXPECT_LE(stats.latency.p90_ms, stats.latency.p99_ms);
  EXPECT_LE(stats.latency.p99_ms, stats.latency.max_ms);
  EXPECT_GT(stats.exec.candidates, 0u);
  EXPECT_GT(stats.total_seconds, 0.0);
  service->ResetStats();
  EXPECT_EQ(service->Stats().queries, 0u);
  EXPECT_EQ(service->Stats().latency.samples, 0u);
}

TEST_F(QueryServiceTest, ParseErrorsAreReturnedAndCounted) {
  auto service = MakeService();
  Result<QueryResult> r = service->Query("///[[");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(service->Stats().errors, 1u);
  EXPECT_EQ(service->Stats().queries, 1u);
}

TEST_F(QueryServiceTest, NegativeCacheServesRepeatedBadQueries) {
  auto service = MakeService();
  const std::string bad = "///[[";
  Result<QueryResult> first = service->Query(bad);
  ASSERT_FALSE(first.ok());
  // Resubmissions (including respellings) answer from the cache with the
  // same Status instead of re-parsing.
  Result<QueryResult> second = service->Query(bad);
  Result<QueryResult> third = service->Query("  ///[[  ");
  ASSERT_FALSE(second.ok());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(second.status().ToString(), first.status().ToString());
  EXPECT_EQ(third.status().ToString(), first.status().ToString());
  const service::ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.cache.misses, 1u);  // parsed exactly once
  EXPECT_EQ(stats.cache.hits, 2u);
  EXPECT_EQ(stats.cache.negative_hits, 2u);
  EXPECT_EQ(stats.cache.size, 1u);
  EXPECT_EQ(stats.errors, 3u);
}

TEST_F(QueryServiceTest, AdaptiveShardingPicksSerialForTinyQueries) {
  // The fixture corpus is tiny, so with the default threshold every query
  // should be executed serially — visible both in the decision counters
  // and in the executor's shard count.
  service::QueryServiceOptions adaptive;
  adaptive.threads = 4;
  auto service = MakeService(adaptive);
  ASSERT_TRUE(service->Query("//NP//_").ok());
  service::ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.serial_queries, 1u);
  EXPECT_EQ(stats.sharded_queries, 0u);
  EXPECT_EQ(stats.exec.shards, 1u);

  // Disabling the heuristic shards the same query across the pool.
  service::QueryServiceOptions forced;
  forced.threads = 4;
  forced.adaptive_serial_rows = 0;
  auto sharded = MakeService(forced);
  Result<QueryResult> a = sharded->Query("//NP//_");
  ASSERT_TRUE(a.ok());
  stats = sharded->Stats();
  EXPECT_EQ(stats.sharded_queries, 1u);
  EXPECT_EQ(stats.serial_queries, 0u);
  EXPECT_GT(stats.exec.shards, 1u);

  // Both decisions return the same rows.
  Result<QueryResult> b = service->Query("//NP//_");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST_F(QueryServiceTest, UpdateSnapshotServesTheNewCorpus) {
  auto service = MakeService();
  const std::string q = "//NP//_";
  Result<QueryResult> before = service->Query(q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(service->snapshot()->id(), snap_->id());

  Result<SnapshotPtr> other =
      CorpusSnapshot::Build(testing::RandomCorpus(31337, 35, 30));
  ASSERT_TRUE(other.ok());
  service->UpdateSnapshot(other.value());
  EXPECT_EQ(service->snapshot()->id(), (*other)->id());

  Result<QueryResult> after = service->Query(q);
  ASSERT_TRUE(after.ok());
  LPathEngine other_engine((*other)->relation());
  Result<QueryResult> expected = other_engine.Run(q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after.value(), expected.value());
  // A fresh cache: the old snapshot's plans (symbols!) were dropped.
  EXPECT_EQ(service->Stats().cache.misses, 1u);
}

TEST_F(QueryServiceTest, ViaSqlTextPreparesIdenticalResults) {
  service::QueryServiceOptions direct;
  service::QueryServiceOptions roundtrip;
  roundtrip.via_sql_text = true;
  auto a = MakeService(direct);
  auto b = MakeService(roundtrip);
  Rng rng(5150);
  QueryGen gen(&rng);
  for (int i = 0; i < 40; ++i) {
    const std::string q = gen.Query();
    Result<QueryResult> ra = a->Query(q);
    Result<QueryResult> rb = b->Query(q);
    ASSERT_TRUE(ra.ok()) << q;
    ASSERT_TRUE(rb.ok()) << q;
    ASSERT_EQ(ra.value(), rb.value()) << "query: " << q;
  }
}

TEST_F(QueryServiceTest, ConcurrentClientsSeeConsistentResults) {
  service::QueryServiceOptions opts;
  opts.threads = 4;
  opts.plan_cache_capacity = 8;   // force eviction churn under load
  opts.adaptive_serial_rows = 0;  // keep intra-query sharding in the mix
  auto service = MakeService(opts);

  // A mixed workload per client: shared hot queries (cache hits) plus
  // client-unique ones (misses + evictions), half through the batch path.
  constexpr int kClients = 6;
  std::vector<std::string> hot = {"//NP//_", "//VP[//N]", "//S",
                                  "//_[@lex='dog' or @lex='zzzunknown']"};
  std::vector<QueryResult> expected;
  for (const std::string& q : hot) {
    Result<QueryResult> r = serial_->Run(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(std::move(r).value());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      QueryGen gen(&rng);
      for (int round = 0; round < 25; ++round) {
        const size_t qi = (c + round) % hot.size();
        Result<QueryResult> r = service->Query(hot[qi]);
        if (!r.ok() || !(r.value() == expected[qi])) failures.fetch_add(1);
        // Unique query: exercises miss + prepare + eviction concurrently.
        (void)service->Query(gen.Query());
        if (round % 5 == 0) {
          std::vector<Result<QueryResult>> batch =
              service->QueryBatch({hot[0], hot[1]});
          if (!(batch[0].ok() && batch[0].value() == expected[0])) {
            failures.fetch_add(1);
          }
          if (!(batch[1].ok() && batch[1].value() == expected[1])) {
            failures.fetch_add(1);
          }
        }
        (void)service->Stats();  // stats reads race with recording
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const service::ServiceStats stats = service->Stats();
  EXPECT_GT(stats.queries, static_cast<uint64_t>(kClients * 50));
  EXPECT_GT(stats.cache.evictions, 0u);
}

}  // namespace
}  // namespace lpath
