// Shard execution tests: ExecuteShard over any partition of the tid space
// must merge to exactly ExecutePrepared's result (differential over the
// fuzz corpus/query generator), shards must respect their boundaries, and
// concurrent shard execution over one shared PreparedPlan must be free of
// data races (this suite runs under ThreadSanitizer in CI).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lpath/engines.h"
#include "sql/executor.h"
#include "sql/optimizer.h"
#include "test_util.h"

namespace lpath {
namespace {

using testing::QueryGen;

/// Merges per-shard results over an even partition into `shards` slices.
QueryResult MergeShards(const sql::PlanExecutor& executor,
                        const sql::PreparedPlan& pp, int32_t trees,
                        int shards, sql::ExecStats* stats = nullptr) {
  QueryResult merged;
  for (int i = 0; i < shards; ++i) {
    const int32_t lo = static_cast<int32_t>(int64_t{trees} * i / shards);
    const int32_t hi = static_cast<int32_t>(int64_t{trees} * (i + 1) / shards);
    Result<QueryResult> part = executor.ExecuteShard(pp, lo, hi, stats);
    EXPECT_TRUE(part.ok()) << part.status();
    if (!part.ok()) return merged;
    merged.hits.insert(merged.hits.end(), part->hits.begin(),
                       part->hits.end());
  }
  merged.Normalize();
  return merged;
}

class ShardDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardDifferentialTest, ShardsMergeToSerialResult) {
  Rng rng(GetParam() * 104729 + 13);
  Corpus corpus = testing::RandomCorpus(GetParam() * 97 + 3, /*trees=*/17,
                                        /*max_nodes=*/25);
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  sql::PlanExecutor executor(rel.value());
  const int32_t trees = rel.value().tree_count();

  QueryGen gen(&rng);
  for (int i = 0; i < 120; ++i) {
    const std::string q = gen.Query();
    Result<ExecPlan> plan = engine.Translate(q);
    ASSERT_TRUE(plan.ok()) << q << " -> " << plan.status();
    Result<std::unique_ptr<sql::PreparedPlan>> pp =
        sql::Prepare(plan.value(), rel.value(), {});
    ASSERT_TRUE(pp.ok()) << q << " -> " << pp.status();

    Result<QueryResult> serial = executor.ExecutePrepared(*pp.value());
    ASSERT_TRUE(serial.ok()) << q << " -> " << serial.status();
    for (int shards : {2, 4, 7}) {
      const QueryResult merged =
          MergeShards(executor, *pp.value(), trees, shards);
      ASSERT_EQ(merged, serial.value())
          << "query: " << q << "\nshards: " << shards
          << "\nseed: " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDifferentialTest,
                         ::testing::Range<uint64_t>(1, 5));

class ShardBoundaryTest : public ::testing::Test {
 protected:
  ShardBoundaryTest() : corpus_(testing::RandomCorpus(42, 9, 20)) {
    Result<NodeRelation> rel = NodeRelation::Build(corpus_);
    EXPECT_TRUE(rel.ok());
    rel_ = std::make_unique<NodeRelation>(std::move(rel).value());
  }

  std::unique_ptr<sql::PreparedPlan> PrepareQuery(const std::string& q) {
    LPathEngine engine(*rel_);
    Result<ExecPlan> plan = engine.Translate(q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    Result<std::unique_ptr<sql::PreparedPlan>> pp =
        sql::Prepare(plan.value(), *rel_, {});
    EXPECT_TRUE(pp.ok()) << pp.status();
    return std::move(pp).value();
  }

  Corpus corpus_;
  std::unique_ptr<NodeRelation> rel_;
};

TEST_F(ShardBoundaryTest, EmptyAndOutOfRangeShardsYieldNothing) {
  auto pp = PrepareQuery("//NP");
  sql::PlanExecutor executor(*rel_);
  EXPECT_EQ(executor.ExecuteShard(*pp, 3, 3)->count(), 0u);
  const int32_t trees = rel_->tree_count();
  EXPECT_EQ(executor.ExecuteShard(*pp, trees, 2 * trees)->count(), 0u);
}

TEST_F(ShardBoundaryTest, FullRangeShardEqualsSerial) {
  auto pp = PrepareQuery("//NP[//N or @lex=zzzunknown]");
  sql::PlanExecutor executor(*rel_);
  Result<QueryResult> serial = executor.ExecutePrepared(*pp);
  Result<QueryResult> full =
      executor.ExecuteShard(*pp, 0, rel_->tree_count());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value(), serial.value());
}

TEST_F(ShardBoundaryTest, ShardHitsStayInsideTheShard) {
  auto pp = PrepareQuery("//_");
  sql::PlanExecutor executor(*rel_);
  Result<QueryResult> part = executor.ExecuteShard(*pp, 2, 5);
  ASSERT_TRUE(part.ok());
  ASSERT_GT(part->count(), 0u);
  for (const Hit& h : part->hits) {
    EXPECT_GE(h.tid, 2);
    EXPECT_LT(h.tid, 5);
  }
}

TEST(ShardConcurrencyTest, ConcurrentShardsOnSharedPlanAgree) {
  Corpus corpus = testing::RandomCorpus(271828, /*trees=*/24, /*max_nodes=*/30);
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  sql::PlanExecutor executor(rel.value());
  const int32_t trees = rel.value().tree_count();

  const std::string q = "//NP[@lex=dog or @lex=zzzunknown]//_";
  Result<ExecPlan> plan = engine.Translate(q);
  ASSERT_TRUE(plan.ok());
  Result<std::unique_ptr<sql::PreparedPlan>> pp =
      sql::Prepare(plan.value(), rel.value(), {});
  ASSERT_TRUE(pp.ok());
  Result<QueryResult> serial = executor.ExecutePrepared(*pp.value());
  ASSERT_TRUE(serial.ok());

  // Eight workers repeatedly run overlapping shard sweeps of one shared
  // prepared plan; each sweep must reproduce the serial result.
  constexpr int kWorkers = 8;
  std::vector<QueryResult> merged(kWorkers);
  std::vector<sql::ExecStats> stats(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      const int shards = 2 + (w % 5);
      merged[w] =
          MergeShards(executor, *pp.value(), trees, shards, &stats[w]);
    });
  }
  for (std::thread& t : workers) t.join();
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(merged[w], serial.value()) << "worker " << w;
    EXPECT_GT(stats[w].candidates, 0u);
  }
}

}  // namespace
}  // namespace lpath
