// Live-corpus ingestion tests. The contract under test is the snapshot
// chain (storage/snapshot.h): appending trees to a served corpus must be
//   - *correct*: query results over the chain (base + delta, two-source
//     execution) are identical to results over a corpus rebuilt from
//     scratch with the same trees — fuzzed over 150 generated queries,
//     across built / mapped-v1 / mapped-v2 bases and both executor
//     kernels;
//   - *O(delta)*: the base is never relabeled or resorted, stated in
//     NodeRelation::LabeledTreeCount(), and compaction's Merge labels
//     nothing at all;
//   - *safe under concurrency*: a 4-client query/ingest/compact hammer
//     (the `concurrency` label puts it under TSan) never loses trees,
//     never tears a snapshot, and counts grow monotonically;
//   - *crash-safe*: a compaction rewrite is tmp+rename — a torn image is
//     rejected at open, never served, and readers of the pre-compaction
//     chain keep a valid mapping across the rewrite.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "lpath/engines.h"
#include "storage/image.h"
#include "storage/relation.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "tree/corpus.h"

namespace lpath {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("lpathdb_ingest_") + info->test_suite_name() + "_" +
             info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }

  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

SnapshotPtr MustBuild(Corpus corpus, RelationOptions options = {}) {
  Result<SnapshotPtr> snap = CorpusSnapshot::Build(std::move(corpus), options);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return std::move(snap).value();
}

SnapshotPtr MustOpen(const std::string& path) {
  Result<SnapshotPtr> snap = CorpusSnapshot::Open(path);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return std::move(snap).value();
}

SnapshotPtr MustAppend(const SnapshotPtr& snap, const Corpus& incoming) {
  Result<SnapshotPtr> chained = snap->Append(incoming);
  EXPECT_TRUE(chained.ok()) << chained.status().ToString();
  return std::move(chained).value();
}

/// The three base flavours the chain must compose over identically.
enum class BaseKind { kBuilt, kImageV1, kImageV2 };

SnapshotPtr MakeBase(BaseKind kind, Corpus corpus, const std::string& path) {
  SnapshotPtr built = MustBuild(std::move(corpus));
  if (kind == BaseKind::kBuilt) return built;
  ImageSaveOptions save;
  if (kind == BaseKind::kImageV1) {
    save.format_version = 1;
    save.encoding = ImageEncoding::kRaw;
  }
  Status s = built->Save(path, save);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return MustOpen(path);
}

/// Asserts two relations answer identically through the accessor surface
/// the executor uses — the Merge-equals-Build invariant, column by column.
void ExpectSameRelation(const NodeRelation& a, const NodeRelation& b) {
  ASSERT_EQ(a.row_count(), b.row_count());
  ASSERT_EQ(a.tree_count(), b.tree_count());
  ASSERT_EQ(a.element_count(), b.element_count());
  ASSERT_EQ(a.scheme(), b.scheme());
  ASSERT_EQ(a.interner().end_id(), b.interner().end_id());
  for (Row r = 0; r < a.row_count(); ++r) {
    ASSERT_EQ(a.tid(r), b.tid(r)) << r;
    ASSERT_EQ(a.left(r), b.left(r)) << r;
    ASSERT_EQ(a.right(r), b.right(r)) << r;
    ASSERT_EQ(a.depth(r), b.depth(r)) << r;
    ASSERT_EQ(a.id(r), b.id(r)) << r;
    ASSERT_EQ(a.pid(r), b.pid(r)) << r;
    ASSERT_EQ(a.name(r), b.name(r)) << r;
    ASSERT_EQ(a.value(r), b.value(r)) << r;
    ASSERT_EQ(a.kind(r), b.kind(r)) << r;
  }
  for (Symbol s = 1; s < a.interner().end_id(); ++s) {
    ASSERT_EQ(a.interner().name(s), b.interner().name(s)) << s;
    ASSERT_EQ(a.run(s).begin, b.run(s).begin) << s;
    ASSERT_EQ(a.run(s).end, b.run(s).end) << s;
    const auto va = a.ValueRange(s);
    const auto vb = b.ValueRange(s);
    ASSERT_EQ(std::vector<Row>(va.begin(), va.end()),
              std::vector<Row>(vb.begin(), vb.end()))
        << s;
  }
  for (int32_t t = 0; t < a.tree_count(); ++t) {
    ASSERT_EQ(a.TreeRowCount(t), b.TreeRowCount(t)) << t;
    ASSERT_EQ(a.TreeRowsBefore(t), b.TreeRowsBefore(t)) << t;
  }
}

/// `base_seed`'s corpus followed by `delta_seed`'s, in one interner — the
/// rebuild-from-scratch reference the chain must match. The interner is
/// seeded with a clone of the base corpus's (the same superset-dictionary
/// construction Append uses), so symbol ids — and through them the name-run
/// order of the built relation — line up with the chain's merged relation
/// and bit-identity can be asserted, not just result equality.
Corpus CombinedCorpus(uint64_t base_seed, int base_trees, uint64_t delta_seed,
                      int delta_trees) {
  Corpus base = testing::RandomCorpus(base_seed, base_trees);
  Corpus combined;
  combined.ResetInterner(base.interner().Clone());
  combined.AppendFrom(base);
  combined.AppendFrom(testing::RandomCorpus(delta_seed, delta_trees));
  return combined;
}

// ---------------------------------------------------------------------------
// Chain semantics

TEST(SnapshotChain, AppendBasics) {
  SnapshotPtr base = MustBuild(testing::RandomCorpus(11, 12));
  const Corpus incoming = testing::RandomCorpus(12, 5);
  SnapshotPtr chain = MustAppend(base, incoming);

  EXPECT_FALSE(base->has_delta());
  EXPECT_TRUE(chain->has_delta());
  EXPECT_EQ(chain->base_tree_count(), 12);
  EXPECT_EQ(chain->delta_tree_count(), 5);
  EXPECT_EQ(chain->tree_count(), 17);
  EXPECT_EQ(chain->element_count(),
            base->element_count() + chain->delta_relation()->element_count());
  // The base snapshot's corpus is shared, not copied (the relation member
  // is a by-value copy whose columns share the base's backing arena; the
  // no-relabeling guarantee is asserted by the LabeledTreeCount tests).
  EXPECT_EQ(&chain->corpus(), &base->corpus());

  // TreeAt resolves the whole chain tid space.
  for (int32_t t = 0; t < 12; ++t) {
    ASSERT_NE(chain->TreeAt(t), nullptr) << t;
    EXPECT_EQ(chain->TreeAt(t)->size(), base->corpus().tree(t).size()) << t;
  }
  for (int32_t t = 12; t < 17; ++t) {
    ASSERT_NE(chain->TreeAt(t), nullptr) << t;
    EXPECT_EQ(chain->TreeAt(t)->size(), incoming.tree(t - 12).size()) << t;
  }
  EXPECT_EQ(chain->TreeAt(17), nullptr);
  EXPECT_EQ(chain->TreeAt(-1), nullptr);

  // The chain interner is a superset of the base's: same ids for every
  // base symbol (delta columns and base columns share one id space).
  const Interner& bin = base->corpus().interner();
  const Interner& cin = chain->interner();
  ASSERT_GE(cin.end_id(), bin.end_id());
  for (Symbol s = 1; s < bin.end_id(); ++s) {
    EXPECT_EQ(cin.name(s), bin.name(s)) << s;
  }

  // Appending nothing is an error, not a silent no-op chain.
  Corpus empty;
  EXPECT_FALSE(base->Append(empty).ok());
  // Compacting a delta-less snapshot is likewise an error at this layer
  // (Database::Compact turns it into a no-op success).
  EXPECT_FALSE(base->Compact().ok());
}

TEST(SnapshotChain, CompactEqualsRebuildBitForBit) {
  SnapshotPtr base = MustBuild(testing::RandomCorpus(21, 40));
  SnapshotPtr chain = MustAppend(base, testing::RandomCorpus(22, 9));
  Result<SnapshotPtr> compacted = chain->Compact();
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_FALSE((*compacted)->has_delta());

  SnapshotPtr rebuilt = MustBuild(CombinedCorpus(21, 40, 22, 9));
  ExpectSameRelation((*compacted)->relation(), rebuilt->relation());
}

TEST(SnapshotChain, RebuildPreservesTheDelta) {
  SnapshotPtr base = MustBuild(testing::RandomCorpus(31, 15));
  SnapshotPtr chain = MustAppend(base, testing::RandomCorpus(32, 4));
  Result<SnapshotPtr> rebuilt = chain->Rebuild();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE((*rebuilt)->has_delta());
  EXPECT_EQ((*rebuilt)->tree_count(), 19);
  EXPECT_EQ((*rebuilt)->delta_tree_count(), 4);
}

TEST(SnapshotChain, SaveOfChainWritesTheMergedRelation) {
  TempDir dir;
  SnapshotPtr base = MustBuild(testing::RandomCorpus(41, 20));
  SnapshotPtr chain = MustAppend(base, testing::RandomCorpus(42, 6));
  const std::string path = dir.File("chain.img");
  Status s = chain->Save(path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  SnapshotPtr reopened = MustOpen(path);
  EXPECT_EQ(reopened->tree_count(), 26);
  EXPECT_FALSE(reopened->has_delta());
  SnapshotPtr rebuilt = MustBuild(CombinedCorpus(41, 20, 42, 6));
  ExpectSameRelation(reopened->relation(), rebuilt->relation());
}

// ---------------------------------------------------------------------------
// O(delta) counters

TEST(IngestCounters, AppendLabelsOnlyTheDelta) {
  SnapshotPtr base = MustBuild(testing::RandomCorpus(51, 50));
  const uint64_t start = NodeRelation::LabeledTreeCount();

  // First append onto the 50-tree base: exactly 5 trees labeled.
  SnapshotPtr chain1 = MustAppend(base, testing::RandomCorpus(52, 5));
  EXPECT_EQ(NodeRelation::LabeledTreeCount() - start, 5u);

  // Second append rebuilds the (still tiny) delta: 5 + 3 trees labeled,
  // never the 50-tree base.
  SnapshotPtr chain2 = MustAppend(chain1, testing::RandomCorpus(53, 3));
  EXPECT_EQ(NodeRelation::LabeledTreeCount() - start, 5u + 8u);

  // Compaction is pure Merge: no labeling, no sorting.
  const uint64_t before_compact = NodeRelation::LabeledTreeCount();
  Result<SnapshotPtr> compacted = chain2->Compact();
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(NodeRelation::LabeledTreeCount(), before_compact);
  EXPECT_EQ((*compacted)->tree_count(), 58);
}

TEST(IngestCounters, ImageBackedBaseIsNeverRelabeled) {
  TempDir dir;
  const std::string path = dir.File("base.img");
  {
    SnapshotPtr built = MustBuild(testing::RandomCorpus(61, 40));
    Status s = built->Save(path);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  const uint64_t start = NodeRelation::LabeledTreeCount();
  SnapshotPtr mapped = MustOpen(path);
  EXPECT_EQ(NodeRelation::LabeledTreeCount(), start);  // open labels nothing

  SnapshotPtr chain = MustAppend(mapped, testing::RandomCorpus(62, 6));
  EXPECT_EQ(NodeRelation::LabeledTreeCount() - start, 6u);

  // Image compaction merges + rewrites the file, still without labeling.
  Result<SnapshotPtr> compacted = chain->Compact();
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(NodeRelation::LabeledTreeCount() - start, 6u);
  EXPECT_TRUE((*compacted)->image_backed());
  EXPECT_FALSE((*compacted)->has_delta());
  EXPECT_EQ((*compacted)->tree_count(), 46);
}

// ---------------------------------------------------------------------------
// Append-vs-rebuild fuzz differential

TEST(IngestDifferential, AppendVsRebuild150Queries) {
  constexpr int kQueries = 150;
  constexpr int kBaseTrees = 60;
  constexpr int kDeltaTrees = 25;
  constexpr uint64_t kBaseSeed = 2006;
  constexpr uint64_t kDeltaSeed = 4008;
  TempDir dir;

  // The rebuild-from-scratch reference: one corpus, one relation.
  SnapshotPtr rebuilt =
      MustBuild(CombinedCorpus(kBaseSeed, kBaseTrees, kDeltaSeed, kDeltaTrees));
  LPathEngine reference(rebuilt->relation());

  int checked = 0;
  for (BaseKind kind :
       {BaseKind::kBuilt, BaseKind::kImageV1, BaseKind::kImageV2}) {
    SnapshotPtr base =
        MakeBase(kind, testing::RandomCorpus(kBaseSeed, kBaseTrees),
                 dir.File("base_" + std::to_string(static_cast<int>(kind)) +
                          ".img"));
    SnapshotPtr chain =
        MustAppend(base, testing::RandomCorpus(kDeltaSeed, kDeltaTrees));
    ASSERT_EQ(chain->tree_count(), rebuilt->tree_count());

    for (bool vectorized : {true, false}) {
      service::QueryServiceOptions options;
      options.threads = 4;
      options.exec.vectorized = vectorized;
      // Forcing fan-out exercises the two-source morsel scheduler; the
      // serial two-source path is covered by the always-empty plans the
      // generator's unknown literals produce (and by its own test below).
      options.adaptive_serial_rows = 0;
      service::QueryService service(chain, options);

      Rng rng(kBaseSeed ^ (vectorized ? 1 : 2));
      testing::QueryGen gen(&rng);
      for (int i = 0; i < kQueries; ++i) {
        const std::string q = gen.Query();
        Result<QueryResult> want = reference.Run(q);
        Result<QueryResult> got = service.Query(q);
        ASSERT_EQ(want.ok(), got.ok())
            << q << ": " << (want.ok() ? got : want).status().ToString();
        if (!want.ok()) continue;
        ASSERT_EQ(want->hits, got->hits) << q;
        ++checked;
      }
      const service::ServiceStats stats = service.Stats();
      EXPECT_EQ(stats.exec.sources, 2u);  // the chain really ran two-source
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(IngestDifferential, SerialTwoSourcePathMatchesRebuild) {
  SnapshotPtr base = MustBuild(testing::RandomCorpus(71, 30));
  SnapshotPtr chain = MustAppend(base, testing::RandomCorpus(72, 10));
  SnapshotPtr rebuilt = MustBuild(CombinedCorpus(71, 30, 72, 10));
  LPathEngine reference(rebuilt->relation());

  service::QueryServiceOptions options;
  options.threads = 2;
  // A huge serial threshold pins every query to the serial two-source path.
  options.adaptive_serial_rows = 1u << 30;
  service::QueryService service(chain, options);

  Rng rng(73);
  testing::QueryGen gen(&rng);
  for (int i = 0; i < 60; ++i) {
    const std::string q = gen.Query();
    Result<QueryResult> want = reference.Run(q);
    Result<QueryResult> got = service.Query(q);
    ASSERT_EQ(want.ok(), got.ok()) << q;
    if (want.ok()) {
      ASSERT_EQ(want->hits, got->hits) << q;
    }
  }
  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.sharded_queries, 0u);
  EXPECT_EQ(stats.exec.sources, 2u);
}

// ---------------------------------------------------------------------------
// Database ingestion + stats surface

TEST(DatabaseIngest, IngestThenCompactKeepsResults) {
  db::DatabaseOptions options;
  options.compact_delta_trees = 0;  // manual compaction only
  db::Database db(options);
  ASSERT_TRUE(db.OpenCorpus("c", testing::RandomCorpus(81, 25)).ok());

  Result<QueryResult> before = db.Query("c", "//NP");
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(db.Ingest("c", testing::RandomCorpus(82, 7)).ok());
  SnapshotPtr chained = db.snapshot("c");
  EXPECT_EQ(chained->delta_tree_count(), 7);
  Result<QueryResult> during = db.Query("c", "//NP");
  ASSERT_TRUE(during.ok());
  EXPECT_GE(during->count(), before->count());

  ASSERT_TRUE(db.Compact("c").ok());
  SnapshotPtr compacted = db.snapshot("c");
  EXPECT_FALSE(compacted->has_delta());
  EXPECT_EQ(compacted->tree_count(), 32);
  Result<QueryResult> after = db.Query("c", "//NP");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(during->hits, after->hits);

  // Compacting again is a no-op success; the catalog row reflects the
  // merged chain.
  ASSERT_TRUE(db.Compact("c").ok());
  for (const db::CorpusInfo& info : db.List()) {
    EXPECT_EQ(info.trees, 32u);
    EXPECT_EQ(info.delta_trees, 0u);
  }

  const service::ServiceStats stats = db.service("c")->Stats();
  EXPECT_EQ(stats.ingests, 1u);
  EXPECT_EQ(stats.compactions, 1u);

  // Errors: empty batches and unknown corpora.
  Corpus empty;
  EXPECT_FALSE(db.Ingest("c", std::move(empty)).ok());
  EXPECT_FALSE(db.Ingest("nope", testing::RandomCorpus(83, 1)).ok());
  EXPECT_FALSE(db.Compact("nope").ok());
}

TEST(DatabaseIngest, ThresholdSchedulesBackgroundCompaction) {
  db::DatabaseOptions options;
  options.compact_delta_trees = 4;
  db::Database db(options);
  ASSERT_TRUE(db.OpenCorpus("c", testing::RandomCorpus(91, 10)).ok());

  ASSERT_TRUE(db.Ingest("c", testing::RandomCorpus(92, 2)).ok());
  ASSERT_TRUE(db.Ingest("c", testing::RandomCorpus(93, 3)).ok());
  // 5 delta trees >= 4: a background compaction was scheduled. Poll for
  // the publication (the compactor runs asynchronously).
  for (int spin = 0; spin < 2000 && db.snapshot("c")->has_delta(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SnapshotPtr snap = db.snapshot("c");
  EXPECT_FALSE(snap->has_delta());
  EXPECT_EQ(snap->tree_count(), 15);
}

// ---------------------------------------------------------------------------
// Concurrency hammer (runs under TSan via the `concurrency` label)

TEST(IngestHammer, FourClientQueryIngestCompact) {
  constexpr int kBatches = 16;
  constexpr int kTreesPerBatch = 3;
  db::DatabaseOptions options;
  options.service.threads = 2;
  options.compact_delta_trees = 5;  // background compactions fire mid-run
  db::Database db(options);
  ASSERT_TRUE(db.OpenCorpus("c", testing::RandomCorpus(101, 20)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Two query clients: every result must be well-formed and the //NP count
  // must never shrink — appends only ever add trees, and compaction only
  // reshapes storage.
  auto query_client = [&](uint64_t seed) {
    Rng rng(seed);
    testing::QueryGen gen(&rng);
    size_t last_np = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Result<QueryResult> np = db.Query("c", "//NP");
      if (!np.ok() || np->count() < last_np) {
        failures.fetch_add(1);
        break;
      }
      last_np = np->count();
      Result<QueryResult> fuzz = db.Query("c", gen.Query());
      if (!fuzz.ok()) {
        failures.fetch_add(1);
        break;
      }
    }
  };
  // One ingest client appending deterministic batches.
  auto ingest_client = [&] {
    for (int i = 0; i < kBatches; ++i) {
      Status s =
          db.Ingest("c", testing::RandomCorpus(200 + i, kTreesPerBatch));
      if (!s.ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  };
  // One compaction client racing the background compactor.
  auto compact_client = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!db.Compact("c").ok()) {
        failures.fetch_add(1);
        return;
      }
      std::this_thread::yield();
    }
  };

  std::thread q1(query_client, 111), q2(query_client, 222);
  std::thread ing(ingest_client);
  std::thread comp(compact_client);
  ing.join();
  stop.store(true);
  q1.join();
  q2.join();
  comp.join();
  EXPECT_EQ(failures.load(), 0);

  // Nothing lost: the final corpus answers exactly like a rebuild over
  // base + all batches in ingest order.
  ASSERT_TRUE(db.Compact("c").ok());
  Corpus combined;
  combined.AppendFrom(testing::RandomCorpus(101, 20));
  for (int i = 0; i < kBatches; ++i) {
    combined.AppendFrom(testing::RandomCorpus(200 + i, kTreesPerBatch));
  }
  SnapshotPtr rebuilt = MustBuild(std::move(combined));
  ASSERT_EQ(db.snapshot("c")->tree_count(), rebuilt->tree_count());
  LPathEngine reference(rebuilt->relation());
  for (const char* q : {"//NP", "//VP{/V-->NP}", "//S//N[@lex=dog]"}) {
    Result<QueryResult> want = reference.Run(q);
    Result<QueryResult> got = db.Query("c", q);
    ASSERT_TRUE(want.ok() && got.ok()) << q;
    EXPECT_EQ(want->hits, got->hits) << q;
  }
}

// ---------------------------------------------------------------------------
// Compaction crash safety

TEST(CompactionCrashSafety, TornImageRejectedAndOldMappingSurvives) {
  TempDir dir;
  const std::string path = dir.File("live.img");
  {
    SnapshotPtr built = MustBuild(testing::RandomCorpus(121, 30));
    ASSERT_TRUE(built->Save(path).ok());
  }
  SnapshotPtr mapped = MustOpen(path);
  SnapshotPtr chain = MustAppend(mapped, testing::RandomCorpus(122, 5));
  LPathEngine pre_compact_base(mapped->relation());
  const QueryResult before = [&] {
    Result<QueryResult> r = pre_compact_base.Run("//NP");
    EXPECT_TRUE(r.ok());
    return r.ok() ? std::move(r).value() : QueryResult{};
  }();

  // A leftover tmp file from a crashed rewrite must not confuse an open.
  std::ofstream(path + ".tmp") << "garbage from a crashed compaction";

  // Compact rewrites `path` via tmp + rename.
  Result<SnapshotPtr> compacted = chain->Compact();
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ((*compacted)->tree_count(), 35);

  // The pre-compaction mapping survives the rename (the old inode lives
  // until the last mapping drops): the old base still answers, unchanged.
  Result<QueryResult> after = pre_compact_base.Run("//NP");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.hits, after->hits);

  // Reopening the path serves the merged relation.
  SnapshotPtr reopened = MustOpen(path);
  EXPECT_EQ(reopened->tree_count(), 35);

  // A torn write *without* the rename — the crash the tmp file simulates —
  // is rejected at open with a clean Status, never served.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(CorpusSnapshot::Open(path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  SnapshotPtr restored = MustOpen(path);
  EXPECT_EQ(restored->tree_count(), 35);
}

}  // namespace
}  // namespace lpath
