// ColumnCodec unit tests: bit-exact round trips through both codecs over
// adversarial value shapes (empty, constant, block boundaries, full 32-bit
// width, signed bit patterns), DecodeRange agreeing with a full Decode on
// random windows, PickEncoding choosing by measured size, and Validate
// rejecting structurally corrupt payloads before any decode touches them.

#include "storage/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace lpath {
namespace {

std::vector<uint32_t> RoundTrip(const std::vector<uint32_t>& values,
                                ColumnEncoding encoding) {
  const std::vector<uint8_t> bytes = ColumnCodec::Encode(values, encoding);
  EXPECT_EQ(bytes.size() % 8, 0u);
  EXPECT_EQ(bytes.size(), ColumnCodec::EncodedBytes(values, encoding));
  EncodedColumnView view;
  view.encoding = encoding;
  view.count = values.size();
  view.bytes = bytes;
  EXPECT_TRUE(ColumnCodec::Validate(view).ok())
      << ColumnCodec::Validate(view).ToString();
  std::vector<uint32_t> out(values.size(), 0xcdcdcdcd);
  ColumnCodec::Decode(view, out.data());
  return out;
}

TEST(CodecTest, BitPackRoundTripsAssortedShapes) {
  const std::vector<std::vector<uint32_t>> shapes = {
      {},                      // empty column
      {7},                     // single value -> width-0 constant block
      {5, 5, 5, 5, 5},         // constant run
      {0, 1, 2, 3, 4, 5, 6},   // dense ascending (FOR width 3)
      {1000, 999, 998, 0, 1},  // reference below the block
      {0, std::numeric_limits<uint32_t>::max()},  // full 32-bit width
      std::vector<uint32_t>(1024, 42),            // exactly one block
      std::vector<uint32_t>(1025, 42),            // one block + 1 tail value
  };
  for (const auto& values : shapes) {
    EXPECT_EQ(RoundTrip(values, ColumnEncoding::kBitPack), values)
        << "shape of size " << values.size();
  }
}

TEST(CodecTest, RleRoundTripsAssortedShapes) {
  const std::vector<std::vector<uint32_t>> shapes = {
      {},
      {9},
      {3, 3, 3, 3},
      {1, 2, 3},  // worst case: every value its own run
      {0, 0, 0, 7, 7, 0, 0, std::numeric_limits<uint32_t>::max()},
      std::vector<uint32_t>(3000, 0),  // run spanning several blocks
  };
  for (const auto& values : shapes) {
    EXPECT_EQ(RoundTrip(values, ColumnEncoding::kRle), values)
        << "shape of size " << values.size();
  }
}

TEST(CodecTest, SignedBitPatternsRoundTripBitExactly) {
  // The label columns are int32; the codec must preserve the raw patterns,
  // including negatives reinterpreted as large uint32 values.
  std::vector<int32_t> signed_values = {-1, 0, 1, -2006,
                                        std::numeric_limits<int32_t>::min(),
                                        std::numeric_limits<int32_t>::max()};
  std::vector<uint32_t> values(signed_values.size());
  std::memcpy(values.data(), signed_values.data(), values.size() * 4);
  for (const ColumnEncoding encoding :
       {ColumnEncoding::kBitPack, ColumnEncoding::kRle}) {
    EXPECT_EQ(RoundTrip(values, encoding), values);
  }
}

TEST(CodecTest, RandomColumnsRoundTripUnderBothCodecs) {
  Rng rng(4200);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = rng.Below(5000);
    // Mix shapes: mostly-ascending, small-alphabet, and wild values, so
    // both codecs see favourable and hostile inputs.
    std::vector<uint32_t> values(n);
    uint32_t acc = static_cast<uint32_t>(rng.Below(1000));
    for (size_t i = 0; i < n; ++i) {
      switch (trial % 3) {
        case 0: acc += static_cast<uint32_t>(rng.Below(5)); values[i] = acc;
                break;
        case 1: values[i] = static_cast<uint32_t>(rng.Below(4)); break;
        default: values[i] = static_cast<uint32_t>(rng.Next()); break;
      }
    }
    for (const ColumnEncoding encoding :
         {ColumnEncoding::kBitPack, ColumnEncoding::kRle}) {
      ASSERT_EQ(RoundTrip(values, encoding), values)
          << "trial " << trial << " under " << ColumnEncodingName(encoding);
    }
  }
}

TEST(CodecTest, DecodeRangeMatchesFullDecodeOnRandomWindows) {
  Rng rng(77);
  std::vector<uint32_t> values(4096 + 513);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<uint32_t>(rng.Below(100)) + (i / 7);
  }
  for (const ColumnEncoding encoding :
       {ColumnEncoding::kBitPack, ColumnEncoding::kRle}) {
    const std::vector<uint8_t> bytes = ColumnCodec::Encode(values, encoding);
    EncodedColumnView view;
    view.encoding = encoding;
    view.count = values.size();
    view.bytes = bytes;
    ASSERT_TRUE(ColumnCodec::Validate(view).ok());
    for (int trial = 0; trial < 200; ++trial) {
      const uint64_t begin = rng.Below(values.size());
      const uint64_t n =
          std::min<uint64_t>(rng.Below(1500), values.size() - begin);
      std::vector<uint32_t> out(n, 0xdeadbeef);
      const uint64_t touched =
          ColumnCodec::DecodeRange(view, begin, n, out.data());
      if (n > 0) {
        EXPECT_GT(touched, 0u);
      }
      for (uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], values[begin + i])
            << "window [" << begin << ", " << begin + n << ") at " << i
            << " under " << ColumnEncodingName(encoding);
      }
    }
  }
}

TEST(CodecTest, PickEncodingChoosesByMeasuredSize) {
  // A constant column: RLE is one run, strictly smallest.
  EXPECT_EQ(ColumnCodec::PickEncoding(std::vector<uint32_t>(5000, 3)),
            ColumnEncoding::kRle);
  // Dense ascending: bit packing wins (few bits/value), RLE degenerates.
  std::vector<uint32_t> ascending(5000);
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<uint32_t>(i);
  }
  EXPECT_EQ(ColumnCodec::PickEncoding(ascending), ColumnEncoding::kBitPack);
  // Random full-width values: nothing beats the verbatim array.
  Rng rng(9);
  std::vector<uint32_t> wild(5000);
  for (uint32_t& v : wild) v = static_cast<uint32_t>(rng.Next());
  EXPECT_EQ(ColumnCodec::PickEncoding(wild), ColumnEncoding::kRaw);
  // Tiny columns: the per-block header alone outweighs the raw bytes.
  EXPECT_EQ(ColumnCodec::PickEncoding(std::vector<uint32_t>{1, 2}),
            ColumnEncoding::kRaw);
}

// --- Validate: structural rejection of hostile payloads ---------------------

EncodedColumnView ViewOf(ColumnEncoding encoding, uint64_t count,
                         const std::vector<uint8_t>& bytes) {
  EncodedColumnView view;
  view.encoding = encoding;
  view.count = count;
  view.bytes = bytes;
  return view;
}

TEST(CodecTest, ValidateRejectsTruncatedPayloads) {
  std::vector<uint32_t> values(2500);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<uint32_t>(i % 19);
  }
  for (const ColumnEncoding encoding :
       {ColumnEncoding::kBitPack, ColumnEncoding::kRle}) {
    const std::vector<uint8_t> bytes = ColumnCodec::Encode(values, encoding);
    for (const size_t keep : {size_t{0}, size_t{8}, bytes.size() - 8}) {
      const std::vector<uint8_t> cut(bytes.begin(),
                                     bytes.begin() + static_cast<long>(keep));
      EXPECT_FALSE(
          ColumnCodec::Validate(ViewOf(encoding, values.size(), cut)).ok())
          << ColumnEncodingName(encoding) << " kept " << keep;
    }
    // Trailing garbage is also a size mismatch, not silently ignored.
    std::vector<uint8_t> padded = bytes;
    padded.resize(padded.size() + 8, 0);
    EXPECT_FALSE(
        ColumnCodec::Validate(ViewOf(encoding, values.size(), padded)).ok());
  }
}

TEST(CodecTest, ValidateRejectsCorruptBitPackDescriptors) {
  std::vector<uint32_t> values(2048, 5);
  std::vector<uint8_t> bytes =
      ColumnCodec::Encode(values, ColumnEncoding::kBitPack);
  // Layout: u64 block_count, then BlockDesc{u32 reference, u32 width,
  // u64 word_offset} per block. Corrupt the first block's width to 33.
  std::vector<uint8_t> wide = bytes;
  const uint32_t bad_width = 33;
  std::memcpy(wide.data() + 8 + 4, &bad_width, 4);
  EXPECT_FALSE(
      ColumnCodec::Validate(ViewOf(ColumnEncoding::kBitPack, 2048, wide))
          .ok());
  // Blow up the block count so the descriptor table runs past the payload.
  std::vector<uint8_t> many = bytes;
  const uint64_t bad_count = 1u << 20;
  std::memcpy(many.data(), &bad_count, 8);
  EXPECT_FALSE(
      ColumnCodec::Validate(ViewOf(ColumnEncoding::kBitPack, 2048, many))
          .ok());
}

TEST(CodecTest, ValidateRejectsCorruptRleRuns) {
  std::vector<uint32_t> values(1000, 7);
  values[500] = 9;
  std::vector<uint8_t> bytes = ColumnCodec::Encode(values, ColumnEncoding::kRle);
  // Layout: u64 run_count, then Run{u32 end, u32 value} pairs. Make the
  // first run end at 0 (runs must strictly increase).
  std::vector<uint8_t> non_increasing = bytes;
  const uint32_t zero = 0;
  std::memcpy(non_increasing.data() + 8, &zero, 4);
  EXPECT_FALSE(ColumnCodec::Validate(
                   ViewOf(ColumnEncoding::kRle, 1000, non_increasing))
                   .ok());
  // Make the last run end short of the column count.
  std::vector<uint8_t> short_last = bytes;
  const uint32_t short_end = 999;
  std::memcpy(short_last.data() + bytes.size() - 8, &short_end, 4);
  EXPECT_FALSE(
      ColumnCodec::Validate(ViewOf(ColumnEncoding::kRle, 1000, short_last))
          .ok());
}

}  // namespace
}  // namespace lpath
