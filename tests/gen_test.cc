// Tests for the synthetic treebank generator: grammar machinery, depth
// bounding, determinism, and profile calibration against the Figure 6
// characteristics.

#include "gen/generator.h"

#include <gtest/gtest.h>

#include <iostream>
#include <map>

#include "gen/profiles.h"
#include "tree/bracket_io.h"
#include "tree/stats.h"

namespace lpath {
namespace {

using gen::GenerateCorpus;
using gen::GeneratorOptions;
using gen::Pcfg;
using gen::SwbProfile;
using gen::TreebankProfile;
using gen::Vocabulary;
using gen::WsjProfile;

TEST(VocabularyTest, SyntheticWithExtras) {
  Vocabulary v = Vocabulary::Synthetic("w", 100, 1.0, {{"pinned", 0.5}});
  EXPECT_EQ(v.size(), 101u);
  Rng rng(1);
  int pinned = 0;
  for (int i = 0; i < 3000; ++i) {
    if (v.Sample(&rng) == "pinned") ++pinned;
  }
  // pinned weight 0.5 over total ~1.5 → about a third of draws.
  EXPECT_GT(pinned, 700);
  EXPECT_LT(pinned, 1400);
}

TEST(PcfgTest, FinalizeRejectsBadGrammars) {
  {
    Pcfg g;
    g.AddRule("S", {"X"}, 1.0);  // X has no rules, no vocab
    EXPECT_FALSE(g.Finalize().ok());
  }
  {
    Pcfg g;
    g.AddRule("S", {"S"}, 1.0);  // cannot terminate
    EXPECT_FALSE(g.Finalize().ok());
  }
  {
    Pcfg g;
    g.AddRule("S", {"N"}, 0.0);  // non-positive weight
    g.SetVocabulary("N", Vocabulary::Uniform({"x"}));
    EXPECT_FALSE(g.Finalize().ok());
  }
}

TEST(PcfgTest, MinDepthFixpoint) {
  Pcfg g;
  g.AddRule("S", {"A", "B"}, 1.0);
  g.AddRule("A", {"N"}, 1.0);
  g.AddRule("B", {"A", "A"}, 1.0);
  g.SetVocabulary("N", Vocabulary::Uniform({"x"}));
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.MinDepth("N").value(), 1);
  EXPECT_EQ(g.MinDepth("A").value(), 2);
  EXPECT_EQ(g.MinDepth("B").value(), 3);
  EXPECT_EQ(g.MinDepth("S").value(), 4);
  EXPECT_FALSE(g.MinDepth("Z").ok());
}

TEST(PcfgTest, DepthBudgetIsHonored) {
  // A grammar that prefers recursion must still terminate within budget.
  Pcfg g;
  g.AddRule("S", {"S", "S"}, 100.0);
  g.AddRule("S", {"N"}, 0.001);
  g.SetVocabulary("N", Vocabulary::Uniform({"x"}));
  ASSERT_TRUE(g.Finalize().ok());
  Interner in;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Result<Tree> t = g.Generate("S", /*max_depth=*/8, &rng, &in);
    ASSERT_TRUE(t.ok()) << t.status();
    int max_depth = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(t->size()); ++n) {
      max_depth = std::max(max_depth, t->Depth(n));
    }
    EXPECT_LE(max_depth, 8);
    EXPECT_TRUE(t->Validate().ok());
  }
  // Budget below the minimum depth is an error.
  EXPECT_FALSE(g.Generate("S", 1, &rng, &in).ok());
  EXPECT_FALSE(g.Generate("Nope", 8, &rng, &in).ok());
}

TEST(GeneratorTest, DeterministicAndPrefixStable) {
  GeneratorOptions opts;
  opts.sentences = 50;
  Result<Corpus> a = GenerateCorpus(WsjProfile(), opts);
  Result<Corpus> b = GenerateCorpus(WsjProfile(), opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(WriteBracketCorpus(a.value()), WriteBracketCorpus(b.value()));

  // A larger corpus starts with the same trees (per-sentence seeds).
  opts.sentences = 80;
  Result<Corpus> c = GenerateCorpus(WsjProfile(), opts);
  ASSERT_TRUE(c.ok());
  std::string buf_a, buf_c;
  WriteBracketTree(a->tree(49), a->interner(), &buf_a);
  WriteBracketTree(c->tree(49), c->interner(), &buf_c);
  EXPECT_EQ(buf_a, buf_c);

  opts.seed = 7;
  Result<Corpus> d = GenerateCorpus(WsjProfile(), opts);
  ASSERT_TRUE(d.ok());
  EXPECT_NE(WriteBracketCorpus(c.value()), WriteBracketCorpus(d.value()));
}

class ProfileTest : public ::testing::Test {
 protected:
  static CorpusStats Stats(const TreebankProfile& profile, int sentences) {
    GeneratorOptions opts;
    opts.sentences = sentences;
    Result<Corpus> corpus = GenerateCorpus(profile, opts);
    EXPECT_TRUE(corpus.ok()) << corpus.status();
    EXPECT_TRUE(corpus->Validate().ok());
    return ComputeStats(corpus.value(), /*include_file_size=*/false);
  }

  static std::map<std::string, size_t> Freq(const CorpusStats& stats) {
    std::map<std::string, size_t> out;
    for (const auto& [tag, count] : stats.tag_frequencies) out[tag] = count;
    return out;
  }

  static int RankOf(const CorpusStats& stats, const std::string& tag) {
    for (size_t i = 0; i < stats.tag_frequencies.size(); ++i) {
      if (stats.tag_frequencies[i].first == tag) return static_cast<int>(i);
    }
    return -1;
  }
};

TEST_F(ProfileTest, WsjMatchesFigure6Shape) {
  CorpusStats stats = Stats(WsjProfile(), 3000);
  SCOPED_TRACE([&] {
    std::string top;
    for (const auto& [t, c] : stats.TopTags(10)) {
      top += t + ":" + std::to_string(c) + " ";
    }
    return "top tags: " + top;
  }());

  // Figure 6(b) WSJ ranking: NP first; VP, NN, IN, NNP, S, DT, NP-SBJ,
  // -NONE-, JJ all in the top 10.
  EXPECT_EQ(stats.tag_frequencies[0].first, "NP");
  EXPECT_LT(RankOf(stats, "VP"), 3);
  EXPECT_LT(RankOf(stats, "NN"), 3);
  // The paper's remaining top-10 tags all land in our top ~13 (our -NONE-
  // and JJ sit just below the punctuation/PP tags — see EXPERIMENTS.md for
  // the measured table and the deviation note).
  for (const char* tag : {"IN", "NNP", "S", "DT", "NP-SBJ", "-NONE-", "JJ"}) {
    const int rank = RankOf(stats, tag);
    EXPECT_GE(rank, 0) << tag;
    EXPECT_LT(rank, 14) << tag << " rank " << rank;
  }
  // Depth bound from Figure 6(a).
  EXPECT_LE(stats.max_depth, 36);
  EXPECT_GE(stats.max_depth, 8);

  // Every tag the 23-query suite mentions must occur.
  auto freq = Freq(stats);
  for (const char* tag :
       {"VB", "NN", "VP", "NP", "PP", "SBAR", "ADVP", "ADJP", "JJ", "IN",
        "WHPP", "RRC", "PP-TMP", "UCP-PRD", "ADJP-PRD", "ADVP-LOC-CLR"}) {
    EXPECT_GT(freq[tag], 0u) << tag;
  }
}

TEST_F(ProfileTest, SwbMatchesFigure6Shape) {
  CorpusStats stats = Stats(SwbProfile(), 3000);
  SCOPED_TRACE([&] {
    std::string top;
    for (const auto& [t, c] : stats.TopTags(10)) {
      top += t + ":" + std::to_string(c) + " ";
    }
    return "top tags: " + top;
  }());

  // Figure 6(b) SWB: -DFL- is the most frequent tag; VP, NP-SBJ, ".", ",",
  // S, NP, PRP, NN, RB fill the top 10.
  EXPECT_EQ(stats.tag_frequencies[0].first, "-DFL-");
  for (const char* tag : {"VP", "NP-SBJ", ".", ",", "S", "NP", "PRP", "NN"}) {
    const int rank = RankOf(stats, tag);
    EXPECT_GE(rank, 0) << tag;
    EXPECT_LT(rank, 14) << tag << " rank " << rank;
  }
  EXPECT_LE(stats.max_depth, 36);
}

TEST_F(ProfileTest, RareWordsSplitAcrossProfiles) {
  GeneratorOptions opts;
  opts.sentences = 4000;
  Result<Corpus> wsj = GenerateCorpus(WsjProfile(), opts);
  Result<Corpus> swb = GenerateCorpus(SwbProfile(), opts);
  ASSERT_TRUE(wsj.ok());
  ASSERT_TRUE(swb.ok());
  // Q12–Q14 must be able to return 0 on SWB: the words/tags don't exist.
  EXPECT_EQ(swb->Lookup("rapprochement"), kNoSymbol);
  EXPECT_EQ(swb->Lookup("1929"), kNoSymbol);
  EXPECT_EQ(swb->Lookup("ADVP-LOC-CLR"), kNoSymbol);
  // And exist (at least in the dictionary reachability sense) on WSJ at
  // this scale: "saw" and "of" are needed by Q1/Q10 on both.
  EXPECT_NE(wsj->Lookup("saw"), kNoSymbol);
  EXPECT_NE(swb->Lookup("saw"), kNoSymbol);
  EXPECT_NE(wsj->Lookup("of"), kNoSymbol);
  EXPECT_NE(swb->Lookup("of"), kNoSymbol);
  EXPECT_NE(wsj->Lookup("ADVP-LOC-CLR"), kNoSymbol);
}

TEST_F(ProfileTest, SentencesAreSentenceSized) {
  CorpusStats stats = Stats(WsjProfile(), 1000);
  const double words_per_sentence =
      static_cast<double>(stats.word_count) / stats.tree_count;
  EXPECT_GT(words_per_sentence, 5.0);
  EXPECT_LT(words_per_sentence, 60.0);
  const double nodes_per_sentence = stats.avg_tree_nodes;
  EXPECT_GT(nodes_per_sentence, 10.0);
  EXPECT_LT(nodes_per_sentence, 120.0);
}

}  // namespace
}  // namespace lpath
