// Stress and degenerate-shape tests: very deep trees (beyond any real
// treebank), pure unary chains (where interval containment alone cannot
// separate ancestors from descendants — the depth column's reason to
// exist), single-node trees, and wide flat trees.

#include <gtest/gtest.h>

#include <string>

#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "storage/relation.h"
#include "test_util.h"
#include "tree/bracket_io.h"

namespace lpath {
namespace {

/// A unary chain X > X > ... > X (depth n) ending in a word.
Tree UnaryChain(Interner* in, int depth, const char* tag = "X") {
  Tree t;
  NodeId node = t.AddRoot(in->Intern(tag));
  for (int i = 1; i < depth; ++i) node = t.AddChild(node, in->Intern(tag));
  t.AddAttr(node, in->Intern("@lex"), in->Intern("w"));
  return t;
}

TEST(StressTest, DeepUnaryChainLabels) {
  Interner in;
  Tree t = UnaryChain(&in, 20000);
  std::vector<Label> labels;
  ComputeLPathLabels(t, &labels);  // iterative: must not overflow the stack
  // Every node spans the single terminal; only depth separates them.
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i].left, 1);
    EXPECT_EQ(labels[i].right, 2);
    EXPECT_EQ(labels[i].depth, static_cast<int>(i + 1));
  }
  std::vector<Label> xlabels;
  ComputeXPathLabels(t, &xlabels);  // also iterative
  EXPECT_EQ(xlabels[0].left, 1);
  EXPECT_EQ(xlabels[0].right, 40000);
}

TEST(StressTest, UnaryChainAncestryNeedsDepth) {
  Interner in;
  Tree t = UnaryChain(&in, 50);
  std::vector<Label> labels;
  ComputeLPathLabels(t, &labels);
  // Same intervals everywhere: descendant/ancestor decisions hinge on the
  // depth comparison of Table 2.
  EXPECT_TRUE(LPathAxisMatches(Axis::kDescendant, labels[0], labels[49]));
  EXPECT_FALSE(LPathAxisMatches(Axis::kDescendant, labels[49], labels[0]));
  EXPECT_TRUE(LPathAxisMatches(Axis::kAncestor, labels[49], labels[0]));
  EXPECT_FALSE(LPathAxisMatches(Axis::kDescendant, labels[5], labels[5]));
}

TEST(StressTest, QueriesOnUnaryChainCorpus) {
  Corpus corpus;
  corpus.Add(UnaryChain(corpus.mutable_interner(), 200));
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  NavigationalEngine nav(corpus);
  for (const char* q :
       {"//X", "//X//X", "//X/X", "//X\\\\X", "//X[not(//X)]",
        "//X[@lex=w]", "//X{//X$}", "//^X"}) {
    Result<QueryResult> a = engine.Run(q);
    Result<QueryResult> b = nav.Run(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status();
    EXPECT_EQ(a.value(), b.value()) << q;
  }
  // The deepest X is the only one with no X descendant.
  EXPECT_EQ(engine.Run("//X[not(//X)]")->count(), 1u);
  // Every node is right-aligned with the root (same interval).
  EXPECT_EQ(engine.Run("//X{//X$}")->count(), 199u);  // descendants of some X
}

TEST(StressTest, WideFlatTree) {
  Corpus corpus;
  {
    Tree t;
    Interner* in = corpus.mutable_interner();
    NodeId root = t.AddRoot(in->Intern("S"));
    for (int i = 0; i < 5000; ++i) {
      NodeId child = t.AddChild(root, in->Intern(i % 2 ? "A" : "B"));
      // += rather than "w" + to_string(...): gcc 12 -Wrestrict misfires on
      // the temporary concat at -O2 (GCC PR 105651).
      std::string lex = "w";
      lex += std::to_string(i % 7);
      t.AddAttr(child, in->Intern("@lex"), in->Intern(lex));
    }
    corpus.Add(std::move(t));
  }
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  NavigationalEngine nav(corpus);
  for (const char* q : {"//B=>A", "//A<==B", "//S{/^B}", "//S{/A$}",
                        "//A->B", "//B[@lex=w3]"}) {
    Result<QueryResult> a = engine.Run(q);
    Result<QueryResult> b = nav.Run(q);
    ASSERT_TRUE(a.ok()) << q;
    ASSERT_TRUE(b.ok()) << q;
    EXPECT_EQ(a.value(), b.value()) << q;
  }
  // 2500 B nodes each immediately followed by a sibling A.
  EXPECT_EQ(engine.Run("//B=>A")->count(), 2500u);
  EXPECT_EQ(engine.Run("//S{/^B}")->count(), 1u);   // first child is B
  EXPECT_EQ(engine.Run("//S{/A$}")->count(), 1u);   // last child is A
}

TEST(StressTest, SingleNodeTreeAndEmptyishQueries) {
  Corpus corpus;
  {
    Tree t;
    t.AddRoot(corpus.mutable_interner()->Intern("S"));
    corpus.Add(std::move(t));
  }
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  EXPECT_EQ(engine.Run("//S")->count(), 1u);
  EXPECT_EQ(engine.Run("/S")->count(), 1u);
  EXPECT_EQ(engine.Run("//S/_")->count(), 0u);
  EXPECT_EQ(engine.Run("//S-->_")->count(), 0u);
  EXPECT_EQ(engine.Run("//S[@lex=w]")->count(), 0u);
  EXPECT_EQ(engine.Run("//Missing")->count(), 0u);
}

TEST(StressTest, DeepChainBracketRoundTripAndRelation) {
  // The bracket parser and relation builder must survive depth well beyond
  // real treebanks (the writer is recursive; keep within stack reason).
  Corpus corpus;
  corpus.Add(UnaryChain(corpus.mutable_interner(), 5000));
  std::string text = WriteBracketCorpus(corpus);
  Corpus reparsed;
  ASSERT_TRUE(ParseBracketText(text, &reparsed).ok());
  EXPECT_EQ(reparsed.tree(0).size(), 5000u);
  Result<NodeRelation> rel = NodeRelation::Build(reparsed);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->element_count(), 5000u);
  // And a query through the whole stack.
  LPathEngine engine(rel.value());
  EXPECT_EQ(engine.Run("//X[@lex=w]")->count(), 1u);
}

}  // namespace
}  // namespace lpath
