// Tests for the labeling schemes and the Table 2 axis predicates.
//
// The heart of this file is the golden test against Figure 5 of the paper
// (the relational representation of the Figure 1 tree) and property tests
// checking the containment and adjacency properties of Section 4 against
// the navigational ground truth on random trees.

#include <gtest/gtest.h>

#include <vector>

#include "label/axes.h"
#include "label/labeler.h"
#include "test_util.h"

namespace lpath {
namespace {

using testing::BuildFigure1Tree;
using testing::RandomTree;

class Figure1LabelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = BuildFigure1Tree(&interner_);
    ComputeLPathLabels(tree_, &labels_);
  }
  Interner interner_;
  Tree tree_;
  std::vector<Label> labels_;
};

TEST_F(Figure1LabelTest, MatchesFigure5) {
  ASSERT_EQ(labels_.size(), 15u);
  // (left, right, depth) triplets in pre-order, per Figures 1 and 5.
  const int expected[15][3] = {
      {1, 10, 1},  // S
      {1, 2, 2},   // NP (I)
      {2, 9, 2},   // VP
      {2, 3, 3},   // V (saw)
      {3, 9, 3},   // NP
      {3, 6, 4},   // NP
      {3, 4, 5},   // Det (the)
      {4, 5, 5},   // Adj (old)
      {5, 6, 5},   // N (man)
      {6, 9, 4},   // PP
      {6, 7, 5},   // Prep (with)
      {7, 9, 5},   // NP
      {7, 8, 6},   // Det (a)
      {8, 9, 6},   // N (dog)
      {9, 10, 2},  // N (today)
  };
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(labels_[i].left, expected[i][0]) << "node " << i;
    EXPECT_EQ(labels_[i].right, expected[i][1]) << "node " << i;
    EXPECT_EQ(labels_[i].depth, expected[i][2]) << "node " << i;
  }
}

TEST_F(Figure1LabelTest, IdsAreNonzeroAndPidsLink) {
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(labels_[i].id, i + 1);
    if (tree_.parent(i) == kNoNode) {
      EXPECT_EQ(labels_[i].pid, 0);
    } else {
      EXPECT_EQ(labels_[i].pid, labels_[tree_.parent(i)].id);
    }
  }
}

TEST_F(Figure1LabelTest, Example41FromThePaper) {
  // Example 4.1: S (l=1,r=10,d=1) is an ancestor of NP6 (l=3,r=9,d=3), and
  // V (l=2,r=3,d=3) immediately precedes NP6 since NP6.l = V.r.
  const Label s = labels_[0];
  const Label np6 = labels_[4];
  const Label v = labels_[3];
  EXPECT_TRUE(LPathAxisMatches(Axis::kAncestor, np6, s));
  EXPECT_TRUE(LPathAxisMatches(Axis::kDescendant, s, np6));
  EXPECT_TRUE(LPathAxisMatches(Axis::kImmediatePreceding, np6, v));
  EXPECT_TRUE(LPathAxisMatches(Axis::kImmediateFollowing, v, np6));
}

TEST_F(Figure1LabelTest, ImmediateFollowingOfV) {
  // Section 2.2.1: V is immediately followed by NP6, NP7 and Det (the nodes
  // whose leftmost leaf starts at V.right = 3).
  const Label v = labels_[3];
  std::vector<int> expected = {4, 5, 6};  // NP6, NP7, Det(the)
  std::vector<int> got;
  for (int i = 0; i < 15; ++i) {
    if (LPathAxisMatches(Axis::kImmediateFollowing, v, labels_[i])) {
      got.push_back(i);
    }
  }
  EXPECT_EQ(got, expected);
}

TEST_F(Figure1LabelTest, SiblingAdjacency) {
  // VP's next sibling is N(today): VP [2,9], N [9,10], same pid.
  const Label vp = labels_[2];
  const Label n_today = labels_[14];
  EXPECT_TRUE(
      LPathAxisMatches(Axis::kImmediateFollowingSibling, vp, n_today));
  EXPECT_TRUE(
      LPathAxisMatches(Axis::kImmediatePrecedingSibling, n_today, vp));
  EXPECT_TRUE(LPathAxisMatches(Axis::kFollowingSibling, vp, n_today));
  // NP(I) and N(today) are siblings but not adjacent.
  EXPECT_FALSE(LPathAxisMatches(Axis::kImmediateFollowingSibling, labels_[1],
                                n_today));
  EXPECT_TRUE(LPathAxisMatches(Axis::kFollowingSibling, labels_[1], n_today));
}

TEST(AxisTest, InverseIsInvolution) {
  for (int a = 0; a <= static_cast<int>(Axis::kAttribute); ++a) {
    Axis axis = static_cast<Axis>(a);
    EXPECT_EQ(InverseAxis(InverseAxis(axis)), axis) << AxisName(axis);
  }
}

TEST(AxisTest, NamesAndAbbreviations) {
  EXPECT_EQ(AxisName(Axis::kImmediateFollowing), "immediate-following");
  EXPECT_EQ(AxisAbbreviation(Axis::kImmediateFollowing), "->");
  EXPECT_EQ(AxisAbbreviation(Axis::kFollowing), "-->");
  EXPECT_EQ(AxisAbbreviation(Axis::kImmediateFollowingSibling), "=>");
  EXPECT_EQ(AxisAbbreviation(Axis::kFollowingSibling), "==>");
  EXPECT_EQ(AxisName(Axis::kPrecedingSiblingOrSelf),
            "preceding-sibling-or-self");
  EXPECT_TRUE(AxisAbbreviation(Axis::kDescendantOrSelf).empty());
}

TEST(AxisTest, OrSelfClassification) {
  EXPECT_TRUE(AxisIncludesSelf(Axis::kDescendantOrSelf));
  EXPECT_TRUE(AxisIncludesSelf(Axis::kSelf));
  EXPECT_FALSE(AxisIncludesSelf(Axis::kDescendant));
  EXPECT_EQ(AxisBase(Axis::kFollowingOrSelf), Axis::kFollowing);
  EXPECT_EQ(AxisBase(Axis::kChild), Axis::kChild);
  EXPECT_TRUE(IsImmediateAxis(Axis::kImmediatePreceding));
  EXPECT_FALSE(IsImmediateAxis(Axis::kPreceding));
  EXPECT_TRUE(IsSiblingAxis(Axis::kImmediateFollowingSibling));
  EXPECT_FALSE(IsSiblingAxis(Axis::kFollowing));
}

TEST(XPathLabelingTest, SupportsExactlyNonImmediateAxes) {
  for (int a = 0; a <= static_cast<int>(Axis::kAttribute); ++a) {
    Axis axis = static_cast<Axis>(a);
    EXPECT_EQ(XPathLabelingSupports(axis), !IsImmediateAxis(axis))
        << AxisName(axis);
  }
}

TEST(XPathLabelingTest, TagPositionsOnFigure1) {
  Interner in;
  Tree t = BuildFigure1Tree(&in);
  std::vector<Label> labels;
  ComputeXPathLabels(t, &labels);
  // Root: start tag first, end tag last; 15 nodes => 30 tag positions.
  EXPECT_EQ(labels[0].left, 1);
  EXPECT_EQ(labels[0].right, 30);
  // NP(I): second tag opened, closes immediately.
  EXPECT_EQ(labels[1].left, 2);
  EXPECT_EQ(labels[1].right, 3);
  // Strict containment decides descendant without depth.
  EXPECT_TRUE(XPathAxisMatches(Axis::kDescendant, labels[0], labels[4]));
  EXPECT_FALSE(XPathAxisMatches(Axis::kDescendant, labels[4], labels[0]));
  EXPECT_TRUE(XPathAxisMatches(Axis::kAncestor, labels[4], labels[0]));
}

// ---------------------------------------------------------------------------
// Property tests on random trees: label predicates must agree with the tree
// structure for every axis and every pair of nodes.
// ---------------------------------------------------------------------------

class AxisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Structural ground truth for each axis, computed directly from the tree.
bool StructuralMatches(const Tree& t, const std::vector<Label>& labels,
                       Axis axis, NodeId x, NodeId y) {
  switch (axis) {
    case Axis::kSelf:
      return x == y;
    case Axis::kChild:
      return t.parent(y) == x;
    case Axis::kParent:
      return t.parent(x) == y;
    case Axis::kDescendant:
      return t.IsAncestor(x, y);
    case Axis::kDescendantOrSelf:
      return x == y || t.IsAncestor(x, y);
    case Axis::kAncestor:
      return t.IsAncestor(y, x);
    case Axis::kAncestorOrSelf:
      return x == y || t.IsAncestor(y, x);
    case Axis::kFollowing:
      return labels[y].left >= labels[x].right;
    case Axis::kImmediateFollowing: {
      // Definition 3.1: y follows x with no z strictly between.
      if (labels[y].left < labels[x].right) return false;
      for (NodeId z = 0; z < static_cast<NodeId>(t.size()); ++z) {
        if (labels[z].left >= labels[x].right &&
            labels[y].left >= labels[z].right) {
          return false;
        }
      }
      return true;
    }
    case Axis::kPreceding:
      return labels[y].right <= labels[x].left;
    case Axis::kImmediatePreceding: {
      if (labels[y].right > labels[x].left) return false;
      for (NodeId z = 0; z < static_cast<NodeId>(t.size()); ++z) {
        if (labels[z].right <= labels[x].left &&
            labels[y].right <= labels[z].left) {
          return false;
        }
      }
      return true;
    }
    case Axis::kFollowingSibling: {
      for (NodeId s = t.next_sibling(x); s != kNoNode; s = t.next_sibling(s)) {
        if (s == y) return true;
      }
      return false;
    }
    case Axis::kImmediateFollowingSibling:
      return t.next_sibling(x) == y;
    case Axis::kPrecedingSibling: {
      for (NodeId s = t.prev_sibling(x); s != kNoNode; s = t.prev_sibling(s)) {
        if (s == y) return true;
      }
      return false;
    }
    case Axis::kImmediatePrecedingSibling:
      return t.prev_sibling(x) == y;
    default:
      return false;
  }
}

TEST_P(AxisPropertyTest, LabelPredicatesAgreeWithStructure) {
  Rng rng(GetParam());
  Interner in;
  for (int iter = 0; iter < 30; ++iter) {
    Tree t = RandomTree(&rng, &in, 30);
    std::vector<Label> labels;
    ComputeLPathLabels(t, &labels);
    const Axis axes[] = {
        Axis::kSelf,
        Axis::kChild,
        Axis::kParent,
        Axis::kDescendant,
        Axis::kDescendantOrSelf,
        Axis::kAncestor,
        Axis::kAncestorOrSelf,
        Axis::kFollowing,
        Axis::kImmediateFollowing,
        Axis::kPreceding,
        Axis::kImmediatePreceding,
        Axis::kFollowingSibling,
        Axis::kImmediateFollowingSibling,
        Axis::kPrecedingSibling,
        Axis::kImmediatePrecedingSibling,
    };
    const NodeId n = static_cast<NodeId>(t.size());
    for (Axis axis : axes) {
      for (NodeId x = 0; x < n; ++x) {
        for (NodeId y = 0; y < n; ++y) {
          EXPECT_EQ(LPathAxisMatches(axis, labels[x], labels[y]),
                    StructuralMatches(t, labels, axis, x, y))
              << AxisName(axis) << " x=" << x << " y=" << y;
        }
      }
    }
  }
}

TEST_P(AxisPropertyTest, XPathLabelingAgreesOnSharedAxes) {
  Rng rng(GetParam() + 1000);
  Interner in;
  for (int iter = 0; iter < 30; ++iter) {
    Tree t = RandomTree(&rng, &in, 30);
    std::vector<Label> lpath_labels, xpath_labels;
    ComputeLPathLabels(t, &lpath_labels);
    ComputeXPathLabels(t, &xpath_labels);
    const Axis axes[] = {
        Axis::kSelf,          Axis::kChild,
        Axis::kParent,        Axis::kDescendant,
        Axis::kAncestor,      Axis::kFollowing,
        Axis::kPreceding,     Axis::kFollowingSibling,
        Axis::kPrecedingSibling,
    };
    const NodeId n = static_cast<NodeId>(t.size());
    for (Axis axis : axes) {
      for (NodeId x = 0; x < n; ++x) {
        for (NodeId y = 0; y < n; ++y) {
          EXPECT_EQ(XPathAxisMatches(axis, xpath_labels[x], xpath_labels[y]),
                    LPathAxisMatches(axis, lpath_labels[x], lpath_labels[y]))
              << AxisName(axis) << " x=" << x << " y=" << y;
        }
      }
    }
  }
}

TEST_P(AxisPropertyTest, LabelInvariants) {
  Rng rng(GetParam() + 2000);
  Interner in;
  for (int iter = 0; iter < 50; ++iter) {
    Tree t = RandomTree(&rng, &in, 50);
    std::vector<Label> labels;
    ComputeLPathLabels(t, &labels);
    int leaves = 0;
    for (NodeId i = 0; i < static_cast<NodeId>(t.size()); ++i) {
      EXPECT_LT(labels[i].left, labels[i].right);
      if (t.is_leaf(i)) {
        EXPECT_EQ(labels[i].right, labels[i].left + 1);
        ++leaves;
      } else {
        // Children tile the parent's span.
        EXPECT_EQ(labels[i].left, labels[t.first_child(i)].left);
        EXPECT_EQ(labels[i].right, labels[t.last_child(i)].right);
        int32_t cursor = labels[i].left;
        for (NodeId c = t.first_child(i); c != kNoNode;
             c = t.next_sibling(c)) {
          EXPECT_EQ(labels[c].left, cursor);
          cursor = labels[c].right;
        }
        EXPECT_EQ(cursor, labels[i].right);
      }
    }
    // The root spans [1, leaves+1).
    EXPECT_EQ(labels[0].left, 1);
    EXPECT_EQ(labels[0].right, leaves + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxisPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace lpath
