// Tests for the clustered node relation and its access paths.

#include "storage/relation.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace lpath {
namespace {

using testing::BuildFigure1Corpus;
using testing::RandomCorpus;

class Figure1RelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = BuildFigure1Corpus();
    Result<NodeRelation> rel = NodeRelation::Build(corpus_);
    ASSERT_TRUE(rel.ok()) << rel.status();
    rel_ = std::make_unique<NodeRelation>(std::move(rel).value());
  }
  Corpus corpus_;
  std::unique_ptr<NodeRelation> rel_;
};

TEST_F(Figure1RelationTest, RowCountIsNodesPlusAttrs) {
  // 15 element nodes + 9 @lex attributes.
  EXPECT_EQ(rel_->row_count(), 24u);
  EXPECT_EQ(rel_->element_count(), 15u);
  EXPECT_EQ(rel_->tree_count(), 1);
}

TEST_F(Figure1RelationTest, ClusteredOrderGroupsByName) {
  const Symbol np = corpus_.Lookup("NP");
  RowRange run = rel_->run(np);
  EXPECT_EQ(run.size(), 4u);  // NP(I), NP6, NP7, NP(a dog)
  // Sorted by (tid, left, right) within the run.
  for (Row r = run.begin; r + 1 < run.end; ++r) {
    EXPECT_LE(rel_->left(r), rel_->left(r + 1));
    EXPECT_EQ(rel_->name(r), np);
  }
}

TEST_F(Figure1RelationTest, NameCardinality) {
  EXPECT_EQ(rel_->NameCardinality(corpus_.Lookup("NP")), 4u);
  EXPECT_EQ(rel_->NameCardinality(corpus_.Lookup("N")), 3u);
  EXPECT_EQ(rel_->NameCardinality(corpus_.Lookup("S")), 1u);
  EXPECT_EQ(rel_->NameCardinality(corpus_.Lookup("@lex")), 9u);
  EXPECT_EQ(rel_->NameCardinality(kNoSymbol), 0u);
}

TEST_F(Figure1RelationTest, AttributeRowsShareElementLabels) {
  // The V row and its @lex row have identical labels (Definition 4.1 rule 8).
  const Symbol v = corpus_.Lookup("V");
  RowRange vrun = rel_->run(v);
  ASSERT_EQ(vrun.size(), 1u);
  const Row vrow = vrun.begin;
  EXPECT_FALSE(rel_->is_attr(vrow));

  auto attrs = rel_->AttrRows(0, rel_->id(vrow));
  ASSERT_EQ(attrs.size(), 1u);
  const Row arow = attrs[0];
  EXPECT_TRUE(rel_->is_attr(arow));
  EXPECT_EQ(rel_->label(arow), rel_->label(vrow));
  EXPECT_EQ(rel_->interner().name(rel_->name(arow)), "@lex");
  EXPECT_EQ(rel_->interner().name(rel_->value(arow)), "saw");
}

TEST_F(Figure1RelationTest, ValueIndex) {
  auto saw_rows = rel_->ValueRange(corpus_.Lookup("saw"));
  ASSERT_EQ(saw_rows.size(), 1u);
  EXPECT_EQ(rel_->left(saw_rows[0]), 2);
  EXPECT_EQ(rel_->right(saw_rows[0]), 3);
  EXPECT_TRUE(rel_->ValueRange(corpus_.Lookup("nonexistent")).empty());
  EXPECT_EQ(rel_->ValueCardinality(corpus_.Lookup("saw")), 1u);
}

TEST_F(Figure1RelationTest, ElementRowLookup) {
  // id 1 = the root S (pre-order).
  Row s = rel_->ElementRow(0, 1);
  ASSERT_NE(s, kNoRow);
  EXPECT_EQ(rel_->interner().name(rel_->name(s)), "S");
  EXPECT_EQ(rel_->left(s), 1);
  EXPECT_EQ(rel_->right(s), 10);
  EXPECT_EQ(rel_->ElementRow(0, 99), kNoRow);
  EXPECT_EQ(rel_->ElementRow(5, 1), kNoRow);
  EXPECT_EQ(rel_->ElementRow(0, 0), kNoRow);
}

TEST_F(Figure1RelationTest, RunLeftRange) {
  // NPs with left in [3, 9) in tree 0: NP6 (l=3), NP7 (l=3), NP(a dog) (l=7).
  const Symbol np = corpus_.Lookup("NP");
  RowRange rng = rel_->RunLeftRange(np, 0, 3, 9);
  EXPECT_EQ(rng.size(), 3u);
  // Empty for a bogus tree and inverted bounds.
  EXPECT_TRUE(rel_->RunLeftRange(np, 7, 0, 100).empty());
  EXPECT_TRUE(rel_->RunLeftRange(np, 0, 5, 5).empty());
}

TEST_F(Figure1RelationTest, RunRightRange) {
  // NPs with right == 9: NP6 [3,9] and NP(a dog) [7,9].
  const Symbol np = corpus_.Lookup("NP");
  auto rows = rel_->RunRightRange(np, 0, 9, 10);
  EXPECT_EQ(rows.size(), 2u);
  for (Row r : rows) EXPECT_EQ(rel_->right(r), 9);
}

TEST_F(Figure1RelationTest, RunPidRange) {
  // Children of NP7 (Det, Adj, N): by tag.
  const Symbol np = corpus_.Lookup("NP");
  RowRange np_run = rel_->RunForTree(np, 0);
  // find NP7: left=3, right=6
  Row np7 = kNoRow;
  for (Row r = np_run.begin; r < np_run.end; ++r) {
    if (rel_->left(r) == 3 && rel_->right(r) == 6) np7 = r;
  }
  ASSERT_NE(np7, kNoRow);
  auto dets = rel_->RunPidRange(corpus_.Lookup("Det"), 0, rel_->id(np7));
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(rel_->left(dets[0]), 3);
  auto ns = rel_->RunPidRange(corpus_.Lookup("N"), 0, rel_->id(np7));
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(rel_->left(ns[0]), 5);
}

TEST(RelationTest, RandomCorpusConsistency) {
  Corpus corpus = RandomCorpus(/*seed=*/77, /*trees=*/30);
  Result<NodeRelation> built = NodeRelation::Build(corpus);
  ASSERT_TRUE(built.ok());
  const NodeRelation& rel = built.value();

  // Every element of every tree is reachable through ElementRow and carries
  // consistent columns.
  size_t elements = 0;
  for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
    const Tree& t = corpus.tree(tid);
    for (NodeId i = 0; i < static_cast<NodeId>(t.size()); ++i) {
      Row r = rel.ElementRow(tid, i + 1);
      ASSERT_NE(r, kNoRow);
      EXPECT_EQ(rel.tid(r), tid);
      EXPECT_EQ(rel.id(r), i + 1);
      EXPECT_EQ(rel.name(r), t.name(i));
      EXPECT_FALSE(rel.is_attr(r));
      ++elements;
    }
  }
  EXPECT_EQ(rel.element_count(), elements);

  // Runs partition the row space.
  size_t covered = 0;
  for (Symbol s = 1; s < corpus.interner().end_id(); ++s) {
    covered += rel.run(s).size();
  }
  EXPECT_EQ(covered, rel.row_count());
  EXPECT_GT(rel.MemoryBytes(), 0u);
}

TEST(RelationTest, XPathSchemeBuilds) {
  Corpus corpus = RandomCorpus(/*seed=*/78, /*trees=*/10);
  RelationOptions opts;
  opts.scheme = LabelScheme::kXPath;
  Result<NodeRelation> built = NodeRelation::Build(corpus, opts);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->scheme(), LabelScheme::kXPath);
  // Tag positions: strict nesting means left < right always, and the root
  // of each tree spans [1, 2*size].
  for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
    Row root = built->ElementRow(tid, 1);
    ASSERT_NE(root, kNoRow);
    EXPECT_EQ(built->left(root), 1);
    EXPECT_EQ(built->right(root),
              static_cast<int32_t>(2 * corpus.tree(tid).size()));
  }
}

TEST(RelationTest, EmptyCorpus) {
  Corpus corpus;
  Result<NodeRelation> built = NodeRelation::Build(corpus);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->row_count(), 0u);
  EXPECT_EQ(built->tree_count(), 0);
}

}  // namespace
}  // namespace lpath
