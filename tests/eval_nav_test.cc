// Golden tests for the navigational reference evaluator against the
// expected results the paper gives in Figure 2 for the Figure 1 tree, plus
// coverage of every axis, scoping/alignment corner cases, and the XPath
// positional-function equivalences discussed in Section 2.2.
//
// Node ids of the Figure 1 tree (1-based pre-order):
//   1:S 2:NP(I) 3:VP 4:V(saw) 5:NP6 6:NP7 7:Det(the) 8:Adj(old) 9:N(man)
//   10:PP 11:Prep(with) 12:NP(a-dog) 13:Det(a) 14:N(dog) 15:N(today)

#include "lpath/eval_nav.h"

#include <gtest/gtest.h>

#include "lpath/parser.h"
#include "test_util.h"
#include "tree/bracket_io.h"

namespace lpath {
namespace {

class Figure1NavTest : public ::testing::Test {
 protected:
  Figure1NavTest() : corpus_(testing::BuildFigure1Corpus()), engine_(corpus_) {}

  std::vector<int32_t> Ids(const std::string& query) {
    Result<QueryResult> r = engine_.Run(query);
    EXPECT_TRUE(r.ok()) << query << " -> " << r.status();
    std::vector<int32_t> ids;
    if (r.ok()) {
      for (const Hit& h : r->hits) {
        EXPECT_EQ(h.tid, 0);
        ids.push_back(h.id);
      }
    }
    return ids;
  }

  Corpus corpus_;
  NavigationalEngine engine_;
};

using V = std::vector<int32_t>;

// --- The Figure 2 query battery -------------------------------------------

TEST_F(Figure1NavTest, Fig2_SentenceContainingSaw) {
  EXPECT_EQ(Ids("//S[//_[@lex=saw]]"), V({1}));
}

TEST_F(Figure1NavTest, Fig2_ImmediateFollowingSiblingOfVerb) {
  EXPECT_EQ(Ids("//V==>NP"), V({5}));
}

TEST_F(Figure1NavTest, Fig2_ImmediateFollowingOfVerb) {
  EXPECT_EQ(Ids("//V->NP"), V({5, 6}));
}

TEST_F(Figure1NavTest, Fig2_NounsFollowingVerbChildOfVP) {
  EXPECT_EQ(Ids("//VP/V-->N"), V({9, 14, 15}));
}

TEST_F(Figure1NavTest, Fig2_NounsFollowingVerbWithinVP) {
  EXPECT_EQ(Ids("//VP{/V-->N}"), V({9, 14}));
}

TEST_F(Figure1NavTest, Fig2_RightmostNPChildOfVP) {
  EXPECT_EQ(Ids("//VP{/NP$}"), V({5}));
}

TEST_F(Figure1NavTest, Fig2_RightmostNPDescendantOfVP) {
  EXPECT_EQ(Ids("//VP{//NP$}"), V({5, 12}));
}

// --- XPath equivalences from Section 2.2 -----------------------------------

TEST_F(Figure1NavTest, PositionFunctionEqualsImmediateFollowingSibling) {
  // //V/following-sibling::_[position()=1][self::NP] expresses Q2.
  EXPECT_EQ(Ids("//V/following-sibling::_[position()=1][self::NP]"),
            Ids("//V==>NP"));
}

TEST_F(Figure1NavTest, LastFunctionEqualsChildRightAlignment) {
  // //VP/_[last()][self::NP] expresses Q6 (child edge alignment).
  EXPECT_EQ(Ids("//VP/_[last()][self::NP]"), Ids("//VP{/NP$}"));
}

TEST_F(Figure1NavTest, DescendantLastIsNotEdgeAlignment) {
  // The putative XPath equivalent //VP//_[last()][self::NP] does NOT express
  // Q7 — the paper's point in Section 2.2.3.
  V putative = Ids("//VP/descendant::_[last()][self::NP]");
  V correct = Ids("//VP{//NP$}");
  EXPECT_NE(putative, correct);
  EXPECT_EQ(correct, V({5, 12}));
}

// --- Axis coverage ----------------------------------------------------------

TEST_F(Figure1NavTest, BasicTagScan) {
  EXPECT_EQ(Ids("//NP"), V({2, 5, 6, 12}));
  EXPECT_EQ(Ids("//N"), V({9, 14, 15}));
  EXPECT_EQ(Ids("//S"), V({1}));
  EXPECT_EQ(Ids("//_"),
            V({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST_F(Figure1NavTest, RootStep) {
  EXPECT_EQ(Ids("/S"), V({1}));
  EXPECT_EQ(Ids("/NP"), V());  // root is S, not NP
  EXPECT_EQ(Ids("/S/NP"), V({2}));
}

TEST_F(Figure1NavTest, ParentAndAncestor) {
  EXPECT_EQ(Ids("//Det\\NP"), V({6, 12}));
  EXPECT_EQ(Ids("//Det\\\\VP"), V({3}));
  EXPECT_EQ(Ids("//Det\\ancestor::_"), V({1, 3, 5, 6, 10, 12}));
  EXPECT_EQ(Ids("//NP/.."), V({1, 3, 5, 10}));
}

TEST_F(Figure1NavTest, PrecedingAxes) {
  // N(man)[5,6]: its immediate preceder is the node ending at 5 = Adj [4,5].
  EXPECT_EQ(Ids("//N<-Adj"), V({8}));
  // Nodes immediately preceding N(today)[9,10]: right == 9: VP, NP6, PP,
  // NP12, N(dog).
  EXPECT_EQ(Ids("//N[@lex=today]<-_"), V({3, 5, 10, 12, 14}));
  // All nodes preceding V(saw): right <= 2: NP(I).
  EXPECT_EQ(Ids("//V<--_"), V({2}));
}

TEST_F(Figure1NavTest, SiblingAxes) {
  EXPECT_EQ(Ids("//VP==>_"), V({15}));   // following siblings of VP
  EXPECT_EQ(Ids("//VP<==_"), V({2}));    // preceding siblings of VP
  EXPECT_EQ(Ids("//VP=>_"), V({15}));
  EXPECT_EQ(Ids("//VP<=_"), V({2}));
  EXPECT_EQ(Ids("//Adj=>_"), V({9}));    // next sibling of Adj is N(man)
  EXPECT_EQ(Ids("//Adj<=_"), V({7}));    // previous sibling is Det(the)
}

TEST_F(Figure1NavTest, SelfAndOrSelfAxes) {
  EXPECT_EQ(Ids("//NP/."), V({2, 5, 6, 12}));
  EXPECT_EQ(Ids("//V/self::V"), V({4}));
  EXPECT_EQ(Ids("//V/self::NP"), V());
  EXPECT_EQ(Ids("//V/following-or-self::V"), V({4}));
  EXPECT_EQ(Ids("//VP/descendant-or-self::VP"), V({3}));
  EXPECT_EQ(Ids("//Det/ancestor-or-self::Det"), V({7, 13}));
}

TEST_F(Figure1NavTest, AttributeSteps) {
  EXPECT_EQ(Ids("//V/@lex"), V({4}));   // result is the owning element
  EXPECT_EQ(Ids("//_/@lex"), V({2, 4, 7, 8, 9, 11, 13, 14, 15}));
  EXPECT_EQ(Ids("//_[@lex=saw]"), V({4}));
  EXPECT_EQ(Ids("//_[@lex=dog]"), V({14}));
  EXPECT_EQ(Ids("//_[@lex=missing]"), V());
  EXPECT_EQ(Ids("//_[@lex!=saw]"), V({2, 7, 8, 9, 11, 13, 14, 15}));
  EXPECT_EQ(Ids("//_[@missing=saw]"), V());
}

TEST_F(Figure1NavTest, BooleanPredicates) {
  EXPECT_EQ(Ids("//NP[not(//Det)]"), V({2}));
  EXPECT_EQ(Ids("//NP[//Det and //Prep]"), V({5}));
  EXPECT_EQ(Ids("//NP[//Adj or @lex=I]"), V({2, 5, 6}));
  EXPECT_EQ(Ids("//NP[not(//Det) or //Prep]"), V({2, 5}));
}

TEST_F(Figure1NavTest, ScopeVsPredicateDifference) {
  // //VP{//NP$} returns NPs; //VP[{//NP$}] returns VPs.
  EXPECT_EQ(Ids("//VP[{//NP$}]"), V({3}));
  EXPECT_EQ(Ids("//VP{//NP$}"), V({5, 12}));
}

TEST_F(Figure1NavTest, LeftAlignment) {
  // Left-aligned descendants of VP: V [2,3] at VP.left=2.
  EXPECT_EQ(Ids("//VP{//^_}"), V({4}));
  // NPs without the word I are NP6 [3,9], NP7 [3,6], NP12 [7,9]; their
  // left-aligned descendants are NP7+Det(the), Det(the), Det(a).
  EXPECT_EQ(Ids("//NP[not(@lex=I)]{//^_}"), V({6, 7, 13}));
  // XPath '=' / '!=' existence semantics: NP6 has no @lex at all, so
  // @lex!=I is false for it.
  EXPECT_EQ(Ids("//NP[@lex!=I]"), V());
}

TEST_F(Figure1NavTest, AlignmentWithoutScopeUsesRoot) {
  // ^ aligns with the tree's left edge when no scope is open.
  EXPECT_EQ(Ids("//^_"), V({1, 2}));   // S [1,10] and NP(I) [1,2]
  EXPECT_EQ(Ids("//_$"), V({1, 15}));  // S and N(today) [9,10]
}

TEST_F(Figure1NavTest, NestedScopes) {
  // Within VP, within NP6: nouns following Det(the).
  EXPECT_EQ(Ids("//VP{//NP[//Prep]{/NP-->N}}"), V({14}));
}

TEST_F(Figure1NavTest, ScopedPredicateInQ7Shape) {
  // The Q7 pattern on Figure 1's tags: VP spanned exactly by V NP.
  EXPECT_EQ(Ids("//VP[{//^V->NP$}]"), V({3}));
  // NP6 is spanned by NP7 PP.
  EXPECT_EQ(Ids("//NP[{//^NP->PP$}]"), V({5}));
}

TEST_F(Figure1NavTest, ImmediateFollowingChains) {
  // what-building adjacency shape (Q11): the/old adjacency here.
  EXPECT_EQ(Ids("//S[{//_[@lex=the]->_[@lex=old]}]"), V({1}));
  EXPECT_EQ(Ids("//S[{//_[@lex=old]->_[@lex=the]}]"), V());
}

TEST_F(Figure1NavTest, EvalTreeReturnsPerTreeIds) {
  Result<LocationPath> q = ParseLPath("//NP");
  ASSERT_TRUE(q.ok());
  Result<std::vector<int32_t>> ids = engine_.EvalTree(q.value(), 0);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value(), V({2, 5, 6, 12}));
}

TEST_F(Figure1NavTest, ParseErrorsPropagate) {
  EXPECT_FALSE(engine_.Run("not a query").ok());
  EXPECT_FALSE(engine_.Run("//VP{").ok());
}

TEST(NavMultiTreeTest, HitsCarryTreeIds) {
  Corpus corpus;
  ASSERT_TRUE(ParseBracketText("(S (NP (N dog)))\n(S (VP (V ran)))\n(NP (N cat))",
                               &corpus)
                  .ok());
  NavigationalEngine engine(corpus);
  Result<QueryResult> r = engine.Run("//NP");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->hits.size(), 2u);
  EXPECT_EQ(r->hits[0], (Hit{0, 2}));
  EXPECT_EQ(r->hits[1], (Hit{2, 1}));
}

}  // namespace
}  // namespace lpath
