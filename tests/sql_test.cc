// Unit tests for the SQL subset: lexer, parser, optimizer and executor on
// hand-written SQL (the "RDBMS client" path).

#include <gtest/gtest.h>

#include "lpath/engines.h"
#include "sql/lexer.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace lpath {
namespace {

using sql::Token;
using sql::TokenKind;
using sql::Tokenize;

TEST(SqlLexerTest, BasicTokens) {
  Result<std::vector<Token>> r =
      Tokenize("SELECT a0.tid, 'it''s' != 42 (<=) <>");
  ASSERT_TRUE(r.ok());
  const std::vector<Token>& t = r.value();
  ASSERT_EQ(t.size(), 13u);  // incl. kEnd
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].text, "a0");
  EXPECT_EQ(t[2].kind, TokenKind::kDot);
  EXPECT_EQ(t[3].text, "tid");
  EXPECT_EQ(t[4].kind, TokenKind::kComma);
  EXPECT_EQ(t[5].kind, TokenKind::kString);
  EXPECT_EQ(t[5].text, "it's");
  EXPECT_EQ(t[6].kind, TokenKind::kNe);
  EXPECT_EQ(t[7].kind, TokenKind::kNumber);
  EXPECT_EQ(t[7].number, 42);
  EXPECT_EQ(t[8].kind, TokenKind::kLParen);
  EXPECT_EQ(t[9].kind, TokenKind::kLe);
  EXPECT_EQ(t[10].kind, TokenKind::kRParen);
  EXPECT_EQ(t[11].kind, TokenKind::kNe);
  EXPECT_EQ(t[12].kind, TokenKind::kEnd);
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(SqlParserTest, MinimalSelect) {
  Result<ExecPlan> p =
      sql::ParseSql("SELECT DISTINCT a0.tid, a0.id FROM nodes AS a0");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->num_vars, 1);
  EXPECT_EQ(p->output_var, 0);
  EXPECT_TRUE(p->conjuncts.empty());
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  Result<ExecPlan> p = sql::ParseSql(
      "select distinct x.tid, x.id from nodes as x where x.name = 'NP'");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->conjuncts.size(), 1u);
}

TEST(SqlParserTest, LiteralOnLeftIsNormalized) {
  Result<ExecPlan> p = sql::ParseSql(
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE 3 < a.depth");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->conjuncts.size(), 1u);
  const Conjunct& c = p->conjuncts[0];
  EXPECT_FALSE(c.lhs.is_literal());
  EXPECT_EQ(c.op, CmpOp::kGt);
  EXPECT_EQ(c.rhs.num, 3);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(sql::ParseSql("").ok());
  EXPECT_FALSE(sql::ParseSql("SELECT a0.tid FROM nodes AS a0").ok());
  EXPECT_FALSE(
      sql::ParseSql("SELECT DISTINCT a0.tid, a1.id FROM nodes AS a0").ok());
  EXPECT_FALSE(sql::ParseSql("SELECT DISTINCT a0.tid, a0.id FROM nodes AS a0 "
                             "WHERE a0.bogus = 1")
                   .ok());
  EXPECT_FALSE(sql::ParseSql("SELECT DISTINCT a0.tid, a0.id FROM nodes AS a0 "
                             "WHERE a9.id = 1")
                   .ok());
  EXPECT_FALSE(sql::ParseSql("SELECT DISTINCT a0.tid, a0.id FROM nodes AS a0 "
                             "WHERE 1 = 1")
                   .ok());
  EXPECT_FALSE(sql::ParseSql("SELECT DISTINCT a0.tid, a0.id FROM nodes AS a0, "
                             "nodes AS a0")
                   .ok());
}

class SqlExecTest : public ::testing::Test {
 protected:
  SqlExecTest() : corpus_(testing::BuildFigure1Corpus()) {
    Result<NodeRelation> rel = NodeRelation::Build(corpus_);
    EXPECT_TRUE(rel.ok());
    rel_ = std::make_unique<NodeRelation>(std::move(rel).value());
  }

  size_t Count(const std::string& sql_text) {
    Result<QueryResult> r = RunSql(*rel_, sql_text);
    EXPECT_TRUE(r.ok()) << sql_text << " -> " << r.status();
    return r.ok() ? r->count() : 0;
  }

  Corpus corpus_;
  std::unique_ptr<NodeRelation> rel_;
};

TEST_F(SqlExecTest, NameScan) {
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a "
                  "WHERE a.name = 'NP'"),
            4u);
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a "
                  "WHERE a.name = 'Nope'"),
            0u);
}

TEST_F(SqlExecTest, SelfJoinChild) {
  // NPs with an N child: NP7 and NP12.
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a, nodes AS b "
                  "WHERE a.name = 'NP' AND b.name = 'N' AND b.tid = a.tid "
                  "AND b.pid = a.id"),
            2u);
}

TEST_F(SqlExecTest, IntervalJoinFollowing) {
  // Nodes following V (left >= 3), counting elements only: everything from
  // NP6 onward = 11 element rows... NP6,NP7,Det,Adj,N,PP,Prep,NP,Det,N,N(today).
  EXPECT_EQ(Count("SELECT DISTINCT b.tid, b.id FROM nodes AS a, nodes AS b "
                  "WHERE a.name = 'V' AND b.kind = 0 AND b.tid = a.tid "
                  "AND b.left >= a.right"),
            11u);
}

TEST_F(SqlExecTest, ValueIndexLookup) {
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a "
                  "WHERE a.value = 'saw'"),
            1u);
}

TEST_F(SqlExecTest, ExistsAndNotExists) {
  // NPs containing a Det: NP6, NP7, NP12.
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "a.name = 'NP' AND EXISTS (SELECT 1 FROM nodes AS b WHERE "
                  "b.tid = a.tid AND b.name = 'Det' AND b.left >= a.left AND "
                  "b.right <= a.right AND b.depth > a.depth)"),
            3u);
  // NPs with no Det inside: NP(I).
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "a.name = 'NP' AND NOT (EXISTS (SELECT 1 FROM nodes AS b "
                  "WHERE b.tid = a.tid AND b.name = 'Det' AND b.left >= "
                  "a.left AND b.right <= a.right AND b.depth > a.depth))"),
            1u);
}

TEST_F(SqlExecTest, OrFilter) {
  // V or Det: 1 + 2.
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "(a.name = 'V' OR a.name = 'Det')"),
            3u);
}

TEST_F(SqlExecTest, UnknownSymbolIsEmptyNotError) {
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "a.value = 'neverseen'"),
            0u);
}

TEST_F(SqlExecTest, UnknownLiteralInsideOrDoesNotEmptyQuery) {
  // Regression: an unknown word in one OR leg used to mark the whole plan
  // always-empty. The V row must still match through the other leg.
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "a.name = 'V' AND (a.value = 'zzz_unknown' OR "
                  "a.left >= 0)"),
            1u);
}

TEST_F(SqlExecTest, UnknownLiteralInsideNotIsSimplyFalse) {
  // NOT (value = unknown) holds for every row, so the name conjunct alone
  // decides: all four NPs.
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "a.name = 'NP' AND NOT (a.value = 'zzz_unknown')"),
            4u);
}

TEST_F(SqlExecTest, UnknownLiteralInequalityMatchesLikeAbsentWord) {
  // `!= unknown-word` must answer like `!=` against a known word that the
  // rows don't carry, and like its De Morgan twin NOT (= unknown): all
  // four NPs (whose value column is empty) pass.
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "a.name = 'NP' AND a.value != 'zzz_unknown'"),
            4u);
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "a.name = 'NP' AND a.value != 'saw'"),
            4u);
}

TEST_F(SqlExecTest, UnknownValueEqualityMatchesNoElementRow) {
  // Element rows store kNoSymbol in the value column; an unknown literal
  // must not alias to that sentinel, or this OR would match all 15
  // elements instead of just V.
  EXPECT_EQ(Count("SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
                  "a.kind = 0 AND (a.value = 'zzz_unknown' OR "
                  "a.name = 'V')"),
            1u);
}

TEST_F(SqlExecTest, LiteralFirstSpellingUsesTheNameRun) {
  // `'NP' = a.name` must drive the same run-index access path as
  // `a.name = 'NP'` — identical results and identical candidate counts.
  sql::PlanExecutor executor(*rel_);
  ExecPlan var_first;
  var_first.num_vars = 1;
  var_first.conjuncts.push_back(Conjunct{Operand::Column(0, PlanCol::kName),
                                         CmpOp::kEq, Operand::String("NP")});
  ExecPlan lit_first;
  lit_first.num_vars = 1;
  lit_first.conjuncts.push_back(Conjunct{Operand::String("NP"), CmpOp::kEq,
                                         Operand::Column(0, PlanCol::kName)});
  sql::ExecStats var_stats, lit_stats;
  Result<QueryResult> var_result = executor.Execute(var_first, &var_stats);
  Result<QueryResult> lit_result = executor.Execute(lit_first, &lit_stats);
  ASSERT_TRUE(var_result.ok()) << var_result.status();
  ASSERT_TRUE(lit_result.ok()) << lit_result.status();
  EXPECT_EQ(var_result->count(), 4u);
  EXPECT_EQ(lit_result.value(), var_result.value());
  EXPECT_EQ(lit_stats.candidates, var_stats.candidates);
}

TEST_F(SqlExecTest, StringInequalityRejected) {
  Result<QueryResult> r =
      RunSql(*rel_,
             "SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE "
             "a.name < 'NP'");
  EXPECT_TRUE(r.status().IsNotSupported());
}

TEST_F(SqlExecTest, JoinOrderModesAgree) {
  const std::string q =
      "SELECT DISTINCT c.tid, c.id FROM nodes AS a, nodes AS b, nodes AS c "
      "WHERE a.name = 'VP' AND b.tid = a.tid AND b.pid = a.id AND "
      "b.name = 'V' AND c.tid = b.tid AND c.left >= b.right AND "
      "c.name = 'N'";
  sql::ExecOptions greedy;
  sql::ExecOptions ltr;
  ltr.join_order = sql::ExecOptions::JoinOrder::kLeftToRight;
  Result<QueryResult> r1 = RunSql(*rel_, q, greedy);
  Result<QueryResult> r2 = RunSql(*rel_, q, ltr);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
  EXPECT_EQ(r1->count(), 3u);
}

TEST_F(SqlExecTest, EarlyExitModesAgree) {
  const std::string q =
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a, nodes AS b "
      "WHERE a.name = 'NP' AND b.tid = a.tid AND b.kind = 0 AND "
      "b.left >= a.right";
  sql::ExecOptions fast;
  sql::ExecOptions naive;
  naive.distinct_early_exit = false;
  Result<QueryResult> r1 = RunSql(*rel_, q, fast);
  Result<QueryResult> r2 = RunSql(*rel_, q, naive);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
}

}  // namespace
}  // namespace lpath
