// CorpusSnapshot ownership tests: the snapshot must be self-contained (no
// "corpus must outlive" contract), Rebuild must produce a distinguishable
// snapshot over the same corpus, and the relation must share corpus
// ownership so hot-swapped-out snapshots stay valid for in-flight readers.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "lpath/engines.h"
#include "test_util.h"

namespace lpath {
namespace {

TEST(SnapshotTest, BuildConsumesAndOwnsTheCorpus) {
  Corpus corpus = testing::RandomCorpus(7, 12, 24);
  const size_t nodes = corpus.TotalNodes();
  const size_t trees = corpus.size();
  Result<SnapshotPtr> snap = CorpusSnapshot::Build(std::move(corpus));
  ASSERT_TRUE(snap.ok());
  // Self-contained: the moved-from local is gone, the snapshot serves.
  EXPECT_EQ((*snap)->corpus().size(), trees);
  EXPECT_EQ((*snap)->corpus().TotalNodes(), nodes);
  EXPECT_GT((*snap)->id(), 0u);
  // The relation reads exactly the snapshot's corpus object.
  EXPECT_EQ(&(*snap)->relation().corpus(), &(*snap)->corpus());
  EXPECT_EQ((*snap)->relation().corpus_ptr().get(), &(*snap)->corpus());
}

TEST(SnapshotTest, RelationKeepsCorpusAliveWithoutTheSnapshot) {
  NodeRelation relation = [] {
    Result<SnapshotPtr> snap =
        CorpusSnapshot::Build(testing::BuildFigure1Corpus());
    EXPECT_TRUE(snap.ok());
    // Copy the relation's shared corpus into a fresh standalone relation;
    // the snapshot itself dies at the end of this scope.
    Result<NodeRelation> rebuilt =
        NodeRelation::Build((*snap)->relation().corpus_ptr());
    EXPECT_TRUE(rebuilt.ok());
    return std::move(rebuilt).value();
  }();
  // The corpus (and its interner) must still be alive through the
  // relation's shared ownership.
  EXPECT_EQ(relation.corpus().size(), 1u);
  LPathEngine engine(relation);
  Result<QueryResult> r = engine.Run("//NP");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->count(), 4u);  // Figure 1 has NP nodes 1, 4, 5, 11
}

TEST(SnapshotTest, RebuildSharesTheCorpusAndBumpsTheId) {
  Result<SnapshotPtr> snap =
      CorpusSnapshot::Build(testing::RandomCorpus(11, 15, 30));
  ASSERT_TRUE(snap.ok());
  Result<SnapshotPtr> rebuilt = (*snap)->Rebuild();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_NE((*rebuilt)->id(), (*snap)->id());
  EXPECT_EQ(&(*rebuilt)->corpus(), &(*snap)->corpus());  // same object
  EXPECT_EQ((*rebuilt)->relation().row_count(), (*snap)->relation().row_count());
  // Queries agree between the original and the rebuilt relation.
  LPathEngine a((*snap)->relation());
  LPathEngine b((*rebuilt)->relation());
  for (const char* q : {"//NP//_", "//VP[//N]", "//_[@lex='saw']"}) {
    Result<QueryResult> ra = a.Run(q);
    Result<QueryResult> rb = b.Run(q);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra.value(), rb.value()) << q;
  }
}

TEST(SnapshotTest, BorrowingBuildRemainsNonOwning) {
  Corpus corpus = testing::BuildFigure1Corpus();
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  // The borrowing overload aliases without a control block: no ownership.
  EXPECT_EQ(rel->corpus_ptr().use_count(), 0);
  EXPECT_EQ(rel->corpus_ptr().get(), &corpus);
}

TEST(SnapshotTest, NullCorpusIsRejected) {
  Result<SnapshotPtr> snap =
      CorpusSnapshot::Build(std::shared_ptr<const Corpus>());
  EXPECT_FALSE(snap.ok());
  Result<NodeRelation> rel =
      NodeRelation::Build(std::shared_ptr<const Corpus>());
  EXPECT_FALSE(rel.ok());
}

}  // namespace
}  // namespace lpath
