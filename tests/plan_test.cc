// Tests for the LPath → ExecPlan compiler and the SQL generator: plan
// shapes, Table 2 conjunct mapping, SQL text goldens, and the SQL → plan
// round trip.

#include "plan/compile.h"

#include <gtest/gtest.h>

#include "lpath/parser.h"
#include "plan/axis_map.h"
#include "plan/sql_gen.h"
#include "sql/parser.h"

namespace lpath {
namespace {

ExecPlan MustCompile(const std::string& q,
                     LabelScheme scheme = LabelScheme::kLPath) {
  Result<LocationPath> path = ParseLPath(q);
  EXPECT_TRUE(path.ok()) << q << ": " << path.status();
  CompileOptions opts;
  opts.scheme = scheme;
  Result<ExecPlan> plan = CompileLPath(path.value(), opts);
  EXPECT_TRUE(plan.ok()) << q << ": " << plan.status();
  return plan.ok() ? std::move(plan).value() : ExecPlan{};
}

bool HasConjunct(const ExecPlan& p, const std::string& rendered) {
  return p.DebugString().find(rendered) != std::string::npos;
}

TEST(CompileTest, SimpleDescendantScan) {
  ExecPlan p = MustCompile("//NP");
  EXPECT_EQ(p.num_vars, 1);
  EXPECT_EQ(p.output_var, 0);
  ASSERT_EQ(p.conjuncts.size(), 1u);
  EXPECT_TRUE(HasConjunct(p, "v0.name = 'NP'"));
}

TEST(CompileTest, RootStepConstrainsPid) {
  ExecPlan p = MustCompile("/S");
  EXPECT_TRUE(HasConjunct(p, "v0.pid = 0"));
  EXPECT_TRUE(HasConjunct(p, "v0.name = 'S'"));
}

TEST(CompileTest, ChildChainUsesPidJoin) {
  ExecPlan p = MustCompile("//VP/VB");
  EXPECT_EQ(p.num_vars, 2);
  EXPECT_EQ(p.output_var, 1);
  EXPECT_TRUE(HasConjunct(p, "v1.tid = v0.tid"));
  EXPECT_TRUE(HasConjunct(p, "v1.pid = v0.id"));
}

TEST(CompileTest, ImmediateFollowingIsAdjacency) {
  ExecPlan p = MustCompile("//VB->NP");
  EXPECT_TRUE(HasConjunct(p, "v1.left = v0.right"));
}

TEST(CompileTest, FollowingIsInterval) {
  ExecPlan p = MustCompile("//VB-->NP");
  EXPECT_TRUE(HasConjunct(p, "v1.left >= v0.right"));
}

TEST(CompileTest, SiblingAddsPidEquality) {
  ExecPlan p = MustCompile("//PP=>SBAR");
  EXPECT_TRUE(HasConjunct(p, "v1.pid = v0.pid"));
  EXPECT_TRUE(HasConjunct(p, "v1.left = v0.right"));
}

TEST(CompileTest, ScopeAddsContainment) {
  ExecPlan p = MustCompile("//VP{/VB-->NN}");
  // NN (v2) must be inside VP's (v0) subtree.
  EXPECT_TRUE(HasConjunct(p, "v2.left >= v0.left"));
  EXPECT_TRUE(HasConjunct(p, "v2.right <= v0.right"));
  EXPECT_TRUE(HasConjunct(p, "v2.depth >= v0.depth"));
  // The unscoped variant has none of that.
  ExecPlan q = MustCompile("//VP/VB-->NN");
  EXPECT_FALSE(HasConjunct(q, "v2.left >= v0.left"));
}

TEST(CompileTest, AlignmentUsesScopeEdges) {
  ExecPlan p = MustCompile("//VP{/NP$}");
  EXPECT_TRUE(HasConjunct(p, "v1.right = v0.right"));
  ExecPlan q = MustCompile("//VP{//^NP}");
  EXPECT_TRUE(HasConjunct(q, "v1.left = v0.left"));
}

TEST(CompileTest, AlignmentWithoutScopeBindsRoot) {
  ExecPlan p = MustCompile("//NP$");
  // An extra variable constrained to the root (pid = 0).
  EXPECT_EQ(p.num_vars, 2);
  EXPECT_TRUE(HasConjunct(p, "v1.pid = 0"));
  EXPECT_TRUE(HasConjunct(p, "v0.right = v1.right"));
  EXPECT_EQ(p.output_var, 0);
}

TEST(CompileTest, WildcardConstrainsKind) {
  ExecPlan p = MustCompile("//_");
  EXPECT_TRUE(HasConjunct(p, "v0.kind = 0"));
}

TEST(CompileTest, PositivePredicateIsUnnested) {
  // A positive path predicate joins in the same graph (a semi-join, sound
  // under the DISTINCT projection) — as in the paper's SQL translation.
  ExecPlan p = MustCompile("//S[//NP/ADJP]");
  EXPECT_TRUE(p.filters.empty());
  EXPECT_EQ(p.num_vars, 3);
  EXPECT_EQ(p.output_var, 0);  // still the S variable
  EXPECT_TRUE(HasConjunct(p, "v1.tid = v0.tid"));
  EXPECT_TRUE(HasConjunct(p, "v2.pid = v1.id"));
}

TEST(CompileTest, PredicateBecomesExistsWithoutUnnesting) {
  Result<LocationPath> path = ParseLPath("//S[//NP/ADJP]");
  ASSERT_TRUE(path.ok());
  CompileOptions opts;
  opts.unnest_predicates = false;
  Result<ExecPlan> plan = CompileLPath(path.value(), opts);
  ASSERT_TRUE(plan.ok());
  const ExecPlan& p = plan.value();
  ASSERT_EQ(p.filters.size(), 1u);
  EXPECT_EQ(p.filters[0]->kind, BoolExpr::Kind::kExists);
  const ExecPlan& sub = *p.filters[0]->sub;
  EXPECT_EQ(sub.num_vars, 2);
  // Correlation on the outer S.
  EXPECT_TRUE(HasConjunct(p, "v0.tid = outer0.tid"));
}

TEST(CompileTest, NotBecomesNotExists) {
  ExecPlan p = MustCompile("//NP[not(//JJ)]");
  ASSERT_EQ(p.filters.size(), 1u);
  EXPECT_EQ(p.filters[0]->kind, BoolExpr::Kind::kNot);
  EXPECT_EQ(p.filters[0]->lhs->kind, BoolExpr::Kind::kExists);
}

TEST(CompileTest, AttrCompareBecomesAttributeJoinVar) {
  // The value test becomes a join variable so the optimizer can anchor on
  // the {value, tid, id} index — the engine's big win on Q12/Q13.
  ExecPlan p = MustCompile("//_[@lex=saw]");
  EXPECT_TRUE(p.filters.empty());
  EXPECT_EQ(p.num_vars, 2);
  EXPECT_TRUE(HasConjunct(p, "v1.name = '@lex'"));
  EXPECT_TRUE(HasConjunct(p, "v1.value = 'saw'"));
  EXPECT_TRUE(HasConjunct(p, "v1.id = v0.id"));
}

TEST(CompileTest, NegatedPredicatesStayAsFilters) {
  // NOT cannot be unnested; neither can OR.
  ExecPlan p = MustCompile("//NP[not(//JJ)][//DT or //CD]");
  ASSERT_EQ(p.filters.size(), 2u);
  EXPECT_EQ(p.num_vars, 1);
}

TEST(CompileTest, OrSelfAxisBecomesDisjunctiveFilter) {
  ExecPlan p = MustCompile("//VP/descendant-or-self::VP");
  ASSERT_EQ(p.filters.size(), 1u);
  EXPECT_EQ(p.filters[0]->kind, BoolExpr::Kind::kOr);
}

TEST(CompileTest, PositionalRejected) {
  Result<LocationPath> path =
      ParseLPath("//V/following-sibling::_[position()=1]");
  ASSERT_TRUE(path.ok());
  Result<ExecPlan> plan = CompileLPath(path.value());
  EXPECT_TRUE(plan.status().IsNotSupported());
}

TEST(CompileTest, XPathSchemeRejectsImmediateAxes) {
  Result<LocationPath> path = ParseLPath("//VB->NP");
  ASSERT_TRUE(path.ok());
  CompileOptions opts;
  opts.scheme = LabelScheme::kXPath;
  EXPECT_TRUE(CompileLPath(path.value(), opts).status().IsNotSupported());
}

TEST(CompileTest, XPathSchemeRejectsAlignment) {
  Result<LocationPath> path = ParseLPath("//VP{/NP$}");
  ASSERT_TRUE(path.ok());
  CompileOptions opts;
  opts.scheme = LabelScheme::kXPath;
  EXPECT_TRUE(CompileLPath(path.value(), opts).status().IsNotSupported());
}

TEST(CompileTest, XPathSchemeAcceptsXPathFragment) {
  const char* kQueries[] = {
      "//S[//_[@lex=saw]]", "//S[//NP/ADJP]", "//NP[not(//JJ)]",
      "//_[@lex=rapprochement]", "//ADVP-LOC-CLR", "//RRC/PP-TMP",
      "//NP/NP/NP/NP/NP", "//VP/VP/VP",
  };
  for (const char* q : kQueries) {
    Result<LocationPath> path = ParseLPath(q);
    ASSERT_TRUE(path.ok());
    CompileOptions opts;
    opts.scheme = LabelScheme::kXPath;
    EXPECT_TRUE(CompileLPath(path.value(), opts).ok()) << q;
  }
}

TEST(SqlGenTest, SimpleQueryGolden) {
  ExecPlan p = MustCompile("//VP/VB");
  EXPECT_EQ(GenerateSql(p),
            "SELECT DISTINCT a1.tid, a1.id FROM nodes AS a0, nodes AS a1 "
            "WHERE a0.name = 'VP' AND a1.tid = a0.tid AND a1.pid = a0.id "
            "AND a1.name = 'VB'");
}

TEST(SqlGenTest, ValuePredicateGolden) {
  ExecPlan p = MustCompile("//_[@lex=saw]");
  EXPECT_EQ(GenerateSql(p),
            "SELECT DISTINCT a0.tid, a0.id FROM nodes AS a0, nodes AS a1 "
            "WHERE a0.kind = 0 AND a1.tid = a0.tid AND a1.id = a0.id "
            "AND a1.name = '@lex' AND a1.value = 'saw'");
}

TEST(SqlGenTest, ValuePredicateExistsFormWithoutUnnesting) {
  Result<LocationPath> path = ParseLPath("//_[@lex=saw]");
  ASSERT_TRUE(path.ok());
  CompileOptions opts;
  opts.unnest_predicates = false;
  Result<ExecPlan> plan = CompileLPath(path.value(), opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(GenerateSql(plan.value()),
            "SELECT DISTINCT a0.tid, a0.id FROM nodes AS a0 "
            "WHERE a0.kind = 0 AND EXISTS (SELECT 1 FROM nodes AS b0 "
            "WHERE b0.tid = a0.tid AND b0.id = a0.id AND b0.name = '@lex' "
            "AND b0.value = 'saw')");
}

TEST(SqlGenTest, QuotesAreEscaped) {
  // LPath double-quoted literal containing a single quote; the SQL
  // generator must double it, and the SQL parser must undo that.
  ExecPlan p = MustCompile("//_[@lex=\"don't\"]");
  std::string sql = GenerateSql(p);
  EXPECT_NE(sql.find("'don''t'"), std::string::npos);
  Result<ExecPlan> reparsed = sql::ParseSql(sql);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(GenerateSql(reparsed.value()), sql);
}

TEST(SqlRoundTripTest, The23QuerySuite) {
  const char* kQueries[] = {
      "//S[//_[@lex=saw]]",
      "//VB->NP",
      "//VP/VB-->NN",
      "//VP{/VB-->NN}",
      "//VP{/NP$}",
      "//VP{//NP$}",
      "//VP[{//^VB->NP->PP$}]",
      "//S[//NP/ADJP]",
      "//NP[not(//JJ)]",
      "//NP[->PP[//IN[@lex=of]]=>VP]",
      "//S[{//_[@lex=what]->_[@lex=building]}]",
      "//_[@lex=rapprochement]",
      "//_[@lex=1929]",
      "//ADVP-LOC-CLR",
      "//WHPP",
      "//RRC/PP-TMP",
      "//UCP-PRD/ADJP-PRD",
      "//NP/NP/NP/NP/NP",
      "//VP/VP/VP",
      "//PP=>SBAR",
      "//ADVP=>ADJP",
      "//NP=>NP=>NP",
      "//VP=>VP",
  };
  for (const char* q : kQueries) {
    ExecPlan p = MustCompile(q);
    std::string sql1 = GenerateSql(p);
    Result<ExecPlan> reparsed = sql::ParseSql(sql1);
    ASSERT_TRUE(reparsed.ok()) << q << "\n" << sql1 << "\n"
                               << reparsed.status();
    // The round trip is exact: regenerating yields identical SQL, and the
    // plan debug forms match.
    EXPECT_EQ(GenerateSql(reparsed.value()), sql1) << q;
    EXPECT_EQ(reparsed->DebugString(), p.DebugString()) << q;
  }
}

TEST(AxisMapTest, EveryLPathAxisMapsOrFilters) {
  for (int a = 0; a <= static_cast<int>(Axis::kAttribute); ++a) {
    Axis axis = static_cast<Axis>(a);
    std::vector<Conjunct> out;
    if (AxisNeedsDisjunction(axis) && axis != Axis::kSelf) {
      Result<std::unique_ptr<BoolExpr>> f =
          AxisFilter(LabelScheme::kLPath, axis, 0, 1);
      EXPECT_TRUE(f.ok()) << AxisName(axis);
    } else {
      EXPECT_TRUE(
          AppendAxisConjuncts(LabelScheme::kLPath, axis, 0, 1, &out).ok())
          << AxisName(axis);
      EXPECT_FALSE(out.empty()) << AxisName(axis);
    }
  }
}

}  // namespace
}  // namespace lpath
