// Differential fuzzing: generate random LPath queries (random axes, node
// tests, scopes, alignment, predicates) and random corpora, then require
// the relational engine (through the full SQL round trip) to agree exactly
// with the navigational reference evaluator. This sweeps query shapes the
// hand-written batteries never enumerate.

#include <gtest/gtest.h>

#include <string>

#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "lpath/parser.h"
#include "test_util.h"

namespace lpath {
namespace {

/// Random query generator over the test tag/word alphabet. Generates only
/// queries the relational translation supports (no position()/last()).
class QueryGen {
 public:
  explicit QueryGen(Rng* rng) : rng_(rng) {}

  std::string Query() {
    std::string q = rng_->Chance(0.9) ? "//" : "/";
    q += NodeTestWithSuffix(/*depth=*/0, /*in_scope=*/false);
    int steps = static_cast<int>(rng_->Below(4));
    bool scope_open = false;
    for (int i = 0; i < steps; ++i) {
      if (!scope_open && rng_->Chance(0.25)) {
        q += "{";
        scope_open = true;
      }
      q += AxisToken();
      q += NodeTestWithSuffix(0, scope_open);
    }
    if (scope_open) q += "}";
    return q;
  }

 private:
  const char* Tag() {
    static const char* kTags[] = {"S", "NP", "VP", "PP", "N",
                                  "V", "Det", "Adj", "X", "Y"};
    return kTags[rng_->Below(10)];
  }
  const char* Word() {
    static const char* kWords[] = {"a", "b", "c", "saw", "dog",
                                   "man", "of", "what", "building"};
    return kWords[rng_->Below(9)];
  }
  const char* AxisToken() {
    static const char* kAxes[] = {
        "/",  "//",  "\\",  "\\\\", "->", "-->", "<-", "<--",
        "=>", "==>", "<=",  "<==",  "/descendant-or-self::",
        "/ancestor-or-self::", "/following-or-self::",
        "/preceding-or-self::", "/following-sibling-or-self::",
        "/preceding-sibling-or-self::", "/self::",
    };
    return kAxes[rng_->Below(19)];
  }

  std::string NodeTestWithSuffix(int depth, bool in_scope) {
    std::string out;
    if (in_scope && rng_->Chance(0.2)) out += "^";
    out += rng_->Chance(0.25) ? "_" : Tag();
    if (in_scope && rng_->Chance(0.2)) out += "$";
    if (depth < 2 && rng_->Chance(0.35)) {
      out += "[";
      out += Predicate(depth + 1);
      out += "]";
    }
    return out;
  }

  std::string Predicate(int depth) {
    const double roll = rng_->NextDouble();
    if (roll < 0.30) {  // attribute compare
      std::string op = rng_->Chance(0.8) ? "=" : "!=";
      return std::string("@lex") + op + Word();
    }
    if (roll < 0.45 && depth < 2) {  // boolean
      const char* joiner = rng_->Chance(0.5) ? " and " : " or ";
      return PredPath(depth) + joiner + Predicate(depth + 1);
    }
    if (roll < 0.60) {  // negation
      return "not(" + PredPath(depth) + ")";
    }
    return PredPath(depth);
  }

  std::string PredPath(int depth) {
    std::string q;
    bool scope_open = false;
    if (rng_->Chance(0.25)) {
      q += "{";
      scope_open = true;
    }
    const double roll = rng_->NextDouble();
    if (roll < 0.4) {
      q += "//";
    } else if (roll < 0.6) {
      q += AxisToken();
      if (q.back() == '{') q += "//";  // never happens; keep simple
    }
    q += NodeTestWithSuffix(depth + 1, scope_open);
    if (rng_->Chance(0.4)) {
      q += AxisToken();
      q += NodeTestWithSuffix(depth + 1, scope_open);
    }
    if (scope_open) q += "}";
    return q;
  }

  Rng* rng_;
};

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, RelationalAgreesWithNavigational) {
  Rng rng(GetParam() * 7919 + 1);
  Corpus corpus = testing::RandomCorpus(GetParam() * 31 + 7, /*trees=*/15,
                                        /*max_nodes=*/25);
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine relational(rel.value());
  LPathEngine::Options nested;
  nested.unnest_predicates = false;
  LPathEngine relational_nested(rel.value(), nested);
  NavigationalEngine nav(corpus);

  QueryGen gen(&rng);
  int evaluated = 0;
  for (int i = 0; i < 250; ++i) {
    const std::string q = gen.Query();
    // Every generated query must parse.
    Result<LocationPath> parsed = ParseLPath(q);
    ASSERT_TRUE(parsed.ok()) << q << " -> " << parsed.status();

    Result<QueryResult> expected = nav.Run(q);
    ASSERT_TRUE(expected.ok()) << q << " -> " << expected.status();
    for (const LPathEngine* engine : {&relational, &relational_nested}) {
      Result<QueryResult> got = engine->Run(q);
      ASSERT_TRUE(got.ok()) << q << " -> " << got.status();
      ASSERT_EQ(got.value(), expected.value())
          << "query: " << q << "\nseed: " << GetParam()
          << "\nexpected " << expected->count() << " hits, got "
          << got->count();
    }
    ++evaluated;
  }
  EXPECT_EQ(evaluated, 250);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace lpath
