// Differential fuzzing: generate random LPath queries (random axes, node
// tests, scopes, alignment, predicates — including unknown tags/words and
// OR/NOT combinations over them, the shape of the filter-tree literal
// resolution bug) and random corpora, then require the relational engine
// (through the full SQL round trip) to agree exactly with the navigational
// reference evaluator. This sweeps query shapes the hand-written batteries
// never enumerate. The generator itself lives in test_util.h, shared with
// the shard and service differentials.

#include <gtest/gtest.h>

#include <string>

#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "lpath/parser.h"
#include "test_util.h"

namespace lpath {
namespace {

using testing::QueryGen;

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, RelationalAgreesWithNavigational) {
  Rng rng(GetParam() * 7919 + 1);
  Corpus corpus = testing::RandomCorpus(GetParam() * 31 + 7, /*trees=*/15,
                                        /*max_nodes=*/25);
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine relational(rel.value());
  LPathEngine::Options nested;
  nested.unnest_predicates = false;
  LPathEngine relational_nested(rel.value(), nested);
  NavigationalEngine nav(corpus);

  QueryGen gen(&rng);
  int evaluated = 0;
  for (int i = 0; i < 250; ++i) {
    const std::string q = gen.Query();
    // Every generated query must parse.
    Result<LocationPath> parsed = ParseLPath(q);
    ASSERT_TRUE(parsed.ok()) << q << " -> " << parsed.status();

    Result<QueryResult> expected = nav.Run(q);
    ASSERT_TRUE(expected.ok()) << q << " -> " << expected.status();
    for (const LPathEngine* engine : {&relational, &relational_nested}) {
      Result<QueryResult> got = engine->Run(q);
      ASSERT_TRUE(got.ok()) << q << " -> " << got.status();
      ASSERT_EQ(got.value(), expected.value())
          << "query: " << q << "\nseed: " << GetParam()
          << "\nexpected " << expected->count() << " hits, got "
          << got->count();
    }
    ++evaluated;
  }
  EXPECT_EQ(evaluated, 250);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace lpath
