// End-to-end tests of the network front end over real loopback sockets:
// handshake and version negotiation, a 150-query fuzz differential proving
// the wire result bit-identical to the in-process db::Database::Query
// result, pipelined multiplexing, cancellation, a malformed-frame battery,
// admission control, idle timeouts, graceful shutdown and backpressure.
// This suite runs under ThreadSanitizer in CI; the socketless framing unit
// suite is net_frame_test.cc.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "db/database.h"
#include "gen/generator.h"
#include "net/client.h"
#include "net/server.h"
#include "test_util.h"

namespace lpath {
namespace {

using net::AppendFrame;
using net::EncodeEnd;
using net::EncodeHello;
using net::EncodeQuery;
using net::Frame;
using net::FrameParse;
using net::MsgType;
using net::WireCode;
using testing::QueryGen;

/// A raw, frame-level connection for protocol-abuse tests: writes
/// arbitrary bytes, reads whole frames, with a receive timeout so a
/// misbehaving server fails the test instead of hanging it.
class RawConn {
 public:
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }

  bool Write(std::span<const uint8_t> bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool WriteFrame(MsgType type, uint32_t request_id,
                  std::span<const uint8_t> payload) {
    std::vector<uint8_t> frame;
    AppendFrame(type, request_id, payload, &frame);
    return Write(frame);
  }

  /// Reads until one whole frame parses; false on EOF/timeout/bad bytes.
  bool ReadFrame(Frame* out) {
    while (true) {
      size_t consumed = 0;
      std::string error;
      FrameParse parse =
          net::ParseFrame(rbuf_, 64u << 20, out, &consumed, &error);
      if (parse == FrameParse::kFrame) {
        rbuf_.erase(rbuf_.begin(), rbuf_.begin() + consumed);
        return true;
      }
      if (parse == FrameParse::kBad) return false;
      uint8_t buf[4096];
      ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) return false;
      rbuf_.insert(rbuf_.end(), buf, buf + n);
    }
  }

  /// True once the server closes the connection (EOF), draining anything
  /// still buffered.
  bool AwaitEof() {
    uint8_t buf[4096];
    while (true) {
      ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout/error: not an EOF
    }
  }

 private:
  int fd_ = -1;
  std::vector<uint8_t> rbuf_;
};

/// One database (fuzz corpus "fuzz" + WSJ-profile corpus "wsj") behind one
/// server on an ephemeral loopback port.
class NetTest : public ::testing::Test {
 protected:
  void StartServer(net::NetOptions options = {}) {
    db_ = std::make_unique<db::Database>();
    ASSERT_TRUE(
        db_->OpenCorpus("fuzz", testing::RandomCorpus(4242, 24, 30)).ok());
    Result<Corpus> wsj = gen::GenerateWsj(40);
    ASSERT_TRUE(wsj.ok());
    ASSERT_TRUE(db_->OpenCorpus("wsj", std::move(*wsj)).ok());
    server_ = std::make_unique<net::NetServer>(db_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  net::Client Connected() {
    net::Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  std::unique_ptr<db::Database> db_;
  std::unique_ptr<net::NetServer> server_;
};

TEST_F(NetTest, HandshakeAndPing) {
  StartServer();
  net::Client client = Connected();
  EXPECT_EQ(client.server_software(), "lpathdb");
  EXPECT_EQ(client.max_inflight(), 32u);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(NetTest, VersionMismatchIsRefused) {
  StartServer();
  RawConn raw;
  ASSERT_TRUE(raw.Connect(server_->port()));
  net::HelloPayload hello;
  hello.version = 99;
  hello.software = "from-the-future";
  ASSERT_TRUE(raw.WriteFrame(MsgType::kHello, 0, EncodeHello(hello)));
  Frame reply;
  ASSERT_TRUE(raw.ReadFrame(&reply));
  ASSERT_EQ(reply.type, MsgType::kError);
  auto error = net::DecodeError(reply.payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, WireCode::kVersionMismatch);
  EXPECT_TRUE(raw.AwaitEof());
}

// The acceptance differential: 150 generated queries through the wire
// client must match the direct in-process result byte for byte, and every
// streamed batch must arrive internally sorted and disjoint from the rest.
TEST_F(NetTest, FuzzDifferential150QueriesMatchDirectExecution) {
  StartServer();
  net::Client client = Connected();
  Rng rng(20260808);
  QueryGen gen(&rng);
  int nonempty = 0;
  for (int i = 0; i < 150; ++i) {
    const std::string q = gen.Query();
    const std::string corpus = i % 3 == 0 ? "wsj" : "fuzz";
    Result<QueryResult> direct = db_->Query(corpus, q);

    std::vector<std::vector<Hit>> batches;
    Status streamed = client.QueryStream(
        corpus, q, [&batches](std::span<const Hit> rows) {
          batches.emplace_back(rows.begin(), rows.end());
        });

    if (!direct.ok()) {
      EXPECT_FALSE(streamed.ok()) << q;
      EXPECT_EQ(streamed.code(), direct.status().code()) << q;
      continue;
    }
    ASSERT_TRUE(streamed.ok()) << q << ": " << streamed.ToString();

    std::vector<Hit> reassembled;
    for (const std::vector<Hit>& batch : batches) {
      ASSERT_TRUE(std::is_sorted(batch.begin(), batch.end())) << q;
      reassembled.insert(reassembled.end(), batch.begin(), batch.end());
    }
    size_t streamed_rows = reassembled.size();
    std::sort(reassembled.begin(), reassembled.end());
    ASSERT_EQ(std::adjacent_find(reassembled.begin(), reassembled.end()),
              reassembled.end())
        << q << ": batches overlapped";
    EXPECT_EQ(reassembled, direct->hits) << q;
    EXPECT_EQ(streamed_rows, direct->hits.size()) << q;
    if (!direct->hits.empty()) ++nonempty;
  }
  // The generator must actually exercise the stream path.
  EXPECT_GT(nonempty, 20);
}

TEST_F(NetTest, PipelinedQueriesMultiplexOneConnection) {
  StartServer();
  net::Client client = Connected();
  Rng rng(7);
  QueryGen gen(&rng);
  std::vector<std::string> queries = {"//VP", "//NP//N", "//ZZZUNK"};
  for (int i = 0; i < 17; ++i) queries.push_back(gen.Query());

  std::vector<Result<QueryResult>> piped = client.Pipeline("fuzz", queries);
  ASSERT_EQ(piped.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryResult> direct = db_->Query("fuzz", queries[i]);
    ASSERT_EQ(piped[i].ok(), direct.ok()) << queries[i];
    if (direct.ok()) {
      QueryResult got = std::move(*piped[i]);
      got.Normalize();
      EXPECT_EQ(got.hits, direct->hits) << queries[i];
    }
  }
}

TEST_F(NetTest, PrepareWarmsThePlanCacheAndReportsErrors) {
  StartServer();
  net::Client client = Connected();
  EXPECT_TRUE(client.Prepare("fuzz", "//VP{/V-->N}").ok());
  // A prepared query executes as usual (now through the warmed cache).
  auto result = client.Query("fuzz", "//VP{/V-->N}");
  ASSERT_TRUE(result.ok());

  Status parse_error = client.Prepare("fuzz", "not a query ((");
  EXPECT_FALSE(parse_error.ok());
  EXPECT_TRUE(parse_error.IsInvalidArgument()) << parse_error.ToString();

  Status unknown = client.Prepare("nope", "//VP");
  EXPECT_TRUE(unknown.IsNotFound()) << unknown.ToString();

  // The connection survived all three outcomes.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(NetTest, ExecuteOnUnknownCorpusFailsCleanly) {
  StartServer();
  net::Client client = Connected();
  auto result = client.Query("nope", "//VP");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(NetTest, CancelIsBestEffortAndLeavesTheConnectionUsable) {
  StartServer();
  net::Client client = Connected();
  for (int i = 0; i < 8; ++i) {
    auto id = client.SendExecute("wsj", "//_[//_[//_]]");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(client.SendCancel(*id).ok());
    std::vector<Hit> rows;
    Status status = client.ReadResponse(*id, &rows);
    // The race is inherent: the cancel may land before, during or after
    // the query. Both terminal outcomes are legal; anything else is not.
    EXPECT_TRUE(status.ok() || status.IsCancelled()) << status.ToString();
  }
  auto after = client.Query("fuzz", "//VP");
  Result<QueryResult> direct = db_->Query("fuzz", "//VP");
  ASSERT_TRUE(after.ok() && direct.ok());
  QueryResult got = std::move(*after);
  got.Normalize();
  EXPECT_EQ(got.hits, direct->hits);
}

// Every corrupted frame must be answered with a clean connection-scoped
// ERROR and a close — and the server must keep serving new connections
// afterwards.
TEST_F(NetTest, MalformedFrameBattery) {
  StartServer();

  std::vector<uint8_t> valid;
  AppendFrame(MsgType::kExecute, 3, EncodeQuery({"fuzz", "//VP"}), &valid);

  enum class Abuse { kBadMagic, kBadType, kReserved, kChecksum, kOversized,
                     kServerOnlyType, kBeforeHello, kZeroRequestId };
  const Abuse kAbuses[] = {Abuse::kBadMagic,   Abuse::kBadType,
                           Abuse::kReserved,   Abuse::kChecksum,
                           Abuse::kOversized,  Abuse::kServerOnlyType,
                           Abuse::kBeforeHello, Abuse::kZeroRequestId};
  for (Abuse abuse : kAbuses) {
    SCOPED_TRACE(static_cast<int>(abuse));
    RawConn raw;
    ASSERT_TRUE(raw.Connect(server_->port()));
    if (abuse != Abuse::kBeforeHello) {
      ASSERT_TRUE(
          raw.WriteFrame(MsgType::kHello, 0, EncodeHello({})));
      Frame hello_reply;
      ASSERT_TRUE(raw.ReadFrame(&hello_reply));
      ASSERT_EQ(hello_reply.type, MsgType::kHello);
    }

    std::vector<uint8_t> bytes = valid;
    switch (abuse) {
      case Abuse::kBadMagic:
        bytes[1] = 'X';
        break;
      case Abuse::kBadType:
        bytes[4] = 111;
        break;
      case Abuse::kReserved:
        bytes[7] = 9;
        break;
      case Abuse::kChecksum:
        bytes[20] ^= 0x10;
        break;
      case Abuse::kOversized: {
        // A bare header declaring an absurd payload length.
        bytes.assign(valid.begin(), valid.begin() + net::kFrameHeaderBytes);
        bytes[12] = 0xFF;
        bytes[13] = 0xFF;
        bytes[14] = 0xFF;
        bytes[15] = 0x7F;
        break;
      }
      case Abuse::kServerOnlyType:
        bytes.clear();
        AppendFrame(MsgType::kStreamEnd, 3,
                    EncodeEnd({WireCode::kOk, "", 0}), &bytes);
        break;
      case Abuse::kBeforeHello:
      case Abuse::kZeroRequestId:
        bytes.clear();
        AppendFrame(MsgType::kExecute,
                    abuse == Abuse::kZeroRequestId ? 0 : 3,
                    EncodeQuery({"fuzz", "//VP"}), &bytes);
        break;
    }
    ASSERT_TRUE(raw.Write(bytes));

    Frame reply;
    ASSERT_TRUE(raw.ReadFrame(&reply));
    EXPECT_EQ(reply.type, MsgType::kError);
    EXPECT_EQ(reply.request_id, net::kConnectionRequestId);
    auto error = net::DecodeError(reply.payload);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->code, WireCode::kProtocolError);
    EXPECT_TRUE(raw.AwaitEof());
  }

  // The server is still alive and correct after the whole battery.
  net::Client client = Connected();
  auto result = client.Query("fuzz", "//VP");
  Result<QueryResult> direct = db_->Query("fuzz", "//VP");
  ASSERT_TRUE(result.ok() && direct.ok());
  QueryResult got = std::move(*result);
  got.Normalize();
  EXPECT_EQ(got.hits, direct->hits);
}

TEST_F(NetTest, MaxInflightZeroRefusesEveryExecute) {
  net::NetOptions options;
  options.max_inflight = 0;
  StartServer(options);
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  EXPECT_EQ(client.max_inflight(), 0u);
  auto result = client.Query("fuzz", "//VP");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  // Request-scoped refusal: the connection itself stays open.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(NetTest, MaxConnectionsRefusesTheSecondClient) {
  net::NetOptions options;
  options.max_connections = 1;
  StartServer(options);
  net::Client first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(first.Ping().ok());

  net::Client second;
  Status refused = second.Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(refused.ok());
  // The refusal arrives as a connection-scoped ERROR when the write/read
  // race allows; a reset (IOError) is also a refusal.
  EXPECT_TRUE(refused.IsResourceExhausted() || refused.IsIOError())
      << refused.ToString();

  // The first connection is unaffected.
  EXPECT_TRUE(first.Ping().ok());
}

TEST_F(NetTest, IdleConnectionsAreReaped) {
  net::NetOptions options;
  options.idle_timeout_ms = 50;
  options.poll_interval_ms = 10;
  StartServer(options);
  net::Client client = Connected();
  ASSERT_TRUE(client.Ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(client.Ping().ok());
  EXPECT_EQ(server_->stats().idle_closes, 1u);
}

TEST_F(NetTest, GracefulShutdownDrainsInFlightQueries) {
  StartServer();
  net::Client client = Connected();
  std::vector<uint32_t> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = client.SendExecute("wsj", "//_[//_]");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Frames dispatch in order, so once the *last* request has terminated,
  // every earlier one has been admitted — Stop() below is then draining
  // genuinely in-flight queries, not dropping unread ones.
  std::vector<Hit> last_rows;
  Status last = client.ReadResponse(ids.back(), &last_rows);
  EXPECT_TRUE(last.ok()) << last.ToString();
  ids.pop_back();
  // Stop() drains: every admitted query gets its terminal STREAM_END
  // (completed or cancelled by the shutdown) before the socket closes.
  server_->Stop();
  for (uint32_t id : ids) {
    std::vector<Hit> rows;
    Status status = client.ReadResponse(id, &rows);
    EXPECT_TRUE(status.ok() || status.IsCancelled()) << status.ToString();
  }
}

// A one-frame queue with one-row batches forces the producing worker to
// suspend on every row; the stream must still come out complete and exact.
TEST_F(NetTest, TinyStreamQueueBackpressuresWithoutCorruption) {
  net::NetOptions options;
  options.stream_queue_frames = 1;
  options.batch_rows = 1;
  StartServer(options);
  net::Client client = Connected();
  auto result = client.Query("wsj", "//_");
  Result<QueryResult> direct = db_->Query("wsj", "//_");
  ASSERT_TRUE(result.ok() && direct.ok());
  ASSERT_GT(direct->hits.size(), 500u);  // the stream was actually long
  QueryResult got = std::move(*result);
  got.Normalize();
  EXPECT_EQ(got.hits, direct->hits);
}

}  // namespace
}  // namespace lpath
