// Unit tests for the plan preparation stage (sql/optimizer.h): literal
// resolution, cardinality-driven join ordering, conjunct scheduling and
// orientation, subplan correlation analysis.

#include "sql/optimizer.h"

#include <gtest/gtest.h>

#include "lpath/engines.h"
#include "sql/parser.h"
#include "test_util.h"

namespace lpath {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : corpus_(testing::BuildFigure1Corpus()) {
    Result<NodeRelation> rel = NodeRelation::Build(corpus_);
    EXPECT_TRUE(rel.ok());
    rel_ = std::make_unique<NodeRelation>(std::move(rel).value());
  }

  std::unique_ptr<sql::PreparedPlan> Prepare(const std::string& sql_text,
                                             sql::ExecOptions opts = {}) {
    Result<ExecPlan> plan = sql::ParseSql(sql_text);
    EXPECT_TRUE(plan.ok()) << plan.status();
    Result<std::unique_ptr<sql::PreparedPlan>> pp =
        sql::Prepare(plan.value(), *rel_, opts);
    EXPECT_TRUE(pp.ok()) << pp.status();
    return std::move(pp).value();
  }

  Corpus corpus_;
  std::unique_ptr<NodeRelation> rel_;
};

TEST_F(OptimizerTest, UnknownNameShortCircuitsToEmpty) {
  auto pp = Prepare(
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE a.name = 'ZZZ'");
  EXPECT_TRUE(pp->always_empty);
}

TEST_F(OptimizerTest, UnknownNameInequalityIsNotEmpty) {
  auto pp = Prepare(
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE a.name != 'ZZZ'");
  EXPECT_FALSE(pp->always_empty);
}

TEST_F(OptimizerTest, UnknownLiteralInsideOrIsNotAlwaysEmpty) {
  // Regression: resolution used to write the top-level always_empty flag
  // from inside filter trees, emptying `... OR <satisfiable>` plans.
  auto pp = Prepare(
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE a.name = 'V' AND "
      "(a.value = 'zzz_unknown' OR a.left >= 0)");
  EXPECT_FALSE(pp->always_empty);
}

TEST_F(OptimizerTest, UnknownLiteralInsideNotIsNotAlwaysEmpty) {
  auto pp = Prepare(
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE a.name = 'NP' AND "
      "NOT (a.value = 'zzz_unknown')");
  EXPECT_FALSE(pp->always_empty);
}

TEST_F(OptimizerTest, LiteralFirstConjunctIsOriented) {
  // A hand-built plan spelled literal-first must be flipped column-first
  // at prepare time so HarvestFacts/StaticFacts see the name equality.
  ExecPlan plan;
  plan.num_vars = 1;
  plan.conjuncts.push_back(Conjunct{Operand::String("NP"), CmpOp::kEq,
                                    Operand::Column(0, PlanCol::kName)});
  Result<std::unique_ptr<sql::PreparedPlan>> pp =
      sql::Prepare(plan, *rel_, {});
  ASSERT_TRUE(pp.ok()) << pp.status();
  ASSERT_EQ(pp.value()->plan.conjuncts.size(), 1u);
  const Conjunct& c = pp.value()->plan.conjuncts[0];
  EXPECT_FALSE(c.lhs.is_literal());
  EXPECT_EQ(c.lhs.col, PlanCol::kName);
  EXPECT_TRUE(c.rhs.is_literal());
}

TEST_F(OptimizerTest, LiteralFirstOrderingOperatorIsMirrored) {
  // `5 < a.left` must become `a.left > 5`.
  ExecPlan plan;
  plan.num_vars = 1;
  plan.conjuncts.push_back(Conjunct{Operand::Number(5), CmpOp::kLt,
                                    Operand::Column(0, PlanCol::kLeft)});
  Result<std::unique_ptr<sql::PreparedPlan>> pp =
      sql::Prepare(plan, *rel_, {});
  ASSERT_TRUE(pp.ok()) << pp.status();
  const Conjunct& c = pp.value()->plan.conjuncts[0];
  EXPECT_FALSE(c.lhs.is_literal());
  EXPECT_EQ(c.lhs.col, PlanCol::kLeft);
  EXPECT_EQ(c.op, CmpOp::kGt);
  EXPECT_EQ(c.rhs.num, 5);
}

TEST_F(OptimizerTest, GreedyOrderAnchorsOnSmallestRun) {
  // S occurs once; NP four times; the wildcard var has no name. Greedy must
  // start from the S variable.
  auto pp = Prepare(
      "SELECT DISTINCT c.tid, c.id FROM nodes AS a, nodes AS b, nodes AS c "
      "WHERE a.name = 'NP' AND b.name = 'S' AND c.kind = 0 AND "
      "b.tid = a.tid AND c.tid = a.tid AND a.left >= b.left AND "
      "c.left >= a.right");
  ASSERT_EQ(pp->order.size(), 3u);
  EXPECT_EQ(pp->order[0], 1);  // the S variable
}

TEST_F(OptimizerTest, ValueEqualityWinsOverNames) {
  // The attribute variable with value='saw' (cardinality 1) must anchor.
  auto pp = Prepare(
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a, nodes AS b "
      "WHERE a.name = 'NP' AND b.value = 'saw' AND b.tid = a.tid");
  ASSERT_EQ(pp->order.size(), 2u);
  EXPECT_EQ(pp->order[0], 1);
}

TEST_F(OptimizerTest, LeftToRightModeKeepsPlanOrder) {
  sql::ExecOptions opts;
  opts.join_order = sql::ExecOptions::JoinOrder::kLeftToRight;
  auto pp = Prepare(
      "SELECT DISTINCT b.tid, b.id FROM nodes AS a, nodes AS b "
      "WHERE a.name = 'NP' AND b.name = 'S' AND b.tid = a.tid",
      opts);
  EXPECT_EQ(pp->order, std::vector<int>({0, 1}));
}

TEST_F(OptimizerTest, ConjunctsScheduledAtMaxPosition) {
  auto pp = Prepare(
      "SELECT DISTINCT b.tid, b.id FROM nodes AS a, nodes AS b "
      "WHERE a.name = 'S' AND b.name = 'NP' AND b.tid = a.tid AND "
      "b.left >= a.left");
  // Single-variable conjuncts land at that variable's position; the two
  // cross-variable conjuncts land at the later position (1).
  size_t at0 = pp->conjuncts_at[0].size();
  size_t at1 = pp->conjuncts_at[1].size();
  EXPECT_EQ(at0, 1u);  // the anchor's name test
  EXPECT_EQ(at1, 3u);  // the other name test + tid link + left bound
}

TEST_F(OptimizerTest, OrientationPutsLaterVarOnLhs) {
  auto pp = Prepare(
      "SELECT DISTINCT b.tid, b.id FROM nodes AS a, nodes AS b "
      "WHERE a.name = 'S' AND b.name = 'NP' AND a.tid = b.tid AND "
      "a.right <= b.left");
  // Whatever side the SQL wrote them on, conjuncts checkable at position 1
  // must have the position-1 variable on the left.
  const int late_var = pp->order[1];
  for (const Conjunct& c : pp->conjuncts_at[1]) {
    if (!c.lhs.is_literal() && !c.rhs.is_literal()) {
      EXPECT_EQ(c.lhs.var, late_var);
    }
  }
}

TEST_F(OptimizerTest, SubplanCorrelationIdentified) {
  auto pp = Prepare(
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE a.name = 'NP' AND "
      "EXISTS (SELECT 1 FROM nodes AS b WHERE b.tid = a.tid AND "
      "b.pid = a.id AND b.name = 'Det')");
  ASSERT_EQ(pp->plan.filters.size(), 1u);
  const BoolExpr* e = pp->plan.filters[0].get();
  ASSERT_TRUE(pp->subs.count(e));
  EXPECT_EQ(pp->sub_outer_var.at(e), 0);  // correlates on variable a
}

TEST_F(OptimizerTest, StringComparisonWithOrderingRejected) {
  Result<ExecPlan> plan = sql::ParseSql(
      "SELECT DISTINCT a.tid, a.id FROM nodes AS a WHERE a.name < 'NP'");
  ASSERT_TRUE(plan.ok());
  sql::ExecOptions opts;
  Result<std::unique_ptr<sql::PreparedPlan>> pp =
      sql::Prepare(plan.value(), *rel_, opts);
  EXPECT_TRUE(pp.status().IsNotSupported());
}

}  // namespace
}  // namespace lpath
