// Tests for the Penn Treebank bracketed-format reader/writer.

#include "tree/bracket_io.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tree/stats.h"

namespace lpath {
namespace {

TEST(BracketIoTest, ParseSimpleTree) {
  Corpus corpus;
  ASSERT_TRUE(
      ParseBracketText("(S (NP (DT The) (NN dog)) (VP (VBD barked)))", &corpus)
          .ok());
  ASSERT_EQ(corpus.size(), 1u);
  const Tree& t = corpus.tree(0);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(corpus.interner().name(t.name(t.root())), "S");
  EXPECT_TRUE(t.Validate().ok());
}

TEST(BracketIoTest, UnlabeledWrapperIsUnwrapped) {
  Corpus corpus;
  ASSERT_TRUE(ParseBracketText("( (S (NP (PRP I)) (VP (VBD saw))) )", &corpus)
                  .ok());
  ASSERT_EQ(corpus.size(), 1u);
  const Tree& t = corpus.tree(0);
  EXPECT_EQ(corpus.interner().name(t.name(t.root())), "S");
  EXPECT_EQ(t.size(), 5u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(BracketIoTest, WrapperWithMultipleChildrenBecomesTop) {
  Corpus corpus;
  ASSERT_TRUE(ParseBracketText("( (S (X a)) (S (Y b)) )", &corpus).ok());
  ASSERT_EQ(corpus.size(), 1u);
  const Tree& t = corpus.tree(0);
  EXPECT_EQ(corpus.interner().name(t.name(t.root())), "TOP");
  EXPECT_EQ(t.ChildCount(t.root()), 2);
}

TEST(BracketIoTest, WordBecomesLexAttr) {
  Corpus corpus;
  ASSERT_TRUE(ParseBracketText("(NN dog)", &corpus).ok());
  const Tree& t = corpus.tree(0);
  Symbol lex = corpus.Lookup("@lex");
  ASSERT_NE(lex, kNoSymbol);
  EXPECT_EQ(t.AttrValue(t.root(), lex), corpus.Lookup("dog"));
}

TEST(BracketIoTest, MultipleTreesInOneText) {
  Corpus corpus;
  ASSERT_TRUE(ParseBracketText("(S (X a))\n(S (Y b))\n\n(S (Z c))", &corpus)
                  .ok());
  EXPECT_EQ(corpus.size(), 3u);
}

TEST(BracketIoTest, PennEscapesAndOddTags) {
  Corpus corpus;
  ASSERT_TRUE(ParseBracketText(
                  "(S (NP-SBJ (-NONE- *T*-1)) (. .) (, ,) (PRP$ its))",
                  &corpus)
                  .ok());
  const Tree& t = corpus.tree(0);
  EXPECT_EQ(t.size(), 6u);  // S, NP-SBJ, -NONE-, ., ,, PRP$
  EXPECT_NE(corpus.Lookup("-NONE-"), kNoSymbol);
  EXPECT_NE(corpus.Lookup("."), kNoSymbol);
  EXPECT_NE(corpus.Lookup("PRP$"), kNoSymbol);
  EXPECT_NE(corpus.Lookup("*T*-1"), kNoSymbol);
}

TEST(BracketIoTest, Errors) {
  Corpus corpus;
  EXPECT_FALSE(ParseBracketText("(S (NP", &corpus).ok());          // unterminated
  EXPECT_FALSE(ParseBracketText("(S (NP dog cat))", &corpus).ok()); // two words
  EXPECT_FALSE(ParseBracketText("(S (NP dog (X y)))", &corpus).ok());  // mixed
  EXPECT_FALSE(ParseBracketText("(S (()))", &corpus).ok());  // inner unlabeled
}

TEST(BracketIoTest, RoundTripFigure1) {
  Corpus corpus = testing::BuildFigure1Corpus();
  std::string text = WriteBracketCorpus(corpus);
  EXPECT_EQ(text,
            "(S (NP I) (VP (V saw) (NP (NP (Det the) (Adj old) (N man)) "
            "(PP (Prep with) (NP (Det a) (N dog))))) (N today))\n");

  Corpus reparsed;
  ASSERT_TRUE(ParseBracketText(text, &reparsed).ok());
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(WriteBracketCorpus(reparsed), text);
}

TEST(BracketIoTest, RoundTripRandomCorpus) {
  Corpus corpus = testing::RandomCorpus(/*seed=*/99, /*trees=*/50);
  std::string text = WriteBracketCorpus(corpus);
  Corpus reparsed;
  ASSERT_TRUE(ParseBracketText(text, &reparsed).ok());
  ASSERT_EQ(reparsed.size(), corpus.size());
  EXPECT_EQ(WriteBracketCorpus(reparsed), text);
  EXPECT_EQ(reparsed.TotalNodes(), corpus.TotalNodes());
}

TEST(BracketIoTest, BracketCorpusSizeMatchesText) {
  Corpus corpus = testing::RandomCorpus(/*seed=*/123, /*trees=*/20);
  EXPECT_EQ(BracketCorpusSize(corpus), WriteBracketCorpus(corpus).size());
}

TEST(BracketIoTest, FileRoundTrip) {
  Corpus corpus = testing::BuildFigure1Corpus();
  const std::string path = ::testing::TempDir() + "/lpath_bracket_test.mrg";
  ASSERT_TRUE(SaveBracketFile(corpus, path).ok());
  Corpus loaded;
  ASSERT_TRUE(LoadBracketFile(path, &loaded).ok());
  EXPECT_EQ(WriteBracketCorpus(loaded), WriteBracketCorpus(corpus));
}

TEST(BracketIoTest, LoadMissingFileFails) {
  Corpus corpus;
  EXPECT_TRUE(LoadBracketFile("/nonexistent/nope.mrg", &corpus)
                  .IsIOError());
}

TEST(StatsTest, Figure1Stats) {
  Corpus corpus = testing::BuildFigure1Corpus();
  CorpusStats stats = ComputeStats(corpus);
  EXPECT_EQ(stats.tree_count, 1u);
  EXPECT_EQ(stats.node_count, 15u);
  EXPECT_EQ(stats.word_count, 9u);
  EXPECT_EQ(stats.max_depth, 6);
  // Tags: S, NP(4), VP, V, Det(2), Adj, N(3), PP, Prep — 9 unique.
  EXPECT_EQ(stats.unique_tags, 9u);
  ASSERT_FALSE(stats.tag_frequencies.empty());
  EXPECT_EQ(stats.tag_frequencies[0].first, "NP");
  EXPECT_EQ(stats.tag_frequencies[0].second, 4u);
  auto top2 = stats.TopTags(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[1].first, "N");
  EXPECT_EQ(top2[1].second, 3u);
  EXPECT_GT(stats.file_size_bytes, 0u);
}

}  // namespace
}  // namespace lpath
