// Persistent relation image tests: the Save→Open round trip must be
// *exact* (byte-identical columns, identical query results over the fuzz
// corpus), opening must perform no labeling/sorting (the load-path counter
// stays flat), corrupted/truncated/wrong-version images must fail with a
// clean Status (no crash — ASan runs this suite), and hot-swapping mapped
// snapshots under concurrent clients must be race-free (the `concurrency`
// label puts the hammer under TSan, covering the mapping's lifetime).

#include "storage/image.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "lpath/engines.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace lpath {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("lpathdb_image_") + info->test_suite_name() + "_" +
             info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }

  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

SnapshotPtr MustBuild(Corpus corpus, RelationOptions options = {}) {
  Result<SnapshotPtr> snap = CorpusSnapshot::Build(std::move(corpus), options);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return std::move(snap).value();
}

SnapshotPtr MustOpen(const std::string& path) {
  Result<SnapshotPtr> snap = CorpusSnapshot::Open(path);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return std::move(snap).value();
}

QueryResult MustRun(const NodeRelation& rel, const std::string& q) {
  LPathEngine engine(rel);
  Result<QueryResult> r = engine.Run(q);
  EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
  return r.ok() ? std::move(r).value() : QueryResult{};
}

/// Asserts that two relations answer identically through the whole
/// accessor surface — per-row columns, run directory, secondary orders,
/// value index, row lookup and the morsel statistics.
void ExpectSameRelation(const NodeRelation& a, const NodeRelation& b) {
  ASSERT_EQ(a.row_count(), b.row_count());
  ASSERT_EQ(a.tree_count(), b.tree_count());
  ASSERT_EQ(a.element_count(), b.element_count());
  ASSERT_EQ(a.scheme(), b.scheme());
  ASSERT_EQ(a.interner().end_id(), b.interner().end_id());
  for (Row r = 0; r < a.row_count(); ++r) {
    ASSERT_EQ(a.tid(r), b.tid(r)) << r;
    ASSERT_EQ(a.left(r), b.left(r)) << r;
    ASSERT_EQ(a.right(r), b.right(r)) << r;
    ASSERT_EQ(a.depth(r), b.depth(r)) << r;
    ASSERT_EQ(a.id(r), b.id(r)) << r;
    ASSERT_EQ(a.pid(r), b.pid(r)) << r;
    ASSERT_EQ(a.name(r), b.name(r)) << r;
    ASSERT_EQ(a.value(r), b.value(r)) << r;
    ASSERT_EQ(a.kind(r), b.kind(r)) << r;
  }
  for (Symbol s = 0; s < a.interner().end_id(); ++s) {
    ASSERT_EQ(a.run(s).begin, b.run(s).begin) << s;
    ASSERT_EQ(a.run(s).end, b.run(s).end) << s;
    const auto va = a.ValueRange(s);
    const auto vb = b.ValueRange(s);
    ASSERT_EQ(std::vector<Row>(va.begin(), va.end()),
              std::vector<Row>(vb.begin(), vb.end()))
        << s;
  }
  for (Symbol s = 1; s < a.interner().end_id(); ++s) {
    ASSERT_EQ(a.interner().name(s), b.interner().name(s)) << s;
  }
  for (int32_t t = 0; t < a.tree_count(); ++t) {
    ASSERT_EQ(a.TreeRowCount(t), b.TreeRowCount(t)) << t;
    ASSERT_EQ(a.TreeRowsBefore(t), b.TreeRowsBefore(t)) << t;
    const auto ea = a.ElementsOfTree(t);
    const auto eb = b.ElementsOfTree(t);
    ASSERT_EQ(std::vector<Row>(ea.begin(), ea.end()),
              std::vector<Row>(eb.begin(), eb.end()))
        << t;
    for (int32_t id = 1; id <= static_cast<int32_t>(ea.size()); ++id) {
      ASSERT_EQ(a.ElementRow(t, id), b.ElementRow(t, id));
      const auto aa = a.AttrRows(t, id);
      const auto ab = b.AttrRows(t, id);
      ASSERT_EQ(std::vector<Row>(aa.begin(), aa.end()),
                std::vector<Row>(ab.begin(), ab.end()));
    }
  }
}

TEST(ImageTest, RoundTripPreservesEveryColumnAndIndex) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(42, 60, 40));
  const std::string path = dir.File("roundtrip.img");
  ASSERT_TRUE(built->Save(path).ok());

  SnapshotPtr mapped = MustOpen(path);
  EXPECT_TRUE(mapped->image_backed());
  EXPECT_EQ(mapped->image_path(), path);
  EXPECT_TRUE(mapped->relation().mapped());
  EXPECT_FALSE(built->relation().mapped());
  EXPECT_EQ(mapped->corpus().size(), 0u);  // dictionary only, no trees
  ExpectSameRelation(built->relation(), mapped->relation());
}

TEST(ImageTest, RoundTripAnswersFuzzQueriesIdentically) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(7, 40, 36));
  const std::string path = dir.File("fuzz.img");
  ASSERT_TRUE(built->Save(path).ok());
  SnapshotPtr mapped = MustOpen(path);

  Rng rng(2024);
  testing::QueryGen gen(&rng);
  int non_empty = 0;
  for (int i = 0; i < 150; ++i) {
    const std::string q = gen.Query();
    LPathEngine a(built->relation());
    LPathEngine b(mapped->relation());
    Result<QueryResult> ra = a.Run(q);
    Result<QueryResult> rb = b.Run(q);
    ASSERT_EQ(ra.ok(), rb.ok()) << q;
    if (!ra.ok()) continue;
    ASSERT_EQ(ra.value(), rb.value()) << q;
    if (ra.value().count() > 0) ++non_empty;
  }
  EXPECT_GT(non_empty, 20);  // the differential must not be vacuous
}

TEST(ImageTest, XPathSchemeSurvivesTheRoundTrip) {
  TempDir dir;
  RelationOptions options;
  options.scheme = LabelScheme::kXPath;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(11, 12, 24), options);
  const std::string path = dir.File("xpath.img");
  ASSERT_TRUE(built->Save(path).ok());
  SnapshotPtr mapped = MustOpen(path);
  EXPECT_EQ(mapped->relation().scheme(), LabelScheme::kXPath);
  ExpectSameRelation(built->relation(), mapped->relation());
}

TEST(ImageTest, OpenPerformsNoLabelingOrSorting) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(3, 30, 30));
  const std::string path = dir.File("counter.img");
  ASSERT_TRUE(built->Save(path).ok());

  const uint64_t builds_before = NodeRelation::BuildCount();
  SnapshotPtr mapped = MustOpen(path);
  (void)MustRun(mapped->relation(), "//NP//_");
  EXPECT_EQ(NodeRelation::BuildCount(), builds_before)
      << "CorpusSnapshot::Open must not label or sort";

  // The same corpus built in memory does bump the counter (the counter is
  // live, so the zero-delta above is meaningful).
  SnapshotPtr rebuilt = MustBuild(testing::RandomCorpus(3, 30, 30));
  EXPECT_GT(NodeRelation::BuildCount(), builds_before);
}

TEST(ImageTest, ReloadOfImageBackedSnapshotReopensTheImage) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(5, 20, 30));
  const std::string path = dir.File("reload.img");
  ASSERT_TRUE(built->Save(path).ok());

  db::Database database;
  ASSERT_TRUE(database.OpenImage("img", path).ok());
  const QueryResult before = MustRun(database.snapshot("img")->relation(),
                                     "//VP");
  const uint64_t builds_before = NodeRelation::BuildCount();
  ASSERT_TRUE(database.Reload("img").ok());
  EXPECT_EQ(NodeRelation::BuildCount(), builds_before);
  EXPECT_TRUE(database.snapshot("img")->image_backed());
  Result<QueryResult> after = database.Query("img", "//VP");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before);
}

TEST(ImageTest, DatabaseOpenSniffsImagesAndSaveWritesThem) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(9, 25, 30));
  db::Database database;
  ASSERT_TRUE(database.Attach("src", built).ok());

  const std::string path = dir.File("sniff.img");
  ASSERT_TRUE(database.Save("src", path).ok());
  EXPECT_TRUE(database.Save("missing", path).IsNotFound());
  EXPECT_TRUE(LooksLikeImageFile(path));

  // The generic Open routes by magic, not by extension.
  ASSERT_TRUE(database.Open("via_open", path).ok());
  Result<QueryResult> a = database.Query("src", "//NP[@lex='dog']");
  Result<QueryResult> b = database.Query("via_open", "//NP[@lex='dog']");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());

  // A bracketed file still goes down the treebank path.
  EXPECT_FALSE(LooksLikeImageFile(dir.File("absent.img")));
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Format v2 (encoded columns) and v1 compatibility -----------------------

TEST(ImageTest, V1ImagesStillOpenAndAnswerIdentically) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(33, 50, 40));
  const std::string v1_path = dir.File("compat.v1.img");
  const std::string v2_path = dir.File("compat.v2.img");
  ImageSaveOptions v1_options;
  v1_options.format_version = 1;
  ASSERT_TRUE(built->Save(v1_path, v1_options).ok());
  ASSERT_TRUE(built->Save(v2_path).ok());

  SnapshotPtr v1 = MustOpen(v1_path);
  SnapshotPtr v2 = MustOpen(v2_path);
  EXPECT_FALSE(v1->relation().any_encoded());
  ExpectSameRelation(built->relation(), v1->relation());
  ExpectSameRelation(built->relation(), v2->relation());
  EXPECT_EQ(MustRun(v1->relation(), "//VP[//NP]"),
            MustRun(v2->relation(), "//VP[//NP]"));
}

TEST(ImageTest, V2EncodesColumnsAndShrinksTheFile) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(14, 80, 40));
  const std::string v1_path = dir.File("size.v1.img");
  const std::string v2_path = dir.File("size.v2.img");
  ImageSaveOptions v1_options;
  v1_options.format_version = 1;
  ASSERT_TRUE(built->Save(v1_path, v1_options).ok());
  ImageSaveStats stats;
  ASSERT_TRUE(built->Save(v2_path, {}, &stats).ok());

  // The clustered relation always compresses: name is a few runs, the
  // label columns bit-pack. Stats must agree with the files on disk.
  EXPECT_LT(fs::file_size(v2_path), fs::file_size(v1_path));
  EXPECT_EQ(stats.file_bytes, fs::file_size(v2_path));
  // raw_file_bytes is "this v2 file with every section verbatim", which is
  // the v1 payload plus the (larger) v2 section table.
  EXPECT_GE(stats.raw_file_bytes, fs::file_size(v1_path));
  EXPECT_GT(stats.raw_file_bytes, stats.file_bytes);
  ASSERT_EQ(stats.columns.size(), kRelColEncodable);
  bool any_encoded = false;
  for (const ImageSaveStats::Column& col : stats.columns) {
    EXPECT_LE(col.stored_bytes,
              col.encoding == ColumnEncoding::kRaw ? col.raw_bytes
                                                   : col.raw_bytes - 1);
    any_encoded |= col.encoding != ColumnEncoding::kRaw;
  }
  EXPECT_TRUE(any_encoded);

  SnapshotPtr mapped = MustOpen(v2_path);
  EXPECT_TRUE(mapped->relation().any_encoded());
}

TEST(ImageTest, ForcedRawV2MatchesAutoAnswers) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(77, 30, 30));
  const std::string raw_path = dir.File("forced.raw.img");
  ImageSaveOptions raw_options;
  raw_options.encoding = ImageEncoding::kRaw;
  ASSERT_TRUE(built->Save(raw_path, raw_options).ok());
  SnapshotPtr mapped = MustOpen(raw_path);
  EXPECT_FALSE(mapped->relation().any_encoded());
  ExpectSameRelation(built->relation(), mapped->relation());
}

TEST(ImageTest, HeaderOnlyVerifyOpensValidImages) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(50, 40, 36));
  const std::string path = dir.File("lazy.img");
  ASSERT_TRUE(built->Save(path).ok());

  ImageOpenOptions lazy;
  lazy.verify = ImageVerify::kHeaderOnly;
  Result<SnapshotPtr> mapped = CorpusSnapshot::Open(path, lazy);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectSameRelation(built->relation(), (*mapped)->relation());
}

TEST(ImageTest, HeaderOnlyVerifyStillRejectsStructuralDamage) {
  TempDir dir;
  SnapshotPtr built = MustBuild(testing::RandomCorpus(51, 30, 30));
  const std::string path = dir.File("lazy_victim.img");
  ASSERT_TRUE(built->Save(path).ok());
  std::vector<char> bytes = ReadAll(path);

  ImageOpenOptions lazy;
  lazy.verify = ImageVerify::kHeaderOnly;
  // Truncation breaks section bounds (and codec Validate) regardless of
  // the skipped payload-checksum scan.
  const std::string cut_path = dir.File("lazy_cut.img");
  WriteAll(cut_path, std::vector<char>(bytes.begin(),
                                       bytes.begin() +
                                           static_cast<long>(bytes.size() / 2)));
  EXPECT_FALSE(CorpusSnapshot::Open(cut_path, lazy).ok());
  // A header bit flip still fails: only the payload scan is skipped.
  std::vector<char> header_flip = bytes;
  header_flip[17] = static_cast<char>(header_flip[17] ^ 0x5a);
  const std::string flip_path = dir.File("lazy_flip.img");
  WriteAll(flip_path, header_flip);
  EXPECT_FALSE(CorpusSnapshot::Open(flip_path, lazy).ok());
}

TEST(ImageTest, EmptyCorpusRoundTrips) {
  TempDir dir;
  SnapshotPtr built = MustBuild(Corpus());
  const std::string path = dir.File("empty.img");
  ASSERT_TRUE(built->Save(path).ok());
  SnapshotPtr mapped = MustOpen(path);
  EXPECT_EQ(mapped->relation().row_count(), 0u);
  EXPECT_EQ(mapped->relation().tree_count(), 0);
  EXPECT_EQ(MustRun(mapped->relation(), "//NP").count(), 0u);
}

// --- Corruption resistance --------------------------------------------------

class ImageCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    snapshot_ = MustBuild(testing::RandomCorpus(21, 30, 30));
    path_ = dir_.File("victim.img");
    ASSERT_TRUE(snapshot_->Save(path_).ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 128u);
  }

  /// Expects Open to fail with a non-crashing error Status.
  void ExpectOpenFails(const std::string& path) {
    Result<SnapshotPtr> r = CorpusSnapshot::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsCorruption() || r.status().IsNotSupported() ||
                r.status().IsIOError())
        << r.status().ToString();
  }

  TempDir dir_;
  SnapshotPtr snapshot_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(ImageCorruptionTest, TruncationAtEveryRegionFailsCleanly) {
  const std::string path = dir_.File("truncated.img");
  // Mid-header, mid-section-table, mid-payload, one byte short.
  for (const size_t keep :
       {size_t{0}, size_t{5}, size_t{40}, size_t{200}, bytes_.size() / 2,
        bytes_.size() - 1}) {
    WriteAll(path, std::vector<char>(bytes_.begin(),
                                     bytes_.begin() + static_cast<long>(keep)));
    ExpectOpenFails(path);
  }
}

TEST_F(ImageCorruptionTest, BitFlipsAnywhereFailCleanly) {
  const std::string path = dir_.File("flipped.img");
  // Flip a byte in each region: header fields, section table, early
  // payload, middle payload (columns), and the final interner bytes.
  for (const size_t at :
       {size_t{9}, size_t{17}, size_t{33}, size_t{100}, size_t{300},
        bytes_.size() / 2, bytes_.size() - 2}) {
    std::vector<char> mutated = bytes_;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x5a);
    WriteAll(path, mutated);
    ExpectOpenFails(path);
  }
}

TEST_F(ImageCorruptionTest, WrongMagicAndVersionAreRejected) {
  const std::string path = dir_.File("wrong.img");
  {
    std::vector<char> mutated = bytes_;
    mutated[0] = 'X';
    WriteAll(path, mutated);
    Result<SnapshotPtr> r = CorpusSnapshot::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
    EXPECT_FALSE(LooksLikeImageFile(path));
  }
  {
    // Version field lives right after the 8-byte magic.
    std::vector<char> mutated = bytes_;
    mutated[8] = 99;
    WriteAll(path, mutated);
    Result<SnapshotPtr> r = CorpusSnapshot::Open(path);
    ASSERT_FALSE(r.ok());
    // Header checksum no longer matches, or (with a recomputed checksum)
    // the version gate fires; either way the message is clean.
  }
}

TEST_F(ImageCorruptionTest, MissingAndEmptyFilesAreRejected) {
  ExpectOpenFails(dir_.File("does_not_exist.img"));
  const std::string path = dir_.File("empty_file.img");
  WriteAll(path, {});
  ExpectOpenFails(path);
  EXPECT_FALSE(LooksLikeImageFile(path));
}

TEST_F(ImageCorruptionTest, BracketFileIsNotAnImage) {
  const std::string path = dir_.File("treebank.mrg");
  WriteAll(path, {'(', 'S', ' ', '(', 'N', 'P', ' ', 'x', ')', ')'});
  EXPECT_FALSE(LooksLikeImageFile(path));
  ExpectOpenFails(path);
}

// --- Mapped-snapshot hot swap under concurrency (TSan coverage) -------------

// Clients hammer Query()/QueryStream() against a corpus whose snapshot
// alternates between an in-memory build and freshly opened mmap images;
// retiring a mapped snapshot munmaps it, so this exercises exactly the
// "mapping must outlive every in-flight reader" contract. Results must
// always equal the (shared-corpus) expected answers.
TEST(ImageTest, MappedHotSwapHammerStaysConsistentAndSafe) {
  TempDir dir;
  Corpus corpus = testing::RandomCorpus(123, 40, 30);
  SnapshotPtr built = MustBuild(std::move(corpus));
  const std::string path = dir.File("hammer.img");
  ASSERT_TRUE(built->Save(path).ok());

  db::Database database;
  ASSERT_TRUE(database.Attach("x", built).ok());

  const std::vector<std::string> queries = {
      "//NP//_", "//VP[//N]", "//S", "//_[@lex='dog' or @lex='saw']"};
  std::vector<QueryResult> expected;
  for (const std::string& q : queries) {
    expected.push_back(MustRun(built->relation(), q));
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 40;
  constexpr int kSwaps = 40;
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds && !stop.load(); ++round) {
        const size_t qi = static_cast<size_t>(c + round) % queries.size();
        Result<QueryResult> r = database.Query("x", queries[qi]);
        if (!r.ok() || !(r.value() == expected[qi])) failures.fetch_add(1);
        QueryResult streamed;
        Status s = database.QueryStream(
            "x", queries[qi], [&streamed](std::span<const Hit> rows) {
              streamed.hits.insert(streamed.hits.end(), rows.begin(),
                                   rows.end());
            });
        streamed.Normalize();
        if (!s.ok() || !(streamed == expected[qi])) failures.fetch_add(1);
      }
    });
  }

  // Alternate mapped and built snapshots; each swapped-out mapped snapshot
  // unmaps once its last in-flight reader finishes.
  for (int i = 0; i < kSwaps; ++i) {
    if (i % 2 == 0) {
      SnapshotPtr mapped = MustOpen(path);
      ASSERT_TRUE(database.Swap("x", mapped).ok());
    } else {
      ASSERT_TRUE(database.Swap("x", built).ok());
    }
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(database.snapshot("x") != nullptr);
}

}  // namespace
}  // namespace lpath
