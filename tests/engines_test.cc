// Differential tests: the relational LPath engine (full LPath → SQL →
// parse → optimize → execute loop) must agree exactly with the navigational
// reference evaluator — on the Figure 1 tree, on random corpora, across a
// broad query battery, under every executor configuration, and (for the
// XPath-expressible fragment) under the XPath tag-position labeling too.

#include "lpath/engines.h"

#include <gtest/gtest.h>

#include "lpath/eval_nav.h"
#include "test_util.h"

namespace lpath {
namespace {

// Queries over the random-corpus tag alphabet (S, NP, VP, PP, N, V, Det,
// Adj, X, Y; words a, b, c, saw, dog, man, of, what, building). Mirrors the
// shapes of the paper's 23-query suite.
const char* kBattery[] = {
    "//S[//_[@lex=saw]]",
    "//V->NP",
    "//VP/V-->N",
    "//VP{/V-->N}",
    "//VP{/NP$}",
    "//VP{//NP$}",
    "//VP[{//^V->NP->PP$}]",
    "//S[//NP/Adj]",
    "//NP[not(//Det)]",
    "//NP[->PP[//X[@lex=of]]=>VP]",
    "//S[{//_[@lex=what]->_[@lex=building]}]",
    "//_[@lex=building]",
    "//NP/NP/NP",
    "//VP/VP/VP",
    "//PP=>X",
    "//NP=>NP=>NP",
    "//VP=>VP",
    "//X<--Y",
    "//X<-Y",
    "//N<==Det",
    "//N<=Det",
    "//Det\\NP",
    "//Det\\\\S",
    "//N\\ancestor::_",
    "//_$",
    "//^_",
    "//NP$",
    "//S//N",
    "//S/_/_",
    "//_[@lex!=saw]",
    "//NP[//Det and //Adj]",
    "//NP[//Det or //Adj]",
    "//NP[not(//Det) and not(//Adj)]",
    "//V/self::V",
    "//V/..",
    "//VP/descendant-or-self::VP",
    "//Det/ancestor-or-self::NP",
    "//V/following-or-self::N",
    "//N/preceding-or-self::V",
    "//V/following-sibling-or-self::_",
    "//V/preceding-sibling-or-self::_",
    "//_/@lex",
    "/S",
    "/_/_",
    "//S{//^_->_$}",
    "//NP{//Det->N}",
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

void CheckCorpus(const Corpus& corpus, uint64_t seed_for_msg) {
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  NavigationalEngine nav(corpus);
  LPathEngine::Options via_sql;
  via_sql.via_sql_text = true;
  LPathEngine::Options direct;
  direct.via_sql_text = false;
  LPathEngine::Options ltr;
  ltr.exec.join_order = sql::ExecOptions::JoinOrder::kLeftToRight;
  LPathEngine::Options naive;
  naive.exec.distinct_early_exit = false;
  LPathEngine::Options nested;
  nested.unnest_predicates = false;

  LPathEngine e_sql(rel.value(), via_sql);
  LPathEngine e_direct(rel.value(), direct);
  LPathEngine e_ltr(rel.value(), ltr);
  LPathEngine e_naive(rel.value(), naive);
  LPathEngine e_nested(rel.value(), nested);

  for (const char* q : kBattery) {
    Result<QueryResult> expected = nav.Run(q);
    ASSERT_TRUE(expected.ok()) << q << ": " << expected.status();
    for (const LPathEngine* engine :
         {&e_sql, &e_direct, &e_ltr, &e_naive, &e_nested}) {
      Result<QueryResult> got = engine->Run(q);
      ASSERT_TRUE(got.ok()) << q << ": " << got.status();
      EXPECT_EQ(got.value(), expected.value())
          << "query " << q << " seed " << seed_for_msg << " (expected "
          << expected->count() << " hits, got " << got->count() << ")";
    }
  }
}

TEST(EngineFigure1Test, MatchesNavigationalOnFigure1) {
  Corpus corpus = testing::BuildFigure1Corpus();
  CheckCorpus(corpus, 0);
}

TEST(EngineFigure1Test, UnknownWordInsideOrNotStillMatchesOtherLegs) {
  // Regression (LPath level): an unknown word inside an OR/NOT predicate
  // tree must not empty the whole query.
  Corpus corpus = testing::BuildFigure1Corpus();
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  NavigationalEngine nav(corpus);
  for (const char* q : {"//V[@lex='zzz_unknown' or @lex='saw']",
                        "//_[@lex='zzz_unknown' or @lex='saw']",
                        "//NP[not(@lex='zzz_unknown')]",
                        "//N[not(@lex='zzz_unknown' or @lex='man')]"}) {
    Result<QueryResult> got = engine.Run(q);
    Result<QueryResult> expected = nav.Run(q);
    ASSERT_TRUE(got.ok()) << q << " -> " << got.status();
    ASSERT_TRUE(expected.ok()) << q << " -> " << expected.status();
    EXPECT_EQ(got.value(), expected.value()) << q;
  }
  Result<QueryResult> saw = engine.Run("//V[@lex='zzz_unknown' or @lex='saw']");
  ASSERT_TRUE(saw.ok());
  EXPECT_EQ(saw->count(), 1u);
}

TEST_P(DifferentialTest, MatchesNavigationalOnRandomCorpora) {
  Corpus corpus = testing::RandomCorpus(GetParam(), /*trees=*/25,
                                        /*max_nodes=*/35);
  CheckCorpus(corpus, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(XPathLabelEngineTest, AgreesOnXPathFragment) {
  const char* kXPathQueries[] = {
      "//S[//_[@lex=saw]]", "//S[//NP/Adj]", "//NP[not(//Det)]",
      "//_[@lex=building]", "//NP/NP/NP",    "//VP/VP/VP",
      "//S//N",             "//S/_/_",       "//Det\\NP",
      "//VP/V-->N",         "//X<--Y",       "//N<==Det",
      "/S",                 "//_[@lex!=saw]",
  };
  for (uint64_t seed : {7u, 17u}) {
    Corpus corpus = testing::RandomCorpus(seed, /*trees=*/20);
    Result<NodeRelation> lrel = NodeRelation::Build(corpus);
    RelationOptions xopts;
    xopts.scheme = LabelScheme::kXPath;
    Result<NodeRelation> xrel = NodeRelation::Build(corpus, xopts);
    ASSERT_TRUE(lrel.ok());
    ASSERT_TRUE(xrel.ok());
    LPathEngine lpath(lrel.value());
    LPathEngine xpath(xrel.value());
    EXPECT_EQ(xpath.name(), "XPathLabel");
    for (const char* q : kXPathQueries) {
      Result<QueryResult> a = lpath.Run(q);
      Result<QueryResult> b = xpath.Run(q);
      ASSERT_TRUE(a.ok()) << q << ": " << a.status();
      ASSERT_TRUE(b.ok()) << q << ": " << b.status();
      EXPECT_EQ(a.value(), b.value()) << q << " seed " << seed;
    }
  }
}

TEST(XPathLabelEngineTest, RejectsLPathOnlyFeatures) {
  Corpus corpus = testing::BuildFigure1Corpus();
  RelationOptions xopts;
  xopts.scheme = LabelScheme::kXPath;
  Result<NodeRelation> xrel = NodeRelation::Build(corpus, xopts);
  ASSERT_TRUE(xrel.ok());
  LPathEngine xpath(xrel.value());
  EXPECT_TRUE(xpath.Run("//V->NP").status().IsNotSupported());
  EXPECT_TRUE(xpath.Run("//V=>NP").status().IsNotSupported());
  EXPECT_TRUE(xpath.Run("//VP{/NP$}").status().IsNotSupported());
}

TEST(EngineApiTest, TranslateToSqlIsStable) {
  Corpus corpus = testing::BuildFigure1Corpus();
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  Result<std::string> sql = engine.TranslateToSql("//VP{/V-->N}");
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("SELECT DISTINCT a2.tid, a2.id"), std::string::npos);
  EXPECT_NE(sql->find("a2.left >= a1.right"), std::string::npos);  // following
  EXPECT_NE(sql->find("a2.right <= a0.right"), std::string::npos);  // scope
}

TEST(EngineApiTest, RunWithStatsCountsWork) {
  Corpus corpus = testing::BuildFigure1Corpus();
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  sql::ExecStats stats;
  Result<QueryResult> r = engine.RunWithStats("//VP/V-->N", &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->count(), 3u);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GT(stats.bindings, 0u);
}

TEST(EngineApiTest, ParseErrorsPropagate) {
  Corpus corpus = testing::BuildFigure1Corpus();
  Result<NodeRelation> rel = NodeRelation::Build(corpus);
  ASSERT_TRUE(rel.ok());
  LPathEngine engine(rel.value());
  EXPECT_TRUE(engine.Run("garbage").status().IsInvalidArgument());
  EXPECT_TRUE(engine.Run("//VP/_[position()=1]").status().IsNotSupported());
}

}  // namespace
}  // namespace lpath
