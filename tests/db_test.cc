// db::Database tests: catalog management, per-corpus query routing, and —
// the part this suite runs under ThreadSanitizer for — hot-swapping a
// snapshot while concurrent clients hammer Query(). Every concurrent
// result must be consistent with either the pre-swap or the post-swap
// snapshot, and nothing may block or tear.

#include "db/database.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lpath/engines.h"
#include "test_util.h"

namespace lpath {
namespace {

SnapshotPtr MustBuild(Corpus corpus) {
  Result<SnapshotPtr> snap = CorpusSnapshot::Build(std::move(corpus));
  EXPECT_TRUE(snap.ok());
  return std::move(snap).value();
}

QueryResult MustRun(const NodeRelation& rel, const std::string& q) {
  LPathEngine engine(rel);
  Result<QueryResult> r = engine.Run(q);
  EXPECT_TRUE(r.ok()) << q;
  return std::move(r).value();
}

TEST(DatabaseTest, CatalogAttachQueryDetach) {
  db::Database database;
  ASSERT_TRUE(database.OpenCorpus("wsj", testing::RandomCorpus(1, 10)).ok());
  ASSERT_TRUE(database.OpenCorpus("swb", testing::RandomCorpus(2, 16)).ok());

  EXPECT_TRUE(database.Has("wsj"));
  EXPECT_FALSE(database.Has("brown"));
  EXPECT_EQ(database.CorpusNames(),
            (std::vector<std::string>{"swb", "wsj"}));  // sorted

  // Duplicate and invalid attaches are rejected.
  EXPECT_TRUE(
      database.OpenCorpus("wsj", testing::RandomCorpus(3, 4)).IsAlreadyExists());
  EXPECT_FALSE(database.Attach("", MustBuild(testing::RandomCorpus(4, 4))).ok());
  EXPECT_FALSE(database.Attach("x", nullptr).ok());

  // Routing: each corpus answers from its own snapshot.
  const std::string q = "//NP//_";
  Result<QueryResult> wsj = database.Query("wsj", q);
  Result<QueryResult> swb = database.Query("swb", q);
  ASSERT_TRUE(wsj.ok());
  ASSERT_TRUE(swb.ok());
  EXPECT_EQ(wsj.value(), MustRun(database.snapshot("wsj")->relation(), q));
  EXPECT_EQ(swb.value(), MustRun(database.snapshot("swb")->relation(), q));

  // Unknown names are NotFound everywhere.
  EXPECT_TRUE(database.Query("brown", q).status().IsNotFound());
  EXPECT_TRUE(database.Submit("brown", q).status().IsNotFound());
  EXPECT_TRUE(database.Swap("brown", database.snapshot("wsj")).IsNotFound());
  EXPECT_TRUE(database.Reload("brown").IsNotFound());
  EXPECT_EQ(database.snapshot("brown"), nullptr);
  EXPECT_EQ(database.service("brown"), nullptr);

  // List reports real sizes.
  std::vector<db::CorpusInfo> infos = database.List();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "swb");
  EXPECT_EQ(infos[1].name, "wsj");
  EXPECT_GT(infos[0].trees, 0u);
  EXPECT_GT(infos[1].nodes, 0u);
  EXPECT_GT(infos[1].relation_bytes, 0u);

  ASSERT_TRUE(database.Detach("swb").ok());
  EXPECT_TRUE(database.Detach("swb").IsNotFound());
  EXPECT_TRUE(database.Query("swb", q).status().IsNotFound());
  EXPECT_TRUE(database.Has("wsj"));
}

TEST(DatabaseTest, SwapPublishesADifferentCorpus) {
  db::Database database;
  SnapshotPtr a = MustBuild(testing::RandomCorpus(100, 8, 20));
  SnapshotPtr b = MustBuild(testing::RandomCorpus(200, 24, 30));
  ASSERT_TRUE(database.Attach("x", a).ok());

  const std::string q = "//NP//_";
  const QueryResult expected_a = MustRun(a->relation(), q);
  const QueryResult expected_b = MustRun(b->relation(), q);
  ASSERT_NE(expected_a, expected_b) << "corpora too similar for the test";

  Result<QueryResult> before = database.Query("x", q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value(), expected_a);

  ASSERT_TRUE(database.Swap("x", b).ok());
  EXPECT_EQ(database.snapshot("x")->id(), b->id());
  Result<QueryResult> after = database.Query("x", q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), expected_b);

  // The swapped-out snapshot is untouched and still directly queryable.
  EXPECT_EQ(MustRun(a->relation(), q), expected_a);
}

TEST(DatabaseTest, ReloadRebuildsInPlace) {
  db::Database database;
  ASSERT_TRUE(database.OpenCorpus("x", testing::RandomCorpus(300, 12)).ok());
  const uint64_t id_before = database.snapshot("x")->id();
  const std::string q = "//VP[//N]";
  Result<QueryResult> before = database.Query("x", q);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(database.Reload("x").ok());
  EXPECT_NE(database.snapshot("x")->id(), id_before);
  Result<QueryResult> after = database.Query("x", q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before.value());  // same corpus, same answers
}

TEST(DatabaseTest, SubmitAndStreamRouteLikeQuery) {
  db::Database database;
  ASSERT_TRUE(database.OpenCorpus("x", testing::RandomCorpus(400, 18, 26)).ok());
  const std::string q = "//NP//_";
  Result<QueryResult> sync = database.Query("x", q);
  ASSERT_TRUE(sync.ok());

  Result<service::PendingQuery> pending = database.Submit("x", q);
  ASSERT_TRUE(pending.ok());
  Result<QueryResult> async = pending->Get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async.value(), sync.value());

  QueryResult streamed;
  Status s = database.QueryStream("x", q, [&streamed](std::span<const Hit> rows) {
    streamed.hits.insert(streamed.hits.end(), rows.begin(), rows.end());
  });
  ASSERT_TRUE(s.ok());
  streamed.Normalize();
  EXPECT_EQ(streamed, sync.value());
}

TEST(DatabaseTest, SetServiceOptionsKeepsSnapshotsAndAnswers) {
  db::Database database;
  ASSERT_TRUE(database.OpenCorpus("x", testing::RandomCorpus(500, 10)).ok());
  const uint64_t id = database.snapshot("x")->id();
  const std::string q = "//NP";
  Result<QueryResult> before = database.Query("x", q);
  ASSERT_TRUE(before.ok());

  service::QueryServiceOptions opts = database.options().service;
  opts.threads = 2;
  database.SetServiceOptions(opts);
  EXPECT_EQ(database.service("x")->threads(), 2);
  EXPECT_EQ(database.snapshot("x")->id(), id);  // snapshot survived
  Result<QueryResult> after = database.Query("x", q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before.value());
}

// The hot-swap satellite: N clients hammer Query() while the main thread
// republishes alternating snapshots. Every result must match exactly the
// old or the new snapshot's answer (no blend, no tear, no use-after-free —
// the latter is what TSan/ASan verify when CI runs this suite).
TEST(DatabaseTest, HotSwapUnderConcurrentQueriesStaysConsistent) {
  db::Database database;
  SnapshotPtr a = MustBuild(testing::RandomCorpus(600, 10, 24));
  SnapshotPtr b = MustBuild(testing::RandomCorpus(700, 26, 30));
  ASSERT_TRUE(database.Attach("x", a).ok());

  const std::vector<std::string> queries = {"//NP//_", "//VP[//N]", "//S",
                                            "//_[@lex='dog' or @lex='saw']"};
  std::vector<QueryResult> expected_a, expected_b;
  for (const std::string& q : queries) {
    expected_a.push_back(MustRun(a->relation(), q));
    expected_b.push_back(MustRun(b->relation(), q));
  }
  // At least one query must distinguish the snapshots, or the consistency
  // check would be vacuous.
  ASSERT_NE(expected_a, expected_b);

  constexpr int kClients = 4;
  constexpr int kRounds = 40;
  constexpr int kSwaps = 60;
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds && !stop.load(); ++round) {
        const size_t qi = static_cast<size_t>(c + round) % queries.size();
        Result<QueryResult> r = database.Query("x", queries[qi]);
        const bool consistent =
            r.ok() && (r.value() == expected_a[qi] || r.value() == expected_b[qi]);
        if (!consistent) failures.fetch_add(1);
        // Exercise the streaming path under swaps too.
        QueryResult streamed;
        Status s = database.QueryStream(
            "x", queries[qi], [&streamed](std::span<const Hit> rows) {
              streamed.hits.insert(streamed.hits.end(), rows.begin(),
                                   rows.end());
            });
        streamed.Normalize();
        if (!s.ok() ||
            !(streamed == expected_a[qi] || streamed == expected_b[qi])) {
          failures.fetch_add(1);
        }
      }
    });
  }

  for (int i = 0; i < kSwaps; ++i) {
    ASSERT_TRUE(database.Swap("x", (i % 2 == 0) ? b : a).ok());
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles the published snapshot answers consistently.
  const SnapshotPtr final_snap = database.snapshot("x");
  const std::vector<QueryResult>& expected =
      final_snap->id() == a->id() ? expected_a : expected_b;
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryResult> r = database.Query("x", queries[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), expected[i]) << queries[i];
  }
}

}  // namespace
}  // namespace lpath
