// Async/streaming differential tests: rows streamed per shard, once
// collected, must be bit-identical to the synchronous Query() result (and
// to the serial reference engine) over the fuzz corpus; Submit() handles
// must resolve to the same results. This suite runs under ThreadSanitizer
// in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lpath/engines.h"
#include "service/query_service.h"
#include "test_util.h"

namespace lpath {
namespace {

using testing::QueryGen;

class ServiceStreamTest : public ::testing::Test {
 protected:
  ServiceStreamTest() {
    Result<SnapshotPtr> snap =
        CorpusSnapshot::Build(testing::RandomCorpus(4242, 24, 30));
    EXPECT_TRUE(snap.ok());
    snap_ = std::move(snap).value();
    serial_ = std::make_unique<LPathEngine>(snap_->relation());
  }

  std::unique_ptr<service::QueryService> MakeService(
      service::QueryServiceOptions opts = {}) {
    return std::make_unique<service::QueryService>(snap_, opts);
  }

  SnapshotPtr snap_;
  std::unique_ptr<LPathEngine> serial_;
};

TEST_F(ServiceStreamTest, StreamedRowsEqualSynchronousResults) {
  service::QueryServiceOptions opts;
  opts.threads = 4;
  opts.adaptive_serial_rows = 0;  // force fan-out so shards really stream
  auto service = MakeService(opts);
  Rng rng(99);
  QueryGen gen(&rng);
  for (int i = 0; i < 120; ++i) {
    const std::string q = gen.Query();
    std::vector<std::vector<Hit>> batches;
    Status s = service->QueryStream(q, [&batches](std::span<const Hit> rows) {
      batches.emplace_back(rows.begin(), rows.end());
    });
    ASSERT_TRUE(s.ok()) << q << " -> " << s;

    // Delivery contract: batches internally sorted, disjoint across the
    // stream, never empty.
    std::set<Hit> seen;
    QueryResult streamed;
    for (const std::vector<Hit>& batch : batches) {
      ASSERT_FALSE(batch.empty()) << q;
      ASSERT_TRUE(std::is_sorted(batch.begin(), batch.end())) << q;
      for (const Hit& h : batch) {
        ASSERT_TRUE(seen.insert(h).second) << "duplicate row streamed: " << q;
        streamed.hits.push_back(h);
      }
    }
    streamed.Normalize();

    Result<QueryResult> sync = service->Query(q);
    Result<QueryResult> expected = serial_->Run(q);
    ASSERT_TRUE(sync.ok()) << q;
    ASSERT_TRUE(expected.ok()) << q;
    ASSERT_EQ(streamed, sync.value()) << "query: " << q;
    ASSERT_EQ(streamed, expected.value()) << "query: " << q;
  }
}

TEST_F(ServiceStreamTest, StreamingReportsErrorsWithoutRows) {
  auto service = MakeService();
  int batches = 0;
  Status s = service->QueryStream("///[[",
                                  [&batches](std::span<const Hit>) { ++batches; });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(batches, 0);
}

TEST_F(ServiceStreamTest, SubmittedQueriesResolveToSynchronousResults) {
  service::QueryServiceOptions opts;
  opts.threads = 4;
  auto service = MakeService(opts);
  Rng rng(555);
  QueryGen gen(&rng);
  std::vector<std::string> queries;
  std::vector<service::PendingQuery> pending;
  for (int i = 0; i < 50; ++i) {
    queries.push_back(gen.Query());
    pending.push_back(service->Submit(queries.back()));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<QueryResult> got = pending[i].Get();
    Result<QueryResult> expected = serial_->Run(queries[i]);
    ASSERT_TRUE(got.ok()) << queries[i] << " -> " << got.status();
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(got.value(), expected.value()) << "query: " << queries[i];
    EXPECT_TRUE(pending[i].ready());  // resolved handles stay readable
  }
}

TEST_F(ServiceStreamTest, SubmitWithSinkStreamsAndResolves) {
  service::QueryServiceOptions opts;
  opts.threads = 4;
  opts.adaptive_serial_rows = 0;
  auto service = MakeService(opts);
  const std::string q = "//NP//_";
  QueryResult streamed;
  service::PendingQuery pending =
      service->Submit(q, [&streamed](std::span<const Hit> rows) {
        streamed.hits.insert(streamed.hits.end(), rows.begin(), rows.end());
      });
  Result<QueryResult> got = pending.Get();  // also fences the sink writes
  ASSERT_TRUE(got.ok());
  streamed.Normalize();
  EXPECT_EQ(streamed, got.value());
  Result<QueryResult> expected = serial_->Run(q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(got.value(), expected.value());
}

TEST_F(ServiceStreamTest, SubmittedErrorsSurfaceThroughTheHandle) {
  auto service = MakeService();
  service::PendingQuery bad = service->Submit("///[[");
  Result<QueryResult> r = bad.Get();
  EXPECT_FALSE(r.ok());

  service::PendingQuery empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.ready());
  EXPECT_TRUE(empty.Get().status().IsInvalidArgument());
}

TEST_F(ServiceStreamTest, HandlesOutliveTheService) {
  // Queued tasks are drained by the pool destructor; a handle held past
  // service destruction must still resolve.
  service::PendingQuery pending;
  Result<QueryResult> expected = serial_->Run("//VP[//N]");
  ASSERT_TRUE(expected.ok());
  {
    auto service = MakeService();
    pending = service->Submit("//VP[//N]");
  }
  Result<QueryResult> got = pending.Get();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), expected.value());
}

}  // namespace
}  // namespace lpath
