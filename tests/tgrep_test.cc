// Tests for the TGrep2-style baseline: pattern parsing, the compiled corpus
// image (incl. binary save/load), the matcher on the Figure 1 tree, and
// agreement with the LPath engine on translated queries.

#include "tgrep/engine.h"

#include <gtest/gtest.h>

#include <fstream>

#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "test_util.h"
#include "tgrep/parser.h"
#include "tree/bracket_io.h"

namespace lpath {
namespace {

using tgrep::ParsePattern;
using tgrep::Pattern;
using tgrep::RelOp;
using tgrep::TGrep2Engine;
using tgrep::TgrepCorpus;

TEST(TgrepParserTest, NodeSpecs) {
  auto p = ParsePattern("NP");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->spec.kind, tgrep::NodeSpec::Kind::kLiteral);
  ASSERT_EQ((*p)->spec.alts.size(), 1u);
  EXPECT_EQ((*p)->spec.alts[0], "NP");

  p = ParsePattern("NP|PP|VP");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->spec.alts.size(), 3u);

  p = ParsePattern("__");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->spec.kind, tgrep::NodeSpec::Kind::kAny);

  p = ParsePattern("/^NP/");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->spec.kind, tgrep::NodeSpec::Kind::kRegex);

  p = ParsePattern("NP=x < =x");  // silly but grammatical
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->spec.bind_name, "x");
}

TEST(TgrepParserTest, Relations) {
  auto p = ParsePattern("NP < VP << N > S >> X <, A <- B <: C <2 D <-2 E");
  ASSERT_TRUE(p.ok()) << p.status();
  p = ParsePattern("NP . VP , N .. X ,, Y $ Z $. W $, V $.. U $,, T");
  ASSERT_TRUE(p.ok()) << p.status();
  p = ParsePattern("NP <<, VB <<- PP >>, S >>- S2");
  ASSERT_TRUE(p.ok()) << p.status();
  p = ParsePattern("NP !<< JJ");
  ASSERT_TRUE(p.ok()) << p.status();
  p = ParsePattern("NP [< VP | < PP] & !< X");
  ASSERT_TRUE(p.ok()) << p.status();
  p = ParsePattern("NP < (VP << (IN < of))");
  ASSERT_TRUE(p.ok()) << p.status();
}

TEST(TgrepParserTest, Errors) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("NP <").ok());
  EXPECT_FALSE(ParsePattern("NP < (VP").ok());
  EXPECT_FALSE(ParsePattern("NP [< VP").ok());
  EXPECT_FALSE(ParsePattern("/unterminated").ok());
  EXPECT_FALSE(ParsePattern("NP <0 VP").ok());
  // "=x < NP" parses (backref head); the matcher rejects it at Run time —
  // covered by TgrepFigure1Test.HeadBackrefRejected.
  EXPECT_TRUE(ParsePattern("=x < NP").ok());
}

class TgrepFigure1Test : public ::testing::Test {
 protected:
  TgrepFigure1Test()
      : corpus_(testing::BuildFigure1Corpus()), engine_(corpus_) {}

  std::vector<int32_t> Ids(const std::string& pattern) {
    Result<QueryResult> r = engine_.Run(pattern);
    EXPECT_TRUE(r.ok()) << pattern << " -> " << r.status();
    std::vector<int32_t> ids;
    if (r.ok()) {
      for (const Hit& h : r->hits) ids.push_back(h.id);
    }
    return ids;
  }

  Corpus corpus_;
  TGrep2Engine engine_;
};

using V = std::vector<int32_t>;

TEST_F(TgrepFigure1Test, WordsAreLeafNodes) {
  // "saw" matches the word leaf; its elem_id maps to the V pre-terminal (4).
  EXPECT_EQ(Ids("saw"), V({4}));
  EXPECT_EQ(Ids("V < saw"), V({4}));
  EXPECT_EQ(Ids("__ < saw"), V({4}));
}

TEST_F(TgrepFigure1Test, DominanceRelations) {
  EXPECT_EQ(Ids("S << saw"), V({1}));
  EXPECT_EQ(Ids("NP < Det"), V({6, 12}));
  EXPECT_EQ(Ids("Det > NP"), V({7, 13}));
  EXPECT_EQ(Ids("VP << Det"), V({3}));
  EXPECT_EQ(Ids("Det >> VP"), V({7, 13}));
  EXPECT_EQ(Ids("NP !<< Det"), V({2}));
}

TEST_F(TgrepFigure1Test, ChildOrdinals) {
  EXPECT_EQ(Ids("NP <2 Adj"), V({6}));   // NP7's 2nd child is Adj
  EXPECT_EQ(Ids("NP <-1 N"), V({6, 12}));
  EXPECT_EQ(Ids("NP <, Det"), V({6, 12}));
  EXPECT_EQ(Ids("NP <- N"), V({6, 12}));
  EXPECT_EQ(Ids("Adj >2 NP"), V({8}));
  EXPECT_EQ(Ids("N >- NP"), V({9, 14}));
  // Only-child: VP's V? VP has two children. NP(I)'s word is an only child.
  EXPECT_EQ(Ids("NP <: I"), V({2}));
}

TEST_F(TgrepFigure1Test, AdjacencyMatchesLPathImmediateFollowing) {
  // Q2-style: NP immediately after V — NP6 and NP7.
  EXPECT_EQ(Ids("NP , V"), V({5, 6}));
  // And the mirror: V immediately precedes NP.
  EXPECT_EQ(Ids("V . NP"), V({4}));
  // Precedes / follows.
  EXPECT_EQ(Ids("N ,, V"), V({9, 14, 15}));
  EXPECT_EQ(Ids("NP .. N"), V({2, 5, 6, 12}));
}

TEST_F(TgrepFigure1Test, Sisters) {
  EXPECT_EQ(Ids("NP $ VP"), V({2}));
  EXPECT_EQ(Ids("VP $, NP"), V({3}));   // VP immediately follows sister NP
  EXPECT_EQ(Ids("NP $. VP"), V({2}));
  EXPECT_EQ(Ids("N $,, NP"), V({15}));  // N(today) follows sister NP(I)
  EXPECT_EQ(Ids("Det $.. N"), V({7, 13}));
}

TEST_F(TgrepFigure1Test, EdgeDescendants) {
  // Leftmost descendants of VP: V and the word "saw" (maps to 4).
  EXPECT_EQ(Ids("VP <<, V"), V({3}));
  EXPECT_EQ(Ids("V >>, VP"), V({4}));
  // Rightmost descendant chain of VP: NP6, PP, NP12, N(dog), dog.
  EXPECT_EQ(Ids("NP >>- VP"), V({5, 12}));
  EXPECT_EQ(Ids("VP <<- N"), V({3}));
}

TEST_F(TgrepFigure1Test, BackrefsExpressScoping) {
  // Q4-style: N following V within the same VP.
  EXPECT_EQ(Ids("N=n ,, (V > (VP << =n))"), V({9, 14}));
  // Without the scope link: all three following Ns.
  EXPECT_EQ(Ids("N ,, (V > VP)"), V({9, 14, 15}));
}

TEST_F(TgrepFigure1Test, Q7ShapeWithBindings) {
  // VP spanned exactly by V NP: leftmost descendant V, adjacent NP,
  // rightmost descendant of the *same* VP (via binding).
  EXPECT_EQ(Ids("VP=v <<, (V . (NP >>- =v))"), V({3}));
}

TEST_F(TgrepFigure1Test, AlternationAndBoolean) {
  EXPECT_EQ(Ids("Det|Prep"), V({7, 11, 13}));
  EXPECT_EQ(Ids("NP [< Det | < Prep]"), V({6, 12}));
  EXPECT_EQ(Ids("NP < Det & < Adj"), V({6}));
  EXPECT_EQ(Ids("NP < Det !< Adj"), V({12}));
}

TEST_F(TgrepFigure1Test, HeadBackrefRejected) {
  EXPECT_TRUE(engine_.Run("=x < NP").status().IsInvalidArgument());
}

TEST(TgrepCorpusTest, BuildStructure) {
  Corpus corpus = testing::BuildFigure1Corpus();
  TgrepCorpus tc = TgrepCorpus::Build(corpus);
  ASSERT_EQ(tc.size(), 1u);
  // 15 elements + 9 word leaves.
  EXPECT_EQ(tc.tree(0).size(), 24u);
  EXPECT_TRUE(tc.Validate().ok());
  // Element intervals must match the LPath labeling (S spans [1,10)).
  EXPECT_EQ(tc.tree(0).left[0], 1);
  EXPECT_EQ(tc.tree(0).right[0], 10);
}

TEST(TgrepCorpusTest, LabelIndex) {
  Corpus corpus;
  ASSERT_TRUE(ParseBracketText("(S (NP (N dog)))\n(S (VP (V ran)))", &corpus)
                  .ok());
  TgrepCorpus tc = TgrepCorpus::Build(corpus);
  const Symbol dog = tc.Lookup("dog");
  ASSERT_NE(dog, kNoSymbol);
  EXPECT_EQ(tc.TreesWithLabel(dog), std::vector<int32_t>({0}));
  const Symbol s = tc.Lookup("S");
  EXPECT_EQ(tc.TreesWithLabel(s), std::vector<int32_t>({0, 1}));
  EXPECT_TRUE(tc.TreesWithLabel(kNoSymbol).empty());
}

TEST(TgrepCorpusTest, SaveLoadRoundTrip) {
  Corpus corpus = testing::RandomCorpus(/*seed=*/3, /*trees=*/20);
  TgrepCorpus tc = TgrepCorpus::Build(corpus);
  const std::string path = ::testing::TempDir() + "/lpath_tgrep_test.ltg2";
  ASSERT_TRUE(tc.Save(path).ok());
  Result<TgrepCorpus> loaded = TgrepCorpus::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), tc.size());
  for (size_t i = 0; i < tc.size(); ++i) {
    EXPECT_EQ(loaded->tree(i).label, tc.tree(i).label);
    EXPECT_EQ(loaded->tree(i).left, tc.tree(i).left);
    EXPECT_EQ(loaded->tree(i).elem_id, tc.tree(i).elem_id);
  }
  // Engines over the original and the loaded image agree.
  TGrep2Engine a(std::move(tc));
  TGrep2Engine b(std::move(loaded).value());
  Result<QueryResult> ra = a.Run("NP << saw");
  Result<QueryResult> rb = b.Run("NP << saw");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value(), rb.value());
}

TEST(TgrepCorpusTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/lpath_tgrep_garbage";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a corpus image";
  }
  EXPECT_TRUE(TgrepCorpus::Load(path).status().IsCorruption());
  EXPECT_TRUE(TgrepCorpus::Load("/nonexistent/x").status().IsIOError());
}

// Differential: TGrep2 translations of LPath queries agree with the LPath
// engine on random corpora (head = LPath output node).
TEST(TgrepDifferentialTest, AgreesWithLPathOnTranslations) {
  struct Pair {
    const char* lpath;
    const char* tgrep;
  };
  const Pair kPairs[] = {
      // In the TGrep2 model words are leaf *nodes*, so "S << saw" also
      // matches an S pre-terminal carrying the word itself; the exact LPath
      // equivalent includes the @lex test on the context node.
      {"//S[@lex=saw or //_[@lex=saw]]", "S << saw"},
      {"//V->NP", "NP , V"},
      {"//VP/V-->N", "N ,, (V > VP)"},
      {"//VP{/V-->N}", "N=n ,, (V > (VP << =n))"},
      {"//VP{/NP$}", "NP >- VP"},
      {"//VP{//NP$}", "NP >>- VP"},
      {"//NP[not(//Det)]", "NP !<< Det"},
      {"//NP/NP/NP", "NP > (NP > NP)"},
      {"//PP=>X", "X $, PP"},
      {"//NP=>NP=>NP", "NP $, (NP $, NP)"},
      {"//S//N", "N >> S"},
      {"//Det\\NP", "NP < Det"},
  };
  for (uint64_t seed : {5u, 15u, 25u}) {
    Corpus corpus = testing::RandomCorpus(seed, /*trees=*/25);
    Result<NodeRelation> rel = NodeRelation::Build(corpus);
    ASSERT_TRUE(rel.ok());
    LPathEngine lpath(rel.value());
    TGrep2Engine tg(corpus);
    for (const Pair& pair : kPairs) {
      Result<QueryResult> a = lpath.Run(pair.lpath);
      Result<QueryResult> b = tg.Run(pair.tgrep);
      ASSERT_TRUE(a.ok()) << pair.lpath << ": " << a.status();
      ASSERT_TRUE(b.ok()) << pair.tgrep << ": " << b.status();
      EXPECT_EQ(a.value(), b.value())
          << pair.lpath << " vs " << pair.tgrep << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace lpath
