// Unit tests for the common module: Status/Result, Interner, Rng, string
// helpers.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/interner.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace lpath {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad query");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  LPATH_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 21);
  EXPECT_EQ(*ok, 21);

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err = Doubled(0);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(InternerTest, InternIsIdempotent) {
  Interner in;
  Symbol a = in.Intern("NP");
  Symbol b = in.Intern("VP");
  EXPECT_NE(a, kNoSymbol);
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("NP"), a);
  EXPECT_EQ(in.name(a), "NP");
  EXPECT_EQ(in.name(b), "VP");
  EXPECT_EQ(in.size(), 2u);
}

TEST(InternerTest, LookupDoesNotInsert) {
  Interner in;
  EXPECT_EQ(in.Lookup("missing"), kNoSymbol);
  EXPECT_EQ(in.size(), 0u);
  Symbol a = in.Intern("x");
  EXPECT_EQ(in.Lookup("x"), a);
}

TEST(InternerTest, ManySymbolsStayStable) {
  Interner in;
  std::vector<Symbol> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(in.Intern("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(in.name(ids[i]), "sym" + std::to_string(i));
  }
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(DiscreteSamplerTest, RespectsWeights) {
  Rng rng(5);
  DiscreteSampler s({1.0, 0.0, 3.0});
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) counts[s.Sample(&rng)] += 1;
  EXPECT_EQ(counts[1], 0);
  // 3:1 ratio within generous tolerance.
  EXPECT_GT(counts[2], counts[0] * 2);
  EXPECT_LT(counts[2], counts[0] * 4);
}

TEST(ZipfSamplerTest, RankOneIsMostFrequent) {
  Rng rng(11);
  ZipfSampler z(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[z.Sample(&rng)] += 1;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("NP-SBJ", "NP"));
  EXPECT_FALSE(StartsWith("NP", "NP-SBJ"));
  EXPECT_TRUE(EndsWith("NP-SBJ", "-SBJ"));
  EXPECT_FALSE(EndsWith("SBJ", "NP-SBJ"));
}

TEST(StrUtilTest, GlobMatch) {
  EXPECT_TRUE(GlobMatch("NP*", "NP-SBJ"));
  EXPECT_TRUE(GlobMatch("NP*", "NP"));
  EXPECT_FALSE(GlobMatch("NP*", "VP"));
  EXPECT_TRUE(GlobMatch("*SBJ", "NP-SBJ"));
  EXPECT_TRUE(GlobMatch("N?-*", "NP-SBJ"));
  EXPECT_FALSE(GlobMatch("N?-*", "NPP-SBJ"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "aXXcYYb"));
}

TEST(StrUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-9876543), "-9,876,543");
}

}  // namespace
}  // namespace lpath
