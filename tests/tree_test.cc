// Unit tests for the ordered-tree data model and corpus container.

#include "tree/tree.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tree/corpus.h"

namespace lpath {
namespace {

TEST(TreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.root(), kNoNode);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, SingleNode) {
  Interner in;
  Tree t;
  NodeId r = t.AddRoot(in.Intern("S"));
  EXPECT_EQ(r, 0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.is_leaf(r));
  EXPECT_EQ(t.parent(r), kNoNode);
  EXPECT_EQ(t.Depth(r), 1);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, SiblingLinksAreSymmetric) {
  Interner in;
  Tree t;
  NodeId r = t.AddRoot(in.Intern("S"));
  NodeId a = t.AddChild(r, in.Intern("A"));
  NodeId b = t.AddChild(r, in.Intern("B"));
  NodeId c = t.AddChild(r, in.Intern("C"));
  EXPECT_EQ(t.first_child(r), a);
  EXPECT_EQ(t.last_child(r), c);
  EXPECT_EQ(t.next_sibling(a), b);
  EXPECT_EQ(t.next_sibling(b), c);
  EXPECT_EQ(t.next_sibling(c), kNoNode);
  EXPECT_EQ(t.prev_sibling(c), b);
  EXPECT_EQ(t.prev_sibling(b), a);
  EXPECT_EQ(t.prev_sibling(a), kNoNode);
  EXPECT_EQ(t.ChildCount(r), 3);
  EXPECT_EQ(t.ChildOrdinal(a), 1);
  EXPECT_EQ(t.ChildOrdinal(b), 2);
  EXPECT_EQ(t.ChildOrdinal(c), 3);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, AttrValue) {
  Interner in;
  Tree t;
  NodeId r = t.AddRoot(in.Intern("N"));
  t.AddAttr(r, in.Intern("@lex"), in.Intern("dog"));
  t.AddAttr(r, in.Intern("@pos"), in.Intern("NN"));
  EXPECT_EQ(t.attr_count(r), 2);
  EXPECT_EQ(t.AttrValue(r, in.Intern("@lex")), in.Intern("dog"));
  EXPECT_EQ(t.AttrValue(r, in.Intern("@pos")), in.Intern("NN"));
  EXPECT_EQ(t.AttrValue(r, in.Intern("@missing")), kNoSymbol);
}

TEST(TreeTest, Figure1Shape) {
  Interner in;
  Tree t = testing::BuildFigure1Tree(&in);
  ASSERT_EQ(t.size(), 15u);
  EXPECT_TRUE(t.Validate().ok());
  // Root S has three children: NP, VP, N.
  NodeId s = t.root();
  EXPECT_EQ(in.name(t.name(s)), "S");
  EXPECT_EQ(t.ChildCount(s), 3);
  // "saw" hangs off the V node.
  NodeId vp = t.next_sibling(t.first_child(s));
  EXPECT_EQ(in.name(t.name(vp)), "VP");
  NodeId v = t.first_child(vp);
  EXPECT_EQ(in.name(t.name(v)), "V");
  EXPECT_EQ(t.AttrValue(v, in.Intern("@lex")), in.Intern("saw"));
  EXPECT_EQ(t.Depth(v), 3);
}

TEST(TreeTest, IsAncestor) {
  Interner in;
  Tree t = testing::BuildFigure1Tree(&in);
  // S (0) is an ancestor of everything; N(dog)=13 under PP chain.
  EXPECT_TRUE(t.IsAncestor(0, 13));
  EXPECT_TRUE(t.IsAncestor(9, 13));   // PP over N(dog)
  EXPECT_FALSE(t.IsAncestor(13, 9));
  EXPECT_FALSE(t.IsAncestor(1, 2));   // siblings
  EXPECT_FALSE(t.IsAncestor(0, 0));   // not reflexive
}

TEST(TreeTest, ValidateRandomTrees) {
  Rng rng(2024);
  Interner in;
  for (int i = 0; i < 200; ++i) {
    Tree t = testing::RandomTree(&rng, &in, 60);
    EXPECT_TRUE(t.Validate().ok()) << "tree " << i;
  }
}

TEST(CorpusTest, AddAndTotals) {
  Corpus corpus = testing::RandomCorpus(/*seed=*/7, /*trees=*/10);
  EXPECT_EQ(corpus.size(), 10u);
  size_t total = 0;
  for (TreeId tid = 0; tid < 10; ++tid) total += corpus.tree(tid).size();
  EXPECT_EQ(corpus.TotalNodes(), total);
  EXPECT_TRUE(corpus.Validate().ok());
}

TEST(CorpusTest, ReplicateTo) {
  Corpus corpus = testing::RandomCorpus(/*seed=*/8, /*trees=*/5);
  const size_t nodes1 = corpus.TotalNodes();
  corpus.ReplicateTo(3);
  EXPECT_EQ(corpus.size(), 15u);
  EXPECT_EQ(corpus.TotalNodes(), nodes1 * 3);
  // Copies are structurally identical to the originals.
  EXPECT_EQ(corpus.tree(0).size(), corpus.tree(5).size());
  EXPECT_EQ(corpus.tree(4).size(), corpus.tree(14).size());
  EXPECT_TRUE(corpus.Validate().ok());
}

TEST(CorpusTest, Truncate) {
  Corpus corpus = testing::RandomCorpus(/*seed=*/9, /*trees=*/10);
  corpus.Truncate(4);
  EXPECT_EQ(corpus.size(), 4u);
  corpus.Truncate(100);  // no-op
  EXPECT_EQ(corpus.size(), 4u);
}

}  // namespace
}  // namespace lpath
