// End-to-end durability tests for db::Database with a write-ahead log
// (DatabaseOptions::wal_dir). The contract under test is the ISSUE's
// headline guarantee: *an acknowledged Ingest survives a crash at any
// I/O boundary*. A fault-injection sweep kills the process model at
// every successive I/O operation across an ingest/compact/ingest
// sequence, then recovers into a fresh Database and proves — by tree
// count and by query differential against a never-crashed rebuilt
// reference — that recovery serves exactly the acknowledged batches (a
// batch whose Append died after its bytes landed but before the ack may
// legitimately also survive; nothing else may).
//
// Also covered here: failed-fsync ingests do not publish, background
// compaction failures are surfaced (and retried) instead of dropped,
// and Detach purges pending compaction work and health for the name.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "lpath/engines.h"
#include "storage/io_hooks.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "tree/bracket_io.h"
#include "tree/corpus.h"

namespace lpath {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("lpathdb_crash_") + info->test_suite_name() + "_" +
             info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }

  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

SnapshotPtr MustBuild(Corpus corpus) {
  Result<SnapshotPtr> snap = CorpusSnapshot::Build(std::move(corpus));
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return std::move(snap).value();
}

db::CorpusInfo InfoFor(const db::Database& db, const std::string& name) {
  for (const db::CorpusInfo& info : db.List()) {
    if (info.name == name) return info;
  }
  ADD_FAILURE() << "corpus not listed: " << name;
  return {};
}

constexpr char kName[] = "corpus";
constexpr uint64_t kBaseSeed = 9000;
constexpr uint64_t kBatchSeed = 9100;
constexpr int kBaseTrees = 18;
constexpr int kBatchTrees = 3;
constexpr int kBatches = 3;

/// The rebuild-from-scratch reference corpus: the base plus the first
/// `batches` ingest batches, in ingestion order, one interner.
Corpus ReferenceCorpus(int batches) {
  Corpus base = testing::RandomCorpus(kBaseSeed, kBaseTrees);
  Corpus combined;
  combined.ResetInterner(base.interner().Clone());
  combined.AppendFrom(base);
  for (int b = 0; b < batches; ++b) {
    combined.AppendFrom(testing::RandomCorpus(kBatchSeed + b, kBatchTrees));
  }
  return combined;
}

/// Differential check: `queries` generated queries must answer
/// identically through the recovered database and a never-crashed
/// engine over `reference`'s relation.
void ExpectMatchesReference(db::Database* db, Corpus reference,
                            uint64_t query_seed, int queries) {
  SnapshotPtr rebuilt = MustBuild(std::move(reference));
  LPathEngine engine(rebuilt->relation());
  Rng rng(query_seed);
  testing::QueryGen gen(&rng);
  for (int i = 0; i < queries; ++i) {
    const std::string q = gen.Query();
    Result<QueryResult> want = engine.Run(q);
    Result<QueryResult> got = db->Query(kName, q);
    ASSERT_EQ(want.ok(), got.ok())
        << q << ": " << (want.ok() ? got : want).status().ToString();
    if (!want.ok()) continue;
    ASSERT_EQ(want->hits, got->hits) << q;
  }
}

/// The crash sweep: with a budget of `fail_after_ops` I/O operations,
/// run ingest b1, ingest b2, compact, ingest b3 against a durable
/// corpus, "crash" (every I/O after the budget fails, the Database is
/// torn down), then recover with a fresh Database over the same wal_dir
/// and source file. Recovery must serve the base plus an exact prefix
/// of the batches — every acknowledged one, at most one unacknowledged
/// one (fully written, crashed before the ack) — and answer queries on
/// that state identically to a never-crashed rebuild. Sweeps budgets
/// upward until a run completes with no injected failure, so every I/O
/// boundary in the sequence gets its own crash.
void RunCrashSweep(bool image_base) {
  TempDir dir;
  for (int64_t budget = 0;; ++budget) {
    SCOPED_TRACE("fail_after_ops=" + std::to_string(budget));
    const std::string work = dir.File("run" + std::to_string(budget));
    fs::remove_all(work);
    fs::create_directories(work);

    // Clean (unhooked) setup: source file, database, attach.
    const std::string src =
        work + (image_base ? "/base.img" : "/base.mrg");
    Corpus base = testing::RandomCorpus(kBaseSeed, kBaseTrees);
    if (image_base) {
      ASSERT_TRUE(MustBuild(std::move(base))->Save(src).ok());
    } else {
      ASSERT_TRUE(SaveBracketFile(base, src).ok());
    }
    db::DatabaseOptions dopt;
    dopt.wal_dir = work + "/wal";
    dopt.compact_delta_trees = 0;  // only the explicit Compact below
    auto db = std::make_unique<db::Database>(dopt);
    ASSERT_TRUE(db->Open(kName, src).ok());

    // The faulted sequence. Every acknowledged (OK) Ingest is owed
    // durability; everything after the first injected failure fails
    // fast (the "crash" latches).
    IoHooks hooks;
    hooks.fail_after_ops.store(budget);
    int acked = 0;
    bool failed_ingest = false;
    {
      ScopedIoHooks install(&hooks);
      for (int b = 0; b < kBatches; ++b) {
        if (b == kBatches - 1) {
          (void)db->Compact(kName);  // never changes the tree count
        }
        const Status st = db->Ingest(
            kName, testing::RandomCorpus(kBatchSeed + b, kBatchTrees));
        if (st.ok() && !failed_ingest) ++acked;
        if (!st.ok()) failed_ingest = true;
      }
      db.reset();  // tear down mid-flight state under the fault
    }

    // "Reboot": recover unhooked from the same wal_dir + source.
    db::Database recovered(dopt);
    ASSERT_TRUE(recovered.Open(kName, src).ok());
    const db::CorpusInfo info = InfoFor(recovered, kName);
    const size_t with_acked =
        kBaseTrees + static_cast<size_t>(kBatchTrees) * acked;
    ASSERT_TRUE(info.trees == with_acked ||
                (failed_ingest && info.trees == with_acked + kBatchTrees))
        << "recovered " << info.trees << " trees; " << acked
        << " batches were acknowledged";
    const int recovered_batches =
        static_cast<int>((info.trees - kBaseTrees) / kBatchTrees);

    ExpectMatchesReference(&recovered, ReferenceCorpus(recovered_batches),
                           kBaseSeed ^ static_cast<uint64_t>(budget), 12);

    if (!hooks.crashed.load()) {
      // The budget outlasted the whole sequence: every boundary has
      // now been crashed once, and the final run must be complete.
      ASSERT_EQ(acked, kBatches);
      ASSERT_EQ(info.trees, with_acked);
      break;
    }
    ASSERT_LT(budget, 400) << "sweep did not terminate";
  }
}

TEST(CrashRecovery, SweepBracketBase) { RunCrashSweep(false); }

TEST(CrashRecovery, SweepImageBase) { RunCrashSweep(true); }

TEST(CrashRecovery, CleanReopenServesIngestedTrees150Queries) {
  // The no-crash durability path: ingest into a durable corpus, drop
  // the database without compacting (the delta lives only in the log),
  // reopen, and differential-check the full reference.
  TempDir dir;
  const std::string src = dir.File("base.mrg");
  ASSERT_TRUE(
      SaveBracketFile(testing::RandomCorpus(kBaseSeed, kBaseTrees), src)
          .ok());
  db::DatabaseOptions dopt;
  dopt.wal_dir = dir.File("wal");
  dopt.compact_delta_trees = 0;
  {
    db::Database db(dopt);
    ASSERT_TRUE(db.Open(kName, src).ok());
    for (int b = 0; b < kBatches; ++b) {
      ASSERT_TRUE(
          db.Ingest(kName,
                    testing::RandomCorpus(kBatchSeed + b, kBatchTrees))
              .ok());
    }
  }
  db::Database recovered(dopt);
  ASSERT_TRUE(recovered.Open(kName, src).ok());
  const db::CorpusInfo info = InfoFor(recovered, kName);
  EXPECT_EQ(info.trees,
            kBaseTrees + static_cast<size_t>(kBatchTrees) * kBatches);
  EXPECT_TRUE(info.wal);
  EXPECT_EQ(info.wal_last_lsn, static_cast<uint64_t>(kBatches));
  ExpectMatchesReference(&recovered, ReferenceCorpus(kBatches), kBaseSeed,
                         150);
}

TEST(CrashRecovery, FailedFsyncIngestIsNotPublishedAndNotReplayed) {
  TempDir dir;
  const std::string src = dir.File("base.mrg");
  ASSERT_TRUE(
      SaveBracketFile(testing::RandomCorpus(kBaseSeed, kBaseTrees), src)
          .ok());
  db::DatabaseOptions dopt;
  dopt.wal_dir = dir.File("wal");
  dopt.compact_delta_trees = 0;
  {
    db::Database db(dopt);
    ASSERT_TRUE(db.Open(kName, src).ok());
    IoHooks hooks;
    hooks.fail_fsync.store(true);
    {
      ScopedIoHooks install(&hooks);
      // The commit fsync fails: the batch must be rejected, not served.
      ASSERT_FALSE(
          db.Ingest(kName, testing::RandomCorpus(kBatchSeed, kBatchTrees))
              .ok());
    }
    EXPECT_EQ(InfoFor(db, kName).trees, static_cast<size_t>(kBaseTrees));
    // The log is not wedged by a transient fsync failure: the next
    // ingest commits normally.
    ASSERT_TRUE(
        db.Ingest(kName, testing::RandomCorpus(kBatchSeed + 1, kBatchTrees))
            .ok());
  }
  db::Database recovered(dopt);
  ASSERT_TRUE(recovered.Open(kName, src).ok());
  // Only the acknowledged batch replays; ReferenceCorpus can't model a
  // skipped batch, so check by count plus a spot differential against
  // base + batch 1 built directly.
  EXPECT_EQ(InfoFor(recovered, kName).trees,
            static_cast<size_t>(kBaseTrees + kBatchTrees));
  Corpus base = testing::RandomCorpus(kBaseSeed, kBaseTrees);
  Corpus combined;
  combined.ResetInterner(base.interner().Clone());
  combined.AppendFrom(base);
  combined.AppendFrom(testing::RandomCorpus(kBatchSeed + 1, kBatchTrees));
  ExpectMatchesReference(&recovered, std::move(combined), kBaseSeed + 7, 25);
}

TEST(CrashRecovery, CompactionFailureSurfacesInListAndClears) {
  // An image-backed compaction that fails must not vanish: the error is
  // counted and kept in List() until a later compaction succeeds, and
  // the failure count itself persists as history.
  TempDir dir;
  const std::string src = dir.File("base.img");
  ASSERT_TRUE(
      MustBuild(testing::RandomCorpus(kBaseSeed, kBaseTrees))->Save(src).ok());
  db::DatabaseOptions dopt;
  dopt.compact_delta_trees = 0;
  db::Database db(dopt);
  ASSERT_TRUE(db.Open(kName, src).ok());
  ASSERT_TRUE(
      db.Ingest(kName, testing::RandomCorpus(kBatchSeed, kBatchTrees)).ok());

  IoHooks hooks;
  hooks.fail_rename.store(true);
  {
    ScopedIoHooks install(&hooks);
    ASSERT_FALSE(db.Compact(kName).ok());
  }
  db::CorpusInfo info = InfoFor(db, kName);
  EXPECT_GE(info.compaction_failures, 1u);
  EXPECT_FALSE(info.last_compaction_error.empty());
  EXPECT_EQ(info.delta_trees, static_cast<size_t>(kBatchTrees));

  // Unhooked, the same compaction succeeds: the live error clears, the
  // count stays as history, the delta folds in.
  ASSERT_TRUE(db.Compact(kName).ok());
  info = InfoFor(db, kName);
  EXPECT_GE(info.compaction_failures, 1u);
  EXPECT_TRUE(info.last_compaction_error.empty());
  EXPECT_EQ(info.delta_trees, 0u);
}

TEST(CrashRecovery, BackgroundCompactionRetriesAndRecovers) {
  // Background compaction failures retry with backoff (visible as a
  // growing failure count) instead of silently giving up, and once the
  // fault clears a later ingest's reschedule compacts the delta away.
  TempDir dir;
  const std::string src = dir.File("base.img");
  ASSERT_TRUE(
      MustBuild(testing::RandomCorpus(kBaseSeed, kBaseTrees))->Save(src).ok());
  db::DatabaseOptions dopt;
  dopt.compact_delta_trees = 1;  // every ingest schedules a compaction
  db::Database db(dopt);
  ASSERT_TRUE(db.Open(kName, src).ok());

  IoHooks hooks;
  hooks.fail_rename.store(true);
  {
    ScopedIoHooks install(&hooks);
    ASSERT_TRUE(
        db.Ingest(kName, testing::RandomCorpus(kBatchSeed, kBatchTrees))
            .ok());
    // Poll for at least two recorded failures: the first attempt plus a
    // backed-off retry (10ms, 20ms, ... — well inside the deadline).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (InfoFor(db, kName).compaction_failures < 2) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "no retry observed";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // Fault cleared: a new ingest reschedules from attempt zero and the
  // delta compacts away in the background.
  ASSERT_TRUE(
      db.Ingest(kName, testing::RandomCorpus(kBatchSeed + 1, kBatchTrees))
          .ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (InfoFor(db, kName).delta_trees > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "background compaction never succeeded";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const db::CorpusInfo info = InfoFor(db, kName);
  EXPECT_GE(info.compaction_failures, 2u);
  EXPECT_TRUE(info.last_compaction_error.empty());
  EXPECT_EQ(info.trees,
            static_cast<size_t>(kBaseTrees) + 2 * kBatchTrees);
}

TEST(CrashRecovery, DetachPurgesPendingCompactionAndHealth) {
  // Detach must leave nothing behind for the name: no queued compaction
  // task resurrects it, and a re-attach under the same name starts with
  // clean compaction health rather than a ghost's failure history.
  TempDir dir;
  const std::string src = dir.File("base.img");
  ASSERT_TRUE(
      MustBuild(testing::RandomCorpus(kBaseSeed, kBaseTrees))->Save(src).ok());
  db::DatabaseOptions dopt;
  dopt.compact_delta_trees = 1;
  db::Database db(dopt);
  ASSERT_TRUE(db.Open(kName, src).ok());

  IoHooks hooks;
  hooks.fail_rename.store(true);
  {
    ScopedIoHooks install(&hooks);
    // A failing sync compaction seeds health; the ingest enqueues
    // (failing) background work for the name.
    ASSERT_TRUE(
        db.Ingest(kName, testing::RandomCorpus(kBatchSeed, kBatchTrees))
            .ok());
    ASSERT_FALSE(db.Compact(kName).ok());
    ASSERT_GE(InfoFor(db, kName).compaction_failures, 1u);
    ASSERT_TRUE(db.Detach(kName).ok());
  }

  // Re-attach a different corpus under the same name, unhooked.
  ASSERT_TRUE(db.OpenCorpus(
                    kName, testing::RandomCorpus(kBaseSeed + 1, kBaseTrees / 2))
                  .ok());
  // Give any wrongly-surviving queued task time to run and smear state.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const db::CorpusInfo info = InfoFor(db, kName);
  EXPECT_EQ(info.compaction_failures, 0u);
  EXPECT_TRUE(info.last_compaction_error.empty());
  EXPECT_EQ(info.trees, static_cast<size_t>(kBaseTrees / 2));
}

}  // namespace
}  // namespace lpath
