// Integration tests over the benchmark workload: the full 23-query suite
// must run and AGREE across all four engines (relational LPath,
// navigational, TGrep2, CorpusSearch) on generated WSJ and SWB corpora —
// the strongest end-to-end check in the repository — plus unit tests for
// the suite table and the report renderer.

#include "bench_util/suite.h"

#include <gtest/gtest.h>

#include "bench_util/fixtures.h"
#include "bench_util/report.h"
#include "gen/generator.h"

namespace lpath {
namespace bench {
namespace {

TEST(SuiteTest, TwentyThreeQueries) {
  const auto& all = The23Queries();
  ASSERT_EQ(all.size(), 23u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].id, static_cast<int>(i + 1));
    EXPECT_STRNE(all[i].lpath, "");
    EXPECT_STRNE(all[i].tgrep, "");
    EXPECT_STRNE(all[i].cs, "");
  }
  EXPECT_EQ(XPathExpressibleQueries().size(), 11u);  // Figure 10's "11 of 23"
  EXPECT_EQ(QueryById(6).paper_wsj, 215104u);
  EXPECT_EQ(QueryById(13).paper_swb, 0u);
}

TEST(SuiteTest, XPathSetMatchesFigure10) {
  // Figure 10 plots Q1, Q8, Q9, Q12..Q19.
  std::vector<int> ids;
  for (const BenchmarkQuery& q : XPathExpressibleQueries()) {
    ids.push_back(q.id);
  }
  EXPECT_EQ(ids, std::vector<int>({1, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19}));
}

class SuiteAgreementTest : public ::testing::TestWithParam<Dataset> {};

TEST_P(SuiteAgreementTest, AllEnginesAgreeOnThe23Queries) {
  Result<Corpus> corpus = GetParam() == Dataset::kWsj
                              ? gen::GenerateWsj(400)
                              : gen::GenerateSwb(400);
  ASSERT_TRUE(corpus.ok());
  std::unique_ptr<EngineSet> fx = BuildEngineSet(std::move(corpus).value());

  for (const BenchmarkQuery& q : The23Queries()) {
    Result<QueryResult> lp = fx->lpath->Run(q.lpath);
    Result<QueryResult> nav = fx->navigational->Run(q.lpath);
    Result<QueryResult> tg = fx->tgrep->Run(q.tgrep);
    Result<QueryResult> cs = fx->cs->Run(q.cs);
    ASSERT_TRUE(lp.ok()) << "Q" << q.id << " lpath: " << lp.status();
    ASSERT_TRUE(nav.ok()) << "Q" << q.id << " nav: " << nav.status();
    ASSERT_TRUE(tg.ok()) << "Q" << q.id << " tgrep: " << tg.status();
    ASSERT_TRUE(cs.ok()) << "Q" << q.id << " cs: " << cs.status();
    EXPECT_EQ(lp.value(), nav.value()) << "Q" << q.id;
    EXPECT_EQ(lp.value(), tg.value()) << "Q" << q.id;
    EXPECT_EQ(lp.value(), cs.value()) << "Q" << q.id;

    // The XPath-labeling engine must agree wherever it runs. It must run
    // on all of Figure 10's 11 queries; outside that set it may either
    // reject (immediate axes, alignment — Lemma 3.1) or, for Q3/Q4-style
    // queries that only need following + scope containment, answer
    // correctly (tag positions decide those, even though the paper's
    // XPath translation did not cover them).
    Result<QueryResult> xp = fx->xpath->Run(q.lpath);
    if (q.xpath_expressible) {
      ASSERT_TRUE(xp.ok()) << "Q" << q.id << ": " << xp.status();
    }
    if (xp.ok()) {
      EXPECT_EQ(lp.value(), xp.value()) << "Q" << q.id;
    } else {
      EXPECT_TRUE(xp.status().IsNotSupported()) << "Q" << q.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, SuiteAgreementTest,
                         ::testing::Values(Dataset::kWsj, Dataset::kSwb));

TEST(ReportTest, RendersRowsAndColumns) {
  ReportTable table("Demo");
  table.Record("Q1", "A", Measurement{0.0000015, 42, true});
  table.Record("Q1", "B", Measurement{0.0025, 42, true});
  table.Record("Q2", "A", Measurement{1.5, 7, true});
  table.RecordUnsupported("Q2", "B");
  std::string out = table.Render({"A", "B"}, {{"Q2", "note"}});
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Q1"), std::string::npos);
  EXPECT_NE(out.find("us"), std::string::npos);   // microseconds
  EXPECT_NE(out.find("ms"), std::string::npos);   // milliseconds
  EXPECT_NE(out.find("n/a"), std::string::npos);  // unsupported cell
  EXPECT_NE(out.find("note"), std::string::npos);
  EXPECT_TRUE(table.has_row("Q1"));
  EXPECT_FALSE(table.has_row("Q9"));
}

TEST(ReportTest, FormatSeconds) {
  EXPECT_NE(FormatSeconds(0.0000012).find("us"), std::string::npos);
  EXPECT_NE(FormatSeconds(0.0012).find("ms"), std::string::npos);
  EXPECT_NE(FormatSeconds(1.2).find("s"), std::string::npos);
}

TEST(ReportTest, RunMetadataStampsTrajectories) {
  const std::map<std::string, std::string> meta = RunMetadataJson();
  // Values are already JSON-encoded; strings must be quoted, numbers bare.
  ASSERT_TRUE(meta.count("git_sha"));
  EXPECT_EQ(meta.at("git_sha").front(), '"');
  ASSERT_TRUE(meta.count("compiler"));
  EXPECT_EQ(meta.at("compiler").front(), '"');
  ASSERT_TRUE(meta.count("nproc"));
  EXPECT_NE(meta.at("nproc"), "0");

  // Splicing the metadata through RenderJson keeps the document parseable
  // enough for bench_diff.py's key scan.
  ReportTable table("Meta");
  table.Record("Q1", "T1", Measurement{0.5, 1, true});
  const std::string json = table.RenderJson(meta);
  EXPECT_NE(json.find("\"git_sha\": \""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\": \""), std::string::npos);
  EXPECT_NE(json.find("\"nproc\": "), std::string::npos);
}

TEST(FixtureTest, DatasetNames) {
  EXPECT_STREQ(DatasetName(Dataset::kWsj), "WSJ");
  EXPECT_STREQ(DatasetName(Dataset::kSwb), "SWB");
  EXPECT_GT(BenchmarkSentences(), 0);
}

}  // namespace
}  // namespace bench
}  // namespace lpath
