// Socketless unit tests for the wire protocol's framing and payload
// codecs (net/protocol.h): encode/decode roundtrips for every message
// type, a truncation sweep at every cut byte, a checksum bit-flip battery,
// oversized-length rejection and the Status <-> WireCode mapping. The
// live-socket end-to-end suite is net_test.cc.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lpath {
namespace net {
namespace {

std::vector<uint8_t> Framed(MsgType type, uint32_t request_id,
                            std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  AppendFrame(type, request_id, payload, &out);
  return out;
}

constexpr size_t kMaxPayload = 16u << 20;

TEST(NetFrame, RoundTripEveryType) {
  const MsgType kTypes[] = {
      MsgType::kHello,     MsgType::kPrepare,   MsgType::kExecute,
      MsgType::kStreamBatch, MsgType::kStreamEnd, MsgType::kCancel,
      MsgType::kError,     MsgType::kPing,      MsgType::kGoodbye,
  };
  for (MsgType type : kTypes) {
    std::vector<uint8_t> payload = {1, 2, 3, 200, 255, 0, 42};
    std::vector<uint8_t> bytes = Framed(type, 77, payload);
    ASSERT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());

    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(bytes, kMaxPayload, &frame, &consumed, &error),
              FrameParse::kFrame)
        << MsgTypeName(type) << ": " << error;
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.request_id, 77u);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(consumed, bytes.size());
  }
}

TEST(NetFrame, EmptyPayloadRoundTrip) {
  std::vector<uint8_t> bytes = Framed(MsgType::kGoodbye, 0, {});
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseFrame(bytes, kMaxPayload, &frame, &consumed, &error),
            FrameParse::kFrame);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(NetFrame, BackToBackFramesParseInOrder) {
  std::vector<uint8_t> wire;
  AppendFrame(MsgType::kPing, 1, std::vector<uint8_t>{9}, &wire);
  AppendFrame(MsgType::kCancel, 2, {}, &wire);

  Frame frame;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(wire, kMaxPayload, &frame, &consumed, &error),
            FrameParse::kFrame);
  EXPECT_EQ(frame.type, MsgType::kPing);
  std::span<const uint8_t> rest{wire.data() + consumed,
                                wire.size() - consumed};
  ASSERT_EQ(ParseFrame(rest, kMaxPayload, &frame, &consumed, &error),
            FrameParse::kFrame);
  EXPECT_EQ(frame.type, MsgType::kCancel);
  EXPECT_EQ(frame.request_id, 2u);
}

// Every proper prefix of a valid frame must ask for more bytes, never
// decode and never hard-fail: framing is restartable at any read boundary.
TEST(NetFrame, TruncationSweep) {
  std::vector<uint8_t> payload(37);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<uint8_t> bytes = Framed(MsgType::kExecute, 5, payload);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    FrameParse parse = ParseFrame({bytes.data(), cut}, kMaxPayload, &frame,
                                  &consumed, &error);
    EXPECT_EQ(parse, FrameParse::kNeedMore) << "cut at byte " << cut;
    EXPECT_EQ(consumed, 0u);
  }
}

// Flipping any single bit anywhere in the frame must never yield a decoded
// frame with the original content: either the checksum (or a header
// validity check) rejects it, or — if the flip lands in the payload-length
// field and inflates it — the parser asks for bytes that will never come.
TEST(NetFrame, BitFlipBattery) {
  std::vector<uint8_t> payload = {'l', 'p', 'a', 't', 'h', 0, 1, 2};
  std::vector<uint8_t> pristine = Framed(MsgType::kExecute, 9, payload);
  for (size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bytes = pristine;
      bytes[byte] = static_cast<uint8_t>(bytes[byte] ^ (1u << bit));
      Frame frame;
      size_t consumed = 0;
      std::string error;
      FrameParse parse =
          ParseFrame(bytes, kMaxPayload, &frame, &consumed, &error);
      if (parse == FrameParse::kFrame) {
        ADD_FAILURE() << "corrupted frame decoded (byte " << byte << " bit "
                      << bit << ")";
      }
    }
  }
}

TEST(NetFrame, RejectsBadMagicImmediately) {
  std::vector<uint8_t> bytes = Framed(MsgType::kPing, 1, {});
  bytes[0] = 'X';
  Frame frame;
  size_t consumed = 0;
  std::string error;
  // Both the full frame and a two-byte fragment are rejected: damage in
  // the magic must not park the connection in kNeedMore forever.
  EXPECT_EQ(ParseFrame(bytes, kMaxPayload, &frame, &consumed, &error),
            FrameParse::kBad);
  EXPECT_EQ(ParseFrame({bytes.data(), 2}, kMaxPayload, &frame, &consumed,
                       &error),
            FrameParse::kBad);
}

TEST(NetFrame, RejectsOversizedPayloadLength) {
  std::vector<uint8_t> bytes = Framed(MsgType::kExecute, 1,
                                      std::vector<uint8_t>(64, 0xAB));
  Frame frame;
  size_t consumed = 0;
  std::string error;
  // The declared length alone (bytes [12,16)) triggers rejection — no
  // amount of further reading can save a frame that exceeds the limit.
  EXPECT_EQ(ParseFrame(bytes, /*max_payload=*/63, &frame, &consumed, &error),
            FrameParse::kBad);
  EXPECT_NE(error.find("exceeds"), std::string::npos);
}

TEST(NetFrame, RejectsUnknownTypeAndReservedBytes) {
  std::vector<uint8_t> ok = Framed(MsgType::kPing, 1, {});
  Frame frame;
  size_t consumed = 0;
  std::string error;

  std::vector<uint8_t> bad_type = ok;
  bad_type[4] = 250;  // not a MsgType
  EXPECT_EQ(ParseFrame(bad_type, kMaxPayload, &frame, &consumed, &error),
            FrameParse::kBad);

  std::vector<uint8_t> bad_reserved = ok;
  bad_reserved[6] = 1;
  EXPECT_EQ(ParseFrame(bad_reserved, kMaxPayload, &frame, &consumed, &error),
            FrameParse::kBad);
}

TEST(NetPayload, HelloRoundTrip) {
  HelloPayload hello;
  hello.version = kProtocolVersion;
  hello.software = "lpathdb-test";
  hello.max_inflight = 32;
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, hello.version);
  EXPECT_EQ(decoded->software, hello.software);
  EXPECT_EQ(decoded->max_inflight, 32u);
}

TEST(NetPayload, QueryRoundTrip) {
  auto decoded = DecodeQuery(EncodeQuery({"wsj", "//VP{/VB-->NN}"}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->corpus, "wsj");
  EXPECT_EQ(decoded->query, "//VP{/VB-->NN}");
}

TEST(NetPayload, EndAndErrorRoundTrip) {
  EndPayload end{WireCode::kCancelled, "query cancelled", 12345};
  auto end2 = DecodeEnd(EncodeEnd(end));
  ASSERT_TRUE(end2.ok());
  EXPECT_EQ(end2->code, WireCode::kCancelled);
  EXPECT_EQ(end2->message, "query cancelled");
  EXPECT_EQ(end2->total_rows, 12345u);

  ErrorPayload error{WireCode::kProtocolError, "bad frame"};
  auto error2 = DecodeError(EncodeError(error));
  ASSERT_TRUE(error2.ok());
  EXPECT_EQ(error2->code, WireCode::kProtocolError);
  EXPECT_EQ(error2->message, "bad frame");
}

TEST(NetPayload, BatchRoundTrip) {
  std::vector<Hit> hits = {{0, 1}, {0, 9}, {3, 2}, {-1, -7}};
  auto decoded = DecodeBatch(EncodeBatch(hits));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, hits);

  auto empty = DecodeBatch(EncodeBatch({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// Decoders own the full payload: truncated and padded payloads both fail
// cleanly (no crash, no partial value) for every codec.
TEST(NetPayload, TruncatedAndPaddedPayloadsFailCleanly) {
  auto sweep = [](const std::vector<uint8_t>& bytes, auto decode,
                  const char* what) {
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(decode(std::span<const uint8_t>{bytes.data(), cut}).ok())
          << what << " decoded from a " << cut << "-byte truncation";
    }
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(decode(padded).ok()) << what << " tolerated trailing bytes";
  };
  sweep(EncodeHello({kProtocolVersion, "x", 1}),
        [](std::span<const uint8_t> p) { return DecodeHello(p); }, "HELLO");
  sweep(EncodeQuery({"corpus", "//VP"}),
        [](std::span<const uint8_t> p) { return DecodeQuery(p); }, "EXECUTE");
  sweep(EncodeEnd({WireCode::kOk, "done", 7}),
        [](std::span<const uint8_t> p) { return DecodeEnd(p); },
        "STREAM_END");
  sweep(EncodeError({WireCode::kProtocolError, "m"}),
        [](std::span<const uint8_t> p) { return DecodeError(p); }, "ERROR");
  sweep(EncodeBatch(std::vector<Hit>{{1, 2}, {3, 4}}),
        [](std::span<const uint8_t> p) { return DecodeBatch(p); },
        "STREAM_BATCH");

  // A batch whose row count promises more rows than the payload holds.
  std::vector<uint8_t> lying = EncodeBatch(std::vector<Hit>{{1, 2}});
  lying[0] = 200;
  EXPECT_FALSE(DecodeBatch(lying).ok());
}

TEST(NetWireCode, MirrorsStatusCodes) {
  EXPECT_EQ(WireCodeFromStatus(Status::OK()), WireCode::kOk);
  EXPECT_EQ(WireCodeFromStatus(Status::InvalidArgument("x")),
            WireCode::kInvalidArgument);
  EXPECT_EQ(WireCodeFromStatus(Status::NotFound("x")), WireCode::kNotFound);
  EXPECT_EQ(WireCodeFromStatus(Status::Cancelled("x")), WireCode::kCancelled);
  EXPECT_EQ(WireCodeFromStatus(Status::ResourceExhausted("x")),
            WireCode::kResourceExhausted);

  // Engine codes roundtrip exactly.
  Status s = Status::IOError("disk");
  Status back = StatusFromWire(WireCodeFromStatus(s), s.message());
  EXPECT_EQ(back, s);

  // Protocol-only codes map onto the documented engine codes.
  EXPECT_TRUE(StatusFromWire(WireCode::kProtocolError, "x").IsCorruption());
  EXPECT_TRUE(
      StatusFromWire(WireCode::kShuttingDown, "x").IsResourceExhausted());
  EXPECT_TRUE(
      StatusFromWire(WireCode::kVersionMismatch, "x").IsNotSupported());
  EXPECT_TRUE(StatusFromWire(WireCode::kOk, "").ok());
}

}  // namespace
}  // namespace net
}  // namespace lpath
