// Structural plan fingerprint tests. Three layers under test:
//
//   sql/fingerprint.h      the canonical hash and PlanEquals — value-only
//                          (address/ASLR independent), alpha-renames outer
//                          references escaping the hashed root, mirrors
//                          literal-first comparisons, and agrees with
//                          PlanEquals exactly (equal fp <=> equal plan,
//                          modulo engineered 64-bit collisions);
//   service/subplan_memo.h the snapshot-scoped registry that shares EXISTS
//                          answers across *different* top-level plans and
//                          refuses verified hash collisions;
//   service/plan_cache.h + QueryService
//                          the serving contract: N differently spelled
//                          queries of one structure cost exactly one
//                          sql::Prepare, fingerprint-shared serving returns
//                          the same answers as text-keyed serving (150-query
//                          differential, base-only and base+delta chains),
//                          and QueryBatch coalesces same-structure members.

#include "sql/fingerprint.h"

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lpath/engines.h"
#include "lpath/parser.h"
#include "plan/compile.h"
#include "plan/exec_plan.h"
#include "service/query_service.h"
#include "service/subplan_memo.h"
#include "sql/optimizer.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace lpath {
namespace {

using testing::QueryGen;

/// Parse + compile with the same options the service uses (scheme-less:
/// fingerprints key the *unresolved* plan, so no relation is needed).
ExecPlan MustCompile(const std::string& query) {
  Result<LocationPath> path = ParseLPath(query);
  EXPECT_TRUE(path.ok()) << query << " -> " << path.status();
  CompileOptions copts;
  copts.unnest_predicates = true;
  Result<ExecPlan> plan = CompileLPath(path.value(), copts);
  EXPECT_TRUE(plan.ok()) << query << " -> " << plan.status();
  return std::move(plan).value();
}

/// Respells `q` by single-quoting every maximal letter run that starts
/// uppercase. The fuzz grammar (test_util.h) draws tags from a capitalized
/// alphabet and everything else (axes, keywords, @lex words) lowercase, so
/// this quotes exactly the node tests — a different normalized text that
/// parses to an identical plan.
std::string QuoteTags(const std::string& q) {
  std::string out;
  size_t i = 0;
  while (i < q.size()) {
    const unsigned char c = q[i];
    if (std::isupper(c)) {
      size_t j = i;
      while (j < q.size() &&
             std::isalpha(static_cast<unsigned char>(q[j]))) {
        ++j;
      }
      out += '\'';
      out.append(q, i, j - i);
      out += '\'';
      i = j;
    } else {
      out += q[i++];
    }
  }
  return out;
}

SnapshotPtr MustBuild(Corpus corpus) {
  Result<SnapshotPtr> snap = CorpusSnapshot::Build(std::move(corpus));
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return std::move(snap).value();
}

// ---------------------------------------------------------------------------
// The hash itself

TEST(FingerprintTest, StableAcrossClonesAndRecompiles) {
  Rng rng(4242);
  QueryGen gen(&rng);
  for (int i = 0; i < 150; ++i) {
    const std::string q = gen.Query();
    const ExecPlan a = MustCompile(q);
    const ExecPlan b = MustCompile(q);   // fresh parse, fresh allocations
    const ExecPlan c = a.Clone();        // same values, different addresses
    const uint64_t fp = sql::PlanFingerprint(a);
    EXPECT_EQ(fp, sql::PlanFingerprint(b)) << q;
    EXPECT_EQ(fp, sql::PlanFingerprint(c)) << q;
    EXPECT_TRUE(sql::PlanEquals(a, b)) << q;
  }
}

TEST(FingerprintTest, EqualFingerprintIffPlanEquals) {
  // Over a fuzzed plan population, the 64-bit hash and the structural
  // comparison must induce the same partition (a chance collision among
  // 150 plans would be a 2^-64-scale event — a failure here means the
  // hash and the matcher canonicalize differently).
  Rng rng(99);
  QueryGen gen(&rng);
  std::vector<ExecPlan> plans;
  std::vector<uint64_t> fps;
  std::vector<std::string> texts;
  for (int i = 0; i < 150; ++i) {
    const std::string q = gen.Query();
    ExecPlan p = MustCompile(q);
    fps.push_back(sql::PlanFingerprint(p));
    plans.push_back(std::move(p));
    texts.push_back(q);
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = i + 1; j < plans.size(); ++j) {
      EXPECT_EQ(fps[i] == fps[j], sql::PlanEquals(plans[i], plans[j]))
          << texts[i] << "  vs  " << texts[j];
    }
  }
}

TEST(FingerprintTest, QuotedRespellingsShareAFingerprint) {
  const ExecPlan bare = MustCompile("//NP[@lex='saw' or //N]");
  const ExecPlan single = MustCompile("//'NP'[@lex='saw' or //'N']");
  const ExecPlan dbl = MustCompile("//\"NP\"[@lex=\"saw\" or //N]");
  const uint64_t fp = sql::PlanFingerprint(bare);
  EXPECT_EQ(fp, sql::PlanFingerprint(single));
  EXPECT_EQ(fp, sql::PlanFingerprint(dbl));
  EXPECT_TRUE(sql::PlanEquals(bare, single));
  // Different tag, same shape: must not collide.
  const ExecPlan other = MustCompile("//VP[@lex='saw' or //N]");
  EXPECT_NE(fp, sql::PlanFingerprint(other));
  EXPECT_FALSE(sql::PlanEquals(bare, other));
}

TEST(FingerprintTest, LiteralFirstComparisonsAreMirrored) {
  auto make = [](bool literal_first) {
    ExecPlan p;
    p.num_vars = 1;
    Conjunct c;
    if (literal_first) {
      c.lhs = Operand::Number(5);
      c.op = CmpOp::kGt;
      c.rhs = Operand::Column(0, PlanCol::kLeft);
    } else {
      c.lhs = Operand::Column(0, PlanCol::kLeft);
      c.op = CmpOp::kLt;
      c.rhs = Operand::Number(5);
    }
    p.conjuncts.push_back(std::move(c));
    return p;
  };
  const ExecPlan a = make(true);
  const ExecPlan b = make(false);
  EXPECT_EQ(sql::PlanFingerprint(a), sql::PlanFingerprint(b));
  EXPECT_TRUE(sql::PlanEquals(a, b));
}

TEST(FingerprintTest, EscapingOuterRefsAreAlphaRenamed) {
  // An EXISTS subtree is hashed standalone when it becomes a subplan-memo
  // key; which parent variable it happens to correlate with must not
  // change the key, only the *pattern* of correlation.
  auto subtree = [](int outer_var) {
    ExecPlan p;
    p.num_vars = 1;
    Conjunct c;
    c.lhs = Operand::Column(0, PlanCol::kTid);
    c.rhs = Operand::Column(Operand::kOuterVarBase + outer_var, PlanCol::kTid);
    p.conjuncts.push_back(std::move(c));
    return p;
  };
  const ExecPlan a = subtree(0);
  const ExecPlan b = subtree(7);
  EXPECT_EQ(sql::PlanFingerprint(a), sql::PlanFingerprint(b));
  EXPECT_TRUE(sql::PlanEquals(a, b));

  // Two *distinct* escaping refs must not alias one: (outer0, outer0) and
  // (outer0, outer3) correlate differently.
  auto pair_subtree = [](int second) {
    ExecPlan p;
    p.num_vars = 1;
    for (int outer : {0, second}) {
      Conjunct c;
      c.lhs = Operand::Column(0, PlanCol::kTid);
      c.rhs = Operand::Column(Operand::kOuterVarBase + outer, PlanCol::kTid);
      p.conjuncts.push_back(std::move(c));
    }
    return p;
  };
  const ExecPlan same = pair_subtree(0);
  const ExecPlan diff = pair_subtree(3);
  EXPECT_NE(sql::PlanFingerprint(same), sql::PlanFingerprint(diff));
  EXPECT_FALSE(sql::PlanEquals(same, diff));

  // Outer refs of a *nested* EXISTS point at variables inside the hashed
  // tree — structural, not escaping: renaming them changes the plan.
  auto nested = [&subtree](int inner_outer) {
    ExecPlan p;
    p.num_vars = 2;
    auto e = std::make_unique<BoolExpr>(BoolExpr::Kind::kExists);
    e->sub = std::make_unique<ExecPlan>(subtree(inner_outer));
    p.filters.push_back(std::move(e));
    return p;
  };
  const ExecPlan n0 = nested(0);
  const ExecPlan n1 = nested(1);
  EXPECT_NE(sql::PlanFingerprint(n0), sql::PlanFingerprint(n1));
  EXPECT_FALSE(sql::PlanEquals(n0, n1));
}

// ---------------------------------------------------------------------------
// Collision fallback

TEST(SubplanMemoRegistryTest, RefusesVerifiedCollisions) {
  service::SubplanMemoRegistry registry(/*memo_entries=*/64);
  const ExecPlan a = MustCompile("//NP");
  const ExecPlan b = MustCompile("//VP");
  // Force both subtrees under one key, as a 64-bit collision would.
  EXPECT_TRUE(registry.Register(42, a));
  EXPECT_TRUE(registry.Register(42, a.Clone()));  // structural match shares
  EXPECT_FALSE(registry.Register(42, b));         // collision is refused
  const service::SubplanMemoRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.subtrees, 1u);
  EXPECT_EQ(stats.cross_plan, 1u);
  EXPECT_EQ(stats.collisions, 1u);
}

// ---------------------------------------------------------------------------
// Serving: one Prepare for N spellings

TEST(FingerprintServiceTest, NSpellingsCostExactlyOnePrepare) {
  auto service = std::make_unique<service::QueryService>(
      MustBuild(testing::RandomCorpus(31, 24)));
  const std::vector<std::string> spellings = {
      "//NP[@lex='saw' or //N]",      "//'NP'[@lex='saw' or //N]",
      "//\"NP\"[@lex='saw' or //N]",  "//NP[@lex=\"saw\" or //N]",
      "//'NP'[@lex=\"saw\" or //'N']",
  };
  const uint64_t before = sql::PrepareCallCount();
  std::vector<QueryResult> results;
  for (const std::string& q : spellings) {
    Result<QueryResult> r = service->Query(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
    results.push_back(std::move(r).value());
  }
  // The acceptance bar: one prepared plan serves every spelling.
  EXPECT_EQ(sql::PrepareCallCount() - before, 1u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << spellings[i];
  }
  const service::ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.cache.misses, spellings.size());
  EXPECT_EQ(stats.cache.shared_prepare_hits, spellings.size() - 1);
  EXPECT_EQ(stats.cache.size, 1u);
  EXPECT_EQ(stats.cache.texts, spellings.size());
  EXPECT_EQ(stats.cache.fingerprints, 1u);

  // A swap rebuilds the session: the next spelling prepares afresh against
  // the new snapshot (fingerprint sharing never crosses a generation).
  service->UpdateSnapshot(MustBuild(testing::RandomCorpus(32, 10)));
  const uint64_t before_swap = sql::PrepareCallCount();
  ASSERT_TRUE(service->Query(spellings[0]).ok());
  EXPECT_EQ(sql::PrepareCallCount() - before_swap, 1u);
}

TEST(FingerprintServiceTest, FingerprintsAgreeAcrossCorpora) {
  // The cache keys the *unresolved* plan: two services over different
  // corpora assign one query the same fingerprint even though symbols
  // resolve differently per dictionary.
  service::QueryService a(MustBuild(testing::RandomCorpus(7, 16)));
  service::QueryService b(MustBuild(testing::RandomCorpus(1234, 30)));
  for (const char* q :
       {"//NP//V[@lex='saw']", "//S[not(//X)]", "//VP[//N or @lex='dog']"}) {
    Result<std::shared_ptr<const sql::PreparedPlan>> pa = a.GetPlan(q);
    Result<std::shared_ptr<const sql::PreparedPlan>> pb = b.GetPlan(q);
    ASSERT_TRUE(pa.ok());
    ASSERT_TRUE(pb.ok());
    EXPECT_NE(pa.value()->fingerprint, 0u) << q;
    EXPECT_EQ(pa.value()->fingerprint, pb.value()->fingerprint) << q;
  }
}

TEST(FingerprintServiceTest, CrossPlanExistsMemoServesSecondPlan) {
  // `//_[...]` computes the EXISTS answer for every node row; `//NP[...]`
  // carries a structurally identical subtree correlated over a subset of
  // those rows, so its probes must be answered by the registry memo filled
  // by the first plan — the cross-plan hits the per-plan memos of PR 4
  // could never produce.
  auto service = std::make_unique<service::QueryService>(
      MustBuild(testing::RandomCorpus(55, 26)));
  const std::string wide = "//_[//N or @lex='zzzunknown']";
  const std::string narrow = "//NP[//N or @lex='zzzunknown']";
  ASSERT_TRUE(service->Query(wide).ok());
  const service::ServiceStats after_wide = service->Stats();
  EXPECT_EQ(after_wide.exec.subplan_memo_hits, 0u);
  ASSERT_TRUE(service->Query(narrow).ok());
  const service::ServiceStats stats = service->Stats();
  EXPECT_GT(stats.exec.subplan_memo_hits, 0u);
  // Every memoizable subtree of the narrow plan (the path probe and the
  // attribute probe both compile to EXISTS) matched a representative the
  // wide plan registered.
  EXPECT_GT(stats.subplans.cross_plan, 0u);
  EXPECT_EQ(stats.subplans.collisions, 0u);
}

// ---------------------------------------------------------------------------
// Differential: fingerprint-shared serving == text-keyed serving

class FingerprintDifferentialTest : public ::testing::Test {
 protected:
  /// Runs `queries` through `service` twice — original spelling, then the
  /// quoted respelling (a front-map miss that must bind by fingerprint) —
  /// and checks both against `reference`.
  static void RunDifferential(service::QueryService& service,
                              LPathEngine& reference,
                              const std::vector<std::string>& queries) {
    for (const std::string& q : queries) {
      Result<QueryResult> expected = reference.Run(q);
      ASSERT_TRUE(expected.ok()) << q << " -> " << expected.status();
      Result<QueryResult> text_keyed = service.Query(q);
      ASSERT_TRUE(text_keyed.ok()) << q << " -> " << text_keyed.status();
      ASSERT_EQ(text_keyed.value(), expected.value()) << q;
      const std::string respelled = QuoteTags(q);
      Result<QueryResult> fp_keyed = service.Query(respelled);
      ASSERT_TRUE(fp_keyed.ok()) << respelled << " -> " << fp_keyed.status();
      ASSERT_EQ(fp_keyed.value(), expected.value()) << respelled;
    }
  }

  static std::vector<std::string> FuzzQueries(uint64_t seed, int n) {
    Rng rng(seed);
    QueryGen gen(&rng);
    std::vector<std::string> queries;
    for (int i = 0; i < n; ++i) queries.push_back(gen.Query());
    return queries;
  }
};

TEST_F(FingerprintDifferentialTest, BaseOnly150Queries) {
  SnapshotPtr snap = MustBuild(testing::RandomCorpus(2026, 24));
  service::QueryServiceOptions opts;
  opts.threads = 4;
  opts.adaptive_serial_rows = 0;  // exercise the sharded path too
  service::QueryService service(snap, opts);
  LPathEngine reference(snap->relation());
  RunDifferential(service, reference, FuzzQueries(808, 150));
  const service::ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache.shared_prepare_hits, 0u);
  EXPECT_EQ(stats.cache.fingerprint_collisions, 0u);
}

TEST_F(FingerprintDifferentialTest, BaseDeltaChain150Queries) {
  // The chain prepares every structure twice (base + delta dictionaries);
  // fingerprint sharing must share *both* per-source bundles, and the
  // rebuilt-combined corpus is the ground truth.
  Corpus base = testing::RandomCorpus(17, 18);
  Corpus combined;
  combined.ResetInterner(base.interner().Clone());
  combined.AppendFrom(base);
  combined.AppendFrom(testing::RandomCorpus(18, 9));
  SnapshotPtr base_snap = MustBuild(std::move(base));
  Result<SnapshotPtr> chain =
      base_snap->Append(testing::RandomCorpus(18, 9));
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_TRUE((*chain)->has_delta());
  SnapshotPtr reference_snap = MustBuild(std::move(combined));

  service::QueryService service(*chain);
  LPathEngine reference(reference_snap->relation());
  RunDifferential(service, reference, FuzzQueries(909, 150));
  const service::ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache.shared_prepare_hits, 0u);
  EXPECT_EQ(stats.cache.fingerprint_collisions, 0u);
}

// ---------------------------------------------------------------------------
// Batch coalescing

TEST(FingerprintServiceTest, QueryBatchCoalescesSameStructureMembers) {
  auto service = std::make_unique<service::QueryService>(
      MustBuild(testing::RandomCorpus(2100, 22)));
  const std::vector<std::string> batch = {
      "//NP[@lex='saw' or //N]",        // group A
      "//'NP'[@lex='saw' or //N]",      // group A, respelled
      "//\"NP\"[@lex='saw' or //N]",    // group A, respelled
      "//S//VP",                        // group B
      "//S //VP",                       // group B (normalizes equal)
      "//]broken",                      // parse error
  };
  const uint64_t before = sql::PrepareCallCount();
  std::vector<Result<QueryResult>> results = service->QueryBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  // Two structures -> two prepares, regardless of six members.
  EXPECT_EQ(sql::PrepareCallCount() - before, 2u);
  ASSERT_TRUE(results[0].ok());
  for (int i : {1, 2}) {
    ASSERT_TRUE(results[i].ok()) << batch[i];
    EXPECT_EQ(results[i].value(), results[0].value()) << batch[i];
  }
  ASSERT_TRUE(results[3].ok());
  ASSERT_TRUE(results[4].ok());
  EXPECT_EQ(results[4].value(), results[3].value());
  EXPECT_FALSE(results[5].ok());
  // Group A coalesced 2 members, group B 1 (the error member never runs).
  const service::ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.batch_coalesced, 3u);
  EXPECT_EQ(stats.queries, batch.size());
  EXPECT_EQ(stats.errors, 1u);
}

}  // namespace
}  // namespace lpath
