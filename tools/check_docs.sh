#!/bin/sh
# Documentation consistency gate (CI: the "docs link-check" step).
#
# Two checks, both grep-based so the gate needs nothing beyond POSIX sh:
#
#   1. Every relative markdown link in README.md and docs/*.md must point
#      at a file or directory that exists (anchors and external URLs are
#      skipped). Catches renames that orphan links.
#
#   2. docs/PROTOCOL.md is the normative wire spec: every protocol
#      constant, message type, and wire code declared in
#      src/net/protocol.h must be named in it. Catches protocol changes
#      that skip the spec.
#
# Exits nonzero listing every violation. Run from the repository root.
set -u

fail=0

say() { printf '%s\n' "$*"; }

# --- 1. relative links resolve ------------------------------------------

for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Pull out `](target)` link targets, one per line.
  links=$(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target=${link%%#*}            # strip in-page anchor
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      say "BROKEN LINK: $doc -> $link"
      fail=1
    fi
  done
done

# --- 2. PROTOCOL.md names every protocol.h identifier -------------------

header=src/net/protocol.h
spec=docs/PROTOCOL.md
if [ -f "$header" ] && [ -f "$spec" ]; then
  # Constants (kCamelCase constexpr), enum types, and enumerators. The
  # enumerator grep keys on the "= <value>," initializer style both enums
  # use; helper-local names never match these shapes.
  idents=$(
    grep -o 'constexpr [a-z0-9_]* k[A-Za-z0-9]*' "$header" | awk '{print $3}'
    grep -o 'enum class [A-Za-z]*' "$header" | awk '{print $3}'
    grep -o '^  k[A-Za-z0-9]* = [0-9]*' "$header" | awk '{print $1}'
  )
  for ident in $(printf '%s\n' "$idents" | sort -u); do
    if ! grep -q "$ident" "$spec"; then
      say "UNDOCUMENTED: $header declares $ident but $spec never names it"
      fail=1
    fi
  done
elif [ -f "$header" ]; then
  say "MISSING: $spec (normative spec for $header)"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  say ""
  say "docs check FAILED (see above)"
  exit 1
fi
say "docs check OK"
