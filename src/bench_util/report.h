// Paper-style result tables. Benchmarks record (figure row, system) → time
// and result size while they run; PrintReport() renders the same rows the
// paper's figures plot, side by side with the paper's numbers where they
// exist. EXPERIMENTS.md is written from these tables.

#ifndef LPATHDB_BENCH_UTIL_REPORT_H_
#define LPATHDB_BENCH_UTIL_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lpath {
namespace bench {

/// One measured cell.
struct Measurement {
  double seconds = 0.0;       ///< mean wall time per query evaluation
  size_t result_count = 0;
  bool supported = true;      ///< false: engine cannot express the query
};

/// Collects measurements for one report (usually one figure).
class ReportTable {
 public:
  explicit ReportTable(std::string title) : title_(std::move(title)) {}

  /// Records a cell; `row` is e.g. "Q3" and `column` e.g. "LPath".
  void Record(const std::string& row, const std::string& column,
              Measurement m);

  /// Marks a query an engine cannot run.
  void RecordUnsupported(const std::string& row, const std::string& column);

  /// Renders the table: one line per row, one time column per system, plus
  /// result counts. Optionally a trailing per-row annotation (e.g. the
  /// paper's result sizes).
  std::string Render(const std::vector<std::string>& columns,
                     const std::map<std::string, std::string>& annotations =
                         {}) const;

  /// Renders the table as machine-readable JSON — the BENCH_*.json
  /// trajectory format: {"title": ..., "rows": [{"row": ..., "cells":
  /// {"<col>": {"seconds": s, "results": n, "supported": b}, ...}}, ...]}.
  /// `extra` key/value pairs (already JSON-encoded values) are spliced
  /// into the top-level object, e.g. scale parameters.
  std::string RenderJson(
      const std::map<std::string, std::string>& extra = {}) const;

  const std::string& title() const { return title_; }
  bool has_row(const std::string& row) const;

 private:
  std::string title_;
  std::vector<std::string> row_order_;
  std::map<std::string, std::map<std::string, Measurement>> cells_;
};

/// Formats seconds with an adaptive unit (µs / ms / s).
std::string FormatSeconds(double seconds);

/// Run-identifying metadata for the BENCH_*.json trajectories, as
/// RenderJson `extra` entries (values already JSON-encoded):
///   git_sha   — GITHUB_SHA or LPATHDB_GIT_SHA env, else "unknown"
///   compiler  — compiling toolchain and version
///   nproc     — std::thread::hardware_concurrency()
/// Stamping these makes trajectories diffable across CI runs and runners
/// (bench_diff.py warns when nproc or scale differ instead of comparing
/// apples to oranges).
std::map<std::string, std::string> RunMetadataJson();

}  // namespace bench
}  // namespace lpath

#endif  // LPATHDB_BENCH_UTIL_REPORT_H_
