// The paper's evaluation workload: the 23 queries of Figure 6(c), each in
// LPath plus hand translations into the TGrep2 and CorpusSearch dialects
// (result node = the LPath output node, so all engines count the same
// set), the Figure 6(c) result sizes reported for the original WSJ/SWB
// corpora, and the Figure 10 XPath-expressibility flags.

#ifndef LPATHDB_BENCH_UTIL_SUITE_H_
#define LPATHDB_BENCH_UTIL_SUITE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lpath {
namespace bench {

struct BenchmarkQuery {
  int id = 0;                 ///< 1-based, as in Figure 6(c).
  const char* lpath = "";
  const char* tgrep = "";     ///< empty: not translated
  const char* cs = "";        ///< empty: not translated
  bool xpath_expressible = false;  ///< in the Figure 10 set of 11
  size_t paper_wsj = 0;       ///< result size on the original WSJ corpus
  size_t paper_swb = 0;       ///< ... and on the original SWB corpus
  const char* note = "";
};

/// The 23 queries, ordered by id.
const std::vector<BenchmarkQuery>& The23Queries();

/// Queries in the Figure 10 comparison (Q1, Q8, Q9, Q12–Q19).
std::vector<BenchmarkQuery> XPathExpressibleQueries();

/// Lookup by id (1..23).
const BenchmarkQuery& QueryById(int id);

}  // namespace bench
}  // namespace lpath

#endif  // LPATHDB_BENCH_UTIL_SUITE_H_
