#include "bench_util/fixtures.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "gen/generator.h"

namespace lpath {
namespace bench {

const char* DatasetName(Dataset d) {
  return d == Dataset::kWsj ? "WSJ" : "SWB";
}

int BenchmarkSentences() {
  static const int kSentences = [] {
    const char* env = std::getenv("LPATHDB_SENTENCES");
    if (env != nullptr) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    return 4000;
  }();
  return kSentences;
}

std::unique_ptr<EngineSet> BuildEngineSet(Corpus corpus) {
  auto set = std::make_unique<EngineSet>();
  auto shared = std::make_shared<const Corpus>(std::move(corpus));

  Result<SnapshotPtr> lsnap = CorpusSnapshot::Build(shared);
  if (!lsnap.ok()) {
    std::fprintf(stderr, "relation build failed: %s\n",
                 lsnap.status().ToString().c_str());
    std::abort();
  }
  set->lpath_snapshot = std::move(lsnap).value();

  RelationOptions xopts;
  xopts.scheme = LabelScheme::kXPath;
  Result<SnapshotPtr> xsnap = CorpusSnapshot::Build(shared, xopts);
  if (!xsnap.ok()) {
    std::fprintf(stderr, "xpath relation build failed: %s\n",
                 xsnap.status().ToString().c_str());
    std::abort();
  }
  set->xpath_snapshot = std::move(xsnap).value();

  set->lpath = std::make_unique<LPathEngine>(set->lpath_relation());
  set->xpath = std::make_unique<LPathEngine>(set->xpath_relation());
  set->navigational = std::make_unique<NavigationalEngine>(set->corpus());
  set->tgrep = std::make_unique<tgrep::TGrep2Engine>(set->corpus());
  set->cs = std::make_unique<cs::CorpusSearchEngine>(set->corpus());
  return set;
}

namespace {

Corpus Generate(Dataset dataset, int sentences) {
  Result<Corpus> corpus = dataset == Dataset::kWsj
                              ? gen::GenerateWsj(sentences)
                              : gen::GenerateSwb(sentences);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    std::abort();
  }
  return std::move(corpus).value();
}

}  // namespace

const EngineSet& GetFixture(Dataset dataset, int sentences) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, std::unique_ptr<EngineSet>> cache;
  if (sentences <= 0) sentences = BenchmarkSentences();
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(static_cast<int>(dataset), sentences);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, BuildEngineSet(Generate(dataset, sentences)))
             .first;
  }
  return *it->second;
}

const EngineSet& GetScaledWsj(double factor) {
  static std::mutex mu;
  static std::map<int, std::unique_ptr<EngineSet>> cache;
  const int base = BenchmarkSentences();
  const int key = static_cast<int>(factor * 100);
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    // Replication, as in the paper ("we replicated the WSJ dataset between
    // 0.5 and 4 times"): generate the base corpus, then copy whole-corpus
    // prefixes/multiples.
    Corpus corpus = Generate(Dataset::kWsj, base);
    if (factor < 1.0) {
      corpus.Truncate(static_cast<size_t>(base * factor));
    } else if (factor > 1.0) {
      corpus.ReplicateTo(static_cast<int>(factor));
    }
    it = cache.emplace(key, BuildEngineSet(std::move(corpus))).first;
  }
  return *it->second;
}

}  // namespace bench
}  // namespace lpath
