#include "bench_util/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/str_util.h"

namespace lpath {
namespace bench {

void ReportTable::Record(const std::string& row, const std::string& column,
                         Measurement m) {
  if (!cells_.count(row)) row_order_.push_back(row);
  cells_[row][column] = m;
}

void ReportTable::RecordUnsupported(const std::string& row,
                                    const std::string& column) {
  Measurement m;
  m.supported = false;
  Record(row, column, m);
}

bool ReportTable::has_row(const std::string& row) const {
  return cells_.count(row) > 0;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%8.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%8.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%8.2fs ", seconds);
  }
  return buf;
}

std::string ReportTable::Render(
    const std::vector<std::string>& columns,
    const std::map<std::string, std::string>& annotations) const {
  std::ostringstream os;
  os << "\n=== " << title_ << " ===\n";
  os << "  " << std::string(6, ' ');
  for (const std::string& c : columns) {
    os << " | " << c << std::string(c.size() < 18 ? 18 - c.size() : 0, ' ');
  }
  os << "\n";
  for (const std::string& row : row_order_) {
    char head[32];
    std::snprintf(head, sizeof(head), "  %-6s", row.c_str());
    os << head;
    const auto& row_cells = cells_.at(row);
    for (const std::string& c : columns) {
      os << " | ";
      auto it = row_cells.find(c);
      if (it == row_cells.end()) {
        os << std::string(18, ' ');
        continue;
      }
      const Measurement& m = it->second;
      if (!m.supported) {
        os << "       n/a        ";
        continue;
      }
      std::string t = FormatSeconds(m.seconds);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s %-7s", t.c_str(),
                    FormatWithCommas(static_cast<int64_t>(m.result_count))
                        .c_str());
      os << cell;
    }
    auto ann = annotations.find(row);
    if (ann != annotations.end()) {
      os << " | " << ann->second;
    }
    os << "\n";
  }
  return os.str();
}

std::string ReportTable::RenderJson(
    const std::map<std::string, std::string>& extra) const {
  // Keys and row/column names here are benchmark identifiers (ASCII, no
  // quotes/control characters), so plain escaping-free emission is fine.
  std::ostringstream os;
  os << "{\n  \"title\": \"" << title_ << "\"";
  for (const auto& [key, value] : extra) {
    os << ",\n  \"" << key << "\": " << value;
  }
  os << ",\n  \"rows\": [";
  bool first_row = true;
  for (const std::string& row : row_order_) {
    os << (first_row ? "\n" : ",\n") << "    {\"row\": \"" << row
       << "\", \"cells\": {";
    first_row = false;
    bool first_cell = true;
    for (const auto& [column, m] : cells_.at(row)) {
      os << (first_cell ? "" : ", ") << "\"" << column << "\": ";
      first_cell = false;
      char cell[128];
      std::snprintf(cell, sizeof(cell),
                    "{\"seconds\": %.9g, \"results\": %zu, \"supported\": %s}",
                    m.seconds, m.result_count, m.supported ? "true" : "false");
      os << cell;
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::map<std::string, std::string> RunMetadataJson() {
  auto quote = [](const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  };
  std::map<std::string, std::string> meta;
  const char* sha = std::getenv("GITHUB_SHA");
  if (sha == nullptr || sha[0] == '\0') sha = std::getenv("LPATHDB_GIT_SHA");
  meta["git_sha"] = quote(sha != nullptr && sha[0] != '\0' ? sha : "unknown");
#if defined(__clang__)
  meta["compiler"] = quote(std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  meta["compiler"] = quote(std::string("gcc ") + __VERSION__);
#else
  meta["compiler"] = quote("unknown");
#endif
  meta["nproc"] = std::to_string(std::thread::hardware_concurrency());
  return meta;
}

}  // namespace bench
}  // namespace lpath
