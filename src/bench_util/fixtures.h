// Shared benchmark fixtures: lazily built, cached corpora and engines.
//
// Scale: the paper's corpora hold ~49k sentences (1M words). The default
// benchmark scale is 4000 sentences per corpus (set LPATHDB_SENTENCES to
// override; use 49000 to approximate paper scale). Relative shapes — which
// engine wins where — are stable across scales; see EXPERIMENTS.md.

#ifndef LPATHDB_BENCH_UTIL_FIXTURES_H_
#define LPATHDB_BENCH_UTIL_FIXTURES_H_

#include <memory>
#include <string>

#include "cs/engine.h"
#include "lpath/engines.h"
#include "lpath/eval_nav.h"
#include "storage/snapshot.h"
#include "tgrep/engine.h"
#include "tree/corpus.h"

namespace lpath {
namespace bench {

/// Which evaluation corpus.
enum class Dataset { kWsj, kSwb };

const char* DatasetName(Dataset d);

/// Benchmark scale in sentences (env LPATHDB_SENTENCES, default 4000).
int BenchmarkSentences();

/// A corpus with every engine built over it. Construction is expensive;
/// use Fixture::Get for process-lifetime caching. The corpus and relations
/// live in shared snapshots (both labelings share one corpus), so service
/// benchmarks can hand them straight to snapshot-owning components.
struct EngineSet {
  SnapshotPtr lpath_snapshot;  // owns the corpus; LPath labeling
  SnapshotPtr xpath_snapshot;  // same corpus; XPath labeling
  std::unique_ptr<LPathEngine> lpath;
  std::unique_ptr<LPathEngine> xpath;
  std::unique_ptr<NavigationalEngine> navigational;
  std::unique_ptr<tgrep::TGrep2Engine> tgrep;
  std::unique_ptr<cs::CorpusSearchEngine> cs;

  const Corpus& corpus() const { return lpath_snapshot->corpus(); }
  const NodeRelation& lpath_relation() const {
    return lpath_snapshot->relation();
  }
  const NodeRelation& xpath_relation() const {
    return xpath_snapshot->relation();
  }
};

/// Builds every engine over `corpus` (consumes it).
std::unique_ptr<EngineSet> BuildEngineSet(Corpus corpus);

/// Process-lifetime cache keyed by (dataset, sentences). `sentences <= 0`
/// means BenchmarkSentences().
const EngineSet& GetFixture(Dataset dataset, int sentences = 0);

/// A WSJ fixture replicated to `factor` × the base sentence count
/// (Figure 9; factor may be fractional via `half` = 0.5x).
const EngineSet& GetScaledWsj(double factor);

}  // namespace bench
}  // namespace lpath

#endif  // LPATHDB_BENCH_UTIL_FIXTURES_H_
