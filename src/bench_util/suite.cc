#include "bench_util/suite.h"

#include <cassert>

namespace lpath {
namespace bench {

const std::vector<BenchmarkQuery>& The23Queries() {
  static const std::vector<BenchmarkQuery> kQueries = {
      {1, "//S[//_[@lex=saw]]", "S << saw", "(S Doms saw)", true, 153, 339,
       "sentences containing the word saw"},
      {2, "//VB->NP", "NP , VB", "focus: NP\nquery: (NP iFollows VB)", false,
       23618, 16557, "NPs immediately following a verb"},
      {3, "//VP/VB-->NN", "NN ,, (VB > VP)",
       "focus: NN\nquery: (NN Follows VB) AND (VP iDoms VB)", false, 63857,
       32386, "nouns following a verb that is a child of a VP"},
      {4, "//VP{/VB-->NN}", "NN=n ,, (VB > (VP << =n))",
       "focus: NN\nquery: (NN Follows VB) AND (VP iDoms VB) AND (VP Doms NN)",
       false, 46116, 25305, "same, scoped within the VP"},
      {5, "//VP{/NP$}", "NP >- VP", "focus: NP\nquery: (VP iDomsLast NP)",
       false, 29923, 22554, "rightmost NP child of a VP"},
      {6, "//VP{//NP$}", "NP >>- VP", "focus: NP\nquery: (VP domsLast NP)",
       false, 215104, 112159, "rightmost NP descendant of a VP"},
      {7, "//VP[{//^VB->NP->PP$}]", "VP=v <<, (VB . (NP . (PP >>- =v)))",
       "focus: VP\nquery: (VP domsFirst VB) AND (VB iPrecedes NP) AND "
       "(NP iPrecedes PP) AND (VP domsLast PP)",
       false, 2831, 1963, "VP spanned exactly by VB NP PP"},
      {8, "//S[//NP/ADJP]", "S << (ADJP > NP)",
       "focus: S\nquery: (S Doms ADJP) AND (NP iDoms ADJP)", true, 7832, 2900,
       "sentences with an ADJP under an NP"},
      {9, "//NP[not(//JJ)]", "NP !<< JJ",
       "(NP exists) AND NOT (NP Doms JJ)", true, 211392, 109311,
       "NPs containing no adjective"},
      {10, "//NP[->PP[//IN[@lex=of]]=>VP]", "NP . (PP << (IN < of) $. VP)",
       "focus: NP\nquery: (NP iPrecedes PP) AND (PP Doms IN) AND "
       "(IN iDoms of) AND (PP iSisterPrecedes VP)",
       false, 192, 31, "NP before an of-PP whose next sister is a VP"},
      {11, "//S[{//_[@lex=what]->_[@lex=building]}]",
       "S=s << (what . (building >> =s))",
       "focus: S\nquery: (S Doms what) AND (what iPrecedes building) AND "
       "(S Doms building)",
       false, 2, 5, "sentences with the bigram what building"},
      {12, "//_[@lex=rapprochement]", "__ < rapprochement",
       "(* iDoms rapprochement)", true, 1, 0, "a very rare word"},
      {13, "//_[@lex=1929]", "__ < 1929", "(* iDoms 1929)", true, 14, 0,
       "a rare numeral"},
      {14, "//ADVP-LOC-CLR", "ADVP-LOC-CLR", "(ADVP-LOC-CLR exists)", true,
       60, 0, "rare tag"},
      {15, "//WHPP", "WHPP", "(WHPP exists)", true, 87, 20, "rare tag"},
      {16, "//RRC/PP-TMP", "PP-TMP > RRC",
       "focus: PP-TMP\nquery: (RRC iDoms PP-TMP)", true, 8, 3,
       "rare parent/child pair"},
      {17, "//UCP-PRD/ADJP-PRD", "ADJP-PRD > UCP-PRD",
       "focus: ADJP-PRD\nquery: (UCP-PRD iDoms ADJP-PRD)", true, 17, 4,
       "rare parent/child pair"},
      {18, "//NP/NP/NP/NP/NP", "NP > (NP > (NP > (NP > NP)))",
       "focus: NP=e\nquery: (NP=a iDoms NP=b) AND (NP=b iDoms NP=c) AND "
       "(NP=c iDoms NP=d) AND (NP=d iDoms NP=e)",
       true, 254, 12, "five NPs vertically"},
      {19, "//VP/VP/VP", "VP > (VP > VP)",
       "focus: VP=c\nquery: (VP=a iDoms VP=b) AND (VP=b iDoms VP=c)", true,
       8769, 6093, "three VPs vertically"},
      {20, "//PP=>SBAR", "SBAR $, PP",
       "focus: SBAR\nquery: (PP iSisterPrecedes SBAR)", false, 640, 651,
       "SBAR right after a sister PP"},
      {21, "//ADVP=>ADJP", "ADJP $, ADVP",
       "focus: ADJP\nquery: (ADVP iSisterPrecedes ADJP)", false, 15, 37,
       "ADJP right after a sister ADVP"},
      {22, "//NP=>NP=>NP", "NP $, (NP $, NP)",
       "focus: NP=c\nquery: (NP=a iSisterPrecedes NP=b) AND "
       "(NP=b iSisterPrecedes NP=c)",
       false, 7, 7, "three adjacent sister NPs"},
      {23, "//VP=>VP", "VP $, VP",
       "focus: VP=b\nquery: (VP=a iSisterPrecedes VP=b)", false, 20, 72,
       "two adjacent sister VPs"},
  };
  return kQueries;
}

std::vector<BenchmarkQuery> XPathExpressibleQueries() {
  std::vector<BenchmarkQuery> out;
  for (const BenchmarkQuery& q : The23Queries()) {
    if (q.xpath_expressible) out.push_back(q);
  }
  return out;
}

const BenchmarkQuery& QueryById(int id) {
  const auto& all = The23Queries();
  assert(id >= 1 && id <= static_cast<int>(all.size()));
  return all[id - 1];
}

}  // namespace bench
}  // namespace lpath
