// The multi-corpus database layer: a catalog mapping corpus names to their
// current snapshot, each served by its own QueryService (prepared-plan
// cache + shard pool). This is the shape of the server the paper's pitch
// implies: one process holding several treebanks (WSJ, SWB, ...), routing
// each query to the right corpus, swapping in rebuilt indexes without
// downtime, and serving clients synchronously, asynchronously or streaming.
//
// Concurrency model:
//   - One mutex guards the catalog map shape and the options, taken only
//     for name resolution, attach/detach bookkeeping and snapshot
//     publication — never across query execution, pool construction, pool
//     join, or relation rebuild.
//   - Swap(name, snapshot) publishes through the service's session pointer
//     *while holding the catalog mutex* (a session build is a handful of
//     small allocations), which serializes publication against
//     SetServiceOptions' catalog replacement — a swap can never be
//     silently reverted by a concurrent service rebuild. Readers never
//     block on a swap: queries in flight hold the old snapshot alive
//     through shared ownership, and no torn state exists — a query sees
//     entirely the old or entirely the new snapshot.

#ifndef LPATHDB_DB_DATABASE_H_
#define LPATHDB_DB_DATABASE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "service/query_service.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "tree/corpus.h"

namespace lpath {
namespace db {

struct DatabaseOptions {
  /// Per-corpus serving options (threads, plan-cache size, sharding).
  service::QueryServiceOptions service;
  /// Labeling scheme used when the database builds a corpus's *first*
  /// snapshot (Open/OpenCorpus). Snapshots attached prebuilt keep their
  /// own, and Reload always rebuilds under the current snapshot's own
  /// options — to change a corpus's labeling, attach a rebuilt snapshot
  /// via Swap.
  RelationOptions relation;
  /// Live-corpus compaction threshold: when an Ingest leaves the corpus's
  /// snapshot chain with at least this many delta trees, a background
  /// compaction (merge delta into the base, republish) is scheduled. The
  /// delta stays queryable throughout — compaction is a throughput
  /// optimization, never a correctness requirement. 0 disables automatic
  /// compaction (Compact() still works on demand).
  int32_t compact_delta_trees = 4096;
  /// Durable live ingestion: when non-empty, every attached corpus keeps a
  /// write-ahead log under `<wal_dir>/<escaped name>/` (storage/wal.h).
  /// Ingest then commits each batch to the log (fsync and all) *before*
  /// publishing it — a failed append errors out without publishing — and
  /// every attach path replays records the snapshot does not already cover
  /// before the corpus serves, so an acknowledged Ingest survives a crash.
  /// A successful image-backed compaction stamps the image with the LSN it
  /// covers and checkpoints (truncates) the log behind it. Empty (the
  /// default) disables durable ingest entirely.
  std::string wal_dir;
  /// WAL tuning (segment size, sync-per-commit) when wal_dir is set.
  WalOptions wal;
};

/// One catalog row, for listings and monitoring.
struct CorpusInfo {
  std::string name;
  uint64_t snapshot_id = 0;
  size_t trees = 0;  ///< chain-wide (base + unmerged delta)
  size_t nodes = 0;  ///< chain-wide
  size_t relation_bytes = 0;  ///< base + delta relation footprint
  /// Trees in the unmerged delta (0 for a plain snapshot) — the live
  /// tail a compaction would fold into the base.
  size_t delta_trees = 0;
  int threads = 0;
  // Durability (all zero/false without DatabaseOptions::wal_dir).
  bool wal = false;              ///< corpus has a live write-ahead log
  uint64_t wal_last_lsn = 0;     ///< highest committed WAL record
  uint64_t wal_segments = 0;     ///< live WAL segment files
  // Background-compaction health: failures are counted (and the latest
  // error kept) rather than dropped on the floor; the compactor retries
  // with capped backoff, and a later Ingest reschedules regardless.
  uint64_t compaction_failures = 0;
  std::string last_compaction_error;  ///< empty after a clean compaction
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Catalog management ---------------------------------------------------

  /// Attaches a prebuilt snapshot under `name` and spins up its service.
  /// AlreadyExists if the name is taken; InvalidArgument for an empty name
  /// or null snapshot.
  Status Attach(const std::string& name, SnapshotPtr snapshot);

  /// Builds a snapshot from `corpus` (consumed) and attaches it.
  Status OpenCorpus(const std::string& name, Corpus corpus);

  /// Attaches the file at `path` as corpus `name`. Sniffs the format: a
  /// persistent relation image (see storage/image.h) is mmap-opened in
  /// O(file size) with no labeling or sorting; anything else is loaded as
  /// a Penn-bracketed treebank and its relation is built in memory.
  Status Open(const std::string& name, const std::string& path);

  /// Attaches a persistent relation image explicitly (errors if `path` is
  /// not an image).
  Status OpenImage(const std::string& name, const std::string& path);

  /// Writes corpus `name`'s current snapshot as a persistent relation
  /// image at `path`; a later Open/OpenImage of that file serves the same
  /// relation without rebuilding it. NotFound if `name` is not attached.
  Status Save(const std::string& name, const std::string& path) const;

  /// Atomically publishes `snapshot` as the current version of `name`.
  /// In-flight queries finish on the snapshot they started with; queries
  /// starting after the call see the new one. NotFound if `name` is not
  /// attached.
  Status Swap(const std::string& name, SnapshotPtr snapshot);

  /// Rebuilds the current snapshot's relation over the same corpus (the
  /// index-rebuild path) and publishes it via Swap.
  Status Reload(const std::string& name);

  // --- Live ingestion -------------------------------------------------------

  /// Appends `trees` to corpus `name` without downtime: the current
  /// snapshot chain is extended (O(delta) work — the base relation is
  /// shared untouched, see storage/snapshot.h) and the new chain is
  /// hot-swapped in. Queries in flight finish on the pre-append snapshot;
  /// queries starting after the call see the appended trees. Appends to
  /// one corpus are serialized by a per-corpus ingest lock, so concurrent
  /// Ingest calls all land (in some order) rather than overwriting each
  /// other. When the resulting delta reaches
  /// DatabaseOptions::compact_delta_trees, a background compaction is
  /// scheduled. NotFound if `name` is not attached; InvalidArgument for an
  /// empty batch.
  Status Ingest(const std::string& name, Corpus trees);

  /// Synchronously merges corpus `name`'s delta into its base and
  /// publishes the compacted snapshot (for an image-backed corpus this
  /// rewrites the image file crash-safely and remaps it). A no-op success
  /// when there is no delta. Readers are never blocked: in-flight queries
  /// keep the pre-compaction chain alive via their session references.
  Status Compact(const std::string& name);

  /// Removes `name` from the catalog. In-flight queries on its service are
  /// unaffected (the service lives until its last shared reference drops).
  Status Detach(const std::string& name);

  /// Rebuilds every corpus's service (fresh pools and plan caches, same
  /// snapshots) under new serving options — the ":threads N" path.
  void SetServiceOptions(const service::QueryServiceOptions& options);

  // --- Introspection --------------------------------------------------------

  bool Has(const std::string& name) const;
  std::vector<std::string> CorpusNames() const;  // sorted
  std::vector<CorpusInfo> List() const;          // sorted by name

  /// The current snapshot of `name`, or null if not attached.
  SnapshotPtr snapshot(const std::string& name) const;

  /// The serving handle for `name`, or null if not attached. Shared: keeps
  /// working (on its last published snapshot) even if the name is detached
  /// or swapped afterwards.
  std::shared_ptr<service::QueryService> service(const std::string& name) const;

  /// A copy: options may be rewritten concurrently by SetServiceOptions.
  DatabaseOptions options() const;

  // --- Routed query entry points -------------------------------------------

  /// Evaluates `query` against corpus `name`, synchronously.
  Result<QueryResult> Query(const std::string& name, const std::string& query);

  /// Submits `query` against corpus `name` for asynchronous evaluation.
  Result<service::PendingQuery> Submit(const std::string& name,
                                       const std::string& query);

  /// The network front end's entry point (src/net/): streams batches to
  /// `sink` and honors the cancellation/completion hooks in `opts`. The
  /// returned handle, the sink and the hooks all stay valid across a
  /// concurrent Swap/Detach (the query pins its service and session).
  Result<service::PendingQuery> Submit(const std::string& name,
                                       const std::string& query,
                                       service::RowSink sink,
                                       service::SubmitOptions opts);

  /// Streams `query`'s result rows against corpus `name` (see RowSink).
  Status QueryStream(const std::string& name, const std::string& query,
                     const service::RowSink& sink);

 private:
  std::shared_ptr<service::QueryService> Resolve(const std::string& name) const;
  /// The per-corpus ingest lock (created on first use), or null if `name`
  /// is not attached. Serializes the read-append-publish sequence of
  /// Ingest and Compact against each other, per corpus — never against
  /// queries, and never across corpora.
  std::shared_ptr<std::mutex> IngestMutexFor(const std::string& name);
  /// The corpus's live WAL handle, or null (not attached / no wal_dir).
  std::shared_ptr<Wal> WalFor(const std::string& name) const;
  /// Compact's body; also the background compactor's per-item work. Every
  /// outcome (either entry point) is recorded in the health map.
  Status CompactInternal(const std::string& name);
  Status CompactOnce(const std::string& name);
  /// Enqueues `name` for the background compactor (deduplicated), lazily
  /// starting the compactor thread on first use.
  void ScheduleCompaction(const std::string& name);
  void CompactorLoop();

  // Guards catalog_, options_ and options_version_, and serializes
  // snapshot publication with catalog replacement; never held across
  // queries or pool lifetimes.
  mutable std::mutex mu_;
  DatabaseOptions options_;
  /// Bumped by SetServiceOptions; Attach re-checks it before inserting a
  /// service built unlocked, so a freshly attached corpus can never serve
  /// on options that were replaced while its pool was being built.
  uint64_t options_version_ = 0;
  std::unordered_map<std::string, std::shared_ptr<service::QueryService>>
      catalog_;
  /// Per-corpus ingest locks (see IngestMutexFor), guarded by mu_ and held
  /// as shared_ptr so a lock stays valid across a concurrent Detach.
  std::unordered_map<std::string, std::shared_ptr<std::mutex>> ingest_mu_;
  /// Live WAL handles (only with DatabaseOptions::wal_dir), guarded by mu_
  /// for map shape; the Wal itself is internally synchronized and shared,
  /// so an in-flight Ingest keeps its handle across a concurrent Detach.
  std::unordered_map<std::string, std::shared_ptr<Wal>> wal_;

  /// One unit of background-compaction work. A failed attempt is re-queued
  /// with doubling backoff up to kMaxCompactAttempts (except NotFound —
  /// the corpus was detached); after that the delta simply stays live, the
  /// failure stays visible in compact_health_, and a later Ingest
  /// reschedules from attempt zero.
  struct CompactTask {
    std::string name;
    int attempt = 0;
    std::chrono::steady_clock::time_point ready;
  };
  struct CompactHealth {
    uint64_t failures = 0;
    std::string last_error;  ///< cleared by the next clean compaction
  };

  /// Background compactor: one lazily-started thread draining a
  /// deduplicated queue of compaction tasks; synchronous Compact() is the
  /// caller-facing error path, compact_health_ the monitoring one.
  mutable std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  std::deque<CompactTask> compact_queue_;
  std::unordered_map<std::string, CompactHealth> compact_health_;
  bool compact_stop_ = false;
  std::thread compactor_;
};

}  // namespace db
}  // namespace lpath

#endif  // LPATHDB_DB_DATABASE_H_
