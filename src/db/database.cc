#include "db/database.h"

#include <algorithm>
#include <utility>

#include "storage/image.h"
#include "tree/bracket_io.h"

namespace lpath {
namespace db {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Database::~Database() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    compact_stop_ = true;
    worker = std::move(compactor_);
  }
  compact_cv_.notify_all();
  // Joined outside compact_mu_ (the loop relocks it to exit). Queued
  // compactions are abandoned — the deltas they would have merged stay
  // valid in their snapshots, nothing is lost.
  if (worker.joinable()) worker.join();
}

Status Database::Attach(const std::string& name, SnapshotPtr snapshot) {
  if (name.empty()) {
    return Status::InvalidArgument("Database::Attach: empty corpus name");
  }
  if (snapshot == nullptr) {
    return Status::InvalidArgument("Database::Attach: null snapshot");
  }
  service::QueryServiceOptions service_options;
  uint64_t seen_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
    service_options = options_.service;
    seen_version = options_version_;
  }
  for (;;) {
    // The service (and its thread pool) is built outside the catalog lock;
    // the insert below re-checks both a racing attach of the same name and
    // a racing SetServiceOptions (which only rebuilds services already in
    // the catalog — inserting one built on the old options would leave
    // this corpus permanently behind).
    auto created =
        std::make_shared<service::QueryService>(snapshot, service_options);
    bool exists = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (catalog_.count(name) > 0) {
        exists = true;
      } else if (options_version_ == seen_version) {
        catalog_.emplace(name, std::move(created));
        return Status::OK();
      } else {
        service_options = options_.service;
        seen_version = options_version_;
      }
    }
    // The rejected service (an idle pool) winds down here, unlocked; on a
    // version change the loop rebuilds with the fresh options.
    created.reset();
    if (exists) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
  }
}

Status Database::OpenCorpus(const std::string& name, Corpus corpus) {
  RelationOptions relation_options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fast-fail before the expensive snapshot build; Attach re-checks
    // authoritatively for the racing case.
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
    relation_options = options_.relation;
  }
  LPATH_ASSIGN_OR_RETURN(
      SnapshotPtr snapshot,
      CorpusSnapshot::Build(std::move(corpus), relation_options));
  return Attach(name, std::move(snapshot));
}

Status Database::Open(const std::string& name, const std::string& path) {
  if (LooksLikeImageFile(path)) return OpenImage(name, path);
  Corpus corpus;
  LPATH_RETURN_IF_ERROR(LoadBracketFile(path, &corpus));
  if (corpus.empty()) {
    return Status::InvalidArgument("no trees in " + path);
  }
  return OpenCorpus(name, std::move(corpus));
}

Status Database::OpenImage(const std::string& name, const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fast-fail before mapping + checksumming; Attach re-checks
    // authoritatively for the racing case.
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
  }
  LPATH_ASSIGN_OR_RETURN(SnapshotPtr snapshot, CorpusSnapshot::Open(path));
  return Attach(name, std::move(snapshot));
}

Status Database::Save(const std::string& name, const std::string& path) const {
  SnapshotPtr snap = snapshot(name);
  if (snap == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return snap->Save(path);
}

Status Database::Swap(const std::string& name, SnapshotPtr snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("Database::Swap: null snapshot");
  }
  std::shared_ptr<const void> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("corpus not attached: " + name);
    }
    // Published under the catalog lock (a session build is a couple of
    // small allocations), so a concurrent SetServiceOptions rebuild can
    // never install a service that misses this snapshot. Queries in
    // flight are unaffected — each holds its own session reference.
    retired = it->second->UpdateSnapshot(std::move(snapshot));
  }
  // `retired` drops here, unlocked: if it was the last reference to the
  // old session, the corpus + relation teardown must not stall routing.
  return Status::OK();
}

Status Database::Reload(const std::string& name) {
  for (;;) {
    SnapshotPtr current = snapshot(name);
    if (current == nullptr) {
      return Status::NotFound("corpus not attached: " + name);
    }
    // The expensive rebuild runs unlocked, under the snapshot's own
    // options: a corpus attached with a non-default labeling keeps it
    // across reloads.
    LPATH_ASSIGN_OR_RETURN(SnapshotPtr rebuilt, current->Rebuild());
    std::shared_ptr<const void> retired;
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = catalog_.find(name);
      if (it == catalog_.end()) {
        return Status::NotFound("corpus not attached: " + name);
      }
      // Publish only if the snapshot we rebuilt from is still current; a
      // Swap that landed during the (long) rebuild must not be silently
      // rolled back by a rebuild of its predecessor. On conflict, loop
      // and rebuild the newer snapshot instead.
      if (it->second->snapshot() == current) {
        retired = it->second->UpdateSnapshot(std::move(rebuilt));
        published = true;
      }
    }
    if (published) return Status::OK();
  }
}

Status Database::Ingest(const std::string& name, Corpus trees) {
  if (trees.empty()) {
    return Status::InvalidArgument("Database::Ingest: empty tree batch");
  }
  std::shared_ptr<std::mutex> ingest_mu = IngestMutexFor(name);
  if (ingest_mu == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  // One append to this corpus at a time: the read-append-publish sequence
  // below is not atomic on its own, and two concurrent appends reading the
  // same chain would each publish a chain missing the other's trees.
  std::lock_guard<std::mutex> ingest_lock(*ingest_mu);
  SnapshotPtr appended;
  for (;;) {
    SnapshotPtr current = snapshot(name);
    if (current == nullptr) {
      return Status::NotFound("corpus not attached: " + name);
    }
    // O(delta): shares the base relation, rebuilds only the delta arena.
    LPATH_ASSIGN_OR_RETURN(appended, current->Append(trees));
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = catalog_.find(name);
      if (it == catalog_.end()) {
        return Status::NotFound("corpus not attached: " + name);
      }
      // Publish only onto the chain we appended to: a Swap/Reload that
      // landed meanwhile must not be silently rolled back. On conflict,
      // re-append onto the newer snapshot (the ingest lock guarantees the
      // conflict was not another ingest).
      if (it->second->snapshot() == current) {
        (void)it->second->UpdateSnapshot(appended);
        it->second->NoteIngest();
        published = true;
      }
    }
    if (published) break;
  }
  int32_t threshold = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threshold = options_.compact_delta_trees;
  }
  if (threshold > 0 && appended->delta_tree_count() >= threshold) {
    ScheduleCompaction(name);
  }
  return Status::OK();
}

Status Database::Compact(const std::string& name) {
  return CompactInternal(name);
}

Status Database::CompactInternal(const std::string& name) {
  std::shared_ptr<std::mutex> ingest_mu = IngestMutexFor(name);
  if (ingest_mu == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  // Holding the ingest lock across the merge means no append can extend
  // the chain we are folding — so "publish if still current" below only
  // ever loses to an explicit Swap/Reload, in which case the compacted
  // snapshot is stale and dropping it is correct.
  std::lock_guard<std::mutex> ingest_lock(*ingest_mu);
  SnapshotPtr current = snapshot(name);
  if (current == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  if (!current->has_delta()) return Status::OK();
  LPATH_ASSIGN_OR_RETURN(SnapshotPtr compacted, current->Compact());
  std::shared_ptr<const void> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("corpus not attached: " + name);
    }
    if (it->second->snapshot() == current) {
      retired = it->second->UpdateSnapshot(std::move(compacted));
      it->second->NoteCompaction();
    }
  }
  // `retired` (possibly the last reference to the pre-compaction chain)
  // drops here, unlocked.
  return Status::OK();
}

void Database::ScheduleCompaction(const std::string& name) {
  std::lock_guard<std::mutex> lock(compact_mu_);
  if (compact_stop_) return;
  if (std::find(compact_queue_.begin(), compact_queue_.end(), name) ==
      compact_queue_.end()) {
    compact_queue_.push_back(name);
  }
  if (!compactor_.joinable()) {
    compactor_ = std::thread([this] { CompactorLoop(); });
  }
  compact_cv_.notify_one();
}

void Database::CompactorLoop() {
  std::unique_lock<std::mutex> lock(compact_mu_);
  for (;;) {
    compact_cv_.wait(
        lock, [this] { return compact_stop_ || !compact_queue_.empty(); });
    if (compact_stop_) return;
    const std::string name = std::move(compact_queue_.front());
    compact_queue_.pop_front();
    lock.unlock();
    // Best effort: on failure (or a concurrent Detach) the delta simply
    // stays live and a later Ingest reschedules; the synchronous Compact()
    // entry point is where errors surface to a caller.
    (void)CompactInternal(name);
    lock.lock();
  }
}

std::shared_ptr<std::mutex> Database::IngestMutexFor(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_.count(name) == 0) return nullptr;
  std::shared_ptr<std::mutex>& slot = ingest_mu_[name];
  if (slot == nullptr) slot = std::make_shared<std::mutex>();
  return slot;
}

Status Database::Detach(const std::string& name) {
  std::shared_ptr<service::QueryService> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("corpus not attached: " + name);
    }
    victim = std::move(it->second);
    catalog_.erase(it);
    // The lock entry goes too (an in-flight Ingest holding the shared_ptr
    // keeps its mutex alive; it will fail NotFound at the publish step).
    ingest_mu_.erase(name);
  }
  // `victim` drops here, outside the lock: if this was the last reference
  // the pool joins now, without stalling the catalog.
  return Status::OK();
}

void Database::SetServiceOptions(const service::QueryServiceOptions& options) {
  std::vector<std::string> names;
  uint64_t my_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_.service = options;
    options_version_ += 1;
    my_version = options_version_;
    names.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) names.push_back(name);
  }
  // Old services are parked here and wind down (drain + pool join) after
  // the last unlock, so slow in-flight queries never stall the catalog.
  std::vector<std::shared_ptr<service::QueryService>> retired;
  for (const std::string& name : names) {
    SnapshotPtr snap;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = catalog_.find(name);
      if (it == catalog_.end()) continue;  // detached meanwhile
      snap = it->second->snapshot();
    }
    // Slow: spawns the replacement pool. Runs unlocked, so Swap/Query on
    // every corpus proceed meanwhile.
    auto rebuilt = std::make_shared<service::QueryService>(snap, options);
    std::lock_guard<std::mutex> lock(mu_);
    if (options_version_ != my_version) {
      // A later SetServiceOptions superseded this one mid-rebuild; it
      // republishes every corpus with the newer options, so installing
      // ours would leave this corpus permanently behind. Stop entirely.
      retired.push_back(std::move(rebuilt));
      break;
    }
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      retired.push_back(std::move(rebuilt));  // detached while rebuilding
      continue;
    }
    // A Swap may have published a newer snapshot while the pool was being
    // built; re-publish it into the replacement before installing. Swap
    // also holds mu_, so the entry cannot change under us again. The
    // replaced session is the replacement's freshly built one — its
    // snapshot is still referenced by `snap`, so dropping it here is cheap.
    SnapshotPtr current = it->second->snapshot();
    if (current != snap) (void)rebuilt->UpdateSnapshot(std::move(current));
    retired.push_back(std::exchange(it->second, std::move(rebuilt)));
  }
}

DatabaseOptions Database::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

bool Database::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.count(name) > 0;
}

std::vector<std::string> Database::CorpusNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<CorpusInfo> Database::List() const {
  std::vector<std::pair<std::string, std::shared_ptr<service::QueryService>>>
      rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) {
      rows.emplace_back(name, service);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CorpusInfo> out;
  out.reserve(rows.size());
  for (const auto& [name, service] : rows) {
    const SnapshotPtr snap = service->snapshot();
    CorpusInfo info;
    info.name = name;
    info.snapshot_id = snap->id();
    // Counted from the relations, not the corpus: an image-backed snapshot
    // serves mapped columns over a tree-less corpus. Chain-wide — the
    // unmerged delta's trees and rows are part of the corpus.
    info.trees = static_cast<size_t>(snap->tree_count());
    info.nodes = snap->element_count();
    info.relation_bytes = snap->relation().MemoryBytes();
    if (snap->has_delta()) {
      info.relation_bytes += snap->delta_relation()->MemoryBytes();
    }
    info.delta_trees = static_cast<size_t>(snap->delta_tree_count());
    info.threads = service->threads();
    out.push_back(std::move(info));
  }
  return out;
}

SnapshotPtr Database::snapshot(const std::string& name) const {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  return service == nullptr ? nullptr : service->snapshot();
}

std::shared_ptr<service::QueryService> Database::service(
    const std::string& name) const {
  return Resolve(name);
}

Result<QueryResult> Database::Query(const std::string& name,
                                    const std::string& query) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->Query(query);
}

Result<service::PendingQuery> Database::Submit(const std::string& name,
                                               const std::string& query) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->Submit(query);
}

Status Database::QueryStream(const std::string& name, const std::string& query,
                             const service::RowSink& sink) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->QueryStream(query, sink);
}

std::shared_ptr<service::QueryService> Database::Resolve(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second;
}

}  // namespace db
}  // namespace lpath
