#include "db/database.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "storage/image.h"
#include "tree/bracket_io.h"

namespace lpath {
namespace db {

namespace {

/// Backoff schedule for failed background compactions: 10ms, 20ms, 40ms
/// before the attempt cap — enough to ride out a transient I/O failure
/// without turning the compactor into a busy loop.
constexpr int kMaxCompactAttempts = 4;

std::chrono::milliseconds CompactBackoff(int attempt) {
  return std::chrono::milliseconds(10) * (1 << attempt);
}

/// The per-corpus log directory under wal_dir. Corpus names are
/// caller-chosen strings, so everything outside [A-Za-z0-9_-] is %XX-hex
/// escaped — no separator, traversal, or dot-file surprises, and distinct
/// names never collide.
std::string WalDirFor(const std::string& wal_dir, const std::string& name) {
  std::string out = wal_dir;
  out += '/';
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (safe) {
      out += c;
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  return out;
}

}  // namespace

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Database::~Database() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    compact_stop_ = true;
    worker = std::move(compactor_);
  }
  compact_cv_.notify_all();
  // Joined outside compact_mu_ (the loop relocks it to exit). Queued
  // compactions are abandoned — the deltas they would have merged stay
  // valid in their snapshots, nothing is lost.
  if (worker.joinable()) worker.join();
}

Status Database::Attach(const std::string& name, SnapshotPtr snapshot) {
  if (name.empty()) {
    return Status::InvalidArgument("Database::Attach: empty corpus name");
  }
  if (snapshot == nullptr) {
    return Status::InvalidArgument("Database::Attach: null snapshot");
  }
  service::QueryServiceOptions service_options;
  uint64_t seen_version = 0;
  std::string wal_dir;
  WalOptions wal_options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
    service_options = options_.service;
    seen_version = options_version_;
    wal_dir = options_.wal_dir;
    wal_options = options_.wal;
  }
  // Durable mode: open the corpus's sidecar log and fold every record the
  // snapshot does not already cover into the delta chain *before* the
  // corpus serves — an acknowledged pre-crash Ingest is visible to the
  // first post-crash query. All batches accumulate into one corpus and
  // re-enter through a single Append, so recovery is O(total replayed),
  // not O(batches * delta). A corrupt (non-torn) log is a clean error: the
  // corpus refuses to attach rather than silently serve a lossy middle.
  std::shared_ptr<Wal> wal;
  uint64_t replayed_batches = 0;
  if (!wal_dir.empty()) {
    LPATH_ASSIGN_OR_RETURN(wal, Wal::Open(WalDirFor(wal_dir, name),
                                          wal_options));
    // A checkpoint that emptied the log persists its position in the fresh
    // segment header — but a crash between its unlinks and that rotation
    // loses it. The image's stamp is the floor that closes the window:
    // without it, new appends could reuse covered LSNs and be silently
    // filtered on the next replay.
    wal->EnsureNextLsnAbove(snapshot->base_wal_lsn());
    Corpus pending;
    LPATH_RETURN_IF_ERROR(
        wal->Replay(snapshot->base_wal_lsn(),
                    [&](uint64_t /*lsn*/, std::string_view payload) {
                      ++replayed_batches;
                      return ParseBracketText(payload, &pending);
                    }));
    if (!pending.empty()) {
      LPATH_ASSIGN_OR_RETURN(snapshot, snapshot->Append(pending));
    }
  }
  for (;;) {
    // The service (and its thread pool) is built outside the catalog lock;
    // the insert below re-checks both a racing attach of the same name and
    // a racing SetServiceOptions (which only rebuilds services already in
    // the catalog — inserting one built on the old options would leave
    // this corpus permanently behind).
    auto created =
        std::make_shared<service::QueryService>(snapshot, service_options);
    bool exists = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (catalog_.count(name) > 0) {
        exists = true;
      } else if (options_version_ == seen_version) {
        catalog_.emplace(name, created);
        if (wal != nullptr) wal_[name] = wal;
        if (replayed_batches > 0) created->NoteReplay(replayed_batches);
        return Status::OK();
      } else {
        service_options = options_.service;
        seen_version = options_version_;
      }
    }
    // The rejected service (an idle pool) winds down here, unlocked; on a
    // version change the loop rebuilds with the fresh options.
    created.reset();
    if (exists) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
  }
}

Status Database::OpenCorpus(const std::string& name, Corpus corpus) {
  RelationOptions relation_options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fast-fail before the expensive snapshot build; Attach re-checks
    // authoritatively for the racing case.
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
    relation_options = options_.relation;
  }
  LPATH_ASSIGN_OR_RETURN(
      SnapshotPtr snapshot,
      CorpusSnapshot::Build(std::move(corpus), relation_options));
  return Attach(name, std::move(snapshot));
}

Status Database::Open(const std::string& name, const std::string& path) {
  if (LooksLikeImageFile(path)) return OpenImage(name, path);
  Corpus corpus;
  LPATH_RETURN_IF_ERROR(LoadBracketFile(path, &corpus));
  if (corpus.empty()) {
    return Status::InvalidArgument("no trees in " + path);
  }
  return OpenCorpus(name, std::move(corpus));
}

Status Database::OpenImage(const std::string& name, const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fast-fail before mapping + checksumming; Attach re-checks
    // authoritatively for the racing case.
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
  }
  LPATH_ASSIGN_OR_RETURN(SnapshotPtr snapshot, CorpusSnapshot::Open(path));
  return Attach(name, std::move(snapshot));
}

Status Database::Save(const std::string& name, const std::string& path) const {
  SnapshotPtr snap = snapshot(name);
  if (snap == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return snap->Save(path);
}

Status Database::Swap(const std::string& name, SnapshotPtr snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("Database::Swap: null snapshot");
  }
  std::shared_ptr<const void> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("corpus not attached: " + name);
    }
    // Published under the catalog lock (a session build is a couple of
    // small allocations), so a concurrent SetServiceOptions rebuild can
    // never install a service that misses this snapshot. Queries in
    // flight are unaffected — each holds its own session reference.
    retired = it->second->UpdateSnapshot(std::move(snapshot));
  }
  // `retired` drops here, unlocked: if it was the last reference to the
  // old session, the corpus + relation teardown must not stall routing.
  return Status::OK();
}

Status Database::Reload(const std::string& name) {
  for (;;) {
    SnapshotPtr current = snapshot(name);
    if (current == nullptr) {
      return Status::NotFound("corpus not attached: " + name);
    }
    // The expensive rebuild runs unlocked, under the snapshot's own
    // options: a corpus attached with a non-default labeling keeps it
    // across reloads.
    LPATH_ASSIGN_OR_RETURN(SnapshotPtr rebuilt, current->Rebuild());
    std::shared_ptr<const void> retired;
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = catalog_.find(name);
      if (it == catalog_.end()) {
        return Status::NotFound("corpus not attached: " + name);
      }
      // Publish only if the snapshot we rebuilt from is still current; a
      // Swap that landed during the (long) rebuild must not be silently
      // rolled back by a rebuild of its predecessor. On conflict, loop
      // and rebuild the newer snapshot instead.
      if (it->second->snapshot() == current) {
        retired = it->second->UpdateSnapshot(std::move(rebuilt));
        published = true;
      }
    }
    if (published) return Status::OK();
  }
}

Status Database::Ingest(const std::string& name, Corpus trees) {
  if (trees.empty()) {
    return Status::InvalidArgument("Database::Ingest: empty tree batch");
  }
  std::shared_ptr<std::mutex> ingest_mu = IngestMutexFor(name);
  if (ingest_mu == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  // One append to this corpus at a time: the read-append-publish sequence
  // below is not atomic on its own, and two concurrent appends reading the
  // same chain would each publish a chain missing the other's trees.
  std::lock_guard<std::mutex> ingest_lock(*ingest_mu);
  // Durable mode: the batch commits to the log (write + fsync) *before*
  // anything publishes, so success means "on disk", and any WAL failure
  // means the client never saw the trees — no publish, clean error. The
  // payload is the batch's bracketed text, serialized once up front; the
  // publish retry loop below never re-appends to the log.
  std::shared_ptr<Wal> wal = WalFor(name);
  uint64_t lsn = 0;
  uint64_t payload_bytes = 0;
  if (wal != nullptr) {
    const std::string payload = WriteBracketCorpus(trees);
    payload_bytes = payload.size();
    LPATH_ASSIGN_OR_RETURN(lsn, wal->Append(payload));
  }
  // Any failure after the WAL commit but before a publish: the record was
  // never acknowledged, so it must not resurrect on replay. Rollback
  // truncates it (best effort — under the ingest lock it is still the
  // log's latest record).
  const auto unpublished = [&](const Status& status) {
    if (wal != nullptr && lsn != 0) (void)wal->Rollback(lsn);
    return status;
  };
  SnapshotPtr appended;
  for (;;) {
    SnapshotPtr current = snapshot(name);
    if (current == nullptr) {
      return unpublished(Status::NotFound("corpus not attached: " + name));
    }
    // O(delta): shares the base relation, rebuilds only the delta arena.
    Result<SnapshotPtr> appended_or = current->Append(trees);
    if (!appended_or.ok()) return unpublished(appended_or.status());
    appended = std::move(appended_or).value();
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = catalog_.find(name);
      if (it == catalog_.end()) {
        return unpublished(
            Status::NotFound("corpus not attached: " + name));
      }
      // Publish only onto the chain we appended to: a Swap/Reload that
      // landed meanwhile must not be silently rolled back. On conflict,
      // re-append onto the newer snapshot (the ingest lock guarantees the
      // conflict was not another ingest).
      if (it->second->snapshot() == current) {
        (void)it->second->UpdateSnapshot(appended);
        it->second->NoteIngest();
        if (wal != nullptr) it->second->NoteWalAppend(payload_bytes);
        published = true;
      }
    }
    if (published) break;
  }
  int32_t threshold = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threshold = options_.compact_delta_trees;
  }
  if (threshold > 0 && appended->delta_tree_count() >= threshold) {
    ScheduleCompaction(name);
  }
  return Status::OK();
}

Status Database::Compact(const std::string& name) {
  return CompactInternal(name);
}

Status Database::CompactInternal(const std::string& name) {
  const Status status = CompactOnce(name);
  // Record the outcome for List()/monitoring — from both entry points, so
  // a synchronous Compact() failure is just as visible as a background
  // one. Failures accumulate; a clean compaction clears only the error
  // text (the count keeps witnessing that something went wrong before).
  // NotFound is not recorded: the corpus was detached and its health
  // purged — writing here would resurrect the entry and smear it onto a
  // later attach under the same name.
  if (!status.IsNotFound()) {
    std::lock_guard<std::mutex> lock(compact_mu_);
    CompactHealth& health = compact_health_[name];
    if (status.ok()) {
      health.last_error.clear();
    } else {
      health.failures += 1;
      health.last_error = status.message();
    }
  }
  return status;
}

Status Database::CompactOnce(const std::string& name) {
  std::shared_ptr<std::mutex> ingest_mu = IngestMutexFor(name);
  if (ingest_mu == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  // Holding the ingest lock across the merge means no append can extend
  // the chain we are folding — so "publish if still current" below only
  // ever loses to an explicit Swap/Reload, in which case the compacted
  // snapshot is stale and dropping it is correct. It also freezes the WAL
  // position: every committed record is ≤ last_lsn() here, so the stamp
  // written into the image is exactly what the merged relation covers.
  std::lock_guard<std::mutex> ingest_lock(*ingest_mu);
  SnapshotPtr current = snapshot(name);
  if (current == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  if (!current->has_delta()) return Status::OK();
  std::shared_ptr<Wal> wal = WalFor(name);
  ImageSaveOptions save_options;
  if (wal != nullptr) save_options.wal_lsn = wal->last_lsn();
  LPATH_ASSIGN_OR_RETURN(SnapshotPtr compacted,
                         current->Compact(nullptr, save_options));
  const bool image_backed = compacted->image_backed();
  bool published = false;
  std::shared_ptr<service::QueryService> service;
  std::shared_ptr<const void> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("corpus not attached: " + name);
    }
    if (it->second->snapshot() == current) {
      service = it->second;
      retired = it->second->UpdateSnapshot(std::move(compacted));
      it->second->NoteCompaction();
      published = true;
    }
  }
  // Checkpoint only after the compacted snapshot is both durable (the
  // rewritten image carries the stamp) and published: everything the log
  // held up to the stamp now lives in the image, so those segments can
  // go. Memory-backed corpora never checkpoint — their base is not
  // persistent, and recovery needs the full log over the original file. A
  // failed checkpoint is reported (and retried by the next compaction)
  // but loses nothing: replay filters by the image's stamp either way.
  if (published && image_backed && wal != nullptr) {
    LPATH_RETURN_IF_ERROR(wal->Checkpoint(save_options.wal_lsn));
    service->NoteCheckpoint();
  }
  // `retired` (possibly the last reference to the pre-compaction chain)
  // drops here, unlocked.
  return Status::OK();
}

void Database::ScheduleCompaction(const std::string& name) {
  std::lock_guard<std::mutex> lock(compact_mu_);
  if (compact_stop_) return;
  const bool queued =
      std::any_of(compact_queue_.begin(), compact_queue_.end(),
                  [&](const CompactTask& t) { return t.name == name; });
  if (!queued) {
    compact_queue_.push_back(
        CompactTask{name, 0, std::chrono::steady_clock::now()});
  }
  if (!compactor_.joinable()) {
    compactor_ = std::thread([this] { CompactorLoop(); });
  }
  compact_cv_.notify_one();
}

void Database::CompactorLoop() {
  std::unique_lock<std::mutex> lock(compact_mu_);
  for (;;) {
    compact_cv_.wait(
        lock, [this] { return compact_stop_ || !compact_queue_.empty(); });
    if (compact_stop_) return;
    // Run the earliest-due task; if even that one is still backing off,
    // sleep until it is due (re-checking on wakeup — a stop or a fresh
    // task may land meanwhile).
    auto next = std::min_element(
        compact_queue_.begin(), compact_queue_.end(),
        [](const CompactTask& a, const CompactTask& b) {
          return a.ready < b.ready;
        });
    if (next->ready > std::chrono::steady_clock::now()) {
      compact_cv_.wait_until(lock, next->ready);
      continue;
    }
    CompactTask task = std::move(*next);
    compact_queue_.erase(next);
    lock.unlock();
    const Status status = CompactInternal(task.name);
    lock.lock();
    // Transient failures retry with doubling backoff up to the attempt
    // cap (already counted in compact_health_ by CompactInternal);
    // NotFound means detached — nothing left to compact.
    if (!status.ok() && !status.IsNotFound() && !compact_stop_ &&
        task.attempt + 1 < kMaxCompactAttempts) {
      const bool queued = std::any_of(
          compact_queue_.begin(), compact_queue_.end(),
          [&](const CompactTask& t) { return t.name == task.name; });
      if (!queued) {
        compact_queue_.push_back(CompactTask{
            std::move(task.name), task.attempt + 1,
            std::chrono::steady_clock::now() + CompactBackoff(task.attempt)});
      }
    }
  }
}

std::shared_ptr<std::mutex> Database::IngestMutexFor(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_.count(name) == 0) return nullptr;
  std::shared_ptr<std::mutex>& slot = ingest_mu_[name];
  if (slot == nullptr) slot = std::make_shared<std::mutex>();
  return slot;
}

std::shared_ptr<Wal> Database::WalFor(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = wal_.find(name);
  return it == wal_.end() ? nullptr : it->second;
}

Status Database::Detach(const std::string& name) {
  std::shared_ptr<service::QueryService> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("corpus not attached: " + name);
    }
    victim = std::move(it->second);
    catalog_.erase(it);
    // The lock entry goes too (an in-flight Ingest holding the shared_ptr
    // keeps its mutex alive; it will fail NotFound at the publish step —
    // and roll its WAL record back through its own shared handle).
    ingest_mu_.erase(name);
    wal_.erase(name);
  }
  {
    // Purge the compactor's state for the name: a queued task would only
    // churn to NotFound (or worse, compact an unrelated corpus attached
    // later under the same name), and stale health must not smear onto
    // that successor.
    std::lock_guard<std::mutex> lock(compact_mu_);
    compact_queue_.erase(
        std::remove_if(compact_queue_.begin(), compact_queue_.end(),
                       [&](const CompactTask& t) { return t.name == name; }),
        compact_queue_.end());
    compact_health_.erase(name);
  }
  // `victim` drops here, outside the lock: if this was the last reference
  // the pool joins now, without stalling the catalog.
  return Status::OK();
}

void Database::SetServiceOptions(const service::QueryServiceOptions& options) {
  std::vector<std::string> names;
  uint64_t my_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_.service = options;
    options_version_ += 1;
    my_version = options_version_;
    names.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) names.push_back(name);
  }
  // Old services are parked here and wind down (drain + pool join) after
  // the last unlock, so slow in-flight queries never stall the catalog.
  std::vector<std::shared_ptr<service::QueryService>> retired;
  for (const std::string& name : names) {
    SnapshotPtr snap;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = catalog_.find(name);
      if (it == catalog_.end()) continue;  // detached meanwhile
      snap = it->second->snapshot();
    }
    // Slow: spawns the replacement pool. Runs unlocked, so Swap/Query on
    // every corpus proceed meanwhile.
    auto rebuilt = std::make_shared<service::QueryService>(snap, options);
    std::lock_guard<std::mutex> lock(mu_);
    if (options_version_ != my_version) {
      // A later SetServiceOptions superseded this one mid-rebuild; it
      // republishes every corpus with the newer options, so installing
      // ours would leave this corpus permanently behind. Stop entirely.
      retired.push_back(std::move(rebuilt));
      break;
    }
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      retired.push_back(std::move(rebuilt));  // detached while rebuilding
      continue;
    }
    // A Swap may have published a newer snapshot while the pool was being
    // built; re-publish it into the replacement before installing. Swap
    // also holds mu_, so the entry cannot change under us again. The
    // replaced session is the replacement's freshly built one — its
    // snapshot is still referenced by `snap`, so dropping it here is cheap.
    SnapshotPtr current = it->second->snapshot();
    if (current != snap) (void)rebuilt->UpdateSnapshot(std::move(current));
    retired.push_back(std::exchange(it->second, std::move(rebuilt)));
  }
}

DatabaseOptions Database::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

bool Database::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.count(name) > 0;
}

std::vector<std::string> Database::CorpusNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<CorpusInfo> Database::List() const {
  struct Row {
    std::string name;
    std::shared_ptr<service::QueryService> service;
    std::shared_ptr<Wal> wal;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) {
      auto wal_it = wal_.find(name);
      rows.push_back(Row{name, service,
                         wal_it == wal_.end() ? nullptr : wal_it->second});
    }
  }
  std::unordered_map<std::string, CompactHealth> health;
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    health = compact_health_;
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  std::vector<CorpusInfo> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    const SnapshotPtr snap = row.service->snapshot();
    CorpusInfo info;
    info.name = row.name;
    info.snapshot_id = snap->id();
    // Counted from the relations, not the corpus: an image-backed snapshot
    // serves mapped columns over a tree-less corpus. Chain-wide — the
    // unmerged delta's trees and rows are part of the corpus.
    info.trees = static_cast<size_t>(snap->tree_count());
    info.nodes = snap->element_count();
    info.relation_bytes = snap->relation().MemoryBytes();
    if (snap->has_delta()) {
      info.relation_bytes += snap->delta_relation()->MemoryBytes();
    }
    info.delta_trees = static_cast<size_t>(snap->delta_tree_count());
    info.threads = row.service->threads();
    if (row.wal != nullptr) {
      const WalStats wal_stats = row.wal->stats();
      info.wal = true;
      info.wal_last_lsn = wal_stats.last_lsn;
      info.wal_segments = wal_stats.segments;
    }
    if (auto it = health.find(row.name); it != health.end()) {
      info.compaction_failures = it->second.failures;
      info.last_compaction_error = it->second.last_error;
    }
    out.push_back(std::move(info));
  }
  return out;
}

SnapshotPtr Database::snapshot(const std::string& name) const {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  return service == nullptr ? nullptr : service->snapshot();
}

std::shared_ptr<service::QueryService> Database::service(
    const std::string& name) const {
  return Resolve(name);
}

Result<QueryResult> Database::Query(const std::string& name,
                                    const std::string& query) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->Query(query);
}

Result<service::PendingQuery> Database::Submit(const std::string& name,
                                               const std::string& query) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->Submit(query);
}

Result<service::PendingQuery> Database::Submit(const std::string& name,
                                               const std::string& query,
                                               service::RowSink sink,
                                               service::SubmitOptions opts) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->Submit(query, std::move(sink), std::move(opts));
}

Status Database::QueryStream(const std::string& name, const std::string& query,
                             const service::RowSink& sink) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->QueryStream(query, sink);
}

std::shared_ptr<service::QueryService> Database::Resolve(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second;
}

}  // namespace db
}  // namespace lpath
