#include "db/database.h"

#include <algorithm>
#include <utility>

#include "storage/image.h"
#include "tree/bracket_io.h"

namespace lpath {
namespace db {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Database::~Database() = default;

Status Database::Attach(const std::string& name, SnapshotPtr snapshot) {
  if (name.empty()) {
    return Status::InvalidArgument("Database::Attach: empty corpus name");
  }
  if (snapshot == nullptr) {
    return Status::InvalidArgument("Database::Attach: null snapshot");
  }
  service::QueryServiceOptions service_options;
  uint64_t seen_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
    service_options = options_.service;
    seen_version = options_version_;
  }
  for (;;) {
    // The service (and its thread pool) is built outside the catalog lock;
    // the insert below re-checks both a racing attach of the same name and
    // a racing SetServiceOptions (which only rebuilds services already in
    // the catalog — inserting one built on the old options would leave
    // this corpus permanently behind).
    auto created =
        std::make_shared<service::QueryService>(snapshot, service_options);
    bool exists = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (catalog_.count(name) > 0) {
        exists = true;
      } else if (options_version_ == seen_version) {
        catalog_.emplace(name, std::move(created));
        return Status::OK();
      } else {
        service_options = options_.service;
        seen_version = options_version_;
      }
    }
    // The rejected service (an idle pool) winds down here, unlocked; on a
    // version change the loop rebuilds with the fresh options.
    created.reset();
    if (exists) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
  }
}

Status Database::OpenCorpus(const std::string& name, Corpus corpus) {
  RelationOptions relation_options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fast-fail before the expensive snapshot build; Attach re-checks
    // authoritatively for the racing case.
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
    relation_options = options_.relation;
  }
  LPATH_ASSIGN_OR_RETURN(
      SnapshotPtr snapshot,
      CorpusSnapshot::Build(std::move(corpus), relation_options));
  return Attach(name, std::move(snapshot));
}

Status Database::Open(const std::string& name, const std::string& path) {
  if (LooksLikeImageFile(path)) return OpenImage(name, path);
  Corpus corpus;
  LPATH_RETURN_IF_ERROR(LoadBracketFile(path, &corpus));
  if (corpus.empty()) {
    return Status::InvalidArgument("no trees in " + path);
  }
  return OpenCorpus(name, std::move(corpus));
}

Status Database::OpenImage(const std::string& name, const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fast-fail before mapping + checksumming; Attach re-checks
    // authoritatively for the racing case.
    if (catalog_.count(name) > 0) {
      return Status::AlreadyExists("corpus already attached: " + name);
    }
  }
  LPATH_ASSIGN_OR_RETURN(SnapshotPtr snapshot, CorpusSnapshot::Open(path));
  return Attach(name, std::move(snapshot));
}

Status Database::Save(const std::string& name, const std::string& path) const {
  SnapshotPtr snap = snapshot(name);
  if (snap == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return snap->Save(path);
}

Status Database::Swap(const std::string& name, SnapshotPtr snapshot) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("Database::Swap: null snapshot");
  }
  std::shared_ptr<const void> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("corpus not attached: " + name);
    }
    // Published under the catalog lock (a session build is a couple of
    // small allocations), so a concurrent SetServiceOptions rebuild can
    // never install a service that misses this snapshot. Queries in
    // flight are unaffected — each holds its own session reference.
    retired = it->second->UpdateSnapshot(std::move(snapshot));
  }
  // `retired` drops here, unlocked: if it was the last reference to the
  // old session, the corpus + relation teardown must not stall routing.
  return Status::OK();
}

Status Database::Reload(const std::string& name) {
  for (;;) {
    SnapshotPtr current = snapshot(name);
    if (current == nullptr) {
      return Status::NotFound("corpus not attached: " + name);
    }
    // The expensive rebuild runs unlocked, under the snapshot's own
    // options: a corpus attached with a non-default labeling keeps it
    // across reloads.
    LPATH_ASSIGN_OR_RETURN(SnapshotPtr rebuilt, current->Rebuild());
    std::shared_ptr<const void> retired;
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = catalog_.find(name);
      if (it == catalog_.end()) {
        return Status::NotFound("corpus not attached: " + name);
      }
      // Publish only if the snapshot we rebuilt from is still current; a
      // Swap that landed during the (long) rebuild must not be silently
      // rolled back by a rebuild of its predecessor. On conflict, loop
      // and rebuild the newer snapshot instead.
      if (it->second->snapshot() == current) {
        retired = it->second->UpdateSnapshot(std::move(rebuilt));
        published = true;
      }
    }
    if (published) return Status::OK();
  }
}

Status Database::Detach(const std::string& name) {
  std::shared_ptr<service::QueryService> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("corpus not attached: " + name);
    }
    victim = std::move(it->second);
    catalog_.erase(it);
  }
  // `victim` drops here, outside the lock: if this was the last reference
  // the pool joins now, without stalling the catalog.
  return Status::OK();
}

void Database::SetServiceOptions(const service::QueryServiceOptions& options) {
  std::vector<std::string> names;
  uint64_t my_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_.service = options;
    options_version_ += 1;
    my_version = options_version_;
    names.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) names.push_back(name);
  }
  // Old services are parked here and wind down (drain + pool join) after
  // the last unlock, so slow in-flight queries never stall the catalog.
  std::vector<std::shared_ptr<service::QueryService>> retired;
  for (const std::string& name : names) {
    SnapshotPtr snap;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = catalog_.find(name);
      if (it == catalog_.end()) continue;  // detached meanwhile
      snap = it->second->snapshot();
    }
    // Slow: spawns the replacement pool. Runs unlocked, so Swap/Query on
    // every corpus proceed meanwhile.
    auto rebuilt = std::make_shared<service::QueryService>(snap, options);
    std::lock_guard<std::mutex> lock(mu_);
    if (options_version_ != my_version) {
      // A later SetServiceOptions superseded this one mid-rebuild; it
      // republishes every corpus with the newer options, so installing
      // ours would leave this corpus permanently behind. Stop entirely.
      retired.push_back(std::move(rebuilt));
      break;
    }
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      retired.push_back(std::move(rebuilt));  // detached while rebuilding
      continue;
    }
    // A Swap may have published a newer snapshot while the pool was being
    // built; re-publish it into the replacement before installing. Swap
    // also holds mu_, so the entry cannot change under us again. The
    // replaced session is the replacement's freshly built one — its
    // snapshot is still referenced by `snap`, so dropping it here is cheap.
    SnapshotPtr current = it->second->snapshot();
    if (current != snap) (void)rebuilt->UpdateSnapshot(std::move(current));
    retired.push_back(std::exchange(it->second, std::move(rebuilt)));
  }
}

DatabaseOptions Database::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

bool Database::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.count(name) > 0;
}

std::vector<std::string> Database::CorpusNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<CorpusInfo> Database::List() const {
  std::vector<std::pair<std::string, std::shared_ptr<service::QueryService>>>
      rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(catalog_.size());
    for (const auto& [name, service] : catalog_) {
      rows.emplace_back(name, service);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<CorpusInfo> out;
  out.reserve(rows.size());
  for (const auto& [name, service] : rows) {
    const SnapshotPtr snap = service->snapshot();
    CorpusInfo info;
    info.name = name;
    info.snapshot_id = snap->id();
    // Counted from the relation, not the corpus: an image-backed snapshot
    // serves mapped columns over a tree-less corpus.
    info.trees = static_cast<size_t>(snap->relation().tree_count());
    info.nodes = snap->relation().element_count();
    info.relation_bytes = snap->relation().MemoryBytes();
    info.threads = service->threads();
    out.push_back(std::move(info));
  }
  return out;
}

SnapshotPtr Database::snapshot(const std::string& name) const {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  return service == nullptr ? nullptr : service->snapshot();
}

std::shared_ptr<service::QueryService> Database::service(
    const std::string& name) const {
  return Resolve(name);
}

Result<QueryResult> Database::Query(const std::string& name,
                                    const std::string& query) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->Query(query);
}

Result<service::PendingQuery> Database::Submit(const std::string& name,
                                               const std::string& query) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->Submit(query);
}

Status Database::QueryStream(const std::string& name, const std::string& query,
                             const service::RowSink& sink) {
  std::shared_ptr<service::QueryService> service = Resolve(name);
  if (service == nullptr) {
    return Status::NotFound("corpus not attached: " + name);
  }
  return service->QueryStream(query, sink);
}

std::shared_ptr<service::QueryService> Database::Resolve(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second;
}

}  // namespace db
}  // namespace lpath
