#include "gen/generator.h"

namespace lpath {
namespace gen {

Result<Corpus> GenerateCorpus(const TreebankProfile& profile,
                              const GeneratorOptions& options) {
  if (options.sentences < 0) {
    return Status::InvalidArgument("negative sentence count");
  }
  Corpus corpus;
  for (int i = 0; i < options.sentences; ++i) {
    // Derive a per-sentence seed so tree i is identical regardless of the
    // corpus size (Figure 9 replication keeps prefixes stable).
    uint64_t state = options.seed + 0x9e3779b97f4a7c15ULL *
                                        static_cast<uint64_t>(i + 1);
    Rng rng(SplitMix64(&state));
    LPATH_ASSIGN_OR_RETURN(
        Tree tree, profile.grammar.Generate(profile.start_symbol,
                                            options.max_depth, &rng,
                                            corpus.mutable_interner()));
    corpus.Add(std::move(tree));
  }
  return corpus;
}

Result<Corpus> GenerateWsj(int sentences, uint64_t seed) {
  static const TreebankProfile& profile = *new TreebankProfile(WsjProfile());
  GeneratorOptions options;
  options.seed = seed;
  options.sentences = sentences;
  return GenerateCorpus(profile, options);
}

Result<Corpus> GenerateSwb(int sentences, uint64_t seed) {
  static const TreebankProfile& profile = *new TreebankProfile(SwbProfile());
  GeneratorOptions options;
  options.seed = seed;
  options.sentences = sentences;
  return GenerateCorpus(profile, options);
}

Result<Corpus> GenerateSkewed(int sentences, uint64_t seed) {
  static const TreebankProfile& profile =
      *new TreebankProfile(SkewedProfile());
  GeneratorOptions options;
  options.seed = seed;
  options.sentences = sentences;
  return GenerateCorpus(profile, options);
}

}  // namespace gen
}  // namespace lpath
