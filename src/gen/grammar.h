// Probabilistic context-free grammars for the synthetic treebank generator.
// The licensing-CFG view is exactly the paper's Section 2.2.1 framing: the
// generated derivation trees are what LPath's proper-analysis semantics is
// defined over.
//
// Depth is bounded by construction: Finalize() computes each symbol's
// minimum derivation depth (a fixpoint), and expansion only samples rules
// that fit the remaining depth budget — so the corpus honors the paper's
// "Maximum Depth 36" characteristic without rejection sampling.

#ifndef LPATHDB_GEN_GRAMMAR_H_
#define LPATHDB_GEN_GRAMMAR_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "gen/vocab.h"
#include "tree/tree.h"

namespace lpath {
namespace gen {

/// A weighted PCFG with pre-terminal vocabularies.
class Pcfg {
 public:
  /// Adds a production `lhs -> rhs` with the given weight (weights are
  /// relative per lhs).
  void AddRule(const std::string& lhs, std::vector<std::string> rhs,
               double weight);

  /// Makes `tag` a pre-terminal emitting words from `vocab` (as @lex).
  /// A symbol may be both (e.g. with mixed rules); pre-terminal emission is
  /// chosen with `emit_weight` relative to its rule weights.
  void SetVocabulary(const std::string& tag, Vocabulary vocab,
                     double emit_weight = 1.0);

  /// Validates (every symbol derivable, finite min-depth) and builds
  /// samplers. Must be called before Generate.
  Status Finalize();

  /// Expands `start` into a tree (root tagged `start`) of depth at most
  /// `max_depth`, interning tags/words into `interner`. Deterministic in
  /// the Rng state.
  Result<Tree> Generate(const std::string& start, int max_depth, Rng* rng,
                        Interner* interner) const;

  /// Minimum derivation depth of a symbol (root counts as depth 1).
  Result<int> MinDepth(const std::string& symbol) const;

  size_t num_symbols() const { return symbols_.size(); }
  size_t num_rules() const;

 private:
  struct Rule {
    std::vector<int> rhs;
    double weight = 1.0;
    int min_depth = 0;  // depth of the shallowest tree this rule can head
  };
  struct SymbolInfo {
    std::string name;
    std::vector<Rule> rules;
    std::optional<Vocabulary> vocab;
    double emit_weight = 1.0;
    int min_depth = 0;
  };

  int SymbolId(const std::string& name);

  std::vector<SymbolInfo> symbols_;
  std::map<std::string, int> index_;
  bool finalized_ = false;

  Status ExpandInto(int sym, int budget, Tree* tree, NodeId parent, Rng* rng,
                    Interner* interner) const;
};

}  // namespace gen
}  // namespace lpath

#endif  // LPATHDB_GEN_GRAMMAR_H_
