#include "gen/profiles.h"

#include <cassert>

namespace lpath {
namespace gen {

namespace {

// --- Shared vocabularies ------------------------------------------------------

Vocabulary Nouns(bool wsj) {
  std::vector<VocabEntry> extra = {
      {"man", 0.004},   {"dog", 0.003},    {"building", 0.008},
      {"time", 0.006},  {"year", 0.006},   {"company", 0.005},
  };
  if (wsj) {
    // Figure 6(c): //_[@lex=rapprochement] returns 1 on WSJ, 0 on SWB.
    extra.push_back({"rapprochement", 0.00002});
  }
  return Vocabulary::Synthetic("noun", 2400, 1.05, std::move(extra));
}

Vocabulary ProperNouns() {
  return Vocabulary::Synthetic("Name", 1600, 1.02);
}

Vocabulary PastVerbs() {
  return Vocabulary::Synthetic("verbed", 700, 1.05,
                               {{"said", 0.06}, {"saw", 0.004}});
}

Vocabulary BaseVerbs() {
  return Vocabulary::Synthetic("verb", 500, 1.05,
                               {{"be", 0.08}, {"buy", 0.01}});
}

Vocabulary PresentVerbs() {
  return Vocabulary::Synthetic("verbs", 500, 1.05, {{"is", 0.12}});
}

Vocabulary Prepositions() {
  return Vocabulary(std::vector<VocabEntry>{
      {"of", 30}, {"in", 18}, {"for", 10}, {"to", 10}, {"with", 7},
      {"on", 7},  {"at", 5},  {"by", 5},   {"from", 4}, {"about", 2},
      {"after", 1}, {"under", 1}});
}

Vocabulary Determiners() {
  return Vocabulary(std::vector<VocabEntry>{
      {"the", 58}, {"a", 22}, {"an", 4}, {"this", 5}, {"that", 4},
      {"these", 2}, {"some", 2}, {"no", 1}, {"each", 1}, {"any", 1}});
}

Vocabulary Adjectives() {
  return Vocabulary::Synthetic("adj", 900, 1.05,
                               {{"old", 0.01}, {"new", 0.03}, {"big", 0.01}});
}

Vocabulary Adverbs(bool wsj) {
  return Vocabulary::Synthetic("adv", 300, 1.05,
                               wsj ? std::vector<VocabEntry>{{"also", 0.05}}
                                   : std::vector<VocabEntry>{{"really", 0.06},
                                                             {"just", 0.06}});
}

Vocabulary Pronouns() {
  return Vocabulary(std::vector<VocabEntry>{
      {"it", 20}, {"he", 14}, {"they", 12}, {"I", 16}, {"you", 14},
      {"we", 10}, {"she", 7}, {"that", 5}});
}

Vocabulary Numbers(bool wsj) {
  std::vector<VocabEntry> extra;
  if (wsj) {
    // //_[@lex=1929]: 14 on WSJ, 0 on SWB.
    extra.push_back({"1929", 0.02});
  }
  return Vocabulary::Synthetic("num", 500, 1.0, std::move(extra));
}

Vocabulary Conjunctions() {
  return Vocabulary(
      std::vector<VocabEntry>{{"and", 60}, {"or", 20}, {"but", 20}});
}

Vocabulary WhWords(bool wsj) {
  // Q11 counts "what building" adjacencies: 2 on WSJ, 5 on SWB — what-
  // questions are more common in speech.
  return Vocabulary(std::vector<VocabEntry>{{"what", wsj ? 35.0 : 50.0},
                                            {"who", 30},
                                            {"which", 30},
                                            {"whom", 5}});
}

Vocabulary Traces() {
  return Vocabulary(std::vector<VocabEntry>{
      {"*T*-1", 40}, {"*", 30}, {"*U*", 10}, {"0", 20}});
}

Vocabulary Disfluencies() {
  return Vocabulary(std::vector<VocabEntry>{
      {"E_S", 40}, {"N_S", 35}, {"--", 15}, {"+", 10}});
}

// Shared NP body: the same expansions serve NP and NP-SBJ (Penn tags them
// differently but builds them alike).
void AddNounPhraseRules(Pcfg* g, const std::string& lhs, bool wsj) {
  g->AddRule(lhs, {"DT", "NN"}, wsj ? 22 : 15);
  g->AddRule(lhs, {"DT", "JJ", "NN"}, 13);
  g->AddRule(lhs, {"DT", "ADJP", "NN"}, wsj ? 2.5 : 1.5);
  g->AddRule(lhs, {"NN"}, 10);
  g->AddRule(lhs, {"NNP"}, wsj ? 13 : 4);
  g->AddRule(lhs, {"NNP", "NNP"}, wsj ? 8 : 2);
  g->AddRule(lhs, {"PRP"}, wsj ? 4 : 24);
  g->AddRule(lhs, {"NP", "PP"}, wsj ? 17 : 6);
  g->AddRule(lhs, {"NP", "SBAR"}, 2);
  g->AddRule(lhs, {"NP", ",", "NP"}, 1.5);
  // NP => NP adjacency without a conjunction — rare (Q22/Q23 shapes).
  g->AddRule(lhs, {"NP", "NP"}, 0.05);
  g->AddRule(lhs, {"NP", "NP", "NP"}, 0.015);
  g->AddRule(lhs, {"DT", "JJ", "JJ", "NN"}, 2.5);
  g->AddRule(lhs, {"CD", "NN"}, wsj ? 3 : 0.5);
  g->AddRule(lhs, {"JJ", "NN"}, 7);
  g->AddRule(lhs, {"NP", "RRC"}, 0.035);
  g->AddRule(lhs, {"-NONE-"}, wsj ? 9 : 2);
}

void AddSharedPhraseRules(Pcfg* g, bool wsj) {
  AddNounPhraseRules(g, "NP", wsj);
  AddNounPhraseRules(g, "NP-SBJ", wsj);
  // Subjects skew pronominal/empty.
  g->AddRule("NP-SBJ", {"-NONE-"}, wsj ? 38 : 4);
  g->AddRule("NP-SBJ", {"PRP"}, wsj ? 10 : 55);

  g->AddRule("PP", {"IN", "NP"}, 96);
  g->AddRule("PP", {"IN", "S"}, 4);
  g->AddRule("PP-TMP", {"IN", "NP"}, 1);

  g->AddRule("SBAR", {"IN", "S"}, 45);
  g->AddRule("SBAR", {"WHNP", "S"}, 22);
  g->AddRule("SBAR", {"-NONE-", "S"}, 25);
  // WHPP: 87 on WSJ, 20 on SWB (Figure 6c, Q15) — rare either way.
  g->AddRule("SBAR", {"WHPP", "S"}, wsj ? 0.6 : 0.25);
  g->AddRule("WHNP", {"WP"}, 82);
  // "what building": WHNP -> WP NN with the right word draws (Q11).
  g->AddRule("WHNP", {"WP", "NN"}, wsj ? 9.0 : 14.0);
  g->AddRule("WHNP", {"WP", "JJ", "NN"}, 2);
  g->AddRule("WHPP", {"IN", "WHNP"}, 1);

  g->AddRule("ADJP", {"JJ"}, 64);
  g->AddRule("ADJP", {"RB", "JJ"}, 26);
  g->AddRule("ADJP", {"JJ", "PP"}, 10);
  g->AddRule("ADVP", {"RB"}, 88);
  g->AddRule("ADVP", {"RB", "RB"}, 12);
  g->AddRule("ADJP-PRD", {"JJ"}, 78);
  g->AddRule("ADJP-PRD", {"RB", "JJ"}, 22);
  // UCP-PRD/ADJP-PRD: 17 on WSJ, 4 on SWB (Q17).
  g->AddRule("UCP-PRD", {"ADJP-PRD", "CC", "NP"}, 60);
  g->AddRule("UCP-PRD", {"NP", "CC", "ADJP-PRD"}, 40);
  // RRC/PP-TMP: 8 on WSJ, 3 on SWB (Q16).
  g->AddRule("RRC", {"ADJP", "PP-TMP"}, 55);
  g->AddRule("RRC", {"VBN", "NP", "PP-TMP"}, 45);
}

void AddVerbPhraseRules(Pcfg* g, bool wsj) {
  g->AddRule("VP", {"VBD", "NP"}, wsj ? 20 : 16);
  g->AddRule("VP", {"VBZ", "NP"}, 11);
  g->AddRule("VP", {"VBD", "NP", "PP"}, 8);
  g->AddRule("VP", {"VBD", "PP"}, 5);
  g->AddRule("VP", {"MD", "VP"}, 8);     // VP/VP chains (Q19)
  g->AddRule("VP", {"VBZ", "VP"}, 6);
  g->AddRule("VP", {"VBD", "VP"}, 3);
  g->AddRule("VP", {"VB", "NP"}, 6);     // VB under VP (Q2–Q4, Q7)
  g->AddRule("VP", {"VB", "NP", "PP"}, 2.5);
  g->AddRule("VP", {"VB", "PP"}, 2);
  g->AddRule("VP", {"VB"}, 1.5);
  g->AddRule("VP", {"VBD", "SBAR"}, 4);
  g->AddRule("VP", {"VBD", "NP", "PP", "SBAR"}, wsj ? 0.6 : 1.2);  // PP => SBAR (Q20)
  g->AddRule("VP", {"VBD", "NP", "PP", "VP"}, 0.35);  // NP->PP=>VP (Q10)
  g->AddRule("VP", {"VBD", "ADVP"}, wsj ? 2 : 7);
  g->AddRule("VP", {"VBD", "ADVP", "ADJP"}, 0.06);     // ADVP => ADJP (Q21)
  g->AddRule("VP", {"VBZ", "ADJP-PRD"}, 2);
  g->AddRule("VP", {"VBZ", "UCP-PRD"}, 0.05);
  g->AddRule("VP", {"VP", "CC", "VP"}, 1.5);
  g->AddRule("VP", {"VP", "VP"}, 0.02);  // VP => VP (Q23)
  if (wsj) {
    g->AddRule("VP", {"VBD", "NP", "ADVP-LOC-CLR"}, 0.06);  // Q14
    g->AddRule("ADVP-LOC-CLR", {"RB"}, 1);
  }
}

}  // namespace

TreebankProfile WsjProfile() {
  TreebankProfile profile;
  profile.name = "WSJ";
  Pcfg& g = profile.grammar;

  // Sentences.
  g.AddRule("S", {"NP-SBJ", "VP", "."}, 52);
  g.AddRule("S", {"NP-SBJ", "VP"}, 12);
  g.AddRule("S", {"PP", ",", "NP-SBJ", "VP", "."}, 7);
  g.AddRule("S", {"ADVP", ",", "NP-SBJ", "VP", "."}, 3);
  g.AddRule("S", {"SBAR", ",", "NP-SBJ", "VP", "."}, 2);
  g.AddRule("S", {"S", "CC", "S"}, 2.5);
  g.AddRule("S", {"NP-SBJ", "VP", "VP", "."}, 0.03);  // VP => VP at S level

  AddSharedPhraseRules(&g, /*wsj=*/true);
  AddVerbPhraseRules(&g, /*wsj=*/true);

  g.SetVocabulary("NN", Nouns(/*wsj=*/true));
  g.SetVocabulary("NNP", ProperNouns());
  g.SetVocabulary("VBD", PastVerbs());
  g.SetVocabulary("VB", BaseVerbs());
  g.SetVocabulary("VBZ", PresentVerbs());
  g.SetVocabulary("VBN", PastVerbs());
  g.SetVocabulary("MD", Vocabulary::Uniform({"will", "would", "can", "may",
                                             "could", "should"}));
  g.SetVocabulary("IN", Prepositions());
  g.SetVocabulary("DT", Determiners());
  g.SetVocabulary("JJ", Adjectives());
  g.SetVocabulary("RB", Adverbs(/*wsj=*/true));
  g.SetVocabulary("PRP", Pronouns());
  g.SetVocabulary("CD", Numbers(/*wsj=*/true));
  g.SetVocabulary("CC", Conjunctions());
  g.SetVocabulary("WP", WhWords(/*wsj=*/true));
  g.SetVocabulary("-NONE-", Traces());
  g.SetVocabulary(".", Vocabulary::Uniform({"."}));
  g.SetVocabulary(",", Vocabulary::Uniform({","}));

  const Status s = g.Finalize();
  assert(s.ok() && "WSJ grammar must finalize");
  (void)s;
  return profile;
}

TreebankProfile SwbProfile() {
  TreebankProfile profile;
  profile.name = "SWB";
  Pcfg& g = profile.grammar;

  // Utterances: disfluency markers everywhere; -DFL- must top the tag
  // ranking (Figure 6b).
  g.AddRule("S", {"NP-SBJ", "VP", "."}, 18);
  g.AddRule("S", {"-DFL-", "NP-SBJ", "VP", "."}, 24);
  g.AddRule("S", {"NP-SBJ", "-DFL-", "VP", "."}, 12);
  g.AddRule("S", {"NP-SBJ", "VP", "-DFL-", "."}, 12);
  g.AddRule("S", {"-DFL-", "NP-SBJ", "VP", "-DFL-", "."}, 8);
  g.AddRule("S", {"-DFL-", ",", "NP-SBJ", "VP", "."}, 10);
  g.AddRule("S", {"-DFL-", "S"}, 14);
  g.AddRule("S", {"INTJ", ",", "NP-SBJ", "VP", "."}, 13);
  g.AddRule("S", {"NP-SBJ", "VP", ",", "-DFL-", "."}, 9);
  g.AddRule("S", {"S", "CC", "S"}, 2);
  g.AddRule("S", {"NP-SBJ", "VP", "VP", "."}, 0.12);  // VP => VP, Q23 > WSJ

  AddSharedPhraseRules(&g, /*wsj=*/false);
  AddVerbPhraseRules(&g, /*wsj=*/false);
  // Spoken embellishments.
  g.AddRule("VP", {"VBD", "-DFL-", "NP"}, 16);
  g.AddRule("VP", {"VBD", "NP", "-DFL-"}, 12);
  g.AddRule("VP", {"-DFL-", "VP"}, 16);
  g.AddRule("NP", {"NP", "-DFL-"}, 8);
  g.AddRule("INTJ", {"UH"}, 1);

  g.SetVocabulary("NN", Nouns(/*wsj=*/false));
  g.SetVocabulary("NNP", ProperNouns());
  // "saw" is a bit more frequent in speech (Q1: 339 vs 153).
  g.SetVocabulary("VBD",
                  Vocabulary::Synthetic("verbed", 700, 1.05,
                                        {{"said", 0.05}, {"saw", 0.009}}));
  g.SetVocabulary("VB", BaseVerbs());
  g.SetVocabulary("VBZ", PresentVerbs());
  g.SetVocabulary("VBN", PastVerbs());
  g.SetVocabulary("MD", Vocabulary::Uniform({"will", "would", "can", "could"}));
  g.SetVocabulary("IN", Prepositions());
  g.SetVocabulary("DT", Determiners());
  g.SetVocabulary("JJ", Adjectives());
  g.SetVocabulary("RB", Adverbs(/*wsj=*/false));
  g.SetVocabulary("PRP", Pronouns());
  g.SetVocabulary("CD", Numbers(/*wsj=*/false));
  g.SetVocabulary("CC", Conjunctions());
  g.SetVocabulary("WP", WhWords(/*wsj=*/false));
  g.SetVocabulary("-NONE-", Traces());
  g.SetVocabulary("-DFL-", Disfluencies());
  g.SetVocabulary("UH", Vocabulary::Uniform({"uh", "um", "well", "yeah",
                                             "right", "okay"}));
  g.SetVocabulary(".", Vocabulary::Uniform({"."}));
  g.SetVocabulary(",", Vocabulary::Uniform({","}));

  const Status s = g.Finalize();
  assert(s.ok() && "SWB grammar must finalize");
  (void)s;
  return profile;
}

TreebankProfile SkewedProfile() {
  TreebankProfile profile;
  profile.name = "SKEW";
  Pcfg& g = profile.grammar;

  // ~96% of derivations stop at a tiny clause; ~4% enter CHAIN, whose
  // continuation odds of 15:1 grow a right spine until the depth budget
  // runs out — a geometric (Zipf-ish, budget-truncated) size tail one to
  // two orders of magnitude above the tiny trees.
  g.AddRule("S", {"NP", "VP"}, 42);
  g.AddRule("S", {"NP", "V", "NP"}, 22);
  g.AddRule("S", {"NP", "VP", "PP"}, 18);
  g.AddRule("S", {"V", "NP"}, 10);
  g.AddRule("S", {"NP", "VP", "PP", "PP"}, 5);
  g.AddRule("S", {"CHAIN"}, 3);

  g.AddRule("CHAIN", {"CL", "CHAIN"}, 24);
  g.AddRule("CHAIN", {"CL"}, 1);
  g.AddRule("CL", {"NP", "VP", "PP"}, 40);
  g.AddRule("CL", {"NP", "V", "NP", "PP"}, 35);
  g.AddRule("CL", {"NP", "VP", "PP", "PP"}, 25);

  g.AddRule("NP", {"Det", "N"}, 50);
  g.AddRule("NP", {"Det", "Adj", "N"}, 18);
  g.AddRule("NP", {"N"}, 22);
  g.AddRule("NP", {"NP", "PP"}, 8);
  g.AddRule("NP", {"Y"}, 2);
  g.AddRule("VP", {"V", "NP"}, 58);
  g.AddRule("VP", {"V"}, 16);
  g.AddRule("VP", {"V", "NP", "PP"}, 26);
  g.AddRule("PP", {"X", "NP"}, 1);

  // Vocabulary drawn from the fuzz QueryGen word list so that random
  // @lex comparisons in tests get non-trivial selectivity.
  g.SetVocabulary("N", Vocabulary(std::vector<VocabEntry>{
      {"dog", 30}, {"man", 25}, {"building", 20}, {"b", 15}, {"c", 10}}));
  g.SetVocabulary("V", Vocabulary(std::vector<VocabEntry>{
      {"saw", 50}, {"b", 25}, {"c", 25}}));
  g.SetVocabulary("Det", Vocabulary(std::vector<VocabEntry>{
      {"a", 70}, {"b", 20}, {"what", 10}}));
  g.SetVocabulary("Adj", Vocabulary(std::vector<VocabEntry>{
      {"c", 50}, {"b", 30}, {"a", 20}}));
  g.SetVocabulary("X", Vocabulary(std::vector<VocabEntry>{
      {"of", 80}, {"what", 20}}));
  g.SetVocabulary("Y", Vocabulary(std::vector<VocabEntry>{
      {"b", 50}, {"c", 50}}));

  const Status s = g.Finalize();
  assert(s.ok() && "skewed grammar must finalize");
  (void)s;
  return profile;
}

}  // namespace gen
}  // namespace lpath
