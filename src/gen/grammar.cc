#include "gen/grammar.h"

#include <algorithm>
#include <limits>

namespace lpath {
namespace gen {

namespace {
constexpr int kInfDepth = std::numeric_limits<int>::max() / 4;
}  // namespace

int Pcfg::SymbolId(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const int id = static_cast<int>(symbols_.size());
  SymbolInfo info;
  info.name = name;
  symbols_.push_back(std::move(info));
  index_.emplace(name, id);
  return id;
}

void Pcfg::AddRule(const std::string& lhs, std::vector<std::string> rhs,
                   double weight) {
  const int lhs_id = SymbolId(lhs);
  Rule rule;
  rule.weight = weight;
  rule.rhs.reserve(rhs.size());
  for (const std::string& s : rhs) rule.rhs.push_back(SymbolId(s));
  symbols_[lhs_id].rules.push_back(std::move(rule));
  finalized_ = false;
}

void Pcfg::SetVocabulary(const std::string& tag, Vocabulary vocab,
                         double emit_weight) {
  const int id = SymbolId(tag);
  symbols_[id].vocab.emplace(std::move(vocab));
  symbols_[id].emit_weight = emit_weight;
  finalized_ = false;
}

size_t Pcfg::num_rules() const {
  size_t n = 0;
  for (const SymbolInfo& s : symbols_) n += s.rules.size();
  return n;
}

Status Pcfg::Finalize() {
  // Fixpoint for minimum derivation depth.
  for (SymbolInfo& s : symbols_) {
    s.min_depth = s.vocab.has_value() ? 1 : kInfDepth;
    for (Rule& r : s.rules) r.min_depth = kInfDepth;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (SymbolInfo& s : symbols_) {
      for (Rule& r : s.rules) {
        int deepest_child = 0;
        for (int child : r.rhs) {
          deepest_child = std::max(deepest_child, symbols_[child].min_depth);
        }
        const int d = deepest_child >= kInfDepth ? kInfDepth
                                                 : 1 + deepest_child;
        if (d < r.min_depth) {
          r.min_depth = d;
          changed = true;
        }
        if (d < s.min_depth) {
          s.min_depth = d;
          changed = true;
        }
      }
    }
  }
  for (const SymbolInfo& s : symbols_) {
    if (s.rules.empty() && !s.vocab.has_value()) {
      return Status::InvalidArgument("symbol " + s.name +
                                     " has no rules and no vocabulary");
    }
    if (s.min_depth >= kInfDepth) {
      return Status::InvalidArgument("symbol " + s.name +
                                     " cannot derive a finite tree");
    }
    for (const Rule& r : s.rules) {
      if (r.weight <= 0.0) {
        return Status::InvalidArgument("rule of " + s.name +
                                       " has non-positive weight");
      }
      if (r.rhs.empty()) {
        return Status::InvalidArgument("epsilon rule for " + s.name +
                                       " (not supported)");
      }
    }
  }
  finalized_ = true;
  return Status::OK();
}

Result<int> Pcfg::MinDepth(const std::string& symbol) const {
  auto it = index_.find(symbol);
  if (it == index_.end()) return Status::NotFound("unknown symbol " + symbol);
  return symbols_[it->second].min_depth;
}

Result<Tree> Pcfg::Generate(const std::string& start, int max_depth, Rng* rng,
                            Interner* interner) const {
  if (!finalized_) return Status::Internal("Pcfg::Finalize not called");
  auto it = index_.find(start);
  if (it == index_.end()) {
    return Status::NotFound("unknown start symbol " + start);
  }
  const int sym = it->second;
  if (symbols_[sym].min_depth > max_depth) {
    return Status::InvalidArgument("max_depth too small for " + start);
  }
  Tree tree;
  tree.AddRoot(interner->Intern(start));
  LPATH_RETURN_IF_ERROR(ExpandInto(sym, max_depth, &tree, 0, rng, interner));
  return tree;
}

Status Pcfg::ExpandInto(int sym, int budget, Tree* tree, NodeId node,
                        Rng* rng, Interner* interner) const {
  const SymbolInfo& info = symbols_[sym];

  // Choose among options that fit the depth budget: emit a word (if this is
  // a pre-terminal) or apply a rule whose minimum depth fits.
  double total = 0.0;
  if (info.vocab.has_value()) total += info.emit_weight;
  for (const Rule& r : info.rules) {
    if (r.min_depth <= budget) total += r.weight;
  }
  if (total <= 0.0) {
    return Status::Internal("no viable expansion for " + info.name +
                            " at depth budget " + std::to_string(budget));
  }
  double pick = rng->NextDouble() * total;
  if (info.vocab.has_value()) {
    if (pick < info.emit_weight) {
      const std::string& word = info.vocab->Sample(rng);
      tree->AddAttr(node, interner->Intern("@lex"), interner->Intern(word));
      return Status::OK();
    }
    pick -= info.emit_weight;
  }
  for (const Rule& r : info.rules) {
    if (r.min_depth > budget) continue;
    if (pick < r.weight) {
      for (int child_sym : r.rhs) {
        const NodeId child =
            tree->AddChild(node, interner->Intern(symbols_[child_sym].name));
        LPATH_RETURN_IF_ERROR(
            ExpandInto(child_sym, budget - 1, tree, child, rng, interner));
      }
      return Status::OK();
    }
    pick -= r.weight;
  }
  // Floating-point edge: fall through to the last viable rule.
  for (auto rit = info.rules.rbegin(); rit != info.rules.rend(); ++rit) {
    if (rit->min_depth <= budget) {
      for (int child_sym : rit->rhs) {
        const NodeId child =
            tree->AddChild(node, interner->Intern(symbols_[child_sym].name));
        LPATH_RETURN_IF_ERROR(
            ExpandInto(child_sym, budget - 1, tree, child, rng, interner));
      }
      return Status::OK();
    }
  }
  return Status::Internal("expansion fell through for " + info.name);
}

}  // namespace gen
}  // namespace lpath
