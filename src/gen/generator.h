// Corpus generation: expands a profile's grammar sentence by sentence with
// per-sentence derived seeds, so corpora are reproducible and individual
// trees are independent of how many came before them.

#ifndef LPATHDB_GEN_GENERATOR_H_
#define LPATHDB_GEN_GENERATOR_H_

#include "common/result.h"
#include "gen/profiles.h"
#include "tree/corpus.h"

namespace lpath {
namespace gen {

struct GeneratorOptions {
  uint64_t seed = 2006;  ///< ICDE 2006.
  int sentences = 2000;
  int max_depth = 36;  ///< Figure 6(a): "Maximum Depth 36".
};

/// Generates `options.sentences` trees from `profile`.
Result<Corpus> GenerateCorpus(const TreebankProfile& profile,
                              const GeneratorOptions& options);

/// Convenience: the two evaluation corpora.
Result<Corpus> GenerateWsj(int sentences, uint64_t seed = 2006);
Result<Corpus> GenerateSwb(int sentences, uint64_t seed = 2006);

/// Convenience: the skew-stress corpus (a few huge trees, many tiny).
Result<Corpus> GenerateSkewed(int sentences, uint64_t seed = 2006);

}  // namespace gen
}  // namespace lpath

#endif  // LPATHDB_GEN_GENERATOR_H_
