// Corpus profiles calibrated to the paper's Figure 6 data sets:
//
//   WsjProfile — newswire-like: top tags NP > VP > NN > IN > NNP > S > DT >
//     NP-SBJ > -NONE- > JJ, the rare tags the query suite probes
//     (ADVP-LOC-CLR, WHPP, RRC/PP-TMP, UCP-PRD/ADJP-PRD), deep NP/PP
//     recursion, and the pinned rare words "rapprochement" and "1929".
//
//   SwbProfile — conversational-speech-like: disfluency tag -DFL- the most
//     frequent, punctuation tags "." and ",", heavy PRP/RB use; contains
//     neither "rapprochement" nor "1929" nor ADVP-LOC-CLR, so queries
//     Q12–Q14 return 0 as in Figure 6(c).
//
//   SkewedProfile — a Zipf-ish tree-size distribution: most sentences are
//     a handful of nodes, but a few per cent derive through a clause chain
//     with high continuation probability, producing run-on trees one to
//     two orders of magnitude heavier. Real treebanks are skewed this way,
//     and this is the adversarial input for tree-count-based work
//     splitting — the morsel scheduler's tests and benchmarks use it.
//     Tags and @lex words deliberately overlap the fuzz QueryGen alphabet
//     (S/NP/VP/PP/N/V/Det/Adj/X/Y; saw/dog/man/of/...), so random test
//     queries hit.
//
// These are substitutes for the licensed Penn Treebank-3 corpora; see
// DESIGN.md §2 for why matching the tag/word frequency profile preserves
// the benchmark behaviour.

#ifndef LPATHDB_GEN_PROFILES_H_
#define LPATHDB_GEN_PROFILES_H_

#include <string>

#include "gen/grammar.h"

namespace lpath {
namespace gen {

/// A named grammar + start symbol.
struct TreebankProfile {
  std::string name;
  Pcfg grammar;  // finalized
  std::string start_symbol = "S";
};

/// Wall Street Journal profile (Figure 6's WSJ column).
TreebankProfile WsjProfile();

/// Switchboard profile (Figure 6's SWB column).
TreebankProfile SwbProfile();

/// Skew-stress profile: a few huge clause-chain trees among many tiny
/// ones (see the header comment). Not a paper dataset.
TreebankProfile SkewedProfile();

}  // namespace gen
}  // namespace lpath

#endif  // LPATHDB_GEN_PROFILES_H_
