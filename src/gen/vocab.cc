#include "gen/vocab.h"

#include <cassert>
#include <cmath>

namespace lpath {
namespace gen {

namespace {

std::vector<double> Weights(const std::vector<VocabEntry>& entries) {
  std::vector<double> w;
  w.reserve(entries.size());
  for (const VocabEntry& e : entries) w.push_back(e.weight);
  return w;
}

}  // namespace

Vocabulary::Vocabulary(std::vector<VocabEntry> entries)
    : entries_(std::move(entries)), sampler_(Weights(entries_)) {
  assert(!entries_.empty());
}

Vocabulary Vocabulary::Synthetic(const std::string& prefix, size_t n,
                                 double s, std::vector<VocabEntry> extra) {
  std::vector<VocabEntry> entries;
  entries.reserve(n + extra.size());
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = 1.0 / std::pow(static_cast<double>(i + 1), s);
    entries.push_back(VocabEntry{prefix + std::to_string(i), w});
    total += w;
  }
  // Normalize the synthetic mass to 1 so the extras' weights read as
  // fractions of all draws.
  for (size_t i = 0; i < n; ++i) entries[i].weight /= total;
  for (VocabEntry& e : extra) entries.push_back(std::move(e));
  return Vocabulary(std::move(entries));
}

Vocabulary Vocabulary::Uniform(std::vector<std::string> words) {
  std::vector<VocabEntry> entries;
  entries.reserve(words.size());
  for (std::string& w : words) {
    entries.push_back(VocabEntry{std::move(w), 1.0});
  }
  return Vocabulary(std::move(entries));
}

const std::string& Vocabulary::Sample(Rng* rng) const {
  return entries_[sampler_.Sample(rng)].word;
}

}  // namespace gen
}  // namespace lpath
