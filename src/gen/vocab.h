// Vocabularies for the synthetic treebank generator: Zipf-distributed
// synthetic word lists plus pinned special words (the rare words the
// benchmark queries test for: "saw", "of", "what", "building",
// "rapprochement", "1929").

#ifndef LPATHDB_GEN_VOCAB_H_
#define LPATHDB_GEN_VOCAB_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace lpath {
namespace gen {

/// A word with an unnormalized sampling weight.
struct VocabEntry {
  std::string word;
  double weight = 1.0;
};

/// Weighted word list with O(log n) sampling.
class Vocabulary {
 public:
  explicit Vocabulary(std::vector<VocabEntry> entries);

  /// `n` synthetic words "<prefix>0".."<prefix>n-1" with Zipf(s) weights
  /// (total weight 1), plus `extra` pinned words whose weights are
  /// *fractions of the total* (e.g. 0.003 ≈ 0.3% of draws).
  static Vocabulary Synthetic(const std::string& prefix, size_t n, double s,
                              std::vector<VocabEntry> extra = {});

  /// Fixed list with equal weights.
  static Vocabulary Uniform(std::vector<std::string> words);

  const std::string& Sample(Rng* rng) const;
  size_t size() const { return entries_.size(); }
  const std::vector<VocabEntry>& entries() const { return entries_; }

 private:
  std::vector<VocabEntry> entries_;
  DiscreteSampler sampler_;
};

}  // namespace gen
}  // namespace lpath

#endif  // LPATHDB_GEN_VOCAB_H_
