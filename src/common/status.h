// Status: error model for LPathDB.
//
// Library code does not throw exceptions (per the database-C++ house style);
// fallible operations return Status, and value-returning fallible operations
// return Result<T> (see common/result.h).

#ifndef LPATHDB_COMMON_STATUS_H_
#define LPATHDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lpath {

/// Canonical error space, modeled after the usual database-engine sets.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< Malformed query text, bad options, bad parameters.
  kNotFound,         ///< Missing tag, file, tree, or index entry.
  kNotSupported,     ///< Legal input outside this engine's supported subset.
  kCorruption,       ///< Internal invariant violated in stored data.
  kOutOfRange,       ///< Index or interval out of bounds.
  kIOError,          ///< Filesystem failure.
  kAlreadyExists,    ///< Duplicate key / duplicate definition.
  kInternal,         ///< Bug: a "can't happen" branch was taken.
  kCancelled,        ///< The caller asked the operation to stop early.
  kResourceExhausted,  ///< Admission control: a capacity limit was hit.
};

/// Human-readable name of a code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. Typical use:
///
///   Status s = parser.Parse(text, &ast);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace lpath

/// Propagates a non-OK Status to the caller.
#define LPATH_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::lpath::Status _lpath_status = (expr);         \
    if (!_lpath_status.ok()) return _lpath_status;  \
  } while (0)

#endif  // LPATHDB_COMMON_STATUS_H_
