#include "common/status.h"

namespace lpath {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lpath
