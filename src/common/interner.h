// Interner: maps strings (tag names, attribute names, word values) to dense
// 32-bit symbol ids and back. Shared by a whole corpus so that the node
// relation can be dictionary-encoded.

#ifndef LPATHDB_COMMON_INTERNER_H_
#define LPATHDB_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lpath {

/// Dense symbol id. Id 0 is reserved for "no symbol" (e.g. the value column
/// of an element row, which has no value).
using Symbol = uint32_t;
inline constexpr Symbol kNoSymbol = 0;

/// Append-only string dictionary with stable string storage.
///
/// Not thread-safe for interning; concurrent read-only lookup is safe once
/// loading has finished.
class Interner {
 public:
  Interner();

  /// Returns the id for `s`, interning it on first sight. Never returns
  /// kNoSymbol.
  Symbol Intern(std::string_view s);

  /// Deep copy preserving every id (the clone maps id i to the same string).
  /// The implicitly generated copy constructor is deleted below because it
  /// would copy string_view keys pointing into the *source's* deque; cloning
  /// re-interns in id order instead, which reproduces the dense id space.
  /// This is how a snapshot chain extends its dictionary: the delta corpus
  /// clones the chain's interner, so base symbol ids stay valid verbatim in
  /// delta rows and new strings take fresh ids past the base's end_id().
  Interner Clone() const;

  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id for `s`, or kNoSymbol if it was never interned.
  Symbol Lookup(std::string_view s) const;

  /// Returns the string for a valid id. `id` must be a value previously
  /// returned by Intern (not kNoSymbol).
  std::string_view name(Symbol id) const;

  /// Number of distinct interned symbols (excluding the reserved id 0).
  size_t size() const { return strings_.size() - 1; }

  /// Largest valid id + 1 (ids are dense: 1..size()).
  Symbol end_id() const { return static_cast<Symbol>(strings_.size()); }

 private:
  // deque gives stable addresses so string_view keys stay valid.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace lpath

#endif  // LPATHDB_COMMON_INTERNER_H_
