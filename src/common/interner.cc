#include "common/interner.h"

#include <cassert>

namespace lpath {

Interner::Interner() {
  strings_.emplace_back();  // Reserve id 0 = kNoSymbol.
}

Symbol Interner::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  strings_.emplace_back(s);
  Symbol id = static_cast<Symbol>(strings_.size() - 1);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

Symbol Interner::Lookup(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNoSymbol : it->second;
}

std::string_view Interner::name(Symbol id) const {
  assert(id != kNoSymbol && id < strings_.size());
  return strings_[id];
}

}  // namespace lpath
