#include "common/interner.h"

#include <cassert>

namespace lpath {

Interner::Interner() {
  strings_.emplace_back();  // Reserve id 0 = kNoSymbol.
}

Symbol Interner::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  strings_.emplace_back(s);
  Symbol id = static_cast<Symbol>(strings_.size() - 1);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

Interner Interner::Clone() const {
  Interner copy;
  // Re-interning in id order reproduces the dense 1..size() id assignment;
  // moving the result keeps the deque's element addresses (and with them
  // the index's string_view keys) stable.
  for (Symbol id = 1; id < end_id(); ++id) copy.Intern(strings_[id]);
  return copy;
}

Symbol Interner::Lookup(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNoSymbol : it->second;
}

std::string_view Interner::name(Symbol id) const {
  assert(id != kNoSymbol && id < strings_.size());
  return strings_[id];
}

}  // namespace lpath
