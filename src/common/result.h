// Result<T>: a Status or a value, in the style of arrow::Result / absl::StatusOr.

#ifndef LPATHDB_COMMON_RESULT_H_
#define LPATHDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace lpath {

/// Holds either an error Status or a value of type T.
///
///   Result<Ast> r = Parse(text);
///   if (!r.ok()) return r.status();
///   Ast ast = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs from an error status; `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }
  /// Constructs from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ engaged.
  std::optional<T> value_;
};

}  // namespace lpath

/// Evaluates a Result<T> expression; assigns the value to `lhs` or returns
/// the error to the caller.
#define LPATH_ASSIGN_OR_RETURN(lhs, expr)            \
  LPATH_ASSIGN_OR_RETURN_IMPL_(                      \
      LPATH_RESULT_CONCAT_(_lpath_result, __LINE__), lhs, expr)

#define LPATH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define LPATH_RESULT_CONCAT_(a, b) LPATH_RESULT_CONCAT_IMPL_(a, b)
#define LPATH_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // LPATHDB_COMMON_RESULT_H_
