#include "common/str_util.h"

#include <cctype>

namespace lpath {

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer glob matcher with backtracking over the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatWithCommas(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  if (v < 0) out.push_back('-');
  int lead = static_cast<int>(digits.size()) % 3;
  if (lead == 0) lead = 3;
  out.append(digits, 0, lead);
  for (size_t i = lead; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  return out;
}

}  // namespace lpath
