// Wall-clock timing for the benchmark harness.

#ifndef LPATHDB_COMMON_TIMER_H_
#define LPATHDB_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace lpath {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lpath

#endif  // LPATHDB_COMMON_TIMER_H_
