#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lpath {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t n) {
  assert(n > 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of n that fits in 64 bits.
  const uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  assert(!cumulative_.empty() && cumulative_.back() > 0.0);
}

size_t DiscreteSampler::Sample(Rng* rng) const {
  double x = rng->NextDouble() * cumulative_.back();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), x);
  if (it == cumulative_.end()) --it;
  return static_cast<size_t>(it - cumulative_.begin());
}

ZipfSampler::ZipfSampler(size_t n, double s)
    : sampler_([n, s] {
        std::vector<double> w(n);
        for (size_t i = 0; i < n; ++i) {
          w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
        }
        return w;
      }()) {}

}  // namespace lpath
