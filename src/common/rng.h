// Deterministic random number generation for the treebank generator and the
// property-based tests. We use SplitMix64 for seeding and xoshiro256** as the
// main generator, plus a cumulative-weight discrete sampler and a Zipf
// sampler for vocabularies.

#ifndef LPATHDB_COMMON_RNG_H_
#define LPATHDB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lpath {

/// SplitMix64 step; used to expand a single seed into generator state.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** 1.0 — fast, high-quality, reproducible across platforms
/// (unlike std::mt19937 + std::uniform_int_distribution, whose outputs are
/// implementation-defined).
class Rng {
 public:
  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n); n must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t Below(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool Chance(double p);

 private:
  uint64_t s_[4];
};

/// Samples indices 0..n-1 with probability proportional to `weights`.
/// Precomputes a cumulative table; sampling is one binary search.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Number of categories.
  size_t size() const { return cumulative_.size(); }

  /// Draws one index using `rng`.
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> cumulative_;  // strictly increasing, last = total.
};

/// Zipf(s) sampler over ranks 1..n (returned as 0-based indices), the
/// classic model for word-frequency distributions.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng* rng) const { return sampler_.Sample(rng); }
  size_t size() const { return sampler_.size(); }

 private:
  DiscreteSampler sampler_;
};

}  // namespace lpath

#endif  // LPATHDB_COMMON_RNG_H_
