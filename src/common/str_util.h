// Small string helpers shared across modules.

#ifndef LPATHDB_COMMON_STR_UTIL_H_
#define LPATHDB_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lpath {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on a single character; empty pieces are kept.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Glob match supporting '*' (any run, including empty) and '?' (any one
/// character) — the pattern language CorpusSearch uses for tag arguments.
bool GlobMatch(std::string_view pattern, std::string_view text);

/// Lower-cases ASCII.
std::string AsciiToLower(std::string_view s);

/// Formats an integer with thousands separators ("1,234,567") for reports.
std::string FormatWithCommas(int64_t v);

}  // namespace lpath

#endif  // LPATHDB_COMMON_STR_UTIL_H_
