// Corpus statistics — the numbers reported in Figure 6(a) (file size, node
// count, unique tags, maximum depth) and Figure 6(b) (top-10 tag frequency).

#ifndef LPATHDB_TREE_STATS_H_
#define LPATHDB_TREE_STATS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "tree/corpus.h"

namespace lpath {

/// Aggregate characteristics of a corpus.
struct CorpusStats {
  size_t file_size_bytes = 0;  ///< Bracketed-ASCII size (Fig. 6a "File Size").
  size_t tree_count = 0;
  size_t node_count = 0;  ///< Element nodes ("Tree Nodes" in Fig. 6a counts
                          ///< every node of the annotation tree).
  size_t word_count = 0;  ///< Terminals (@lex-bearing nodes).
  size_t unique_tags = 0;
  int max_depth = 0;
  double avg_tree_nodes = 0.0;

  /// All tags with their element-node frequencies, descending.
  std::vector<std::pair<std::string, size_t>> tag_frequencies;

  /// First `k` rows of tag_frequencies.
  std::vector<std::pair<std::string, size_t>> TopTags(size_t k) const;
};

/// Computes statistics in one pass over the corpus (plus a serialization
/// pass for file_size_bytes when `include_file_size` is set — that pass is
/// the expensive one, so benchmarks can skip it).
CorpusStats ComputeStats(const Corpus& corpus, bool include_file_size = true);

}  // namespace lpath

#endif  // LPATHDB_TREE_STATS_H_
