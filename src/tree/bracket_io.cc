#include "tree/bracket_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

namespace lpath {

namespace {

constexpr std::string_view kLexAttr = "@lex";
constexpr std::string_view kSyntheticRoot = "TOP";

bool IsAtomChar(char c) {
  return !std::isspace(static_cast<unsigned char>(c)) && c != '(' && c != ')';
}

void SkipWhitespace(std::string_view text, size_t* pos) {
  while (*pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
}

Status ErrorAt(size_t pos, const std::string& what) {
  return Status::InvalidArgument("bracket parse error at byte " +
                                 std::to_string(pos) + ": " + what);
}

// Recursive-descent over "(TAG child...)" with an explicit frame stack so
// that arbitrarily deep input cannot overflow the C stack.
struct Frame {
  NodeId node;
  size_t open_pos;   // position of '(' for error messages
  int word_children = 0;
  int group_children = 0;
  Symbol pending_word = kNoSymbol;  // word seen under this node, if any
};

}  // namespace

Result<Tree> ParseBracketTree(std::string_view text, Interner* interner,
                              size_t* pos) {
  SkipWhitespace(text, pos);
  if (*pos >= text.size()) {
    return Status::NotFound("end of input");
  }
  if (text[*pos] != '(') {
    return ErrorAt(*pos, "expected '('");
  }

  const Symbol lex = interner->Intern(kLexAttr);
  Tree tree;
  std::vector<Frame> stack;
  // The outer unlabeled wrapper, if present, is handled by treating a group
  // with an empty tag specially: if it ends up with exactly one group child
  // and no words, it is unwrapped; otherwise it becomes a TOP node.
  // We parse into a temporary "super-root" frame to allow both shapes.
  bool has_wrapper = false;

  auto open_group = [&](size_t open_pos) -> Status {
    ++*pos;  // consume '('
    SkipWhitespace(text, pos);
    // Read optional tag.
    size_t start = *pos;
    while (*pos < text.size() && IsAtomChar(text[*pos])) ++*pos;
    std::string_view tag = text.substr(start, *pos - start);
    if (tag.empty()) {
      // Unlabeled group: legal only as the outermost wrapper.
      if (!stack.empty()) {
        return ErrorAt(open_pos, "unlabeled group inside a tree");
      }
      has_wrapper = true;
      Frame f;
      f.node = tree.AddRoot(interner->Intern(kSyntheticRoot));
      f.open_pos = open_pos;
      stack.push_back(f);
      return Status::OK();
    }
    Frame f;
    f.open_pos = open_pos;
    Symbol name = interner->Intern(tag);
    if (stack.empty()) {
      f.node = tree.AddRoot(name);
    } else {
      stack.back().group_children += 1;
      f.node = tree.AddChild(stack.back().node, name);
    }
    stack.push_back(f);
    return Status::OK();
  };

  LPATH_RETURN_IF_ERROR(open_group(*pos));

  while (!stack.empty()) {
    SkipWhitespace(text, pos);
    if (*pos >= text.size()) {
      return ErrorAt(stack.back().open_pos, "unterminated group");
    }
    char c = text[*pos];
    if (c == '(') {
      LPATH_RETURN_IF_ERROR(open_group(*pos));
    } else if (c == ')') {
      Frame f = stack.back();
      stack.pop_back();
      ++*pos;
      if (f.word_children > 1) {
        return ErrorAt(f.open_pos, "node has multiple word children");
      }
      if (f.word_children == 1 && f.group_children > 0) {
        return ErrorAt(f.open_pos, "node mixes word and group children");
      }
      if (f.word_children == 1) {
        // Attach the word as @lex. The node must be the most recently added
        // node — true because a word-bearing node has no group children.
        tree.AddAttr(f.node, lex, f.pending_word);
      }
    } else {
      // Word atom.
      size_t start = *pos;
      while (*pos < text.size() && IsAtomChar(text[*pos])) ++*pos;
      if (stack.empty()) break;
      stack.back().word_children += 1;
      stack.back().pending_word =
          interner->Intern(text.substr(start, *pos - start));
    }
  }

  if (!has_wrapper) return tree;

  // Unwrap "( (S ...) )": wrapper with exactly one child. Rebuild without
  // the synthetic root by re-parsing the single child region — cheaper and
  // simpler: copy the subtree.
  if (tree.ChildCount(tree.root()) == 1) {
    Tree inner;
    // Copy subtree rooted at the single child.
    NodeId src_root = tree.first_child(tree.root());
    NodeId dst_root = inner.AddRoot(tree.name(src_root));
    for (int i = 0; i < tree.attr_count(src_root); ++i) {
      inner.AddAttr(dst_root, tree.attrs(src_root)[i].name,
                    tree.attrs(src_root)[i].value);
    }
    // Iterative pre-order copy: children are visited in order via an
    // explicit "next child" cursor per frame.
    std::vector<std::pair<NodeId, NodeId>> frames;  // (src child cursor, dst)
    frames.emplace_back(tree.first_child(src_root), dst_root);
    while (!frames.empty()) {
      auto& [cursor, dst] = frames.back();
      if (cursor == kNoNode) {
        frames.pop_back();
        continue;
      }
      NodeId src_child = cursor;
      cursor = tree.next_sibling(cursor);
      NodeId dst_child = inner.AddChild(dst, tree.name(src_child));
      for (int i = 0; i < tree.attr_count(src_child); ++i) {
        inner.AddAttr(dst_child, tree.attrs(src_child)[i].name,
                      tree.attrs(src_child)[i].value);
      }
      frames.emplace_back(tree.first_child(src_child), dst_child);
    }
    return inner;
  }
  return tree;  // Wrapper kept as TOP (multiple children).
}

Status ParseBracketText(std::string_view text, Corpus* corpus) {
  size_t pos = 0;
  for (;;) {
    Result<Tree> tree = ParseBracketTree(text, corpus->mutable_interner(), &pos);
    if (!tree.ok()) {
      if (tree.status().IsNotFound()) return Status::OK();  // clean EOF
      return tree.status();
    }
    corpus->Add(std::move(tree).value());
  }
}

namespace {

void WriteSubtree(const Tree& tree, const Interner& interner, Symbol lex,
                  NodeId node, std::string* out) {
  out->push_back('(');
  out->append(interner.name(tree.name(node)));
  Symbol word = lex == kNoSymbol ? kNoSymbol : tree.AttrValue(node, lex);
  if (word != kNoSymbol) {
    out->push_back(' ');
    out->append(interner.name(word));
  }
  for (NodeId c = tree.first_child(node); c != kNoNode;
       c = tree.next_sibling(c)) {
    out->push_back(' ');
    WriteSubtree(tree, interner, lex, c, out);
  }
  out->push_back(')');
}

}  // namespace

void WriteBracketTree(const Tree& tree, const Interner& interner,
                      std::string* out) {
  if (tree.empty()) return;
  WriteSubtree(tree, interner, interner.Lookup("@lex"), tree.root(), out);
}

std::string WriteBracketCorpus(const Corpus& corpus) {
  std::string out;
  for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
    WriteBracketTree(corpus.tree(tid), corpus.interner(), &out);
    out.push_back('\n');
  }
  return out;
}

size_t BracketCorpusSize(const Corpus& corpus) {
  // One reusable buffer keeps allocation cost flat.
  size_t total = 0;
  std::string buf;
  for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
    buf.clear();
    WriteBracketTree(corpus.tree(tid), corpus.interner(), &buf);
    total += buf.size() + 1;  // newline
  }
  return total;
}

Status LoadBracketFile(const std::string& path, Corpus* corpus) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseBracketText(ss.str(), corpus);
}

Status SaveBracketFile(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  out << WriteBracketCorpus(corpus);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace lpath
