#include "tree/stats.h"

#include <algorithm>

#include "tree/bracket_io.h"

namespace lpath {

std::vector<std::pair<std::string, size_t>> CorpusStats::TopTags(
    size_t k) const {
  std::vector<std::pair<std::string, size_t>> out;
  for (size_t i = 0; i < tag_frequencies.size() && i < k; ++i) {
    out.push_back(tag_frequencies[i]);
  }
  return out;
}

CorpusStats ComputeStats(const Corpus& corpus, bool include_file_size) {
  CorpusStats stats;
  stats.tree_count = corpus.size();

  const Interner& interner = corpus.interner();
  std::vector<size_t> freq(interner.end_id(), 0);
  const Symbol lex = interner.Lookup("@lex");

  for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
    const Tree& t = corpus.tree(tid);
    stats.node_count += t.size();
    // Depth via one pass: depth[i] = depth[parent]+1, ids are pre-order.
    std::vector<int> depth(t.size());
    for (NodeId id = 0; id < static_cast<NodeId>(t.size()); ++id) {
      depth[id] = t.parent(id) == kNoNode ? 1 : depth[t.parent(id)] + 1;
      stats.max_depth = std::max(stats.max_depth, depth[id]);
      freq[t.name(id)] += 1;
      if (lex != kNoSymbol && t.AttrValue(id, lex) != kNoSymbol) {
        stats.word_count += 1;
      }
    }
  }

  for (Symbol s = 1; s < interner.end_id(); ++s) {
    if (freq[s] == 0) continue;
    std::string_view name = interner.name(s);
    if (!name.empty() && name[0] == '@') continue;  // attribute names
    stats.tag_frequencies.emplace_back(std::string(name), freq[s]);
  }
  std::sort(stats.tag_frequencies.begin(), stats.tag_frequencies.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  stats.unique_tags = stats.tag_frequencies.size();
  stats.avg_tree_nodes =
      stats.tree_count == 0
          ? 0.0
          : static_cast<double>(stats.node_count) / stats.tree_count;
  if (include_file_size) {
    stats.file_size_bytes = BracketCorpusSize(corpus);
  }
  return stats;
}

}  // namespace lpath
