// A corpus is an ordered collection of trees sharing one string dictionary —
// the unit that the storage layer loads and the engines query.

#ifndef LPATHDB_TREE_CORPUS_H_
#define LPATHDB_TREE_CORPUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "tree/tree.h"

namespace lpath {

/// Identifier of a tree within a corpus (the `tid` column of the relation).
using TreeId = int32_t;

/// Ordered collection of trees plus the shared symbol dictionary.
///
/// Movable but not copyable (corpora can be large).
class Corpus {
 public:
  Corpus() : interner_(std::make_unique<Interner>()) {}

  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  /// Shared dictionary for tags, attribute names, and word values.
  Interner* mutable_interner() { return interner_.get(); }
  const Interner& interner() const { return *interner_; }

  /// Appends a tree and returns its id. The tree must use this corpus's
  /// interner for all symbols.
  TreeId Add(Tree tree);

  /// Appends copies of every tree of `other`, re-interning each symbol from
  /// `other`'s dictionary into this one (symbol ids are remapped; shared
  /// strings resolve to this corpus's existing ids). The ingestion path of
  /// the snapshot chain: externally loaded trees enter a delta corpus whose
  /// dictionary is a clone-extension of the chain's.
  void AppendFrom(const Corpus& other);

  /// Replaces the dictionary. Intended for assembling a corpus from parts
  /// that already share symbol ids (snapshot-chain append and compaction);
  /// any trees already present must use ids valid in `interner`.
  void ResetInterner(Interner interner) { *interner_ = std::move(interner); }

  size_t size() const { return trees_.size(); }
  bool empty() const { return trees_.empty(); }
  const Tree& tree(TreeId tid) const { return trees_[tid]; }

  /// Total number of element nodes across all trees.
  size_t TotalNodes() const;

  /// Convenience: interned symbol for a string, without inserting.
  Symbol Lookup(std::string_view s) const { return interner_->Lookup(s); }

  /// Replicates the corpus `factor` times (appending copies of the original
  /// tree sequence), used by the Figure 9 scalability experiment. `factor`
  /// counts total copies, so ReplicateTo(2) doubles the corpus.
  void ReplicateTo(int factor);

  /// Keeps only the first `n` trees (used for the 0.5x scale point).
  void Truncate(size_t n);

  /// Validates every tree.
  Status Validate() const;

 private:
  std::unique_ptr<Interner> interner_;
  std::vector<Tree> trees_;
};

}  // namespace lpath

#endif  // LPATHDB_TREE_CORPUS_H_
