#include "tree/corpus.h"

namespace lpath {

TreeId Corpus::Add(Tree tree) {
  trees_.push_back(std::move(tree));
  return static_cast<TreeId>(trees_.size() - 1);
}

size_t Corpus::TotalNodes() const {
  size_t total = 0;
  for (const Tree& t : trees_) total += t.size();
  return total;
}

void Corpus::ReplicateTo(int factor) {
  const size_t original = trees_.size();
  for (int copy = 1; copy < factor; ++copy) {
    for (size_t i = 0; i < original; ++i) {
      trees_.push_back(trees_[i]);  // Tree is copyable (vectors of PODs).
    }
  }
}

void Corpus::Truncate(size_t n) {
  if (n < trees_.size()) trees_.resize(n);
}

Status Corpus::Validate() const {
  for (const Tree& t : trees_) {
    LPATH_RETURN_IF_ERROR(t.Validate());
  }
  return Status::OK();
}

}  // namespace lpath
