#include "tree/corpus.h"

namespace lpath {

TreeId Corpus::Add(Tree tree) {
  trees_.push_back(std::move(tree));
  return static_cast<TreeId>(trees_.size() - 1);
}

void Corpus::AppendFrom(const Corpus& other) {
  const Interner& theirs = other.interner();
  // Dense remap table, filled lazily: most ingests share most strings with
  // the base dictionary, so the common case is a lookup, not an insert.
  std::vector<Symbol> remap(theirs.end_id(), kNoSymbol);
  auto map = [&](Symbol s) -> Symbol {
    if (s == kNoSymbol) return kNoSymbol;
    Symbol& slot = remap[s];
    if (slot == kNoSymbol) slot = interner_->Intern(theirs.name(s));
    return slot;
  };
  for (size_t i = 0; i < other.size(); ++i) {
    const Tree& src = other.tree(static_cast<TreeId>(i));
    Tree copy;
    // Node ids are pre-order creation positions and attributes are stored
    // contiguously per node in creation order, so replaying AddRoot /
    // AddChild / AddAttr in id order reproduces the tree exactly.
    for (NodeId n = 0; n < static_cast<NodeId>(src.size()); ++n) {
      if (n == 0) {
        copy.AddRoot(map(src.name(n)));
      } else {
        copy.AddChild(src.parent(n), map(src.name(n)));
      }
      for (int a = 0; a < src.attr_count(n); ++a) {
        const Attr& attr = src.attrs(n)[a];
        copy.AddAttr(n, map(attr.name), map(attr.value));
      }
    }
    Add(std::move(copy));
  }
}

size_t Corpus::TotalNodes() const {
  size_t total = 0;
  for (const Tree& t : trees_) total += t.size();
  return total;
}

void Corpus::ReplicateTo(int factor) {
  const size_t original = trees_.size();
  for (int copy = 1; copy < factor; ++copy) {
    for (size_t i = 0; i < original; ++i) {
      trees_.push_back(trees_[i]);  // Tree is copyable (vectors of PODs).
    }
  }
}

void Corpus::Truncate(size_t n) {
  if (n < trees_.size()) trees_.resize(n);
}

Status Corpus::Validate() const {
  for (const Tree& t : trees_) {
    LPATH_RETURN_IF_ERROR(t.Validate());
  }
  return Status::OK();
}

}  // namespace lpath
