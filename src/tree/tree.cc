#include "tree/tree.h"

#include <cassert>
#include <string>

namespace lpath {

NodeId Tree::AddRoot(Symbol name) {
  assert(nodes_.empty());
  TreeNode n;
  n.name = name;
  n.attr_begin = static_cast<int32_t>(attrs_.size());
  nodes_.push_back(n);
  return 0;
}

NodeId Tree::AddChild(NodeId parent, Symbol name) {
  assert(parent >= 0 && parent < static_cast<NodeId>(nodes_.size()));
  TreeNode n;
  n.name = name;
  n.parent = parent;
  n.attr_begin = static_cast<int32_t>(attrs_.size());
  NodeId id = static_cast<NodeId>(nodes_.size());
  TreeNode& p = nodes_[parent];
  if (p.last_child == kNoNode) {
    p.first_child = p.last_child = id;
  } else {
    n.prev_sibling = p.last_child;
    nodes_[p.last_child].next_sibling = id;
    p.last_child = id;
  }
  nodes_.push_back(n);
  return id;
}

void Tree::AddAttr(NodeId node, Symbol name, Symbol value) {
  assert(node == static_cast<NodeId>(nodes_.size()) - 1 &&
         "attributes must be added to the most recent node");
  attrs_.push_back(Attr{name, value});
  nodes_[node].attr_count += 1;
}

Symbol Tree::AttrValue(NodeId id, Symbol name) const {
  const TreeNode& n = nodes_[id];
  for (int i = 0; i < n.attr_count; ++i) {
    if (attrs_[n.attr_begin + i].name == name) {
      return attrs_[n.attr_begin + i].value;
    }
  }
  return kNoSymbol;
}

int Tree::ChildCount(NodeId id) const {
  int count = 0;
  for (NodeId c = first_child(id); c != kNoNode; c = next_sibling(c)) ++count;
  return count;
}

int Tree::ChildOrdinal(NodeId id) const {
  int pos = 1;
  for (NodeId s = prev_sibling(id); s != kNoNode; s = nodes_[s].prev_sibling) {
    ++pos;
  }
  return pos;
}

int Tree::Depth(NodeId id) const {
  int depth = 1;
  for (NodeId p = parent(id); p != kNoNode; p = parent(p)) ++depth;
  return depth;
}

bool Tree::IsAncestor(NodeId ancestor, NodeId node) const {
  for (NodeId p = parent(node); p != kNoNode; p = parent(p)) {
    if (p == ancestor) return true;
  }
  return false;
}

Status Tree::Validate() const {
  if (nodes_.empty()) return Status::OK();
  if (nodes_[0].parent != kNoNode) {
    return Status::Corruption("root has a parent");
  }
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const TreeNode& n = nodes_[id];
    if (id > 0 && n.parent == kNoNode) {
      return Status::Corruption("non-root node " + std::to_string(id) +
                                " has no parent");
    }
    if (n.parent >= id) {
      return Status::Corruption("node " + std::to_string(id) +
                                " precedes its parent (ids must be pre-order)");
    }
    if (n.name == kNoSymbol) {
      return Status::Corruption("node " + std::to_string(id) + " unnamed");
    }
    // Child list symmetry.
    int count = 0;
    NodeId prev = kNoNode;
    for (NodeId c = n.first_child; c != kNoNode; c = nodes_[c].next_sibling) {
      if (nodes_[c].parent != id) {
        return Status::Corruption("child link mismatch at node " +
                                  std::to_string(c));
      }
      if (nodes_[c].prev_sibling != prev) {
        return Status::Corruption("sibling link mismatch at node " +
                                  std::to_string(c));
      }
      prev = c;
      if (++count > static_cast<int>(nodes_.size())) {
        return Status::Corruption("sibling cycle under node " +
                                  std::to_string(id));
      }
    }
    if (n.last_child != prev) {
      return Status::Corruption("last_child mismatch at node " +
                                std::to_string(id));
    }
    if (n.attr_begin < 0 ||
        n.attr_begin + n.attr_count > static_cast<int32_t>(attrs_.size())) {
      return Status::Corruption("attribute span out of range at node " +
                                std::to_string(id));
    }
  }
  return Status::OK();
}

}  // namespace lpath
