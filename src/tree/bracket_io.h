// Penn Treebank bracketed format:  ( (S (NP-SBJ (DT The) (NN dog)) ...) )
//
// The parser accepts the usual Treebank conventions:
//   - a file is a sequence of trees;
//   - a tree may be wrapped in an unlabeled outer group "( ... )";
//   - a pre-terminal is "(TAG word)"; the word becomes the @lex attribute;
//   - atoms may contain any characters except whitespace and parentheses.
//
// The writer emits one tree per line; it is the exact inverse of the parser
// for trees whose only attributes are @lex (round-trip tested).

#ifndef LPATHDB_TREE_BRACKET_IO_H_
#define LPATHDB_TREE_BRACKET_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "tree/corpus.h"

namespace lpath {

/// Parses every tree in `text`, appending them to `corpus`.
/// On error, reports the byte offset of the problem.
Status ParseBracketText(std::string_view text, Corpus* corpus);

/// Parses exactly one tree starting at *pos (skipping leading whitespace);
/// advances *pos past it. Returns NotFound at end of input.
Result<Tree> ParseBracketTree(std::string_view text, Interner* interner,
                              size_t* pos);

/// Appends the bracketed form of `tree` to `out` (no trailing newline).
void WriteBracketTree(const Tree& tree, const Interner& interner,
                      std::string* out);

/// Bracketed form of a whole corpus, one tree per line. This is the
/// "uncompressed ASCII representation" whose size Figure 6(a) reports.
std::string WriteBracketCorpus(const Corpus& corpus);

/// Size in bytes of WriteBracketCorpus(corpus) without materializing it.
size_t BracketCorpusSize(const Corpus& corpus);

/// File convenience wrappers.
Status LoadBracketFile(const std::string& path, Corpus* corpus);
Status SaveBracketFile(const Corpus& corpus, const std::string& path);

}  // namespace lpath

#endif  // LPATHDB_TREE_BRACKET_IO_H_
