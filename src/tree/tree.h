// Ordered labeled trees — the linguistic data model of Section 2 of the
// paper: terminals are units of linguistic artifacts (words), annotations are
// the tree structure above them. Words are modeled as @lex attributes on the
// pre-terminal nodes, matching Figure 1 of the paper.

#ifndef LPATHDB_TREE_TREE_H_
#define LPATHDB_TREE_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace lpath {

/// Index of a node within its Tree. Nodes are stored in creation order,
/// which the builders below keep equal to document (pre-) order.
using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

/// An attribute attached to a node, e.g. {@lex, "saw"}. Names are interned
/// including their '@' prefix so relational rows can reuse the symbol.
struct Attr {
  Symbol name = kNoSymbol;   ///< e.g. the symbol for "@lex".
  Symbol value = kNoSymbol;  ///< e.g. the symbol for "saw".
};

/// One node of an ordered tree. First-child/next-sibling representation with
/// parent and previous-sibling links so every navigation direction is O(1)
/// per hop.
struct TreeNode {
  Symbol name = kNoSymbol;  ///< Tag, e.g. "NP".
  NodeId parent = kNoNode;
  NodeId first_child = kNoNode;
  NodeId last_child = kNoNode;
  NodeId next_sibling = kNoNode;
  NodeId prev_sibling = kNoNode;
  int32_t attr_begin = 0;  ///< Index into Tree's attribute array.
  int32_t attr_count = 0;
};

/// An ordered labeled tree. Append-only: build with AddRoot/AddChild (which
/// must be called in document order) and AddAttr (only on the most recently
/// added node).
class Tree {
 public:
  /// Creates the root. Must be the first call; returns its id (always 0).
  NodeId AddRoot(Symbol name);

  /// Appends a new rightmost child of `parent`. Because callers build in
  /// document order, node ids are pre-order positions.
  NodeId AddChild(NodeId parent, Symbol name);

  /// Attaches an attribute to `node`. `node` must be the most recently added
  /// node (attributes are stored contiguously in creation order).
  void AddAttr(NodeId node, Symbol name, Symbol value);

  bool empty() const { return nodes_.empty(); }
  /// Number of element nodes (attributes not included).
  size_t size() const { return nodes_.size(); }
  NodeId root() const { return nodes_.empty() ? kNoNode : 0; }

  const TreeNode& node(NodeId id) const { return nodes_[id]; }
  Symbol name(NodeId id) const { return nodes_[id].name; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId last_child(NodeId id) const { return nodes_[id].last_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }
  NodeId prev_sibling(NodeId id) const { return nodes_[id].prev_sibling; }
  bool is_leaf(NodeId id) const { return nodes_[id].first_child == kNoNode; }

  /// Attributes of `node`, as a (pointer, count) span.
  const Attr* attrs(NodeId id) const {
    return attrs_.data() + nodes_[id].attr_begin;
  }
  int attr_count(NodeId id) const { return nodes_[id].attr_count; }

  /// Returns the value of attribute `name` on `node`, or kNoSymbol.
  Symbol AttrValue(NodeId id, Symbol name) const;

  /// Number of children of `node` (O(children)).
  int ChildCount(NodeId id) const;

  /// 1-based position of `node` among its siblings (O(siblings)).
  int ChildOrdinal(NodeId id) const;

  /// Depth of `node`; the root has depth 1 (as in Definition 4.1).
  int Depth(NodeId id) const;

  /// True if `ancestor` is a proper ancestor of `node`.
  bool IsAncestor(NodeId ancestor, NodeId node) const;

  /// Checks structural invariants (link symmetry, pre-order ids, attribute
  /// spans). Used by tests and after deserialization.
  Status Validate() const;

 private:
  std::vector<TreeNode> nodes_;
  std::vector<Attr> attrs_;
};

}  // namespace lpath

#endif  // LPATHDB_TREE_TREE_H_
