#include "service/plan_cache.h"

#include <algorithm>
#include <cctype>

namespace lpath {
namespace service {

std::string NormalizeQueryText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  char quote = '\0';  // inside a '...' / "..." literal when non-null
  for (char c : text) {
    if (quote != '\0') {
      // Quoted literals are preserved byte for byte: LPath allows any
      // character (including whitespace runs) between quotes, and the
      // normalized text is what actually gets parsed.
      out.push_back(c);
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      if (pending_space) {
        out.push_back(' ');
        pending_space = false;
      }
      quote = c;
      out.push_back(c);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

PlanCache::PlanCache(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

std::optional<CachedPlan> PlanCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_ += 1;
    return std::nullopt;
  }
  hits_ += 1;
  if (it->second->second.negative()) negative_hits_ += 1;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::Put(const std::string& key, CachedPlan entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent misses may prepare the same query twice; keep the newest.
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_ += 1;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.negative_hits = negative_hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace service
}  // namespace lpath
