#include "service/plan_cache.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "sql/fingerprint.h"

namespace lpath {
namespace service {

std::string NormalizeQueryText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  char quote = '\0';  // inside a '...' / "..." literal when non-null
  for (char c : text) {
    if (quote != '\0') {
      // Quoted literals are preserved byte for byte: LPath allows any
      // character (including whitespace runs) between quotes, and the
      // normalized text is what actually gets parsed.
      out.push_back(c);
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      if (pending_space) {
        out.push_back(' ');
        pending_space = false;
      }
      quote = c;
      out.push_back(c);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

PlanCache::PlanCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void PlanCache::BindTextLocked(EntryList::iterator it,
                               const std::string& key) {
  // Racing binders of one spelling are idempotent: the first wins, the
  // second finds the text already mapped (necessarily to this entry) and
  // leaves it alone.
  if (!by_text_.emplace(key, it).second) return;
  it->texts.push_back(key);
  if (it->texts.size() > kMaxTextsPerEntry) {
    by_text_.erase(it->texts.front());
    it->texts.erase(it->texts.begin());
  }
}

void PlanCache::UnbindEntryLocked(EntryList::iterator it) {
  for (const std::string& text : it->texts) by_text_.erase(text);
  if (it->has_fp) {
    auto bucket = by_fp_.find(it->fp);
    if (bucket != by_fp_.end()) {
      auto& slots = bucket->second;
      slots.erase(std::remove(slots.begin(), slots.end(), it), slots.end());
      if (slots.empty()) by_fp_.erase(bucket);
    }
  }
}

void PlanCache::EvictLocked() {
  while (lru_.size() > capacity_) {
    UnbindEntryLocked(std::prev(lru_.end()));
    lru_.pop_back();
    evictions_ += 1;
  }
}

CachedPlanPtr PlanCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_text_.find(key);
  if (it == by_text_.end()) {
    misses_ += 1;
    return nullptr;
  }
  hits_ += 1;
  if (it->second->value->negative()) negative_hits_ += 1;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

CachedPlanPtr PlanCache::GetByFingerprint(const std::string& key, uint64_t fp,
                                          const ExecPlan& compiled) {
  std::lock_guard<std::mutex> lock(mu_);
  auto bucket = by_fp_.find(fp);
  if (bucket != by_fp_.end()) {
    for (EntryList::iterator it : bucket->second) {
      // The hash narrows; structural equality decides. A 64-bit collision
      // between distinct plans lands in the `else` and each keeps its own
      // entry — shared serving never rides on the fingerprint alone.
      if (it->rep != nullptr && sql::PlanEquals(*it->rep, compiled)) {
        shared_prepare_hits_ += 1;
        BindTextLocked(it, key);
        lru_.splice(lru_.begin(), lru_, it);
        return it->value;
      }
    }
    fingerprint_collisions_ += 1;
  }
  return nullptr;
}

CachedPlanPtr PlanCache::Put(const std::string& key, uint64_t fp, ExecPlan rep,
                             CachedPlanPtr entry) {
  std::lock_guard<std::mutex> lock(mu_);
  // Concurrent misses may prepare the same query twice; the first
  // published entry wins and the racer adopts it (entries for one
  // structure are interchangeable — each bundles a plan with the memos it
  // was created with, and the loser's bundle is simply dropped).
  auto existing = by_text_.find(key);
  if (existing != by_text_.end()) {
    lru_.splice(lru_.begin(), lru_, existing->second);
    return existing->second->value;
  }
  auto bucket = by_fp_.find(fp);
  if (bucket != by_fp_.end()) {
    for (EntryList::iterator it : bucket->second) {
      if (it->rep != nullptr && sql::PlanEquals(*it->rep, rep)) {
        BindTextLocked(it, key);
        lru_.splice(lru_.begin(), lru_, it);
        return it->value;
      }
    }
  }
  lru_.emplace_front();
  EntryList::iterator it = lru_.begin();
  it->has_fp = true;
  it->fp = fp;
  it->rep = std::make_unique<const ExecPlan>(std::move(rep));
  it->value = std::move(entry);
  BindTextLocked(it, key);
  by_fp_[fp].push_back(it);
  EvictLocked();
  return it->value;
}

void PlanCache::PutNegative(const std::string& key, Status error) {
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = by_text_.find(key);
  if (existing != by_text_.end()) {
    lru_.splice(lru_.begin(), lru_, existing->second);
    return;
  }
  auto negative = std::make_shared<CachedPlan>();
  negative->error = std::move(error);
  lru_.emplace_front();
  EntryList::iterator it = lru_.begin();
  it->value = std::move(negative);
  BindTextLocked(it, key);
  EvictLocked();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.negative_hits = negative_hits_;
  s.misses = misses_;
  s.shared_prepare_hits = shared_prepare_hits_;
  s.fingerprint_collisions = fingerprint_collisions_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.texts = by_text_.size();
  s.fingerprints = by_fp_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace service
}  // namespace lpath
