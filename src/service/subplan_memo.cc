#include "service/subplan_memo.h"

#include <utility>

#include "sql/fingerprint.h"

namespace lpath {
namespace service {

bool SubplanMemoRegistry::Register(uint64_t fp, const ExecPlan& subtree) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = reps_.find(fp);
  if (it == reps_.end()) {
    reps_.emplace(fp, std::make_unique<const ExecPlan>(subtree.Clone()));
    return true;
  }
  if (sql::PlanEquals(*it->second, subtree)) {
    cross_plan_ += 1;
    return true;
  }
  collisions_ += 1;
  return false;
}

SubplanMemoRegistry::Stats SubplanMemoRegistry::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.subtrees = reps_.size();
    s.cross_plan = cross_plan_;
    s.collisions = collisions_;
  }
  s.memo_entries = memo_.size();
  return s;
}

}  // namespace service
}  // namespace lpath
