// A thread-safe LRU cache from query text to preparation outcomes — the
// parse/compile/optimize-once, execute-many half of the serving path.
//
// The cache is two-level:
//   text  → entry   the front map: normalized query text to its entry;
//   fingerprint → entry   the structural index: a front-map miss that
//                 compiles to a plan whose fingerprint (sql/fingerprint.h)
//                 matches an existing entry — and whose compiled plan
//                 PlanEquals that entry's representative, the collision
//                 check — *binds the new spelling to the existing entry*
//                 instead of preparing again. Distinct spellings of one
//                 structure share one prepared plan, one EXISTS memo, and
//                 one delta plan/memo per source.
//
// An entry is either a shared prepared plan bundle or the error Status the
// text produced (a *negative* entry, text-keyed only — errors are spelling
// -specific and carry no plan to fingerprint). Both kinds share one LRU
// policy over entries; evicting an entry unbinds all of its spellings.
//
// Entries are handed out as shared_ptr<const CachedPlan> — one refcount
// bump per hit under the mutex — so an entry evicted while queries still
// execute against it stays alive until the last of them finishes.

#ifndef LPATHDB_SERVICE_PLAN_CACHE_H_
#define LPATHDB_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/exists_memo.h"
#include "sql/optimizer.h"

namespace lpath {
namespace service {

/// Collapses whitespace runs to single spaces and trims the ends — outside
/// quoted literals, whose bytes (including whitespace runs) are preserved
/// verbatim — so reformatted spellings of one query share a cache entry
/// without aliasing distinct quoted strings. Queries are case- and
/// quote-sensitive beyond that.
std::string NormalizeQueryText(std::string_view text);

/// One preparation outcome: a plan bundle, or (negative entry) the error
/// Status that preparing the text produced. Positive entries carry, per
/// relation source, the prepared plan and its shared EXISTS memo, plus the
/// registry-verified fingerprint keys that let executions consult the
/// session's snapshot-scoped subplan memo (see service/subplan_memo.h).
/// Preparing per source is what keeps symbol resolution honest — a literal
/// present only in delta-ingested trees is unknown to the base dictionary
/// (and correctly empties the base plan) while resolving in the delta
/// plan, and vice versa — and gives each (plan, relation) pair its own
/// memo, so answers never leak across source generations. Everything here
/// lives and dies with the cache entry: LRU eviction and snapshot swaps
/// (which rebuild the whole cache) drop plan and memos together.
struct CachedPlan {
  /// Structural fingerprint of the compiled (unresolved) plan; 0 for
  /// negative entries.
  uint64_t fingerprint = 0;

  std::shared_ptr<const sql::PreparedPlan> plan;  ///< null iff negative
  std::shared_ptr<sql::ExistsMemo> memo;          ///< null iff negative

  /// Snapshot-chain second source (null when the session's snapshot has
  /// no delta, or the entry is negative).
  std::shared_ptr<const sql::PreparedPlan> delta_plan;
  std::shared_ptr<sql::ExistsMemo> delta_memo;

  /// Registry-verified subplan memo keys per source: every memoizable
  /// EXISTS node of the source's prepared plan (all nesting levels) whose
  /// subtree the session registry agreed to share, mapped to its subtree
  /// fingerprint. Passed to the executor as sql::GlobalExistsMemo::keys.
  std::unordered_map<const BoolExpr*, uint64_t> sub_keys;
  std::unordered_map<const BoolExpr*, uint64_t> delta_sub_keys;

  Status error = Status::OK();  ///< !ok() iff negative

  bool negative() const { return plan == nullptr; }
};

using CachedPlanPtr = std::shared_ptr<const CachedPlan>;

class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;           ///< text-level hits, including negative
    uint64_t negative_hits = 0;  ///< hits that returned a cached error
    uint64_t misses = 0;         ///< text-level misses
    /// Text misses that still avoided a sql::Prepare by structurally
    /// matching an existing entry (fingerprint + PlanEquals); the new
    /// spelling was bound to the shared entry.
    uint64_t shared_prepare_hits = 0;
    /// Fingerprint matches whose PlanEquals check failed — genuinely
    /// distinct plans colliding on the 64-bit hash. Each gets its own
    /// entry; correctness never rides on the hash alone.
    uint64_t fingerprint_collisions = 0;
    uint64_t evictions = 0;  ///< entries evicted (all spellings unbound)
    size_t size = 0;         ///< entries (shared plans + negatives)
    size_t texts = 0;        ///< normalized spellings currently bound
    size_t fingerprints = 0;  ///< distinct fingerprints indexed
    size_t capacity = 0;
  };

  /// A cache with room for `capacity` entries (at least one).
  explicit PlanCache(size_t capacity);

  /// Returns the entry bound to `key` (moving it to the LRU front), or
  /// null on a front-map miss — the caller should compile the text and
  /// probe GetByFingerprint before preparing.
  CachedPlanPtr Get(const std::string& key);

  /// Second-level lookup after a front-map miss: the caller compiled `key`
  /// into `compiled` with fingerprint `fp`. On a structural match against
  /// an existing entry's representative, `key` is bound to that entry and
  /// the shared bundle returned — a respelling serviced without
  /// sql::Prepare. Null when no structurally equal entry exists.
  CachedPlanPtr GetByFingerprint(const std::string& key, uint64_t fp,
                                 const ExecPlan& compiled);

  /// Inserts a freshly prepared `entry` for `key`, keeping `rep` (the
  /// compiled, unresolved plan) as the structural representative for
  /// future GetByFingerprint probes. If a racing thread already published
  /// a structurally equal entry (or one for the same text), that entry
  /// wins; the returned pointer is the bundle the caller should execute.
  CachedPlanPtr Put(const std::string& key, uint64_t fp, ExecPlan rep,
                    CachedPlanPtr entry);

  /// Caches the error `key` produced (negative, text-keyed entry).
  void PutNegative(const std::string& key, Status error);

  Stats stats() const;

 private:
  struct Entry {
    std::vector<std::string> texts;  ///< spellings bound to this entry
    bool has_fp = false;
    uint64_t fp = 0;
    std::unique_ptr<const ExecPlan> rep;  ///< null for negative entries
    CachedPlanPtr value;
  };
  using EntryList = std::list<Entry>;

  /// Binds `key` to the entry, evicting the entry's oldest spelling past
  /// the per-entry bound (a hostile stream of fresh spellings of one hot
  /// structure must not grow the front map without limit).
  void BindTextLocked(EntryList::iterator it, const std::string& key);
  void UnbindEntryLocked(EntryList::iterator it);
  void EvictLocked();

  static constexpr size_t kMaxTextsPerEntry = 64;

  mutable std::mutex mu_;
  size_t capacity_;
  EntryList lru_;  // front = most recently used
  std::unordered_map<std::string, EntryList::iterator> by_text_;
  std::unordered_map<uint64_t, std::vector<EntryList::iterator>> by_fp_;
  uint64_t hits_ = 0;
  uint64_t negative_hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t shared_prepare_hits_ = 0;
  uint64_t fingerprint_collisions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace service
}  // namespace lpath

#endif  // LPATHDB_SERVICE_PLAN_CACHE_H_
