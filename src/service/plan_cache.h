// A thread-safe LRU cache from normalized query text to preparation
// outcomes — the parse/compile/optimize-once, execute-many half of the
// serving path. An entry is either a shared prepared plan or the error
// Status the text produced (a *negative* entry): bad query text gets
// resubmitted just like good text, and re-deriving the same parse error on
// every submission is wasted work. Both kinds share one LRU policy.
//
// Plans are handed out as shared_ptr<const PreparedPlan>, so an entry
// evicted while queries still execute against it stays alive until the
// last of them finishes.

#ifndef LPATHDB_SERVICE_PLAN_CACHE_H_
#define LPATHDB_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "sql/exists_memo.h"
#include "sql/optimizer.h"

namespace lpath {
namespace service {

/// Collapses whitespace runs to single spaces and trims the ends, so that
/// reformatted spellings of one query share a cache entry. Queries are
/// case- and quote-sensitive beyond that.
std::string NormalizeQueryText(std::string_view text);

/// One preparation outcome: a plan, or (negative entry) the error Status
/// that preparing the text produced. Positive entries also carry the
/// plan's shared EXISTS memo: subquery answers derived by any morsel of
/// any execution of this plan are reused by all later ones. The memo is
/// valid exactly as long as the (plan, session relation) pair, so it
/// lives and dies with the cache entry — LRU eviction and snapshot swaps
/// (which rebuild the whole cache) drop both together.
struct CachedPlan {
  std::shared_ptr<const sql::PreparedPlan> plan;  ///< null iff negative
  std::shared_ptr<sql::ExistsMemo> memo;          ///< null iff negative
  /// Snapshot-chain second source: the same query prepared against the
  /// session's delta relation, with its own EXISTS memo. Preparing per
  /// source is what keeps symbol resolution honest — a literal present
  /// only in delta-ingested trees is unknown to the base dictionary (and
  /// correctly empties the base plan) while resolving in the delta plan,
  /// and vice versa — and gives each (plan, relation) pair its own memo,
  /// so answers never leak across source generations. Null when the
  /// session's snapshot has no delta (or the entry is negative).
  std::shared_ptr<const sql::PreparedPlan> delta_plan;
  std::shared_ptr<sql::ExistsMemo> delta_memo;
  Status error = Status::OK();                    ///< !ok() iff negative

  bool negative() const { return plan == nullptr; }
};

class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;           ///< total, including negative hits
    uint64_t negative_hits = 0;  ///< hits that returned a cached error
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// A cache with room for `capacity` entries (at least one).
  explicit PlanCache(size_t capacity);

  /// Returns the entry for `key` (moving it to the front), or nullopt.
  std::optional<CachedPlan> Get(const std::string& key);

  /// Inserts (or replaces) the entry for `key`, evicting from the tail.
  void Put(const std::string& key, CachedPlan entry);

  Stats stats() const;

 private:
  using Entry = std::pair<std::string, CachedPlan>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t negative_hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace service
}  // namespace lpath

#endif  // LPATHDB_SERVICE_PLAN_CACHE_H_
