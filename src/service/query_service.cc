#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "lpath/parser.h"
#include "plan/compile.h"
#include "plan/sql_gen.h"
#include "sql/parser.h"

namespace lpath {
namespace service {

namespace {

/// Recent-query latencies kept for the percentile summary.
constexpr size_t kLatencySamples = 8192;

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

uint64_t HitKey(const Hit& h) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(h.tid)) << 32) |
         static_cast<uint32_t>(h.id);
}

}  // namespace

bool PendingQuery::ready() const {
  return future_.valid() &&
         future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
}

Result<QueryResult> PendingQuery::Get() const {
  if (!future_.valid()) {
    return Status::InvalidArgument("PendingQuery: empty handle");
  }
  return future_.get();
}

QueryService::QueryService(SnapshotPtr snapshot, QueryServiceOptions options)
    : options_(options),
      session_(std::make_shared<const Session>(std::move(snapshot), options_)),
      pool_(std::make_unique<ThreadPool>(options.threads)) {
  latency_ring_ms_.reserve(kLatencySamples);
}

QueryService::~QueryService() = default;

QueryService::SessionPtr QueryService::CurrentSession() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return session_;
}

std::shared_ptr<const void> QueryService::UpdateSnapshot(SnapshotPtr snapshot) {
  // Building the session (executor + empty cache) happens before the
  // exchange; the exchange is the single publication point. Readers that
  // loaded the old session keep it alive through their own shared_ptr; the
  // old session goes back to the caller so its last reference (possibly
  // the teardown of a whole snapshot) is never dropped under session_mu_
  // — nor under whatever lock the caller holds.
  auto next = std::make_shared<const Session>(std::move(snapshot), options_);
  SessionPtr old;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    old = std::exchange(session_, std::move(next));
  }
  return old;
}

SnapshotPtr QueryService::snapshot() const { return CurrentSession()->snapshot; }

Result<std::shared_ptr<const sql::PreparedPlan>> QueryService::PrepareUncached(
    const Session& session, const std::string& normalized) {
  const NodeRelation& relation = session.snapshot->relation();
  LPATH_ASSIGN_OR_RETURN(LocationPath path, ParseLPath(normalized));
  CompileOptions copts;
  copts.scheme = relation.scheme();
  copts.unnest_predicates = options_.unnest_predicates;
  LPATH_ASSIGN_OR_RETURN(ExecPlan plan, CompileLPath(path, copts));
  if (options_.via_sql_text) {
    const std::string sql_text = GenerateSql(plan);
    LPATH_ASSIGN_OR_RETURN(plan, sql::ParseSql(sql_text));
  }
  LPATH_ASSIGN_OR_RETURN(std::unique_ptr<sql::PreparedPlan> prepared,
                         sql::Prepare(plan, relation, options_.exec));
  return std::shared_ptr<const sql::PreparedPlan>(std::move(prepared));
}

Result<std::shared_ptr<const sql::PreparedPlan>> QueryService::GetPlanIn(
    const Session& session, const std::string& query) {
  const std::string key = NormalizeQueryText(query);
  if (std::optional<CachedPlan> cached = session.cache.Get(key)) {
    if (cached->negative()) return cached->error;
    return std::move(cached->plan);
  }
  // Prepared outside the cache lock; a racing miss duplicates the work and
  // the later Put wins, which is correct (plans are interchangeable).
  Result<std::shared_ptr<const sql::PreparedPlan>> prepared =
      PrepareUncached(session, key);
  if (prepared.ok()) {
    session.cache.Put(key, CachedPlan{prepared.value(), Status::OK()});
  } else {
    // Negative entry: the same bad text will be answered from the cache.
    session.cache.Put(key, CachedPlan{nullptr, prepared.status()});
  }
  return prepared;
}

Result<std::shared_ptr<const sql::PreparedPlan>> QueryService::GetPlan(
    const std::string& query) {
  SessionPtr session = CurrentSession();
  return GetPlanIn(*session, query);
}

Result<QueryResult> QueryService::RunSharded(
    const Session& session, std::shared_ptr<const sql::PreparedPlan> plan,
    const RowSink* sink) {
  const int32_t trees = session.snapshot->relation().tree_count();
  int shards = options_.shards_per_query > 0 ? options_.shards_per_query
                                             : pool_->size();
  shards = std::max(1, std::min(shards, trees));
  // Adaptive fan-out: when the optimizer expects the root variable to
  // enumerate only a handful of rows, the per-shard setup (task posts,
  // binary-searched run cuts, result merge) costs more than it parallelizes.
  if (shards > 1 && options_.adaptive_serial_rows > 0 &&
      plan->root_cardinality < options_.adaptive_serial_rows) {
    shards = 1;
  }
  if (plan->always_empty || shards <= 1) {
    sql::ExecStats stats;
    Result<QueryResult> r = session.executor.ExecutePrepared(*plan, &stats);
    RecordExec(stats, /*sharded=*/false);
    if (sink != nullptr && r.ok() && !r->hits.empty()) {
      (*sink)(std::span<const Hit>(r->hits));
    }
    return r;
  }

  // Merge stage for streaming: per-shard results are deduplicated against
  // everything already delivered, so sink batches are disjoint and their
  // union equals the DISTINCT result. The mutex also serializes sink calls.
  struct StreamMerge {
    std::mutex mu;
    std::unordered_set<uint64_t> seen;
  };
  auto merge = sink != nullptr ? std::make_shared<StreamMerge>() : nullptr;

  std::vector<Result<QueryResult>> results(shards,
                                           Result<QueryResult>(QueryResult{}));
  std::vector<sql::ExecStats> stats(shards);
  // The item lambda owns the plan (copied into RunOnPool's shared state),
  // keeping it alive for helpers scheduled after the query completes.
  RunOnPool(shards, [&session, plan, trees, shards, &results, &stats, sink,
                     merge](int i) {
    const int32_t lo = static_cast<int32_t>(int64_t{trees} * i / shards);
    const int32_t hi = static_cast<int32_t>(int64_t{trees} * (i + 1) / shards);
    results[i] = session.executor.ExecuteShard(*plan, lo, hi, &stats[i]);
    if (sink != nullptr && results[i].ok()) {
      std::vector<Hit> fresh;
      std::lock_guard<std::mutex> lock(merge->mu);
      for (const Hit& h : results[i]->hits) {
        if (merge->seen.insert(HitKey(h)).second) fresh.push_back(h);
      }
      if (!fresh.empty()) {
        std::sort(fresh.begin(), fresh.end());
        (*sink)(std::span<const Hit>(fresh));
      }
    }
  });

  sql::ExecStats total;
  for (int i = 0; i < shards; ++i) total.Add(stats[i]);
  RecordExec(total, /*sharded=*/true);
  QueryResult merged;
  for (int i = 0; i < shards; ++i) {
    if (!results[i].ok()) return results[i].status();
    merged.hits.insert(merged.hits.end(), results[i]->hits.begin(),
                       results[i]->hits.end());
  }
  // Distinct bindings in different shards can project to the same output
  // node; Normalize dedups the concatenation.
  merged.Normalize();
  return merged;
}

void QueryService::RunOnPool(int items, std::function<void(int)> fn) {
  // Shared by the submitting thread and the pool helpers. Helpers hold the
  // state (and through it `fn` and whatever it owns) alive even if they
  // only get scheduled after the call has returned and claim no item.
  struct State {
    std::function<void(int)> fn;
    int items;
    std::atomic<int> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    int done = 0;
  };
  auto state = std::make_shared<State>();
  state->fn = std::move(fn);
  state->items = items;

  auto drain = [state] {
    for (;;) {
      const int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->items) return;
      state->fn(i);
      std::lock_guard<std::mutex> lock(state->mu);
      if (++state->done == state->items) state->done_cv.notify_all();
    }
  };
  const int helpers = std::min(pool_->size(), items) - 1;
  for (int i = 0; i < helpers; ++i) pool_->Post(drain);
  drain();  // the caller works too, so a busy pool cannot stall the call
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->done == state->items; });
}

Result<QueryResult> QueryService::QueryOnce(const std::string& query,
                                            bool sharded, const RowSink* sink) {
  Timer timer;
  // One consistent session per query: plan lookup and execution see the
  // same snapshot even if a swap lands mid-query.
  SessionPtr session = CurrentSession();
  Result<QueryResult> r = [&]() -> Result<QueryResult> {
    LPATH_ASSIGN_OR_RETURN(std::shared_ptr<const sql::PreparedPlan> plan,
                           GetPlanIn(*session, query));
    if (sharded) return RunSharded(*session, std::move(plan), sink);
    sql::ExecStats stats;
    Result<QueryResult> serial = session->executor.ExecutePrepared(*plan, &stats);
    RecordExec(stats, /*sharded=*/false);
    if (sink != nullptr && serial.ok() && !serial->hits.empty()) {
      (*sink)(std::span<const Hit>(serial->hits));
    }
    return serial;
  }();

  const double seconds = timer.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(stats_mu_);
  queries_ += 1;
  if (!r.ok()) errors_ += 1;
  total_seconds_ += seconds;
  const double ms = seconds * 1e3;
  if (latency_ring_ms_.size() < kLatencySamples) {
    latency_ring_ms_.push_back(ms);
  } else {
    latency_ring_ms_[next_sample_ % kLatencySamples] = ms;
  }
  next_sample_ += 1;
  return r;
}

Result<QueryResult> QueryService::Query(const std::string& query) {
  return QueryOnce(query, /*sharded=*/true, /*sink=*/nullptr);
}

Status QueryService::QueryStream(const std::string& query,
                                 const RowSink& sink) {
  return QueryOnce(query, /*sharded=*/true, &sink).status();
}

PendingQuery QueryService::Submit(const std::string& query) {
  return Submit(query, RowSink{});
}

PendingQuery QueryService::Submit(const std::string& query, RowSink sink) {
  // The task owns query + sink; the packaged_task's shared state feeds the
  // caller's handle. Queued tasks are drained by the pool destructor, so a
  // handle outliving the service still resolves.
  auto task = std::make_shared<std::packaged_task<Result<QueryResult>()>>(
      [this, query, sink = std::move(sink)]() {
        return QueryOnce(query, /*sharded=*/true, sink ? &sink : nullptr);
      });
  PendingQuery handle(task->get_future().share());
  pool_->Post([task] { (*task)(); });
  return handle;
}

std::vector<Result<QueryResult>> QueryService::QueryBatch(
    const std::vector<std::string>& queries) {
  std::vector<Result<QueryResult>> results(queries.size(),
                                           Result<QueryResult>(QueryResult{}));
  if (queries.empty()) return results;

  // Workers claim whole queries; each runs serially so that concurrent
  // batch items do not contend over intra-query shards.
  RunOnPool(static_cast<int>(queries.size()), [this, &queries, &results](int i) {
    results[i] = QueryOnce(queries[i], /*sharded=*/false, /*sink=*/nullptr);
  });
  return results;
}

void QueryService::RecordExec(const sql::ExecStats& exec, bool sharded) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  exec_.Add(exec);
  if (sharded) {
    sharded_queries_ += 1;
  } else {
    serial_queries_ += 1;
  }
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  s.cache = CurrentSession()->cache.stats();
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.queries = queries_;
    s.errors = errors_;
    s.sharded_queries = sharded_queries_;
    s.serial_queries = serial_queries_;
    s.exec = exec_;
    s.total_seconds = total_seconds_;
    sorted = latency_ring_ms_;
  }
  std::sort(sorted.begin(), sorted.end());
  s.latency.samples = sorted.size();
  s.latency.p50_ms = Percentile(sorted, 0.50);
  s.latency.p90_ms = Percentile(sorted, 0.90);
  s.latency.p99_ms = Percentile(sorted, 0.99);
  s.latency.max_ms = sorted.empty() ? 0.0 : sorted.back();
  return s;
}

void QueryService::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  queries_ = 0;
  errors_ = 0;
  sharded_queries_ = 0;
  serial_queries_ = 0;
  exec_ = sql::ExecStats{};
  total_seconds_ = 0.0;
  latency_ring_ms_.clear();
  next_sample_ = 0;
}

}  // namespace service
}  // namespace lpath
