#include "service/query_service.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>

#include "common/timer.h"
#include "lpath/parser.h"
#include "plan/compile.h"
#include "plan/sql_gen.h"
#include "sql/parser.h"

namespace lpath {
namespace service {

namespace {

/// Recent-query latencies kept for the percentile summary.
constexpr size_t kLatencySamples = 8192;

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

QueryService::QueryService(const NodeRelation& relation,
                           QueryServiceOptions options)
    : relation_(relation),
      options_(options),
      executor_(relation, options.exec),
      cache_(options.plan_cache_capacity),
      pool_(std::make_unique<ThreadPool>(options.threads)) {
  latency_ring_ms_.reserve(kLatencySamples);
}

QueryService::~QueryService() = default;

Result<std::shared_ptr<const sql::PreparedPlan>> QueryService::GetPlan(
    const std::string& query) {
  const std::string key = NormalizeQueryText(query);
  if (std::shared_ptr<const sql::PreparedPlan> cached = cache_.Get(key)) {
    return cached;
  }
  // Prepared outside the cache lock; a racing miss duplicates the work and
  // the later Put wins, which is correct (plans are interchangeable).
  LPATH_ASSIGN_OR_RETURN(LocationPath path, ParseLPath(key));
  CompileOptions copts;
  copts.scheme = relation_.scheme();
  copts.unnest_predicates = options_.unnest_predicates;
  LPATH_ASSIGN_OR_RETURN(ExecPlan plan, CompileLPath(path, copts));
  if (options_.via_sql_text) {
    const std::string sql_text = GenerateSql(plan);
    LPATH_ASSIGN_OR_RETURN(plan, sql::ParseSql(sql_text));
  }
  LPATH_ASSIGN_OR_RETURN(std::unique_ptr<sql::PreparedPlan> prepared,
                         sql::Prepare(plan, relation_, options_.exec));
  std::shared_ptr<const sql::PreparedPlan> shared = std::move(prepared);
  cache_.Put(key, shared);
  return shared;
}

Result<QueryResult> QueryService::RunSharded(
    std::shared_ptr<const sql::PreparedPlan> plan) {
  const int32_t trees = relation_.tree_count();
  int shards = options_.shards_per_query > 0 ? options_.shards_per_query
                                             : pool_->size();
  shards = std::max(1, std::min(shards, trees));
  if (plan->always_empty || shards <= 1) {
    sql::ExecStats stats;
    Result<QueryResult> r = executor_.ExecutePrepared(*plan, &stats);
    RecordExec(stats);
    return r;
  }

  std::vector<Result<QueryResult>> results(shards,
                                           Result<QueryResult>(QueryResult{}));
  std::vector<sql::ExecStats> stats(shards);
  // The item lambda owns the plan (copied into RunOnPool's shared state),
  // keeping it alive for helpers scheduled after the query completes.
  RunOnPool(shards, [this, plan, trees, shards, &results, &stats](int i) {
    const int32_t lo = static_cast<int32_t>(int64_t{trees} * i / shards);
    const int32_t hi = static_cast<int32_t>(int64_t{trees} * (i + 1) / shards);
    results[i] = executor_.ExecuteShard(*plan, lo, hi, &stats[i]);
  });

  sql::ExecStats total;
  for (int i = 0; i < shards; ++i) total.Add(stats[i]);
  RecordExec(total);
  QueryResult merged;
  for (int i = 0; i < shards; ++i) {
    if (!results[i].ok()) return results[i].status();
    merged.hits.insert(merged.hits.end(), results[i]->hits.begin(),
                       results[i]->hits.end());
  }
  // Distinct bindings in different shards can project to the same output
  // node; Normalize dedups the concatenation.
  merged.Normalize();
  return merged;
}

void QueryService::RunOnPool(int items, std::function<void(int)> fn) {
  // Shared by the submitting thread and the pool helpers. Helpers hold the
  // state (and through it `fn` and whatever it owns) alive even if they
  // only get scheduled after the call has returned and claim no item.
  struct State {
    std::function<void(int)> fn;
    int items;
    std::atomic<int> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    int done = 0;
  };
  auto state = std::make_shared<State>();
  state->fn = std::move(fn);
  state->items = items;

  auto drain = [state] {
    for (;;) {
      const int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->items) return;
      state->fn(i);
      std::lock_guard<std::mutex> lock(state->mu);
      if (++state->done == state->items) state->done_cv.notify_all();
    }
  };
  const int helpers = std::min(pool_->size(), items) - 1;
  for (int i = 0; i < helpers; ++i) pool_->Post(drain);
  drain();  // the caller works too, so a busy pool cannot stall the call
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->done == state->items; });
}

Result<QueryResult> QueryService::QueryOnce(const std::string& query,
                                            bool sharded) {
  Timer timer;
  Result<QueryResult> r = [&]() -> Result<QueryResult> {
    LPATH_ASSIGN_OR_RETURN(std::shared_ptr<const sql::PreparedPlan> plan,
                           GetPlan(query));
    if (sharded) return RunSharded(std::move(plan));
    sql::ExecStats stats;
    Result<QueryResult> serial = executor_.ExecutePrepared(*plan, &stats);
    RecordExec(stats);
    return serial;
  }();

  const double seconds = timer.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(stats_mu_);
  queries_ += 1;
  if (!r.ok()) errors_ += 1;
  total_seconds_ += seconds;
  const double ms = seconds * 1e3;
  if (latency_ring_ms_.size() < kLatencySamples) {
    latency_ring_ms_.push_back(ms);
  } else {
    latency_ring_ms_[next_sample_ % kLatencySamples] = ms;
  }
  next_sample_ += 1;
  return r;
}

Result<QueryResult> QueryService::Query(const std::string& query) {
  return QueryOnce(query, /*sharded=*/true);
}

std::vector<Result<QueryResult>> QueryService::QueryBatch(
    const std::vector<std::string>& queries) {
  std::vector<Result<QueryResult>> results(queries.size(),
                                           Result<QueryResult>(QueryResult{}));
  if (queries.empty()) return results;

  // Workers claim whole queries; each runs serially so that concurrent
  // batch items do not contend over intra-query shards.
  RunOnPool(static_cast<int>(queries.size()), [this, &queries, &results](int i) {
    results[i] = QueryOnce(queries[i], /*sharded=*/false);
  });
  return results;
}

void QueryService::RecordExec(const sql::ExecStats& exec) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  exec_.Add(exec);
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  s.cache = cache_.stats();
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.queries = queries_;
    s.errors = errors_;
    s.exec = exec_;
    s.total_seconds = total_seconds_;
    sorted = latency_ring_ms_;
  }
  std::sort(sorted.begin(), sorted.end());
  s.latency.samples = sorted.size();
  s.latency.p50_ms = Percentile(sorted, 0.50);
  s.latency.p90_ms = Percentile(sorted, 0.90);
  s.latency.p99_ms = Percentile(sorted, 0.99);
  s.latency.max_ms = sorted.empty() ? 0.0 : sorted.back();
  return s;
}

void QueryService::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  queries_ = 0;
  errors_ = 0;
  exec_ = sql::ExecStats{};
  total_seconds_ = 0.0;
  latency_ring_ms_.clear();
  next_sample_ = 0;
}

}  // namespace service
}  // namespace lpath
