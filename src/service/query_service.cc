#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "lpath/parser.h"
#include "plan/compile.h"
#include "plan/sql_gen.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace lpath {
namespace service {

namespace {

/// Recent-query latencies kept for the percentile summary.
constexpr size_t kLatencySamples = 8192;

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

uint64_t HitKey(const Hit& h) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(h.tid)) << 32) |
         static_cast<uint32_t>(h.id);
}

/// Rebases a source's hits into the chain tid space. Must happen before any
/// cross-source merge or DISTINCT stage: delta tree 0 and base tree 0 are
/// different trees, and an unshifted HitKey would alias them.
void ShiftTids(std::vector<Hit>& hits, int32_t offset) {
  if (offset == 0) return;
  for (Hit& h : hits) h.tid += offset;
}

/// Walks a prepared plan's subplan nest, registering every memoizable
/// EXISTS subtree with the session registry and collecting the
/// registry-verified global memo keys (nodes the registry refused —
/// fingerprint collisions — are simply left out and keep per-plan
/// memoization only).
void RegisterSubplans(SubplanMemoRegistry& registry,
                      const sql::PreparedPlan& pp,
                      std::unordered_map<const BoolExpr*, uint64_t>* keys) {
  for (const auto& [node, fp] : pp.sub_fingerprint) {
    if (registry.Register(fp, *node->sub)) (*keys)[node] = fp;
  }
  for (const auto& [node, sub] : pp.subs) {
    (void)node;
    RegisterSubplans(registry, *sub, keys);
  }
}

}  // namespace

/// See the declaration: one executable (source, plan, memo) triple.
struct QueryService::SourceRun {
  const sql::PlanExecutor* executor;
  const sql::PreparedPlan* plan;
  sql::ExistsMemo* memo;
  const NodeRelation* relation;
  int32_t tid_offset;  ///< added to every hit tid (0 for the base)
  /// The session's snapshot-scoped subplan memo for this source, plus the
  /// plan's verified keys into it.
  sql::GlobalExistsMemo global;
};

bool PendingQuery::ready() const {
  return future_.valid() &&
         future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
}

Result<QueryResult> PendingQuery::Get() const {
  if (!future_.valid()) {
    return Status::InvalidArgument("PendingQuery: empty handle");
  }
  return future_.get();
}

QueryService::QueryService(SnapshotPtr snapshot, QueryServiceOptions options)
    : options_(options),
      session_(std::make_shared<const Session>(std::move(snapshot), options_)),
      pool_(std::make_unique<ThreadPool>(options.threads)) {
  latency_ring_ms_.reserve(kLatencySamples);
}

QueryService::~QueryService() = default;

QueryService::SessionPtr QueryService::CurrentSession() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return session_;
}

std::shared_ptr<const void> QueryService::UpdateSnapshot(SnapshotPtr snapshot) {
  // Building the session (executor + empty cache) happens before the
  // exchange; the exchange is the single publication point. Readers that
  // loaded the old session keep it alive through their own shared_ptr; the
  // old session goes back to the caller so its last reference (possibly
  // the teardown of a whole snapshot) is never dropped under session_mu_
  // — nor under whatever lock the caller holds.
  auto next = std::make_shared<const Session>(std::move(snapshot), options_);
  SessionPtr old;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    old = std::exchange(session_, std::move(next));
  }
  return old;
}

SnapshotPtr QueryService::snapshot() const { return CurrentSession()->snapshot; }

Result<ExecPlan> QueryService::CompileQuery(const Session& session,
                                            const std::string& normalized) {
  const NodeRelation& relation = session.snapshot->relation();
  LPATH_ASSIGN_OR_RETURN(LocationPath path, ParseLPath(normalized));
  CompileOptions copts;
  copts.scheme = relation.scheme();
  copts.unnest_predicates = options_.unnest_predicates;
  LPATH_ASSIGN_OR_RETURN(ExecPlan plan, CompileLPath(path, copts));
  if (options_.via_sql_text) {
    const std::string sql_text = GenerateSql(plan);
    LPATH_ASSIGN_OR_RETURN(plan, sql::ParseSql(sql_text));
  }
  return plan;
}

Result<CachedPlan> QueryService::PrepareCompiled(const Session& session,
                                                 const ExecPlan& compiled) {
  const NodeRelation& relation = session.snapshot->relation();
  LPATH_ASSIGN_OR_RETURN(std::unique_ptr<sql::PreparedPlan> prepared,
                         sql::Prepare(compiled, relation, options_.exec));
  CachedPlan entry;
  entry.plan = std::move(prepared);
  entry.memo =
      std::make_shared<sql::ExistsMemo>(options_.exists_memo_entries);
  RegisterSubplans(session.subplans, *entry.plan, &entry.sub_keys);
  if (const NodeRelation* delta = session.snapshot->delta_relation()) {
    // The chain's second source gets the same compiled plan prepared
    // against its own relation: literals resolve in the delta dictionary
    // (which may know strings the base has never seen, and vice versa),
    // the optimizer sees delta statistics, and per-source preparation,
    // memos and subplan registries keep answers from leaking across
    // source generations — the "memo keyed per source generation"
    // contract.
    LPATH_ASSIGN_OR_RETURN(std::unique_ptr<sql::PreparedPlan> dprep,
                           sql::Prepare(compiled, *delta, options_.exec));
    entry.delta_plan = std::move(dprep);
    entry.delta_memo =
        std::make_shared<sql::ExistsMemo>(options_.exists_memo_entries);
    RegisterSubplans(*session.delta_subplans, *entry.delta_plan,
                     &entry.delta_sub_keys);
  }
  return entry;
}

Result<CachedPlanPtr> QueryService::GetPlanIn(const Session& session,
                                              const std::string& query) {
  const std::string key = NormalizeQueryText(query);
  if (CachedPlanPtr cached = session.cache.Get(key)) {
    if (cached->negative()) return cached->error;
    return cached;
  }
  // Compile outside the cache lock, then probe the structural level: a
  // respelling of a cached structure binds to the existing entry and
  // shares its prepared plans and memos without a sql::Prepare.
  Result<ExecPlan> compiled = CompileQuery(session, key);
  if (!compiled.ok()) {
    // Negative entry: the same bad text will be answered from the cache.
    session.cache.PutNegative(key, compiled.status());
    return compiled.status();
  }
  const uint64_t fingerprint = sql::PlanFingerprint(*compiled);
  if (CachedPlanPtr shared =
          session.cache.GetByFingerprint(key, fingerprint, *compiled)) {
    return shared;
  }
  // A racing miss duplicates the prepare; Put publishes the first bundle
  // and the racer adopts it (bundles of one structure are
  // interchangeable).
  Result<CachedPlan> prepared = PrepareCompiled(session, *compiled);
  if (!prepared.ok()) {
    session.cache.PutNegative(key, prepared.status());
    return prepared.status();
  }
  prepared->fingerprint = fingerprint;
  auto entry = std::make_shared<const CachedPlan>(std::move(*prepared));
  return session.cache.Put(key, fingerprint, std::move(*compiled),
                           std::move(entry));
}

Result<std::shared_ptr<const sql::PreparedPlan>> QueryService::GetPlan(
    const std::string& query) {
  SessionPtr session = CurrentSession();
  LPATH_ASSIGN_OR_RETURN(CachedPlanPtr planned, GetPlanIn(*session, query));
  return planned->plan;
}

int QueryService::CollectSources(const Session& session,
                                 const CachedPlan& planned, SourceRun* out) {
  int n = 0;
  out[n++] = SourceRun{
      &session.executor,
      planned.plan.get(),
      planned.memo.get(),
      &session.snapshot->relation(),
      /*tid_offset=*/0,
      sql::GlobalExistsMemo{session.subplans.memo(), &planned.sub_keys}};
  if (session.delta_executor.has_value() && planned.delta_plan != nullptr) {
    out[n++] = SourceRun{&*session.delta_executor,
                         planned.delta_plan.get(),
                         planned.delta_memo.get(),
                         session.snapshot->delta_relation(),
                         session.snapshot->base_tree_count(),
                         sql::GlobalExistsMemo{session.delta_subplans->memo(),
                                               &planned.delta_sub_keys}};
  }
  return n;
}

Result<QueryResult> QueryService::RunSerial(const Session& session,
                                            const CachedPlan& planned,
                                            const RowSink* sink,
                                            const std::atomic<bool>* cancel) {
  SourceRun sources[2];
  const int nsources = CollectSources(session, planned, sources);
  QueryResult merged;
  sql::ExecStats total;
  Status failure = Status::OK();
  for (int s = 0; s < nsources; ++s) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      failure = Status::Cancelled("query cancelled");
      break;
    }
    const SourceRun& src = sources[s];
    sql::ExecStats stats;
    Result<QueryResult> r =
        src.executor->ExecutePrepared(*src.plan, &stats, src.memo, src.global);
    if (src.tid_offset != 0) stats.delta_rows = stats.candidates;
    total.Add(stats);
    if (!r.ok()) {
      failure = r.status();
      break;
    }
    ShiftTids(r->hits, src.tid_offset);
    merged.hits.insert(merged.hits.end(), r->hits.begin(), r->hits.end());
  }
  total.morsels += 1;
  total.sources = static_cast<uint64_t>(nsources);
  RecordExec(total, /*sharded=*/false);
  if (!failure.ok()) return failure;
  // Sources cover disjoint tid ranges, so the concatenation is already
  // DISTINCT; Normalize restores the global sort order across the seam.
  merged.Normalize();
  if (sink != nullptr && !merged.hits.empty()) {
    (*sink)(std::span<const Hit>(merged.hits));
  }
  return merged;
}

Result<QueryResult> QueryService::RunSharded(const Session& session,
                                             CachedPlanPtr planned,
                                             const RowSink* sink,
                                             const std::atomic<bool>* cancel) {
  SourceRun sources[2];
  const int nsources = CollectSources(session, *planned, sources);
  int workers = options_.shards_per_query > 0
                    ? std::min(options_.shards_per_query, pool_->size())
                    : pool_->size();
  workers = std::max(1, workers);
  // Adaptive fan-out: when the optimizer expects the root variable to
  // enumerate only a handful of rows, the per-morsel setup (task posts,
  // binary-searched run cuts, result merge) costs more than it parallelizes.
  // On a chain the estimate is the sum over live (non-always-empty) sources.
  uint64_t root_estimate = 0;
  bool any_live = false;
  for (int s = 0; s < nsources; ++s) {
    if (sources[s].plan->always_empty) continue;
    any_live = true;
    root_estimate += sources[s].plan->root_cardinality;
  }
  bool serial = !any_live || workers <= 1;
  if (!serial && options_.adaptive_serial_rows > 0 &&
      root_estimate < options_.adaptive_serial_rows) {
    serial = true;
  }
  // Morsel planning: ~morsels_per_thread row-balanced tid slices per
  // worker, pulled from a shared claim cursor below. Over-decomposition is
  // the skew defence — a giant tree occupies one worker for one morsel
  // while the others drain the rest — and the minimum morsel size keeps
  // the per-morsel overhead amortized. On a chain, the budget is split
  // across sources proportionally to their row mass (every live source
  // gets at least one morsel), so a small delta costs one extra morsel
  // instead of doubling the fan-out.
  struct Morsel {
    int source;
    TidRange range;
  };
  std::vector<Morsel> morsels;
  if (!serial) {
    const uint64_t min_rows = std::max<uint64_t>(
        1, options_.adaptive_serial_rows /
               static_cast<uint64_t>(std::max(1, options_.morsels_per_thread)));
    const uint64_t budget = static_cast<uint64_t>(
        workers * std::max(1, options_.morsels_per_thread));
    uint64_t total_rows = 0;
    for (int s = 0; s < nsources; ++s) {
      if (!sources[s].plan->always_empty) {
        total_rows += sources[s].relation->row_count();
      }
    }
    for (int s = 0; s < nsources; ++s) {
      if (sources[s].plan->always_empty) continue;
      const uint64_t rows = sources[s].relation->row_count();
      const int share =
          total_rows == 0 ? 1
                          : std::max<int>(1, static_cast<int>(
                                                 budget * rows / total_rows));
      for (const TidRange& r :
           sources[s].relation->CarveTidRanges(share, min_rows)) {
        morsels.push_back(Morsel{s, r});
      }
    }
    if (morsels.size() <= 1) serial = true;
  }
  if (serial) {
    return RunSerial(session, *planned, sink, cancel);
  }

  // Merge stage for streaming: per-morsel results are deduplicated against
  // everything already delivered, so sink batches are disjoint and their
  // union equals the DISTINCT result. The mutex also serializes sink calls.
  struct StreamMerge {
    std::mutex mu;
    std::unordered_set<uint64_t> seen;
  };
  auto merge = sink != nullptr ? std::make_shared<StreamMerge>() : nullptr;

  const int count = static_cast<int>(morsels.size());
  std::vector<Result<QueryResult>> results(count,
                                           Result<QueryResult>(QueryResult{}));
  std::vector<sql::ExecStats> stats(count);
  std::atomic<uint64_t> steals{0};
  // The item lambda owns the cache entry (the shared_ptr is copied into
  // RunOnPool's shared state), keeping plans, memos and subplan keys alive
  // for helpers scheduled after the query completes. The locals
  // (`sources`, `morsels`, `results`, ...) are captured by reference: a
  // late helper never claims an item, so it never dereferences them after
  // this frame returns.
  RunOnPool(count, workers,
            [planned, &sources, &morsels, &results, &stats, &steals, sink,
             merge, cancel](int i, int worker) {
    // A cancelled query skips its remaining morsels (their result slots
    // keep the empty default); the terminal status is derived below.
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
    const Morsel& m = morsels[i];
    const SourceRun& src = sources[m.source];
    results[i] = src.executor->ExecuteShard(*src.plan, m.range.tid_lo,
                                            m.range.tid_hi, &stats[i],
                                            src.memo, src.global);
    if (src.tid_offset != 0) {
      stats[i].delta_rows = stats[i].candidates;
      // Rebase into chain tid space before the DISTINCT stages (both the
      // streaming merge below and the final Normalize) see the hits.
      if (results[i].ok()) ShiftTids(results[i]->hits, src.tid_offset);
    }
    if (worker > 0) steals.fetch_add(1, std::memory_order_relaxed);
    if (sink != nullptr && results[i].ok()) {
      std::vector<Hit> fresh;
      std::lock_guard<std::mutex> lock(merge->mu);
      for (const Hit& h : results[i]->hits) {
        if (merge->seen.insert(HitKey(h)).second) fresh.push_back(h);
      }
      if (!fresh.empty()) {
        std::sort(fresh.begin(), fresh.end());
        (*sink)(std::span<const Hit>(fresh));
      }
    }
  });

  sql::ExecStats total;
  for (int i = 0; i < count; ++i) total.Add(stats[i]);
  total.morsels += static_cast<uint64_t>(count);
  total.steal_count += steals.load(std::memory_order_relaxed);
  total.sources = static_cast<uint64_t>(nsources);
  RecordExec(total, /*sharded=*/true);
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  QueryResult merged;
  for (int i = 0; i < count; ++i) {
    if (!results[i].ok()) return results[i].status();
    merged.hits.insert(merged.hits.end(), results[i]->hits.begin(),
                       results[i]->hits.end());
  }
  // Distinct bindings in different morsels can project to the same output
  // node; Normalize dedups the concatenation.
  merged.Normalize();
  return merged;
}

void QueryService::RunOnPool(int items, int max_workers,
                             std::function<void(int, int)> fn) {
  // Shared by the submitting thread and the pool helpers. Helpers hold the
  // state (and through it `fn` and whatever it owns) alive even if they
  // only get scheduled after the call has returned and claim no item.
  struct State {
    std::function<void(int, int)> fn;
    int items;
    std::atomic<int> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    int done = 0;
  };
  auto state = std::make_shared<State>();
  state->fn = std::move(fn);
  state->items = items;

  // `worker` identifies the participant (0 = the submitting thread), so
  // the caller can tell stolen claims from its own.
  auto drain = [state](int worker) {
    for (;;) {
      const int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->items) return;
      state->fn(i, worker);
      std::lock_guard<std::mutex> lock(state->mu);
      if (++state->done == state->items) state->done_cv.notify_all();
    }
  };
  const int helpers =
      std::min({pool_->size(), items, std::max(1, max_workers)}) - 1;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(std::max(0, helpers)));
  for (int w = 1; w <= helpers; ++w) {
    tasks.push_back([drain, w] { drain(w); });
  }
  pool_->Post(std::move(tasks));  // one lock round-trip for the whole fan-out
  drain(0);  // the caller works too, so a busy pool cannot stall the call
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->done == state->items; });
}

Result<QueryResult> QueryService::QueryOnce(const std::string& query,
                                            bool sharded, const RowSink* sink,
                                            const std::atomic<bool>* cancel) {
  Timer timer;
  // One consistent session per query: plan lookup and execution see the
  // same snapshot even if a swap lands mid-query.
  SessionPtr session = CurrentSession();
  Result<QueryResult> r = [&]() -> Result<QueryResult> {
    LPATH_ASSIGN_OR_RETURN(CachedPlanPtr planned, GetPlanIn(*session, query));
    if (sharded) return RunSharded(*session, std::move(planned), sink, cancel);
    return RunSerial(*session, *planned, sink, cancel);
  }();
  RecordQueries(timer.ElapsedSeconds(), !r.ok(), /*count=*/1,
                /*coalesced=*/0);
  return r;
}

void QueryService::RecordQueries(double seconds, bool error, int count,
                                 int coalesced) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  queries_ += static_cast<uint64_t>(count);
  if (error) errors_ += static_cast<uint64_t>(count);
  batch_coalesced_ += static_cast<uint64_t>(coalesced);
  total_seconds_ += seconds * count;
  const double ms = seconds * 1e3;
  for (int i = 0; i < count; ++i) {
    if (latency_ring_ms_.size() < kLatencySamples) {
      latency_ring_ms_.push_back(ms);
    } else {
      latency_ring_ms_[next_sample_ % kLatencySamples] = ms;
    }
    next_sample_ += 1;
  }
}

Result<QueryResult> QueryService::Query(const std::string& query) {
  return QueryOnce(query, /*sharded=*/true, /*sink=*/nullptr,
                   /*cancel=*/nullptr);
}

Status QueryService::QueryStream(const std::string& query,
                                 const RowSink& sink) {
  return QueryOnce(query, /*sharded=*/true, &sink, /*cancel=*/nullptr)
      .status();
}

PendingQuery QueryService::Submit(const std::string& query) {
  return Submit(query, RowSink{});
}

PendingQuery QueryService::Submit(const std::string& query, RowSink sink) {
  return Submit(query, std::move(sink), SubmitOptions{});
}

PendingQuery QueryService::Submit(const std::string& query, RowSink sink,
                                  SubmitOptions opts) {
  // The task owns query + sink + hooks; the packaged_task's shared state
  // feeds the caller's handle. Queued tasks are drained by the pool
  // destructor, so a handle outliving the service still resolves (and its
  // `done` hook still fires, exactly once).
  auto task = std::make_shared<std::packaged_task<Result<QueryResult>()>>(
      [this, query, sink = std::move(sink), opts = std::move(opts)]() {
        Result<QueryResult> r =
            QueryOnce(query, /*sharded=*/true, sink ? &sink : nullptr,
                      opts.cancel ? opts.cancel.get() : nullptr);
        if (opts.done) opts.done(r.status());
        return r;
      });
  PendingQuery handle(task->get_future().share());
  pool_->Post([task] { (*task)(); });
  return handle;
}

std::vector<Result<QueryResult>> QueryService::QueryBatch(
    const std::vector<std::string>& queries) {
  std::vector<Result<QueryResult>> results(queries.size(),
                                           Result<QueryResult>(QueryResult{}));
  if (queries.empty()) return results;

  // One consistent session for the whole batch, so every member resolves
  // and executes against the same snapshot and the same cache.
  SessionPtr session = CurrentSession();

  // Coalescing, stage 1: group members by normalized text (exact
  // respellings collapse for free) and resolve each distinct text once —
  // in parallel, since cache misses carry the parse/compile/prepare cost.
  struct TextGroup {
    std::string key;
    std::vector<int> members;
    Result<CachedPlanPtr> planned = Result<CachedPlanPtr>(nullptr);
  };
  std::vector<TextGroup> texts;
  {
    std::unordered_map<std::string, size_t> index;
    for (size_t i = 0; i < queries.size(); ++i) {
      std::string key = NormalizeQueryText(queries[i]);
      auto [it, inserted] = index.emplace(std::move(key), texts.size());
      if (inserted) {
        texts.push_back(TextGroup{});
        texts.back().key = it->first;
      }
      texts[it->second].members.push_back(static_cast<int>(i));
    }
  }
  RunOnPool(static_cast<int>(texts.size()), pool_->size(),
            [this, &session, &texts](int i, int /*worker*/) {
    texts[i].planned = GetPlanIn(*session, texts[i].key);
  });

  // Stage 2: distinct texts that resolved to the same cache entry —
  // structurally identical spellings — merge into one execution group.
  // Entry identity is pointer identity: the cache binds equal structures
  // to one shared CachedPlan.
  struct ExecGroup {
    CachedPlanPtr planned;
    std::vector<int> members;
  };
  std::vector<ExecGroup> groups;
  {
    std::unordered_map<const CachedPlan*, size_t> index;
    for (TextGroup& text : texts) {
      if (!text.planned.ok()) {
        // Resolution errors fan out to every member of the text group.
        for (int member : text.members) {
          results[member] = text.planned.status();
        }
        RecordQueries(/*seconds=*/0.0, /*error=*/true,
                      static_cast<int>(text.members.size()),
                      /*coalesced=*/0);
        continue;
      }
      const CachedPlanPtr& planned = *text.planned;
      auto [it, inserted] = index.emplace(planned.get(), groups.size());
      if (inserted) {
        groups.push_back(ExecGroup{planned, {}});
      }
      ExecGroup& group = groups[it->second];
      group.members.insert(group.members.end(), text.members.begin(),
                           text.members.end());
    }
  }

  // Stage 3: workers claim whole groups; each group executes its plan
  // once, serially (so concurrent groups do not contend over intra-query
  // morsels), and the result fans out to every member.
  RunOnPool(static_cast<int>(groups.size()), pool_->size(),
            [this, &session, &groups, &results](int g, int /*worker*/) {
    ExecGroup& group = groups[g];
    Timer timer;
    Result<QueryResult> r = RunSerial(*session, *group.planned,
                                      /*sink=*/nullptr, /*cancel=*/nullptr);
    for (int member : group.members) results[member] = r;
    RecordQueries(timer.ElapsedSeconds(), !r.ok(),
                  static_cast<int>(group.members.size()),
                  static_cast<int>(group.members.size()) - 1);
  });
  return results;
}

void QueryService::RecordExec(const sql::ExecStats& exec, bool sharded) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  exec_.Add(exec);
  if (sharded) {
    sharded_queries_ += 1;
  } else {
    serial_queries_ += 1;
  }
}

void QueryService::NoteIngest() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ingests_ += 1;
}

void QueryService::NoteCompaction() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  compactions_ += 1;
}

void QueryService::NoteWalAppend(uint64_t payload_bytes) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  wal_appends_ += 1;
  wal_bytes_ += payload_bytes;
}

void QueryService::NoteReplay(uint64_t batches) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  replayed_batches_ += batches;
}

void QueryService::NoteCheckpoint() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  checkpoints_ += 1;
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  {
    SessionPtr session = CurrentSession();
    s.cache = session->cache.stats();
    s.subplans = session->subplans.stats();
    if (session->delta_subplans.has_value()) {
      s.subplans.Add(session->delta_subplans->stats());
    }
  }
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.queries = queries_;
    s.errors = errors_;
    s.sharded_queries = sharded_queries_;
    s.serial_queries = serial_queries_;
    s.ingests = ingests_;
    s.compactions = compactions_;
    s.wal_appends = wal_appends_;
    s.wal_bytes = wal_bytes_;
    s.replayed_batches = replayed_batches_;
    s.checkpoints = checkpoints_;
    s.batch_coalesced = batch_coalesced_;
    s.exec = exec_;
    s.total_seconds = total_seconds_;
    sorted = latency_ring_ms_;
  }
  std::sort(sorted.begin(), sorted.end());
  s.latency.samples = sorted.size();
  s.latency.p50_ms = Percentile(sorted, 0.50);
  s.latency.p90_ms = Percentile(sorted, 0.90);
  s.latency.p99_ms = Percentile(sorted, 0.99);
  s.latency.max_ms = sorted.empty() ? 0.0 : sorted.back();
  return s;
}

void QueryService::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  queries_ = 0;
  errors_ = 0;
  sharded_queries_ = 0;
  serial_queries_ = 0;
  ingests_ = 0;
  compactions_ = 0;
  wal_appends_ = 0;
  wal_bytes_ = 0;
  replayed_batches_ = 0;
  checkpoints_ = 0;
  batch_coalesced_ = 0;
  exec_ = sql::ExecStats{};
  total_seconds_ = 0.0;
  latency_ring_ms_.clear();
  next_sample_ = 0;
}

}  // namespace service
}  // namespace lpath
