#include "service/thread_pool.h"

#include <algorithm>

namespace lpath {
namespace service {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace service
}  // namespace lpath
