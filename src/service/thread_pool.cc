#include "service/thread_pool.h"

#include <algorithm>

namespace lpath {
namespace service {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Post(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::function<void()>& task : tasks) {
      queue_.push_back(std::move(task));
    }
  }
  // Counted notifies: more wake-ups than tasks (or sleepers) are wasted,
  // and notify_all would stampede a large pool for a two-task batch.
  const size_t wakes = std::min(tasks.size(), workers_.size());
  for (size_t i = 0; i < wakes; ++i) cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace service
}  // namespace lpath
