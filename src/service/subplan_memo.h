// SubplanMemoRegistry: the snapshot-scoped, cross-plan EXISTS memo.
//
// PR 4's ExistsMemo made subquery answers shared across the morsels and
// executions of *one* cached plan. This registry widens the scope to one
// relation source of one session: EXISTS subtrees that recur across
// *different* top-level plans — the common shape when many queries filter
// on the same predicate — are keyed by their structural fingerprint
// (sql/fingerprint.h) so they all read and fill one memo table.
//
// Sharing is collision-checked: the first plan to register a fingerprint
// donates a clone of its resolved subtree as the *representative*; later
// registrations must PlanEquals the representative or they are refused
// (the node keeps its per-plan memo and simply skips the global level —
// degraded sharing, never wrong answers).
//
// Invalidation story: memo entries are pure functions of (resolved
// subtree, correlation row) over one immutable NodeRelation. A registry
// is owned by a QueryService session and scoped to one relation source
// (base or delta), so a snapshot hot swap — which rebuilds the session —
// drops the registry with the relation generation it was filled against;
// base and delta never share a registry even within a session. Stale
// entries are unreachable by construction, exactly like the per-plan
// memos.

#ifndef LPATHDB_SERVICE_SUBPLAN_MEMO_H_
#define LPATHDB_SERVICE_SUBPLAN_MEMO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "plan/exec_plan.h"
#include "sql/exists_memo.h"

namespace lpath {
namespace service {

class SubplanMemoRegistry {
 public:
  struct Stats {
    uint64_t subtrees = 0;    ///< distinct representatives registered
    uint64_t cross_plan = 0;  ///< registrations that matched an existing rep
    uint64_t collisions = 0;  ///< fingerprint matches PlanEquals rejected
    size_t memo_entries = 0;  ///< answers currently memoized

    void Add(const Stats& o) {
      subtrees += o.subtrees;
      cross_plan += o.cross_plan;
      collisions += o.collisions;
      memo_entries += o.memo_entries;
    }
  };

  /// A registry whose memo holds at most ~`memo_entries` answers.
  explicit SubplanMemoRegistry(size_t memo_entries)
      : memo_(memo_entries) {}

  SubplanMemoRegistry(const SubplanMemoRegistry&) = delete;
  SubplanMemoRegistry& operator=(const SubplanMemoRegistry&) = delete;

  /// Registers `subtree` (the *resolved* EXISTS subplan) under its
  /// fingerprint `fp`. Returns true when the caller's node may share the
  /// global memo under key `fp` — first registration, or structural match
  /// with the representative — and false on a verified hash collision,
  /// in which case the node must not use the global memo.
  bool Register(uint64_t fp, const ExecPlan& subtree);

  /// The fingerprint-keyed memo shared by every verified registrant.
  sql::ExistsMemo* memo() { return &memo_; }

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<const ExecPlan>> reps_;
  uint64_t cross_plan_ = 0;
  uint64_t collisions_ = 0;
  sql::ExistsMemo memo_;
};

}  // namespace service
}  // namespace lpath

#endif  // LPATHDB_SERVICE_SUBPLAN_MEMO_H_
