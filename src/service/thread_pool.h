// A fixed-size worker pool over an unbounded FIFO task queue.
//
// Deliberately minimal: the QueryService never blocks inside a pool task
// waiting for another pool task. Its shard scheme has the submitting
// thread drain the shard queue itself, with pool workers merely helping,
// so a saturated pool degrades to serial execution instead of deadlocking.

#ifndef LPATHDB_SERVICE_THREAD_POOL_H_
#define LPATHDB_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lpath {
namespace service {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(int threads);

  /// Completes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks.
  void Post(std::function<void()> task);

  /// Enqueues a batch of tasks under one queue-lock acquisition — a
  /// k-morsel fan-out is one lock round-trip, not k. Wakes up to
  /// min(tasks, workers) sleepers; an empty batch is a no-op.
  void Post(std::vector<std::function<void()>> tasks);

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace service
}  // namespace lpath

#endif  // LPATHDB_SERVICE_THREAD_POOL_H_
