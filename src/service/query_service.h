// QueryService: the multi-user serving layer over one NodeRelation.
//
// The paper's pitch is that LPath compiles to something an RDBMS evaluates
// correctly and fast; this module supplies the "many clients" shape around
// that claim. A service owns
//   - an LRU prepared-plan cache keyed by normalized query text, so each
//     distinct query is parsed, compiled and optimized once and executed
//     many times;
//   - a fixed thread pool running shard-parallel execution: one prepared
//     plan fans out over a partition of the tree-id space (see
//     sql::PlanExecutor::ExecuteShard) and the per-shard DISTINCT (tid,id)
//     sets are merged;
//   - aggregated executor work counters and a latency reservoir with
//     percentile summaries.
//
// Query() parallelizes one query across the pool; QueryBatch() spreads a
// batch of queries over the pool workers (each evaluated serially) — the
// throughput path a front end with its own request queue would use. Both
// are safe to call concurrently from many threads.

#ifndef LPATHDB_SERVICE_QUERY_SERVICE_H_
#define LPATHDB_SERVICE_QUERY_SERVICE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lpath/engine.h"
#include "service/plan_cache.h"
#include "service/thread_pool.h"
#include "sql/executor.h"
#include "storage/relation.h"

namespace lpath {
namespace service {

struct QueryServiceOptions {
  /// Worker threads; also the default shard fan-out of one query.
  int threads = 4;
  /// Shards a single Query() splits into; 0 means one per thread.
  int shards_per_query = 0;
  /// Prepared plans kept by the LRU cache.
  size_t plan_cache_capacity = 256;
  sql::ExecOptions exec;
  /// Unnest positive predicates into the main join (see plan/compile.h).
  bool unnest_predicates = true;
  /// Compile through the SQL text round trip (the paper's full loop) when
  /// preparing a plan. The plans are identical either way (tested); the
  /// round trip costs a parse per cache miss.
  bool via_sql_text = false;
};

/// Latency percentiles over the most recent queries (milliseconds).
struct LatencySummary {
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  size_t samples = 0;
};

struct ServiceStats {
  uint64_t queries = 0;  ///< completed Query()/QueryBatch() evaluations
  uint64_t errors = 0;
  PlanCache::Stats cache;
  sql::ExecStats exec;  ///< summed over all queries and shards
  LatencySummary latency;
  double total_seconds = 0.0;  ///< summed per-query wall time
};

class QueryService {
 public:
  /// The relation must outlive the service.
  explicit QueryService(const NodeRelation& relation,
                        QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Evaluates one LPath query, fanning its execution out across the pool.
  Result<QueryResult> Query(const std::string& query);

  /// Evaluates a batch of LPath queries, spreading them over the pool
  /// workers; results are positionally aligned with `queries`.
  std::vector<Result<QueryResult>> QueryBatch(
      const std::vector<std::string>& queries);

  /// Parses/compiles/optimizes `query` into the plan cache (or returns the
  /// cached plan). Exposed for warmup and for plan introspection.
  Result<std::shared_ptr<const sql::PreparedPlan>> GetPlan(
      const std::string& query);

  ServiceStats Stats() const;
  void ResetStats();

  int threads() const { return pool_->size(); }
  const NodeRelation& relation() const { return relation_; }
  const QueryServiceOptions& options() const { return options_; }

 private:
  Result<QueryResult> RunSharded(
      std::shared_ptr<const sql::PreparedPlan> plan);
  Result<QueryResult> QueryOnce(const std::string& query, bool sharded);
  /// Runs fn(0..items-1) across the pool: helpers are posted for the other
  /// workers while the calling thread drains the same claim counter, and
  /// the call returns once every item has finished. A saturated pool
  /// therefore degrades to serial execution instead of deadlocking.
  void RunOnPool(int items, std::function<void(int)> fn);
  void RecordExec(const sql::ExecStats& exec);

  const NodeRelation& relation_;
  const QueryServiceOptions options_;
  sql::PlanExecutor executor_;
  PlanCache cache_;

  mutable std::mutex stats_mu_;
  uint64_t queries_ = 0;
  uint64_t errors_ = 0;
  sql::ExecStats exec_;
  double total_seconds_ = 0.0;
  std::vector<double> latency_ring_ms_;  // bounded reservoir of recent queries
  size_t next_sample_ = 0;

  // Last member: its destructor joins the workers while everything the
  // in-flight tasks touch is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace service
}  // namespace lpath

#endif  // LPATHDB_SERVICE_QUERY_SERVICE_H_
