// QueryService: the multi-user serving layer over one corpus snapshot.
//
// The paper's pitch is that LPath compiles to something an RDBMS evaluates
// correctly and fast; this module supplies the "many clients" shape around
// that claim. A service owns
//   - a *session*: an immutable (snapshot, plan cache, executor) triple
//     published through one atomic pointer. UpdateSnapshot() builds a fresh
//     session and swaps the pointer — a hot swap that never blocks readers:
//     queries in flight keep the old session (and through it the old corpus
//     and relation) alive via shared ownership, and new queries pick up the
//     new one. Prepared plans resolve symbols against one snapshot's
//     dictionary, so each session gets its own cache;
//   - a two-level LRU prepared-plan cache: normalized query text in
//     front, structural plan fingerprints behind (see service/plan_cache.h)
//     — so each distinct query is parsed, compiled and optimized once,
//     distinct *spellings* of one structure share a single prepared plan
//     and memo bundle, and *negative* entries cache the error of a
//     malformed query instead of re-deriving it per submission. Each
//     session also carries per-source subplan memo registries
//     (service/subplan_memo.h) so EXISTS subtrees recurring across
//     different cached plans share their answers;
//   - a fixed thread pool running morsel-driven parallel execution: the
//     scheduler carves the tree-id space into ~morsels_per_thread×workers
//     row-balanced morsels (storage::NodeRelation::CarveTidRanges over the
//     per-tree row prefix sums, so a giant tree cannot serialize the whole
//     query the way an even-by-tid split does on skewed corpora), workers
//     pull morsels from a shared atomic claim cursor (work stealing for
//     free — a worker stuck on a long morsel simply stops claiming while
//     the others drain the rest), and sql::PlanExecutor::ExecuteShard is
//     the per-morsel kernel whose DISTINCT (tid,id) sets are merged. All
//     morsels consult one shared EXISTS memo (see CachedPlan::memo), so
//     subquery answers are derived once per cached plan, not once per
//     morsel per execution. Fan-out is adaptive: a query whose
//     root-variable cardinality estimate is tiny runs serially instead.
//     The decisions are visible as ExecStats::shards / ::morsels /
//     ::steal_count / ::shared_memo_hits;
//   - aggregated executor work counters and a latency reservoir with
//     percentile summaries.
//
// Entry points, all safe to call concurrently from many threads:
//   Query()       synchronous; a thin wrapper over the streaming path.
//   QueryStream() rows delivered to a callback per shard as shards finish,
//                 DISTINCT enforced by a merge stage.
//   Submit()      asynchronous; returns a future-like PendingQuery handle
//                 (optionally also streaming to a callback).
//   QueryBatch()  spreads a batch of queries over the pool workers — the
//                 throughput path a front end with its own queue would use.
//                 Members that resolve to the same cached plan (same
//                 structure, any spelling) coalesce into one execution
//                 whose result fans out to all of them.

#ifndef LPATHDB_SERVICE_QUERY_SERVICE_H_
#define LPATHDB_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lpath/engine.h"
#include "plan/exec_plan.h"
#include "service/plan_cache.h"
#include "service/subplan_memo.h"
#include "service/thread_pool.h"
#include "sql/executor.h"
#include "storage/snapshot.h"

namespace lpath {
namespace service {

struct QueryServiceOptions {
  /// Worker threads; also the default parallelism of one query.
  int threads = 4;
  /// Workers a single Query() fans out over; 0 means one per thread.
  int shards_per_query = 0;
  /// Morsels carved per worker. Over-decomposition is what makes the
  /// shared claim cursor balance skew: with ~4 morsels per worker, a
  /// worker that lands on a giant tree holds one morsel while the others
  /// pull the remaining 4w-1. 1 degenerates to static even-row shards.
  int morsels_per_thread = 4;
  /// Capacity of each cached plan's shared EXISTS memo, in entries. The
  /// worst-case memo footprint of a session is plan_cache_capacity ×
  /// exists_memo_entries × ~48 bytes (≈200 MB at the defaults), reached
  /// only with a full LRU of saturated EXISTS-heavy plans — entries are
  /// bounded by the correlation bindings actually probed, so small
  /// corpora stay far below the cap. A full memo stops inserting, never
  /// misanswers.
  size_t exists_memo_entries = 1 << 14;
  /// Prepared plans kept by each session's LRU cache.
  size_t plan_cache_capacity = 256;
  sql::ExecOptions exec;
  /// Unnest positive predicates into the main join (see plan/compile.h).
  bool unnest_predicates = true;
  /// Compile through the SQL text round trip (the paper's full loop) when
  /// preparing a plan. The plans are identical either way (tested); the
  /// round trip costs a parse per cache miss.
  bool via_sql_text = false;
  /// Adaptive sharding: a query whose root-variable cardinality estimate
  /// falls below this many rows runs serially — fanning a tiny query out
  /// costs more than it saves. Also sizes the smallest morsel the planner
  /// will carve (adaptive_serial_rows / morsels_per_thread rows). 0
  /// disables both heuristics (always fan out when the pool allows, carve
  /// down to single-tree morsels).
  size_t adaptive_serial_rows = 4096;
};

/// Latency percentiles over the most recent queries (milliseconds).
struct LatencySummary {
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  size_t samples = 0;
};

struct ServiceStats {
  uint64_t queries = 0;  ///< completed evaluations across all entry points
  uint64_t errors = 0;
  uint64_t sharded_queries = 0;  ///< executed with fan-out > 1
  uint64_t serial_queries = 0;   ///< executed serially (incl. adaptive picks)
  uint64_t ingests = 0;          ///< append-publications noted (NoteIngest)
  uint64_t compactions = 0;      ///< delta merges noted (NoteCompaction)
  uint64_t wal_appends = 0;      ///< durable-ingest WAL records committed
  uint64_t wal_bytes = 0;        ///< payload bytes of those records
  uint64_t replayed_batches = 0; ///< WAL batches recovered on attach/open
  uint64_t checkpoints = 0;      ///< WAL truncations after compaction
  /// Batch members answered by another member's execution: same-structure
  /// queries in one QueryBatch call coalesce to a single execution fanned
  /// out to all of them.
  uint64_t batch_coalesced = 0;
  PlanCache::Stats cache;        ///< current session's cache (reset by swap)
  /// Current session's snapshot-scoped subplan memo registries, base and
  /// delta summed (reset by swap, like the cache).
  SubplanMemoRegistry::Stats subplans;
  sql::ExecStats exec;           ///< summed over all queries and shards
  LatencySummary latency;
  double total_seconds = 0.0;  ///< summed per-query wall time
};

/// Batches of newly-distinct result rows, delivered as shards complete.
/// Each batch is internally sorted; batches are disjoint and their union is
/// the query's DISTINCT result. Invocations are serialized (never
/// concurrent), but may come from pool threads.
using RowSink = std::function<void(std::span<const Hit>)>;

/// Streaming-submission hooks for a front end with its own transport (see
/// src/net/): best-effort cancellation plus a completion callback.
struct SubmitOptions {
  /// Checked at source/morsel boundaries while the query executes: once it
  /// reads true, remaining work is skipped and the query resolves to
  /// Status::Cancelled. Rows already streamed stay streamed — cancellation
  /// truncates a stream, it does not roll it back. Null disables the check.
  std::shared_ptr<const std::atomic<bool>> cancel;
  /// Invoked exactly once, on the evaluating pool thread, after the final
  /// sink delivery (or the failure) — the wire protocol's STREAM_END
  /// trigger. The PendingQuery handle resolves after it returns.
  std::function<void(const Status&)> done;
};

/// Future-like handle to a query submitted with QueryService::Submit.
class PendingQuery {
 public:
  PendingQuery() = default;

  bool valid() const { return future_.valid(); }
  /// Non-blocking completion poll.
  bool ready() const;
  /// Blocks until the query completes; repeatable (shared state).
  Result<QueryResult> Get() const;

 private:
  friend class QueryService;
  explicit PendingQuery(std::shared_future<Result<QueryResult>> future)
      : future_(std::move(future)) {}

  std::shared_future<Result<QueryResult>> future_;
};

class QueryService {
 public:
  /// Serves queries against `snapshot` (must be non-null). The service
  /// shares ownership: callers may drop their reference immediately.
  explicit QueryService(SnapshotPtr snapshot, QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Atomically publishes a new snapshot (with a fresh plan cache).
  /// Queries in flight keep the old snapshot alive, never block on the
  /// publication and never observe a torn state; queries starting after
  /// the exchange see the new one. `snapshot` must be non-null.
  ///
  /// Returns an opaque keep-alive for the replaced session: if the caller
  /// holds a lock, it should drop the handle only after unlocking —
  /// releasing the last reference may tear down a whole corpus + relation.
  std::shared_ptr<const void> UpdateSnapshot(SnapshotPtr snapshot);

  /// The currently published snapshot.
  SnapshotPtr snapshot() const;

  /// Evaluates one LPath query, fanning its execution out across the pool
  /// (unless the adaptive heuristic picks serial).
  Result<QueryResult> Query(const std::string& query);

  /// Evaluates one query, streaming result rows to `sink` per shard as
  /// shards complete (see RowSink for the delivery contract). Rows may
  /// have been delivered even when the final status is an error (a late
  /// shard can fail after earlier ones streamed).
  Status QueryStream(const std::string& query, const RowSink& sink);

  /// Submits a query for asynchronous evaluation on the pool. The second
  /// form also streams rows to `sink` as shards complete; the handle
  /// resolves after the final batch was delivered.
  PendingQuery Submit(const std::string& query);
  PendingQuery Submit(const std::string& query, RowSink sink);
  /// The front-end form: `sink` streams batches, `opts.cancel` aborts the
  /// execution at the next morsel/source boundary, `opts.done` fires after
  /// the final delivery with the query's terminal status.
  PendingQuery Submit(const std::string& query, RowSink sink,
                      SubmitOptions opts);

  /// Evaluates a batch of LPath queries, spreading them over the pool
  /// workers; results are positionally aligned with `queries`.
  std::vector<Result<QueryResult>> QueryBatch(
      const std::vector<std::string>& queries);

  /// Parses/compiles/optimizes `query` into the current session's plan
  /// cache (or returns the cached plan). Exposed for warmup and for plan
  /// introspection.
  Result<std::shared_ptr<const sql::PreparedPlan>> GetPlan(
      const std::string& query);

  ServiceStats Stats() const;
  void ResetStats();

  /// Ingestion observability: the publisher (db::Database::Ingest /
  /// ::Compact, or any caller driving UpdateSnapshot with a chain) ticks
  /// these after the swap so :stats / monitoring see live-corpus traffic.
  void NoteIngest();
  void NoteCompaction();
  /// Durability observability, same publisher contract: one WAL commit of
  /// `payload_bytes`, `batches` records replayed on an attach, one
  /// post-compaction checkpoint.
  void NoteWalAppend(uint64_t payload_bytes);
  void NoteReplay(uint64_t batches);
  void NoteCheckpoint();

  int threads() const { return pool_->size(); }
  const QueryServiceOptions& options() const { return options_; }

 private:
  /// Everything one query needs, bundled so a hot swap replaces it as a
  /// unit: plans in `cache` resolve symbols against exactly `snapshot`'s
  /// dictionary, and `executor` shares ownership of the snapshot.
  struct Session {
    SnapshotPtr snapshot;
    sql::PlanExecutor executor;
    /// Snapshot-chain second source: a borrowing executor over the delta
    /// relation (the session owns the snapshot, which pins the borrow).
    /// Engaged exactly when snapshot->has_delta().
    std::optional<sql::PlanExecutor> delta_executor;
    mutable PlanCache cache;
    /// Cross-plan EXISTS memo registries, one per relation source, owned
    /// here so they die with the snapshot generation they were filled
    /// against. `delta_subplans` engaged exactly when snapshot->has_delta().
    mutable SubplanMemoRegistry subplans;
    mutable std::optional<SubplanMemoRegistry> delta_subplans;

    Session(SnapshotPtr snap, const QueryServiceOptions& options)
        : snapshot(std::move(snap)),
          executor(snapshot, options.exec),
          cache(options.plan_cache_capacity),
          subplans(options.exists_memo_entries) {
      if (snapshot->has_delta()) {
        delta_executor.emplace(*snapshot->delta_relation(), options.exec);
        delta_subplans.emplace(options.exists_memo_entries);
      }
    }
  };
  using SessionPtr = std::shared_ptr<const Session>;

  /// One executable (source, plan, memo) triple of a query: the base
  /// relation, plus the delta relation when the session's snapshot is a
  /// chain. Hits from a source are shifted by `tid_offset` into the chain
  /// tid space before any merge, so DISTINCT keys never collide across
  /// sources.
  struct SourceRun;

  /// Plan lookup returning the shared cache entry (plan + memos + subplan
  /// memo keys); the entry is always positive — errors surface as the
  /// Status. Resolution order: text front map, then structural fingerprint
  /// (respellings bind to the existing entry without a sql::Prepare), then
  /// a full prepare published via Put.
  Result<CachedPlanPtr> GetPlanIn(const Session& session,
                                  const std::string& query);
  /// Parse + compile (+ optional SQL text round trip) of normalized text.
  Result<ExecPlan> CompileQuery(const Session& session,
                                const std::string& normalized);
  /// sql::Prepare per source plus subplan-memo registration.
  Result<CachedPlan> PrepareCompiled(const Session& session,
                                     const ExecPlan& compiled);
  /// Fills `out` (room for 2) with the query's executable sources; returns
  /// the count (1, or 2 for a chain).
  static int CollectSources(const Session& session, const CachedPlan& planned,
                            SourceRun* out);
  /// Serial evaluation over every source, hits shifted and merged.
  /// `cancel` (nullable) is polled between sources.
  Result<QueryResult> RunSerial(const Session& session,
                                const CachedPlan& planned, const RowSink* sink,
                                const std::atomic<bool>* cancel);
  /// `cancel` (nullable) is polled per morsel: set mid-flight, the
  /// remaining morsels are skipped and the query resolves to Cancelled.
  Result<QueryResult> RunSharded(const Session& session, CachedPlanPtr planned,
                                 const RowSink* sink,
                                 const std::atomic<bool>* cancel);
  Result<QueryResult> QueryOnce(const std::string& query, bool sharded,
                                const RowSink* sink,
                                const std::atomic<bool>* cancel);
  /// Records `count` completed queries sharing one wall-clock measurement
  /// (QueryBatch's coalesced groups record every member at the group's
  /// latency; count-1 of them tick the coalesced counter).
  void RecordQueries(double seconds, bool error, int count, int coalesced);
  /// Runs fn(0..items-1, worker) across the pool: helper tasks are bulk-
  /// posted for up to max_workers-1 other workers while the calling thread
  /// (worker 0) drains the same claim counter, and the call returns once
  /// every item has finished. The shared counter is the morsel cursor:
  /// whichever worker is free claims the next item, so skew balances
  /// itself and a saturated pool degrades to serial execution instead of
  /// deadlocking.
  void RunOnPool(int items, int max_workers,
                 std::function<void(int, int)> fn);
  void RecordExec(const sql::ExecStats& exec, bool sharded);

  SessionPtr CurrentSession() const;

  const QueryServiceOptions options_;

  /// The one swap point. Readers copy the shared_ptr under a mutex held
  /// only for the pointer copy itself (tens of nanoseconds); UpdateSnapshot
  /// exchanges it and releases the old session outside the critical
  /// section. A query in flight holds its own session reference, so a swap
  /// never blocks it and it never observes a torn state.
  ///
  /// Not std::atomic<shared_ptr>: libstdc++'s _Sp_atomic unlocks its
  /// embedded spinlock with a relaxed RMW on the load path, which leaves
  /// the internal pointer read formally unordered against a concurrent
  /// store — ThreadSanitizer (correctly, per the model) reports it. The
  /// micro critical section has the same publication semantics and is
  /// provably clean under the tsan hot-swap hammer.
  mutable std::mutex session_mu_;
  SessionPtr session_;

  mutable std::mutex stats_mu_;
  uint64_t queries_ = 0;
  uint64_t errors_ = 0;
  uint64_t sharded_queries_ = 0;
  uint64_t serial_queries_ = 0;
  uint64_t ingests_ = 0;
  uint64_t compactions_ = 0;
  uint64_t wal_appends_ = 0;
  uint64_t wal_bytes_ = 0;
  uint64_t replayed_batches_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t batch_coalesced_ = 0;
  sql::ExecStats exec_;
  double total_seconds_ = 0.0;
  std::vector<double> latency_ring_ms_;  // bounded reservoir of recent queries
  size_t next_sample_ = 0;

  // Last member: its destructor drains and joins the workers while
  // everything the in-flight tasks touch (session_, stats) is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace service
}  // namespace lpath

#endif  // LPATHDB_SERVICE_QUERY_SERVICE_H_
