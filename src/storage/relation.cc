#include "storage/relation.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <utility>

namespace lpath {

namespace {

/// Staging record used before the clustered sort.
struct Staged {
  Symbol name;
  int32_t tid;
  Label label;
  Symbol value;
  uint8_t kind;
};

/// Owning storage of a relation built in memory. The relation's spans point
/// into these vectors; the arena is held alive through the type-erased
/// backing_ shared_ptr, so moving the relation never invalidates a span.
struct ColumnArena {
  std::vector<int32_t> tid, left, right, depth, id, pid;
  std::vector<Symbol> name, value;
  std::vector<uint8_t> kind;
  std::vector<RowRange> runs;
  std::vector<Row> by_right, by_pid, value_index;
  std::vector<uint32_t> value_offsets;
  std::vector<uint64_t> tree_row_prefix;
  std::vector<uint32_t> tree_base;
  std::vector<Row> elem_row;
  std::vector<uint32_t> attr_offsets;
  std::vector<Row> attr_rows;
};

/// Counts every label+sort build (see NodeRelation::BuildCount).
std::atomic<uint64_t> g_build_count{0};

/// Counts every tree labeled by a build (see NodeRelation::LabeledTreeCount).
std::atomic<uint64_t> g_labeled_tree_count{0};

}  // namespace

uint64_t NodeRelation::BuildCount() {
  return g_build_count.load(std::memory_order_relaxed);
}

uint64_t NodeRelation::LabeledTreeCount() {
  return g_labeled_tree_count.load(std::memory_order_relaxed);
}

Result<NodeRelation> NodeRelation::Build(const Corpus& corpus,
                                         RelationOptions options) {
  // Non-owning alias: the caller keeps the corpus alive and in place.
  return Build(std::shared_ptr<const Corpus>(std::shared_ptr<const Corpus>(),
                                             &corpus),
               options);
}

Result<NodeRelation> NodeRelation::Build(std::shared_ptr<const Corpus> owned,
                                         RelationOptions options) {
  if (owned == nullptr) {
    return Status::InvalidArgument("NodeRelation::Build: null corpus");
  }
  g_build_count.fetch_add(1, std::memory_order_relaxed);
  g_labeled_tree_count.fetch_add(owned->size(), std::memory_order_relaxed);
  const Corpus& corpus = *owned;
  NodeRelation rel;
  rel.scheme_ = options.scheme;
  rel.corpus_ = std::move(owned);
  rel.tree_count_ = static_cast<int32_t>(corpus.size());
  auto arena = std::make_shared<ColumnArena>();
  ColumnArena& cols = *arena;

  // 1. Label every tree and stage rows.
  std::vector<Staged> staged;
  {
    size_t estimated = 0;
    for (TreeId tid = 0; tid < rel.tree_count_; ++tid) {
      estimated += corpus.tree(tid).size() * 2;  // nodes + ~1 attr each
    }
    staged.reserve(estimated);
  }
  std::vector<Label> labels;
  for (TreeId tid = 0; tid < rel.tree_count_; ++tid) {
    const Tree& tree = corpus.tree(tid);
    ComputeLabels(options.scheme, tree, &labels);
    for (NodeId i = 0; i < static_cast<NodeId>(tree.size()); ++i) {
      staged.push_back(Staged{tree.name(i), tid, labels[i], kNoSymbol, 0});
      for (int a = 0; a < tree.attr_count(i); ++a) {
        const Attr& attr = tree.attrs(i)[a];
        staged.push_back(Staged{attr.name, tid, labels[i], attr.value, 1});
      }
      rel.element_count_ += 1;
    }
  }

  // 2. Clustered sort: (name, tid, left, right, depth, id, pid).
  std::sort(staged.begin(), staged.end(), [](const Staged& a, const Staged& b) {
    if (a.name != b.name) return a.name < b.name;
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.label.left != b.label.left) return a.label.left < b.label.left;
    if (a.label.right != b.label.right) return a.label.right < b.label.right;
    if (a.label.depth != b.label.depth) return a.label.depth < b.label.depth;
    return a.label.id < b.label.id;
  });

  // 3. Materialize columns.
  const size_t n = staged.size();
  cols.tid.resize(n);
  cols.left.resize(n);
  cols.right.resize(n);
  cols.depth.resize(n);
  cols.id.resize(n);
  cols.pid.resize(n);
  cols.name.resize(n);
  cols.value.resize(n);
  cols.kind.resize(n);
  for (size_t r = 0; r < n; ++r) {
    const Staged& s = staged[r];
    cols.tid[r] = s.tid;
    cols.left[r] = s.label.left;
    cols.right[r] = s.label.right;
    cols.depth[r] = s.label.depth;
    cols.id[r] = s.label.id;
    cols.pid[r] = s.label.pid;
    cols.name[r] = s.name;
    cols.value[r] = s.value;
    cols.kind[r] = s.kind;
  }

  // 4. Run directory, dense by name symbol.
  const Symbol name_end = corpus.interner().end_id();
  cols.runs.assign(name_end, RowRange{});
  for (Row r = 0; r < n;) {
    Row e = r;
    const Symbol nm = cols.name[r];
    while (e < n && cols.name[e] == nm) ++e;
    cols.runs[nm] = RowRange{r, e};
    r = e;
  }

  // 5. Per-run permutations.
  cols.by_right.resize(n);
  cols.by_pid.resize(n);
  std::iota(cols.by_right.begin(), cols.by_right.end(), 0u);
  std::iota(cols.by_pid.begin(), cols.by_pid.end(), 0u);
  for (const RowRange& run : cols.runs) {
    if (run.empty()) continue;
    auto rb = cols.by_right.begin() + run.begin;
    auto re = cols.by_right.begin() + run.end;
    std::sort(rb, re, [&cols](Row a, Row b) {
      if (cols.tid[a] != cols.tid[b]) return cols.tid[a] < cols.tid[b];
      if (cols.right[a] != cols.right[b]) return cols.right[a] < cols.right[b];
      return cols.left[a] < cols.left[b];
    });
    auto pb = cols.by_pid.begin() + run.begin;
    auto pe = cols.by_pid.begin() + run.end;
    std::sort(pb, pe, [&cols](Row a, Row b) {
      if (cols.tid[a] != cols.tid[b]) return cols.tid[a] < cols.tid[b];
      if (cols.pid[a] != cols.pid[b]) return cols.pid[a] < cols.pid[b];
      return cols.left[a] < cols.left[b];
    });
  }

  // 6. Value index over attribute rows: (value, tid, id).
  for (Row r = 0; r < n; ++r) {
    if (cols.value[r] != kNoSymbol) cols.value_index.push_back(r);
  }
  std::sort(cols.value_index.begin(), cols.value_index.end(),
            [&cols](Row a, Row b) {
              if (cols.value[a] != cols.value[b])
                return cols.value[a] < cols.value[b];
              if (cols.tid[a] != cols.tid[b]) return cols.tid[a] < cols.tid[b];
              return cols.id[a] < cols.id[b];
            });
  cols.value_offsets.assign(name_end + 1, 0);
  for (Row idx : cols.value_index) cols.value_offsets[cols.value[idx] + 1] += 1;
  for (size_t v = 1; v < cols.value_offsets.size(); ++v) {
    cols.value_offsets[v] += cols.value_offsets[v - 1];
  }

  // 7. (tid, id) -> element row, and the attribute CSR.
  cols.tree_base.assign(rel.tree_count_ + 1, 0);
  for (TreeId t = 0; t < rel.tree_count_; ++t) {
    cols.tree_base[t + 1] =
        cols.tree_base[t] + static_cast<uint32_t>(corpus.tree(t).size());
  }
  cols.elem_row.assign(rel.element_count_, kNoRow);
  cols.attr_offsets.assign(rel.element_count_ + 1, 0);
  for (Row r = 0; r < n; ++r) {
    const uint32_t slot = cols.tree_base[cols.tid[r]] + (cols.id[r] - 1);
    if (cols.kind[r] == 0) {
      cols.elem_row[slot] = r;
    } else {
      cols.attr_offsets[slot + 1] += 1;
    }
  }
  for (size_t i = 1; i < cols.attr_offsets.size(); ++i) {
    cols.attr_offsets[i] += cols.attr_offsets[i - 1];
  }
  cols.attr_rows.resize(cols.attr_offsets.back());
  {
    std::vector<uint32_t> cursor(cols.attr_offsets.begin(),
                                 cols.attr_offsets.end() - 1);
    for (Row r = 0; r < n; ++r) {
      if (cols.kind[r] == 0) continue;
      const uint32_t slot = cols.tree_base[cols.tid[r]] + (cols.id[r] - 1);
      cols.attr_rows[cursor[slot]++] = r;
    }
  }

  // Every element slot must have been filled.
  for (Row r : cols.elem_row) {
    if (r == kNoRow) {
      return Status::Corruption("element id space has holes");
    }
  }

  // 8. Per-tree row mass prefix sums (morsel planner statistics). Counted
  // from the columns rather than the corpus so attribute rows are included.
  cols.tree_row_prefix.assign(rel.tree_count_ + 1, 0);
  for (Row r = 0; r < n; ++r) cols.tree_row_prefix[cols.tid[r] + 1] += 1;
  for (size_t t = 1; t < cols.tree_row_prefix.size(); ++t) {
    cols.tree_row_prefix[t] += cols.tree_row_prefix[t - 1];
  }

  // 9. Bind the accessor spans to the arena and hand it over.
  rel.tid_ = cols.tid;
  rel.left_ = cols.left;
  rel.right_ = cols.right;
  rel.depth_ = cols.depth;
  rel.id_ = cols.id;
  rel.pid_ = cols.pid;
  rel.name_ = cols.name;
  rel.value_ = cols.value;
  rel.kind_ = cols.kind;
  rel.runs_ = cols.runs;
  rel.by_right_ = cols.by_right;
  rel.by_pid_ = cols.by_pid;
  rel.value_index_ = cols.value_index;
  rel.value_offsets_ = cols.value_offsets;
  rel.tree_row_prefix_ = cols.tree_row_prefix;
  rel.tree_base_ = cols.tree_base;
  rel.elem_row_ = cols.elem_row;
  rel.attr_offsets_ = cols.attr_offsets;
  rel.attr_rows_ = cols.attr_rows;
  rel.backing_ = std::move(arena);
  return rel;
}

Result<NodeRelation> NodeRelation::Merge(const NodeRelation& base,
                                         const NodeRelation& delta,
                                         std::shared_ptr<const Corpus> owned) {
  if (owned == nullptr) {
    return Status::InvalidArgument("NodeRelation::Merge: null corpus");
  }
  if (base.scheme_ != delta.scheme_) {
    return Status::InvalidArgument(
        "NodeRelation::Merge: sources use different label schemes");
  }
  const Symbol name_end = owned->interner().end_id();
  if (base.runs_.size() > name_end || delta.runs_.size() > name_end) {
    return Status::InvalidArgument(
        "NodeRelation::Merge: merged dictionary misses source symbols");
  }
  NodeRelation rel;
  rel.scheme_ = base.scheme_;
  rel.corpus_ = std::move(owned);
  rel.tree_count_ = base.tree_count_ + delta.tree_count_;
  rel.element_count_ = base.element_count_ + delta.element_count_;
  auto arena = std::make_shared<ColumnArena>();
  ColumnArena& cols = *arena;

  const size_t nb = base.row_count();
  const size_t nd = delta.row_count();
  const size_t n = nb + nd;
  const int32_t tid_off = base.tree_count_;

  // 1. Clustered columns: per-name run concatenation (base rows, then delta
  // rows with shifted tids). Every row belongs to exactly one run (name is
  // never kNoSymbol), and within a run the order (tid, left, right, ...) is
  // preserved because shifted delta tids all exceed base tids. The remap
  // arrays record each source row's merged position for the indexes below.
  cols.tid.resize(n);
  cols.left.resize(n);
  cols.right.resize(n);
  cols.depth.resize(n);
  cols.id.resize(n);
  cols.pid.resize(n);
  cols.name.resize(n);
  cols.value.resize(n);
  cols.kind.resize(n);
  cols.runs.assign(name_end, RowRange{});
  std::vector<Row> base_remap(nb);
  std::vector<Row> delta_remap(nd);
  Row out = 0;
  for (Symbol s = 1; s < name_end; ++s) {
    const RowRange br = base.run(s);
    const RowRange dr = delta.run(s);
    if (br.empty() && dr.empty()) continue;
    const Row begin = out;
    for (Row r = br.begin; r < br.end; ++r, ++out) {
      base_remap[r] = out;
      cols.tid[out] = base.tid_[r];
      cols.left[out] = base.left_[r];
      cols.right[out] = base.right_[r];
      cols.depth[out] = base.depth_[r];
      cols.id[out] = base.id_[r];
      cols.pid[out] = base.pid_[r];
      cols.name[out] = base.name_[r];
      cols.value[out] = base.value_[r];
      cols.kind[out] = base.kind_[r];
    }
    for (Row r = dr.begin; r < dr.end; ++r, ++out) {
      delta_remap[r] = out;
      cols.tid[out] = delta.tid_[r] + tid_off;
      cols.left[out] = delta.left_[r];
      cols.right[out] = delta.right_[r];
      cols.depth[out] = delta.depth_[r];
      cols.id[out] = delta.id_[r];
      cols.pid[out] = delta.pid_[r];
      cols.name[out] = delta.name_[r];
      cols.value[out] = delta.value_[r];
      cols.kind[out] = delta.kind_[r];
    }
    cols.runs[s] = RowRange{begin, out};
  }
  if (out != n) {
    return Status::Corruption(
        "NodeRelation::Merge: run directories do not cover the sources");
  }

  // 2. Per-run permutations: remapped concatenation per run. The secondary
  // orders ((tid, right, left) and (tid, pid, left)) lead with tid, so base
  // entries precede all shifted delta entries within each run.
  cols.by_right.resize(n);
  cols.by_pid.resize(n);
  for (Symbol s = 1; s < name_end; ++s) {
    const RowRange br = base.run(s);
    const RowRange dr = delta.run(s);
    Row w = cols.runs[s].begin;
    for (Row i = br.begin; i < br.end; ++i) {
      cols.by_right[w++] = base_remap[base.by_right_[i]];
    }
    for (Row i = dr.begin; i < dr.end; ++i) {
      cols.by_right[w++] = delta_remap[delta.by_right_[i]];
    }
    w = cols.runs[s].begin;
    for (Row i = br.begin; i < br.end; ++i) {
      cols.by_pid[w++] = base_remap[base.by_pid_[i]];
    }
    for (Row i = dr.begin; i < dr.end; ++i) {
      cols.by_pid[w++] = delta_remap[delta.by_pid_[i]];
    }
  }

  // 3. Value index: per-value remapped concatenation, same tid argument.
  cols.value_index.reserve(base.value_index_.size() +
                           delta.value_index_.size());
  cols.value_offsets.resize(name_end + 1);
  cols.value_offsets[0] = 0;
  for (Symbol v = 0; v < name_end; ++v) {
    for (Row r : base.ValueRange(v)) {
      cols.value_index.push_back(base_remap[r]);
    }
    for (Row r : delta.ValueRange(v)) {
      cols.value_index.push_back(delta_remap[r]);
    }
    cols.value_offsets[v + 1] = static_cast<uint32_t>(cols.value_index.size());
  }

  // 4. Per-tree prefix sums and the (tid, id) lookup tables: offset-shifted
  // concatenation (delta trees follow base trees in the merged tid space).
  cols.tree_row_prefix.resize(static_cast<size_t>(rel.tree_count_) + 1);
  for (int32_t t = 0; t <= base.tree_count_; ++t) {
    cols.tree_row_prefix[t] = base.tree_row_prefix_[t];
  }
  for (int32_t t = 1; t <= delta.tree_count_; ++t) {
    cols.tree_row_prefix[tid_off + t] = nb + delta.tree_row_prefix_[t];
  }
  cols.tree_base.resize(static_cast<size_t>(rel.tree_count_) + 1);
  const uint32_t elem_off = base.tree_base_.back();
  for (int32_t t = 0; t <= base.tree_count_; ++t) {
    cols.tree_base[t] = base.tree_base_[t];
  }
  for (int32_t t = 1; t <= delta.tree_count_; ++t) {
    cols.tree_base[tid_off + t] = elem_off + delta.tree_base_[t];
  }
  cols.elem_row.resize(rel.element_count_);
  for (size_t i = 0; i < base.elem_row_.size(); ++i) {
    cols.elem_row[i] = base_remap[base.elem_row_[i]];
  }
  for (size_t i = 0; i < delta.elem_row_.size(); ++i) {
    cols.elem_row[elem_off + i] = delta_remap[delta.elem_row_[i]];
  }
  cols.attr_offsets.resize(rel.element_count_ + 1);
  const uint32_t attr_off = base.attr_offsets_.back();
  for (size_t i = 0; i < base.attr_offsets_.size(); ++i) {
    cols.attr_offsets[i] = base.attr_offsets_[i];
  }
  for (size_t i = 1; i < delta.attr_offsets_.size(); ++i) {
    cols.attr_offsets[elem_off + i] = attr_off + delta.attr_offsets_[i];
  }
  cols.attr_rows.resize(base.attr_rows_.size() + delta.attr_rows_.size());
  for (size_t i = 0; i < base.attr_rows_.size(); ++i) {
    cols.attr_rows[i] = base_remap[base.attr_rows_[i]];
  }
  for (size_t i = 0; i < delta.attr_rows_.size(); ++i) {
    cols.attr_rows[attr_off + i] = delta_remap[delta.attr_rows_[i]];
  }

  // 5. Bind spans, exactly as Build does.
  rel.tid_ = cols.tid;
  rel.left_ = cols.left;
  rel.right_ = cols.right;
  rel.depth_ = cols.depth;
  rel.id_ = cols.id;
  rel.pid_ = cols.pid;
  rel.name_ = cols.name;
  rel.value_ = cols.value;
  rel.kind_ = cols.kind;
  rel.runs_ = cols.runs;
  rel.by_right_ = cols.by_right;
  rel.by_pid_ = cols.by_pid;
  rel.value_index_ = cols.value_index;
  rel.value_offsets_ = cols.value_offsets;
  rel.tree_row_prefix_ = cols.tree_row_prefix;
  rel.tree_base_ = cols.tree_base;
  rel.elem_row_ = cols.elem_row;
  rel.attr_offsets_ = cols.attr_offsets;
  rel.attr_rows_ = cols.attr_rows;
  rel.backing_ = std::move(arena);
  return rel;
}

std::vector<TidRange> NodeRelation::CarveTidRanges(int target_ranges,
                                                   uint64_t min_rows) const {
  std::vector<TidRange> out;
  if (tree_count_ <= 0 || row_count() == 0) return out;
  const uint64_t total = tree_row_prefix_.back();
  const uint64_t per_range =
      (total + static_cast<uint64_t>(std::max(1, target_ranges)) - 1) /
      static_cast<uint64_t>(std::max(1, target_ranges));
  const uint64_t target = std::max<uint64_t>(std::max<uint64_t>(1, min_rows),
                                             per_range);
  int32_t lo = 0;
  while (lo < tree_count_) {
    // First boundary whose prefix reaches the target mass: the range ends
    // after the tree that crosses it, so a giant tree never splits (the
    // shard kernel is tid-range based) but never drags neighbours along
    // either once the target is met.
    const uint64_t want = tree_row_prefix_[lo] + target;
    auto it = std::lower_bound(tree_row_prefix_.begin() + lo + 1,
                               tree_row_prefix_.end(), want);
    int32_t hi =
        static_cast<int32_t>(it - tree_row_prefix_.begin());
    hi = std::min(hi, tree_count_);
    out.push_back(
        TidRange{lo, hi, tree_row_prefix_[hi] - tree_row_prefix_[lo]});
    lo = hi;
  }
  return out;
}

RowRange NodeRelation::run(Symbol name) const {
  if (name == kNoSymbol || name >= runs_.size()) return RowRange{};
  return runs_[name];
}

RowRange NodeRelation::RunForTree(Symbol name, int32_t t) const {
  const RowRange full = run(name);
  if (full.empty()) return full;
  const auto tb = tid_.begin();
  auto lo = std::lower_bound(tb + full.begin, tb + full.end, t);
  auto hi = std::upper_bound(lo, tb + full.end, t);
  return RowRange{static_cast<Row>(lo - tb), static_cast<Row>(hi - tb)};
}

RowRange NodeRelation::RunTidRange(Symbol name, int32_t tid_lo,
                                   int32_t tid_hi) const {
  const RowRange full = run(name);
  if (full.empty() || tid_lo >= tid_hi) return RowRange{full.begin, full.begin};
  const auto tb = tid_.begin();
  auto lo = std::lower_bound(tb + full.begin, tb + full.end, tid_lo);
  auto hi = std::lower_bound(lo, tb + full.end, tid_hi);
  return RowRange{static_cast<Row>(lo - tb), static_cast<Row>(hi - tb)};
}

RowRange NodeRelation::RunLeftRange(Symbol name, int32_t t, int32_t left_lo,
                                    int32_t left_hi) const {
  const RowRange in_tree = RunForTree(name, t);
  if (in_tree.empty() || left_lo >= left_hi) {
    return RowRange{in_tree.begin, in_tree.begin};
  }
  const auto lb = left_.begin();
  auto lo = std::lower_bound(lb + in_tree.begin, lb + in_tree.end, left_lo);
  auto hi = std::lower_bound(lo, lb + in_tree.end, left_hi);
  return RowRange{static_cast<Row>(lo - lb), static_cast<Row>(hi - lb)};
}

std::span<const Row> NodeRelation::RunRightRange(Symbol name, int32_t t,
                                                 int32_t right_lo,
                                                 int32_t right_hi) const {
  const RowRange full = run(name);
  if (full.empty() || right_lo >= right_hi) return {};
  auto first = by_right_.begin() + full.begin;
  auto last = by_right_.begin() + full.end;
  auto key_less = [this](Row r, std::pair<int32_t, int32_t> key) {
    if (tid_[r] != key.first) return tid_[r] < key.first;
    return right_[r] < key.second;
  };
  auto lo =
      std::lower_bound(first, last, std::make_pair(t, right_lo), key_less);
  auto hi = std::lower_bound(lo, last, std::make_pair(t, right_hi), key_less);
  if (lo == hi) return {};
  return std::span<const Row>(&*lo, static_cast<size_t>(hi - lo));
}

std::span<const Row> NodeRelation::RunPidRange(Symbol name, int32_t t,
                                               int32_t p) const {
  const RowRange full = run(name);
  if (full.empty()) return {};
  auto first = by_pid_.begin() + full.begin;
  auto last = by_pid_.begin() + full.end;
  auto key_less = [this](Row r, std::pair<int32_t, int32_t> key) {
    if (tid_[r] != key.first) return tid_[r] < key.first;
    return pid_[r] < key.second;
  };
  auto key_greater = [this](std::pair<int32_t, int32_t> key, Row r) {
    if (tid_[r] != key.first) return key.first < tid_[r];
    return key.second < pid_[r];
  };
  auto lo = std::lower_bound(first, last, std::make_pair(t, p), key_less);
  auto hi = std::upper_bound(lo, last, std::make_pair(t, p), key_greater);
  if (lo == hi) return {};
  return std::span<const Row>(&*lo, static_cast<size_t>(hi - lo));
}

std::span<const Row> NodeRelation::ValueRange(Symbol v) const {
  // size_t arithmetic: v + 1 would wrap to 0 for the unsatisfiable
  // 0xffffffff sentinel the optimizer feeds unknown-literal lookups.
  if (v == kNoSymbol || static_cast<size_t>(v) + 1 >= value_offsets_.size()) {
    return {};
  }
  const uint32_t b = value_offsets_[v];
  const uint32_t e = value_offsets_[v + 1];
  if (b >= e) return {};
  return std::span<const Row>(value_index_.data() + b, e - b);
}

std::span<const Row> NodeRelation::ValueRangeForTree(Symbol v,
                                                     int32_t t) const {
  std::span<const Row> all = ValueRange(v);
  if (all.empty()) return {};
  // Sorted by (value, tid, id): binary search the tid subrange.
  auto less_tid = [this](Row r, int32_t key) { return tid_[r] < key; };
  auto greater_tid = [this](int32_t key, Row r) { return key < tid_[r]; };
  auto lo = std::lower_bound(all.begin(), all.end(), t, less_tid);
  auto hi = std::upper_bound(lo, all.end(), t, greater_tid);
  if (lo == hi) return {};
  return std::span<const Row>(&*lo, static_cast<size_t>(hi - lo));
}

std::span<const Row> NodeRelation::ElementsOfTree(int32_t t) const {
  if (t < 0 || t >= tree_count_) return {};
  const uint32_t b = tree_base_[t];
  const uint32_t e = tree_base_[t + 1];
  if (b >= e) return {};
  return std::span<const Row>(elem_row_.data() + b, e - b);
}

std::span<const Row> NodeRelation::ElementsInLeftRange(int32_t t,
                                                       int32_t left_lo,
                                                       int32_t left_hi) const {
  std::span<const Row> all = ElementsOfTree(t);
  if (all.empty() || left_lo >= left_hi) return {};
  // Pre-order rows have non-decreasing left.
  auto less_left = [this](Row r, int32_t key) { return left_[r] < key; };
  auto lo = std::lower_bound(all.begin(), all.end(), left_lo, less_left);
  auto hi = std::lower_bound(lo, all.end(), left_hi, less_left);
  if (lo == hi) return {};
  return std::span<const Row>(&*lo, static_cast<size_t>(hi - lo));
}

Row NodeRelation::ElementRow(int32_t t, int32_t id) const {
  if (t < 0 || t >= tree_count_ || id <= 0) return kNoRow;
  const uint32_t slot = tree_base_[t] + (id - 1);
  if (slot >= tree_base_[t + 1]) return kNoRow;
  return elem_row_[slot];
}

std::span<const Row> NodeRelation::AttrRows(int32_t t, int32_t id) const {
  if (t < 0 || t >= tree_count_ || id <= 0) return {};
  const uint32_t slot = tree_base_[t] + (id - 1);
  if (slot >= tree_base_[t + 1]) return {};
  const uint32_t b = attr_offsets_[slot];
  const uint32_t e = attr_offsets_[slot + 1];
  if (b >= e) return {};
  return std::span<const Row>(attr_rows_.data() + b, e - b);
}

size_t NodeRelation::MemoryBytes() const {
  size_t bytes = 0;
  bytes += (tid_.size() + left_.size() + right_.size() + depth_.size() +
            id_.size() + pid_.size()) *
           sizeof(int32_t);
  bytes += (name_.size() + value_.size()) * sizeof(Symbol);
  bytes += kind_.size();
  bytes += runs_.size() * sizeof(RowRange);
  bytes += (by_right_.size() + by_pid_.size() + value_index_.size() +
            elem_row_.size() + attr_rows_.size()) *
           sizeof(Row);
  bytes += (value_offsets_.size() + tree_base_.size() + attr_offsets_.size()) *
           sizeof(uint32_t);
  bytes += tree_row_prefix_.size() * sizeof(uint64_t);
  return bytes;
}

}  // namespace lpath
