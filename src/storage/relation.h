// The node relation of Section 5: labeled tree nodes stored with schema
//   { tid, left, right, depth, id, pid, name, value }
// clustered by { name, tid, left, right, depth, id, pid }, with secondary
// indexes for value lookups ({value, tid, id} / {tid, value, id}) and row
// lookups by {tid, id} — exactly the physical design the paper lists.
//
// Attribute rows (e.g. name "@lex", value "saw") carry their element's label
// (Definition 4.1, rule 8) and are distinguished by RowKind.
//
// Access paths exposed here are what the SQL executor uses:
//   - a per-tag "run" (contiguous, sorted by tid,left,right,depth,id);
//   - binary-searchable (tid, left) ranges within a run;
//   - per-run permutations ordered by (tid, right) and (tid, pid, left);
//   - the global value index;
//   - direct element lookup by (tid, id).

#ifndef LPATHDB_STORAGE_RELATION_H_
#define LPATHDB_STORAGE_RELATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <array>

#include "common/result.h"
#include "label/labeler.h"
#include "storage/codec.h"
#include "tree/corpus.h"

namespace lpath {

/// Index of a row in the relation's clustered order.
using Row = uint32_t;
inline constexpr Row kNoRow = UINT32_MAX;

/// Half-open row range [begin, end) within the clustered storage.
struct RowRange {
  Row begin = 0;
  Row end = 0;
  bool empty() const { return begin >= end; }
  size_t size() const { return end - begin; }
};

/// A half-open slice [tid_lo, tid_hi) of the tree-id space together with
/// the total relation rows (elements + attributes) its trees hold. The
/// unit of work of the morsel-driven parallel executor.
struct TidRange {
  int32_t tid_lo = 0;
  int32_t tid_hi = 0;
  uint64_t rows = 0;
};

/// Element or attribute row.
enum class RowKind : uint8_t { kElement = 0, kAttribute = 1 };

/// Options for building a relation.
struct RelationOptions {
  LabelScheme scheme = LabelScheme::kLPath;
};

/// The relation's row-aligned columns, in the order the batch executor and
/// the v2 image format index them. The first kRelColEncodable of these are
/// 32-bit and eligible for lightweight compression in persistent images;
/// kKind stays a raw byte array.
enum class RelCol : uint8_t {
  kTid = 0,
  kLeft = 1,
  kRight = 2,
  kDepth = 3,
  kId = 4,
  kPid = 5,
  kName = 6,
  kValue = 7,
  kKind = 8,
};
inline constexpr size_t kRelColEncodable = 8;

class ImageIO;

/// Immutable, columnar, dictionary-encoded node relation.
///
/// Columns are exposed as borrowed spans over a type-erased backing: a
/// relation built in memory owns its arrays (the backing is the arena the
/// build filled), while a relation opened from a persistent image serves
/// the very same spans straight out of a read-only file mapping (see
/// storage/image.h). Every consumer — executor, morsel planner, benches —
/// reads through one accessor surface and cannot tell the difference.
class NodeRelation {
 public:
  /// Labels every tree of `*corpus` under `options.scheme`, flattens nodes
  /// and attributes to rows, sorts into the clustered order and builds all
  /// secondary indexes. The relation shares ownership of the corpus (and
  /// through it the interner), so the corpus stays alive as long as any
  /// relation built over it — the invariant CorpusSnapshot and the
  /// hot-swap path rely on.
  static Result<NodeRelation> Build(std::shared_ptr<const Corpus> corpus,
                                    RelationOptions options = {});

  /// Borrowing overload for stack-scoped uses (tests, one-shot tools): the
  /// caller guarantees `corpus` outlives the relation and is not moved.
  static Result<NodeRelation> Build(const Corpus& corpus,
                                    RelationOptions options = {});

  /// Builds the compaction of `base` + `delta` — bit-identical to what a
  /// full Build over the concatenated corpora would produce — by pure
  /// linear merge: no labeling and no sorting. Works because the chain
  /// keeps three invariants: delta symbol ids extend the base's dictionary
  /// (shared strings keep their base ids, so per-name runs concatenate),
  /// every delta tid maps to base tree_count() + tid (so within a run the
  /// base rows sort strictly before the shifted delta rows under every
  /// clustered and secondary order, all of which lead with tid after the
  /// run's name), and labels are per-tree (no base label changes when
  /// trees are appended). `corpus` becomes the merged relation's owner and
  /// must carry the delta's (superset) dictionary; it may be tree-less
  /// (image-backed compaction) or hold the concatenated trees.
  static Result<NodeRelation> Merge(const NodeRelation& base,
                                    const NodeRelation& delta,
                                    std::shared_ptr<const Corpus> corpus);

  LabelScheme scheme() const { return scheme_; }
  const Corpus& corpus() const { return *corpus_; }
  /// Shared owner of the corpus. Built through the borrowing overload it
  /// is a non-owning alias (non-null but use_count() == 0) — do not treat
  /// it as something that keeps the corpus alive.
  const std::shared_ptr<const Corpus>& corpus_ptr() const { return corpus_; }
  const Interner& interner() const { return corpus_->interner(); }

  size_t row_count() const { return tid_.size(); }
  int32_t tree_count() const { return tree_count_; }

  // --- Column access (clustered row order) -------------------------------
  int32_t tid(Row r) const { return tid_[r]; }
  int32_t left(Row r) const { return left_[r]; }
  int32_t right(Row r) const { return right_[r]; }
  int32_t depth(Row r) const { return depth_[r]; }
  int32_t id(Row r) const { return id_[r]; }
  int32_t pid(Row r) const { return pid_[r]; }
  Symbol name(Row r) const { return name_[r]; }
  Symbol value(Row r) const { return value_[r]; }
  RowKind kind(Row r) const { return static_cast<RowKind>(kind_[r]); }
  bool is_attr(Row r) const { return kind_[r] != 0; }

  // --- Whole-column access (batch executor, image writer) ------------------
  std::span<const int32_t> tid_col() const { return tid_; }
  std::span<const int32_t> left_col() const { return left_; }
  std::span<const int32_t> right_col() const { return right_; }
  std::span<const int32_t> depth_col() const { return depth_; }
  std::span<const int32_t> id_col() const { return id_; }
  std::span<const int32_t> pid_col() const { return pid_; }
  std::span<const Symbol> name_col() const { return name_; }
  std::span<const Symbol> value_col() const { return value_; }
  std::span<const uint8_t> kind_col() const { return kind_; }

  /// The compressed image payload of a 32-bit column, when this relation
  /// was opened from a v2 image that stored it encoded. An inert view
  /// (encoding == kRaw) otherwise; the span accessors above always work —
  /// encoded columns are decoded into an owned arena on open, and this
  /// view lets the batch scan decode straight from the mapping instead.
  const EncodedColumnView& encoded(RelCol col) const {
    return encoded_[static_cast<size_t>(col)];
  }
  /// True when at least one column carries a compressed image payload.
  bool any_encoded() const {
    for (const EncodedColumnView& view : encoded_) {
      if (view.encoded()) return true;
    }
    return false;
  }

  /// The label tuple of a row.
  Label label(Row r) const {
    return Label{left_[r], right_[r], depth_[r], id_[r], pid_[r]};
  }

  // --- Clustered runs ------------------------------------------------------
  /// Rows whose name is `name` — contiguous thanks to name-first clustering.
  /// Empty range for unknown symbols.
  RowRange run(Symbol name) const;

  /// All element rows (kind = element) — NOT contiguous; use this range plus
  /// the is_attr filter for wildcard scans.
  RowRange all_rows() const {
    return RowRange{0, static_cast<Row>(row_count())};
  }

  /// Subrange of run(name) with tid == t; binary search.
  RowRange RunForTree(Symbol name, int32_t t) const;

  /// Subrange of run(name) with tid in [tid_lo, tid_hi); binary search.
  /// This is how a shard of the parallel executor carves its slice of a
  /// tag run out of the clustered storage.
  RowRange RunTidRange(Symbol name, int32_t tid_lo, int32_t tid_hi) const;

  /// Subrange of run(name) with tid == t and left in [left_lo, left_hi).
  /// This is the workhorse for descendant/following/immediate-following.
  RowRange RunLeftRange(Symbol name, int32_t t, int32_t left_lo,
                        int32_t left_hi) const;

  // --- Per-run secondary orders -------------------------------------------
  /// Rows of run(name) with tid == t and right in [right_lo, right_hi),
  /// returned as a span of row indexes ordered by right (for preceding /
  /// immediate-preceding).
  std::span<const Row> RunRightRange(Symbol name, int32_t t, int32_t right_lo,
                                     int32_t right_hi) const;

  /// Rows of run(name) with tid == t and pid == p, ordered by left (for the
  /// sibling axes and child-of lookups).
  std::span<const Row> RunPidRange(Symbol name, int32_t t, int32_t p) const;

  // --- Value index ----------------------------------------------------------
  /// Rows with value == v (attribute rows), ordered by (tid, id); the
  /// {value, tid, id} index of the paper.
  std::span<const Row> ValueRange(Symbol v) const;

  /// Rows with value == v within tree t (the {tid, value, id} index).
  std::span<const Row> ValueRangeForTree(Symbol v, int32_t t) const;

  /// Element rows of tree t whose left is in [left_lo, left_hi), in
  /// pre-order (= non-decreasing left). Used for wildcard steps.
  std::span<const Row> ElementsInLeftRange(int32_t t, int32_t left_lo,
                                           int32_t left_hi) const;

  /// All element rows of tree t in pre-order.
  std::span<const Row> ElementsOfTree(int32_t t) const;

  // --- Row lookup by (tid, id) ----------------------------------------------
  /// The element row with the given id in tree t, or kNoRow. O(1): ids are
  /// dense pre-order positions, so this is the {tid, id, ...} index.
  Row ElementRow(int32_t t, int32_t id) const;

  /// Attribute rows of element (t, id), ordered by name symbol.
  std::span<const Row> AttrRows(int32_t t, int32_t id) const;

  // --- Statistics (for the join-order optimizer) ----------------------------
  /// Number of rows with this tag (0 for unknown); wildcards use row_count().
  size_t NameCardinality(Symbol name) const { return run(name).size(); }
  size_t ValueCardinality(Symbol v) const { return ValueRange(v).size(); }
  size_t element_count() const { return element_count_; }

  // --- Per-tree row statistics (for the morsel planner) ---------------------
  /// Rows (elements + attributes) of tree t. O(1) via the prefix sums.
  uint64_t TreeRowCount(int32_t t) const {
    return tree_row_prefix_[t + 1] - tree_row_prefix_[t];
  }
  /// Total rows of all trees with tid < t (prefix sum over the tid space);
  /// TreeRowsBefore(tree_count()) == row_count().
  uint64_t TreeRowsBefore(int32_t t) const { return tree_row_prefix_[t]; }

  /// Carves the tid space into at most ~`target_ranges` contiguous slices
  /// of roughly equal *row mass* (not tree count): boundaries are binary
  /// searches over the per-tree row prefix sums, so a run of tiny trees is
  /// coalesced into one slice and a giant tree gets a slice of its own.
  /// Every slice except possibly the last holds at least
  /// max(min_rows, ceil(row_count / target_ranges)) rows, and no slice
  /// exceeds that target by more than its final tree — the balance
  /// guarantee skewed corpora need, where the even-by-tid split puts an
  /// unbounded share of the rows into whichever slice holds the longest
  /// sentences. Returns an empty vector for an empty relation.
  std::vector<TidRange> CarveTidRanges(int target_ranges,
                                       uint64_t min_rows = 1) const;

  /// Memory used by columns + indexes, for reports. For a mapped relation
  /// this is the mapped footprint served from the page cache.
  size_t MemoryBytes() const;

  /// True when the columns are served out of a read-only file mapping
  /// (opened via ImageIO) rather than build-owned arrays.
  bool mapped() const { return mapped_; }

  /// Process-wide count of in-memory builds (label + sort) ever run — the
  /// load-path counter tests use to assert that opening a persistent image
  /// performs no labeling or sorting.
  static uint64_t BuildCount();

  /// Process-wide count of trees ever labeled by Build. The O(delta)
  /// append guarantee is stated in this counter: appending N trees onto an
  /// M-tree snapshot advances it by exactly N — by delta + N onto a chain
  /// whose delta is rebuilt — never by anything proportional to M (the
  /// base is never relabeled), and compaction advances it by 0 (Merge
  /// neither labels nor sorts).
  static uint64_t LabeledTreeCount();

 private:
  friend class ImageIO;

  NodeRelation() = default;

  LabelScheme scheme_ = LabelScheme::kLPath;
  // Shared so the corpus (symbols, trees) outlives every reader; built
  // through the borrowing overload this is a non-owning alias.
  std::shared_ptr<const Corpus> corpus_;
  int32_t tree_count_ = 0;
  size_t element_count_ = 0;
  bool mapped_ = false;

  // Owner of every span below: the build's column arena, or the read-only
  // file mapping of a persistent image. Shared (not unique) so a moved
  // relation's spans stay valid — vector buffers and mappings never move.
  std::shared_ptr<const void> backing_;

  // Columns, clustered by (name, tid, left, right, depth, id, pid).
  std::span<const int32_t> tid_, left_, right_, depth_, id_, pid_;
  std::span<const Symbol> name_, value_;
  std::span<const uint8_t> kind_;

  // Views into the mapping's compressed payloads for columns a v2 image
  // stored encoded; inert for built relations and v1 images. Indexed by
  // RelCol (the kKind slot is always inert).
  std::array<EncodedColumnView, kRelColEncodable> encoded_{};

  // name symbol -> clustered run. Dense by symbol id.
  std::span<const RowRange> runs_;

  // Per-run permutations, concatenated in run order (same offsets as rows):
  // by (tid, right, left) and by (tid, pid, left).
  std::span<const Row> by_right_;
  std::span<const Row> by_pid_;

  // Global value index: attribute rows ordered by (value, tid, id), with a
  // dense offset table per value symbol.
  std::span<const Row> value_index_;
  std::span<const uint32_t> value_offsets_;  // size = interner.end_id() + 1

  // Per-tree row mass: tree_row_prefix_[t] = rows with tid < t (size
  // tree_count_ + 1). Feeds the morsel planner's balanced carving.
  std::span<const uint64_t> tree_row_prefix_;

  // (tid, id) -> element row: per-tree base into elem_row_.
  std::span<const uint32_t> tree_base_;  // size = tree_count_ + 1
  std::span<const Row> elem_row_;        // size = total element count

  // (tid, id) -> attribute rows: CSR over elements.
  std::span<const uint32_t> attr_offsets_;  // size = element_count_ + 1
  std::span<const Row> attr_rows_;
};

}  // namespace lpath

#endif  // LPATHDB_STORAGE_RELATION_H_
