#include "storage/codec.h"

#include <algorithm>
#include <cstring>

namespace lpath {

namespace {

// --- Bit-pack layout --------------------------------------------------------
// u64 block_count
// BlockDesc[block_count]   {reference, width, word_offset}
// u64 words[...]           block b owns 16*width words at word_offset
//
// A full block is kCodecBlockValues values; 1024 * width bits is an exact
// multiple of 64, so every block occupies a whole number of words and a
// packed value never straddles past its block's payload. The tail block is
// padded with the block reference up to the full 1024 values.

struct BlockDesc {
  uint32_t reference = 0;
  uint32_t width = 0;         ///< bits per residual, 0..32
  uint64_t word_offset = 0;   ///< into the words array
};
static_assert(sizeof(BlockDesc) == 16);

constexpr uint64_t kWordsPerWidthUnit = kCodecBlockValues / 64;  // 16

uint64_t BitPackBlockCount(uint64_t count) {
  return (count + kCodecBlockValues - 1) / kCodecBlockValues;
}

/// Bits needed for residuals up to `max_residual` (0 -> width 0).
uint32_t WidthFor(uint32_t max_residual) {
  uint32_t width = 0;
  while (max_residual != 0) {
    ++width;
    max_residual >>= 1;
  }
  return width;
}

// --- RLE layout -------------------------------------------------------------
// u64 run_count
// Run[run_count]           {end, value}; `end` is the exclusive cumulative
//                          value count, strictly increasing, last == count.

struct Run {
  uint32_t end = 0;
  uint32_t value = 0;
};
static_assert(sizeof(Run) == 8);

uint64_t RleRunCount(std::span<const uint32_t> values) {
  uint64_t runs = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || values[i] != values[i - 1]) ++runs;
  }
  return runs;
}

template <typename T>
void AppendPod(std::vector<uint8_t>* out, const T& pod) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &pod, sizeof(T));
}

/// Unpacks values [from, to) of one full-width block, branch-free per
/// value: the straddling high word is masked in unconditionally (the
/// payload geometry guarantees words[word + 1] exists whenever the value
/// actually straddles; a non-straddling value multiplies it by zero).
void UnpackBlock(const BlockDesc& desc, const uint64_t* words, uint64_t from,
                 uint64_t to, uint32_t* out) {
  if (desc.width == 0) {
    for (uint64_t i = from; i < to; ++i) *out++ = desc.reference;
    return;
  }
  const uint64_t width = desc.width;
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (uint64_t i = from; i < to; ++i) {
    const uint64_t bit = i * width;
    const uint64_t word = bit >> 6;
    const uint64_t shift = bit & 63;
    uint64_t v = words[word] >> shift;
    const uint64_t straddles = (shift + width > 64) ? 1 : 0;
    v |= (words[word + straddles] * straddles) << ((64 - shift) & 63);
    *out++ = desc.reference + static_cast<uint32_t>(v & mask);
  }
}

}  // namespace

const char* ColumnEncodingName(ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kRaw: return "raw";
    case ColumnEncoding::kBitPack: return "bitpack";
    case ColumnEncoding::kRle: return "rle";
  }
  return "?";
}

uint64_t ColumnCodec::EncodedBytes(std::span<const uint32_t> values,
                                   ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kRaw:
      return values.size() * sizeof(uint32_t);
    case ColumnEncoding::kBitPack: {
      const uint64_t blocks = BitPackBlockCount(values.size());
      uint64_t words = 0;
      for (uint64_t b = 0; b < blocks; ++b) {
        const uint64_t lo = b * kCodecBlockValues;
        const uint64_t hi = std::min<uint64_t>(lo + kCodecBlockValues,
                                               values.size());
        uint32_t min = values[lo], max = values[lo];
        for (uint64_t i = lo + 1; i < hi; ++i) {
          min = std::min(min, values[i]);
          max = std::max(max, values[i]);
        }
        words += kWordsPerWidthUnit * WidthFor(max - min);
      }
      return sizeof(uint64_t) + blocks * sizeof(BlockDesc) +
             words * sizeof(uint64_t);
    }
    case ColumnEncoding::kRle:
      return sizeof(uint64_t) + RleRunCount(values) * sizeof(Run);
  }
  return values.size() * sizeof(uint32_t);
}

ColumnEncoding ColumnCodec::PickEncoding(std::span<const uint32_t> values) {
  if (values.empty()) return ColumnEncoding::kRaw;
  const uint64_t raw = EncodedBytes(values, ColumnEncoding::kRaw);
  const uint64_t packed = EncodedBytes(values, ColumnEncoding::kBitPack);
  const uint64_t rle = EncodedBytes(values, ColumnEncoding::kRle);
  ColumnEncoding best = ColumnEncoding::kRaw;
  uint64_t best_bytes = raw;
  if (packed < best_bytes) {
    best = ColumnEncoding::kBitPack;
    best_bytes = packed;
  }
  if (rle < best_bytes) best = ColumnEncoding::kRle;
  return best;
}

std::vector<uint8_t> ColumnCodec::Encode(std::span<const uint32_t> values,
                                         ColumnEncoding encoding) {
  std::vector<uint8_t> out;
  if (encoding == ColumnEncoding::kRaw) {
    out.resize(values.size() * sizeof(uint32_t));
    if (!values.empty()) {
      std::memcpy(out.data(), values.data(), out.size());
    }
    return out;
  }
  if (encoding == ColumnEncoding::kRle) {
    const uint64_t runs = RleRunCount(values);
    out.reserve(sizeof(uint64_t) + runs * sizeof(Run));
    AppendPod(&out, runs);
    for (size_t i = 0; i < values.size();) {
      size_t e = i + 1;
      while (e < values.size() && values[e] == values[i]) ++e;
      AppendPod(&out, Run{static_cast<uint32_t>(e), values[i]});
      i = e;
    }
    return out;
  }
  // kBitPack.
  const uint64_t blocks = BitPackBlockCount(values.size());
  AppendPod(&out, blocks);
  std::vector<BlockDesc> descs(blocks);
  std::vector<uint64_t> words;
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint64_t lo = b * kCodecBlockValues;
    const uint64_t hi =
        std::min<uint64_t>(lo + kCodecBlockValues, values.size());
    uint32_t min = values[lo], max = values[lo];
    for (uint64_t i = lo + 1; i < hi; ++i) {
      min = std::min(min, values[i]);
      max = std::max(max, values[i]);
    }
    BlockDesc& desc = descs[b];
    desc.reference = min;
    desc.width = WidthFor(max - min);
    desc.word_offset = words.size();
    if (desc.width == 0) continue;
    const uint64_t block_words = kWordsPerWidthUnit * desc.width;
    words.resize(words.size() + block_words, 0);
    uint64_t* base = words.data() + desc.word_offset;
    for (uint64_t i = lo; i < hi; ++i) {
      // The tail block's missing values stay `reference` (residual 0).
      const uint64_t residual = values[i] - min;
      const uint64_t bit = (i - lo) * desc.width;
      base[bit >> 6] |= residual << (bit & 63);
      if ((bit & 63) + desc.width > 64) {
        base[(bit >> 6) + 1] |= residual >> (64 - (bit & 63));
      }
    }
  }
  for (const BlockDesc& desc : descs) AppendPod(&out, desc);
  const size_t at = out.size();
  out.resize(at + words.size() * sizeof(uint64_t));
  if (!words.empty()) {
    std::memcpy(out.data() + at, words.data(),
                words.size() * sizeof(uint64_t));
  }
  return out;
}

Status ColumnCodec::Validate(const EncodedColumnView& column) {
  const auto bad = [](const char* what) {
    return Status::Corruption(std::string("encoded column: ") + what);
  };
  if (column.encoding == ColumnEncoding::kRaw) {
    return Status::OK();  // raw columns have no encoded payload
  }
  if (reinterpret_cast<uintptr_t>(column.bytes.data()) % 8 != 0) {
    return bad("payload is not 8-byte aligned");
  }
  if (column.encoding == ColumnEncoding::kRle) {
    if (column.bytes.size() < sizeof(uint64_t)) return bad("short RLE header");
    uint64_t runs = 0;
    std::memcpy(&runs, column.bytes.data(), sizeof(runs));
    if (column.bytes.size() != sizeof(uint64_t) + runs * sizeof(Run)) {
      return bad("RLE payload size mismatch");
    }
    if (runs == 0) {
      return column.count == 0 ? Status::OK() : bad("RLE with zero runs");
    }
    const Run* run =
        reinterpret_cast<const Run*>(column.bytes.data() + sizeof(uint64_t));
    uint32_t prev_end = 0;
    for (uint64_t i = 0; i < runs; ++i) {
      if (run[i].end <= prev_end) return bad("RLE runs are not increasing");
      prev_end = run[i].end;
    }
    if (prev_end != column.count) return bad("RLE runs do not cover the column");
    return Status::OK();
  }
  if (column.encoding != ColumnEncoding::kBitPack) {
    return bad("unknown encoding tag");
  }
  if (column.bytes.size() < sizeof(uint64_t)) {
    return bad("short bit-pack header");
  }
  uint64_t blocks = 0;
  std::memcpy(&blocks, column.bytes.data(), sizeof(blocks));
  if (blocks != BitPackBlockCount(column.count)) {
    return bad("bit-pack block count mismatch");
  }
  const uint64_t desc_bytes = blocks * sizeof(BlockDesc);
  if (column.bytes.size() < sizeof(uint64_t) + desc_bytes) {
    return bad("bit-pack descriptors truncated");
  }
  const BlockDesc* descs = reinterpret_cast<const BlockDesc*>(
      column.bytes.data() + sizeof(uint64_t));
  uint64_t words = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    if (descs[b].width > 32) return bad("bit width exceeds 32");
    if (descs[b].word_offset != words) {
      return bad("bit-pack payload offsets are not contiguous");
    }
    words += kWordsPerWidthUnit * descs[b].width;
  }
  if (column.bytes.size() !=
      sizeof(uint64_t) + desc_bytes + words * sizeof(uint64_t)) {
    return bad("bit-pack payload size mismatch");
  }
  return Status::OK();
}

uint64_t ColumnCodec::DecodeRange(const EncodedColumnView& column,
                                  uint64_t begin, uint64_t n, uint32_t* out) {
  if (n == 0) return 0;
  if (column.encoding == ColumnEncoding::kRle) {
    const Run* runs =
        reinterpret_cast<const Run*>(column.bytes.data() + sizeof(uint64_t));
    uint64_t run_count = 0;
    std::memcpy(&run_count, column.bytes.data(), sizeof(run_count));
    // First run whose exclusive end exceeds `begin`.
    const Run* run = std::upper_bound(
        runs, runs + run_count, begin,
        [](uint64_t pos, const Run& r) { return pos < r.end; });
    uint64_t touched = 0;
    uint64_t at = begin;
    const uint64_t end = begin + n;
    while (at < end) {
      const uint64_t run_end = std::min<uint64_t>(run->end, end);
      for (; at < run_end; ++at) *out++ = run->value;
      ++run;
      ++touched;
    }
    return touched;
  }
  // kBitPack.
  const BlockDesc* descs = reinterpret_cast<const BlockDesc*>(
      column.bytes.data() + sizeof(uint64_t));
  uint64_t blocks = 0;
  std::memcpy(&blocks, column.bytes.data(), sizeof(blocks));
  const uint64_t* words = reinterpret_cast<const uint64_t*>(
      column.bytes.data() + sizeof(uint64_t) + blocks * sizeof(BlockDesc));
  uint64_t touched = 0;
  uint64_t at = begin;
  const uint64_t end = begin + n;
  while (at < end) {
    const uint64_t b = at / kCodecBlockValues;
    const uint64_t lo = at - b * kCodecBlockValues;
    const uint64_t hi =
        std::min<uint64_t>(kCodecBlockValues, end - b * kCodecBlockValues);
    UnpackBlock(descs[b], words + descs[b].word_offset, lo, hi, out);
    out += hi - lo;
    at = b * kCodecBlockValues + hi;
    ++touched;
  }
  return touched;
}

void ColumnCodec::Decode(const EncodedColumnView& column, uint32_t* out) {
  if (column.count == 0) return;
  DecodeRange(column, 0, column.count, out);
}

}  // namespace lpath
