#include "storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <type_traits>
#include <utility>

#include "storage/io_hooks.h"

namespace lpath {

namespace {

namespace fs = std::filesystem;

/// Mirrors the image format's marker: WAL files are a deployment format,
/// not an interchange format.
constexpr uint32_t kEndianMarker = 0x01020304u;

/// Sanity cap on a single record; anything larger in a length field is
/// corruption, not a batch (ingest batches are orders of magnitude
/// smaller).
constexpr uint32_t kMaxRecordBytes = 1u << 30;

struct WalSegmentHeader {
  char magic[8];
  uint32_t version = 0;
  uint32_t endian = 0;
  uint64_t first_lsn = 0;  ///< next LSN when the segment was created
  uint64_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<WalSegmentHeader> &&
              sizeof(WalSegmentHeader) == 32);

struct WalRecordHeader {
  uint32_t magic = 0;
  uint32_t length = 0;    ///< payload bytes
  uint64_t lsn = 0;
  uint64_t checksum = 0;  ///< FNV-1a64 over (lsn, length, payload)
};
static_assert(std::is_trivially_copyable_v<WalRecordHeader> &&
              sizeof(WalRecordHeader) == kWalRecordOverhead);

constexpr uint32_t kWalRecordMagic = 0x4C575245u;  // "LWRE"

uint64_t RecordChecksum(uint64_t lsn, uint32_t length,
                        std::string_view payload) {
  uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix = [&hash](const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash ^= p[i];
      hash *= 0x100000001b3ull;
    }
  };
  mix(&lsn, sizeof(lsn));
  mix(&length, sizeof(length));
  mix(payload.data(), payload.size());
  return hash;
}

std::string SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llu.wal",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Parses "<16 digits>.wal" back to its sequence number; 0 for foreign
/// files (sequence numbers start at 1).
uint64_t ParseSegmentName(const std::string& name) {
  if (name.size() != 20 || name.substr(16) != ".wal") return 0;
  uint64_t seq = 0;
  for (int i = 0; i < 16; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot read " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("cannot read " + path);
  return data;
}

Status CorruptionAt(const std::string& path, const char* what) {
  return Status::Corruption("corrupt WAL segment " + path + ": " + what);
}

struct ScanResult {
  uint64_t records = 0;
  uint64_t first_lsn = 0;  ///< 0 when the segment holds no records
  uint64_t last_lsn = 0;
  uint64_t header_first_lsn = 0;  ///< the creation-time next LSN
  uint64_t valid_bytes = 0;  ///< prefix ending at the last whole record
  bool torn = false;         ///< bytes past valid_bytes form a torn tail
};

/// Walks `data`'s records after validating the segment header. A short
/// final record (or short header) is reported as `torn`, never an error —
/// the caller decides whether a tear is legal at this segment's position.
/// Structural damage inside the valid region is Corruption. `expect_lsn`
/// pins the first record's LSN (0 = any); `fn`, when set, receives every
/// record with lsn > after_lsn.
Result<ScanResult> ScanSegment(
    const std::string& path, std::string_view data, uint64_t expect_lsn,
    uint64_t after_lsn,
    const std::function<Status(uint64_t, std::string_view)>* fn) {
  ScanResult out;
  if (data.size() < sizeof(WalSegmentHeader)) {
    out.torn = true;  // interrupted segment creation
    return out;
  }
  WalSegmentHeader header;
  std::memcpy(&header, data.data(), sizeof(header));
  if (std::memcmp(header.magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    return CorruptionAt(path, "bad segment magic");
  }
  if (header.version != kWalFormatVersion) {
    return CorruptionAt(path, "unsupported segment version");
  }
  if (header.endian != kEndianMarker) {
    return CorruptionAt(path, "foreign-endian segment");
  }
  out.header_first_lsn = header.first_lsn;
  uint64_t offset = sizeof(header);
  out.valid_bytes = offset;
  while (offset < data.size()) {
    const uint64_t remaining = data.size() - offset;
    if (remaining < sizeof(WalRecordHeader)) {
      out.torn = true;
      return out;
    }
    WalRecordHeader rec;
    std::memcpy(&rec, data.data() + offset, sizeof(rec));
    if (rec.magic != kWalRecordMagic) {
      return CorruptionAt(path, "bad record magic");
    }
    if (rec.length > kMaxRecordBytes) {
      return CorruptionAt(path, "record length out of range");
    }
    if (remaining - sizeof(rec) < rec.length) {
      out.torn = true;
      return out;
    }
    const std::string_view payload(data.data() + offset + sizeof(rec),
                                   rec.length);
    if (rec.checksum != RecordChecksum(rec.lsn, rec.length, payload)) {
      return CorruptionAt(path, "record checksum mismatch");
    }
    const uint64_t want =
        out.records == 0 ? (expect_lsn != 0 ? expect_lsn : rec.lsn)
                         : out.last_lsn + 1;
    if (rec.lsn != want) {
      return CorruptionAt(path, "record LSNs are not contiguous");
    }
    if (out.records == 0) out.first_lsn = rec.lsn;
    out.last_lsn = rec.lsn;
    out.records += 1;
    if (fn != nullptr && rec.lsn > after_lsn) {
      LPATH_RETURN_IF_ERROR((*fn)(rec.lsn, payload));
    }
    offset += sizeof(rec) + rec.length;
    out.valid_bytes = offset;
  }
  return out;
}

/// Shrinks `path` to its valid prefix after a torn tail (recovery repair;
/// not hooked — it runs on the clean reopen after a simulated crash).
Status TruncateFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) {
    return Status::IOError("cannot truncate " + path + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

Wal::~Wal() {
  std::lock_guard<std::mutex> lock(mu_);
  (void)CloseTail();
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       WalOptions options) {
  if (dir.empty()) {
    return Status::InvalidArgument("Wal::Open: empty directory");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create WAL directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<Wal> wal(new Wal(dir, options));

  std::vector<std::pair<uint64_t, std::string>> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const uint64_t seq = ParseSegmentName(name);
    if (seq > 0) found.emplace_back(seq, entry.path().string());
  }
  if (ec) {
    return Status::IOError("cannot list WAL directory " + dir + ": " +
                           ec.message());
  }
  std::sort(found.begin(), found.end());
  for (size_t i = 0; i + 1 < found.size(); ++i) {
    if (found[i].first + 1 != found[i + 1].first) {
      return Status::Corruption("WAL " + dir +
                                " has a gap in its segment sequence");
    }
  }

  uint64_t expect_lsn = 0;  // first record of the oldest segment: any LSN
  for (size_t i = 0; i < found.size(); ++i) {
    const bool last = i + 1 == found.size();
    const std::string& path = found[i].second;
    LPATH_ASSIGN_OR_RETURN(const std::string data, ReadFile(path));
    LPATH_ASSIGN_OR_RETURN(
        ScanResult scan,
        ScanSegment(path, data, expect_lsn, /*after_lsn=*/0, nullptr));
    if (scan.torn) {
      // A tear is a crashed append — possible only at the very end of the
      // log. Earlier segments were sealed by a later rotation; a tear
      // there is damage, not a crash artifact.
      if (!last) {
        return CorruptionAt(path, "torn record before the final segment");
      }
      wal->stats_.truncated_bytes += data.size() - scan.valid_bytes;
      if (scan.valid_bytes < sizeof(WalSegmentHeader)) {
        // Interrupted creation: no header, no records — drop the file.
        std::error_code rm;
        fs::remove(path, rm);
        if (rm) {
          return Status::IOError("cannot remove torn segment " + path + ": " +
                                 rm.message());
        }
        break;
      }
      LPATH_RETURN_IF_ERROR(TruncateFile(path, scan.valid_bytes));
    }
    Segment seg;
    seg.path = path;
    seg.seq = found[i].first;
    seg.first_lsn = scan.first_lsn;
    seg.last_lsn = scan.last_lsn;
    seg.records = scan.records;
    seg.bytes = scan.valid_bytes;
    if (scan.records > 0) {
      wal->next_lsn_ = scan.last_lsn + 1;
      expect_lsn = scan.last_lsn + 1;
      wal->stats_.recovered_records += scan.records;
      wal->stats_.last_lsn = scan.last_lsn;
    } else if (scan.header_first_lsn > wal->next_lsn_) {
      // A checkpoint's fresh empty segment: its header preserves the LSN
      // position of the records it replaced.
      wal->next_lsn_ = scan.header_first_lsn;
      wal->stats_.last_lsn = wal->next_lsn_ - 1;
    }
    wal->segments_.push_back(std::move(seg));
  }
  wal->stats_.segments = wal->segments_.size();
  return wal;
}

Status Wal::CloseTail() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return Status::OK();
}

Status Wal::EnsureTail(size_t incoming_bytes) {
  if (fd_ >= 0) {
    const Segment& tail = segments_.back();
    if (tail.records == 0 ||
        tail.bytes + incoming_bytes <= options_.segment_bytes) {
      return Status::OK();
    }
    LPATH_RETURN_IF_ERROR(CloseTail());
  } else if (!segments_.empty() &&
             (segments_.back().records == 0 ||
              segments_.back().bytes + incoming_bytes <=
                  options_.segment_bytes)) {
    // Reopen the recovered tail for appends at its committed end.
    LPATH_ASSIGN_OR_RETURN(fd_, io::OpenForAppend(segments_.back().path));
    return Status::OK();
  }
  // Rotate: a fresh segment whose header (and directory entry) is durable
  // before any record lands in it.
  Segment seg;
  seg.seq = segments_.empty() ? 1 : segments_.back().seq + 1;
  seg.path = dir_ + "/" + SegmentName(seg.seq);
  WalSegmentHeader header;
  std::memcpy(header.magic, kWalMagic, sizeof(kWalMagic));
  header.version = kWalFormatVersion;
  header.endian = kEndianMarker;
  header.first_lsn = next_lsn_;
  LPATH_ASSIGN_OR_RETURN(const int fd, io::OpenForWrite(seg.path));
  Status st = io::WriteFull(fd, &header, sizeof(header));
  if (st.ok() && options_.sync) st = io::Fsync(fd, seg.path);
  if (st.ok() && options_.sync) st = io::FsyncDir(dir_);
  if (!st.ok()) {
    ::close(fd);
    (void)io::Unlink(seg.path);
    return st;
  }
  seg.bytes = sizeof(header);
  fd_ = fd;
  segments_.push_back(std::move(seg));
  stats_.segments = segments_.size();
  return Status::OK();
}

Result<uint64_t> Wal::Append(std::string_view payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("Wal::Append: empty payload");
  }
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("Wal::Append: payload too large");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) {
    return Status::IOError("WAL " + dir_ +
                           " is wedged by an earlier failed append");
  }
  if (io::CrashRequested("wal:append:start")) {
    return Status::IOError("injected crash: wal:append:start");
  }
  const size_t record_bytes = sizeof(WalRecordHeader) + payload.size();
  LPATH_RETURN_IF_ERROR(EnsureTail(record_bytes));
  Segment& tail = segments_.back();

  WalRecordHeader header;
  header.magic = kWalRecordMagic;
  header.length = static_cast<uint32_t>(payload.size());
  header.lsn = next_lsn_;
  header.checksum = RecordChecksum(header.lsn, header.length, payload);
  // One contiguous buffer, one write: a crash tears the record, never
  // interleaves it.
  std::string buf;
  buf.reserve(record_bytes);
  buf.append(reinterpret_cast<const char*>(&header), sizeof(header));
  buf.append(payload);

  Status st = io::PWriteFull(fd_, buf.data(), buf.size(), tail.bytes);
  if (st.ok() && io::CrashRequested("wal:append:before_sync")) {
    st = Status::IOError("injected crash: wal:append:before_sync");
  }
  if (st.ok() && options_.sync) st = io::Fsync(fd_, tail.path);
  if (!st.ok()) {
    // Uncommitted bytes may have landed; cut them back so the next append
    // (and a post-crash recovery) never sees a record that was not
    // acknowledged. If even the cleanup fails, wedge the log instead of
    // appending after garbage.
    if (!io::TruncateFd(fd_, tail.bytes, tail.path).ok()) wedged_ = true;
    return st;
  }
  if (tail.records == 0) tail.first_lsn = header.lsn;
  tail.last_lsn = header.lsn;
  tail.records += 1;
  tail.bytes += buf.size();
  last_record_bytes_ = buf.size();
  stats_.appends += 1;
  stats_.appended_bytes += buf.size();
  stats_.last_lsn = header.lsn;
  next_lsn_ = header.lsn + 1;
  return header.lsn;
}

Status Wal::Replay(
    uint64_t after_lsn,
    const std::function<Status(uint64_t, std::string_view)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Segment& seg : segments_) {
    if (seg.records == 0 || seg.last_lsn <= after_lsn) continue;
    LPATH_ASSIGN_OR_RETURN(const std::string data, ReadFile(seg.path));
    if (data.size() < seg.bytes) {
      return CorruptionAt(seg.path, "segment shrank after recovery");
    }
    LPATH_ASSIGN_OR_RETURN(
        const ScanResult scan,
        ScanSegment(seg.path, std::string_view(data.data(), seg.bytes),
                    seg.first_lsn, after_lsn, &fn));
    if (scan.torn || scan.records != seg.records) {
      return CorruptionAt(seg.path, "segment changed after recovery");
    }
  }
  return Status::OK();
}

Status Wal::Checkpoint(uint64_t up_to_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  while (dropped < segments_.size()) {
    const Segment& seg = segments_[dropped];
    if (seg.records == 0 || seg.last_lsn > up_to_lsn) break;
    if (dropped + 1 == segments_.size()) LPATH_RETURN_IF_ERROR(CloseTail());
    LPATH_RETURN_IF_ERROR(io::Unlink(seg.path));
    dropped += 1;
  }
  if (dropped == 0) return Status::OK();
  segments_.erase(segments_.begin(),
                  segments_.begin() + static_cast<ptrdiff_t>(dropped));
  stats_.checkpoints += 1;
  if (segments_.empty()) {
    // The rotate half: a fresh empty segment whose header carries
    // next_lsn_, so the LSN position survives a restart even though every
    // record is gone. (EnsureTail also fsyncs the directory, covering the
    // unlinks above.)
    LPATH_RETURN_IF_ERROR(EnsureTail(0));
  } else if (options_.sync) {
    LPATH_RETURN_IF_ERROR(io::FsyncDir(dir_));
  }
  stats_.segments = segments_.size();
  return Status::OK();
}

Status Wal::Rollback(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (segments_.empty() || segments_.back().records == 0 ||
      segments_.back().last_lsn != lsn || lsn + 1 != next_lsn_ ||
      last_record_bytes_ == 0 || fd_ < 0) {
    return Status::InvalidArgument(
        "Wal::Rollback: not the most recent append");
  }
  Segment& tail = segments_.back();
  const uint64_t new_bytes = tail.bytes - last_record_bytes_;
  Status st = io::TruncateFd(fd_, new_bytes, tail.path);
  if (st.ok() && options_.sync) st = io::Fsync(fd_, tail.path);
  if (!st.ok()) {
    wedged_ = true;
    return st;
  }
  tail.bytes = new_bytes;
  tail.records -= 1;
  tail.last_lsn = tail.records == 0 ? 0 : lsn - 1;
  if (tail.records == 0) tail.first_lsn = 0;
  next_lsn_ = lsn;
  stats_.last_lsn = lsn - 1;
  last_record_bytes_ = 0;
  return Status::OK();
}

void Wal::EnsureNextLsnAbove(uint64_t floor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_lsn_ <= floor) {
    next_lsn_ = floor + 1;
    stats_.last_lsn = floor;
  }
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lpath
