// An immutable, shared-ownership bundle of a corpus and the node relation
// built over it — the unit that services and executors hold.
//
// The raw "corpus must outlive the relation" contract of early revisions
// made hot-swapping a rebuilt relation impossible: nothing pinned the old
// corpus while in-flight queries still read it. A CorpusSnapshot fixes the
// lifetime by construction: the snapshot owns the corpus (shared), the
// relation keeps the corpus alive (shared again), and everything reachable
// from a SnapshotPtr is immutable. Publishing a rebuilt snapshot is then a
// single pointer exchange (see db::Database::Swap); queries in flight
// keep their old snapshot alive through their own reference and never
// observe a torn state.

#ifndef LPATHDB_STORAGE_SNAPSHOT_H_
#define LPATHDB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/image.h"
#include "storage/relation.h"
#include "tree/corpus.h"

namespace lpath {

class CorpusSnapshot;

/// How snapshots travel: immutable and shared. Holders (services, executors,
/// in-flight queries) each keep their own reference, so a swap never
/// invalidates what anyone is reading.
using SnapshotPtr = std::shared_ptr<const CorpusSnapshot>;

class CorpusSnapshot {
 public:
  /// Consumes `corpus`, builds the relation over it under `options`, and
  /// wraps both. The returned snapshot is self-contained: no external
  /// lifetime contract remains.
  static Result<SnapshotPtr> Build(Corpus corpus, RelationOptions options = {});

  /// Same, over an already-shared corpus (the Rebuild path — several
  /// snapshots may share one corpus with differently built relations).
  static Result<SnapshotPtr> Build(std::shared_ptr<const Corpus> corpus,
                                   RelationOptions options = {});

  /// Opens a persistent relation image (see storage/image.h): the columns
  /// are served straight out of a read-only mmap owned by the snapshot, so
  /// load cost is O(file size) — no labeling, no sorting. The snapshot's
  /// corpus carries the dictionary but no trees; everything the SQL
  /// executor and services need works unchanged, including hot swap
  /// (in-flight readers keep the mapping alive through their reference).
  static Result<SnapshotPtr> Open(const std::string& path,
                                  ImageOpenOptions options = {});

  /// Writes this snapshot's relation (and interner) as a persistent image.
  Status Save(const std::string& path, ImageSaveOptions options = {},
              ImageSaveStats* stats = nullptr) const;

  /// A new snapshot over the same corpus with a freshly built relation —
  /// the "rebuilt index" input to a hot swap. For an image-backed snapshot
  /// there are no trees to relabel; Rebuild re-opens the image instead
  /// (a fresh mapping picks up a republished file).
  Result<SnapshotPtr> Rebuild() const;
  Result<SnapshotPtr> Rebuild(RelationOptions options) const;

  const Corpus& corpus() const { return *corpus_; }
  const std::shared_ptr<const Corpus>& corpus_ptr() const { return corpus_; }
  const NodeRelation& relation() const { return relation_; }
  const Interner& interner() const { return corpus_->interner(); }
  const RelationOptions& options() const { return options_; }

  /// Process-wide monotonically increasing build number, so two snapshots
  /// over the same corpus are distinguishable (swap tests, shell display).
  uint64_t id() const { return id_; }

  /// True when this snapshot serves a mapped image rather than trees it
  /// can relabel; image_path() is then the file it was opened from.
  bool image_backed() const { return !image_path_.empty(); }
  const std::string& image_path() const { return image_path_; }

 private:
  CorpusSnapshot(std::shared_ptr<const Corpus> corpus, NodeRelation relation,
                 RelationOptions options);

  std::shared_ptr<const Corpus> corpus_;
  NodeRelation relation_;
  RelationOptions options_;
  uint64_t id_;
  std::string image_path_;  ///< empty unless opened via Open()
};

}  // namespace lpath

#endif  // LPATHDB_STORAGE_SNAPSHOT_H_
