// An immutable, shared-ownership bundle of a corpus and the node relation
// built over it — the unit that services and executors hold.
//
// The raw "corpus must outlive the relation" contract of early revisions
// made hot-swapping a rebuilt relation impossible: nothing pinned the old
// corpus while in-flight queries still read it. A CorpusSnapshot fixes the
// lifetime by construction: the snapshot owns the corpus (shared), the
// relation keeps the corpus alive (shared again), and everything reachable
// from a SnapshotPtr is immutable. Publishing a rebuilt snapshot is then a
// single pointer exchange (see db::Database::Swap); queries in flight
// keep their old snapshot alive through their own reference and never
// observe a torn state.
//
// Live corpora: a snapshot is a two-link *chain* — an immutable base
// (built in memory or served from an mmap'd image) plus an optional small
// delta relation holding trees appended since the base was built. Append()
// extends the chain in O(delta): only the delta trees are (re)labeled and
// sorted, the base is shared untouched, and the result is published like
// any other snapshot. Chain tid space: base trees keep their tids, delta
// tree d is addressed as base tree_count() + d; executors run each source
// with its own prepared plan and shift delta hits into chain tids at the
// merge (queries never cross trees, so the union over sources is exactly
// the rebuilt-corpus result). Compact() folds the delta back into one
// relation by linear merge (NodeRelation::Merge — no labeling, no
// sorting), rewriting the backing image in place (tmp + rename) when the
// base is image-backed.

#ifndef LPATHDB_STORAGE_SNAPSHOT_H_
#define LPATHDB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/image.h"
#include "storage/relation.h"
#include "tree/corpus.h"

namespace lpath {

class CorpusSnapshot;

/// How snapshots travel: immutable and shared. Holders (services, executors,
/// in-flight queries) each keep their own reference, so a swap never
/// invalidates what anyone is reading.
using SnapshotPtr = std::shared_ptr<const CorpusSnapshot>;

class CorpusSnapshot {
 public:
  /// Consumes `corpus`, builds the relation over it under `options`, and
  /// wraps both. The returned snapshot is self-contained: no external
  /// lifetime contract remains.
  static Result<SnapshotPtr> Build(Corpus corpus, RelationOptions options = {});

  /// Same, over an already-shared corpus (the Rebuild path — several
  /// snapshots may share one corpus with differently built relations).
  static Result<SnapshotPtr> Build(std::shared_ptr<const Corpus> corpus,
                                   RelationOptions options = {});

  /// Opens a persistent relation image (see storage/image.h): the columns
  /// are served straight out of a read-only mmap owned by the snapshot, so
  /// load cost is O(file size) — no labeling, no sorting. The snapshot's
  /// corpus carries the dictionary but no trees; everything the SQL
  /// executor and services need works unchanged, including hot swap
  /// (in-flight readers keep the mapping alive through their reference).
  static Result<SnapshotPtr> Open(const std::string& path,
                                  ImageOpenOptions options = {});

  /// Writes this snapshot's relation (and interner) as a persistent image.
  /// A chain is merged first (linear, no labeling), so the image always
  /// covers base + delta; opening it yields a delta-free snapshot.
  Status Save(const std::string& path, ImageSaveOptions options = {},
              ImageSaveStats* stats = nullptr) const;

  /// A new snapshot over the same corpus with a freshly built relation —
  /// the "rebuilt index" input to a hot swap. For an image-backed snapshot
  /// there are no trees to relabel; Rebuild re-opens the image instead
  /// (a fresh mapping picks up a republished file). A chain's delta is
  /// rebuilt over the (immutable) delta corpus and re-attached.
  Result<SnapshotPtr> Rebuild() const;
  Result<SnapshotPtr> Rebuild(RelationOptions options) const;

  // --- Snapshot chain -------------------------------------------------------

  /// Extends the chain with `incoming`'s trees (copied; symbols re-interned
  /// into a clone of the chain's dictionary) in O(existing delta + incoming)
  /// work: the base relation is shared untouched — no base tree is ever
  /// relabeled (see NodeRelation::LabeledTreeCount). Returns a new snapshot;
  /// this one is unchanged (readers pinned to it are unaffected).
  Result<SnapshotPtr> Append(const Corpus& incoming) const;

  /// Folds the delta into the base by linear merge (no labeling, no
  /// sorting): the result is the relation a full rebuild over the
  /// concatenated corpora would produce. For an image-backed base the
  /// merged relation is written back to image_path() (crash-safe tmp +
  /// rename + fsync) and re-opened; `save_stats`, when non-null, receives
  /// the per-column compression breakdown of that write, and `save_options`
  /// rides along to it (db::Database stamps the WAL checkpoint LSN there).
  /// InvalidArgument when the chain has no delta.
  Result<SnapshotPtr> Compact(ImageSaveStats* save_stats = nullptr,
                              ImageSaveOptions save_options = {}) const;

  /// True when trees have been appended since the base was built/opened.
  bool has_delta() const { return delta_relation_ != nullptr; }
  /// The delta relation, or nullptr without a delta.
  const NodeRelation* delta_relation() const { return delta_relation_.get(); }
  /// Trees in the base relation alone.
  int32_t base_tree_count() const { return relation_.tree_count(); }
  /// Trees in the delta alone (0 without one).
  int32_t delta_tree_count() const {
    return has_delta() ? delta_relation_->tree_count() : 0;
  }
  /// Chain-wide tree count (base + delta) — the published tid space.
  int32_t tree_count() const {
    return base_tree_count() + delta_tree_count();
  }
  /// Chain-wide element count.
  size_t element_count() const {
    return relation_.element_count() +
           (has_delta() ? delta_relation_->element_count() : 0);
  }
  /// The tree behind a chain-global tid, or nullptr when that source's
  /// corpus is tree-less (image-backed base) or the tid is out of range.
  const Tree* TreeAt(int32_t tid) const;

  const Corpus& corpus() const { return *corpus_; }
  const std::shared_ptr<const Corpus>& corpus_ptr() const { return corpus_; }
  const NodeRelation& relation() const { return relation_; }
  /// The chain-wide dictionary: the delta's (a superset extension of the
  /// base's, sharing every base id) when a delta exists, else the base's.
  const Interner& interner() const {
    return has_delta() ? delta_corpus_->interner() : corpus_->interner();
  }
  const RelationOptions& options() const { return options_; }

  /// Process-wide monotonically increasing build number, so two snapshots
  /// over the same corpus are distinguishable (swap tests, shell display).
  uint64_t id() const { return id_; }

  /// True when this snapshot serves a mapped image rather than trees it
  /// can relabel; image_path() is then the file it was opened from.
  bool image_backed() const { return !image_path_.empty(); }
  const std::string& image_path() const { return image_path_; }

  /// The WAL checkpoint LSN stamped into the backing image (0 for built
  /// snapshots and for images saved without a WAL). Everything the base
  /// relation covers is at or below it; db::Database replays only the
  /// records above it on attach.
  uint64_t base_wal_lsn() const { return base_wal_lsn_; }

 private:
  CorpusSnapshot(std::shared_ptr<const Corpus> corpus, NodeRelation relation,
                 RelationOptions options);

  std::shared_ptr<const Corpus> corpus_;
  NodeRelation relation_;
  RelationOptions options_;
  uint64_t id_;
  std::string image_path_;  ///< empty unless opened via Open()
  uint64_t base_wal_lsn_ = 0;  ///< the opened image's WAL stamp

  // The chain's delta link, both null for a plain (delta-free) snapshot.
  // delta_corpus_ holds only the appended trees (local tids 0..delta-1)
  // and a dictionary cloned from — and extending — the base's, so base
  // symbol ids stay valid in delta rows verbatim.
  std::shared_ptr<const Corpus> delta_corpus_;
  std::shared_ptr<const NodeRelation> delta_relation_;
};

}  // namespace lpath

#endif  // LPATHDB_STORAGE_SNAPSHOT_H_
