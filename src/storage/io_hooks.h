// Injectable fault hooks under every mutating file operation the storage
// layer performs (WAL appends, image saves): tests install an IoHooks to
// drive a write/fsync/rename failure — or a full simulated process crash —
// at any I/O boundary, then uninstall it and reopen from whatever reached
// disk. Production runs carry no hooks: the wrappers in lpath::io are thin
// EINTR-safe syscall loops with a single relaxed atomic load on the hot
// path.
//
// Crash model. `fail_after_ops` counts down across *all* hooked mutating
// operations; when it reaches zero the hooks latch `crashed` and that
// operation — and every later one — fails. Sweeping fail_after_ops =
// 0, 1, 2, ... over a scenario therefore drives a failure at every I/O
// boundary the scenario crosses, without the test naming any of them.
// `fail_write_after_bytes` is a byte budget: the failing write persists
// exactly the budget's remainder first, producing a genuinely torn record
// or image. `fail_fsync`/`fail_rename` simulate transient errors (EIO,
// disk full) without latching: the process continues and must report a
// clean Status. `on_point` is a named-crash-point callback for targeted
// tests (return true to latch `crashed` at that boundary).
//
// What the model does not simulate: loss of *successfully written but not
// yet fsynced* page-cache data on a real power cut. A latched crash makes
// the failing write itself short, but bytes from earlier completed writes
// are assumed durable once the op that covers them fsyncs — the standard
// fsync-discipline contract the WAL's commit protocol is built on.

#ifndef LPATHDB_STORAGE_IO_HOOKS_H_
#define LPATHDB_STORAGE_IO_HOOKS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace lpath {

struct IoHooks {
  /// Mutating ops to allow before latching `crashed` (-1 = unlimited).
  std::atomic<int64_t> fail_after_ops{-1};
  /// Bytes to let through hooked writes before a torn short write latches
  /// `crashed` (-1 = unlimited). The failing write persists the remainder.
  std::atomic<int64_t> fail_write_after_bytes{-1};
  /// Fail every fsync (file and directory) with a transient IOError,
  /// without latching `crashed`.
  std::atomic<bool> fail_fsync{false};
  /// Fail every rename with a transient IOError, without latching.
  std::atomic<bool> fail_rename{false};
  /// Once set (by any trigger above, or manually), every hooked operation
  /// fails until the hooks are uninstalled — the process is "dead".
  std::atomic<bool> crashed{false};
  /// Named crash points (e.g. "wal:append:before_sync"): return true to
  /// latch `crashed` at that boundary. Set before installing; not
  /// synchronized against concurrent mutation.
  std::function<bool(std::string_view point)> on_point;

  // Observability for tests.
  std::atomic<uint64_t> ops{0};            ///< hooked mutating ops seen
  std::atomic<uint64_t> bytes_written{0};  ///< bytes hooked writes persisted
};

/// Installs `hooks` process-wide for its scope (tests only; the storage
/// layer consults at most one hook set at a time).
class ScopedIoHooks {
 public:
  explicit ScopedIoHooks(IoHooks* hooks);
  ~ScopedIoHooks();

  ScopedIoHooks(const ScopedIoHooks&) = delete;
  ScopedIoHooks& operator=(const ScopedIoHooks&) = delete;
};

namespace io {

/// Creates (or truncates) `path` for writing. Caller owns the fd.
Result<int> OpenForWrite(const std::string& path);
/// Opens an existing file for writing without truncation (WAL tail).
Result<int> OpenForAppend(const std::string& path);
Status WriteFull(int fd, const void* data, size_t n);
Status PWriteFull(int fd, const void* data, size_t n, uint64_t offset);
Status Fsync(int fd, const std::string& path);
/// Opens the directory and fsyncs it — persists creates/renames/unlinks
/// of entries within it.
Status FsyncDir(const std::string& dir);
Status Rename(const std::string& from, const std::string& to);
Status TruncateFd(int fd, uint64_t size, const std::string& path);
Status Unlink(const std::string& path);
/// True when an installed hook requests a crash at this named boundary
/// (or has already latched one); the caller must fail the operation.
bool CrashRequested(const char* point);

}  // namespace io
}  // namespace lpath

#endif  // LPATHDB_STORAGE_IO_HOOKS_H_
