#include "storage/io_hooks.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace lpath {

namespace {

std::atomic<IoHooks*> g_hooks{nullptr};

IoHooks* Current() { return g_hooks.load(std::memory_order_acquire); }

Status Injected(const char* what, const std::string& path) {
  return Status::IOError(std::string("injected I/O failure: ") + what + " " +
                         path);
}

/// Per-op gate: counts the op, honors the op-count crash budget, and fails
/// everything once `crashed` has latched. Returns null hooks when none are
/// installed (the common case).
Status BeginOp(IoHooks* hooks, const char* what, const std::string& path) {
  if (hooks == nullptr) return Status::OK();
  if (hooks->crashed.load(std::memory_order_relaxed)) {
    return Injected(what, path);
  }
  hooks->ops.fetch_add(1, std::memory_order_relaxed);
  int64_t budget = hooks->fail_after_ops.load(std::memory_order_relaxed);
  while (budget >= 0) {
    if (budget == 0) {
      hooks->crashed.store(true, std::memory_order_relaxed);
      return Injected(what, path);
    }
    if (hooks->fail_after_ops.compare_exchange_weak(
            budget, budget - 1, std::memory_order_relaxed)) {
      break;
    }
  }
  return Status::OK();
}

/// EINTR-safe full write at the fd's current offset (offset < 0) or via
/// pwrite at `offset`.
Status RawWrite(int fd, const char* p, size_t n, int64_t offset,
                const std::string& path) {
  while (n > 0) {
    const ssize_t wrote =
        offset < 0 ? ::write(fd, p, n)
                   : ::pwrite(fd, p, n, static_cast<off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write " + path + ": " + std::strerror(errno));
    }
    p += wrote;
    n -= static_cast<size_t>(wrote);
    if (offset >= 0) offset += wrote;
  }
  return Status::OK();
}

/// The shared write path: op gate, then the torn-write byte budget. A
/// budget-exceeded write persists exactly the remaining budget before
/// latching `crashed` — the genuinely torn record the WAL recovery tests
/// need on disk.
Status HookedWrite(int fd, const void* data, size_t n, int64_t offset,
                   const std::string& path) {
  IoHooks* hooks = Current();
  LPATH_RETURN_IF_ERROR(BeginOp(hooks, "write", path));
  const char* p = static_cast<const char*>(data);
  if (hooks != nullptr) {
    int64_t budget =
        hooks->fail_write_after_bytes.load(std::memory_order_relaxed);
    while (budget >= 0) {
      if (static_cast<uint64_t>(budget) < n) {
        if (!hooks->fail_write_after_bytes.compare_exchange_weak(
                budget, 0, std::memory_order_relaxed)) {
          continue;
        }
        // Torn: persist the budget's remainder, then die.
        const size_t partial = static_cast<size_t>(budget);
        (void)RawWrite(fd, p, partial, offset, path);
        hooks->bytes_written.fetch_add(partial, std::memory_order_relaxed);
        hooks->crashed.store(true, std::memory_order_relaxed);
        return Injected("torn write", path);
      }
      if (hooks->fail_write_after_bytes.compare_exchange_weak(
              budget, budget - static_cast<int64_t>(n),
              std::memory_order_relaxed)) {
        break;
      }
    }
    hooks->bytes_written.fetch_add(n, std::memory_order_relaxed);
  }
  return RawWrite(fd, p, n, offset, path);
}

}  // namespace

ScopedIoHooks::ScopedIoHooks(IoHooks* hooks) {
  g_hooks.store(hooks, std::memory_order_release);
}

ScopedIoHooks::~ScopedIoHooks() {
  g_hooks.store(nullptr, std::memory_order_release);
}

namespace io {

Result<int> OpenForWrite(const std::string& path) {
  LPATH_RETURN_IF_ERROR(BeginOp(Current(), "open", path));
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  return fd;
}

Result<int> OpenForAppend(const std::string& path) {
  LPATH_RETURN_IF_ERROR(BeginOp(Current(), "open", path));
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  return fd;
}

Status WriteFull(int fd, const void* data, size_t n) {
  return n == 0 ? Status::OK() : HookedWrite(fd, data, n, -1, "fd");
}

Status PWriteFull(int fd, const void* data, size_t n, uint64_t offset) {
  return n == 0 ? Status::OK()
                : HookedWrite(fd, data, n, static_cast<int64_t>(offset),
                              "fd");
}

Status Fsync(int fd, const std::string& path) {
  IoHooks* hooks = Current();
  LPATH_RETURN_IF_ERROR(BeginOp(hooks, "fsync", path));
  if (hooks != nullptr && hooks->fail_fsync.load(std::memory_order_relaxed)) {
    return Injected("fsync", path);
  }
  if (::fsync(fd) != 0) {
    return Status::IOError("fsync " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  IoHooks* hooks = Current();
  LPATH_RETURN_IF_ERROR(BeginOp(hooks, "fsync-dir", dir));
  if (hooks != nullptr && hooks->fail_fsync.load(std::memory_order_relaxed)) {
    return Injected("fsync-dir", dir);
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::IOError("cannot open directory " + dir + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(dfd);
  const int err = errno;
  ::close(dfd);
  if (rc != 0) {
    return Status::IOError("fsync directory " + dir + ": " +
                           std::strerror(err));
  }
  return Status::OK();
}

Status Rename(const std::string& from, const std::string& to) {
  IoHooks* hooks = Current();
  LPATH_RETURN_IF_ERROR(BeginOp(hooks, "rename", from));
  if (hooks != nullptr && hooks->fail_rename.load(std::memory_order_relaxed)) {
    return Injected("rename", from);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("cannot rename " + from + " to " + to + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status TruncateFd(int fd, uint64_t size, const std::string& path) {
  LPATH_RETURN_IF_ERROR(BeginOp(Current(), "truncate", path));
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    return Status::IOError("truncate " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status Unlink(const std::string& path) {
  LPATH_RETURN_IF_ERROR(BeginOp(Current(), "unlink", path));
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("cannot remove " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

bool CrashRequested(const char* point) {
  IoHooks* hooks = Current();
  if (hooks == nullptr) return false;
  if (hooks->crashed.load(std::memory_order_relaxed)) return true;
  if (hooks->on_point && hooks->on_point(point)) {
    hooks->crashed.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace io
}  // namespace lpath
