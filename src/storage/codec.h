// Lightweight column compression for the relation's persistent images and
// the vectorized executor, in the style of Abadi-style column codecs:
// cheap to decode (a handful of shifts and adds per value), block-oriented
// so decode fuses into a batch scan, and picked per column by measured
// encoded size rather than by type.
//
//   kRaw     — the column's verbatim 32-bit words (v1 images, incompressible
//              columns). Not represented as encoded bytes; a raw section is
//              served straight out of the file mapping.
//   kBitPack — frame-of-reference + bit packing per 1024-value block: each
//              block stores its minimum and the bit width of (value - min),
//              then the packed residuals. Dense ascending columns (left,
//              right, id, pid, depth — the interval labels) pack to a few
//              bits per value. Decode is branch-free.
//   kRle     — run-length over the 32-bit words as (exclusive end, value)
//              pairs. The name column is a handful of runs by construction
//              (the relation is clustered by name); the value column is
//              kNoSymbol across every element row. Runs are binary
//              searchable, so range decode is O(log runs + n).
//
// All codecs are value-preserving over the raw 32-bit patterns (signed
// columns round-trip bit-exactly through unsigned arithmetic), and
// Validate() bounds-checks an untrusted encoded payload before any decode
// touches it — the corruption battery relies on that.

#ifndef LPATHDB_STORAGE_CODEC_H_
#define LPATHDB_STORAGE_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace lpath {

/// Per-column (per image section) encoding tag; serialized in v2 images.
enum class ColumnEncoding : uint32_t {
  kRaw = 0,
  kBitPack = 1,
  kRle = 2,
};

const char* ColumnEncodingName(ColumnEncoding encoding);

/// Values per bit-packed block; also the batch size of the vectorized
/// executor, so one decoded block feeds exactly one selection-vector chunk.
inline constexpr uint64_t kCodecBlockValues = 1024;

/// A view of one encoded column — typically straight into a read-only
/// image mapping. `bytes` is empty (and the view inert) for kRaw columns,
/// which are served as verbatim arrays instead.
struct EncodedColumnView {
  ColumnEncoding encoding = ColumnEncoding::kRaw;
  uint64_t count = 0;              ///< logical number of 32-bit values
  std::span<const uint8_t> bytes;  ///< encoded payload (8-byte aligned)

  /// True when there is a compressed payload to decode from.
  bool encoded() const {
    return encoding != ColumnEncoding::kRaw && count > 0;
  }
};

/// Stateless encoder/decoder for 32-bit columns. All entry points treat
/// values as raw uint32 bit patterns; int32 columns reinterpret in and out.
class ColumnCodec {
 public:
  /// Encodes `values` under `encoding` (must not be kRaw). The returned
  /// buffer's layout is what EncodedColumnView::bytes expects and is a
  /// multiple of 8 bytes.
  static std::vector<uint8_t> Encode(std::span<const uint32_t> values,
                                     ColumnEncoding encoding);

  /// Encoded size in bytes of `values` under `encoding` without
  /// materializing the buffer (kRaw reports the verbatim array size).
  static uint64_t EncodedBytes(std::span<const uint32_t> values,
                               ColumnEncoding encoding);

  /// The cheapest encoding for `values` by encoded size; kRaw unless a
  /// codec is strictly smaller than the verbatim array.
  static ColumnEncoding PickEncoding(std::span<const uint32_t> values);

  /// Structural validation of an untrusted payload: block descriptors in
  /// bounds, widths <= 32, run ends strictly increasing and summing to
  /// `count`, total size exact. After an OK here, every Decode*() below is
  /// memory-safe over the view.
  static Status Validate(const EncodedColumnView& column);

  /// Decodes the whole column; `out` must hold `column.count` values.
  static void Decode(const EncodedColumnView& column, uint32_t* out);

  /// Decodes values [begin, begin + n) — the batch-scan entry point. The
  /// caller keeps n <= kCodecBlockValues for one chunk, but any range
  /// within the column is legal. Returns the number of codec blocks (or
  /// runs) touched, for the executor's decode counters.
  static uint64_t DecodeRange(const EncodedColumnView& column, uint64_t begin,
                              uint64_t n, uint32_t* out);
};

}  // namespace lpath

#endif  // LPATHDB_STORAGE_CODEC_H_
