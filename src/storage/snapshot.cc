#include "storage/snapshot.h"

#include <atomic>
#include <utility>

#include "storage/image.h"

namespace lpath {

namespace {

uint64_t NextSnapshotId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

CorpusSnapshot::CorpusSnapshot(std::shared_ptr<const Corpus> corpus,
                               NodeRelation relation, RelationOptions options)
    : corpus_(std::move(corpus)),
      relation_(std::move(relation)),
      options_(options),
      id_(NextSnapshotId()) {}

Result<SnapshotPtr> CorpusSnapshot::Build(Corpus corpus,
                                          RelationOptions options) {
  return Build(std::make_shared<const Corpus>(std::move(corpus)), options);
}

Result<SnapshotPtr> CorpusSnapshot::Build(std::shared_ptr<const Corpus> corpus,
                                          RelationOptions options) {
  if (corpus == nullptr) {
    return Status::InvalidArgument("CorpusSnapshot::Build: null corpus");
  }
  LPATH_ASSIGN_OR_RETURN(NodeRelation relation,
                         NodeRelation::Build(corpus, options));
  return SnapshotPtr(
      new CorpusSnapshot(std::move(corpus), std::move(relation), options));
}

Result<SnapshotPtr> CorpusSnapshot::Open(const std::string& path,
                                         ImageOpenOptions options) {
  LPATH_ASSIGN_OR_RETURN(NodeRelation relation, ImageIO::Open(path, options));
  RelationOptions rel_options;
  rel_options.scheme = relation.scheme();
  // Copied out first: evaluation order must not move the relation away
  // before its corpus pointer is read.
  std::shared_ptr<const Corpus> corpus = relation.corpus_ptr();
  auto* snapshot =
      new CorpusSnapshot(std::move(corpus), std::move(relation), rel_options);
  snapshot->image_path_ = path;
  // Surface the image's WAL stamp so the database replays only records the
  // image does not already cover. Best effort on purpose: the image just
  // opened and validated above, so a read failure here means a pre-stamp
  // (or concurrently republished) file — both read as 0, i.e. replay all.
  if (Result<uint64_t> lsn = ImageIO::ReadWalLsn(path); lsn.ok()) {
    snapshot->base_wal_lsn_ = lsn.value();
  }
  return SnapshotPtr(snapshot);
}

namespace {

/// A fresh corpus carrying a clone of `interner` and no trees — the owner
/// shape NodeRelation::Merge needs when the merged trees themselves are not
/// materialized (image-backed compaction, chain Save).
std::shared_ptr<Corpus> CorpusWithDictionary(const Interner& interner) {
  auto corpus = std::make_shared<Corpus>();
  corpus->ResetInterner(interner.Clone());
  return corpus;
}

}  // namespace

Status CorpusSnapshot::Save(const std::string& path, ImageSaveOptions options,
                            ImageSaveStats* stats) const {
  if (!has_delta()) return ImageIO::Save(relation_, path, options, stats);
  // The image format holds one relation; merge the chain first (linear, no
  // labeling) so the file covers every published tree.
  LPATH_ASSIGN_OR_RETURN(
      NodeRelation merged,
      NodeRelation::Merge(relation_, *delta_relation_,
                          CorpusWithDictionary(delta_corpus_->interner())));
  return ImageIO::Save(merged, path, options, stats);
}

Result<SnapshotPtr> CorpusSnapshot::Rebuild() const {
  return Rebuild(options_);
}

Result<SnapshotPtr> CorpusSnapshot::Rebuild(RelationOptions options) const {
  // An image-backed snapshot has no trees to relabel: re-open the image
  // (its labeling is baked in; `options` cannot change it).
  LPATH_ASSIGN_OR_RETURN(SnapshotPtr base, image_backed()
                                               ? Open(image_path_)
                                               : Build(corpus_, options));
  if (!has_delta()) return base;
  // Carry the chain: rebuild the delta relation over the immutable delta
  // corpus under the (possibly image-baked) base scheme and re-attach it.
  LPATH_ASSIGN_OR_RETURN(NodeRelation drel,
                         NodeRelation::Build(delta_corpus_, base->options_));
  auto* chained =
      new CorpusSnapshot(base->corpus_, base->relation_, base->options_);
  chained->image_path_ = base->image_path_;
  chained->base_wal_lsn_ = base->base_wal_lsn_;
  chained->delta_corpus_ = delta_corpus_;
  chained->delta_relation_ =
      std::make_shared<const NodeRelation>(std::move(drel));
  return SnapshotPtr(chained);
}

Result<SnapshotPtr> CorpusSnapshot::Append(const Corpus& incoming) const {
  if (incoming.empty()) {
    return Status::InvalidArgument("CorpusSnapshot::Append: empty corpus");
  }
  // The new delta corpus: a clone-extension of the chain's dictionary (so
  // base ids stay valid and new strings take fresh ids), the existing delta
  // trees verbatim, then the incoming trees re-interned. Work is
  // O(existing delta + incoming); the base is untouched.
  auto delta = std::make_shared<Corpus>();
  delta->ResetInterner(interner().Clone());
  if (has_delta()) {
    for (size_t i = 0; i < delta_corpus_->size(); ++i) {
      delta->Add(delta_corpus_->tree(static_cast<TreeId>(i)));
    }
  }
  delta->AppendFrom(incoming);
  LPATH_ASSIGN_OR_RETURN(
      NodeRelation drel,
      NodeRelation::Build(std::shared_ptr<const Corpus>(delta), options_));
  auto* chained = new CorpusSnapshot(corpus_, relation_, options_);
  chained->image_path_ = image_path_;
  chained->base_wal_lsn_ = base_wal_lsn_;
  chained->delta_corpus_ = std::move(delta);
  chained->delta_relation_ =
      std::make_shared<const NodeRelation>(std::move(drel));
  return SnapshotPtr(chained);
}

Result<SnapshotPtr> CorpusSnapshot::Compact(
    ImageSaveStats* save_stats, ImageSaveOptions save_options) const {
  if (!has_delta()) {
    return Status::InvalidArgument("CorpusSnapshot::Compact: no delta");
  }
  // The merged corpus: the delta's dictionary (a superset of the base's),
  // plus the concatenated trees when the base holds trees. An image-backed
  // base is tree-less and the compaction stays tree-less — exactly what
  // re-opening the rewritten image serves anyway.
  std::shared_ptr<Corpus> merged =
      CorpusWithDictionary(delta_corpus_->interner());
  if (!image_backed()) {
    for (size_t i = 0; i < corpus_->size(); ++i) {
      merged->Add(corpus_->tree(static_cast<TreeId>(i)));
    }
    for (size_t i = 0; i < delta_corpus_->size(); ++i) {
      merged->Add(delta_corpus_->tree(static_cast<TreeId>(i)));
    }
  }
  LPATH_ASSIGN_OR_RETURN(
      NodeRelation mrel,
      NodeRelation::Merge(relation_, *delta_relation_, merged));
  if (image_backed()) {
    // Crash safety rides on ImageIO::Save's unique-tmp + fsync + rename:
    // a reader (or a crash) mid-compaction sees either the old image or
    // the new one, never a torn file.
    LPATH_RETURN_IF_ERROR(
        ImageIO::Save(mrel, image_path_, save_options, save_stats));
    return Open(image_path_);
  }
  auto* snapshot = new CorpusSnapshot(std::move(merged), std::move(mrel),
                                      options_);
  return SnapshotPtr(snapshot);
}

const Tree* CorpusSnapshot::TreeAt(int32_t tid) const {
  const int32_t base_trees = base_tree_count();
  if (tid < 0) return nullptr;
  if (tid < base_trees) {
    // An image-backed base serves a tree-less corpus; callers that need
    // the bracketed tree (printing, navigation) get a null.
    if (static_cast<size_t>(tid) >= corpus_->size()) return nullptr;
    return &corpus_->tree(tid);
  }
  const int32_t local = tid - base_trees;
  if (!has_delta() ||
      static_cast<size_t>(local) >= delta_corpus_->size()) {
    return nullptr;
  }
  return &delta_corpus_->tree(local);
}

}  // namespace lpath
