#include "storage/snapshot.h"

#include <atomic>
#include <utility>

#include "storage/image.h"

namespace lpath {

namespace {

uint64_t NextSnapshotId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

CorpusSnapshot::CorpusSnapshot(std::shared_ptr<const Corpus> corpus,
                               NodeRelation relation, RelationOptions options)
    : corpus_(std::move(corpus)),
      relation_(std::move(relation)),
      options_(options),
      id_(NextSnapshotId()) {}

Result<SnapshotPtr> CorpusSnapshot::Build(Corpus corpus,
                                          RelationOptions options) {
  return Build(std::make_shared<const Corpus>(std::move(corpus)), options);
}

Result<SnapshotPtr> CorpusSnapshot::Build(std::shared_ptr<const Corpus> corpus,
                                          RelationOptions options) {
  if (corpus == nullptr) {
    return Status::InvalidArgument("CorpusSnapshot::Build: null corpus");
  }
  LPATH_ASSIGN_OR_RETURN(NodeRelation relation,
                         NodeRelation::Build(corpus, options));
  return SnapshotPtr(
      new CorpusSnapshot(std::move(corpus), std::move(relation), options));
}

Result<SnapshotPtr> CorpusSnapshot::Open(const std::string& path,
                                         ImageOpenOptions options) {
  LPATH_ASSIGN_OR_RETURN(NodeRelation relation, ImageIO::Open(path, options));
  RelationOptions rel_options;
  rel_options.scheme = relation.scheme();
  // Copied out first: evaluation order must not move the relation away
  // before its corpus pointer is read.
  std::shared_ptr<const Corpus> corpus = relation.corpus_ptr();
  auto* snapshot =
      new CorpusSnapshot(std::move(corpus), std::move(relation), rel_options);
  snapshot->image_path_ = path;
  return SnapshotPtr(snapshot);
}

Status CorpusSnapshot::Save(const std::string& path, ImageSaveOptions options,
                            ImageSaveStats* stats) const {
  return ImageIO::Save(relation_, path, options, stats);
}

Result<SnapshotPtr> CorpusSnapshot::Rebuild() const {
  return Rebuild(options_);
}

Result<SnapshotPtr> CorpusSnapshot::Rebuild(RelationOptions options) const {
  // An image-backed snapshot has no trees to relabel: re-open the image
  // (its labeling is baked in; `options` cannot change it).
  if (image_backed()) return Open(image_path_);
  return Build(corpus_, options);
}

}  // namespace lpath
