#include "storage/image.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "storage/io_hooks.h"
#include "tree/corpus.h"

namespace lpath {

namespace {

// Columns are written as raw arrays; the layout must be exactly what the
// accessors read back out of the mapping.
static_assert(std::is_trivially_copyable_v<RowRange> && sizeof(RowRange) == 8,
              "RowRange is serialized as two packed uint32 words");
static_assert(sizeof(Symbol) == 4 && sizeof(Row) == 4,
              "symbol/row ids are serialized as uint32 words");

/// Detects a foreign-endian (or otherwise bit-incompatible) writer.
constexpr uint32_t kEndianMarker = 0x01020304u;

/// Section payload alignment: every offset is a multiple of 8, so uint64
/// sections read directly from the page-aligned mapping.
constexpr uint64_t kSectionAlign = 8;

/// One section per column/index array, in this fixed order.
enum SectionKind : uint32_t {
  kSecTid = 1,
  kSecLeft,
  kSecRight,
  kSecDepth,
  kSecId,
  kSecPid,
  kSecName,
  kSecValue,
  kSecKind,
  kSecRuns,
  kSecByRight,
  kSecByPid,
  kSecValueIndex,
  kSecValueOffsets,
  kSecTreeRowPrefix,
  kSecTreeBase,
  kSecElemRow,
  kSecAttrOffsets,
  kSecAttrRows,
  kSecInternerOffsets,
  kSecInternerBlob,
};
constexpr uint32_t kSectionCount = 21;

/// The one place the section order and element widths are defined; Save
/// emits sections in this order and Open validates against it, so the two
/// cannot drift apart (the per-section *count* invariants are semantic and
/// live in Open).
struct SectionSpec {
  uint32_t kind;
  uint32_t elem_size;
};

/// Positions within kSectionSpecs / the on-disk section table. Everything
/// that addresses a section by position uses these names, so inserting or
/// reordering sections is a compile-visible change, not a renumbering hunt.
enum SectionIndex : uint32_t {
  kIdxTid = 0,
  kIdxLeft,
  kIdxRight,
  kIdxDepth,
  kIdxId,
  kIdxPid,
  kIdxName,
  kIdxValue,
  kIdxKind,
  kIdxRuns,
  kIdxByRight,
  kIdxByPid,
  kIdxValueIndex,
  kIdxValueOffsets,
  kIdxTreeRowPrefix,
  kIdxTreeBase,
  kIdxElemRow,
  kIdxAttrOffsets,
  kIdxAttrRows,
  kIdxInternerOffsets,
  kIdxInternerBlob,
};
static_assert(kIdxInternerBlob + 1 == kSectionCount);
constexpr SectionSpec kSectionSpecs[kSectionCount] = {
    {kSecTid, sizeof(int32_t)},
    {kSecLeft, sizeof(int32_t)},
    {kSecRight, sizeof(int32_t)},
    {kSecDepth, sizeof(int32_t)},
    {kSecId, sizeof(int32_t)},
    {kSecPid, sizeof(int32_t)},
    {kSecName, sizeof(Symbol)},
    {kSecValue, sizeof(Symbol)},
    {kSecKind, sizeof(uint8_t)},
    {kSecRuns, sizeof(RowRange)},
    {kSecByRight, sizeof(Row)},
    {kSecByPid, sizeof(Row)},
    {kSecValueIndex, sizeof(Row)},
    {kSecValueOffsets, sizeof(uint32_t)},
    {kSecTreeRowPrefix, sizeof(uint64_t)},
    {kSecTreeBase, sizeof(uint32_t)},
    {kSecElemRow, sizeof(Row)},
    {kSecAttrOffsets, sizeof(uint32_t)},
    {kSecAttrRows, sizeof(Row)},
    {kSecInternerOffsets, sizeof(uint64_t)},
    {kSecInternerBlob, sizeof(char)},
};

struct ImageHeader {
  char magic[8];
  uint32_t version = 0;
  uint32_t endian = 0;
  uint32_t scheme = 0;
  uint32_t section_count = 0;
  uint32_t tree_count = 0;
  /// WAL checkpoint stamp (reserved and written as 0 before WAL support;
  /// Open ignores it, ReadWalLsn surfaces it). See ImageSaveOptions.
  uint32_t wal_lsn = 0;
  uint64_t row_count = 0;
  uint64_t element_count = 0;
  uint64_t symbol_count = 0;  ///< interner size, excluding reserved id 0
  uint64_t file_size = 0;
  uint64_t payload_checksum = 0;  ///< FNV-1a64 over [sizeof(header), file_size)
  uint64_t header_checksum = 0;   ///< FNV-1a64 over the header, this field = 0
};
static_assert(std::is_trivially_copyable_v<ImageHeader>);

struct SectionEntry {
  uint32_t kind = 0;
  uint32_t elem_size = 0;
  uint64_t offset = 0;  ///< absolute byte offset, kSectionAlign-aligned
  uint64_t count = 0;   ///< number of elements
};
static_assert(std::is_trivially_copyable_v<SectionEntry> &&
              sizeof(SectionEntry) == 24);

/// v2 table entry: v1's fields plus the column encoding tag and the byte
/// count of the payload as stored (== count * elem_size for raw sections).
struct SectionEntryV2 {
  uint32_t kind = 0;
  uint32_t elem_size = 0;
  uint64_t offset = 0;
  uint64_t count = 0;        ///< logical element count (decoded)
  uint32_t encoding = 0;     ///< ColumnEncoding
  uint32_t reserved = 0;
  uint64_t stored_bytes = 0; ///< payload bytes at `offset`
};
static_assert(std::is_trivially_copyable_v<SectionEntryV2> &&
              sizeof(SectionEntryV2) == 40);

// The first kRelColEncodable sections are exactly the RelCol row columns —
// the only sections v2 may store encoded.
static_assert(kIdxValue + 1 == kRelColEncodable);
static_assert(static_cast<uint32_t>(RelCol::kTid) == kIdxTid &&
              static_cast<uint32_t>(RelCol::kValue) == kIdxValue);

constexpr const char* kColumnNames[kRelColEncodable] = {
    "tid", "left", "right", "depth", "id", "pid", "name", "value"};

/// Incremental FNV-1a (64-bit): simple, dependency-free, and byte-order
/// independent — adequate for catching truncation and bit corruption.
class Fnv64 {
 public:
  void Update(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

uint64_t AlignUp(uint64_t n) {
  return (n + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

/// RAII read-only mapping; owns the pages a mapped relation serves from.
/// Held alive through NodeRelation::backing_ (and so by the snapshot and
/// every in-flight query), which is what makes hot-swapping mapped
/// snapshots safe: munmap happens only after the last reader drops out.
class MappedFile {
 public:
  static Result<std::shared_ptr<MappedFile>> Map(const std::string& path) {
    // O_NONBLOCK: opening a FIFO must error out, not block waiting for a
    // writer; it has no effect on regular files, the only kind accepted.
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_NONBLOCK);
    if (fd < 0) {
      return Status::IOError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot stat " + path + ": " +
                             std::strerror(err));
    }
    if (!S_ISREG(st.st_mode)) {
      ::close(fd);
      return Status::InvalidArgument("not a regular file: " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return Status::Corruption("empty image file: " + path);
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // The mapping keeps its own reference to the pages.
    if (base == MAP_FAILED) {
      return Status::IOError("cannot mmap " + path + ": " +
                             std::strerror(errno));
    }
    return std::make_shared<MappedFile>(base, size);
  }

  MappedFile(void* base, size_t size) : base_(base), size_(size) {}
  ~MappedFile() { ::munmap(base_, size_); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const {
    return static_cast<const unsigned char*>(base_);
  }
  size_t size() const { return size_; }

 private:
  void* base_;
  size_t size_;
};

/// Backing of a relation opened from an image: the mapping plus the
/// decode arena for columns a v2 image stores encoded (all-empty for raw
/// columns and v1 images).
struct MappedBacking {
  std::shared_ptr<MappedFile> file;
  std::array<std::vector<uint32_t>, kRelColEncodable> decoded;
};

/// Image writer over a raw descriptor that checksums everything after the
/// header as it goes (padding included, so the digest is a function of the
/// file bytes). All writes go through lpath::io, so the fault-injection
/// hooks see every byte Save persists.
class ImageWriter {
 public:
  explicit ImageWriter(int fd) : fd_(fd) {}

  Status WriteRaw(const void* data, size_t n) {
    return io::WriteFull(fd_, data, n);
  }

  Status WritePayload(const void* data, size_t n) {
    LPATH_RETURN_IF_ERROR(WriteRaw(data, n));
    fnv_.Update(data, n);
    offset_ += n;
    return Status::OK();
  }

  Status PadToAlignment() {
    static const unsigned char kZeros[kSectionAlign] = {};
    const uint64_t padded = AlignUp(offset_);
    return WritePayload(kZeros, static_cast<size_t>(padded - offset_));
  }

  uint64_t offset() const { return offset_; }
  uint64_t digest() const { return fnv_.digest(); }

 private:
  int fd_;
  Fnv64 fnv_;
  uint64_t offset_ = sizeof(ImageHeader);  ///< payload starts after header
};

uint64_t HeaderChecksum(ImageHeader header) {
  header.header_checksum = 0;
  Fnv64 fnv;
  fnv.Update(&header, sizeof(header));
  return fnv.digest();
}

}  // namespace

bool LooksLikeImageFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) return false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof(kImageMagic)] = {};
  const size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return got == sizeof(magic) &&
         std::memcmp(magic, kImageMagic, sizeof(magic)) == 0;
}

Status ImageIO::Save(const NodeRelation& rel, const std::string& path,
                     ImageSaveOptions options, ImageSaveStats* stats) {
  if (options.format_version < kImageMinFormatVersion ||
      options.format_version > kImageFormatVersion) {
    return Status::InvalidArgument("cannot write image format version " +
                                   std::to_string(options.format_version));
  }
  // The WAL stamp lives in the header's 32-bit reserved slot; an LSN past
  // that is ~4 billion ingested batches on one corpus — refuse loudly
  // rather than stamp a truncated value and silently re-replay on open.
  if (options.wal_lsn > UINT32_MAX) {
    return Status::InvalidArgument("WAL checkpoint LSN " +
                                   std::to_string(options.wal_lsn) +
                                   " exceeds the image header's stamp field");
  }
  const bool v2 = options.format_version >= 2;
  const Interner& interner = rel.interner();
  const uint64_t symbol_count = interner.size();

  // Interner table: offsets (symbol_count + 1) into a concatenated blob,
  // symbols in id order so re-interning on open reproduces the ids.
  std::vector<uint64_t> interner_offsets;
  interner_offsets.reserve(symbol_count + 1);
  std::string blob;
  interner_offsets.push_back(0);
  for (Symbol s = 1; s <= symbol_count; ++s) {
    blob.append(interner.name(s));
    interner_offsets.push_back(blob.size());
  }

  // Section payloads, positionally matched to kSectionSpecs. Raw by
  // default; the pass below may swap a row column for its encoded bytes.
  struct Section {
    const void* data;
    uint64_t count;         ///< logical element count
    uint64_t stored_bytes;  ///< bytes to write
    uint32_t encoding;      ///< ColumnEncoding
  };
  Section sections[kSectionCount];
  {
    const struct {
      const void* data;
      uint64_t count;
    } raw[kSectionCount] = {
        {rel.tid_.data(), rel.tid_.size()},
        {rel.left_.data(), rel.left_.size()},
        {rel.right_.data(), rel.right_.size()},
        {rel.depth_.data(), rel.depth_.size()},
        {rel.id_.data(), rel.id_.size()},
        {rel.pid_.data(), rel.pid_.size()},
        {rel.name_.data(), rel.name_.size()},
        {rel.value_.data(), rel.value_.size()},
        {rel.kind_.data(), rel.kind_.size()},
        {rel.runs_.data(), rel.runs_.size()},
        {rel.by_right_.data(), rel.by_right_.size()},
        {rel.by_pid_.data(), rel.by_pid_.size()},
        {rel.value_index_.data(), rel.value_index_.size()},
        {rel.value_offsets_.data(), rel.value_offsets_.size()},
        {rel.tree_row_prefix_.data(), rel.tree_row_prefix_.size()},
        {rel.tree_base_.data(), rel.tree_base_.size()},
        {rel.elem_row_.data(), rel.elem_row_.size()},
        {rel.attr_offsets_.data(), rel.attr_offsets_.size()},
        {rel.attr_rows_.data(), rel.attr_rows_.size()},
        {interner_offsets.data(), interner_offsets.size()},
        {blob.data(), blob.size()},
    };
    for (uint32_t i = 0; i < kSectionCount; ++i) {
      sections[i] = Section{raw[i].data, raw[i].count,
                            raw[i].count * kSectionSpecs[i].elem_size, 0};
    }
  }

  // Pick the cheapest encoding per row column; buffers stay alive until
  // the write below. A codec must beat the verbatim array strictly, so
  // incompressible columns remain raw (and are served straight from the
  // mapping on open).
  std::vector<std::vector<uint8_t>> encoded_payloads;
  if (v2 && options.encoding == ImageEncoding::kAuto) {
    for (uint32_t i = 0; i < kRelColEncodable; ++i) {
      const std::span<const uint32_t> values(
          static_cast<const uint32_t*>(sections[i].data), sections[i].count);
      const ColumnEncoding pick = ColumnCodec::PickEncoding(values);
      if (pick == ColumnEncoding::kRaw) continue;
      encoded_payloads.push_back(ColumnCodec::Encode(values, pick));
      const std::vector<uint8_t>& buf = encoded_payloads.back();
      sections[i].data = buf.data();
      sections[i].stored_bytes = buf.size();
      sections[i].encoding = static_cast<uint32_t>(pick);
    }
  }

  // Lay the sections out after the header + table, each 8-byte aligned.
  // (raw_file_bytes re-runs the same layout with verbatim sizes, so the
  // stats' baseline accounts for alignment and the table exactly.)
  const uint64_t entry_size =
      v2 ? sizeof(SectionEntryV2) : sizeof(SectionEntry);
  SectionEntryV2 table[kSectionCount];
  uint64_t offset = sizeof(ImageHeader) + kSectionCount * entry_size;
  uint64_t raw_file_bytes = offset;
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    offset = AlignUp(offset);
    table[i] =
        SectionEntryV2{kSectionSpecs[i].kind,   kSectionSpecs[i].elem_size,
                       offset,                  sections[i].count,
                       sections[i].encoding,    0,
                       sections[i].stored_bytes};
    offset += sections[i].stored_bytes;
    raw_file_bytes = AlignUp(raw_file_bytes) +
                     sections[i].count * kSectionSpecs[i].elem_size;
  }
  const uint64_t file_size = offset;

  if (stats != nullptr) {
    stats->columns.clear();
    for (uint32_t i = 0; i < kRelColEncodable; ++i) {
      stats->columns.push_back(ImageSaveStats::Column{
          kColumnNames[i], static_cast<ColumnEncoding>(sections[i].encoding),
          sections[i].count * kSectionSpecs[i].elem_size,
          sections[i].stored_bytes});
    }
    stats->file_bytes = file_size;
    stats->raw_file_bytes = raw_file_bytes;
  }

  ImageHeader header;
  std::memcpy(header.magic, kImageMagic, sizeof(kImageMagic));
  header.version = options.format_version;
  header.endian = kEndianMarker;
  header.scheme = static_cast<uint32_t>(rel.scheme());
  header.section_count = kSectionCount;
  header.tree_count = static_cast<uint32_t>(rel.tree_count());
  header.wal_lsn = static_cast<uint32_t>(options.wal_lsn);
  header.row_count = rel.row_count();
  header.element_count = rel.element_count();
  header.symbol_count = symbol_count;
  header.file_size = file_size;

  // Write to a per-call-unique sibling temp file and rename into place, so
  // readers either see the previous image or the complete new one, and two
  // concurrent Saves to the same path never interleave in one temp file
  // (last rename wins with an intact image either way).
  static std::atomic<uint64_t> save_serial{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(save_serial.fetch_add(1));
  LPATH_ASSIGN_OR_RETURN(const int fd, io::OpenForWrite(tmp));
  // Any failure before the rename publishes leaves the target untouched;
  // close and remove the temp file on every such path. Cleanup is raw
  // (std::remove, not io::Unlink): Save is returning an error to a live
  // process, and re-entering the injection layer that just failed us would
  // turn "clean error" into "leaked temp file".
  const auto fail = [&](const Status& status) {
    ::close(fd);
    std::remove(tmp.c_str());
    return status;
  };
  if (io::CrashRequested("image:save:start")) {
    return fail(Status::IOError("injected crash before image write"));
  }
  ImageWriter writer(fd);
  Status st = writer.WriteRaw(&header, sizeof(header));  // placeholder pass
  if (st.ok()) {
    if (v2) {
      st = writer.WritePayload(table, sizeof(table));
    } else {
      SectionEntry v1_table[kSectionCount];
      for (uint32_t i = 0; i < kSectionCount; ++i) {
        v1_table[i] = SectionEntry{table[i].kind, table[i].elem_size,
                                   table[i].offset, table[i].count};
      }
      st = writer.WritePayload(v1_table, sizeof(v1_table));
    }
  }
  for (uint32_t i = 0; st.ok() && i < kSectionCount; ++i) {
    st = writer.PadToAlignment();
    if (st.ok()) {
      st = writer.WritePayload(sections[i].data, sections[i].stored_bytes);
    }
  }
  // Seal: fill in the checksums and rewrite the header in place.
  if (st.ok()) {
    header.payload_checksum = writer.digest();
    header.header_checksum = HeaderChecksum(header);
    st = writer.offset() == file_size
             ? io::PWriteFull(fd, &header, sizeof(header), 0)
             : Status::IOError("short write to " + tmp);
  }
  // Durability before the rename publishes: without the fsync a crash
  // after Save returns could replace the previous good image with a
  // not-yet-written-back inode.
  if (st.ok()) {
    if (io::CrashRequested("image:save:before_sync")) {
      st = Status::IOError("injected crash before image fsync");
    } else {
      st = io::Fsync(fd, tmp);
    }
  }
  if (!st.ok()) return fail(st);
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot close " + tmp + ": " +
                           std::strerror(errno));
  }
  if (st = io::Rename(tmp, path); !st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  // Persist the rename itself (the directory entry): until the directory
  // is synced, a crash can roll the path back to the previous image — or
  // to nothing — after Save already returned success. A failure here is a
  // real durability loss and reports as one; the renamed file itself is in
  // place and intact, so nothing is removed.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                          : slash == 0               ? std::string("/")
                                                     : path.substr(0, slash);
  return io::FsyncDir(dir);
}

namespace {

/// Typed view of a validated raw section.
template <typename T>
std::span<const T> SectionSpan(const MappedFile& file,
                               const SectionEntryV2& entry) {
  return std::span<const T>(
      reinterpret_cast<const T*>(file.data() + entry.offset), entry.count);
}

Status CorruptionAt(const std::string& path, const char* what) {
  return Status::Corruption("invalid relation image " + path + ": " + what);
}

/// Best-effort posix_madvise over the file range [offset, offset + len),
/// widened to page boundaries. Hints are advisory: failures (and platforms
/// without posix_madvise) are silently ignored.
void AdviseRange(const MappedFile& file, uint64_t offset, uint64_t len,
                 int advice) {
#if defined(POSIX_MADV_NORMAL)
  if (len == 0 || offset >= file.size()) return;
  static const uint64_t page =
      static_cast<uint64_t>(std::max<long>(1, ::sysconf(_SC_PAGESIZE)));
  const uint64_t begin = (offset / page) * page;
  const uint64_t end = std::min<uint64_t>(offset + len, file.size());
  (void)::posix_madvise(
      const_cast<unsigned char*>(file.data()) + begin,
      static_cast<size_t>(end - begin), advice);
#else
  (void)file;
  (void)offset;
  (void)len;
  (void)advice;
#endif
}

#if defined(POSIX_MADV_NORMAL)
constexpr int kAdviseWillNeed = POSIX_MADV_WILLNEED;
constexpr int kAdviseRandom = POSIX_MADV_RANDOM;
#else
constexpr int kAdviseWillNeed = 0;
constexpr int kAdviseRandom = 0;
#endif

/// offsets[0] == 0, non-decreasing, offsets.back() == total.
template <typename T>
bool IsPrefixArray(std::span<const T> offsets, uint64_t total) {
  if (offsets.empty() || offsets.front() != 0) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return offsets.back() == total;
}

/// Every entry indexes the row space.
bool RowsInBounds(std::span<const Row> rows, uint64_t row_count) {
  for (Row r : rows) {
    if (r >= row_count) return false;
  }
  return true;
}

}  // namespace

Result<NodeRelation> ImageIO::Open(const std::string& path,
                                   ImageOpenOptions options) {
  LPATH_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                         MappedFile::Map(path));

  // --- Header ---------------------------------------------------------------
  if (file->size() < sizeof(ImageHeader)) {
    return CorruptionAt(path, "file shorter than the image header");
  }
  ImageHeader header;
  std::memcpy(&header, file->data(), sizeof(header));
  if (std::memcmp(header.magic, kImageMagic, sizeof(kImageMagic)) != 0) {
    return CorruptionAt(path, "bad magic (not a relation image)");
  }
  if (header.version < kImageMinFormatVersion ||
      header.version > kImageFormatVersion) {
    return Status::NotSupported(
        "relation image " + path + " has format version " +
        std::to_string(header.version) + "; this build reads versions " +
        std::to_string(kImageMinFormatVersion) + ".." +
        std::to_string(kImageFormatVersion));
  }
  const bool v2 = header.version >= 2;
  if (header.endian != kEndianMarker) {
    return Status::NotSupported("relation image " + path +
                                " was written on a foreign-endian machine");
  }
  if (header.header_checksum != HeaderChecksum(header)) {
    return CorruptionAt(path, "header checksum mismatch");
  }
  if (header.file_size != file->size()) {
    return CorruptionAt(path, "file size does not match the header");
  }
  if (header.section_count != kSectionCount) {
    return CorruptionAt(path, "unexpected section count");
  }
  if (header.scheme > static_cast<uint32_t>(LabelScheme::kXPath)) {
    return CorruptionAt(path, "unknown label scheme");
  }
  if (header.row_count > UINT32_MAX || header.element_count > UINT32_MAX ||
      header.symbol_count >= UINT32_MAX || header.tree_count > INT32_MAX) {
    return CorruptionAt(path, "counts exceed the 32-bit row/id space");
  }

  // --- Payload checksum (covers the section table and every section) -------
  // kHeaderOnly skips exactly this scan — the one check whose cost is
  // O(file size); everything below stays on.
  if (options.verify == ImageVerify::kFull) {
    // The scan below touches every payload page once, in order: tell the
    // kernel to start fetching them ahead of the read.
    if (options.madvise) {
      AdviseRange(*file, sizeof(ImageHeader),
                  file->size() - sizeof(ImageHeader), kAdviseWillNeed);
    }
    Fnv64 fnv;
    fnv.Update(file->data() + sizeof(ImageHeader),
               file->size() - sizeof(ImageHeader));
    if (fnv.digest() != header.payload_checksum) {
      return CorruptionAt(path, "payload checksum mismatch");
    }
  }

  // --- Section table --------------------------------------------------------
  const uint64_t entry_size =
      v2 ? sizeof(SectionEntryV2) : sizeof(SectionEntry);
  if (file->size() < sizeof(ImageHeader) + kSectionCount * entry_size) {
    return CorruptionAt(path, "file shorter than the section table");
  }
  SectionEntryV2 table[kSectionCount];
  if (v2) {
    std::memcpy(table, file->data() + sizeof(ImageHeader), sizeof(table));
  } else {
    SectionEntry v1_table[kSectionCount];
    std::memcpy(v1_table, file->data() + sizeof(ImageHeader),
                sizeof(v1_table));
    for (uint32_t i = 0; i < kSectionCount; ++i) {
      table[i] = SectionEntryV2{
          v1_table[i].kind,  v1_table[i].elem_size,
          v1_table[i].offset, v1_table[i].count,
          0,                 0,
          v1_table[i].count * v1_table[i].elem_size};
    }
  }

  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const SectionEntryV2& e = table[i];
    if (e.kind != kSectionSpecs[i].kind ||
        e.elem_size != kSectionSpecs[i].elem_size) {
      return CorruptionAt(path, "section table does not match the format");
    }
    if (e.offset % kSectionAlign != 0) {
      return CorruptionAt(path, "misaligned section");
    }
    if (e.encoding != static_cast<uint32_t>(ColumnEncoding::kRaw)) {
      if (i >= kRelColEncodable) {
        return CorruptionAt(path, "encoded tag on a non-column section");
      }
      if (e.encoding != static_cast<uint32_t>(ColumnEncoding::kBitPack) &&
          e.encoding != static_cast<uint32_t>(ColumnEncoding::kRle)) {
        return CorruptionAt(path, "unknown column encoding tag");
      }
    } else if (e.stored_bytes != e.count * e.elem_size) {
      return CorruptionAt(path, "raw section byte count mismatch");
    }
    if (e.offset > file->size() ||
        e.stored_bytes > file->size() - e.offset) {
      return CorruptionAt(path, "section extends past the end of the file");
    }
  }

  // --- Cross-section count invariants ---------------------------------------
  const uint64_t rows = header.row_count;
  const uint64_t elements = header.element_count;
  const uint64_t symbols = header.symbol_count;
  const uint64_t trees = header.tree_count;
  uint64_t expected_count[kSectionCount];
  for (uint32_t i = kIdxTid; i <= kIdxKind; ++i) expected_count[i] = rows;
  expected_count[kIdxRuns] = symbols + 1;
  expected_count[kIdxByRight] = rows;
  expected_count[kIdxByPid] = rows;
  expected_count[kIdxValueIndex] = table[kIdxValueIndex].count;  // capped below
  expected_count[kIdxValueOffsets] = symbols + 2;
  expected_count[kIdxTreeRowPrefix] = trees + 1;
  expected_count[kIdxTreeBase] = trees + 1;
  expected_count[kIdxElemRow] = elements;
  expected_count[kIdxAttrOffsets] = elements + 1;
  expected_count[kIdxAttrRows] = table[kIdxAttrRows].count;  // capped below
  expected_count[kIdxInternerOffsets] = symbols + 1;
  expected_count[kIdxInternerBlob] = table[kIdxInternerBlob].count;
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    if (table[i].count != expected_count[i]) {
      return CorruptionAt(path, "section sizes are inconsistent");
    }
  }
  if (table[kIdxValueIndex].count > rows || table[kIdxAttrRows].count > rows) {
    return CorruptionAt(path, "index larger than the row space");
  }

  // --- Encoded columns: validate, then decode into the backing's arena -----
  // Raw columns bind straight into the mapping; encoded ones are decoded
  // once here so every span accessor (and the binary searches behind the
  // run/range lookups) work identically over both. The encoded views are
  // kept alongside so the batch executor can fuse decode into its scans.
  // Mapping hints (see ImageOpenOptions::madvise): the sections consumed
  // eagerly right below — encoded column payloads (decoded into the arena)
  // and the interner table (re-interned into the fresh corpus) — are
  // prefetched; the sections served straight out of the mapping at query
  // time get MADV_RANDOM after the one-time sanity scans further down.
  if (options.madvise) {
    for (uint32_t i = 0; i < kRelColEncodable; ++i) {
      if (table[i].encoding != static_cast<uint32_t>(ColumnEncoding::kRaw)) {
        AdviseRange(*file, table[i].offset, table[i].stored_bytes,
                    kAdviseWillNeed);
      }
    }
    AdviseRange(*file, table[kIdxInternerOffsets].offset,
                table[kIdxInternerOffsets].stored_bytes, kAdviseWillNeed);
    AdviseRange(*file, table[kIdxInternerBlob].offset,
                table[kIdxInternerBlob].stored_bytes, kAdviseWillNeed);
  }

  auto backing = std::make_shared<MappedBacking>();
  backing->file = file;
  std::array<EncodedColumnView, kRelColEncodable> encoded_views{};
  std::array<std::span<const uint32_t>, kRelColEncodable> cols;
  for (uint32_t i = 0; i < kRelColEncodable; ++i) {
    const SectionEntryV2& e = table[i];
    if (e.encoding == static_cast<uint32_t>(ColumnEncoding::kRaw)) {
      cols[i] = SectionSpan<uint32_t>(*file, e);
      continue;
    }
    const EncodedColumnView view{
        static_cast<ColumnEncoding>(e.encoding), e.count,
        std::span<const uint8_t>(file->data() + e.offset, e.stored_bytes)};
    if (const Status status = ColumnCodec::Validate(view); !status.ok()) {
      return CorruptionAt(path, status.message().c_str());
    }
    std::vector<uint32_t>& arena = backing->decoded[i];
    arena.resize(e.count);
    ColumnCodec::Decode(view, arena.data());
    cols[i] = std::span<const uint32_t>(arena);
    encoded_views[i] = view;
  }
  const auto col_i32 = [&cols](uint32_t i) {
    return std::span<const int32_t>(
        reinterpret_cast<const int32_t*>(cols[i].data()), cols[i].size());
  };

  // --- Index sanity: keep every accessor in bounds over the mapping --------
  const auto runs = SectionSpan<RowRange>(*file, table[kIdxRuns]);
  for (const RowRange& r : runs) {
    if (r.begin > r.end || r.end > rows) {
      return CorruptionAt(path, "run directory out of bounds");
    }
  }
  if (!RowsInBounds(SectionSpan<Row>(*file, table[kIdxByRight]), rows) ||
      !RowsInBounds(SectionSpan<Row>(*file, table[kIdxByPid]), rows) ||
      !RowsInBounds(SectionSpan<Row>(*file, table[kIdxValueIndex]), rows) ||
      !RowsInBounds(SectionSpan<Row>(*file, table[kIdxElemRow]), rows) ||
      !RowsInBounds(SectionSpan<Row>(*file, table[kIdxAttrRows]), rows)) {
    return CorruptionAt(path, "row index out of bounds");
  }
  // The tid column feeds the per-tree accessors; those all guard the
  // range themselves, but a value outside [0, trees) can only come from a
  // forged file, so reject it here as corruption rather than serving
  // silently-empty per-tree lookups.
  for (int32_t t : col_i32(kIdxTid)) {
    if (t < 0 || static_cast<uint64_t>(t) >= trees) {
      return CorruptionAt(path, "tid column out of range");
    }
  }
  if (!IsPrefixArray(SectionSpan<uint32_t>(*file, table[kIdxValueOffsets]),
                     table[kIdxValueIndex].count) ||
      !IsPrefixArray(SectionSpan<uint64_t>(*file, table[kIdxTreeRowPrefix]),
                     rows) ||
      !IsPrefixArray(SectionSpan<uint32_t>(*file, table[kIdxTreeBase]),
                     elements) ||
      !IsPrefixArray(SectionSpan<uint32_t>(*file, table[kIdxAttrOffsets]),
                     table[kIdxAttrRows].count)) {
    return CorruptionAt(path, "offset table is not a prefix sum");
  }

  // --- Interner -------------------------------------------------------------
  const auto interner_offsets =
      SectionSpan<uint64_t>(*file, table[kIdxInternerOffsets]);
  const auto blob = SectionSpan<char>(*file, table[kIdxInternerBlob]);
  if (!IsPrefixArray(interner_offsets, blob.size())) {
    return CorruptionAt(path, "interner offsets are not a prefix sum");
  }
  auto corpus = std::make_shared<Corpus>();
  Interner* interner = corpus->mutable_interner();
  for (uint64_t s = 0; s < symbols; ++s) {
    const std::string_view name(blob.data() + interner_offsets[s],
                                interner_offsets[s + 1] - interner_offsets[s]);
    if (interner->Intern(name) != static_cast<Symbol>(s + 1)) {
      return CorruptionAt(path, "interner table has duplicate strings");
    }
  }

  // The sanity scans above were the last sequential pass; from here on the
  // mapped sections are hit by binary searches and point lookups, where
  // readahead only evicts useful pages. Encoded columns are excluded: their
  // payloads were decoded into the arena and the batch scan re-reads them
  // sequentially per block.
  if (options.madvise) {
    for (uint32_t i = 0; i < kSectionCount; ++i) {
      if (i == kIdxInternerOffsets || i == kIdxInternerBlob) continue;
      if (i < kRelColEncodable &&
          table[i].encoding != static_cast<uint32_t>(ColumnEncoding::kRaw)) {
        continue;
      }
      AdviseRange(*file, table[i].offset, table[i].stored_bytes,
                  kAdviseRandom);
    }
  }

  // --- Bind the relation straight onto the mapping --------------------------
  NodeRelation rel;
  rel.scheme_ = static_cast<LabelScheme>(header.scheme);
  rel.corpus_ = std::move(corpus);
  rel.tree_count_ = static_cast<int32_t>(trees);
  rel.element_count_ = static_cast<size_t>(elements);
  rel.mapped_ = true;
  rel.tid_ = col_i32(kIdxTid);
  rel.left_ = col_i32(kIdxLeft);
  rel.right_ = col_i32(kIdxRight);
  rel.depth_ = col_i32(kIdxDepth);
  rel.id_ = col_i32(kIdxId);
  rel.pid_ = col_i32(kIdxPid);
  rel.name_ = cols[kIdxName];
  rel.value_ = cols[kIdxValue];
  rel.kind_ = SectionSpan<uint8_t>(*file, table[kIdxKind]);
  rel.encoded_ = encoded_views;
  rel.runs_ = runs;
  rel.by_right_ = SectionSpan<Row>(*file, table[kIdxByRight]);
  rel.by_pid_ = SectionSpan<Row>(*file, table[kIdxByPid]);
  rel.value_index_ = SectionSpan<Row>(*file, table[kIdxValueIndex]);
  rel.value_offsets_ =
      SectionSpan<uint32_t>(*file, table[kIdxValueOffsets]);
  rel.tree_row_prefix_ =
      SectionSpan<uint64_t>(*file, table[kIdxTreeRowPrefix]);
  rel.tree_base_ = SectionSpan<uint32_t>(*file, table[kIdxTreeBase]);
  rel.elem_row_ = SectionSpan<Row>(*file, table[kIdxElemRow]);
  rel.attr_offsets_ = SectionSpan<uint32_t>(*file, table[kIdxAttrOffsets]);
  rel.attr_rows_ = SectionSpan<Row>(*file, table[kIdxAttrRows]);
  rel.backing_ = std::move(backing);
  return rel;
}

Result<uint64_t> ImageIO::ReadWalLsn(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  ImageHeader header;
  const size_t got = std::fread(&header, 1, sizeof(header), f);
  std::fclose(f);
  if (got != sizeof(header)) {
    return CorruptionAt(path, "file shorter than the image header");
  }
  if (std::memcmp(header.magic, kImageMagic, sizeof(kImageMagic)) != 0) {
    return CorruptionAt(path, "bad magic (not a relation image)");
  }
  if (header.header_checksum != HeaderChecksum(header)) {
    return CorruptionAt(path, "header checksum mismatch");
  }
  return static_cast<uint64_t>(header.wal_lsn);
}

}  // namespace lpath
