// Write-ahead log for live-corpus ingestion: an append-only, segmented,
// checksummed record log with fsync-on-commit. db::Database appends each
// ingested tree batch (its bracketed text) *before* publishing the
// extended snapshot chain, so an acknowledged Ingest is on disk before the
// client sees success; on restart the sidecar log is replayed into the
// delta chain before the corpus serves, and a successful image compaction
// checkpoints (truncates) everything the rewritten image now covers.
//
// On-disk layout. A log is a directory of segment files named
// `0000000000000001.wal`, `0000000000000002.wal`, ... (ordered). Each
// segment starts with a 32-byte header {magic "LPDBWAL", version, endian
// marker, first LSN}; records follow back to back:
//
//   WalRecordHeader {u32 magic, u32 payload length, u64 lsn,
//                    u64 FNV-1a64 over (lsn, length, payload)}
//   payload bytes
//
// LSNs are assigned contiguously from 1 and never reused (except by
// Rollback of the latest record, which truncates it away first). A record
// is committed once its bytes and the segment's directory entry are
// fsynced; Append returns only then.
//
// Corruption model (what recovery guarantees). A crash tears the *tail*:
// appends only ever extend the open segment, so an interrupted commit
// leaves a short final record (or a short segment header) at the end of
// the last segment. Open() truncates exactly that torn tail and recovers
// every record before it. A *complete* record whose checksum or magic does
// not verify — or any damage before the tail — cannot come from a torn
// append and is rejected as Status::Corruption rather than repaired:
// silently dropping an acknowledged commit is the one failure this layer
// exists to prevent. (A bit flip in a length field is indistinguishable
// from a torn tail; recovery then still yields a clean *prefix* of the
// committed records, never garbage — the property the corruption battery
// asserts byte by byte.)
//
// All file mutation goes through lpath::io (storage/io_hooks.h), so tests
// inject write/fsync failures and full crashes at every boundary.

#ifndef LPATHDB_STORAGE_WAL_H_
#define LPATHDB_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace lpath {

/// Leading bytes of every WAL segment file.
inline constexpr char kWalMagic[8] = {'L', 'P', 'D', 'B', 'W', 'A', 'L', '\0'};
inline constexpr uint32_t kWalFormatVersion = 1;
/// Bytes of framing per record (header ahead of the payload).
inline constexpr size_t kWalRecordOverhead = 24;

struct WalOptions {
  /// Rotate to a fresh segment once the open one reaches this size (a
  /// single record may still exceed it — records are never split).
  uint64_t segment_bytes = 8ull << 20;
  /// fsync the segment on every commit (and its directory on creation).
  /// Tests may disable to keep sweeps fast; durability obviously goes
  /// with it.
  bool sync = true;
};

struct WalStats {
  uint64_t last_lsn = 0;        ///< highest committed LSN (0 = empty log)
  uint64_t appends = 0;         ///< records committed by this handle
  uint64_t appended_bytes = 0;  ///< bytes committed (framing included)
  uint64_t checkpoints = 0;     ///< Checkpoint() calls that dropped segments
  uint64_t segments = 0;        ///< live segment files
  uint64_t recovered_records = 0;  ///< records found on disk at Open
  uint64_t truncated_bytes = 0;    ///< torn-tail bytes discarded at Open
};

class Wal {
 public:
  /// Opens (creating if needed) the log directory, validates every
  /// segment, truncates a torn tail, and positions the log for appends
  /// after the last committed record. Corruption anywhere before the tail
  /// is a clean Status::Corruption — the log refuses to serve a lossy
  /// middle.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           WalOptions options = {});

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Commits `payload` as the next record: written, checksummed and (with
  /// options.sync) fsynced before returning its LSN. On any failure the
  /// partial record is truncated away (best effort) and no LSN is
  /// consumed; if even that cleanup fails the log wedges — every later
  /// Append fails — rather than risk appending after garbage.
  Result<uint64_t> Append(std::string_view payload);

  /// Streams every committed record with lsn > after_lsn, in LSN order.
  /// Stops and returns the callback's first non-OK status.
  Status Replay(uint64_t after_lsn,
                const std::function<Status(uint64_t lsn,
                                           std::string_view payload)>& fn)
      const;

  /// Drops every segment wholly covered by lsn <= up_to_lsn (the tail
  /// rotates away too when fully covered). Callers checkpoint only after
  /// the covered records are durable elsewhere (the compacted image).
  /// Coarse on purpose: a partially covered segment stays, and replay
  /// filters by LSN anyway.
  Status Checkpoint(uint64_t up_to_lsn);

  /// Undoes the most recent Append (and only that): truncates the record
  /// and frees its LSN. For the ingest path whose publish lost to a
  /// concurrent Detach — the batch was never acknowledged, so it must not
  /// resurrect on replay.
  Status Rollback(uint64_t lsn);

  /// Raises the next LSN above `floor` (no-op when it already is). The
  /// owner calls this with the checkpointed LSN stamped into its base
  /// image: a crash between a checkpoint's unlinks and its fresh-segment
  /// rotation leaves an empty log, and without the floor new appends
  /// would reuse LSNs the image already covers — and be silently filtered
  /// on the next replay.
  void EnsureNextLsnAbove(uint64_t floor);

  uint64_t last_lsn() const;
  WalStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    std::string path;
    uint64_t seq = 0;
    uint64_t first_lsn = 0;  ///< 0 while the segment holds no records
    uint64_t last_lsn = 0;
    uint64_t records = 0;
    uint64_t bytes = 0;  ///< committed file size
  };

  Wal(std::string dir, WalOptions options);

  /// Ensures an open tail segment with room; rotates/creates as needed.
  Status EnsureTail(size_t incoming_bytes);
  Status CloseTail();

  mutable std::mutex mu_;
  const std::string dir_;
  const WalOptions options_;
  std::vector<Segment> segments_;
  int fd_ = -1;  ///< open tail segment (last of segments_), or -1
  bool wedged_ = false;
  uint64_t next_lsn_ = 1;
  /// Size of the latest committed record — what Rollback removes.
  uint64_t last_record_bytes_ = 0;
  WalStats stats_;
};

}  // namespace lpath

#endif  // LPATHDB_STORAGE_WAL_H_
