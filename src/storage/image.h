// Persistent relation images: a versioned, checksummed single-file format
// holding a NodeRelation's sorted column arrays, every secondary index,
// the per-tree row prefix sums, and the corpus's string interner table.
//
// The point (and the paper's pitch) is that interval-labeled trees live in
// the database rather than being re-derived per tool run: Save() is run
// once, offline (lpath_pack, or :save in the shell), and Open() then maps
// the file read-only and serves the columns straight out of the mapping —
// no labeling, no sorting, O(file size) instead of O(label + sort). The
// mapping is owned by the opened relation (and through it by its
// CorpusSnapshot), so the existing hot-swap/Reload semantics and in-flight
// readers work unchanged: the pages stay mapped until the last reader's
// snapshot reference drops.
//
// Layout (all integers native-endian; a header marker rejects foreign
// endianness — images are a deployment format, not an interchange format):
//
//   ImageHeader            magic, version, endian marker, label scheme,
//                          row/tree/element/symbol counts, file size,
//                          header + payload FNV-1a64 checksums
//   SectionEntry[21]       {kind, elem_size, offset, count} per section
//   sections...            raw column arrays, each 8-byte aligned:
//                          tid/left/right/depth/id/pid/name/value/kind,
//                          run directory, by-right/by-pid permutations,
//                          value index + offsets, per-tree row prefix sums,
//                          tree base / element row / attribute CSR,
//                          interner offsets + concatenated string blob
//
// Corruption model: the payload checksum covers every byte after the
// header (section table included); the header carries its own checksum.
// Open() additionally bounds-checks every section against the file size
// and validates the cross-section count invariants and index monotonicity,
// so a truncated, bit-flipped or wrong-version file yields a clean Status
// error — never a crash — and a checksum-valid file cannot index the
// mapping out of bounds.

#ifndef LPATHDB_STORAGE_IMAGE_H_
#define LPATHDB_STORAGE_IMAGE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/relation.h"

namespace lpath {

/// Leading bytes of every relation image file.
inline constexpr char kImageMagic[8] = {'L', 'P', 'D', 'B',
                                        'I', 'M', 'G', '\0'};

/// Format generation; bumped on any incompatible layout change.
inline constexpr uint32_t kImageFormatVersion = 1;

/// Reads `path`'s first bytes and reports whether they carry the relation
/// image magic — how Database::Open routes image vs. bracketed files.
/// False (not an error) for unreadable or short files.
bool LooksLikeImageFile(const std::string& path);

/// Serialization of NodeRelation to and from persistent images. Stateless;
/// a friend of NodeRelation so images bind the private column spans.
class ImageIO {
 public:
  /// Writes `relation` (columns, indexes, prefix sums, interner) to `path`
  /// as one image. Writes to `path + ".tmp"` and renames, so a concurrent
  /// reader never sees a half-written image.
  static Status Save(const NodeRelation& relation, const std::string& path);

  /// Opens an image read-only via mmap. Validates the header, checksums
  /// and section bounds, rebuilds the interner into a fresh (tree-less)
  /// corpus, and binds the relation's columns straight into the mapping.
  /// Performs no labeling and no sorting: cost is O(file size).
  ///
  /// The returned relation's corpus carries the dictionary but no trees —
  /// everything the SQL executor needs, but not the bracketed text
  /// (engines that walk trees, e.g. the navigational baseline, need a
  /// corpus-built snapshot instead).
  static Result<NodeRelation> Open(const std::string& path);
};

}  // namespace lpath

#endif  // LPATHDB_STORAGE_IMAGE_H_
