// Persistent relation images: a versioned, checksummed single-file format
// holding a NodeRelation's sorted column arrays, every secondary index,
// the per-tree row prefix sums, and the corpus's string interner table.
//
// The point (and the paper's pitch) is that interval-labeled trees live in
// the database rather than being re-derived per tool run: Save() is run
// once, offline (lpath_pack, or :save in the shell), and Open() then maps
// the file read-only and serves the columns straight out of the mapping —
// no labeling, no sorting, O(file size) instead of O(label + sort). The
// mapping is owned by the opened relation (and through it by its
// CorpusSnapshot), so the existing hot-swap/Reload semantics and in-flight
// readers work unchanged: the pages stay mapped until the last reader's
// snapshot reference drops.
//
// Layout (all integers native-endian; a header marker rejects foreign
// endianness — images are a deployment format, not an interchange format):
//
//   ImageHeader            magic, version, endian marker, label scheme,
//                          row/tree/element/symbol counts, file size,
//                          header + payload FNV-1a64 checksums
//   section table          per section: v1 writes SectionEntry
//                          {kind, elem_size, offset, count}; v2 writes
//                          SectionEntryV2, which appends an encoding tag
//                          and the encoded byte count
//   sections...            column arrays, each 8-byte aligned:
//                          tid/left/right/depth/id/pid/name/value/kind,
//                          run directory, by-right/by-pid permutations,
//                          value index + offsets, per-tree row prefix sums,
//                          tree base / element row / attribute CSR,
//                          interner offsets + concatenated string blob
//
// Format v2 may store any of the eight 32-bit row columns (tid..value)
// under a lightweight codec (storage/codec.h) instead of verbatim; Save
// measures each candidate encoding and keeps the cheapest. Every other
// section — kind byte, indexes, interner — is always raw. v1 images (all
// sections raw) still open; v2 images can be written by older-format
// request (ImageSaveOptions::format_version = 1) for downgrades.
//
// Corruption model: the payload checksum covers every byte after the
// header (section table included); the header carries its own checksum.
// Open() additionally bounds-checks every section against the file size
// and validates the cross-section count invariants, index monotonicity,
// and every encoded column's codec structure (ColumnCodec::Validate), so
// a truncated, bit-flipped or wrong-version file yields a clean Status
// error — never a crash — and a checksum-valid file cannot index the
// mapping out of bounds. Opening with ImageVerify::kHeaderOnly skips only
// the whole-payload checksum scan (the part that is O(file size) in cache
// misses); every structural and codec check still runs.

#ifndef LPATHDB_STORAGE_IMAGE_H_
#define LPATHDB_STORAGE_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/codec.h"
#include "storage/relation.h"

namespace lpath {

/// Leading bytes of every relation image file.
inline constexpr char kImageMagic[8] = {'L', 'P', 'D', 'B',
                                        'I', 'M', 'G', '\0'};

/// Format generation written by default; bumped on layout changes. Open()
/// reads every version in [kImageMinFormatVersion, kImageFormatVersion].
inline constexpr uint32_t kImageFormatVersion = 2;
inline constexpr uint32_t kImageMinFormatVersion = 1;

/// How much of an image Open() verifies before serving from it.
enum class ImageVerify {
  /// Checksum the whole payload (plus all structural checks). The default:
  /// corruption anywhere in the file is caught at open.
  kFull,
  /// Skip only the payload checksum scan; header checksum, section bounds,
  /// count invariants, index sanity and codec validation still run. Opt-in
  /// for latency-sensitive cold opens of large trusted images, where the
  /// O(file size) checksum read would dominate.
  kHeaderOnly,
};

struct ImageOpenOptions {
  ImageVerify verify = ImageVerify::kFull;
  /// Issue posix_madvise hints on the fresh mapping (no-op on platforms
  /// without it): MADV_WILLNEED ahead of everything Open reads eagerly —
  /// the whole payload before a kFull checksum scan, the encoded column
  /// payloads before decode, the interner table before re-interning — and
  /// MADV_RANDOM on the sections served straight out of the mapping at
  /// query time (raw columns, permutations, indexes), whose steady-state
  /// access is binary searches that readahead only pollutes the page cache
  /// for.
  bool madvise = true;
};

/// Column encoding policy for Save().
enum class ImageEncoding {
  /// Per column, measure the candidate codecs and store the cheapest
  /// (raw included). v2 images only; v1 is always raw.
  kAuto,
  /// Store every column verbatim.
  kRaw,
};

struct ImageSaveOptions {
  /// Format generation to write: kImageFormatVersion (default) or 1 for a
  /// downgrade image older builds can open.
  uint32_t format_version = kImageFormatVersion;
  ImageEncoding encoding = ImageEncoding::kAuto;
  /// WAL checkpoint stamp: the LSN of the last WAL record this image's
  /// relation already covers (see storage/wal.h and db::Database's
  /// durable-ingest path). Stored in a previously-reserved header field —
  /// no format bump; images written before the field (and images saved
  /// without a WAL) read back as 0. Replay after open skips records at or
  /// below it, which is what makes compact-then-crash-before-truncate
  /// exactly-once instead of at-least-once.
  uint64_t wal_lsn = 0;
};

/// What Save() wrote, for tooling (`lpath_pack` prints this table).
struct ImageSaveStats {
  struct Column {
    std::string name;           ///< section name, e.g. "left"
    ColumnEncoding encoding = ColumnEncoding::kRaw;
    uint64_t raw_bytes = 0;     ///< verbatim array size
    uint64_t stored_bytes = 0;  ///< bytes actually written
  };
  std::vector<Column> columns;   ///< the eight encodable row columns
  uint64_t file_bytes = 0;       ///< total image size as written
  uint64_t raw_file_bytes = 0;   ///< image size had every column been raw
};

/// Reads `path`'s first bytes and reports whether they carry the relation
/// image magic — how Database::Open routes image vs. bracketed files.
/// False (not an error) for unreadable or short files.
bool LooksLikeImageFile(const std::string& path);

/// Serialization of NodeRelation to and from persistent images. Stateless;
/// a friend of NodeRelation so images bind the private column spans.
class ImageIO {
 public:
  /// Writes `relation` (columns, indexes, prefix sums, interner) to `path`
  /// as one image. Writes to a unique sibling temp file and renames, so a
  /// concurrent reader never sees a half-written image. With the default
  /// options this writes a v2 image with per-column cheapest encodings;
  /// `stats` (optional) receives the per-column size breakdown.
  static Status Save(const NodeRelation& relation, const std::string& path,
                     ImageSaveOptions options = {},
                     ImageSaveStats* stats = nullptr);

  /// Opens an image read-only via mmap. Validates the header, checksums
  /// and section bounds, rebuilds the interner into a fresh (tree-less)
  /// corpus, and binds the relation's columns straight into the mapping —
  /// columns a v2 image stores encoded are decoded once into an owned
  /// arena (and additionally exposed through NodeRelation::encoded() for
  /// fused decode in the batch scan). Performs no labeling and no
  /// sorting: cost is O(file size).
  ///
  /// The returned relation's corpus carries the dictionary but no trees —
  /// everything the SQL executor needs, but not the bracketed text
  /// (engines that walk trees, e.g. the navigational baseline, need a
  /// corpus-built snapshot instead).
  static Result<NodeRelation> Open(const std::string& path,
                                   ImageOpenOptions options = {});

  /// Reads just the header (validating magic + header checksum) and
  /// returns the image's checkpointed WAL LSN — 0 for images saved
  /// without one, including every image written before the field existed.
  /// O(1); used on the database's replay path before a corpus serves.
  static Result<uint64_t> ReadWalLsn(const std::string& path);
};

}  // namespace lpath

#endif  // LPATHDB_STORAGE_IMAGE_H_
