// TGrep2-style pattern language (Rohde's tool, one of the paper's two
// baselines). Patterns are node specs linked by relations:
//
//   node spec:  NP | NP|PP (alternation) | /regex/ | __ (any) | "saw" (word)
//               optionally suffixed =name (binding); =name alone is a
//               back-reference to a bound node
//   relations:  A < B   B is a child of A          A > B   mirror
//               A << B  B is a descendant of A     A >> B  mirror
//               A <N B  B is the Nth child (negative: from the right)
//               A >N B  A is the Nth child of B
//               A <, B / A <- B / A <: B   first / last / only child
//               A >, B / A >- B / A >: B   mirrors
//               A <<, B / A <<- B   B is the left/rightmost descendant of A
//               A >>, B / A >>- B   mirrors
//               A . B   A immediately precedes B (terminal adjacency — the
//                       same relation as LPath's immediate-following)
//               A , B   A immediately follows B
//               A .. B / A ,, B   precedes / follows
//               A $ B   sisters;  A $. B / A $, B  adjacent sisters;
//               A $.. B / A $,, B  preceding / following sisters
//   boolean:    ! negates a relation; [ ... ] groups; & (implicit) and |
//   operands:   a relation's target may be a parenthesized pattern with its
//               own relations: NP . (PP << (IN < of))

#ifndef LPATHDB_TGREP_PATTERN_H_
#define LPATHDB_TGREP_PATTERN_H_

#include <memory>
#include <regex>
#include <string>
#include <vector>

namespace lpath {
namespace tgrep {

/// How a pattern node matches a corpus node's label.
struct NodeSpec {
  enum class Kind {
    kAny,       // __
    kLiteral,   // tag or word; `alts` holds the |-alternatives
    kRegex,     // /…/
    kBackref,   // =name
  };
  Kind kind = Kind::kAny;
  std::vector<std::string> alts;  // kLiteral
  std::string regex_text;         // kRegex (source, for printing)
  std::shared_ptr<std::regex> regex;  // compiled
  std::string backref;            // kBackref
  std::string bind_name;          // "=name" suffix; empty = unbound
};

enum class RelOp {
  kChild,             // <
  kParent,            // >
  kDescendant,        // <<
  kAncestor,          // >>
  kNthChild,          // <N  (n != 0; negative from the right)
  kNthChildOf,        // >N
  kFirstChild,        // <,
  kLastChild,         // <-
  kOnlyChild,         // <:
  kIsFirstChildOf,    // >,
  kIsLastChildOf,     // >-
  kIsOnlyChildOf,     // >:
  kLeftmostDesc,      // <<,
  kRightmostDesc,     // <<-
  kIsLeftmostDescOf,  // >>,
  kIsRightmostDescOf, // >>-
  kImmPrecedes,       // .
  kImmFollows,        // ,
  kPrecedes,          // ..
  kFollows,           // ,,
  kSister,            // $
  kSisterImmPrecedes, // $.
  kSisterImmFollows,  // $,
  kSisterPrecedes,    // $..
  kSisterFollows,     // $,,
};

std::string_view RelOpName(RelOp op);

struct PatternNode;
struct RelExpr;

/// One relation: op + target pattern (which may have its own relations).
struct Relation {
  RelOp op = RelOp::kChild;
  int n = 0;  // kNthChild / kNthChildOf
  bool negated = false;
  std::unique_ptr<PatternNode> target;
};

/// Boolean structure over relations: & binds tighter than |.
struct RelExpr {
  enum class Kind { kAnd, kOr, kRel };
  Kind kind = Kind::kRel;
  std::unique_ptr<RelExpr> lhs, rhs;
  Relation rel;  // kRel

  explicit RelExpr(Kind k) : kind(k) {}
};

/// A pattern node: spec + optional relation expression.
struct PatternNode {
  NodeSpec spec;
  std::unique_ptr<RelExpr> rels;  // may be null
};

/// A complete pattern (the head node; matches are counted per distinct head).
using Pattern = PatternNode;

}  // namespace tgrep
}  // namespace lpath

#endif  // LPATHDB_TGREP_PATTERN_H_
