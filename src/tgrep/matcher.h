// The TGrep2-style matcher: tree-at-a-time backtracking search with named
// node bindings, using the per-label tree index to skip trees that cannot
// contain required literals — the cost model Figures 7–9 measure for the
// TGrep2 baseline.

#ifndef LPATHDB_TGREP_MATCHER_H_
#define LPATHDB_TGREP_MATCHER_H_

#include <vector>

#include "common/result.h"
#include "tgrep/corpus_file.h"
#include "tgrep/pattern.h"

namespace lpath {
namespace tgrep {

/// Matches `pattern` against every tree; returns, per tree, the distinct
/// matched *head* nodes mapped to their source element ids (1-based
/// pre-order; word-leaf heads map to their pre-terminal).
class Matcher {
 public:
  explicit Matcher(const TgrepCorpus& corpus) : corpus_(corpus) {}

  struct TreeMatches {
    int32_t tid = 0;
    std::vector<int32_t> elem_ids;  // sorted, distinct
  };

  Result<std::vector<TreeMatches>> Match(const Pattern& pattern) const;

  /// Number of trees the label index allowed the matcher to skip in the
  /// last Match call (benchmark reporting).
  size_t last_skipped_trees() const { return last_skipped_; }

 private:
  const TgrepCorpus& corpus_;
  mutable size_t last_skipped_ = 0;
};

}  // namespace tgrep
}  // namespace lpath

#endif  // LPATHDB_TGREP_MATCHER_H_
