#include "tgrep/parser.h"

#include <cctype>

#include "common/str_util.h"

namespace lpath {
namespace tgrep {

namespace {

std::string_view RelOpToken(RelOp op) {
  switch (op) {
    case RelOp::kChild: return "<";
    case RelOp::kParent: return ">";
    case RelOp::kDescendant: return "<<";
    case RelOp::kAncestor: return ">>";
    case RelOp::kNthChild: return "<N";
    case RelOp::kNthChildOf: return ">N";
    case RelOp::kFirstChild: return "<,";
    case RelOp::kLastChild: return "<-";
    case RelOp::kOnlyChild: return "<:";
    case RelOp::kIsFirstChildOf: return ">,";
    case RelOp::kIsLastChildOf: return ">-";
    case RelOp::kIsOnlyChildOf: return ">:";
    case RelOp::kLeftmostDesc: return "<<,";
    case RelOp::kRightmostDesc: return "<<-";
    case RelOp::kIsLeftmostDescOf: return ">>,";
    case RelOp::kIsRightmostDescOf: return ">>-";
    case RelOp::kImmPrecedes: return ".";
    case RelOp::kImmFollows: return ",";
    case RelOp::kPrecedes: return "..";
    case RelOp::kFollows: return ",,";
    case RelOp::kSister: return "$";
    case RelOp::kSisterImmPrecedes: return "$.";
    case RelOp::kSisterImmFollows: return "$,";
    case RelOp::kSisterPrecedes: return "$..";
    case RelOp::kSisterFollows: return "$,,";
  }
  return "?";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<Pattern>> Parse() {
    LPATH_ASSIGN_OR_RETURN(std::unique_ptr<PatternNode> node, ParseNode());
    SkipWs();
    if (pos_ != text_.size()) return Error("unexpected trailing input");
    return node;
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(std::string_view tok) {
    if (text_.substr(pos_, tok.size()) == tok) {
      pos_ += tok.size();
      return true;
    }
    return false;
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("TGrep2 parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  static bool IsSpecChar(char c) {
    // Characters that may appear in an unquoted label token.
    return !std::isspace(static_cast<unsigned char>(c)) && c != '(' &&
           c != ')' && c != '[' && c != ']' && c != '<' && c != '>' &&
           c != '.' && c != ',' && c != '$' && c != '!' && c != '&' &&
           c != '=' && c != '/' && c != '"';
  }

  Result<NodeSpec> ParseSpec() {
    SkipWs();
    NodeSpec spec;
    if (AtEnd()) return Error("expected node spec");
    const char c = Peek();
    if (c == '/') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != '/') ++pos_;
      if (AtEnd()) return Error("unterminated regex");
      spec.kind = NodeSpec::Kind::kRegex;
      spec.regex_text = std::string(text_.substr(start, pos_ - start));
      ++pos_;
      try {
        spec.regex = std::make_shared<std::regex>(spec.regex_text,
                                                  std::regex::extended);
      } catch (const std::regex_error&) {
        return Error("invalid regex /" + spec.regex_text + "/");
      }
    } else if (c == '"') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != '"') ++pos_;
      if (AtEnd()) return Error("unterminated quoted label");
      spec.kind = NodeSpec::Kind::kLiteral;
      spec.alts.push_back(std::string(text_.substr(start, pos_ - start)));
      ++pos_;
    } else if (c == '=') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        ++pos_;
      }
      if (pos_ == start) return Error("expected name after '='");
      spec.kind = NodeSpec::Kind::kBackref;
      spec.backref = std::string(text_.substr(start, pos_ - start));
      return spec;  // back-references take no bind suffix
    } else if (IsSpecChar(c) || c == '|') {
      size_t start = pos_;
      while (!AtEnd() && (IsSpecChar(Peek()) || Peek() == '|')) ++pos_;
      std::string token(text_.substr(start, pos_ - start));
      if (token == "__" || token == "*") {
        spec.kind = NodeSpec::Kind::kAny;
      } else {
        spec.kind = NodeSpec::Kind::kLiteral;
        for (std::string_view alt : Split(token, '|')) {
          if (alt.empty()) return Error("empty alternative in " + token);
          spec.alts.push_back(std::string(alt));
        }
      }
    } else {
      return Error(std::string("unexpected character '") + c + "'");
    }
    // Optional binding suffix "=name".
    if (Peek() == '=') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        ++pos_;
      }
      if (pos_ == start) return Error("expected name after '='");
      spec.bind_name = std::string(text_.substr(start, pos_ - start));
    }
    return spec;
  }

  /// Longest-match relation operator; fails without consuming when the
  /// input does not start a relation.
  bool TryParseRelOp(RelOp* op, int* n) {
    SkipWs();
    struct Entry {
      std::string_view tok;
      RelOp op;
    };
    // Longest first within each family.
    static constexpr Entry kOps[] = {
        {"<<,", RelOp::kLeftmostDesc},  {"<<-", RelOp::kRightmostDesc},
        {"<<", RelOp::kDescendant},     {"<,", RelOp::kFirstChild},
        {"<:", RelOp::kOnlyChild},      {">>,", RelOp::kIsLeftmostDescOf},
        {">>-", RelOp::kIsRightmostDescOf}, {">>", RelOp::kAncestor},
        {">,", RelOp::kIsFirstChildOf}, {">:", RelOp::kIsOnlyChildOf},
        {"$..", RelOp::kSisterPrecedes}, {"$,,", RelOp::kSisterFollows},
        {"$.", RelOp::kSisterImmPrecedes}, {"$,", RelOp::kSisterImmFollows},
        {"$", RelOp::kSister},          {"..", RelOp::kPrecedes},
        {",,", RelOp::kFollows},        {".", RelOp::kImmPrecedes},
        {",", RelOp::kImmFollows},
    };
    // "<-" may be kLastChild or <-N (Nth from the right).
    const size_t save = pos_;
    if (Eat("<-")) {
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        *op = RelOp::kNthChild;
        *n = -ParseDigits();
      } else {
        *op = RelOp::kLastChild;
      }
      return true;
    }
    if (Eat(">-")) {
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        *op = RelOp::kNthChildOf;
        *n = -ParseDigits();
      } else {
        *op = RelOp::kIsLastChildOf;
      }
      return true;
    }
    for (const Entry& e : kOps) {
      if (Eat(e.tok)) {
        *op = e.op;
        return true;
      }
    }
    if (Eat("<")) {
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        *op = RelOp::kNthChild;
        *n = ParseDigits();
      } else {
        *op = RelOp::kChild;
      }
      return true;
    }
    if (Eat(">")) {
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        *op = RelOp::kNthChildOf;
        *n = ParseDigits();
      } else {
        *op = RelOp::kParent;
      }
      return true;
    }
    pos_ = save;
    return false;
  }

  int ParseDigits() {
    int v = 0;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      v = v * 10 + (Peek() - '0');
      ++pos_;
    }
    return v;
  }

  /// relation target: a spec, or a parenthesized pattern node.
  Result<std::unique_ptr<PatternNode>> ParseTarget() {
    SkipWs();
    if (Peek() == '(') {
      ++pos_;
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<PatternNode> node, ParseNode());
      SkipWs();
      if (!Eat(")")) return Error("expected ')'");
      return node;
    }
    auto node = std::make_unique<PatternNode>();
    LPATH_ASSIGN_OR_RETURN(node->spec, ParseSpec());
    return node;
  }

  Result<Relation> ParseRelation() {
    SkipWs();
    Relation rel;
    if (Eat("!")) rel.negated = true;
    SkipWs();
    if (!TryParseRelOp(&rel.op, &rel.n)) {
      return Error("expected relation operator");
    }
    if ((rel.op == RelOp::kNthChild || rel.op == RelOp::kNthChildOf) &&
        rel.n == 0) {
      return Error("child ordinal must be nonzero");
    }
    LPATH_ASSIGN_OR_RETURN(rel.target, ParseTarget());
    return rel;
  }

  /// True if a relation (or bracketed group / negation) starts here.
  bool AtRelStart() {
    SkipWs();
    const char c = Peek();
    return c == '<' || c == '>' || c == '.' || c == ',' || c == '$' ||
           c == '!' || c == '[';
  }

  Result<std::unique_ptr<RelExpr>> ParseRelUnary() {
    SkipWs();
    if (Peek() == '[') {
      ++pos_;
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<RelExpr> inner, ParseRelOr());
      SkipWs();
      if (!Eat("]")) return Error("expected ']'");
      return inner;
    }
    if (Peek() == '!' && Peek(1) == '[') {
      return Status::NotSupported(
          "![...] groups are not supported; negate individual relations");
    }
    auto node = std::make_unique<RelExpr>(RelExpr::Kind::kRel);
    LPATH_ASSIGN_OR_RETURN(node->rel, ParseRelation());
    return node;
  }

  Result<std::unique_ptr<RelExpr>> ParseRelAnd() {
    LPATH_ASSIGN_OR_RETURN(std::unique_ptr<RelExpr> lhs, ParseRelUnary());
    for (;;) {
      SkipWs();
      const bool amp = Peek() == '&';
      if (amp) ++pos_;
      if (!amp && !AtRelStart()) return lhs;
      if (!amp && Peek() == '|') return lhs;
      // implicit & between consecutive relations
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<RelExpr> rhs, ParseRelUnary());
      auto node = std::make_unique<RelExpr>(RelExpr::Kind::kAnd);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  Result<std::unique_ptr<RelExpr>> ParseRelOr() {
    LPATH_ASSIGN_OR_RETURN(std::unique_ptr<RelExpr> lhs, ParseRelAnd());
    for (;;) {
      SkipWs();
      if (Peek() != '|') return lhs;
      ++pos_;
      LPATH_ASSIGN_OR_RETURN(std::unique_ptr<RelExpr> rhs, ParseRelAnd());
      auto node = std::make_unique<RelExpr>(RelExpr::Kind::kOr);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  Result<std::unique_ptr<PatternNode>> ParseNode() {
    auto node = std::make_unique<PatternNode>();
    LPATH_ASSIGN_OR_RETURN(node->spec, ParseSpec());
    SkipWs();
    if (AtRelStart()) {
      LPATH_ASSIGN_OR_RETURN(node->rels, ParseRelOr());
    }
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string_view RelOpName(RelOp op) { return RelOpToken(op); }

Result<std::unique_ptr<Pattern>> ParsePattern(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace tgrep
}  // namespace lpath
