#include "tgrep/engine.h"

#include "tgrep/parser.h"

namespace lpath {
namespace tgrep {

Result<QueryResult> TGrep2Engine::Run(const std::string& query) const {
  LPATH_ASSIGN_OR_RETURN(std::unique_ptr<Pattern> pattern,
                         ParsePattern(query));
  LPATH_ASSIGN_OR_RETURN(std::vector<Matcher::TreeMatches> matches,
                         matcher_.Match(*pattern));
  QueryResult out;
  for (const Matcher::TreeMatches& m : matches) {
    for (int32_t id : m.elem_ids) {
      out.hits.push_back(Hit{m.tid, id});
    }
  }
  out.Normalize();
  return out;
}

}  // namespace tgrep
}  // namespace lpath
