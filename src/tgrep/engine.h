// TGrep2Engine: the QueryEngine facade over the TGrep2-style baseline.

#ifndef LPATHDB_TGREP_ENGINE_H_
#define LPATHDB_TGREP_ENGINE_H_

#include <memory>
#include <string>

#include "lpath/engine.h"
#include "tgrep/corpus_file.h"
#include "tgrep/matcher.h"

namespace lpath {
namespace tgrep {

/// Query engine speaking the TGrep2 pattern language. Results are distinct
/// head nodes mapped into the shared (tid, id) space, so counts are directly
/// comparable with the LPath engines when patterns are written head-out.
class TGrep2Engine : public QueryEngine {
 public:
  /// Compiles the corpus into the binary-image form (what `tgrep2 -p` does).
  explicit TGrep2Engine(const Corpus& corpus)
      : corpus_(TgrepCorpus::Build(corpus)), matcher_(corpus_) {}

  /// Adopts an already compiled (e.g. loaded) corpus image.
  explicit TGrep2Engine(TgrepCorpus corpus)
      : corpus_(std::move(corpus)), matcher_(corpus_) {}

  std::string name() const override { return "TGrep2"; }

  Result<QueryResult> Run(const std::string& query) const override;

  const TgrepCorpus& corpus() const { return corpus_; }

 private:
  TgrepCorpus corpus_;
  Matcher matcher_;
};

}  // namespace tgrep
}  // namespace lpath

#endif  // LPATHDB_TGREP_ENGINE_H_
