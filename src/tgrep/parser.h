// Parser for the TGrep2-style pattern language (see tgrep/pattern.h).

#ifndef LPATHDB_TGREP_PARSER_H_
#define LPATHDB_TGREP_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "tgrep/pattern.h"

namespace lpath {
namespace tgrep {

/// Parses one pattern. Errors carry byte offsets.
Result<std::unique_ptr<Pattern>> ParsePattern(std::string_view text);

}  // namespace tgrep
}  // namespace lpath

#endif  // LPATHDB_TGREP_PARSER_H_
