// TGrep2's preprocessed corpus: the tool compiles a treebank into a binary
// corpus image with an index of the labels occurring in each tree, then
// matches against that image. We reproduce both halves: TgrepCorpus is the
// in-memory image (words are explicit leaf nodes, unlike the @lex-attribute
// model used elsewhere), with Save/Load for the on-disk format.

#ifndef LPATHDB_TGREP_CORPUS_FILE_H_
#define LPATHDB_TGREP_CORPUS_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "tree/corpus.h"

namespace lpath {
namespace tgrep {

/// One tree in TGrep2 form: elements plus word leaves, pre-order arrays,
/// and terminal intervals (identical to the LPath labeling restricted to
/// elements, so adjacency agrees across engines).
struct TgrepTree {
  std::vector<int32_t> parent;        // -1 for the root
  std::vector<int32_t> first_child;   // -1 for terminals
  std::vector<int32_t> last_child;
  std::vector<int32_t> next_sibling;
  std::vector<int32_t> prev_sibling;
  std::vector<Symbol> label;          // tag symbol, or word symbol for words
  std::vector<uint8_t> is_word;
  std::vector<int32_t> left, right;   // terminal intervals
  /// Original element id (1-based pre-order in the source Tree); for word
  /// leaves, the id of the pre-terminal above them (so results map to the
  /// same (tid, id) space as the other engines).
  std::vector<int32_t> elem_id;

  size_t size() const { return label.size(); }
};

/// The compiled corpus: trees + dictionary + per-label tree index.
class TgrepCorpus {
 public:
  TgrepCorpus() = default;
  TgrepCorpus(TgrepCorpus&&) = default;
  TgrepCorpus& operator=(TgrepCorpus&&) = default;

  /// Compiles from the shared tree model (@lex attributes become word
  /// leaves). The corpus is self-contained afterwards.
  static TgrepCorpus Build(const Corpus& corpus);

  size_t size() const { return trees_.size(); }
  const TgrepTree& tree(size_t i) const { return trees_[i]; }
  const Interner& interner() const { return interner_; }

  /// Trees whose label set contains `label` (tags and words alike) — the
  /// index TGrep2 uses to skip trees. Sorted, unique.
  const std::vector<int32_t>& TreesWithLabel(Symbol label) const;

  /// Symbol lookup in this corpus's own dictionary.
  Symbol Lookup(std::string_view s) const { return interner_.Lookup(s); }

  /// Binary image I/O ("LTG2" format).
  Status Save(const std::string& path) const;
  static Result<TgrepCorpus> Load(const std::string& path);

  /// Structural invariants (used after Load).
  Status Validate() const;

 private:
  Interner interner_;
  std::vector<TgrepTree> trees_;
  // label symbol -> sorted tree ids.
  std::vector<std::vector<int32_t>> label_index_;
  static const std::vector<int32_t> kEmptyIndex;

  void BuildIndex();
};

}  // namespace tgrep
}  // namespace lpath

#endif  // LPATHDB_TGREP_CORPUS_FILE_H_
