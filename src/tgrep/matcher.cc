#include "tgrep/matcher.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace lpath {
namespace tgrep {

namespace {

/// Per-tree match state: the tree, the shared dictionary, and the named
/// bindings (with rollback on backtrack).
class TreeMatcher {
 public:
  TreeMatcher(const TgrepTree& tree, const Interner& interner)
      : t_(tree), interner_(interner) {}

  /// Tries `pat` at `node` with a fresh binding environment.
  bool MatchHead(int32_t node, const PatternNode& pat) {
    trail_.clear();
    return MatchNode(node, pat);
  }

 private:
  /// Does `node` (with current bindings) satisfy `pat`? Bindings made
  /// during a failed attempt are rolled back via the trail.
  bool MatchNode(int32_t node, const PatternNode& pat) {
    if (!SpecMatches(node, pat.spec)) return false;
    const size_t mark = trail_.size();
    if (!pat.spec.bind_name.empty()) {
      trail_.emplace_back(pat.spec.bind_name, node);
    }
    bool ok = true;
    if (pat.rels != nullptr) ok = MatchRels(node, *pat.rels);
    if (!ok) trail_.resize(mark);
    return ok;
  }

  /// Most-recent binding for a name (define-before-use, as in TGrep2).
  const int32_t* LookupBinding(const std::string& name) const {
    for (auto it = trail_.rbegin(); it != trail_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  bool SpecMatches(int32_t node, const NodeSpec& spec) {
    switch (spec.kind) {
      case NodeSpec::Kind::kAny:
        return true;
      case NodeSpec::Kind::kLiteral: {
        std::string_view label = interner_.name(t_.label[node]);
        for (const std::string& alt : spec.alts) {
          if (label == alt) return true;
        }
        return false;
      }
      case NodeSpec::Kind::kRegex: {
        const std::string label(interner_.name(t_.label[node]));
        return std::regex_search(label, *spec.regex);
      }
      case NodeSpec::Kind::kBackref: {
        const int32_t* bound = LookupBinding(spec.backref);
        return bound != nullptr && *bound == node;
      }
    }
    return false;
  }

  bool MatchRels(int32_t node, const RelExpr& e) {
    switch (e.kind) {
      case RelExpr::Kind::kAnd:
        return MatchRels(node, *e.lhs) && MatchRels(node, *e.rhs);
      case RelExpr::Kind::kOr:
        return MatchRels(node, *e.lhs) || MatchRels(node, *e.rhs);
      case RelExpr::Kind::kRel: {
        const bool found = ExistsTarget(node, e.rel);
        return e.rel.negated ? !found : found;
      }
    }
    return false;
  }

  /// Enumerates candidates for relation `rel` from `node` and tries the
  /// target pattern on each.
  bool ExistsTarget(int32_t a, const Relation& rel) {
    const PatternNode& target = *rel.target;
    auto try_node = [&](int32_t b) {
      return b >= 0 && MatchNode(b, target);
    };
    const int32_t n = static_cast<int32_t>(t_.size());
    switch (rel.op) {
      case RelOp::kChild: {
        for (int32_t c = t_.first_child[a]; c >= 0; c = t_.next_sibling[c]) {
          if (try_node(c)) return true;
        }
        return false;
      }
      case RelOp::kParent:
        return try_node(t_.parent[a]);
      case RelOp::kDescendant: {
        const int32_t end = SubtreeEnd(a);
        for (int32_t d = a + 1; d < end; ++d) {
          if (try_node(d)) return true;
        }
        return false;
      }
      case RelOp::kAncestor: {
        for (int32_t p = t_.parent[a]; p >= 0; p = t_.parent[p]) {
          if (try_node(p)) return true;
        }
        return false;
      }
      case RelOp::kNthChild:
        return try_node(NthChild(a, rel.n));
      case RelOp::kNthChildOf: {
        const int32_t p = t_.parent[a];
        if (p < 0 || NthChild(p, rel.n) != a) return false;
        return try_node(p);
      }
      case RelOp::kFirstChild:
        return try_node(t_.first_child[a]);
      case RelOp::kLastChild:
        return try_node(t_.last_child[a]);
      case RelOp::kOnlyChild: {
        const int32_t c = t_.first_child[a];
        if (c < 0 || t_.next_sibling[c] >= 0) return false;
        return try_node(c);
      }
      case RelOp::kIsFirstChildOf: {
        const int32_t p = t_.parent[a];
        if (p < 0 || t_.first_child[p] != a) return false;
        return try_node(p);
      }
      case RelOp::kIsLastChildOf: {
        const int32_t p = t_.parent[a];
        if (p < 0 || t_.last_child[p] != a) return false;
        return try_node(p);
      }
      case RelOp::kIsOnlyChildOf: {
        const int32_t p = t_.parent[a];
        if (p < 0 || t_.first_child[p] != a || t_.last_child[p] != a) {
          return false;
        }
        return try_node(p);
      }
      case RelOp::kLeftmostDesc: {
        for (int32_t c = t_.first_child[a]; c >= 0; c = t_.first_child[c]) {
          if (try_node(c)) return true;
        }
        return false;
      }
      case RelOp::kRightmostDesc: {
        for (int32_t c = t_.last_child[a]; c >= 0; c = t_.last_child[c]) {
          if (try_node(c)) return true;
        }
        return false;
      }
      case RelOp::kIsLeftmostDescOf: {
        // B is an ancestor of A with B.left == A.left.
        for (int32_t p = t_.parent[a]; p >= 0; p = t_.parent[p]) {
          if (t_.left[p] != t_.left[a]) break;
          if (try_node(p)) return true;
        }
        return false;
      }
      case RelOp::kIsRightmostDescOf: {
        for (int32_t p = t_.parent[a]; p >= 0; p = t_.parent[p]) {
          if (t_.right[p] != t_.right[a]) break;
          if (try_node(p)) return true;
        }
        return false;
      }
      case RelOp::kImmPrecedes: {
        // B starts where A's terminals end. Pre-order ids are sorted by
        // left, so the candidates form one contiguous id range.
        for (int32_t b = FirstWithLeftGe(t_.right[a]);
             b < n && t_.left[b] == t_.right[a]; ++b) {
          if (try_node(b)) return true;
        }
        return false;
      }
      case RelOp::kImmFollows: {
        for (int32_t b = FirstWithLeftGe(t_.left[a]) - 1; b >= 0; --b) {
          if (t_.right[b] == t_.left[a] && try_node(b)) return true;
        }
        return false;
      }
      case RelOp::kPrecedes: {
        for (int32_t b = FirstWithLeftGe(t_.right[a]); b < n; ++b) {
          if (try_node(b)) return true;
        }
        return false;
      }
      case RelOp::kFollows: {
        for (int32_t b = FirstWithLeftGe(t_.left[a]) - 1; b >= 0; --b) {
          if (t_.right[b] <= t_.left[a] && try_node(b)) return true;
        }
        return false;
      }
      case RelOp::kSister: {
        const int32_t p = t_.parent[a];
        if (p < 0) return false;
        for (int32_t s = t_.first_child[p]; s >= 0; s = t_.next_sibling[s]) {
          if (s != a && try_node(s)) return true;
        }
        return false;
      }
      case RelOp::kSisterImmPrecedes:
        return try_node(t_.next_sibling[a]);
      case RelOp::kSisterImmFollows:
        return try_node(t_.prev_sibling[a]);
      case RelOp::kSisterPrecedes: {
        for (int32_t s = t_.next_sibling[a]; s >= 0; s = t_.next_sibling[s]) {
          if (try_node(s)) return true;
        }
        return false;
      }
      case RelOp::kSisterFollows: {
        for (int32_t s = t_.prev_sibling[a]; s >= 0; s = t_.prev_sibling[s]) {
          if (try_node(s)) return true;
        }
        return false;
      }
    }
    return false;
  }

  int32_t NthChild(int32_t a, int n) const {
    if (n > 0) {
      int32_t c = t_.first_child[a];
      for (int i = 1; c >= 0 && i < n; ++i) c = t_.next_sibling[c];
      return c;
    }
    int32_t c = t_.last_child[a];
    for (int i = -1; c >= 0 && i > n; --i) c = t_.prev_sibling[c];
    return c;
  }

  int32_t SubtreeEnd(int32_t a) const {
    int32_t cur = a;
    for (;;) {
      if (t_.next_sibling[cur] >= 0) return t_.next_sibling[cur];
      cur = t_.parent[cur];
      if (cur < 0) return static_cast<int32_t>(t_.size());
    }
  }

  /// First pre-order id with left >= v (left is non-decreasing in id).
  int32_t FirstWithLeftGe(int32_t v) const {
    int32_t lo = 0, hi = static_cast<int32_t>(t_.size());
    while (lo < hi) {
      const int32_t mid = lo + (hi - lo) / 2;
      if (t_.left[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  const TgrepTree& t_;
  const Interner& interner_;
  std::vector<std::pair<std::string, int32_t>> trail_;
};

/// Collects literal labels that every match must contain (conjunctive,
/// non-negated context only), to drive the tree-skipping index.
void CollectRequiredLabels(const PatternNode& pat, bool negated,
                           std::vector<std::string>* out);

void CollectRequiredLabels(const RelExpr& e, bool negated,
                           std::vector<std::string>* out) {
  switch (e.kind) {
    case RelExpr::Kind::kAnd:
      CollectRequiredLabels(*e.lhs, negated, out);
      CollectRequiredLabels(*e.rhs, negated, out);
      return;
    case RelExpr::Kind::kOr:
      return;  // neither branch is individually required
    case RelExpr::Kind::kRel:
      CollectRequiredLabels(*e.rel.target, negated || e.rel.negated, out);
      return;
  }
}

void CollectRequiredLabels(const PatternNode& pat, bool negated,
                           std::vector<std::string>* out) {
  if (!negated && pat.spec.kind == NodeSpec::Kind::kLiteral &&
      pat.spec.alts.size() == 1) {
    out->push_back(pat.spec.alts[0]);
  }
  if (pat.rels != nullptr) CollectRequiredLabels(*pat.rels, negated, out);
}

}  // namespace

Result<std::vector<Matcher::TreeMatches>> Matcher::Match(
    const Pattern& pattern) const {
  if (pattern.spec.kind == NodeSpec::Kind::kBackref) {
    return Status::InvalidArgument("pattern head cannot be a back-reference");
  }

  // Candidate trees via the label index.
  std::vector<std::string> required;
  CollectRequiredLabels(pattern, /*negated=*/false, &required);
  std::vector<int32_t> candidates;
  bool restricted = false;
  for (const std::string& label : required) {
    const Symbol sym = corpus_.Lookup(label);
    const std::vector<int32_t>& with =
        sym == kNoSymbol ? std::vector<int32_t>{} : corpus_.TreesWithLabel(sym);
    if (!restricted) {
      candidates = with;
      restricted = true;
    } else {
      std::vector<int32_t> merged;
      std::set_intersection(candidates.begin(), candidates.end(), with.begin(),
                            with.end(), std::back_inserter(merged));
      candidates = std::move(merged);
    }
    if (sym == kNoSymbol) {
      candidates.clear();
      break;
    }
  }
  if (!restricted) {
    candidates.resize(corpus_.size());
    for (size_t i = 0; i < corpus_.size(); ++i) {
      candidates[i] = static_cast<int32_t>(i);
    }
  }
  last_skipped_ = corpus_.size() - candidates.size();

  std::vector<TreeMatches> out;
  for (int32_t tid : candidates) {
    const TgrepTree& tree = corpus_.tree(tid);
    TreeMatcher tm(tree, corpus_.interner());
    std::set<int32_t> ids;
    for (int32_t node = 0; node < static_cast<int32_t>(tree.size()); ++node) {
      if (tm.MatchHead(node, pattern)) {
        ids.insert(tree.elem_id[node]);
      }
    }
    if (!ids.empty()) {
      TreeMatches m;
      m.tid = tid;
      m.elem_ids.assign(ids.begin(), ids.end());
      out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace tgrep
}  // namespace lpath
