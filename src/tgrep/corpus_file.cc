#include "tgrep/corpus_file.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>

namespace lpath {
namespace tgrep {

const std::vector<int32_t> TgrepCorpus::kEmptyIndex;

namespace {

constexpr char kMagic[4] = {'L', 'T', 'G', '2'};
constexpr uint32_t kVersion = 1;

/// Recursive conversion frame: copies one source node (and a word leaf for
/// its @lex attribute) in document order.
void Convert(const Tree& src, const Interner& src_interner, Symbol src_lex,
             Interner* dst_interner, TgrepTree* out) {
  const size_t n_elems = src.size();
  out->parent.reserve(n_elems * 2);

  auto add_node = [&](Symbol label, int32_t parent, bool word,
                      int32_t elem_id) -> int32_t {
    const int32_t id = static_cast<int32_t>(out->label.size());
    out->parent.push_back(parent);
    out->first_child.push_back(-1);
    out->last_child.push_back(-1);
    out->next_sibling.push_back(-1);
    out->prev_sibling.push_back(-1);
    out->label.push_back(label);
    out->is_word.push_back(word ? 1 : 0);
    out->left.push_back(0);
    out->right.push_back(0);
    out->elem_id.push_back(elem_id);
    if (parent >= 0) {
      if (out->last_child[parent] < 0) {
        out->first_child[parent] = out->last_child[parent] = id;
      } else {
        const int32_t prev = out->last_child[parent];
        out->next_sibling[prev] = id;
        out->prev_sibling[id] = prev;
        out->last_child[parent] = id;
      }
    }
    return id;
  };

  // Iterative DFS over the source tree, copying in document order.
  struct Frame {
    NodeId src;
    int32_t dst;
  };
  if (src.empty()) return;
  std::vector<Frame> stack;
  auto convert_node = [&](NodeId s, int32_t dst_parent) -> int32_t {
    const Symbol label = dst_interner->Intern(src_interner.name(src.name(s)));
    const int32_t dst = add_node(label, dst_parent, /*word=*/false, s + 1);
    const Symbol word_val =
        src_lex == kNoSymbol ? kNoSymbol : src.AttrValue(s, src_lex);
    if (word_val != kNoSymbol) {
      const Symbol word = dst_interner->Intern(src_interner.name(word_val));
      add_node(word, dst, /*word=*/true, s + 1);
    }
    return dst;
  };
  const int32_t root = convert_node(src.root(), -1);
  stack.push_back(Frame{src.first_child(src.root()), root});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.src == kNoNode) {
      stack.pop_back();
      continue;
    }
    const NodeId s = f.src;
    f.src = src.next_sibling(s);
    const int32_t dst = convert_node(s, f.dst);
    stack.push_back(Frame{src.first_child(s), dst});
  }

  // Terminal intervals: terminals are nodes without children (words, and
  // childless elements). Pre-order forward pass assigns leaves; backward
  // pass rolls spans up (children have larger pre-order ids).
  int32_t next_leaf = 1;
  const int32_t n = static_cast<int32_t>(out->label.size());
  for (int32_t i = 0; i < n; ++i) {
    if (out->first_child[i] < 0) {
      out->left[i] = next_leaf;
      out->right[i] = next_leaf + 1;
      ++next_leaf;
    }
  }
  for (int32_t i = n - 1; i >= 0; --i) {
    if (out->first_child[i] < 0) continue;
    out->left[i] = out->left[out->first_child[i]];
    out->right[i] = out->right[out->last_child[i]];
  }
}

template <typename T>
void WritePod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void WriteVec(std::ofstream& f, const std::vector<T>& v) {
  WritePod(f, static_cast<uint64_t>(v.size()));
  f.write(reinterpret_cast<const char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadPod(std::ifstream& f, T* v) {
  f.read(reinterpret_cast<char*>(v), sizeof(T));
  return f.good();
}

template <typename T>
bool ReadVec(std::ifstream& f, std::vector<T>* v, uint64_t limit) {
  uint64_t n = 0;
  if (!ReadPod(f, &n) || n > limit) return false;
  v->resize(n);
  f.read(reinterpret_cast<char*>(v->data()),
         static_cast<std::streamsize>(n * sizeof(T)));
  return f.good() || (n == 0 && f.eof());
}

constexpr uint64_t kSizeLimit = 1ull << 33;  // 8G entries: sanity bound

}  // namespace

TgrepCorpus TgrepCorpus::Build(const Corpus& corpus) {
  TgrepCorpus out;
  const Symbol lex = corpus.interner().Lookup("@lex");
  out.trees_.resize(corpus.size());
  for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
    Convert(corpus.tree(tid), corpus.interner(), lex, &out.interner_,
            &out.trees_[tid]);
  }
  out.BuildIndex();
  return out;
}

void TgrepCorpus::BuildIndex() {
  label_index_.assign(interner_.end_id(), {});
  for (int32_t tid = 0; tid < static_cast<int32_t>(trees_.size()); ++tid) {
    std::set<Symbol> seen;
    for (Symbol s : trees_[tid].label) seen.insert(s);
    for (Symbol s : seen) label_index_[s].push_back(tid);
  }
}

const std::vector<int32_t>& TgrepCorpus::TreesWithLabel(Symbol label) const {
  if (label == kNoSymbol || label >= label_index_.size()) return kEmptyIndex;
  return label_index_[label];
}

Status TgrepCorpus::Save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  f.write(kMagic, 4);
  WritePod(f, kVersion);
  // Dictionary.
  WritePod(f, static_cast<uint64_t>(interner_.size()));
  for (Symbol s = 1; s < interner_.end_id(); ++s) {
    std::string_view name = interner_.name(s);
    WritePod(f, static_cast<uint32_t>(name.size()));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  // Trees.
  WritePod(f, static_cast<uint64_t>(trees_.size()));
  for (const TgrepTree& t : trees_) {
    WriteVec(f, t.parent);
    WriteVec(f, t.first_child);
    WriteVec(f, t.last_child);
    WriteVec(f, t.next_sibling);
    WriteVec(f, t.prev_sibling);
    WriteVec(f, t.label);
    WriteVec(f, t.is_word);
    WriteVec(f, t.left);
    WriteVec(f, t.right);
    WriteVec(f, t.elem_id);
  }
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<TgrepCorpus> TgrepCorpus::Load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption(path + ": not an LTG2 corpus image");
  }
  uint32_t version = 0;
  if (!ReadPod(f, &version) || version != kVersion) {
    return Status::Corruption(path + ": unsupported version");
  }
  TgrepCorpus out;
  uint64_t dict = 0;
  if (!ReadPod(f, &dict) || dict > kSizeLimit) {
    return Status::Corruption(path + ": bad dictionary size");
  }
  for (uint64_t i = 0; i < dict; ++i) {
    uint32_t len = 0;
    if (!ReadPod(f, &len) || len > (1u << 20)) {
      return Status::Corruption(path + ": bad symbol length");
    }
    std::string s(len, '\0');
    f.read(s.data(), len);
    if (!f) return Status::Corruption(path + ": truncated dictionary");
    out.interner_.Intern(s);
  }
  uint64_t ntrees = 0;
  if (!ReadPod(f, &ntrees) || ntrees > kSizeLimit) {
    return Status::Corruption(path + ": bad tree count");
  }
  out.trees_.resize(ntrees);
  for (TgrepTree& t : out.trees_) {
    if (!ReadVec(f, &t.parent, kSizeLimit) ||
        !ReadVec(f, &t.first_child, kSizeLimit) ||
        !ReadVec(f, &t.last_child, kSizeLimit) ||
        !ReadVec(f, &t.next_sibling, kSizeLimit) ||
        !ReadVec(f, &t.prev_sibling, kSizeLimit) ||
        !ReadVec(f, &t.label, kSizeLimit) ||
        !ReadVec(f, &t.is_word, kSizeLimit) ||
        !ReadVec(f, &t.left, kSizeLimit) ||
        !ReadVec(f, &t.right, kSizeLimit) ||
        !ReadVec(f, &t.elem_id, kSizeLimit)) {
      return Status::Corruption(path + ": truncated tree data");
    }
  }
  LPATH_RETURN_IF_ERROR(out.Validate());
  out.BuildIndex();
  return out;
}

Status TgrepCorpus::Validate() const {
  for (size_t tid = 0; tid < trees_.size(); ++tid) {
    const TgrepTree& t = trees_[tid];
    const size_t n = t.size();
    if (t.parent.size() != n || t.first_child.size() != n ||
        t.last_child.size() != n || t.next_sibling.size() != n ||
        t.prev_sibling.size() != n || t.is_word.size() != n ||
        t.left.size() != n || t.right.size() != n || t.elem_id.size() != n) {
      return Status::Corruption("tree " + std::to_string(tid) +
                                ": column size mismatch");
    }
    for (size_t i = 0; i < n; ++i) {
      if (t.label[i] == kNoSymbol || t.label[i] >= interner_.end_id()) {
        return Status::Corruption("tree " + std::to_string(tid) +
                                  ": label out of dictionary");
      }
      const int32_t links[] = {t.parent[i], t.first_child[i], t.last_child[i],
                               t.next_sibling[i], t.prev_sibling[i]};
      for (int32_t link : links) {
        if (link < -1 || link >= static_cast<int32_t>(n)) {
          return Status::Corruption("tree " + std::to_string(tid) +
                                    ": link out of range");
        }
      }
      if (t.left[i] >= t.right[i]) {
        return Status::Corruption("tree " + std::to_string(tid) +
                                  ": empty interval");
      }
    }
  }
  return Status::OK();
}

}  // namespace tgrep
}  // namespace lpath
