// Abstract syntax of LPath (the grammar of Figure 4 layered over the XPath
// 1.0 core): location paths of steps, where each step has an axis, optional
// edge-alignment markers '^' / '$', a node test, predicates, and possibly
// opens a subtree scope '{...}'.
//
// Scoping is *suffix* scoping (RLP ::= HP | HP '{' RLP '}'): once a scope
// opens it extends to the end of the enclosing path, so it is recorded as a
// per-step counter (`opens_scopes`) plus a leading counter on the path for
// predicates of the form [{...}] that scope to their context node.

#ifndef LPATHDB_LPATH_AST_H_
#define LPATHDB_LPATH_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "label/axes.h"

namespace lpath {

struct PredExpr;
using PredExprPtr = std::unique_ptr<PredExpr>;

/// A step's node test: a tag name or the wildcard '_' (we also accept the
/// XPath spelling '*'; the paper reserves '*' for closures — footnote 2).
struct NodeTest {
  enum class Kind { kWildcard, kName };
  Kind kind = Kind::kWildcard;
  std::string name;

  static NodeTest Wildcard() { return NodeTest{}; }
  static NodeTest Name(std::string n) {
    return NodeTest{Kind::kName, std::move(n)};
  }
  bool is_wildcard() const { return kind == Kind::kWildcard; }
};

/// One location step.
struct Step {
  Axis axis = Axis::kChild;
  bool left_align = false;   ///< '^' — left edge of the innermost scope.
  bool right_align = false;  ///< '$' — right edge of the innermost scope.
  NodeTest test;
  std::vector<PredExprPtr> predicates;  ///< [..][..] — applied in order.
  int opens_scopes = 0;  ///< Number of '{' immediately after this step.
};

/// A (relative or absolute) location path.
struct LocationPath {
  /// True for top-level queries beginning with '/' or '//': evaluation
  /// starts at a virtual super-root above each tree's root.
  bool absolute = false;
  /// Number of '{' before the first step — the scope is the context node.
  int leading_scopes = 0;
  std::vector<Step> steps;
};

/// Comparison operators usable in predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Predicate expression tree.
///
/// Kinds:
///   kAnd / kOr    — lhs, rhs
///   kNot          — lhs
///   kPath         — existence of `path` from the context node
///   kCompare      — string-value of `path` (which must end in an attribute
///                   step) compared with `literal` via kEq / kNe
///   kPosition     — position() `cmp` number-or-last()
///   kLast         — bare last(), i.e. position() = last()
///   kNumber       — bare number [n], i.e. position() = n
struct PredExpr {
  enum class Kind {
    kAnd,
    kOr,
    kNot,
    kPath,
    kCompare,
    kPosition,
    kLast,
    kNumber,
  };

  Kind kind;
  PredExprPtr lhs;
  PredExprPtr rhs;
  LocationPath path;        // kPath, kCompare
  CmpOp cmp = CmpOp::kEq;   // kCompare, kPosition
  std::string literal;      // kCompare
  int64_t number = 0;       // kPosition (unless vs_last), kNumber
  bool vs_last = false;     // kPosition: compare against last()

  explicit PredExpr(Kind k) : kind(k) {}
};

/// Serializes a path back to LPath concrete syntax (round-trip tested).
std::string ToString(const LocationPath& path);
std::string ToString(const PredExpr& expr);
std::string ToString(const NodeTest& test);

/// Deep copies (the AST is otherwise move-only because of unique_ptr).
LocationPath ClonePath(const LocationPath& path);
PredExprPtr CloneExpr(const PredExpr& expr);

/// True if the path (including nested predicates) uses a feature the
/// relational translation rejects: position()/last() predicates or
/// comparisons on element-valued paths.
bool UsesPositionalPredicates(const LocationPath& path);

/// True if the path stays within the XPath-expressible fragment: no
/// immediate-* axes, no scopes, no edge alignment (Lemma 3.1). Such queries
/// can run on the XPath tag-position labeling of Figure 10.
bool IsXPathExpressible(const LocationPath& path);

}  // namespace lpath

#endif  // LPATHDB_LPATH_AST_H_
