#include "lpath/parser.h"

#include <cctype>
#include <string>

namespace lpath {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<LocationPath> ParseQuery() {
    SkipWs();
    LPATH_ASSIGN_OR_RETURN(LocationPath path, ParsePath(/*top_level=*/true));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    if (path.steps.empty()) {
      return Error("empty query");
    }
    return path;
  }

 private:
  // --- Character helpers ----------------------------------------------------
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("LPath parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  }
  static bool IsDigit(char c) {
    return std::isdigit(static_cast<unsigned char>(c));
  }

  /// Scans a tag token. A '-' belongs to the tag unless "->" or "-->"
  /// begins at that position (those are the immediate-following / following
  /// axes). Tags containing other characters (e.g. "PRP$", ".") must be
  /// quoted.
  std::string ScanTag() {
    size_t start = pos_;
    while (!AtEnd()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else if (c == '-') {
        if (Peek(1) == '>') break;                     // "->"
        if (Peek(1) == '-' && Peek(2) == '>') break;   // "-->"
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Scans a quoted string ('...' or "..."); no escape sequences.
  Result<std::string> ScanQuoted() {
    const char quote = text_[pos_];
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && text_[pos_] != quote) ++pos_;
    if (AtEnd()) return Error("unterminated quoted string");
    std::string out(text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return out;
  }

  // --- Axes -------------------------------------------------------------------
  /// Tries to parse an axis at the current position. Returns true and sets
  /// `axis` on success; leaves pos_ unchanged on failure. `first_relative`
  /// permits a bare node test (implicit child axis).
  bool TryParseAxisSymbol(Axis* axis) {
    // Longest-match order matters within each family.
    struct Entry {
      std::string_view tok;
      Axis axis;
    };
    static constexpr Entry kEntries[] = {
        {"//", Axis::kDescendant},
        {"/", Axis::kChild},
        {"\\\\", Axis::kAncestor},
        {"\\", Axis::kParent},
        {"-->", Axis::kFollowing},
        {"->", Axis::kImmediateFollowing},
        {"<--", Axis::kPreceding},
        {"<==", Axis::kPrecedingSibling},
        {"<=", Axis::kImmediatePrecedingSibling},
        {"<-", Axis::kImmediatePreceding},
        {"==>", Axis::kFollowingSibling},
        {"=>", Axis::kImmediateFollowingSibling},
        {"@", Axis::kAttribute},
    };
    for (const Entry& e : kEntries) {
      if (text_.substr(pos_, e.tok.size()) == e.tok) {
        pos_ += e.tok.size();
        *axis = e.axis;
        return true;
      }
    }
    return false;
  }

  /// Tries "axisname::"; restores position on failure.
  bool TryParseAxisName(Axis* axis) {
    size_t save = pos_;
    size_t p = pos_;
    while (p < text_.size() &&
           (std::isalpha(static_cast<unsigned char>(text_[p])) ||
            text_[p] == '-')) {
      ++p;
    }
    if (p == pos_ || text_.substr(p, 2) != "::") return false;
    std::string_view name = text_.substr(pos_, p - pos_);
    static constexpr std::pair<std::string_view, Axis> kNames[] = {
        {"child", Axis::kChild},
        {"descendant", Axis::kDescendant},
        {"descendant-or-self", Axis::kDescendantOrSelf},
        {"parent", Axis::kParent},
        {"ancestor", Axis::kAncestor},
        {"ancestor-or-self", Axis::kAncestorOrSelf},
        {"self", Axis::kSelf},
        {"attribute", Axis::kAttribute},
        {"following", Axis::kFollowing},
        {"following-or-self", Axis::kFollowingOrSelf},
        {"immediate-following", Axis::kImmediateFollowing},
        {"preceding", Axis::kPreceding},
        {"preceding-or-self", Axis::kPrecedingOrSelf},
        {"immediate-preceding", Axis::kImmediatePreceding},
        {"following-sibling", Axis::kFollowingSibling},
        {"following-sibling-or-self", Axis::kFollowingSiblingOrSelf},
        {"immediate-following-sibling", Axis::kImmediateFollowingSibling},
        {"preceding-sibling", Axis::kPrecedingSibling},
        {"preceding-sibling-or-self", Axis::kPrecedingSiblingOrSelf},
        {"immediate-preceding-sibling", Axis::kImmediatePrecedingSibling},
    };
    for (const auto& [n, a] : kNames) {
      if (name == n) {
        pos_ = p + 2;
        *axis = a;
        return true;
      }
    }
    pos_ = save;
    return false;
  }

  /// "/descendant::" and "\ancestor::" forms from the Figure 4 grammar.
  bool TryParseSlashAxisName(Axis* axis) {
    size_t save = pos_;
    if (Eat("/")) {
      if (TryParseAxisName(axis)) return true;
      pos_ = save;
      return false;
    }
    if (Eat("\\")) {
      if (TryParseAxisName(axis)) return true;
      pos_ = save;
      return false;
    }
    return false;
  }

  // --- Steps and paths ----------------------------------------------------
  /// Parses one step. `first` marks the first step of the path; `top_level`
  /// marks the outermost (absolute) path. Returns NotFound (without
  /// consuming) if no step starts here.
  Result<Step> ParseStep(bool first, bool top_level) {
    Step step;
    SkipWs();
    if (AtEnd()) return Status::NotFound("end");

    const char c = Peek();
    // Decide whether a step can start here at all.
    if (c == ']' || c == ')' || c == '}' || c == '!') {
      return Status::NotFound("no step");
    }

    bool have_axis = false;
    if (first && top_level) {
      // Absolute start: '//' (any node) or '/' (the root).
      if (Eat("//")) {
        step.axis = Axis::kDescendant;
      } else if (TryParseSlashAxisName(&step.axis)) {
        // "/descendant::" etc. — treated relative to the super-root.
      } else if (Eat("/")) {
        step.axis = Axis::kChild;
      } else {
        return Error("query must begin with '/' or '//'");
      }
      have_axis = true;
    } else {
      if (c == '=' ) {
        // '=>'/'==>' are axes; bare '=' is a comparison → not a step.
        if (!(Peek(1) == '>' || (Peek(1) == '=' && Peek(2) == '>'))) {
          return Status::NotFound("comparison");
        }
      }
      if (c == '<') {
        // '<-', '<--', '<=', '<==' are axes; anything else is not a step.
        if (!(Peek(1) == '-' || Peek(1) == '=')) {
          return Status::NotFound("comparison");
        }
      }
      if (c == '-' && !(Peek(1) == '>' || (Peek(1) == '-' && Peek(2) == '>'))) {
        // A tag starting with '-' (e.g. -NONE-) — only legal as a bare
        // first step (implicit child).
        if (!first) return Status::NotFound("no axis");
      }
      if (Eat("..")) {
        step.axis = Axis::kParent;
        step.test = NodeTest::Wildcard();
        return ParseStepTail(std::move(step), /*skip_test=*/true);
      }
      if (TryParseSlashAxisName(&step.axis)) {
        have_axis = true;
      } else if (TryParseAxisName(&step.axis)) {
        have_axis = true;
      } else if (TryParseAxisSymbol(&step.axis)) {
        have_axis = true;
      } else if (c == '.') {
        // '.': self axis; as a complete step when no node test follows.
        ++pos_;
        step.axis = Axis::kSelf;
        SkipWs();
        const char n = Peek();
        if (!(IsIdentChar(n) || n == '*' || n == '\'' || n == '"' ||
              n == '^')) {
          step.test = NodeTest::Wildcard();
          return ParseStepTail(std::move(step), /*skip_test=*/true);
        }
        have_axis = true;
      }
      if (!have_axis) {
        // Bare node test → implicit child axis, only as the first step of a
        // relative path.
        if (!first) return Status::NotFound("no axis");
        if (!(IsIdentChar(c) || c == '*' || c == '\'' || c == '"' ||
              c == '^')) {
          return Status::NotFound("no step");
        }
        step.axis = Axis::kChild;
      }
    }
    // XPath abbreviated steps after a '/' separator: "..", ".", "@name".
    if (step.axis == Axis::kChild) {
      if (Eat("..")) {
        step.axis = Axis::kParent;
        step.test = NodeTest::Wildcard();
        return ParseStepTail(std::move(step), /*skip_test=*/true);
      }
      if (Peek() == '.') {
        ++pos_;
        step.axis = Axis::kSelf;
        const char n = Peek();
        if (!(IsIdentChar(n) || n == '*' || n == '\'' || n == '"' ||
              n == '^')) {
          step.test = NodeTest::Wildcard();
          return ParseStepTail(std::move(step), /*skip_test=*/true);
        }
      } else if (Eat("@")) {
        step.axis = Axis::kAttribute;
      }
    }
    return ParseStepTail(std::move(step), /*skip_test=*/false);
  }

  Result<Step> ParseStepTail(Step step, bool skip_test) {
    if (!skip_test) {
      SkipWs();
      if (Eat("^")) step.left_align = true;
      SkipWs();
      const char c = Peek();
      if (c == '\'' || c == '"') {
        LPATH_ASSIGN_OR_RETURN(std::string name, ScanQuoted());
        if (name.empty()) return Error("empty quoted node test");
        step.test = NodeTest::Name(std::move(name));
      } else if (c == '*') {
        ++pos_;
        step.test = NodeTest::Wildcard();
      } else {
        std::string name = ScanTag();
        if (name.empty()) return Error("expected node test");
        if (name == "_") {
          step.test = NodeTest::Wildcard();
        } else {
          step.test = NodeTest::Name(std::move(name));
        }
      }
      if (Eat("$")) step.right_align = true;
    }
    // Predicates.
    SkipWs();
    while (Peek() == '[') {
      ++pos_;
      LPATH_ASSIGN_OR_RETURN(PredExprPtr pred, ParsePredOr());
      SkipWs();
      if (!Eat("]")) return Error("expected ']'");
      step.predicates.push_back(std::move(pred));
      SkipWs();
    }
    // Scope openings.
    while (Peek() == '{') {
      ++pos_;
      step.opens_scopes += 1;
      SkipWs();
    }
    return step;
  }

  Result<LocationPath> ParsePath(bool top_level) {
    LocationPath path;
    path.absolute = top_level;
    int open = 0;
    SkipWs();
    if (!top_level) {
      while (Peek() == '{') {
        ++pos_;
        path.leading_scopes += 1;
        ++open;
        SkipWs();
      }
    }
    bool first = true;
    bool closed_tail = false;
    for (;;) {
      SkipWs();
      if (Peek() == '}' && open > 0) {
        ++pos_;
        --open;
        closed_tail = true;
        continue;
      }
      Result<Step> step = ParseStep(first, top_level && first);
      if (!step.ok()) {
        if (step.status().IsNotFound()) break;
        return step.status();
      }
      if (closed_tail) {
        return Error("steps may not follow '}' (scopes extend to the end "
                     "of the path)");
      }
      open += step.value().opens_scopes;
      path.steps.push_back(std::move(step).value());
      first = false;
    }
    if (open > 0) return Error("unclosed '{'");
    if (path.steps.empty() && path.leading_scopes > 0) {
      return Error("scope without steps");
    }
    LPATH_RETURN_IF_ERROR(ValidatePath(path));
    return path;
  }

  Status ValidatePath(const LocationPath& path) const {
    for (size_t i = 0; i < path.steps.size(); ++i) {
      const Step& s = path.steps[i];
      if (s.axis == Axis::kAttribute) {
        if (i + 1 != path.steps.size()) {
          return Status::InvalidArgument(
              "attribute step must be the last step of its path");
        }
        if (s.left_align || s.right_align) {
          return Status::InvalidArgument(
              "edge alignment cannot apply to an attribute step");
        }
        if (s.opens_scopes > 0) {
          return Status::InvalidArgument(
              "an attribute step cannot open a scope");
        }
      }
    }
    return Status::OK();
  }

  // --- Predicates ------------------------------------------------------------
  /// Matches a keyword followed by a non-identifier character.
  bool EatKeyword(std::string_view kw) {
    size_t save = pos_;
    if (!Eat(kw)) return false;
    if (!AtEnd() && IsIdentChar(text_[pos_])) {
      pos_ = save;
      return false;
    }
    return true;
  }

  /// Matches "name()" with optional internal whitespace; restores on failure.
  bool EatCall(std::string_view name) {
    size_t save = pos_;
    if (!Eat(name)) return false;
    SkipWs();
    if (Eat("(")) {
      SkipWs();
      if (Eat(")")) return true;
    }
    pos_ = save;
    return false;
  }

  Result<PredExprPtr> ParsePredOr() {
    LPATH_ASSIGN_OR_RETURN(PredExprPtr lhs, ParsePredAnd());
    for (;;) {
      SkipWs();
      if (!EatKeyword("or")) return lhs;
      LPATH_ASSIGN_OR_RETURN(PredExprPtr rhs, ParsePredAnd());
      auto node = std::make_unique<PredExpr>(PredExpr::Kind::kOr);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  Result<PredExprPtr> ParsePredAnd() {
    LPATH_ASSIGN_OR_RETURN(PredExprPtr lhs, ParsePredUnary());
    for (;;) {
      SkipWs();
      if (!EatKeyword("and")) return lhs;
      LPATH_ASSIGN_OR_RETURN(PredExprPtr rhs, ParsePredUnary());
      auto node = std::make_unique<PredExpr>(PredExpr::Kind::kAnd);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  Result<CmpOp> ParseCmpOp() {
    SkipWs();
    if (Eat("!=")) return CmpOp::kNe;
    if (Eat("<=")) return CmpOp::kLe;
    if (Eat(">=")) return CmpOp::kGe;
    if (Eat("=")) return CmpOp::kEq;
    if (Eat("<")) return CmpOp::kLt;
    if (Eat(">")) return CmpOp::kGt;
    return Error("expected comparison operator");
  }

  Result<PredExprPtr> ParsePredUnary() {
    SkipWs();
    // not(...)
    {
      size_t save = pos_;
      if (EatKeyword("not")) {
        SkipWs();
        if (Eat("(")) {
          LPATH_ASSIGN_OR_RETURN(PredExprPtr inner, ParsePredOr());
          SkipWs();
          if (!Eat(")")) return Error("expected ')'");
          auto node = std::make_unique<PredExpr>(PredExpr::Kind::kNot);
          node->lhs = std::move(inner);
          return node;
        }
        pos_ = save;
      }
    }
    if (Peek() == '(') {
      ++pos_;
      LPATH_ASSIGN_OR_RETURN(PredExprPtr inner, ParsePredOr());
      SkipWs();
      if (!Eat(")")) return Error("expected ')'");
      return inner;
    }
    if (EatCall("position")) {
      LPATH_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      auto node = std::make_unique<PredExpr>(PredExpr::Kind::kPosition);
      node->cmp = op;
      SkipWs();
      if (EatCall("last")) {
        node->vs_last = true;
      } else {
        LPATH_ASSIGN_OR_RETURN(node->number, ParseNumber());
      }
      return node;
    }
    if (EatCall("last")) {
      return std::make_unique<PredExpr>(PredExpr::Kind::kLast);
    }
    if (IsDigit(Peek())) {
      const size_t save = pos_;
      auto node = std::make_unique<PredExpr>(PredExpr::Kind::kNumber);
      LPATH_ASSIGN_OR_RETURN(node->number, ParseNumber());
      // Disambiguate [3] from a path starting with tag "3..." — a digit
      // followed by identifier characters is a tag, so backtrack.
      if (!AtEnd() && IsIdentChar(text_[pos_])) {
        pos_ = save;
      } else {
        return node;
      }
    }
    // A relative path, optionally compared with a literal.
    LPATH_ASSIGN_OR_RETURN(LocationPath p, ParsePath(/*top_level=*/false));
    if (p.steps.empty()) return Error("expected predicate expression");
    SkipWs();
    const char c = Peek();
    if (c == '=' && Peek(1) != '>' && !(Peek(1) == '=' && Peek(2) == '>')) {
      ++pos_;
      return MakeCompare(std::move(p), CmpOp::kEq);
    }
    if (c == '!' && Peek(1) == '=') {
      pos_ += 2;
      return MakeCompare(std::move(p), CmpOp::kNe);
    }
    auto node = std::make_unique<PredExpr>(PredExpr::Kind::kPath);
    node->path = std::move(p);
    return node;
  }

  Result<PredExprPtr> MakeCompare(LocationPath p, CmpOp op) {
    if (p.steps.empty() || p.steps.back().axis != Axis::kAttribute) {
      return Status::NotSupported(
          "value comparison requires a path ending in an attribute step "
          "(e.g. @lex=saw)");
    }
    auto node = std::make_unique<PredExpr>(PredExpr::Kind::kCompare);
    node->path = std::move(p);
    node->cmp = op;
    SkipWs();
    const char c = Peek();
    if (c == '\'' || c == '"') {
      LPATH_ASSIGN_OR_RETURN(node->literal, ScanQuoted());
    } else {
      size_t start = pos_;
      while (!AtEnd()) {
        char ch = text_[pos_];
        if (std::isspace(static_cast<unsigned char>(ch)) || ch == ']' ||
            ch == ')' || ch == '}' || ch == '[' || ch == '(') {
          break;
        }
        ++pos_;
      }
      if (pos_ == start) return Error("expected comparison literal");
      node->literal = std::string(text_.substr(start, pos_ - start));
    }
    return node;
  }

  Result<int64_t> ParseNumber() {
    SkipWs();
    size_t start = pos_;
    while (!AtEnd() && IsDigit(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected number");
    return static_cast<int64_t>(
        std::stoll(std::string(text_.substr(start, pos_ - start))));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<LocationPath> ParseLPath(std::string_view query) {
  Parser parser(query);
  return parser.ParseQuery();
}

}  // namespace lpath
