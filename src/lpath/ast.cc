#include "lpath/ast.h"

#include <cctype>

namespace lpath {

namespace {

bool IsBareword(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.')) {
      return false;
    }
  }
  return true;
}

std::string QuoteIfNeeded(const std::string& s) {
  if (IsBareword(s)) return s;
  return "'" + s + "'";
}

// True if every character can appear in an unquoted tag token.
bool IsPlainTag(const std::string& s) {
  if (s.empty() || s == "_" || s == "*") return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-')) {
      return false;
    }
  }
  return true;
}

void AppendAxis(const Step& step, bool first_of_relative, std::string* out) {
  switch (step.axis) {
    case Axis::kChild:
      if (!first_of_relative) out->push_back('/');
      return;
    case Axis::kDescendant:
      out->append("//");
      return;
    case Axis::kParent:
      out->push_back('\\');
      return;
    case Axis::kAncestor:
      out->append("\\\\");
      return;
    case Axis::kSelf:
      out->push_back('.');
      return;
    case Axis::kAttribute:
      out->push_back('@');
      return;
    case Axis::kImmediateFollowing:
      out->append("->");
      return;
    case Axis::kFollowing:
      out->append("-->");
      return;
    case Axis::kImmediatePreceding:
      out->append("<-");
      return;
    case Axis::kPreceding:
      out->append("<--");
      return;
    case Axis::kImmediateFollowingSibling:
      out->append("=>");
      return;
    case Axis::kFollowingSibling:
      out->append("==>");
      return;
    case Axis::kImmediatePrecedingSibling:
      out->append("<=");
      return;
    case Axis::kPrecedingSibling:
      out->append("<==");
      return;
    default:
      out->append(AxisName(step.axis));
      out->append("::");
      return;
  }
}

void AppendPath(const LocationPath& path, std::string* out) {
  int open = 0;
  for (int i = 0; i < path.leading_scopes; ++i) {
    out->push_back('{');
    ++open;
  }
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const Step& step = path.steps[i];
    const bool first_of_relative =
        i == 0 && !path.absolute && path.leading_scopes == 0;
    // An absolute path's first step prints as '/' or '//' like any other.
    if (i == 0 && path.absolute) {
      out->append(step.axis == Axis::kChild ? "/" : "//");
    } else if (i == 0 && path.leading_scopes > 0 &&
               step.axis == Axis::kChild) {
      out->push_back('/');
    } else {
      AppendAxis(step, first_of_relative, out);
    }
    if (step.left_align) out->push_back('^');
    if (step.test.is_wildcard()) {
      out->push_back('_');
    } else if (IsPlainTag(step.test.name)) {
      out->append(step.test.name);
    } else {
      out->push_back('\'');
      out->append(step.test.name);
      out->push_back('\'');
    }
    if (step.right_align) out->push_back('$');
    for (const PredExprPtr& pred : step.predicates) {
      out->push_back('[');
      out->append(ToString(*pred));
      out->push_back(']');
    }
    for (int s = 0; s < step.opens_scopes; ++s) {
      out->push_back('{');
      ++open;
    }
  }
  for (int s = 0; s < open; ++s) out->push_back('}');
}

void AppendExpr(const PredExpr& e, std::string* out) {
  switch (e.kind) {
    case PredExpr::Kind::kAnd: {
      const bool lp = e.lhs->kind == PredExpr::Kind::kOr;
      const bool rp = e.rhs->kind == PredExpr::Kind::kOr;
      if (lp) out->push_back('(');
      AppendExpr(*e.lhs, out);
      if (lp) out->push_back(')');
      out->append(" and ");
      if (rp) out->push_back('(');
      AppendExpr(*e.rhs, out);
      if (rp) out->push_back(')');
      return;
    }
    case PredExpr::Kind::kOr:
      AppendExpr(*e.lhs, out);
      out->append(" or ");
      AppendExpr(*e.rhs, out);
      return;
    case PredExpr::Kind::kNot:
      out->append("not(");
      AppendExpr(*e.lhs, out);
      out->push_back(')');
      return;
    case PredExpr::Kind::kPath:
      AppendPath(e.path, out);
      return;
    case PredExpr::Kind::kCompare:
      AppendPath(e.path, out);
      out->append(e.cmp == CmpOp::kEq ? "=" : "!=");
      out->append(QuoteIfNeeded(e.literal));
      return;
    case PredExpr::Kind::kPosition: {
      out->append("position()");
      switch (e.cmp) {
        case CmpOp::kEq: out->append("="); break;
        case CmpOp::kNe: out->append("!="); break;
        case CmpOp::kLt: out->append("<"); break;
        case CmpOp::kLe: out->append("<="); break;
        case CmpOp::kGt: out->append(">"); break;
        case CmpOp::kGe: out->append(">="); break;
      }
      if (e.vs_last) {
        out->append("last()");
      } else {
        out->append(std::to_string(e.number));
      }
      return;
    }
    case PredExpr::Kind::kLast:
      out->append("last()");
      return;
    case PredExpr::Kind::kNumber:
      out->append(std::to_string(e.number));
      return;
  }
}

}  // namespace

std::string ToString(const NodeTest& test) {
  return test.is_wildcard() ? "_" : test.name;
}

std::string ToString(const LocationPath& path) {
  std::string out;
  AppendPath(path, &out);
  return out;
}

std::string ToString(const PredExpr& expr) {
  std::string out;
  AppendExpr(expr, &out);
  return out;
}

PredExprPtr CloneExpr(const PredExpr& e) {
  auto out = std::make_unique<PredExpr>(e.kind);
  if (e.lhs) out->lhs = CloneExpr(*e.lhs);
  if (e.rhs) out->rhs = CloneExpr(*e.rhs);
  out->path = ClonePath(e.path);
  out->cmp = e.cmp;
  out->literal = e.literal;
  out->number = e.number;
  out->vs_last = e.vs_last;
  return out;
}

LocationPath ClonePath(const LocationPath& path) {
  LocationPath out;
  out.absolute = path.absolute;
  out.leading_scopes = path.leading_scopes;
  out.steps.reserve(path.steps.size());
  for (const Step& s : path.steps) {
    Step copy;
    copy.axis = s.axis;
    copy.left_align = s.left_align;
    copy.right_align = s.right_align;
    copy.test = s.test;
    copy.opens_scopes = s.opens_scopes;
    copy.predicates.reserve(s.predicates.size());
    for (const PredExprPtr& p : s.predicates) {
      copy.predicates.push_back(CloneExpr(*p));
    }
    out.steps.push_back(std::move(copy));
  }
  return out;
}

namespace {

bool ExprUsesPositional(const PredExpr& e) {
  switch (e.kind) {
    case PredExpr::Kind::kPosition:
    case PredExpr::Kind::kLast:
    case PredExpr::Kind::kNumber:
      return true;
    case PredExpr::Kind::kAnd:
    case PredExpr::Kind::kOr:
      return ExprUsesPositional(*e.lhs) || ExprUsesPositional(*e.rhs);
    case PredExpr::Kind::kNot:
      return ExprUsesPositional(*e.lhs);
    case PredExpr::Kind::kPath:
    case PredExpr::Kind::kCompare:
      return UsesPositionalPredicates(e.path);
  }
  return false;
}

bool ExprXPathExpressible(const PredExpr& e) {
  switch (e.kind) {
    case PredExpr::Kind::kAnd:
    case PredExpr::Kind::kOr:
      return ExprXPathExpressible(*e.lhs) && ExprXPathExpressible(*e.rhs);
    case PredExpr::Kind::kNot:
      return ExprXPathExpressible(*e.lhs);
    case PredExpr::Kind::kPath:
    case PredExpr::Kind::kCompare:
      return IsXPathExpressible(e.path);
    default:
      return true;
  }
}

}  // namespace

bool UsesPositionalPredicates(const LocationPath& path) {
  for (const Step& s : path.steps) {
    for (const PredExprPtr& p : s.predicates) {
      if (ExprUsesPositional(*p)) return true;
    }
  }
  return false;
}

bool IsXPathExpressible(const LocationPath& path) {
  if (path.leading_scopes > 0) return false;
  for (const Step& s : path.steps) {
    if (IsImmediateAxis(s.axis)) return false;
    if (s.left_align || s.right_align) return false;
    if (s.opens_scopes > 0) return false;
    for (const PredExprPtr& p : s.predicates) {
      if (!ExprXPathExpressible(*p)) return false;
    }
  }
  return true;
}

}  // namespace lpath
