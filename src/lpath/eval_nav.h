// The navigational reference evaluator: a direct tree-walking interpreter of
// the full LPath language, including position()/last() predicates (needed
// for the paper's XPath-equivalence examples such as
// //V/following-sibling::_[position()=1][self::NP]).
//
// It is the ground truth the relational engines are differentially tested
// against, and doubles as an "interpreted, tree-at-a-time" engine in
// ablation benchmarks. Correctness first: axis enumeration is O(tree) per
// step where necessary.

#ifndef LPATHDB_LPATH_EVAL_NAV_H_
#define LPATHDB_LPATH_EVAL_NAV_H_

#include <memory>
#include <string>
#include <vector>

#include "label/labeler.h"
#include "lpath/ast.h"
#include "lpath/engine.h"
#include "tree/corpus.h"

namespace lpath {

/// Tree-walking LPath engine.
class NavigationalEngine : public QueryEngine {
 public:
  /// Precomputes per-tree LPath labels (used for scope containment and edge
  /// alignment). The corpus must outlive the engine.
  explicit NavigationalEngine(const Corpus& corpus);

  std::string name() const override { return "Navigational"; }

  /// Parses and evaluates an LPath query.
  Result<QueryResult> Run(const std::string& query) const override;

  /// Evaluates a pre-parsed query.
  Result<QueryResult> Eval(const LocationPath& path) const;

  /// Evaluates on a single tree; returns matched node ids (1-based).
  Result<std::vector<int32_t>> EvalTree(const LocationPath& path,
                                        TreeId tid) const;

 private:
  const Corpus& corpus_;
  // labels_[tid][node] — LPath labels for every tree.
  std::vector<std::vector<Label>> labels_;
};

}  // namespace lpath

#endif  // LPATHDB_LPATH_EVAL_NAV_H_
