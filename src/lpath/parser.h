// The LPath parser: hand-written contextual recursive descent over the raw
// character stream. Tokenizing lazily in context resolves the ambiguities
// between tag characters and operators (e.g. the tag "-NONE-" vs. the
// immediate-following axis "->", or "PRP$" vs. right-edge alignment, which
// requires quoting: //'PRP$').

#ifndef LPATHDB_LPATH_PARSER_H_
#define LPATHDB_LPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "lpath/ast.h"

namespace lpath {

/// Parses a complete top-level LPath query (it must be absolute, i.e. begin
/// with '/' or '//'). Errors carry the byte offset.
Result<LocationPath> ParseLPath(std::string_view query);

}  // namespace lpath

#endif  // LPATHDB_LPATH_PARSER_H_
