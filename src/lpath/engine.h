// The common query-engine interface that every system under test implements:
// the relational LPath engine, the XPath-labeling engine, the navigational
// reference evaluator, and the TGrep2 / CorpusSearch baselines. Each engine
// takes query text in its own language and returns the matched node set as
// (tid, id) pairs, so result sizes (Figure 6c) are directly comparable.

#ifndef LPATHDB_LPATH_ENGINE_H_
#define LPATHDB_LPATH_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace lpath {

/// One matched node: tree id + the node's per-tree id (1-based pre-order
/// position, identical to the `id` column of the relation).
struct Hit {
  int32_t tid = 0;
  int32_t id = 0;

  bool operator==(const Hit&) const = default;
  auto operator<=>(const Hit&) const = default;
};

/// A query's result: the distinct matched nodes, sorted.
struct QueryResult {
  std::vector<Hit> hits;

  size_t count() const { return hits.size(); }

  /// Sorts and removes duplicates; engines call this before returning.
  void Normalize() {
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  }

  bool operator==(const QueryResult&) const = default;
};

/// Abstract engine. Implementations hold whatever prebuilt state they need
/// (relations, indexes, binary corpus images); Run is const so one engine
/// can serve many queries.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Short system name for reports ("LPath", "TGrep2", ...).
  virtual std::string name() const = 0;

  /// Evaluates `query` (in this engine's own query language).
  virtual Result<QueryResult> Run(const std::string& query) const = 0;
};

}  // namespace lpath

#endif  // LPATHDB_LPATH_ENGINE_H_
