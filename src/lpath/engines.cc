#include "lpath/engines.h"

#include "lpath/parser.h"
#include "plan/sql_gen.h"
#include "sql/parser.h"

namespace lpath {

LPathEngine::LPathEngine(const NodeRelation& relation, Options options)
    : relation_(relation),
      options_(options),
      executor_(relation, options.exec) {}

std::string LPathEngine::name() const {
  return relation_.scheme() == LabelScheme::kLPath ? "LPath" : "XPathLabel";
}

Result<ExecPlan> LPathEngine::Translate(const std::string& query) const {
  LPATH_ASSIGN_OR_RETURN(LocationPath path, ParseLPath(query));
  CompileOptions copts;
  copts.scheme = relation_.scheme();
  copts.unnest_predicates = options_.unnest_predicates;
  return CompileLPath(path, copts);
}

Result<std::string> LPathEngine::TranslateToSql(const std::string& query) const {
  LPATH_ASSIGN_OR_RETURN(ExecPlan plan, Translate(query));
  return GenerateSql(plan);
}

Result<QueryResult> LPathEngine::Run(const std::string& query) const {
  return RunWithStats(query, nullptr);
}

Result<QueryResult> LPathEngine::RunWithStats(const std::string& query,
                                              sql::ExecStats* stats) const {
  LPATH_ASSIGN_OR_RETURN(ExecPlan plan, Translate(query));
  if (options_.via_sql_text) {
    const std::string sql_text = GenerateSql(plan);
    LPATH_ASSIGN_OR_RETURN(ExecPlan reparsed, sql::ParseSql(sql_text));
    return executor_.Execute(reparsed, stats);
  }
  return executor_.Execute(plan, stats);
}

Result<QueryResult> RunSql(const NodeRelation& relation,
                           const std::string& sql_text,
                           sql::ExecOptions exec) {
  LPATH_ASSIGN_OR_RETURN(ExecPlan plan, sql::ParseSql(sql_text));
  sql::PlanExecutor executor(relation, exec);
  return executor.Execute(plan);
}

}  // namespace lpath
