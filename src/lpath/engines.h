// The relational query engines of Section 5:
//
//   LPathEngine      — the paper's system: LPath → SQL → (mini) RDBMS over
//                      the Definition 4.1 labeling.
//   XPathLabelEngine — the Figure 10 baseline: identical machinery over the
//                      DeHaan-style tag-position labeling; supports only the
//                      XPath-expressible fragment.
//
// Both run the full loop by default: compile to a plan, render SQL text,
// parse the SQL back, optimize, execute. `Options::via_sql_text = false`
// skips the text round-trip (the plans are identical; ablation-benchmarked).

#ifndef LPATHDB_LPATH_ENGINES_H_
#define LPATHDB_LPATH_ENGINES_H_

#include <string>

#include "lpath/engine.h"
#include "plan/compile.h"
#include "sql/executor.h"
#include "storage/relation.h"

namespace lpath {

/// Relational LPath engine over a prebuilt NodeRelation (which must outlive
/// the engine and already use the matching labeling scheme).
class LPathEngine : public QueryEngine {
 public:
  struct Options {
    sql::ExecOptions exec;
    bool via_sql_text = true;  ///< run the full LPath→SQL→parse→execute loop
    /// Unnest positive predicates into the main join (see plan/compile.h).
    bool unnest_predicates = true;
  };

  explicit LPathEngine(const NodeRelation& relation)
      : LPathEngine(relation, Options()) {}
  LPathEngine(const NodeRelation& relation, Options options);

  std::string name() const override;

  /// Parses, translates and executes an LPath query.
  Result<QueryResult> Run(const std::string& query) const override;

  /// Like Run, but also reports executor work counters.
  Result<QueryResult> RunWithStats(const std::string& query,
                                   sql::ExecStats* stats) const;

  /// The SQL text the translator produces for `query` (what the paper's
  /// system would send to the RDBMS).
  Result<std::string> TranslateToSql(const std::string& query) const;

  /// Compiles a query to its execution plan without running it.
  Result<ExecPlan> Translate(const std::string& query) const;

  const NodeRelation& relation() const { return relation_; }

 private:
  const NodeRelation& relation_;
  Options options_;
  sql::PlanExecutor executor_;
};

/// Runs a raw SQL statement (in the generated dialect) directly against the
/// relation — the "RDBMS client" entry point.
Result<QueryResult> RunSql(const NodeRelation& relation,
                           const std::string& sql_text,
                           sql::ExecOptions exec = {});

}  // namespace lpath

#endif  // LPATHDB_LPATH_ENGINES_H_
