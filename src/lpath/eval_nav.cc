#include "lpath/eval_nav.h"

#include <algorithm>

#include "lpath/parser.h"

namespace lpath {

namespace {

/// Evaluation state: a context node plus the innermost enclosing scope node
/// (kNoNode = no scope, i.e. the whole tree). Scopes are suffix-nested, so
/// one scope per state suffices: containment in the innermost scope implies
/// containment in every outer one.
struct State {
  NodeId node;
  NodeId scope;
  auto operator<=>(const State&) const = default;
};

class TreeEval {
 public:
  TreeEval(const Tree& tree, const std::vector<Label>& labels,
           const Interner& interner)
      : tree_(tree), labels_(labels), interner_(interner) {}

  /// Evaluates a full path. For absolute paths `init` is ignored and the
  /// first step enumerates from the virtual super-root.
  Result<std::vector<State>> EvalPath(const LocationPath& path,
                                      std::vector<State> init) const {
    std::vector<State> states;
    size_t first_step = 0;
    if (path.absolute) {
      const Step& s0 = path.steps.front();
      std::vector<NodeId> cands;
      switch (s0.axis) {
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          cands.resize(tree_.size());
          for (NodeId i = 0; i < static_cast<NodeId>(tree_.size()); ++i) {
            cands[i] = i;
          }
          break;
        case Axis::kChild:
          if (!tree_.empty()) cands.push_back(tree_.root());
          break;
        default:
          return Status::NotSupported(
              "absolute paths must start with '/' or '//'");
      }
      LPATH_ASSIGN_OR_RETURN(
          std::vector<State> next,
          FilterStep(s0, State{kNoNode, kNoNode}, std::move(cands)));
      states = std::move(next);
      first_step = 1;
    } else {
      for (State& st : init) {
        if (path.leading_scopes > 0) st.scope = st.node;
      }
      states = std::move(init);
    }

    for (size_t i = first_step; i < path.steps.size(); ++i) {
      const Step& step = path.steps[i];
      std::vector<State> next;
      for (const State& st : states) {
        std::vector<NodeId> cands = Enumerate(step.axis, st.node);
        LPATH_ASSIGN_OR_RETURN(std::vector<State> got,
                               FilterStep(step, st, std::move(cands)));
        next.insert(next.end(), got.begin(), got.end());
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      states = std::move(next);
      if (states.empty()) break;
    }
    return states;
  }

  /// Existence of a relative path from `ctx`.
  Result<bool> Exists(const LocationPath& path, NodeId ctx) const {
    std::vector<State> init{State{ctx, kNoNode}};
    LPATH_ASSIGN_OR_RETURN(std::vector<State> out,
                           EvalPath(path, std::move(init)));
    return !out.empty();
  }

 private:
  const Label& label(NodeId n) const { return labels_[n]; }

  const Label& ScopeLabel(NodeId scope) const {
    return labels_[scope == kNoNode ? tree_.root() : scope];
  }

  Symbol TestSymbol(const NodeTest& test, bool attribute_axis) const {
    if (test.is_wildcard()) return kNoSymbol;  // wildcard marker
    if (attribute_axis) return interner_.Lookup("@" + test.name);
    return interner_.Lookup(test.name);
  }

  /// Enumerates axis candidates in axis order (document order for forward
  /// axes, reverse document order for reverse axes) — the order XPath
  /// position() counts in. Node ids are pre-order positions, and the left
  /// column is non-decreasing in pre-order, so following/preceding use
  /// binary search over id ranges.
  std::vector<NodeId> Enumerate(Axis axis, NodeId x) const {
    std::vector<NodeId> out;
    const NodeId n = static_cast<NodeId>(tree_.size());
    switch (axis) {
      case Axis::kSelf:
        out.push_back(x);
        break;
      case Axis::kChild:
        for (NodeId c = tree_.first_child(x); c != kNoNode;
             c = tree_.next_sibling(c)) {
          out.push_back(c);
        }
        break;
      case Axis::kDescendantOrSelf:
        out.push_back(x);
        [[fallthrough]];
      case Axis::kDescendant: {
        // Subtree = contiguous pre-order id range [x+1, end).
        const NodeId end = SubtreeEnd(x);
        for (NodeId i = x + 1; i < end; ++i) out.push_back(i);
        break;
      }
      case Axis::kParent:
        if (tree_.parent(x) != kNoNode) out.push_back(tree_.parent(x));
        break;
      case Axis::kAncestorOrSelf:
        out.push_back(x);
        [[fallthrough]];
      case Axis::kAncestor:
        for (NodeId p = tree_.parent(x); p != kNoNode; p = tree_.parent(p)) {
          out.push_back(p);
        }
        break;
      case Axis::kFollowingOrSelf:
        out.push_back(x);
        [[fallthrough]];
      case Axis::kFollowing: {
        for (NodeId i = FirstIdWithLeftGe(label(x).right); i < n; ++i) {
          out.push_back(i);
        }
        break;
      }
      case Axis::kImmediateFollowing: {
        const int32_t target = label(x).right;
        for (NodeId i = FirstIdWithLeftGe(target);
             i < n && labels_[i].left == target; ++i) {
          out.push_back(i);
        }
        break;
      }
      case Axis::kPrecedingOrSelf:
        out.push_back(x);
        [[fallthrough]];
      case Axis::kPreceding: {
        // Reverse document order; candidates have left < x.left.
        for (NodeId i = FirstIdWithLeftGe(label(x).left) - 1; i >= 0; --i) {
          if (labels_[i].right <= label(x).left) out.push_back(i);
        }
        break;
      }
      case Axis::kImmediatePreceding: {
        for (NodeId i = FirstIdWithLeftGe(label(x).left) - 1; i >= 0; --i) {
          if (labels_[i].right == label(x).left) out.push_back(i);
        }
        break;
      }
      case Axis::kFollowingSiblingOrSelf:
        out.push_back(x);
        [[fallthrough]];
      case Axis::kFollowingSibling:
        for (NodeId s = tree_.next_sibling(x); s != kNoNode;
             s = tree_.next_sibling(s)) {
          out.push_back(s);
        }
        break;
      case Axis::kImmediateFollowingSibling:
        if (tree_.next_sibling(x) != kNoNode) {
          out.push_back(tree_.next_sibling(x));
        }
        break;
      case Axis::kPrecedingSiblingOrSelf:
        out.push_back(x);
        [[fallthrough]];
      case Axis::kPrecedingSibling:
        for (NodeId s = tree_.prev_sibling(x); s != kNoNode;
             s = tree_.prev_sibling(s)) {
          out.push_back(s);
        }
        break;
      case Axis::kImmediatePrecedingSibling:
        if (tree_.prev_sibling(x) != kNoNode) {
          out.push_back(tree_.prev_sibling(x));
        }
        break;
      case Axis::kAttribute:
        // Handled by FilterStep (candidates are the element itself when a
        // matching attribute exists); enumerate the element.
        out.push_back(x);
        break;
    }
    return out;
  }

  /// End (exclusive) of x's subtree in pre-order ids.
  NodeId SubtreeEnd(NodeId x) const {
    NodeId cur = x;
    for (;;) {
      if (tree_.next_sibling(cur) != kNoNode) return tree_.next_sibling(cur);
      cur = tree_.parent(cur);
      if (cur == kNoNode) return static_cast<NodeId>(tree_.size());
    }
  }

  /// First pre-order id whose left >= value (left is non-decreasing in id).
  NodeId FirstIdWithLeftGe(int32_t value) const {
    NodeId lo = 0, hi = static_cast<NodeId>(tree_.size());
    while (lo < hi) {
      NodeId mid = lo + (hi - lo) / 2;
      if (labels_[mid].left < value) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Applies node test, edge alignment, scope containment and predicates to
  /// the raw axis candidates of one origin state.
  Result<std::vector<State>> FilterStep(const Step& step, State origin,
                                        std::vector<NodeId> cands) const {
    const bool is_attr_axis = step.axis == Axis::kAttribute;
    std::vector<NodeId> kept;
    kept.reserve(cands.size());
    const Symbol want = TestSymbol(step.test, is_attr_axis);
    for (NodeId cand : cands) {
      if (is_attr_axis) {
        if (!HasAttr(cand, step.test, want)) continue;
      } else {
        if (!step.test.is_wildcard() &&
            (want == kNoSymbol || tree_.name(cand) != want)) {
          continue;
        }
      }
      if (step.left_align &&
          label(cand).left != ScopeLabel(origin.scope).left) {
        continue;
      }
      if (step.right_align &&
          label(cand).right != ScopeLabel(origin.scope).right) {
        continue;
      }
      if (origin.scope != kNoNode && !is_attr_axis) {
        if (!LPathAxisMatches(Axis::kDescendantOrSelf, label(origin.scope),
                              label(cand))) {
          continue;
        }
      }
      kept.push_back(cand);
    }
    // Predicates, applied in sequence with XPath position semantics.
    for (const PredExprPtr& pred : step.predicates) {
      std::vector<NodeId> next;
      const int64_t size = static_cast<int64_t>(kept.size());
      for (size_t i = 0; i < kept.size(); ++i) {
        LPATH_ASSIGN_OR_RETURN(
            bool keep,
            EvalPred(*pred, kept[i], static_cast<int64_t>(i + 1), size));
        if (keep) next.push_back(kept[i]);
      }
      kept = std::move(next);
    }
    std::vector<State> out;
    out.reserve(kept.size());
    for (NodeId cand : kept) {
      NodeId scope = origin.scope;
      if (step.opens_scopes > 0) scope = cand;
      out.push_back(State{cand, scope});
    }
    return out;
  }

  bool HasAttr(NodeId node, const NodeTest& test, Symbol want) const {
    const int count = tree_.attr_count(node);
    if (count == 0) return false;
    if (test.is_wildcard()) return true;
    if (want == kNoSymbol) return false;
    for (int i = 0; i < count; ++i) {
      if (tree_.attrs(node)[i].name == want) return true;
    }
    return false;
  }

  Result<bool> EvalPred(const PredExpr& e, NodeId ctx, int64_t position,
                        int64_t size) const {
    switch (e.kind) {
      case PredExpr::Kind::kAnd: {
        LPATH_ASSIGN_OR_RETURN(bool l, EvalPred(*e.lhs, ctx, position, size));
        if (!l) return false;
        return EvalPred(*e.rhs, ctx, position, size);
      }
      case PredExpr::Kind::kOr: {
        LPATH_ASSIGN_OR_RETURN(bool l, EvalPred(*e.lhs, ctx, position, size));
        if (l) return true;
        return EvalPred(*e.rhs, ctx, position, size);
      }
      case PredExpr::Kind::kNot: {
        LPATH_ASSIGN_OR_RETURN(bool l, EvalPred(*e.lhs, ctx, position, size));
        return !l;
      }
      case PredExpr::Kind::kPath:
        return Exists(e.path, ctx);
      case PredExpr::Kind::kCompare:
        return EvalCompare(e, ctx);
      case PredExpr::Kind::kPosition: {
        const int64_t rhs = e.vs_last ? size : e.number;
        switch (e.cmp) {
          case CmpOp::kEq: return position == rhs;
          case CmpOp::kNe: return position != rhs;
          case CmpOp::kLt: return position < rhs;
          case CmpOp::kLe: return position <= rhs;
          case CmpOp::kGt: return position > rhs;
          case CmpOp::kGe: return position >= rhs;
        }
        return false;
      }
      case PredExpr::Kind::kLast:
        return position == size;
      case PredExpr::Kind::kNumber:
        return position == e.number;
    }
    return Status::Internal("unhandled predicate kind");
  }

  /// path=@attr comparison: evaluate the element prefix, then compare the
  /// attribute's value. XPath semantics: '=' is true iff a matching
  /// attribute exists with that value; '!=' iff one exists with another.
  Result<bool> EvalCompare(const PredExpr& e, NodeId ctx) const {
    const LocationPath& path = e.path;
    const Step& attr_step = path.steps.back();

    std::vector<State> elements;
    if (path.steps.size() == 1) {
      State st{ctx, kNoNode};
      if (path.leading_scopes > 0) st.scope = ctx;
      elements.push_back(st);
    } else {
      LocationPath prefix = ClonePath(path);
      prefix.steps.pop_back();
      LPATH_ASSIGN_OR_RETURN(
          elements, EvalPath(prefix, {State{ctx, kNoNode}}));
    }
    const Symbol want = TestSymbol(attr_step.test, /*attribute_axis=*/true);
    const Symbol literal = interner_.Lookup(e.literal);
    for (const State& st : elements) {
      const int count = tree_.attr_count(st.node);
      for (int i = 0; i < count; ++i) {
        const Attr& a = tree_.attrs(st.node)[i];
        if (!attr_step.test.is_wildcard() && a.name != want) continue;
        const bool equal = literal != kNoSymbol && a.value == literal;
        if (e.cmp == CmpOp::kEq ? equal : !equal) return true;
      }
    }
    return false;
  }

  const Tree& tree_;
  const std::vector<Label>& labels_;
  const Interner& interner_;
};

}  // namespace

NavigationalEngine::NavigationalEngine(const Corpus& corpus)
    : corpus_(corpus) {
  labels_.resize(corpus.size());
  for (TreeId tid = 0; tid < static_cast<TreeId>(corpus.size()); ++tid) {
    ComputeLPathLabels(corpus.tree(tid), &labels_[tid]);
  }
}

Result<QueryResult> NavigationalEngine::Run(const std::string& query) const {
  LPATH_ASSIGN_OR_RETURN(LocationPath path, ParseLPath(query));
  return Eval(path);
}

Result<QueryResult> NavigationalEngine::Eval(const LocationPath& path) const {
  QueryResult result;
  for (TreeId tid = 0; tid < static_cast<TreeId>(corpus_.size()); ++tid) {
    LPATH_ASSIGN_OR_RETURN(std::vector<int32_t> ids, EvalTree(path, tid));
    for (int32_t id : ids) result.hits.push_back(Hit{tid, id});
  }
  result.Normalize();
  return result;
}

Result<std::vector<int32_t>> NavigationalEngine::EvalTree(
    const LocationPath& path, TreeId tid) const {
  const Tree& tree = corpus_.tree(tid);
  if (tree.empty()) return std::vector<int32_t>{};
  TreeEval eval(tree, labels_[tid], corpus_.interner());
  LPATH_ASSIGN_OR_RETURN(std::vector<State> states, eval.EvalPath(path, {}));
  std::vector<int32_t> out;
  out.reserve(states.size());
  for (const State& st : states) out.push_back(st.node + 1);  // 1-based ids
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace lpath
