#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace lpath {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Cross-thread wake for the poll loop: pool threads write one byte into a
/// self-pipe the loop polls. Held by shared_ptr from every pool-thread
/// callback, so a wake can never hit a closed pipe.
struct NetServer::Wakeup {
  int fds[2] = {-1, -1};

  ~Wakeup() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }

  bool Open() {
    if (::pipe(fds) != 0) return false;
    return SetNonBlocking(fds[0]) && SetNonBlocking(fds[1]);
  }

  void Notify() {
    uint8_t b = 1;
    // A full pipe already guarantees a pending wake; EAGAIN is success.
    [[maybe_unused]] ssize_t n = ::write(fds[1], &b, 1);
  }

  void Drain() {
    uint8_t buf[64];
    while (::read(fds[0], buf, sizeof buf) > 0) {
    }
  }
};

/// One in-flight PREPARE/EXECUTE on a connection.
struct ReqState {
  std::atomic<bool> cancelled{false};
  std::atomic<uint64_t> rows{0};
};

/// One frame queued for writing. `data` marks STREAM_BATCH frames — the
/// only kind counted against the backpressure bound.
struct OutFrame {
  std::vector<uint8_t> bytes;
  bool data = false;
};

struct NetServer::Conn {
  int fd = -1;

  // --- Loop-thread-only state ----------------------------------------------
  std::vector<uint8_t> rbuf;
  std::vector<uint8_t> wbuf;  ///< partially written frame bytes
  size_t wbuf_pos = 0;
  Clock::time_point last_activity;
  bool hello_done = false;       ///< client HELLO accepted, reply queued
  bool goodbye = false;          ///< client said GOODBYE: no more reads
  bool goodbye_queued = false;   ///< our GOODBYE reply is in the queue
  bool close_after_flush = false;

  // --- Shared state (loop thread + pool threads), guarded by mu ------------
  std::mutex mu;
  std::condition_variable cv;  ///< waited on by backpressured producers
  std::deque<OutFrame> outq;
  size_t data_frames = 0;  ///< STREAM_BATCH entries currently in outq
  bool closed = false;     ///< set once, on teardown: producers drop
  std::unordered_map<uint32_t, std::shared_ptr<ReqState>> inflight;

  /// Pool-thread side of the queue: blocks while the data-frame bound is
  /// hit, drops everything once the connection is closed or the request
  /// cancelled. Returns false when the frame was dropped.
  bool EnqueueData(std::vector<uint8_t> frame, size_t bound,
                   const std::atomic<bool>& cancelled) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      return closed || cancelled.load(std::memory_order_relaxed) ||
             data_frames < bound;
    });
    if (closed || cancelled.load(std::memory_order_relaxed)) return false;
    outq.push_back(OutFrame{std::move(frame), /*data=*/true});
    ++data_frames;
    return true;
  }

  /// Control frames (STREAM_END, ERROR, HELLO, PING, GOODBYE) always
  /// enqueue — completion must never deadlock behind unsent rows.
  bool EnqueueControl(std::vector<uint8_t> frame) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return false;
    outq.push_back(OutFrame{std::move(frame), /*data=*/false});
    return true;
  }
};

NetServer::NetServer(db::Database* db, NetOptions options)
    : db_(db), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  wakeup_ = std::make_shared<Wakeup>();
  if (!wakeup_->Open()) {
    running_.store(false);
    return Status::IOError("self-pipe: " + std::string(std::strerror(errno)));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    Status status =
        Status::IOError("bind/listen " + options_.host + ":" +
                        std::to_string(options_.port) + ": " +
                        std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return status;
  }
  SetNonBlocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_.store(ntohs(bound.sin_port));
  }

  stopping_.store(false);
  loop_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (wakeup_) wakeup_->Notify();
  if (loop_.joinable()) loop_.join();
  running_.store(false);
  stopping_.store(false);
}

NetStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void NetServer::LoopMain() {
  Clock::time_point shutdown_deadline{};
  bool draining = false;

  while (true) {
    if (stopping_.load() && !draining) {
      // Begin graceful shutdown: no new connections, no new frames; cancel
      // what can be cancelled and give in-flight work the grace period to
      // stream its STREAM_ENDs and flush.
      draining = true;
      shutdown_deadline =
          Clock::now() + std::chrono::milliseconds(options_.shutdown_timeout_ms);
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& [fd, conn] : conns_) {
        std::lock_guard<std::mutex> lock(conn->mu);
        for (auto& [id, req] : conn->inflight) {
          req->cancelled.store(true, std::memory_order_relaxed);
        }
        conn->cv.notify_all();
      }
    }

    // Build the poll set: listener, self-pipe, every connection.
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Conn>> polled;
    if (listen_fd_ >= 0 && !draining) {
      pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
      polled.push_back(nullptr);
    }
    pfds.push_back(pollfd{wakeup_->fds[0], POLLIN, 0});
    polled.push_back(nullptr);
    for (auto& [fd, conn] : conns_) {
      short events = 0;
      if (!conn->goodbye && !conn->close_after_flush && !draining) {
        events |= POLLIN;
      }
      bool pending = conn->wbuf_pos < conn->wbuf.size();
      if (!pending) {
        std::lock_guard<std::mutex> lock(conn->mu);
        pending = !conn->outq.empty();
      }
      if (pending) events |= POLLOUT;
      pfds.push_back(pollfd{fd, events, 0});
      polled.push_back(conn);
    }

    ::poll(pfds.data(), pfds.size(),
           static_cast<int>(options_.poll_interval_ms));
    wakeup_->Drain();

    // Service the fds. Collect teardowns; never mutate conns_ mid-walk.
    std::vector<std::shared_ptr<Conn>> dead;
    for (size_t i = 0; i < pfds.size(); ++i) {
      if (polled[i] == nullptr) {
        if (pfds[i].fd == listen_fd_ && (pfds[i].revents & POLLIN)) {
          AcceptPending();
        }
        continue;
      }
      const std::shared_ptr<Conn>& conn = polled[i];
      bool alive = true;
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Peer hung up. Anything still buffered is undeliverable.
        alive = false;
      }
      if (alive && (pfds[i].revents & POLLIN)) {
        alive = HandleReadable(conn);
      }
      if (alive) alive = FlushWrites(conn);
      if (!alive) dead.push_back(conn);
    }
    for (const auto& conn : dead) CloseConn(conn);

    // Maintenance walk: idle timeouts, GOODBYE completion, drained closes.
    Clock::time_point now = Clock::now();
    std::vector<std::shared_ptr<Conn>> finished;
    for (auto& [fd, conn] : conns_) {
      size_t inflight_count;
      bool out_empty;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        inflight_count = conn->inflight.size();
        out_empty = conn->outq.empty();
      }
      bool flushed = out_empty && conn->wbuf_pos >= conn->wbuf.size();
      if (conn->goodbye && inflight_count == 0 && !conn->goodbye_queued) {
        conn->EnqueueControl(BuildFrame(MsgType::kGoodbye,
                                        kConnectionRequestId, {}));
        conn->goodbye_queued = true;
        flushed = false;
      }
      if ((conn->close_after_flush || conn->goodbye_queued) && flushed &&
          inflight_count == 0) {
        finished.push_back(conn);
        continue;
      }
      if (!draining && options_.idle_timeout_ms > 0 && inflight_count == 0 &&
          !conn->goodbye &&
          now - conn->last_activity >
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.idle_closes;
        finished.push_back(conn);
      }
    }
    for (const auto& conn : finished) CloseConn(conn);

    if (draining) {
      bool all_drained = true;
      for (auto& [fd, conn] : conns_) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->inflight.empty() || !conn->outq.empty() ||
            conn->wbuf_pos < conn->wbuf.size()) {
          all_drained = false;
          break;
        }
      }
      if (all_drained || now >= shutdown_deadline) {
        std::vector<std::shared_ptr<Conn>> rest;
        for (auto& [fd, conn] : conns_) rest.push_back(conn);
        for (const auto& conn : rest) CloseConn(conn);
        break;
      }
    }
  }
}

std::vector<uint8_t> NetServer::BuildFrame(MsgType type, uint32_t request_id,
                                           std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(type, request_id, payload, &out);
  return out;
}

void NetServer::AcceptPending() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->last_activity = Clock::now();

    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      std::vector<uint8_t> payload = EncodeError(ErrorPayload{
          WireCode::kResourceExhausted,
          "connection limit reached (" +
              std::to_string(options_.max_connections) + ")"});
      conn->EnqueueControl(
          BuildFrame(MsgType::kError, kConnectionRequestId, payload));
      conn->close_after_flush = true;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.refused_connections;
      }
    } else {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accepted;
    }
    conns_.emplace(fd, std::move(conn));
  }
}

bool NetServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  uint8_t buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(conn->fd, buf, sizeof buf);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), buf, buf + n);
      conn->last_activity = Clock::now();
      if (n < static_cast<ssize_t>(sizeof buf)) break;
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  size_t pos = 0;
  while (pos < conn->rbuf.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    FrameParse parse =
        ParseFrame({conn->rbuf.data() + pos, conn->rbuf.size() - pos},
                   options_.max_payload_bytes, &frame, &consumed, &error);
    if (parse == FrameParse::kNeedMore) break;
    if (parse == FrameParse::kBad) {
      SendFatalError(conn, WireCode::kProtocolError, error);
      // Keep what parsed before the damage; stop reading further.
      conn->rbuf.clear();
      return true;
    }
    pos += consumed;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames_in;
    }
    if (!DispatchFrame(conn, std::move(frame))) break;
  }
  conn->rbuf.erase(conn->rbuf.begin(), conn->rbuf.begin() + pos);
  return true;
}

void NetServer::SendFatalError(const std::shared_ptr<Conn>& conn,
                               WireCode code, const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
  }
  std::vector<uint8_t> payload = EncodeError(ErrorPayload{code, message});
  conn->EnqueueControl(
      BuildFrame(MsgType::kError, kConnectionRequestId, payload));
  conn->close_after_flush = true;
  // Fail whatever is still running; its STREAM_END would be undeliverable.
  std::lock_guard<std::mutex> lock(conn->mu);
  for (auto& [id, req] : conn->inflight) {
    req->cancelled.store(true, std::memory_order_relaxed);
  }
  conn->cv.notify_all();
}

bool NetServer::DispatchFrame(const std::shared_ptr<Conn>& conn, Frame frame) {
  if (!IsClientType(frame.type)) {
    SendFatalError(conn, WireCode::kProtocolError,
                   std::string("server-only message type ") +
                       std::string(MsgTypeName(frame.type)));
    return false;
  }
  if (!conn->hello_done && frame.type != MsgType::kHello) {
    SendFatalError(conn, WireCode::kProtocolError,
                   std::string(MsgTypeName(frame.type)) + " before HELLO");
    return false;
  }

  switch (frame.type) {
    case MsgType::kHello: {
      if (conn->hello_done) {
        SendFatalError(conn, WireCode::kProtocolError, "duplicate HELLO");
        return false;
      }
      Result<HelloPayload> hello = DecodeHello(frame.payload);
      if (!hello.ok()) {
        SendFatalError(conn, WireCode::kProtocolError,
                       hello.status().message());
        return false;
      }
      if (hello->version != kProtocolVersion) {
        SendFatalError(conn, WireCode::kVersionMismatch,
                       "server speaks version " +
                           std::to_string(kProtocolVersion) + ", client sent " +
                           std::to_string(hello->version));
        return false;
      }
      conn->hello_done = true;
      HelloPayload reply;
      reply.software = "lpathdb";
      reply.max_inflight = static_cast<uint32_t>(
          options_.max_inflight < 0 ? 0 : options_.max_inflight);
      std::vector<uint8_t> payload = EncodeHello(reply);
      conn->EnqueueControl(
          BuildFrame(MsgType::kHello, kConnectionRequestId, payload));
      return true;
    }

    case MsgType::kPing: {
      conn->EnqueueControl(
          BuildFrame(MsgType::kPing, frame.request_id, frame.payload));
      return true;
    }

    case MsgType::kGoodbye: {
      conn->goodbye = true;
      return false;  // stop dispatching buffered frames past the GOODBYE
    }

    case MsgType::kCancel: {
      std::lock_guard<std::mutex> lock(conn->mu);
      auto it = conn->inflight.find(frame.request_id);
      if (it != conn->inflight.end()) {
        it->second->cancelled.store(true, std::memory_order_relaxed);
        conn->cv.notify_all();
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.cancels;
      }
      // Unknown/finished id: idempotent no-op by design.
      return true;
    }

    case MsgType::kPrepare:
    case MsgType::kExecute: {
      if (frame.request_id == kConnectionRequestId) {
        SendFatalError(conn, WireCode::kProtocolError,
                       "request id 0 is reserved");
        return false;
      }
      Result<QueryPayload> query = DecodeQuery(frame.payload);
      if (!query.ok()) {
        SendFatalError(conn, WireCode::kProtocolError,
                       query.status().message());
        return false;
      }
      if (frame.type == MsgType::kPrepare) {
        HandlePrepare(conn, frame.request_id, *query);
      } else {
        StartExecute(conn, frame.request_id, std::move(*query));
      }
      return true;
    }

    case MsgType::kStreamBatch:
    case MsgType::kStreamEnd:
    case MsgType::kError:
      break;  // unreachable: filtered by IsClientType above
  }
  return true;
}

void NetServer::SendEnd(const std::shared_ptr<Conn>& conn, uint32_t request_id,
                        const Status& status, uint64_t total_rows) {
  EndPayload end;
  end.code = WireCodeFromStatus(status);
  end.message = status.message();
  end.total_rows = total_rows;
  std::vector<uint8_t> payload = EncodeEnd(end);
  conn->EnqueueControl(BuildFrame(MsgType::kStreamEnd, request_id, payload));
}

void NetServer::HandlePrepare(const std::shared_ptr<Conn>& conn,
                              uint32_t request_id, const QueryPayload& query) {
  // PREPARE compiles on the loop thread: plan compilation is small
  // compared to execution, and the prepared plan lands in the same
  // per-corpus cache a later EXECUTE (from any connection) will hit.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.prepares;
  }
  std::shared_ptr<service::QueryService> service = db_->service(query.corpus);
  if (service == nullptr) {
    SendEnd(conn, request_id,
            Status::NotFound("corpus not attached: " + query.corpus), 0);
    return;
  }
  auto plan = service->GetPlan(query.query);
  SendEnd(conn, request_id, plan.status(), 0);
}

void NetServer::StartExecute(const std::shared_ptr<Conn>& conn,
                             uint32_t request_id, QueryPayload query) {
  std::shared_ptr<ReqState> req;
  bool duplicate_id = false;
  bool refused = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight.count(request_id) != 0) {
      duplicate_id = true;  // reuse would interleave two requests' streams
    } else if (conn->inflight.size() >=
               static_cast<size_t>(std::max(options_.max_inflight, 0))) {
      refused = true;
    } else {
      req = std::make_shared<ReqState>();
      conn->inflight.emplace(request_id, req);
    }
  }
  if (duplicate_id) {
    SendFatalError(conn, WireCode::kProtocolError,
                   "request id " + std::to_string(request_id) +
                       " is already in flight");
    return;
  }
  if (refused) {
    std::vector<uint8_t> payload = EncodeError(ErrorPayload{
        WireCode::kResourceExhausted,
        "per-connection limit of " + std::to_string(options_.max_inflight) +
            " in-flight requests reached"});
    conn->EnqueueControl(BuildFrame(MsgType::kError, request_id, payload));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.refused_requests;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.executes;
  }

  // Everything a pool thread touches is captured by shared_ptr: the
  // connection, the wake pipe and the request state — never the server.
  std::shared_ptr<Wakeup> wakeup = wakeup_;
  size_t batch_rows = options_.batch_rows;
  size_t bound = std::max<size_t>(options_.stream_queue_frames, 1);

  service::RowSink sink = [conn, wakeup, req, request_id, batch_rows,
                           bound](std::span<const Hit> hits) {
    for (size_t off = 0; off < hits.size(); off += batch_rows) {
      std::span<const Hit> chunk =
          hits.subspan(off, std::min(batch_rows, hits.size() - off));
      std::vector<uint8_t> payload = EncodeBatch(chunk);
      std::vector<uint8_t> bytes;
      bytes.reserve(kFrameHeaderBytes + payload.size());
      AppendFrame(MsgType::kStreamBatch, request_id, payload, &bytes);
      if (!conn->EnqueueData(std::move(bytes), bound, req->cancelled)) {
        return;  // connection closed or request cancelled: drop the rest
      }
      req->rows.fetch_add(chunk.size(), std::memory_order_relaxed);
      wakeup->Notify();
    }
  };

  service::SubmitOptions opts;
  opts.cancel = std::shared_ptr<const std::atomic<bool>>(req, &req->cancelled);
  // NOTE: captures only shared state — never `this`; the server may be
  // gone (post-Stop) by the time a straggling query resolves.
  opts.done = [conn, wakeup, req, request_id](const Status& status) {
    uint64_t rows = req->rows.load(std::memory_order_relaxed);
    EndPayload end;
    end.code = WireCodeFromStatus(status);
    end.message = status.message();
    end.total_rows = rows;
    std::vector<uint8_t> payload = EncodeEnd(end);
    std::vector<uint8_t> bytes;
    bytes.reserve(kFrameHeaderBytes + payload.size());
    AppendFrame(MsgType::kStreamEnd, request_id, payload, &bytes);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->inflight.erase(request_id);
      if (!conn->closed) {
        conn->outq.push_back(OutFrame{std::move(bytes), /*data=*/false});
      }
    }
    wakeup->Notify();
  };

  Result<service::PendingQuery> submitted =
      db_->Submit(query.corpus, query.query, std::move(sink), std::move(opts));
  if (!submitted.ok()) {
    // Submission itself failed (e.g. unknown corpus): the done hook never
    // fires, so terminate the request here.
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->inflight.erase(request_id);
    }
    SendEnd(conn, request_id, submitted.status(), 0);
  }
}

bool NetServer::FlushWrites(const std::shared_ptr<Conn>& conn) {
  while (true) {
    if (conn->wbuf_pos >= conn->wbuf.size()) {
      conn->wbuf.clear();
      conn->wbuf_pos = 0;
      std::lock_guard<std::mutex> lock(conn->mu);
      bool woke_producer = false;
      size_t popped = 0;
      while (!conn->outq.empty() && conn->wbuf.size() < 256 * 1024) {
        OutFrame& front = conn->outq.front();
        conn->wbuf.insert(conn->wbuf.end(), front.bytes.begin(),
                          front.bytes.end());
        if (front.data) {
          --conn->data_frames;
          woke_producer = true;
        }
        conn->outq.pop_front();
        ++popped;
      }
      if (popped != 0) {
        std::lock_guard<std::mutex> slock(stats_mu_);
        stats_.frames_out += popped;
      }
      if (woke_producer) conn->cv.notify_all();
      if (conn->wbuf.empty()) return true;
    }
    ssize_t n = ::write(conn->fd, conn->wbuf.data() + conn->wbuf_pos,
                        conn->wbuf.size() - conn->wbuf_pos);
    if (n > 0) {
      conn->wbuf_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

void NetServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    conn->outq.clear();
    conn->data_frames = 0;
    for (auto& [id, req] : conn->inflight) {
      req->cancelled.store(true, std::memory_order_relaxed);
    }
    conn->cv.notify_all();
  }
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conns_.erase(conn->fd);
    conn->fd = -1;
  }
}

}  // namespace net
}  // namespace lpath
