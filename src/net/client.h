// A blocking client for the LPathDB wire protocol (net/protocol.h, spec
// in docs/PROTOCOL.md): connect + HELLO handshake, synchronous queries,
// streaming, and explicit pipelining for throughput.
//
// Not thread-safe: one Client is one connection driven by one thread.
// Open a Client per thread for concurrent load (that is what bench_net
// does).

#ifndef LPATHDB_NET_CLIENT_H_
#define LPATHDB_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lpath/engine.h"
#include "net/protocol.h"

namespace lpath {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();  ///< closes without GOODBYE; call Close() for an orderly exit

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;  ///< closes any open socket

  /// Connects to host:port and performs the HELLO handshake. The server's
  /// advertised per-connection EXECUTE limit lands in max_inflight().
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  uint32_t max_inflight() const { return max_inflight_; }
  const std::string& server_software() const { return server_software_; }

  /// EXECUTE, collecting every streamed batch; rows arrive batch-sorted
  /// and are returned in stream order (already DISTINCT server-side).
  Result<QueryResult> Query(const std::string& corpus,
                            const std::string& query);

  /// EXECUTE, invoking `sink` per STREAM_BATCH as frames arrive.
  Status QueryStream(const std::string& corpus, const std::string& query,
                     const std::function<void(std::span<const Hit>)>& sink);

  /// Pipelines all `queries` on this one connection (writes every EXECUTE
  /// up front, then reads the multiplexed responses) and returns results
  /// positionally aligned with `queries`.
  std::vector<Result<QueryResult>> Pipeline(
      const std::string& corpus, const std::vector<std::string>& queries);

  /// PREPARE: compile `query` into the server's plan cache for `corpus`.
  Status Prepare(const std::string& corpus, const std::string& query);

  /// PING with an arbitrary payload; OK iff the echo matches.
  Status Ping();

  /// Orderly shutdown: GOODBYE, wait for the server's GOODBYE, close.
  Status Close();

  // --- Low-level request plumbing (tests and benchmarks) -------------------

  /// Writes one EXECUTE frame and returns its request id without reading
  /// anything back.
  Result<uint32_t> SendExecute(const std::string& corpus,
                               const std::string& query);

  /// Writes a CANCEL for `request_id` (fire-and-forget).
  Status SendCancel(uint32_t request_id);

  /// One fully decoded response for `request_id`: rows streamed before its
  /// STREAM_END (appended to `*rows` if non-null) and the terminal status.
  /// Responses for *other* request ids encountered along the way are
  /// buffered and served to their own ReadResponse call later — this is
  /// what makes Pipeline() work.
  Status ReadResponse(uint32_t request_id, std::vector<Hit>* rows);

 private:
  Status WriteAll(std::span<const uint8_t> bytes);
  /// Reads until one whole frame is available; kBad framing or EOF closes.
  Result<Frame> ReadFrame();
  Status Handshake();

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  uint32_t max_inflight_ = 0;
  std::string server_software_;
  std::vector<uint8_t> rbuf_;

  /// Fully terminated responses read while looking for a different id.
  struct BufferedResponse {
    std::vector<Hit> rows;
    Status status;
    bool done = false;
  };
  std::unordered_map<uint32_t, BufferedResponse> pending_;
};

}  // namespace net
}  // namespace lpath

#endif  // LPATHDB_NET_CLIENT_H_
