#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace lpath {
namespace net {

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept { *this = std::move(other); }

Client& Client::operator=(Client&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) ::close(fd_);
  fd_ = std::exchange(other.fd_, -1);
  next_request_id_ = other.next_request_id_;
  max_inflight_ = other.max_inflight_;
  server_software_ = std::move(other.server_software_);
  rbuf_ = std::move(other.rbuf_);
  pending_ = std::move(other.pending_);
  return *this;
}

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status status = Status::IOError("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::string(std::strerror(errno)));
    ::close(fd_);
    fd_ = -1;
    return status;
  }

  Status hello = Handshake();
  if (!hello.ok()) {
    ::close(fd_);
    fd_ = -1;
  }
  return hello;
}

Status Client::Handshake() {
  HelloPayload mine;
  mine.software = "lpathdb-client";
  std::vector<uint8_t> frame;
  AppendFrame(MsgType::kHello, kConnectionRequestId, EncodeHello(mine),
              &frame);
  LPATH_RETURN_IF_ERROR(WriteAll(frame));

  LPATH_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type == MsgType::kError) {
    LPATH_ASSIGN_OR_RETURN(ErrorPayload error, DecodeError(reply.payload));
    return StatusFromWire(error.code, error.message);
  }
  if (reply.type != MsgType::kHello) {
    return Status::Corruption("handshake: expected HELLO, got " +
                              std::string(MsgTypeName(reply.type)));
  }
  LPATH_ASSIGN_OR_RETURN(HelloPayload theirs, DecodeHello(reply.payload));
  if (theirs.version != kProtocolVersion) {
    return Status::NotSupported("server protocol version " +
                                std::to_string(theirs.version));
  }
  max_inflight_ = theirs.max_inflight;
  server_software_ = theirs.software;
  return Status::OK();
}

Status Client::WriteAll(std::span<const uint8_t> bytes) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("write: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  while (true) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    FrameParse parse = ParseFrame(rbuf_, /*max_payload=*/1u << 30, &frame,
                                  &consumed, &error);
    if (parse == FrameParse::kFrame) {
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + consumed);
      return frame;
    }
    if (parse == FrameParse::kBad) {
      ::close(fd_);
      fd_ = -1;
      return Status::Corruption("server sent a malformed frame: " + error);
    }
    uint8_t buf[64 * 1024];
    ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ::close(fd_);
    fd_ = -1;
    if (n == 0) return Status::IOError("connection closed by server");
    return Status::IOError("read: " + std::string(std::strerror(errno)));
  }
}

Result<uint32_t> Client::SendExecute(const std::string& corpus,
                                     const std::string& query) {
  uint32_t id = next_request_id_++;
  if (next_request_id_ == 0) next_request_id_ = 1;  // skip the reserved id
  std::vector<uint8_t> frame;
  AppendFrame(MsgType::kExecute, id, EncodeQuery({corpus, query}), &frame);
  LPATH_RETURN_IF_ERROR(WriteAll(frame));
  return id;
}

Status Client::SendCancel(uint32_t request_id) {
  std::vector<uint8_t> frame;
  AppendFrame(MsgType::kCancel, request_id, {}, &frame);
  return WriteAll(frame);
}

Status Client::ReadResponse(uint32_t request_id, std::vector<Hit>* rows) {
  // Already fully buffered by an earlier interleaved read?
  if (auto it = pending_.find(request_id);
      it != pending_.end() && it->second.done) {
    BufferedResponse resp = std::move(it->second);
    pending_.erase(it);
    if (rows != nullptr) {
      rows->insert(rows->end(), resp.rows.begin(), resp.rows.end());
    }
    return resp.status;
  }

  while (true) {
    LPATH_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    switch (frame.type) {
      case MsgType::kStreamBatch: {
        LPATH_ASSIGN_OR_RETURN(std::vector<Hit> batch,
                               DecodeBatch(frame.payload));
        if (frame.request_id == request_id) {
          if (rows != nullptr) {
            rows->insert(rows->end(), batch.begin(), batch.end());
          }
        } else {
          BufferedResponse& other = pending_[frame.request_id];
          other.rows.insert(other.rows.end(), batch.begin(), batch.end());
        }
        break;
      }
      case MsgType::kStreamEnd: {
        LPATH_ASSIGN_OR_RETURN(EndPayload end, DecodeEnd(frame.payload));
        Status status = StatusFromWire(end.code, end.message);
        if (frame.request_id == request_id) return status;
        BufferedResponse& other = pending_[frame.request_id];
        other.status = std::move(status);
        other.done = true;
        break;
      }
      case MsgType::kError: {
        LPATH_ASSIGN_OR_RETURN(ErrorPayload error, DecodeError(frame.payload));
        Status status = StatusFromWire(error.code, error.message);
        if (frame.request_id == kConnectionRequestId) {
          // Connection-scoped: the server closes after this. Everything
          // outstanding fails.
          ::close(fd_);
          fd_ = -1;
          return status;
        }
        if (frame.request_id == request_id) return status;
        BufferedResponse& other = pending_[frame.request_id];
        other.status = std::move(status);
        other.done = true;
        break;
      }
      default:
        return Status::Corruption("unexpected frame " +
                                  std::string(MsgTypeName(frame.type)) +
                                  " while awaiting a response");
    }
  }
}

Result<QueryResult> Client::Query(const std::string& corpus,
                                  const std::string& query) {
  LPATH_ASSIGN_OR_RETURN(uint32_t id, SendExecute(corpus, query));
  QueryResult result;
  LPATH_RETURN_IF_ERROR(ReadResponse(id, &result.hits));
  return result;
}

Status Client::QueryStream(
    const std::string& corpus, const std::string& query,
    const std::function<void(std::span<const Hit>)>& sink) {
  LPATH_ASSIGN_OR_RETURN(uint32_t id, SendExecute(corpus, query));
  // Stream without buffering: every frame for this id goes to the sink.
  while (true) {
    LPATH_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.request_id != id) {
      return Status::Corruption(
          "interleaved response while streaming; use Pipeline for "
          "multiplexed reads");
    }
    if (frame.type == MsgType::kStreamBatch) {
      LPATH_ASSIGN_OR_RETURN(std::vector<Hit> batch,
                             DecodeBatch(frame.payload));
      sink(batch);
      continue;
    }
    if (frame.type == MsgType::kStreamEnd) {
      LPATH_ASSIGN_OR_RETURN(EndPayload end, DecodeEnd(frame.payload));
      return StatusFromWire(end.code, end.message);
    }
    if (frame.type == MsgType::kError) {
      LPATH_ASSIGN_OR_RETURN(ErrorPayload error, DecodeError(frame.payload));
      return StatusFromWire(error.code, error.message);
    }
    return Status::Corruption("unexpected frame " +
                              std::string(MsgTypeName(frame.type)));
  }
}

std::vector<Result<QueryResult>> Client::Pipeline(
    const std::string& corpus, const std::vector<std::string>& queries) {
  std::vector<Result<QueryResult>> results;
  results.reserve(queries.size());

  std::vector<uint32_t> ids;
  ids.reserve(queries.size());
  Status write_failure = Status::OK();
  for (const std::string& query : queries) {
    if (write_failure.ok()) {
      Result<uint32_t> id = SendExecute(corpus, query);
      if (id.ok()) {
        ids.push_back(*id);
        continue;
      }
      write_failure = id.status();
    }
    ids.push_back(0);  // placeholder: the send never happened
  }

  for (uint32_t id : ids) {
    if (id == 0) {
      results.push_back(write_failure);
      continue;
    }
    QueryResult result;
    Status status = ReadResponse(id, &result.hits);
    if (status.ok()) {
      results.push_back(std::move(result));
    } else {
      results.push_back(status);
    }
  }
  return results;
}

Status Client::Prepare(const std::string& corpus, const std::string& query) {
  uint32_t id = next_request_id_++;
  if (next_request_id_ == 0) next_request_id_ = 1;
  std::vector<uint8_t> frame;
  AppendFrame(MsgType::kPrepare, id, EncodeQuery({corpus, query}), &frame);
  LPATH_RETURN_IF_ERROR(WriteAll(frame));
  return ReadResponse(id, nullptr);
}

Status Client::Ping() {
  static constexpr uint8_t kProbe[] = {'p', 'i', 'n', 'g', '?'};
  std::vector<uint8_t> frame;
  AppendFrame(MsgType::kPing, kConnectionRequestId, kProbe, &frame);
  LPATH_RETURN_IF_ERROR(WriteAll(frame));
  LPATH_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type != MsgType::kPing ||
      !std::equal(reply.payload.begin(), reply.payload.end(),
                  std::begin(kProbe), std::end(kProbe))) {
    return Status::Corruption("ping echo mismatch");
  }
  return Status::OK();
}

Status Client::Close() {
  if (fd_ < 0) return Status::OK();
  std::vector<uint8_t> frame;
  AppendFrame(MsgType::kGoodbye, kConnectionRequestId, {}, &frame);
  Status wrote = WriteAll(frame);
  if (wrote.ok()) {
    // Wait for the server's GOODBYE (it drains our in-flight work first).
    while (true) {
      Result<Frame> reply = ReadFrame();
      if (!reply.ok()) break;  // server closed: also an acceptable ending
      if (reply->type == MsgType::kGoodbye) break;
      // Late STREAM_* frames for abandoned requests are drained silently.
    }
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
  return Status::OK();
}

}  // namespace net
}  // namespace lpath
