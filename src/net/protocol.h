// The LPathDB wire protocol, v1: framing, message types, payload codecs
// and the Status <-> wire error-code mapping.
//
// This header is the *implementation* of the protocol; the *specification*
// is docs/PROTOCOL.md, which cross-references every constant below by
// name. Change one and you must change the other — CI's docs link-check
// greps the spec for these identifiers.
//
// Framing in one line: every message is a fixed 24-byte header
// (kFrameHeaderBytes) followed by `payload_len` payload bytes; all header
// and payload integers are little-endian; the header carries an FNV-1a64
// checksum over the first 16 header bytes plus the payload, so a frame is
// verifiable before any payload field is interpreted.

#ifndef LPATHDB_NET_PROTOCOL_H_
#define LPATHDB_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lpath/engine.h"

namespace lpath {
namespace net {

// --- Frame constants (normative; see docs/PROTOCOL.md §2) -----------------

/// First four bytes of every frame: "LPN1" read as a little-endian u32.
constexpr uint32_t kFrameMagic = 0x314E504Cu;

/// Protocol version carried (and required to match) in HELLO.
constexpr uint32_t kProtocolVersion = 1;

/// Fixed frame-header size: magic u32, type u8, 3 reserved zero bytes,
/// request-id u32, payload-length u32, checksum u64.
constexpr size_t kFrameHeaderBytes = 24;

/// Request id 0 is reserved for connection-scoped frames (HELLO, PING,
/// GOODBYE replies and connection-fatal ERROR frames); request-scoped
/// frames carry the client-chosen nonzero id.
constexpr uint32_t kConnectionRequestId = 0;

/// FNV-1a64 parameters, shared with the image/WAL formats.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

// --- Message types (normative; see docs/PROTOCOL.md §3) -------------------

enum class MsgType : uint8_t {
  kHello = 1,        ///< first frame in each direction; version handshake
  kPrepare = 2,      ///< c→s: compile + cache a query; answered by STREAM_END
  kExecute = 3,      ///< c→s: evaluate a query; batches + STREAM_END follow
  kStreamBatch = 4,  ///< s→c: one sorted, disjoint batch of result rows
  kStreamEnd = 5,    ///< s→c: terminal status of a PREPARE/EXECUTE request
  kCancel = 6,       ///< c→s: best-effort cancel of the in-flight request id
  kError = 7,        ///< s→c: protocol-level failure (request- or conn-scoped)
  kPing = 8,         ///< either direction; payload echoed back verbatim
  kGoodbye = 9,      ///< orderly shutdown of one direction
};

/// True for the types a *client* may send (the server rejects the rest).
bool IsClientType(MsgType type);

// --- Wire error codes (normative; see docs/PROTOCOL.md §5) ----------------

/// Error space carried by STREAM_END and ERROR payloads. Codes 0..10
/// mirror lpath::StatusCode value-for-value; codes ≥ 100 are
/// protocol-level conditions with no engine-side equivalent.
enum class WireCode : uint32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kNotSupported = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kIOError = 6,
  kAlreadyExists = 7,
  kInternal = 8,
  kCancelled = 9,
  kResourceExhausted = 10,
  kProtocolError = 100,   ///< malformed frame / illegal message sequence
  kShuttingDown = 101,    ///< server is draining; request not accepted
  kVersionMismatch = 102, ///< HELLO carried an unsupported version
};

/// Maps an engine Status onto the wire (OK → kOk).
WireCode WireCodeFromStatus(const Status& status);

/// Reconstructs a Status from a wire code + message. Protocol-level codes
/// map onto the closest engine code (kProtocolError → Corruption,
/// kShuttingDown → ResourceExhausted, kVersionMismatch → NotSupported)
/// with the wire condition named in the message.
Status StatusFromWire(WireCode code, const std::string& message);

// --- Frames ----------------------------------------------------------------

/// One decoded frame. `payload` is owned (copied out of the read buffer).
struct Frame {
  MsgType type = MsgType::kError;
  uint32_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Appends a fully framed message (header + checksum + payload) to `out`.
void AppendFrame(MsgType type, uint32_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out);

enum class FrameParse {
  kFrame,     ///< one frame decoded; `*consumed` bytes eaten
  kNeedMore,  ///< the buffer holds a valid prefix; read more bytes
  kBad,       ///< unrecoverable framing damage; `*error` says what
};

/// Decodes the first frame of `in`. Rejects (kBad) wrong magic, nonzero
/// reserved bytes, unknown message types, payload lengths above
/// `max_payload` and checksum mismatches; a short buffer that is still a
/// valid prefix yields kNeedMore. On kFrame, `*consumed` is
/// kFrameHeaderBytes + payload length.
FrameParse ParseFrame(std::span<const uint8_t> in, size_t max_payload,
                      Frame* out, size_t* consumed, std::string* error);

// --- Payload codecs (normative schemas; see docs/PROTOCOL.md §4) ----------

/// HELLO payload, both directions: protocol version, the sender's software
/// string, and (server→client only meaningful) the per-connection
/// EXECUTE admission limit.
struct HelloPayload {
  uint32_t version = kProtocolVersion;
  std::string software;
  uint32_t max_inflight = 0;
};

/// PREPARE / EXECUTE payload: target corpus + LPath query text.
struct QueryPayload {
  std::string corpus;
  std::string query;
};

/// STREAM_END payload: terminal status + total result rows streamed.
struct EndPayload {
  WireCode code = WireCode::kOk;
  std::string message;
  uint64_t total_rows = 0;
};

/// ERROR payload: protocol-level failure description.
struct ErrorPayload {
  WireCode code = WireCode::kProtocolError;
  std::string message;
};

std::vector<uint8_t> EncodeHello(const HelloPayload& hello);
std::vector<uint8_t> EncodeQuery(const QueryPayload& query);
std::vector<uint8_t> EncodeEnd(const EndPayload& end);
std::vector<uint8_t> EncodeError(const ErrorPayload& error);
/// STREAM_BATCH payload: u32 row count, then (i32 tid, i32 id) per row.
std::vector<uint8_t> EncodeBatch(std::span<const Hit> hits);

/// Each decoder consumes the *entire* payload: trailing bytes are as
/// malformed as missing ones.
Result<HelloPayload> DecodeHello(std::span<const uint8_t> payload);
Result<QueryPayload> DecodeQuery(std::span<const uint8_t> payload);
Result<EndPayload> DecodeEnd(std::span<const uint8_t> payload);
Result<ErrorPayload> DecodeError(std::span<const uint8_t> payload);
Result<std::vector<Hit>> DecodeBatch(std::span<const uint8_t> payload);

/// Human-readable type name for logs/tests ("EXECUTE", "STREAM_BATCH", ...).
std::string_view MsgTypeName(MsgType type);

}  // namespace net
}  // namespace lpath

#endif  // LPATHDB_NET_PROTOCOL_H_
