// The network front end: a poll()-driven TCP server speaking the LPathDB
// wire protocol (net/protocol.h, spec in docs/PROTOCOL.md) in front of a
// db::Database.
//
// Threading model — one loop, many producers:
//   - A single event-loop thread owns every file descriptor: it accepts,
//     reads, parses frames, dispatches requests and performs all writes.
//     No other thread ever touches a socket.
//   - Query execution happens on the database's worker pools via
//     db::Database::Submit. Pool threads never write to sockets; they
//     encode STREAM_BATCH / STREAM_END frames into the connection's
//     mutex-guarded outbound queue and wake the loop through a self-pipe.
//   - Backpressure: the outbound queue bounds *data* frames
//     (NetOptions::stream_queue_frames). A sink that would overflow it
//     blocks on a condition variable — suspending the producing worker —
//     until the loop drains the socket, the request is cancelled, or the
//     connection dies. Control frames (STREAM_END, ERROR, PING) always
//     enqueue, so a query's completion can never deadlock behind its own
//     unsent rows.
//
// Lifetime: pool-thread callbacks capture shared_ptrs to the connection
// state and the wakeup pipe, never the server, so a connection force-closed
// (or a server torn down after Stop()) cannot leave a worker touching
// freed state. The Database must outlive the server.

#ifndef LPATHDB_NET_SERVER_H_
#define LPATHDB_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "net/protocol.h"

namespace lpath {
namespace net {

struct NetOptions {
  /// Listen address. The default binds loopback only — exposing a corpus
  /// on a routable interface is an explicit decision.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Admission control: connections over this limit are greeted with a
  /// connection-scoped ERROR (kResourceExhausted) and closed.
  int max_connections = 256;
  /// Admission control: EXECUTEs in flight per connection. Excess ones are
  /// refused with a request-scoped ERROR; the connection survives. Also
  /// advertised to the client in the HELLO reply.
  int max_inflight = 32;
  /// Frames with a longer payload are rejected as malformed.
  uint32_t max_payload_bytes = 16u << 20;
  /// Outbound STREAM_BATCH frames buffered per connection before the
  /// producing worker is suspended (the backpressure knob).
  size_t stream_queue_frames = 16;
  /// Result rows per STREAM_BATCH frame: a sink delivery larger than this
  /// is split across frames.
  size_t batch_rows = 4096;
  /// Connections idle (no readable frame progress) longer than this are
  /// closed. 0 disables the timeout.
  int64_t idle_timeout_ms = 0;
  /// poll(2) tick, which bounds timeout detection latency.
  int64_t poll_interval_ms = 100;
  /// Stop() grace period for draining in-flight queries and flushing
  /// outbound buffers before force-closing.
  int64_t shutdown_timeout_ms = 5000;
};

/// Monitoring counters, cumulative since Start().
struct NetStats {
  uint64_t accepted = 0;           ///< connections accepted
  uint64_t refused_connections = 0;///< closed by max_connections admission
  uint64_t frames_in = 0;          ///< well-formed frames parsed
  uint64_t frames_out = 0;         ///< frames written to sockets
  uint64_t protocol_errors = 0;    ///< malformed frames / illegal sequences
  uint64_t refused_requests = 0;   ///< EXECUTEs refused by max_inflight
  uint64_t executes = 0;           ///< EXECUTE requests admitted
  uint64_t prepares = 0;           ///< PREPARE requests served
  uint64_t cancels = 0;            ///< CANCEL frames honored
  uint64_t rows_streamed = 0;      ///< result rows sent in STREAM_BATCH
  uint64_t idle_closes = 0;        ///< connections closed by idle timeout
};

class NetServer {
 public:
  /// `db` must outlive the server.
  NetServer(db::Database* db, NetOptions options = {});
  ~NetServer();  ///< implies Stop()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and starts the event-loop thread. IOError on bind
  /// failure; InvalidArgument if already started.
  Status Start();

  /// The bound TCP port (resolves port 0), or 0 before Start().
  uint16_t port() const { return port_; }

  /// Graceful shutdown: stops accepting, stops reading, cancels what can
  /// be cancelled, drains in-flight queries and outbound buffers for up to
  /// shutdown_timeout_ms, then force-closes stragglers. Idempotent.
  void Stop();

  NetStats stats() const;

 private:
  struct Conn;
  struct Wakeup;

  void LoopMain();
  void AcceptPending();
  /// Encodes one frame (header + checksum + payload) into a byte vector.
  static std::vector<uint8_t> BuildFrame(MsgType type, uint32_t request_id,
                                         std::span<const uint8_t> payload);
  /// Queues a connection-scoped ERROR, fails the connection's in-flight
  /// requests and marks it close-after-flush.
  void SendFatalError(const std::shared_ptr<Conn>& conn, WireCode code,
                      const std::string& message);
  /// Queues a request-scoped STREAM_END carrying `status`.
  void SendEnd(const std::shared_ptr<Conn>& conn, uint32_t request_id,
               const Status& status, uint64_t total_rows);
  /// Reads, parses and dispatches what it can; returns false if the
  /// connection must be torn down.
  bool HandleReadable(const std::shared_ptr<Conn>& conn);
  bool DispatchFrame(const std::shared_ptr<Conn>& conn, Frame frame);
  void StartExecute(const std::shared_ptr<Conn>& conn, uint32_t request_id,
                    QueryPayload query);
  void HandlePrepare(const std::shared_ptr<Conn>& conn, uint32_t request_id,
                     const QueryPayload& query);
  /// Flushes the outbound queue to the socket; returns false on a fatal
  /// write error.
  bool FlushWrites(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);

  db::Database* const db_;
  const NetOptions options_;

  std::atomic<uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  int listen_fd_ = -1;
  std::shared_ptr<Wakeup> wakeup_;
  std::thread loop_;

  /// Loop-thread-only connection table (fd → state).
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  mutable std::mutex stats_mu_;
  NetStats stats_;
};

}  // namespace net
}  // namespace lpath

#endif  // LPATHDB_NET_SERVER_H_
